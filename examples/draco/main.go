// DRACO vs ByzShield: demonstrates the Sec. 5.3.1 contrast between the
// exact-recovery baseline (DRACO, Chen et al. 2018) and ByzShield's
// graceful degradation. DRACO guarantees perfect gradients only while
// r ≥ 2q+1; past that boundary its decoder is corrupted silently, while
// ByzShield's expander assignment caps the damage at a small ε̂ that the
// median absorbs.
package main

import (
	"context"
	"fmt"
	"log"

	"byzshield"
	"byzshield/internal/distort"
	"byzshield/internal/draco"
)

func main() {
	// Both systems: K = 15 workers, replication r = 3.
	dr, err := draco.NewCyclic(15, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DRACO cyclic code, K=15, r=3:")
	for q := 1; q <= 4; q++ {
		if err := dr.Feasible(q); err != nil {
			fmt.Printf("  q=%d: NOT APPLICABLE (%v)\n", q, err)
		} else {
			fmt.Printf("  q=%d: exact recovery guaranteed\n", q)
		}
	}

	// What actually happens past the boundary: the worst-case adversary
	// corrupts decoded files.
	fmt.Println("\nWorst-case distorted files (exhaustive search):")
	drAn := distort.NewAnalyzer(dr.Assignment)
	fmt.Printf("%4s %18s %18s\n", "q", "DRACO-cyclic", "ByzShield-MOLS")

	molsAsn, err := byzshield.Registry.Scheme("mols", byzshield.SchemeParams{L: 5, R: 3})
	if err != nil {
		log.Fatal(err)
	}
	byzAn := distort.NewAnalyzer(molsAsn)
	for q := 1; q <= 6; q++ {
		drRes := drAn.MaxDistorted(context.Background(), q)
		byzRes := byzAn.MaxDistorted(context.Background(), q)
		fmt.Printf("%4d %10d/%2d (%.2f) %10d/%2d (%.2f)\n",
			q,
			drRes.CMax, dr.Assignment.F, drRes.Epsilon,
			byzRes.CMax, molsAsn.F, byzRes.Epsilon)
	}

	// A concrete decode at q = 2 (outside DRACO's guarantee): two
	// adjacent cyclic workers corrupt their shared files.
	truth := make([][]float64, dr.Assignment.F)
	for v := range truth {
		truth[v] = []float64{float64(v), float64(2 * v)}
	}
	returned := make([]map[int][]float64, dr.Assignment.K)
	byz := map[int]bool{0: true, 1: true}
	for u := 0; u < dr.Assignment.K; u++ {
		m := make(map[int][]float64)
		for _, v := range dr.Assignment.WorkerFiles(u) {
			if byz[u] {
				m[v] = []float64{-1e9, -1e9}
			} else {
				m[v] = truth[v]
			}
		}
		returned[u] = m
	}
	_, exact, err := dr.Decode(returned, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDRACO decode with adjacent Byzantines {0,1} at q=2: exact=%v\n", exact)
	fmt.Println("(ByzShield at q=2 distorts 1/25 files and keeps training — see examples/quickstart)")
}
