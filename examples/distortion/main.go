// Distortion analysis: compare the robustness of ByzShield's expander
// assignments against DETOX's FRC grouping and an unstructured random
// placement, reproducing the Sec. 5 analysis — spectral gaps (Lemma 2),
// the γ bound (Claim 1), and exact worst-case distortion fractions.
package main

import (
	"fmt"
	"log"
	"time"

	"byzshield"
)

func main() {
	// All three placements use K = 15 workers; the replicated ones use
	// r = 3 copies of each task. Schemes are resolved by registry name.
	mols, err := byzshield.Registry.Scheme("mols", byzshield.SchemeParams{L: 5, R: 3})
	if err != nil {
		log.Fatal(err)
	}
	ram, err := byzshield.Registry.Scheme("ramanujan1", byzshield.SchemeParams{L: 5, R: 3})
	if err != nil {
		log.Fatal(err)
	}
	frc, err := byzshield.Registry.Scheme("frc", byzshield.SchemeParams{K: 15, R: 3})
	if err != nil {
		log.Fatal(err)
	}
	random, err := byzshield.Registry.Scheme("random", byzshield.SchemeParams{K: 15, F: 25, R: 3, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	schemes := []struct {
		name string
		asn  *byzshield.Assignment
	}{
		{"MOLS(5,3)", mols},
		{"Ramanujan1(5,3)", ram},
		{"FRC(15,3)", frc},
		{"Random(15,25,3)", random},
	}

	fmt.Println("Spectral gaps (µ1 of A·Aᵀ; smaller = better expansion):")
	for _, s := range schemes {
		mu1, err := byzshield.SpectralGap(s.asn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s µ1 = %.4f\n", s.name, mu1)
	}

	fmt.Println("\nWorst-case distortion fraction ε̂ by number of Byzantines q:")
	fmt.Printf("%4s", "q")
	for _, s := range schemes {
		fmt.Printf(" %18s", s.name)
	}
	fmt.Println()
	for q := 2; q <= 7; q++ {
		fmt.Printf("%4d", q)
		for _, s := range schemes {
			rep, err := byzshield.AnalyzeDistortion(s.asn, q, 20*time.Second)
			if err != nil {
				log.Fatal(err)
			}
			mark := " "
			if !rep.Exact {
				mark = "*"
			}
			fmt.Printf(" %17.2f%s", rep.Epsilon, mark)
		}
		fmt.Println()
	}
	fmt.Println("\nγ bound vs exact c_max for MOLS(5,3) (Claim 1 tightness):")
	for q := 2; q <= 7; q++ {
		rep, err := byzshield.AnalyzeDistortion(mols, q, 20*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  q=%d: c_max=%2d  γ=%6.2f\n", q, rep.CMax, rep.Gamma)
	}
}
