// Training comparison: the paper's K = 25 cluster under the ALIE attack
// with three defenses — ByzShield (Ramanujan Case 2 + median), the
// un-replicated coordinate-wise median baseline, and DETOX (FRC + vote +
// median-of-means) — reproducing the shape of Figure 2. Every pipeline
// is assembled purely from registry names, so the run definitions are
// data, not code.
package main

import (
	"fmt"
	"log"

	"byzshield"
)

func main() {
	const q = 5 // Byzantine workers (of K = 25)

	// A task hard enough that defenses separate: clean training reaches
	// ≈0.75; ALIE's bias costs the weaker defenses 10–20 points. The
	// model is a ReLU MLP — for pure softmax, ALIE's uniform
	// per-coordinate shift is argmax-invariant and nearly harmless.
	train, test, err := byzshield.NewSyntheticDataset(byzshield.DatasetConfig{
		Train: 3000, Test: 1000, Dim: 24, Classes: 10, ClassSep: 0.5, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	type runDef struct {
		name         string
		scheme       string
		schemeParams byzshield.SchemeParams
		agg          string
		aggParams    byzshield.AggregatorParams
	}
	runs := []runDef{
		{"ByzShield (Ram2 + median)", "ramanujan2", byzshield.SchemeParams{L: 5, R: 5}, "median", byzshield.AggregatorParams{}},
		{"Baseline median", "baseline", byzshield.SchemeParams{K: 25}, "median", byzshield.AggregatorParams{}},
		{"DETOX (FRC + MoM)", "frc", byzshield.SchemeParams{K: 25, R: 5}, "median-of-means", byzshield.AggregatorParams{Groups: 5}},
	}

	for _, r := range runs {
		asn, err := byzshield.Registry.Scheme(r.scheme, r.schemeParams)
		if err != nil {
			log.Fatal(err)
		}
		agg, err := byzshield.Registry.Aggregator(r.agg, r.aggParams)
		if err != nil {
			log.Fatal(err)
		}
		attack, err := byzshield.Registry.Attack("alie")
		if err != nil {
			log.Fatal(err)
		}
		mdl, err := byzshield.NewMLPModel(24, 24, 10)
		if err != nil {
			log.Fatal(err)
		}
		history, err := byzshield.Train(byzshield.TrainConfig{
			Assignment: asn,
			Model:      mdl,
			Train:      train,
			Test:       test,
			BatchSize:  500,
			Q:          q,
			Attack:     attack,
			Aggregator: agg,
			Iterations: 250,
			EvalEvery:  50,
			Seed:       11,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s", r.name)
		for _, p := range history.Points {
			fmt.Printf("  %d:%.3f", p.Iteration, p.Accuracy)
		}
		fmt.Printf("  (final %.3f)\n", history.FinalAccuracy())
	}
	fmt.Println("\nExpected shape (paper Fig. 2): ByzShield's small ε̂ (0.08) keeps it near")
	fmt.Println("attack-free accuracy while the baseline median (ε̂=0.20) decays under ALIE.")
	fmt.Println("DETOX's larger ε̂ penalty becomes catastrophic at q=9 — run")
	fmt.Println("`go run ./cmd/byztrain -figure 6` for its collapse to chance accuracy.")
}
