// TCP cluster: runs the distributed training protocol over real TCP
// sockets — one parameter-server and K = 15 worker clients on loopback,
// two of them Byzantine (reversed gradients), one fail-stopping mid-run
// and one flaky — a heterogeneous fault composition carried by the wire
// Spec. The scheme, aggregator, and fault models travel as registry
// names inside the Spec; the server executes every round through the
// shared cluster round core, so the wire path votes, aggregates, and
// steps exactly like the in-process engine, and the crash degrades the
// affected file votes instead of aborting training. Parameter
// broadcasts ship as bit-exact XOR deltas between periodic full
// refreshes (protocol v2), and the per-round broadcast volume is
// reported at the end. The same binaries-level protocol is exposed by
// cmd/byzps and cmd/byzworker for multi-process or multi-machine runs —
// including worker rejoin: a killed byzworker re-enters a live run with
// -resume-token (see README and the rejoin tests in
// internal/transport).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"byzshield"
	"byzshield/internal/cluster"
	"byzshield/internal/trainer"
	"byzshield/internal/transport"
)

func main() {
	ctx := context.Background()
	spec := transport.Spec{
		Scheme: "mols", L: 5, R: 3,
		Aggregator: "median",
		TrainN:     2000, TestN: 500, Dim: 16, Classes: 10,
		DataSeed: 31, ClassSep: 2.0,
		BatchSize: 250,
		Schedule:  trainer.Schedule{Base: 0.05, Decay: 0.96, Every: 25},
		Momentum:  0.9, Seed: 31, Rounds: 80,
		// Heterogeneous per-worker faults, composed on the wire: worker 6
		// fail-stops at round 40 (permanently — an injected crash is
		// terminal for the process) while worker 11 randomly skips ~20%
		// of its rounds. The crash degrades worker 6's five files to 2
		// of 3 replicas — enough for the default quorum — for the rest
		// of the run.
		Faults: []transport.FaultSpec{
			{Name: "crash", Params: byzshield.FaultParams{Workers: []int{6}, Round: 40}},
			{Name: "flaky", Params: byzshield.FaultParams{Workers: []int{11}, P: 0.2, Seed: 31}},
		},
	}
	var broadcastBytes, rounds atomic.Int64
	srv, err := transport.NewServer("127.0.0.1:0", transport.ServerConfig{
		Spec:      spec,
		Logf:      log.Printf,
		EvalEvery: 20,
		OnRound: func(rs cluster.RoundStats) {
			broadcastBytes.Add(rs.Times.BroadcastBytes)
			rounds.Add(1)
			if rs.Iteration == 40 {
				fmt.Printf("round %d: workers %v are gone, %d file votes degraded, %d dropped\n",
					rs.Iteration, rs.MissingWorkers, rs.DegradedFiles, rs.DroppedFiles)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("parameter server on %s\n", srv.Addr())

	// Two Byzantine workers return reversed gradients; the MOLS(5,3)
	// assignment limits them to distorting at most 1 of 25 file votes
	// (Table 3, q = 2), which the median then absorbs.
	byzantine := map[int]transport.WorkerBehavior{
		2: transport.BehaviorReversed,
		9: transport.BehaviorReversed,
	}

	var wg sync.WaitGroup
	for id := 0; id < 15; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			behavior := transport.BehaviorHonest
			if b, ok := byzantine[id]; ok {
				behavior = b
			}
			_, err := transport.RunWorker(ctx, srv.Addr(), transport.WorkerConfig{
				ID:       id,
				Behavior: behavior,
			})
			switch {
			case errors.Is(err, transport.ErrInjectedCrash):
				log.Printf("worker %d: crashed as scheduled", id)
			case err != nil:
				log.Printf("worker %d: %v", id, err)
			}
		}(id)
	}

	final, err := srv.Serve(ctx)
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	fmt.Printf("final top-1 accuracy with 2 Byzantine workers, 1 crash, 1 flaky: %.4f\n", final)
	fmt.Printf("PS→worker broadcast: %d bytes over %d rounds (%d B/round, delta frames between full refreshes)\n",
		broadcastBytes.Load(), rounds.Load(), broadcastBytes.Load()/rounds.Load())
}
