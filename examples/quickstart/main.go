// Quickstart: build a ByzShield assignment, inspect its robustness, and
// train a model under the ALIE attack with a worst-case omniscient
// adversary — all through the public byzshield API. Components are
// resolved by name from the registry; training runs through a Session
// so every round streams its metrics.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"byzshield"
)

func main() {
	ctx := context.Background()

	// 1. Task assignment: MOLS with load l = 5, replication r = 3
	//    → K = 15 workers, f = 25 files (the paper's Example 1).
	asn, err := byzshield.Registry.Scheme("mols", byzshield.SchemeParams{L: 5, R: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assignment: %v\n", asn)

	// 2. Robustness analysis: what can q = 3 colluding omniscient
	//    Byzantines distort?
	rep, err := byzshield.AnalyzeDistortion(asn, 3, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("q=%d: c_max=%d (ε̂=%.2f), spectral bound γ=%.2f, worst-case set %v\n",
		rep.Q, rep.CMax, rep.Epsilon, rep.Gamma, rep.Byzantines)

	// 3. Train a 10-class classifier under ALIE with that adversary,
	//    one observable round at a time.
	train, test, err := byzshield.SyntheticDataset(3000, 1000, 32, 10, 7)
	if err != nil {
		log.Fatal(err)
	}
	mdl, err := byzshield.NewSoftmaxModel(32, 10)
	if err != nil {
		log.Fatal(err)
	}
	attack, err := byzshield.Registry.Attack("alie")
	if err != nil {
		log.Fatal(err)
	}
	aggregator, err := byzshield.Registry.Aggregator("median")
	if err != nil {
		log.Fatal(err)
	}
	session, err := byzshield.Open(ctx, byzshield.TrainConfig{
		Assignment: asn,
		Model:      mdl,
		Train:      train,
		Test:       test,
		BatchSize:  500,
		Q:          3,
		Attack:     attack,
		Aggregator: aggregator,
		Iterations: 200,
		EvalEvery:  25,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	session.OnRound(func(r byzshield.RoundResult) {
		if r.Evaluated {
			fmt.Printf("iter %4d  loss %.4f  top-1 accuracy %.4f  (distorted votes: %d)\n",
				r.Round, r.Loss, r.Accuracy, r.DistortedFiles)
		}
	})
	history, err := session.Run(ctx, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final accuracy under ALIE (q=3): %.4f\n", history.FinalAccuracy())
}
