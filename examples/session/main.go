// Session lifecycle: the production-style training loop. A Session is
// opened from a registry-assembled config, stepped under a cancelable
// context while per-round metrics stream over an Events channel, then
// checkpointed mid-run, restored into a brand-new Session, and driven
// to completion — the continued run is bit-identical to an
// uninterrupted one.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"byzshield"
)

func config(byzantines []int) byzshield.TrainConfig {
	asn, err := byzshield.Registry.Scheme("mols", byzshield.SchemeParams{L: 5, R: 3})
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := byzshield.SyntheticDataset(2000, 500, 16, 10, 23)
	if err != nil {
		log.Fatal(err)
	}
	mdl, err := byzshield.NewMLPModel(16, 16, 10)
	if err != nil {
		log.Fatal(err)
	}
	attack, err := byzshield.Registry.Attack("reversed", byzshield.AttackParams{C: 1})
	if err != nil {
		log.Fatal(err)
	}
	cfg := byzshield.TrainConfig{
		Assignment: asn,
		Model:      mdl,
		Train:      train,
		Test:       test,
		BatchSize:  250,
		Attack:     attack,
		Iterations: 120,
		EvalEvery:  20,
		Seed:       23,
	}
	if byzantines == nil {
		cfg.Q = 3 // worst-case omniscient placement, found by Open
	} else {
		cfg.Byzantines = byzantines // exact resume of a recorded adversary
	}
	return cfg
}

func main() {
	ctx := context.Background()

	// Phase 1: open a session and stream metrics while stepping.
	session, err := byzshield.Open(ctx, config(nil))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session open: worst-case Byzantines %v, ε̂=%.2f\n",
		session.Byzantines(), session.Epsilon())

	events, unsubscribe := session.Events(64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range events {
			if r.Evaluated {
				fmt.Printf("  round %3d  lr=%.4f  loss=%.4f  acc=%.4f  distorted=%d\n",
					r.Round, r.LR, r.Loss, r.Accuracy, r.DistortedFiles)
			}
		}
	}()

	// Run half the horizon, then checkpoint and abandon this session.
	if _, err := session.Run(ctx, 60); err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "byzshield-session")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckptPath := filepath.Join(dir, "round60.ckpt")
	if err := session.SaveCheckpoint(ckptPath); err != nil {
		log.Fatal(err)
	}
	unsubscribe()
	<-done
	session.Close()
	fmt.Printf("checkpointed at round %d → %s\n", 60, ckptPath)

	// Phase 2: a fresh process would do exactly this — rebuild the
	// session from the same config (with the checkpoint's recorded
	// Byzantine set, skipping the re-search), restore, continue. No
	// round replay: the sampler stream is fast-forwarded
	// deterministically.
	ckpt, err := byzshield.LoadCheckpoint(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint meta: %v (byzantines %v)\n", ckpt.Meta, ckpt.Byzantines)
	resumed, err := byzshield.Open(ctx, config(ckpt.Byzantines))
	if err != nil {
		log.Fatal(err)
	}
	defer resumed.Close()
	if err := resumed.Restore(ckpt); err != nil {
		log.Fatal(err)
	}
	resumed.OnRound(func(r byzshield.RoundResult) {
		if r.Evaluated {
			fmt.Printf("  round %3d  lr=%.4f  loss=%.4f  acc=%.4f  (resumed)\n",
				r.Round, r.LR, r.Loss, r.Accuracy)
		}
	})
	history, err := resumed.Run(ctx, 0) // to the 120-round horizon
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final accuracy after resume: %.4f (%d evaluations recorded)\n",
		history.FinalAccuracy(), len(history.Points))
}
