package byzshield_test

import (
	"context"
	"math"
	"testing"

	"byzshield"
)

// TestAttackAggregatorMatrix sweeps every registered attack against
// every registered aggregator for a few rounds — the ByzFL-style
// regression surface: no combination may error, produce non-finite
// parameters, or distort more file votes than the Byzantine set
// statically controls.
func TestAttackAggregatorMatrix(t *testing.T) {
	asn, err := byzshield.NewMOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := byzshield.SyntheticDataset(300, 100, 8, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregator knobs valid for 25 operands with the worst-case q=2
	// corruption (c_max = 1, Table 3).
	params := map[string]byzshield.AggregatorParams{
		"krum":         {C: 1},
		"multikrum":    {C: 1},
		"bulyan":       {C: 1},
		"trimmed-mean": {Trim: 1},
	}
	attacks := byzshield.Registry.Attacks()
	aggregators := byzshield.Registry.Aggregators()
	if len(attacks) < 5 || len(aggregators) < 10 {
		t.Fatalf("registry unexpectedly small: %d attacks, %d aggregators", len(attacks), len(aggregators))
	}
	for _, atkName := range attacks {
		for _, aggName := range aggregators {
			t.Run(atkName+"/"+aggName, func(t *testing.T) {
				atk, err := byzshield.Registry.Attack(atkName)
				if err != nil {
					t.Fatal(err)
				}
				agg, err := byzshield.Registry.Aggregator(aggName, params[aggName])
				if err != nil {
					t.Fatal(err)
				}
				mdl, err := byzshield.NewSoftmaxModel(8, 4)
				if err != nil {
					t.Fatal(err)
				}
				s, err := byzshield.Open(context.Background(), byzshield.TrainConfig{
					Assignment: asn,
					Model:      mdl,
					Train:      train,
					Test:       test,
					BatchSize:  50,
					Q:          2,
					Attack:     atk,
					Aggregator: agg,
					Iterations: 3,
					EvalEvery:  3,
					Seed:       11,
				})
				if err != nil {
					t.Fatalf("open %s/%s: %v", atkName, aggName, err)
				}
				defer s.Close()
				corruptible := len(s.CorruptibleFiles())
				for round := 0; round < 3; round++ {
					res, err := s.Step(context.Background())
					if err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if res.DistortedFiles > corruptible {
						t.Fatalf("round %d distorted %d votes, but only %d files are corruptible",
							round, res.DistortedFiles, corruptible)
					}
				}
				for i, p := range s.Params() {
					if math.IsNaN(p) || math.IsInf(p, 0) {
						t.Fatalf("param %d is %v after %s/%s", i, p, atkName, aggName)
					}
				}
			})
		}
	}
}
