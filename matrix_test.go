package byzshield_test

import (
	"context"
	"math"
	"slices"
	"testing"

	"byzshield"
)

// TestAttackAggregatorMatrix sweeps every registered attack against
// every registered aggregator for a few rounds — the ByzFL-style
// regression surface: no combination may error, produce non-finite
// parameters, or distort more file votes than the Byzantine set
// statically controls.
func TestAttackAggregatorMatrix(t *testing.T) {
	asn, err := byzshield.NewMOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := byzshield.SyntheticDataset(300, 100, 8, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregator knobs valid for 25 operands with the worst-case q=2
	// corruption (c_max = 1, Table 3).
	params := map[string]byzshield.AggregatorParams{
		"krum":         {C: 1},
		"multikrum":    {C: 1},
		"bulyan":       {C: 1},
		"trimmed-mean": {Trim: 1},
	}
	attacks := byzshield.Registry.Attacks()
	aggregators := byzshield.Registry.Aggregators()
	if len(attacks) < 5 || len(aggregators) < 10 {
		t.Fatalf("registry unexpectedly small: %d attacks, %d aggregators", len(attacks), len(aggregators))
	}
	for _, atkName := range attacks {
		for _, aggName := range aggregators {
			t.Run(atkName+"/"+aggName, func(t *testing.T) {
				atk, err := byzshield.Registry.Attack(atkName)
				if err != nil {
					t.Fatal(err)
				}
				agg, err := byzshield.Registry.Aggregator(aggName, params[aggName])
				if err != nil {
					t.Fatal(err)
				}
				mdl, err := byzshield.NewSoftmaxModel(8, 4)
				if err != nil {
					t.Fatal(err)
				}
				s, err := byzshield.Open(context.Background(), byzshield.TrainConfig{
					Assignment: asn,
					Model:      mdl,
					Train:      train,
					Test:       test,
					BatchSize:  50,
					Q:          2,
					Attack:     atk,
					Aggregator: agg,
					Iterations: 3,
					EvalEvery:  3,
					Seed:       11,
				})
				if err != nil {
					t.Fatalf("open %s/%s: %v", atkName, aggName, err)
				}
				defer s.Close()
				corruptible := len(s.CorruptibleFiles())
				for round := 0; round < 3; round++ {
					res, err := s.Step(context.Background())
					if err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if res.DistortedFiles > corruptible {
						t.Fatalf("round %d distorted %d votes, but only %d files are corruptible",
							round, res.DistortedFiles, corruptible)
					}
				}
				for i, p := range s.Params() {
					if math.IsNaN(p) || math.IsInf(p, 0) {
						t.Fatalf("param %d is %v after %s/%s", i, p, atkName, aggName)
					}
				}
			})
		}
	}
}

// TestAttackDetectorMatrix sweeps every registered attack against every
// registered detector: no combination may error or produce non-finite
// parameters, every blacklist verdict must land on a member of the
// worst-case Byzantine set (never an honest worker), reputations must
// stay within [0, 1], and a benign run must blacklist nobody.
func TestAttackDetectorMatrix(t *testing.T) {
	asn, err := byzshield.NewMOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The detection layer's verified operating point (the byzsim -detect
	// sweep): MLP gradients over the 10-class synthetic set, large enough
	// batches that honest per-worker features are noise, not structure.
	train, test, err := byzshield.NewSyntheticDataset(byzshield.DatasetConfig{
		Train: 3000, Test: 500, Dim: 24, Classes: 10, ClassSep: 0.5, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	attacks := byzshield.Registry.Attacks()
	detectors := byzshield.Registry.Detectors()
	if len(attacks) < 5 || len(detectors) < 3 {
		t.Fatalf("registry unexpectedly small: %d attacks, %d detectors", len(attacks), len(detectors))
	}
	// Enough rounds for the default policy (MinRounds 10) to blacklist a
	// persistent offender.
	const rounds = 16
	for _, atkName := range attacks {
		for _, detName := range detectors {
			t.Run(atkName+"/"+detName, func(t *testing.T) {
				atk, err := byzshield.Registry.Attack(atkName)
				if err != nil {
					t.Fatal(err)
				}
				det, err := byzshield.Registry.Detector(detName)
				if err != nil {
					t.Fatal(err)
				}
				mdl, err := byzshield.NewMLPModel(24, 24, 10)
				if err != nil {
					t.Fatal(err)
				}
				s, err := byzshield.Open(context.Background(), byzshield.TrainConfig{
					Assignment: asn,
					Model:      mdl,
					Train:      train,
					Test:       test,
					BatchSize:  500,
					Q:          3,
					Attack:     atk,
					Detector:   det,
					Iterations: rounds,
					EvalEvery:  rounds,
					Seed:       11,
				})
				if err != nil {
					t.Fatalf("open %s/%s: %v", atkName, detName, err)
				}
				defer s.Close()
				byz := s.Byzantines()
				blacklisted := 0
				for round := 0; round < rounds; round++ {
					res, err := s.Step(context.Background())
					if err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if res.MeanReputation < 0 || res.MeanReputation > 1 {
						t.Fatalf("round %d: mean reputation %v outside [0, 1]", round, res.MeanReputation)
					}
					for _, u := range res.BlacklistedWorkers {
						if !slices.Contains(byz, u) {
							t.Fatalf("round %d: honest worker %d blacklisted (Byzantines %v)", round, u, byz)
						}
					}
					blacklisted += len(res.BlacklistedWorkers)
					if res.Blacklisted != blacklisted {
						t.Fatalf("round %d: cumulative blacklist %d, per-round verdicts sum to %d",
							round, res.Blacklisted, blacklisted)
					}
				}
				if atkName == "benign" && blacklisted != 0 {
					t.Errorf("benign run blacklisted %d workers under %s", blacklisted, detName)
				}
				for i, p := range s.Params() {
					if math.IsNaN(p) || math.IsInf(p, 0) {
						t.Fatalf("param %d is %v after %s/%s", i, p, atkName, detName)
					}
				}
			})
		}
	}
}

// TestHonestFleetNeverBlacklisted is the false-positive guard: with no
// attack at all, the cluster detector must blacklist nobody under any
// registered aggregator, and the fleet's mean reputation must stay
// high.
func TestHonestFleetNeverBlacklisted(t *testing.T) {
	asn, err := byzshield.NewMOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := byzshield.NewSyntheticDataset(byzshield.DatasetConfig{
		Train: 3000, Test: 500, Dim: 24, Classes: 10, ClassSep: 0.5, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]byzshield.AggregatorParams{
		"krum":         {C: 1},
		"multikrum":    {C: 1},
		"bulyan":       {C: 1},
		"trimmed-mean": {Trim: 1},
	}
	const rounds = 16
	for _, aggName := range byzshield.Registry.Aggregators() {
		t.Run(aggName, func(t *testing.T) {
			agg, err := byzshield.Registry.Aggregator(aggName, params[aggName])
			if err != nil {
				t.Fatal(err)
			}
			mdl, err := byzshield.NewMLPModel(24, 24, 10)
			if err != nil {
				t.Fatal(err)
			}
			s, err := byzshield.Open(context.Background(), byzshield.TrainConfig{
				Assignment: asn,
				Model:      mdl,
				Train:      train,
				Test:       test,
				BatchSize:  500,
				Aggregator: agg,
				Detector:   byzshield.ClusterDetector(0),
				Iterations: rounds,
				EvalEvery:  rounds,
				Seed:       11,
			})
			if err != nil {
				t.Fatalf("open %s: %v", aggName, err)
			}
			defer s.Close()
			var last byzshield.RoundResult
			for round := 0; round < rounds; round++ {
				if last, err = s.Step(context.Background()); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
			if last.Blacklisted != 0 {
				t.Errorf("honest-only run blacklisted %d workers under %s", last.Blacklisted, aggName)
			}
			if last.MeanReputation < 0.8 {
				t.Errorf("honest-only mean reputation %v under %s, want ≥ 0.8", last.MeanReputation, aggName)
			}
		})
	}
}
