// Package byzshield is a Go implementation of ByzShield (Konstantinidis
// & Ramamoorthy, MLSys 2021): a redundancy-based defense for distributed
// synchronous SGD against an omniscient Byzantine adversary. Tasks
// (batch files) are assigned to workers along bipartite expander graphs
// built from mutually orthogonal Latin squares or Ramanujan bigraphs;
// the parameter server majority-votes each file's replicas and robustly
// aggregates the winners, bounding the worst-case fraction of corrupted
// gradients by the graphs' spectral expansion.
//
// This package is the public façade over the implementation packages:
//
//	assignment construction  →  NewMOLS, NewRamanujan1, NewRamanujan2, NewFRC, NewBaseline
//	robustness analysis      →  AnalyzeDistortion, SpectralGap, GammaBound
//	attacks                  →  ALIE, ConstantAttack, ReversedGradient, NoAttack
//	aggregation              →  Median, MedianOfMeans, MultiKrum, Bulyan, SignSGD, ...
//	detection                →  ZScoreDetector, ClusterDetector, NoDetector
//	named components         →  Registry (string name → scheme/aggregator/attack)
//	training                 →  Open/Session (incremental), Train (fire-and-forget),
//	                            internal/transport (TCP)
//
// The Session API is the production entry point: Open(ctx, cfg) returns
// a Session whose Step/Run methods advance the protocol under a
// context, stream per-round metrics through OnRound/Events, and
// checkpoint/restore via Checkpoint/Restore — Train is a convenience
// wrapper over it.
//
// See the examples/ directory for runnable programs and DESIGN.md for
// the full system inventory.
package byzshield

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/attack"
	"byzshield/internal/data"
	"byzshield/internal/detect"
	"byzshield/internal/distort"
	"byzshield/internal/fault"
	"byzshield/internal/graph"
	"byzshield/internal/model"
	"byzshield/internal/trainer"
)

// Assignment is a worker–file placement produced by one of the scheme
// constructors. See internal/assign for the scheme implementations.
type Assignment = assign.Assignment

// Aggregator combines gradient vectors; see the aggregate constructors
// below.
type Aggregator = aggregate.Aggregator

// Attack generates Byzantine payloads.
type Attack = attack.Attack

// Fault is a worker participation fault model (crash, straggler, delay,
// flaky). Faults are orthogonal to attacks: an Attack corrupts what a
// worker sends, a Fault decides whether and when it sends at all, so
// fault scenarios compose with the attack × aggregator matrix. See the
// NoFault/CrashFault/StragglerFault/DelayFault/FlakyFault constructors
// and internal/fault.
type Fault = fault.Fault

// Detector is a PS-side Byzantine detection rule, run between gradient
// collection and aggregation over per-worker gradient-history features.
// See the NoDetector/ZScoreDetector/ClusterDetector constructors and
// internal/detect.
type Detector = detect.Detector

// DetectionPolicy is the reputation policy shared by every detector:
// feature-window length, minimum observed rounds before blacklisting,
// reputation EMA decay, detector threshold, and the blacklist floor.
// Zero values take the defaults documented in internal/detect.
type DetectionPolicy = detect.Params

// History is the recorded metric series of a training run.
type History = trainer.History

// Schedule is the (x, y, z) step-decay learning-rate schedule of the
// paper's Table 7: rate x, multiplied by y every z iterations.
type Schedule = trainer.Schedule

// Dataset is a dense classification dataset.
type Dataset = data.Dataset

// Distributor splits a dataset into per-file sample pools (the non-IID
// data-distribution component); see the IIDDistribution /
// DirichletDistribution / LabelSkewDistribution constructors and
// internal/data.
type Distributor = data.Distributor

// Model is a differentiable classifier over flat parameter vectors.
type Model = model.Model

// NewMOLS builds the Latin-square assignment of Algorithm 2 with
// computational load l (prime power) and replication r (2 ≤ r ≤ l−1):
// K = r·l workers, f = l² files.
func NewMOLS(l, r int) (*Assignment, error) { return assign.MOLS(l, r) }

// NewRamanujan1 builds the Ramanujan bigraph assignment, Case 1
// (m < s, prime s): K = m·s workers, f = s² files, (l, r) = (s, m).
func NewRamanujan1(s, m int) (*Assignment, error) { return assign.Ramanujan1(s, m) }

// NewRamanujan2 builds Case 2 (m ≥ s, s | m, prime s): K = s² workers,
// f = m·s files, (l, r) = (m, s). The paper's K = 25 cluster is
// NewRamanujan2(5, 5).
func NewRamanujan2(s, m int) (*Assignment, error) { return assign.Ramanujan2(s, m) }

// NewFRC builds the Fractional Repetition Code grouping used by DRACO
// and DETOX: K/r groups of r clones.
func NewFRC(k, r int) (*Assignment, error) { return assign.FRC(k, r) }

// NewBaseline builds the redundancy-free assignment (f = K, r = 1).
func NewBaseline(k int) (*Assignment, error) { return assign.Baseline(k) }

// NewRandom builds an unstructured r-replicated assignment (ablation
// contrast for the expander constructions).
func NewRandom(k, f, r int, seed int64) (*Assignment, error) {
	return assign.Random(k, f, r, rand.New(rand.NewSource(seed)))
}

// Median is ByzShield's default post-vote aggregation rule
// (coordinate-wise median).
func Median() Aggregator { return aggregate.Median{} }

// Mean is plain averaging (non-robust; for controls).
func Mean() Aggregator { return aggregate.Mean{} }

// TrimmedMean trims the t smallest and largest values per coordinate.
func TrimmedMean(t int) Aggregator { return aggregate.TrimmedMean{Trim: t} }

// MedianOfMeans groups inputs and takes the median of group means.
func MedianOfMeans(groups int) Aggregator { return aggregate.MedianOfMeans{Groups: groups} }

// MultiKrum averages the m best-scored inputs assuming at most c
// corruptions (m = 0 selects n − c − 2).
func MultiKrum(c, m int) Aggregator { return aggregate.MultiKrum{C: c, M: m} }

// Krum selects the single best-scored input assuming c corruptions.
func Krum(c int) Aggregator { return aggregate.Krum{C: c} }

// Bulyan runs iterated Krum selection plus trimmed aggregation,
// assuming at most c corruptions (requires n ≥ 4c + 3 inputs).
func Bulyan(c int) Aggregator { return aggregate.Bulyan{C: c} }

// SignSGD outputs the coordinate-wise majority sign.
func SignSGD() Aggregator { return aggregate.SignSGD{} }

// GeometricMedian computes the Weiszfeld geometric median.
func GeometricMedian() Aggregator { return aggregate.GeometricMedian{} }

// MeanAroundMedian averages the near values closest to the coordinate
// median (Xie et al. 2018); near = 0 selects ⌈n/2⌉.
func MeanAroundMedian(near int) Aggregator { return aggregate.MeanAroundMedian{Near: near} }

// Auror clusters each coordinate with 1-D 2-means and drops the
// minority cluster when centers are farther apart than threshold
// (Shen et al. 2016).
func Auror(threshold float64) Aggregator { return aggregate.Auror{Threshold: threshold} }

// NoAttack is the attack-free control.
func NoAttack() Attack { return attack.Benign{} }

// NoFault is the fault-free control: every worker participates in every
// round.
func NoFault() Fault { return fault.None{} }

// CrashFault permanently stops the listed workers from round atRound on
// (fail-stop). Files whose surviving replicas still meet the vote
// quorum degrade gracefully; files below quorum drop out of
// aggregation.
func CrashFault(atRound int, workers ...int) Fault {
	return fault.Crash{Workers: workers, AtRound: atRound}
}

// StragglerFault delays the listed workers' reports by delay every
// round. Only the TCP transport realizes delays physically (against the
// server's per-round deadline); the in-process engine treats stragglers
// as full participants.
func StragglerFault(delay time.Duration, workers ...int) Fault {
	return fault.Straggler{Workers: workers, Delay: delay}
}

// DelayFault postpones the listed workers' reports by delay in round
// atRound only — a transient hiccup a deadline-tolerant server absorbs.
func DelayFault(atRound int, delay time.Duration, workers ...int) Fault {
	return fault.Delay{Workers: workers, Round: atRound, Delay: delay}
}

// FlakyFault makes the listed workers skip each round independently
// with probability p, deterministically derived from seed so every
// process evaluating the same fault agrees on the schedule.
func FlakyFault(p float64, seed int64, workers ...int) Fault {
	return fault.Flaky{Workers: workers, P: p, Seed: seed}
}

// StackFault composes several fault models into one heterogeneous
// fleet scenario — e.g. StackFault(FlakyFault(0.3, 1, 2),
// StragglerFault(time.Second, 9)) makes worker 2 flaky while worker 9
// straggles. Decisions merge per (round, worker): crashes and skips
// OR, delays take the maximum.
func StackFault(faults ...Fault) Fault { return fault.Stack(faults) }

// ALIE is the "A Little Is Enough" attack (Baruch et al. 2019).
func ALIE() Attack { return attack.ALIE{} }

// NoDetector is the detection-free control (the default): nothing is
// flagged, every reputation stays 1, nobody is blacklisted.
func NoDetector() Detector { return detect.None{} }

// ZScoreDetector flags workers whose window-mean robust z-score (of
// report norm and cosine-to-median, median/MAD standardized across the
// live fleet) exceeds threshold (0 selects 3.0).
func ZScoreDetector(threshold float64) Detector { return detect.ZScore{Threshold: threshold} }

// ClusterDetector partitions workers' history features with a
// deterministic 2-means and flags a clearly separated, anomalous
// minority cluster; threshold is the minimum center separation
// (0 selects 2.0).
func ClusterDetector(threshold float64) Detector { return detect.KMeans{Threshold: threshold} }

// ConstantAttack sends a constant matrix scaled to gradient-sum
// magnitude.
func ConstantAttack(value float64) Attack {
	return attack.Constant{Value: value, ScaleByFileSize: true}
}

// ReversedGradient sends −c·g instead of the true gradient g.
func ReversedGradient(c float64) Attack { return attack.Reversed{C: c} }

// DistortionReport summarizes the omniscient adversary's best attack on
// an assignment.
type DistortionReport struct {
	Q          int
	CMax       int     // maximum distortable files
	Epsilon    float64 // CMax / f
	Gamma      float64 // Claim 1 spectral upper bound
	Byzantines []int   // a maximizing Byzantine worker set
	Exact      bool    // search proved optimality within the budget
}

// AnalyzeDistortion computes the worst-case distortion of q Byzantine
// workers on the assignment: the exact c_max(q) (branch-and-bound within
// budget; greedy lower bound on timeout) and the spectral γ bound.
func AnalyzeDistortion(a *Assignment, q int, budget time.Duration) (DistortionReport, error) {
	if a == nil {
		return DistortionReport{}, fmt.Errorf("byzshield: nil assignment")
	}
	if q < 0 || q > a.K {
		return DistortionReport{}, fmt.Errorf("byzshield: q=%d out of range [0,%d]", q, a.K)
	}
	if budget <= 0 {
		budget = 30 * time.Second
	}
	an := distort.NewAnalyzer(a)
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	res := an.MaxDistorted(ctx, q)
	mu1, err := SpectralGap(a)
	if err != nil {
		return DistortionReport{}, err
	}
	return DistortionReport{
		Q:          q,
		CMax:       res.CMax,
		Epsilon:    res.Epsilon,
		Gamma:      distort.Gamma(q, a.L, a.R, a.K, mu1),
		Byzantines: res.Byzantines,
		Exact:      res.Exact,
	}, nil
}

// SpectralGap returns µ1, the second-largest eigenvalue of the
// normalized co-assignment matrix A·Aᵀ — the expansion quality measure
// of Lemma 1 (1/r for the ByzShield constructions, 1 for FRC).
func SpectralGap(a *Assignment) (float64, error) {
	spec, err := graph.ComputeSpectrum(a.Graph, 1e-6)
	if err != nil {
		return 0, err
	}
	return spec.Mu1(), nil
}

// GammaBound returns the Claim 1 upper bound γ on c_max(q) for the
// assignment, using its actual spectral gap.
func GammaBound(a *Assignment, q int) (float64, error) {
	mu1, err := SpectralGap(a)
	if err != nil {
		return 0, err
	}
	return distort.Gamma(q, a.L, a.R, a.K, mu1), nil
}

// Defaults applied by Open (and therefore Train) to zero-valued
// TrainConfig fields. This block is the single source of truth for the
// config defaults; Open validates everything else explicitly and
// rejects ambiguous partial values rather than silently substituting.
const (
	// DefaultMomentum is applied when Momentum == 0 and NoMomentum is
	// unset.
	DefaultMomentum = 0.9
	// DefaultIterations is the training horizon when Iterations == 0.
	DefaultIterations = 300
	// DefaultEvalEvery is the evaluation cadence when EvalEvery == 0.
	DefaultEvalEvery = 25
	// DefaultSearchBudget bounds the worst-case Byzantine search when
	// SearchBudget == 0.
	DefaultSearchBudget = 10 * time.Second
)

// DefaultSchedule is the learning-rate schedule applied when Schedule
// is entirely zero: the (0.05, 0.96, 25) step decay used by the
// scaled-down reproduction (paper notation (x, y, z)).
func DefaultSchedule() Schedule { return Schedule{Base: 0.05, Decay: 0.96, Every: 25} }

// TrainConfig assembles a training run for Open (session-based) or
// Train (fire-and-forget). Zero-valued optional fields take the
// defaults documented in the Default* block above; ambiguous partial
// values (a Schedule with decay but no base rate, Momentum combined
// with NoMomentum, Q combined with Byzantines) are rejected by Open
// rather than silently patched.
type TrainConfig struct {
	Assignment *Assignment // required
	Model      Model       // required
	Train      *Dataset    // required
	Test       *Dataset    // required
	BatchSize  int         // required, ≥ number of files
	// Q selects the worst-case Byzantine set of that size
	// automatically; alternatively set Byzantines for explicit control.
	// Setting both is rejected.
	Q          int
	Byzantines []int
	Attack     Attack     // default NoAttack()
	Aggregator Aggregator // default Median()
	// Schedule defaults to DefaultSchedule() when entirely zero. A
	// partially set schedule (Base == 0 with Decay/Every set) is an
	// error.
	Schedule Schedule
	// Momentum defaults to DefaultMomentum when 0; set NoMomentum for
	// momentum-free SGD. Momentum outside [0, 1) is an error.
	Momentum   float64
	NoMomentum bool
	Seed       int64
	Iterations int // default DefaultIterations
	EvalEvery  int // default DefaultEvalEvery
	// SearchBudget bounds the worst-case Byzantine search (default
	// DefaultSearchBudget).
	SearchBudget time.Duration
	// Parallelism is the width of the engine's persistent worker pool:
	// 0 selects GOMAXPROCS, 1 runs every protocol phase serially on the
	// stepping goroutine. Any width yields bit-identical parameter
	// trajectories for a fixed seed; the knob only trades wall-clock
	// against cores.
	Parallelism int
	// Fault injects worker participation faults — CrashFault,
	// FlakyFault, etc. — into the run (default NoFault()). Rounds with
	// missing workers vote each file over its surviving replicas when
	// they meet Quorum and drop the file otherwise; RoundResult reports
	// the per-round degradation.
	Fault Fault
	// Quorum is the minimum surviving replicas a file needs to be voted
	// in a degraded round; 0 selects the majority of the nominal
	// replication, r/2 + 1. Values outside [1, r] are rejected.
	Quorum int
	// Detector runs PS-side Byzantine detection between collection and
	// aggregation (default NoDetector()): flagged workers lose
	// reputation, persistent offenders are blacklisted and excluded from
	// every later round, and RoundResult reports the per-round
	// reputation state. Detection composes with any Attack/Aggregator.
	Detector Detector
	// Detection is the reputation policy the detector runs under; zero
	// fields take the defaults documented in internal/detect.
	Detection DetectionPolicy
	// Distribution partitions the training set into per-file sample
	// pools for non-IID runs (nil keeps IID batch reshuffling): each
	// round, file v's samples are drawn from pool v, so the per-file
	// gradients realize the configured label heterogeneity. Resolve
	// named distributions through Registry.Distribution.
	Distribution Distributor
}

// normalized validates the config and returns a copy with every
// documented default applied.
func (cfg TrainConfig) normalized() (TrainConfig, error) {
	if cfg.Assignment == nil {
		return cfg, fmt.Errorf("byzshield: Assignment is required")
	}
	if cfg.Model == nil {
		return cfg, fmt.Errorf("byzshield: Model is required")
	}
	if cfg.Train == nil || cfg.Test == nil {
		return cfg, fmt.Errorf("byzshield: Train and Test datasets are required")
	}
	if cfg.BatchSize < cfg.Assignment.F {
		return cfg, fmt.Errorf("byzshield: BatchSize %d < file count %d", cfg.BatchSize, cfg.Assignment.F)
	}
	if cfg.Q < 0 || cfg.Q > cfg.Assignment.K {
		return cfg, fmt.Errorf("byzshield: Q=%d out of range [0,%d]", cfg.Q, cfg.Assignment.K)
	}
	if cfg.Q > 0 && len(cfg.Byzantines) > 0 {
		return cfg, fmt.Errorf("byzshield: set Q (worst-case search) or Byzantines (explicit set), not both")
	}
	if cfg.Schedule == (Schedule{}) {
		cfg.Schedule = DefaultSchedule()
	} else if cfg.Schedule.Base == 0 {
		return cfg, fmt.Errorf("byzshield: Schedule.Base must be set when Decay/Every are (got %v)", cfg.Schedule)
	} else if err := cfg.Schedule.Validate(); err != nil {
		return cfg, fmt.Errorf("byzshield: %w", err)
	}
	switch {
	case cfg.NoMomentum && cfg.Momentum != 0:
		return cfg, fmt.Errorf("byzshield: NoMomentum contradicts Momentum=%v", cfg.Momentum)
	case cfg.Momentum < 0 || cfg.Momentum >= 1:
		return cfg, fmt.Errorf("byzshield: Momentum %v outside [0,1)", cfg.Momentum)
	case cfg.Momentum == 0 && !cfg.NoMomentum:
		cfg.Momentum = DefaultMomentum
	}
	if cfg.Iterations < 0 {
		return cfg, fmt.Errorf("byzshield: Iterations %d < 0", cfg.Iterations)
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = DefaultIterations
	}
	if cfg.EvalEvery < 0 {
		return cfg, fmt.Errorf("byzshield: EvalEvery %d < 0", cfg.EvalEvery)
	}
	if cfg.EvalEvery == 0 {
		cfg.EvalEvery = DefaultEvalEvery
	}
	if cfg.SearchBudget < 0 {
		return cfg, fmt.Errorf("byzshield: SearchBudget %v < 0", cfg.SearchBudget)
	}
	if cfg.SearchBudget == 0 {
		cfg.SearchBudget = DefaultSearchBudget
	}
	if cfg.Parallelism < 0 {
		return cfg, fmt.Errorf("byzshield: Parallelism %d < 0", cfg.Parallelism)
	}
	if cfg.Attack == nil {
		cfg.Attack = NoAttack()
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = Median()
	}
	if cfg.Detector == nil {
		cfg.Detector = NoDetector()
	}
	return cfg, nil
}

// Train runs the full protocol (Algorithm 1) in process and returns the
// recorded history. It is a thin wrapper over Open followed by Run to
// the Iterations horizon; use Open directly for incremental stepping,
// cancellation, streaming metrics, or checkpointing.
func Train(cfg TrainConfig) (*History, error) {
	s, err := Open(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Run(context.Background(), 0)
}

// SyntheticDataset generates the deterministic 10-class synthetic
// classification dataset used throughout the experiments (the CIFAR-10
// stand-in; see DESIGN.md) with the default class separation.
func SyntheticDataset(train, test, dim, classes int, seed int64) (*Dataset, *Dataset, error) {
	return data.Synthetic(data.SyntheticConfig{
		Train: train, Test: test, Dim: dim, Classes: classes, Seed: seed,
	})
}

// DatasetConfig gives full control over the synthetic dataset
// (separation, noise, imbalance); see NewSyntheticDataset.
type DatasetConfig = data.SyntheticConfig

// NewSyntheticDataset generates train/test splits from a full config.
func NewSyntheticDataset(cfg DatasetConfig) (*Dataset, *Dataset, error) {
	return data.Synthetic(cfg)
}

// IIDDistribution is the homogeneous shuffle-and-deal control
// partition.
func IIDDistribution(seed int64) Distributor { return data.IID{Seed: seed} }

// DirichletDistribution draws each class's per-pool proportions from a
// symmetric Dirichlet(alpha) — the standard non-IID federated
// benchmark partition; alpha = 0 selects 0.5, smaller is more skewed.
func DirichletDistribution(alpha float64, seed int64) Distributor {
	return data.Dirichlet{Alpha: alpha, Seed: seed}
}

// LabelSkewDistribution orders samples by label, cuts them into
// pools×shards contiguous shards, and deals shards shards to each pool
// (shards = 0 selects 2): each pool sees at most shards distinct
// labels.
func LabelSkewDistribution(shards int, seed int64) Distributor {
	return data.LabelSkew{Shards: shards, Seed: seed}
}

// NewSoftmaxModel constructs multinomial logistic regression.
func NewSoftmaxModel(dim, classes int) (Model, error) { return model.NewSoftmax(dim, classes) }

// NewMLPModel constructs a ReLU MLP with the given layer widths
// (input, hidden..., classes).
func NewMLPModel(dims ...int) (Model, error) { return model.NewMLP(dims...) }

// NewConvNetModel constructs a small 1-D convolutional classifier
// (kernel-width convolution, numFilters filters, ReLU, dense softmax) —
// the convolutional analogue of the paper's ResNet-18 workload.
func NewConvNetModel(dim, kernel, numFilters, classes int) (Model, error) {
	return model.NewConvNet(dim, kernel, numFilters, classes)
}

// EvaluateAccuracy returns the top-1 accuracy of a model/parameter pair.
func EvaluateAccuracy(m Model, params []float64, ds *Dataset) float64 {
	return model.Accuracy(m, params, ds)
}
