package byzshield

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"byzshield/internal/checkpoint"
	"byzshield/internal/cluster"
	"byzshield/internal/distort"
	"byzshield/internal/trainer"
)

// PhaseTimes is the per-phase wall-clock split of one or more protocol
// rounds (compute / communication / aggregation, plus exact serialized
// bytes when communication measurement is enabled).
type PhaseTimes = cluster.PhaseTimes

// Checkpoint is the complete restartable training state of a Session:
// model parameters, optimizer momentum, iteration counter, recorded
// history, and free-form metadata identifying the experiment. It is the
// serialization format of internal/checkpoint (gob with a versioned
// magic header); persist it with Session.SaveCheckpoint or
// checkpoint-level Write, and reload with LoadCheckpoint.
type Checkpoint = checkpoint.State

// ErrSessionClosed is returned by operations on a closed Session.
var ErrSessionClosed = errors.New("byzshield: session closed")

// RoundResult reports one executed protocol round.
type RoundResult struct {
	// Round is the number of completed rounds after this step (1-based,
	// matching History iteration numbering).
	Round int
	// LR is the learning rate the round's update used.
	LR float64
	// DistortedFiles counts the file votes the Byzantines won this
	// round — the per-round realization of ε̂·f.
	DistortedFiles int
	// MissingWorkers lists the workers that did not participate this
	// round (crashed or skipped under the configured Fault), sorted
	// ascending; nil on full-participation rounds.
	MissingWorkers []int
	// DegradedFiles counts files voted over fewer than r surviving
	// replicas (quorum still met); DroppedFiles counts files excluded
	// from aggregation because their survivors fell below the quorum.
	DegradedFiles int
	DroppedFiles  int
	// AggregatorDegraded reports that dropped files pushed the
	// configured Byzantine-aware aggregation rule below its feasibility
	// floor this round, so the round fell back to coordinate-wise
	// median instead of erroring.
	AggregatorDegraded bool
	// MeanReputation is the fleet-wide mean reputation after this round
	// (1 when detection is off); FlaggedWorkers counts the workers the
	// detector flagged this round. BlacklistedWorkers lists the workers
	// newly blacklisted this round (nil otherwise); Blacklisted is the
	// cumulative blacklist size.
	MeanReputation     float64
	FlaggedWorkers     int
	BlacklistedWorkers []int
	Blacklisted        int
	// Times is the round's phase wall-clock split.
	Times PhaseTimes
	// Evaluated reports whether this round hit the evaluation cadence;
	// Loss and Accuracy are only meaningful when it is true.
	Evaluated bool
	Loss      float64
	Accuracy  float64
}

// Session is an incremental, observable, cancelable training run — the
// stateful counterpart of the fire-and-forget Train. A Session is
// created by Open, advanced one protocol round at a time by Step (or in
// batches by Run), observed through History, OnRound callbacks, and
// Events channels, and persisted/resumed via Checkpoint and Restore.
//
// All methods are safe for concurrent use; rounds themselves execute
// serially. A Session owns the engine's persistent worker-pool
// goroutines — Close releases them, marks the session closed, and
// closes event channels, so always Close a session when done with it.
type Session struct {
	mu         sync.Mutex
	cfg        TrainConfig // normalized: all defaults applied
	eng        *cluster.Engine
	byzantines []int
	history    trainer.History
	callbacks  []func(RoundResult)
	subs       map[int]chan RoundResult
	nextSub    int
	closed     bool
}

// Open validates the configuration, selects the worst-case Byzantine
// set when Q is given (bounded by SearchBudget and cancelable through
// ctx), and returns a Session positioned before round 1. See
// TrainConfig for the validation rules and documented defaults.
func Open(ctx context.Context, cfg TrainConfig) (*Session, error) {
	norm, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	byz := norm.Byzantines
	if len(byz) == 0 && norm.Q > 0 {
		an := distort.NewAnalyzer(norm.Assignment)
		sctx, cancel := context.WithTimeout(ctx, norm.SearchBudget)
		byz = an.MaxDistorted(sctx, norm.Q).Byzantines
		cancel()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	eng, err := cluster.New(cluster.Config{
		Assignment:   norm.Assignment,
		Model:        norm.Model,
		Train:        norm.Train,
		Test:         norm.Test,
		BatchSize:    norm.BatchSize,
		Attack:       norm.Attack,
		Byzantines:   byz,
		Aggregator:   norm.Aggregator,
		Schedule:     norm.Schedule,
		Momentum:     norm.Momentum,
		Seed:         norm.Seed,
		Parallelism:  norm.Parallelism,
		Fault:        norm.Fault,
		Quorum:       norm.Quorum,
		Detector:     norm.Detector,
		Detection:    norm.Detection,
		Distribution: norm.Distribution,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.CheckFeasible(); err != nil {
		eng.Close()
		return nil, fmt.Errorf("byzshield: %w", err)
	}
	return &Session{
		cfg:        norm,
		eng:        eng,
		byzantines: byz,
		subs:       make(map[int]chan RoundResult),
	}, nil
}

// Step executes one protocol round. It returns promptly with ctx.Err()
// if ctx is canceled before the round starts; the session then still
// sits at a round boundary and remains usable (resumable, checkpoint-
// able). Evaluation (loss + accuracy) happens when the completed-round
// count hits the EvalEvery cadence or the Iterations horizon, and is
// recorded in History.
func (s *Session) Step(ctx context.Context) (RoundResult, error) {
	res, _, err := s.step(ctx, 0)
	return res, err
}

// step executes one round unless horizon > 0 and the session has
// already completed that many rounds; the horizon check is atomic with
// the step, so concurrent Run callers cannot overshoot. stepped
// reports whether a round actually ran.
func (s *Session) step(ctx context.Context, horizon int) (res RoundResult, stepped bool, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return RoundResult{}, false, ErrSessionClosed
	}
	if horizon > 0 && s.eng.Iteration() >= horizon {
		s.mu.Unlock()
		return RoundResult{}, false, nil
	}
	stats, err := s.eng.StepOnce(ctx)
	if err != nil {
		s.mu.Unlock()
		return RoundResult{}, false, err
	}
	res = RoundResult{
		Round:              stats.Iteration + 1,
		LR:                 stats.LR,
		DistortedFiles:     stats.DistortedFiles,
		MissingWorkers:     stats.MissingWorkers,
		DegradedFiles:      stats.DegradedFiles,
		DroppedFiles:       stats.DroppedFiles,
		AggregatorDegraded: stats.AggregatorDegraded,
		MeanReputation:     stats.MeanReputation,
		FlaggedWorkers:     stats.FlaggedWorkers,
		BlacklistedWorkers: stats.BlacklistedWorkers,
		Blacklisted:        stats.Blacklisted,
		Times:              stats.Times,
	}
	if res.Round%s.cfg.EvalEvery == 0 || res.Round == s.cfg.Iterations {
		res.Evaluated = true
		res.Loss = s.eng.EvalLoss()
		res.Accuracy = s.eng.Evaluate()
		s.history.Add(res.Round, res.Loss, res.Accuracy)
	}
	// Stream to subscribers under the lock (non-blocking, drop-oldest
	// when a buffer is full) so channels cannot be closed mid-send.
	for _, ch := range s.subs {
		select {
		case ch <- res:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- res:
			default:
			}
		}
	}
	callbacks := append([]func(RoundResult){}, s.callbacks...)
	s.mu.Unlock()
	// Callbacks run outside the lock: they may call Session methods.
	for _, cb := range callbacks {
		cb(res)
	}
	return res, true, nil
}

// Run executes n rounds (or, when n <= 0, the rounds remaining to the
// configured Iterations horizon) and returns the recorded history. On
// cancellation or error the partial history is returned together with
// the error, so callers always observe the progress made. The horizon
// check is atomic with each step, so interleaved Run calls partition
// the remaining rounds between themselves without overshooting.
func (s *Session) Run(ctx context.Context, n int) (*History, error) {
	if n > 0 {
		for i := 0; i < n; i++ {
			if _, err := s.Step(ctx); err != nil {
				return s.History(), err
			}
		}
		return s.History(), nil
	}
	for {
		_, stepped, err := s.step(ctx, s.cfg.Iterations)
		if err != nil {
			return s.History(), err
		}
		if !stepped {
			return s.History(), nil
		}
	}
}

// Config returns the session's normalized configuration — the caller's
// TrainConfig with every documented default applied. Useful to inspect
// what a zero-valued field resolved to.
func (s *Session) Config() TrainConfig { return s.cfg }

// Round returns the number of completed rounds.
func (s *Session) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Iteration()
}

// History returns a copy of the evaluation series recorded so far.
func (s *Session) History() *History {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &History{Points: append([]trainer.Point(nil), s.history.Points...)}
}

// Params returns a copy of the current model parameter vector.
func (s *Session) Params() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Params()
}

// Times returns the accumulated per-phase wall-clock times.
func (s *Session) Times() PhaseTimes {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Times()
}

// Byzantines returns the corrupted worker set of this run (explicit
// from the config, or the worst-case set selected by Open).
func (s *Session) Byzantines() []int {
	return append([]int(nil), s.byzantines...)
}

// Epsilon returns the realized distortion fraction ε̂ = |corruptible|/f.
func (s *Session) Epsilon() float64 {
	return s.eng.DistortionFraction()
}

// CorruptibleFiles returns the files whose majority votes the run's
// Byzantine set controls — the static upper bound on the per-round
// DistortedFiles count.
func (s *Session) CorruptibleFiles() []int {
	return s.eng.CorruptibleFiles()
}

// OnRound registers a callback invoked after every completed round,
// outside the session lock. Callbacks from one round complete before
// the next Step returns.
func (s *Session) OnRound(fn func(RoundResult)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.callbacks = append(s.callbacks, fn)
}

// Events subscribes to the per-round metric stream. The returned
// channel is buffered (default 16 when buffer < 1); when a consumer
// falls behind, the oldest pending result is dropped rather than
// blocking training. The cancel function unsubscribes and closes the
// channel; Close does the same for all remaining subscriptions. On an
// already-closed session the returned channel is already closed.
func (s *Session) Events(buffer int) (<-chan RoundResult, func()) {
	if buffer < 1 {
		buffer = 16
	}
	ch := make(chan RoundResult, buffer)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if sub, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(sub)
		}
	}
	return ch, cancel
}

// Checkpoint captures the complete restartable state: parameters,
// optimizer momentum, iteration counter, and history, plus metadata
// identifying the experiment (scheme, attack, aggregator, seed).
func (s *Session) Checkpoint() *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	params, velocity, iter := s.eng.Snapshot()
	meta := map[string]string{
		"scheme":     string(s.cfg.Assignment.Scheme),
		"attack":     s.cfg.Attack.Name(),
		"aggregator": s.cfg.Aggregator.Name(),
		"seed":       strconv.FormatInt(s.cfg.Seed, 10),
	}
	if s.cfg.Fault != nil {
		meta["fault"] = s.cfg.Fault.Name()
	}
	return &Checkpoint{
		Params:     params,
		Velocity:   velocity,
		Iteration:  iter,
		History:    trainer.History{Points: append([]trainer.Point(nil), s.history.Points...)},
		Byzantines: append([]int(nil), s.byzantines...),
		Meta:       meta,
	}
}

// Restore rewinds (or fast-forwards) the session to a checkpointed
// state. The batch-sampler stream is reconstructed deterministically
// from the seed, so a restore into a freshly Opened session with the
// same TrainConfig continues bit-identically to the interrupted run —
// no round replay required. The checkpoint's history becomes the
// session's history.
//
// When the checkpoint records a Byzantine set, it must match the
// session's: a session Opened with Q > 0 re-runs the budget-bounded
// worst-case search, which may select a different set on different
// hardware — pass the checkpoint's set explicitly
// (TrainConfig.Byzantines = st.Byzantines) for an exact resume.
func (s *Session) Restore(st *Checkpoint) error {
	if st == nil {
		return fmt.Errorf("byzshield: nil checkpoint")
	}
	if err := st.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	if st.Byzantines != nil && !equalInts(st.Byzantines, s.byzantines) {
		return fmt.Errorf("byzshield: checkpoint Byzantine set %v != session's %v; "+
			"Open with TrainConfig.Byzantines set to the checkpoint's for an exact resume",
			st.Byzantines, s.byzantines)
	}
	if err := s.eng.Restore(st.Params, st.Velocity, st.Iteration); err != nil {
		return err
	}
	s.history = trainer.History{Points: append([]trainer.Point(nil), st.History.Points...)}
	return nil
}

// SaveCheckpoint atomically persists the current state to path.
func (s *Session) SaveCheckpoint(path string) error {
	return checkpoint.Save(path, s.Checkpoint())
}

// LoadCheckpoint reads a checkpoint previously written by
// SaveCheckpoint (or internal/checkpoint.Save), verifying its header
// and internal consistency.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	return checkpoint.Load(path)
}

// equalInts reports element-wise equality.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Close releases the engine's worker-pool goroutines, marks the session
// closed, and closes all event channels. Further Step/Restore calls
// fail with ErrSessionClosed; read-only accessors keep working. Close
// is idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.eng.Close()
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
	return nil
}
