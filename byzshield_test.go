package byzshield

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestFacadeConstructors(t *testing.T) {
	mols, err := NewMOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mols.K != 15 || mols.F != 25 {
		t.Errorf("MOLS params: %v", mols)
	}
	ram2, err := NewRamanujan2(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ram2.K != 25 || ram2.F != 25 {
		t.Errorf("Ram2 params: %v", ram2)
	}
	if _, err := NewRamanujan1(5, 3); err != nil {
		t.Error(err)
	}
	if _, err := NewFRC(15, 3); err != nil {
		t.Error(err)
	}
	if _, err := NewBaseline(25); err != nil {
		t.Error(err)
	}
	if _, err := NewRandom(15, 25, 3, 1); err != nil {
		t.Error(err)
	}
}

func TestSpectralGapValues(t *testing.T) {
	mols, _ := NewMOLS(5, 3)
	mu1, err := SpectralGap(mols)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu1-1.0/3) > 1e-6 {
		t.Errorf("MOLS µ1 = %v, want 1/3", mu1)
	}
	frc, _ := NewFRC(15, 3)
	mu1FRC, err := SpectralGap(frc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu1FRC-1) > 1e-6 {
		t.Errorf("FRC µ1 = %v, want 1", mu1FRC)
	}
}

func TestAnalyzeDistortionMatchesTable3(t *testing.T) {
	mols, _ := NewMOLS(5, 3)
	rep, err := AnalyzeDistortion(mols, 5, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exact || rep.CMax != 8 {
		t.Errorf("q=5: %+v, want exact c_max=8", rep)
	}
	if math.Abs(rep.Epsilon-0.32) > 1e-9 {
		t.Errorf("ε̂ = %v, want 0.32", rep.Epsilon)
	}
	if math.Abs(rep.Gamma-10) > 0.01 {
		t.Errorf("γ = %v, want 10 (Table 3)", rep.Gamma)
	}
	if len(rep.Byzantines) != 5 {
		t.Errorf("byzantines = %v", rep.Byzantines)
	}
}

func TestAnalyzeDistortionErrors(t *testing.T) {
	if _, err := AnalyzeDistortion(nil, 1, time.Second); err == nil {
		t.Error("nil assignment accepted")
	}
	mols, _ := NewMOLS(5, 3)
	if _, err := AnalyzeDistortion(mols, -1, time.Second); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := AnalyzeDistortion(mols, 99, time.Second); err == nil {
		t.Error("q > K accepted")
	}
}

func TestGammaBound(t *testing.T) {
	mols, _ := NewMOLS(5, 3)
	g, err := GammaBound(mols, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-2.105) > 0.01 {
		t.Errorf("γ(2) = %v, want ≈2.11", g)
	}
}

func TestTrainEndToEnd(t *testing.T) {
	mols, err := NewMOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := SyntheticDataset(800, 300, 12, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSoftmaxModel(12, 10)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Train(TrainConfig{
		Assignment: mols,
		Model:      m,
		Train:      train,
		Test:       test,
		BatchSize:  100,
		Q:          3,
		Attack:     ALIE(),
		Iterations: 60,
		EvalEvery:  20,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.FinalAccuracy() < 0.5 {
		t.Errorf("accuracy %.3f under ALIE q=3", h.FinalAccuracy())
	}
}

func TestTrainValidatesInfeasibleAggregator(t *testing.T) {
	mols, _ := NewMOLS(5, 3)
	train, test, _ := SyntheticDataset(300, 100, 8, 10, 4)
	m, _ := NewSoftmaxModel(8, 10)
	_, err := Train(TrainConfig{
		Assignment: mols,
		Model:      m,
		Train:      train,
		Test:       test,
		BatchSize:  100,
		Q:          7, // c_max = 14 of 25: Bulyan needs 4·14+3 = 59 > 25
		Aggregator: Bulyan(14),
		Iterations: 5,
		Seed:       1,
	})
	if err == nil || !strings.Contains(err.Error(), "bulyan") {
		t.Errorf("expected bulyan feasibility error, got %v", err)
	}
}

func TestTrainRequiresAssignment(t *testing.T) {
	if _, err := Train(TrainConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestEvaluateAccuracyFacade(t *testing.T) {
	train, _, err := SyntheticDataset(50, 10, 6, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMLPModel(6, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float64, m.NumParams())
	acc := EvaluateAccuracy(m, params, train)
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy %v", acc)
	}
}

func TestAggregatorFactories(t *testing.T) {
	grads := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}}
	for _, agg := range []Aggregator{
		Median(), Mean(), TrimmedMean(1), MedianOfMeans(3),
		MultiKrum(1, 0), Krum(1), Bulyan(1), SignSGD(), GeometricMedian(),
	} {
		if _, err := agg.Aggregate(grads); err != nil {
			t.Errorf("%s: %v", agg.Name(), err)
		}
	}
}

func TestAttackFactories(t *testing.T) {
	for _, a := range []Attack{NoAttack(), ALIE(), ConstantAttack(-1), ReversedGradient(1)} {
		if a.Name() == "" {
			t.Error("attack with empty name")
		}
	}
}
