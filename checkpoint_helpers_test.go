package byzshield_test

import (
	"byzshield/internal/checkpoint"
)

// checkpointSave persists a training snapshot through the checkpoint
// package (helper shared by the integration tests).
func checkpointSave(path string, params, velocity []float64, iter int) error {
	return checkpoint.Save(path, &checkpoint.State{
		Params:    params,
		Velocity:  velocity,
		Iteration: iter,
		Meta:      map[string]string{"suite": "integration"},
	})
}

// checkpointLoad restores a training snapshot.
func checkpointLoad(path string) (params, velocity []float64, iter int, err error) {
	st, err := checkpoint.Load(path)
	if err != nil {
		return nil, nil, 0, err
	}
	return st.Params, st.Velocity, st.Iteration, nil
}
