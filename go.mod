module byzshield

go 1.22
