GO ?= go

.PHONY: all build test bench lint fmt clean

all: lint test

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
