GO ?= go

.PHONY: all build test race bench lint fmt clean

all: lint test

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
