GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race bench fuzz lint fmt clean

all: lint test

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Each wire-codec fuzz target runs for FUZZTIME (go test allows one
# -fuzz pattern per invocation, hence the loop; the pattern is anchored
# because several f32 names extend an f64 name by suffix).
fuzz: build
	for t in FuzzParseFrameHeader FuzzReadFrame FuzzDecodeParams \
	         FuzzParamsDeltaRoundTrip FuzzDecodeGradFrame FuzzGradFrameRoundTrip \
	         FuzzUplinkRoundTrip FuzzDecodeUplink FuzzUplinkQuantRoundTrip \
	         FuzzDecodeUplinkSign FuzzDecodeUplinkInt8 FuzzDecodeMomentFrame \
	         FuzzDecodeGradFrame32 FuzzParams32DeltaRoundTrip FuzzDecodeParams32 \
	         FuzzDecodeUplink32 FuzzUplinkQuant32RoundTrip; do \
		$(GO) test -run '^$$' -fuzz "^$$t$$$$" -fuzztime $(FUZZTIME) ./internal/wire || exit 1; \
	done

lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
