package byzshield_test

import (
	"context"
	"fmt"
	"time"

	"byzshield"
)

// ExampleNewMOLS constructs the paper's Example 1 assignment and shows
// worker U0's files (Table 2, first row).
func ExampleNewMOLS() {
	asn, err := byzshield.NewMOLS(5, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(asn)
	fmt.Println(asn.WorkerFiles(0))
	// Output:
	// mols(K=15, f=25, l=5, r=3)
	// [0 9 13 17 21]
}

// ExampleAnalyzeDistortion reproduces a Table 3 row: with q = 3
// omniscient Byzantines, at most 3 of 25 file votes can be flipped.
func ExampleAnalyzeDistortion() {
	asn, err := byzshield.NewMOLS(5, 3)
	if err != nil {
		panic(err)
	}
	rep, err := byzshield.AnalyzeDistortion(asn, 3, 30*time.Second)
	if err != nil {
		panic(err)
	}
	fmt.Printf("c_max=%d epsilon=%.2f gamma=%.2f exact=%v\n",
		rep.CMax, rep.Epsilon, rep.Gamma, rep.Exact)
	// Output:
	// c_max=3 epsilon=0.12 gamma=4.29 exact=true
}

// ExampleSpectralGap shows the Lemma 2 spectral gap µ1 = 1/r for the
// Ramanujan Case 2 construction versus µ1 = 1 for FRC grouping.
func ExampleSpectralGap() {
	ram, err := byzshield.NewRamanujan2(5, 5)
	if err != nil {
		panic(err)
	}
	frc, err := byzshield.NewFRC(25, 5)
	if err != nil {
		panic(err)
	}
	muRam, err := byzshield.SpectralGap(ram)
	if err != nil {
		panic(err)
	}
	muFRC, err := byzshield.SpectralGap(frc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ramanujan2 mu1=%.2f frc mu1=%.2f\n", muRam, muFRC)
	// Output:
	// ramanujan2 mu1=0.20 frc mu1=1.00
}

// ExampleMedian demonstrates the robust aggregation primitive on its
// own: one adversarial vector cannot move the coordinate-wise median.
func ExampleMedian() {
	agg := byzshield.Median()
	out, err := agg.Aggregate([][]float64{
		{1.0, 2.0},
		{1.1, 2.1},
		{0.9, 1.9},
		{1e9, -1e9}, // Byzantine
		{1.0, 2.0},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.1f %.1f\n", out[0], out[1])
	// Output:
	// 1.0 2.0
}

// ExampleTrain runs a short end-to-end defended training job against
// the reversed-gradient attack and reports whether it converged.
func ExampleTrain() {
	asn, err := byzshield.NewMOLS(5, 3)
	if err != nil {
		panic(err)
	}
	train, test, err := byzshield.SyntheticDataset(600, 200, 10, 5, 3)
	if err != nil {
		panic(err)
	}
	mdl, err := byzshield.NewSoftmaxModel(10, 5)
	if err != nil {
		panic(err)
	}
	hist, err := byzshield.Train(byzshield.TrainConfig{
		Assignment: asn,
		Model:      mdl,
		Train:      train,
		Test:       test,
		BatchSize:  100,
		Q:          3,
		Attack:     byzshield.ReversedGradient(10),
		Iterations: 50,
		EvalEvery:  50,
		Seed:       3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(hist.FinalAccuracy() > 0.6)
	// Output:
	// true
}

// ExampleOpen steps a session round by round under a context, with the
// components resolved by name from the registry — the incremental
// counterpart of ExampleTrain.
func ExampleOpen() {
	ctx := context.Background()
	asn, err := byzshield.Registry.Scheme("mols", byzshield.SchemeParams{L: 5, R: 3})
	if err != nil {
		panic(err)
	}
	train, test, err := byzshield.SyntheticDataset(600, 200, 10, 5, 3)
	if err != nil {
		panic(err)
	}
	mdl, err := byzshield.NewSoftmaxModel(10, 5)
	if err != nil {
		panic(err)
	}
	attack, err := byzshield.Registry.Attack("reversed", byzshield.AttackParams{C: 10})
	if err != nil {
		panic(err)
	}
	s, err := byzshield.Open(ctx, byzshield.TrainConfig{
		Assignment: asn,
		Model:      mdl,
		Train:      train,
		Test:       test,
		BatchSize:  100,
		Q:          3,
		Attack:     attack,
		Iterations: 50,
		EvalEvery:  50,
		Seed:       3,
	})
	if err != nil {
		panic(err)
	}
	defer s.Close()
	for s.Round() < 50 {
		if _, err := s.Step(ctx); err != nil {
			panic(err)
		}
	}
	fmt.Println(s.Round(), s.History().FinalAccuracy() > 0.6)
	// Output:
	// 50 true
}
