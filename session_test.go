// Session API tests: incremental stepping, cancellation, metric
// streaming, checkpoint/restore round-trips, and the equivalence of the
// registry-constructed and direct-constructor component paths.
package byzshield_test

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"

	"byzshield"
)

// sessionConfig builds a small deterministic run with an explicit
// Byzantine set (no search nondeterminism) on MOLS(5,3).
func sessionConfig(t testing.TB, iters int) byzshield.TrainConfig {
	t.Helper()
	asn, err := byzshield.NewMOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := byzshield.SyntheticDataset(600, 200, 12, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := byzshield.NewMLPModel(12, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	return byzshield.TrainConfig{
		Assignment: asn,
		Model:      mdl,
		Train:      train,
		Test:       test,
		BatchSize:  100,
		Byzantines: []int{1, 6, 11},
		Attack:     byzshield.ALIE(),
		Aggregator: byzshield.Median(),
		Iterations: iters,
		EvalEvery:  5,
		Seed:       9,
	}
}

func TestSessionStepAndHistory(t *testing.T) {
	ctx := context.Background()
	s, err := byzshield.Open(ctx, sessionConfig(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 1; i <= 10; i++ {
		res, err := s.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Round != i {
			t.Fatalf("round = %d, want %d", res.Round, i)
		}
		if wantEval := i%5 == 0; res.Evaluated != wantEval {
			t.Errorf("round %d: Evaluated = %v, want %v", i, res.Evaluated, wantEval)
		}
		if res.LR <= 0 {
			t.Errorf("round %d: LR = %v", i, res.LR)
		}
	}
	if s.Round() != 10 {
		t.Errorf("Round() = %d, want 10", s.Round())
	}
	h := s.History()
	if len(h.Points) != 2 { // evaluations at rounds 5 and 10
		t.Fatalf("history has %d points, want 2", len(h.Points))
	}
	if h.Points[0].Iteration != 5 || h.Points[1].Iteration != 10 {
		t.Errorf("history iterations %v", h.Points)
	}
	if s.Epsilon() <= 0 {
		t.Errorf("ε̂ = %v, want > 0 for q=3 on MOLS(5,3)", s.Epsilon())
	}
	if got := len(s.Byzantines()); got != 3 {
		t.Errorf("byzantines = %v", s.Byzantines())
	}
}

// TestSessionCancellation: a mid-run context cancellation must return
// promptly with the partial history intact — the headline Session
// property.
func TestSessionCancellation(t *testing.T) {
	s, err := byzshield.Open(context.Background(), sessionConfig(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	// Cancel after the 12th round from a metrics callback — guaranteed
	// mid-run, no timing dependence.
	s.OnRound(func(r byzshield.RoundResult) {
		if r.Round == 12 {
			cancel()
		}
	})
	start := time.Now()
	h, err := s.Run(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if s.Round() != 12 {
		t.Errorf("Round() = %d, want 12 (cancel observed at next step)", s.Round())
	}
	// Partial history: evaluations at rounds 5 and 10 happened.
	if len(h.Points) != 2 {
		t.Errorf("partial history has %d points, want 2: %v", len(h.Points), h.Points)
	}
	// The session survives cancellation: stepping with a live context
	// continues from the boundary.
	res, err := s.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Round != 13 {
		t.Errorf("post-cancel round = %d, want 13", res.Round)
	}
}

// TestSessionCheckpointRestoreRoundTrip: Step k rounds, Checkpoint,
// Restore into a *fresh* Session, continue — the combined history and
// final parameters must match an uninterrupted run seed-for-seed.
func TestSessionCheckpointRestoreRoundTrip(t *testing.T) {
	ctx := context.Background()
	const total, k = 20, 8

	// Uninterrupted reference run.
	ref, err := byzshield.Open(ctx, sessionConfig(t, total))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	wantHist, err := ref.Run(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantParams := ref.Params()

	// Interrupted run: k rounds, checkpoint to disk, restore into a
	// fresh session, finish.
	first, err := byzshield.Open(ctx, sessionConfig(t, total))
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := first.Run(ctx, k); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mid.ckpt")
	if err := first.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	st, err := byzshield.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iteration != k {
		t.Fatalf("checkpoint iteration = %d, want %d", st.Iteration, k)
	}
	if st.Meta["scheme"] != "mols" || st.Meta["attack"] != "alie" {
		t.Errorf("checkpoint meta = %v", st.Meta)
	}

	second, err := byzshield.Open(ctx, sessionConfig(t, total))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if err := second.Restore(st); err != nil {
		t.Fatal(err)
	}
	if second.Round() != k {
		t.Fatalf("restored Round() = %d, want %d", second.Round(), k)
	}
	gotHist, err := second.Run(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotParams := second.Params()

	if len(gotHist.Points) != len(wantHist.Points) {
		t.Fatalf("history lengths differ: %d vs %d", len(gotHist.Points), len(wantHist.Points))
	}
	for i := range wantHist.Points {
		w, g := wantHist.Points[i], gotHist.Points[i]
		if w.Iteration != g.Iteration ||
			math.Float64bits(w.Loss) != math.Float64bits(g.Loss) ||
			math.Float64bits(w.Accuracy) != math.Float64bits(g.Accuracy) {
			t.Fatalf("history point %d differs: %+v vs %+v", i, g, w)
		}
	}
	for i := range wantParams {
		if math.Float64bits(wantParams[i]) != math.Float64bits(gotParams[i]) {
			t.Fatalf("params diverged at %d: %v vs %v", i, gotParams[i], wantParams[i])
		}
	}
}

// TestRegistryRunMatchesDirectRun: a run assembled entirely from
// registry names must produce bit-identical history to the
// direct-constructor path — the acceptance property of the named
// component catalog.
func TestRegistryRunMatchesDirectRun(t *testing.T) {
	ctx := context.Background()

	direct := sessionConfig(t, 15)
	direct.Attack = byzshield.ALIE()
	direct.Aggregator = byzshield.Median()

	viaRegistry := direct
	asn, err := byzshield.Registry.Scheme("mols", byzshield.SchemeParams{L: 5, R: 3})
	if err != nil {
		t.Fatal(err)
	}
	viaRegistry.Assignment = asn
	if viaRegistry.Attack, err = byzshield.Registry.Attack("alie"); err != nil {
		t.Fatal(err)
	}
	if viaRegistry.Aggregator, err = byzshield.Registry.Aggregator("median"); err != nil {
		t.Fatal(err)
	}

	run := func(cfg byzshield.TrainConfig) *byzshield.History {
		s, err := byzshield.Open(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		h, err := s.Run(ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	want, got := run(direct), run(viaRegistry)
	if len(want.Points) != len(got.Points) || len(want.Points) == 0 {
		t.Fatalf("history lengths: %d vs %d", len(got.Points), len(want.Points))
	}
	for i := range want.Points {
		w, g := want.Points[i], got.Points[i]
		if math.Float64bits(w.Loss) != math.Float64bits(g.Loss) ||
			math.Float64bits(w.Accuracy) != math.Float64bits(g.Accuracy) {
			t.Fatalf("point %d differs: %+v vs %+v", i, g, w)
		}
	}
}

// TestSessionEvents: the channel subscription streams every round and
// unsubscribing closes the channel.
func TestSessionEvents(t *testing.T) {
	ctx := context.Background()
	s, err := byzshield.Open(ctx, sessionConfig(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	events, cancelSub := s.Events(32)
	var callbackRounds []int
	s.OnRound(func(r byzshield.RoundResult) {
		callbackRounds = append(callbackRounds, r.Round)
	})
	if _, err := s.Run(ctx, 6); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		select {
		case r := <-events:
			if r.Round != i {
				t.Errorf("event %d has round %d", i, r.Round)
			}
		default:
			t.Fatalf("missing event for round %d", i)
		}
	}
	if len(callbackRounds) != 6 {
		t.Errorf("callback saw %d rounds, want 6", len(callbackRounds))
	}
	cancelSub()
	if _, open := <-events; open {
		t.Error("events channel not closed after cancel")
	}

	// A full tiny buffer drops the oldest result instead of blocking.
	small, cancelSmall := s.Events(1)
	defer cancelSmall()
	if _, err := s.Run(ctx, 3); err != nil {
		t.Fatal(err)
	}
	r := <-small
	if r.Round != 9 {
		t.Errorf("drop-oldest kept round %d, want 9 (the newest)", r.Round)
	}
}

// TestSessionClosed: operations on a closed session fail with
// ErrSessionClosed, and Train's wrapper semantics stay intact.
func TestSessionClosed(t *testing.T) {
	ctx := context.Background()
	s, err := byzshield.Open(ctx, sessionConfig(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}
	if _, err := s.Step(ctx); !errors.Is(err, byzshield.ErrSessionClosed) {
		t.Errorf("Step on closed session: %v", err)
	}
	if err := s.Restore(&byzshield.Checkpoint{Params: s.Params()}); !errors.Is(err, byzshield.ErrSessionClosed) {
		t.Errorf("Restore on closed session: %v", err)
	}
	// Events on a closed session must not leak a never-closed channel.
	ch, cancel := s.Events(4)
	if _, open := <-ch; open {
		t.Error("Events channel on closed session not closed")
	}
	cancel() // no-op, must not panic
}

// TestRestoreRejectsByzantineMismatch: a checkpoint recorded under one
// adversary placement cannot silently resume under another.
func TestRestoreRejectsByzantineMismatch(t *testing.T) {
	ctx := context.Background()
	s, err := byzshield.Open(ctx, sessionConfig(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(ctx, 2); err != nil {
		t.Fatal(err)
	}
	st := s.Checkpoint()
	if len(st.Byzantines) != 3 {
		t.Fatalf("checkpoint byzantines = %v", st.Byzantines)
	}

	other := sessionConfig(t, 10)
	other.Byzantines = []int{0, 5, 10} // different placement
	s2, err := byzshield.Open(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Restore(st); err == nil {
		t.Error("mismatched Byzantine set accepted")
	}
}

// TestTrainConfigValidation: the zero-value traps are now explicit
// errors or documented defaults.
func TestTrainConfigValidation(t *testing.T) {
	ctx := context.Background()
	base := sessionConfig(t, 5)

	// Defaults land where documented.
	cfg := base
	cfg.Iterations = 0
	cfg.EvalEvery = 0
	s, err := byzshield.Open(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	norm := s.Config()
	s.Close()
	if norm.Iterations != byzshield.DefaultIterations ||
		norm.EvalEvery != byzshield.DefaultEvalEvery ||
		norm.Momentum != byzshield.DefaultMomentum ||
		norm.Schedule != byzshield.DefaultSchedule() ||
		norm.SearchBudget != byzshield.DefaultSearchBudget {
		t.Errorf("normalized defaults wrong: %+v", norm)
	}

	// NoMomentum yields momentum-free SGD without magic values.
	cfg = base
	cfg.NoMomentum = true
	if s, err = byzshield.Open(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	if got := s.Config().Momentum; got != 0 {
		t.Errorf("NoMomentum → momentum %v", got)
	}
	s.Close()

	bad := []struct {
		name   string
		mutate func(*byzshield.TrainConfig)
	}{
		{"missing assignment", func(c *byzshield.TrainConfig) { c.Assignment = nil }},
		{"missing model", func(c *byzshield.TrainConfig) { c.Model = nil }},
		{"missing datasets", func(c *byzshield.TrainConfig) { c.Train = nil }},
		{"batch below files", func(c *byzshield.TrainConfig) { c.BatchSize = 3 }},
		{"partial schedule", func(c *byzshield.TrainConfig) { c.Schedule = byzshield.Schedule{Decay: 0.9, Every: 10} }},
		{"momentum out of range", func(c *byzshield.TrainConfig) { c.Momentum = 1.5 }},
		{"negative momentum", func(c *byzshield.TrainConfig) { c.Momentum = -0.1 }},
		{"momentum vs NoMomentum", func(c *byzshield.TrainConfig) { c.Momentum = 0.5; c.NoMomentum = true }},
		{"negative iterations", func(c *byzshield.TrainConfig) { c.Iterations = -1 }},
		{"negative eval cadence", func(c *byzshield.TrainConfig) { c.EvalEvery = -1 }},
		{"q out of range", func(c *byzshield.TrainConfig) { c.Byzantines = nil; c.Q = 99 }},
		{"q and byzantines", func(c *byzshield.TrainConfig) { c.Q = 2 }},
		{"negative search budget", func(c *byzshield.TrainConfig) { c.SearchBudget = -time.Second }},
	}
	for _, tc := range bad {
		cfg := base
		tc.mutate(&cfg)
		if _, err := byzshield.Open(ctx, cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestOpenCancellation: a canceled context aborts Open during the
// worst-case Byzantine search.
func TestOpenCancellation(t *testing.T) {
	cfg := sessionConfig(t, 5)
	cfg.Byzantines = nil
	cfg.Q = 3
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := byzshield.Open(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("Open with canceled ctx: %v", err)
	}
}

// TestSessionFaultScenario: a crash fault injected through the public
// API degrades rounds without aborting the session, and the per-round
// results report the missing worker and degraded file counts.
func TestSessionFaultScenario(t *testing.T) {
	cfg := sessionConfig(t, 8)
	cfg.Byzantines = nil
	cfg.Attack = nil
	cfg.Fault = byzshield.CrashFault(3, 4)
	s, err := byzshield.Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for round := 0; round < 8; round++ {
		res, err := s.Step(context.Background())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round < 3 {
			if len(res.MissingWorkers) != 0 || res.DegradedFiles != 0 || res.DroppedFiles != 0 {
				t.Fatalf("round %d: degraded before the crash: %+v", round, res)
			}
			continue
		}
		if len(res.MissingWorkers) != 1 || res.MissingWorkers[0] != 4 {
			t.Fatalf("round %d: missing %v, want [4]", round, res.MissingWorkers)
		}
		if res.DegradedFiles == 0 {
			t.Fatalf("round %d: no degraded files after crash", round)
		}
	}
	// The fault model lands in checkpoint metadata for reproducibility.
	if got := s.Checkpoint().Meta["fault"]; got != cfg.Fault.Name() {
		t.Errorf("checkpoint fault meta %q, want %q", got, cfg.Fault.Name())
	}
}

// TestSessionQuorumValidation: quorum outside [1, r] is rejected.
func TestSessionQuorumValidation(t *testing.T) {
	cfg := sessionConfig(t, 4)
	cfg.Quorum = 7 // r = 3
	if _, err := byzshield.Open(context.Background(), cfg); err == nil {
		t.Error("quorum 7 > r accepted")
	}
}

// TestFaultComposesWithAttack: a crash fault and an ALIE attack run in
// the same session — the scenario matrix composes.
func TestFaultComposesWithAttack(t *testing.T) {
	cfg := sessionConfig(t, 6)
	cfg.Fault = byzshield.FlakyFault(0.4, 3, 0, 7)
	s, err := byzshield.Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background(), 0); err != nil {
		t.Fatalf("faulty+attacked run failed: %v", err)
	}
	if s.Round() != 6 {
		t.Errorf("completed %d rounds, want 6", s.Round())
	}
}
