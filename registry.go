package byzshield

import "byzshield/internal/registry"

// ComponentRegistry maps string names to constructors for the six
// pluggable component kinds: assignment schemes, aggregation rules,
// Byzantine attacks, worker fault models, PS-side Byzantine detectors,
// and data distributions. It is safe for concurrent
// use and extensible via the Register* methods; see internal/registry
// for the name catalog and per-scheme parameter conventions.
type ComponentRegistry = registry.Registry

// SchemeParams parameterizes assignment-scheme construction: L (load),
// R (replication), K (workers), F (files, random scheme only), Seed.
type SchemeParams = registry.SchemeParams

// AggregatorParams parameterizes aggregation rules (C/M for the Krum
// family, Trim, Groups, Near, Threshold).
type AggregatorParams = registry.AggregatorParams

// AttackParams parameterizes attacks (Value, C, Z, Scale).
type AttackParams = registry.AttackParams

// FaultParams parameterizes worker fault models (Workers, Round, P,
// Delay, Seed).
type FaultParams = registry.FaultParams

// DetectorParams parameterizes the PS-side Byzantine detectors
// (Threshold) and their shared reputation policy (Window, MinRounds,
// Decay, BlacklistBelow).
type DetectorParams = registry.DetectorParams

// DistributionParams parameterizes the data-distribution components
// (Alpha for "dirichlet", Shards for "label-skew", Seed).
type DistributionParams = registry.DistributionParams

// Registry is the default component catalog, pre-populated with every
// scheme ("mols", "ramanujan1", "ramanujan2", "frc", "baseline",
// "random"), aggregator ("median", "mean", "trimmed-mean",
// "median-of-means", "krum", "multikrum", "bulyan", "signsgd",
// "geometric-median", "mean-around-median", "auror"), attack
// ("benign", "alie", "constant", "reversed", "random-gaussian",
// "sign-flip"), fault model ("none", "crash", "straggler", "delay",
// "flaky"), Byzantine detector ("none", "zscore", "cluster"), and data
// distribution ("iid", "dirichlet", "label-skew") implemented in the
// repository:
//
//	asn, err := byzshield.Registry.Scheme("mols", byzshield.SchemeParams{L: 5, R: 3})
//	agg, err := byzshield.Registry.Aggregator("median")
//	atk, err := byzshield.Registry.Attack("alie")
//	flt, err := byzshield.Registry.Fault("crash", byzshield.FaultParams{Workers: []int{2}, Round: 50})
//
// Registry-built components are identical values to the ones returned
// by the direct constructors (NewMOLS, Median, ALIE, ...), so the two
// paths are interchangeable. Registry is the process-wide shared
// catalog: components registered on it are also visible to the wire
// transport (transport.Spec names) and the experiments layer. Programs
// that want isolation instead should use a private catalog from
// NewRegistry.
var Registry = registry.Default

// NewRegistry returns a fresh registry pre-populated with the builtin
// catalog, independent of the package-level Registry.
func NewRegistry() *ComponentRegistry { return registry.NewBuiltin() }
