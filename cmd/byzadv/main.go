// Command byzadv runs the coordinated-adversary sidecar hub: the
// rendezvous a coalition of Byzantine byzworker processes uses to
// exchange per-round gradient moments, so omniscient attacks (ALIE)
// run cross-process. Start it before the coalition's workers, point
// them at it with -adv-addr, and it exits when the coalition drains:
//
//	byzadv -listen :7501 -peers 3 &
//	byzworker -connect :7500 -id 0 -behavior alie -adv-addr :7501
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"byzshield/internal/advnet"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7501", "hub listen address")
	peers := flag.Int("peers", 1, "coalition size: Byzantine workers to admit before relaying")
	quiet := flag.Bool("quiet", false, "suppress membership and relay logging")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	hub, err := advnet.NewHub(*listen, *peers, logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer hub.Close()
	log.Printf("byzadv: hub listening on %s for %d member(s)", hub.Addr(), *peers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := hub.Serve(ctx); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Printf("byzadv: coalition drained, shutting down")
}
