// Command byzps runs the TCP parameter server for real multi-process
// distributed training (the repository's stand-in for the paper's
// MPICH deployment). Start byzps first, then K byzworker processes.
// Scheme and aggregator are resolved by name through the component
// registry; SIGINT/SIGTERM cancel the run cleanly.
//
// Usage:
//
//	byzps -listen 127.0.0.1:7077 -scheme mols -l 5 -r 3 -rounds 200
//	byzworker -connect 127.0.0.1:7077 -id 0 &
//	... (one byzworker per worker id 0..K-1; some may be -behavior reversed)
//
// Fault injection (the Spec carries the fault models to every worker,
// so workers crash/skip/delay themselves against the server's real
// per-round deadline and quorum handling):
//
//	byzps ... -fault crash -fault-workers 2,9 -fault-round 50
//	byzps ... -fault flaky -fault-workers 1,4 -fault-p 0.3
//	byzps ... -fault straggler -fault-workers 3 -fault-delay 5s -round-timeout 2s
//
// Heterogeneous per-worker faults compose with -faults (semicolon-
// separated name@workers clauses, each with optional key=value knobs),
// e.g. worker 2 flaky while worker 9 straggles:
//
//	byzps ... -faults "flaky@2:p=0.3;straggler@9:delay=2s"
//
// Byzantine detection (PS-side, between collection and aggregation;
// blacklisted workers are evicted, their rejoin tokens refused with a
// typed rejection, and their replicas excluded from every later vote):
//
//	byzps ... -detector zscore -detector-threshold 3
//	byzps ... -detector cluster -detector-min-rounds 10
//
// Parameter broadcasts ship as bit-exact deltas between periodic full
// refreshes; -full-every controls the cadence (1 = full every round).
// Worker→PS gradient reports run the negotiated uplink codec tier:
//
//	-uplink delta   XOR deltas against each worker's previous report,
//	                raw fallback per frame (bit-exact; the default)
//	-uplink raw     uncompressed frames (recommended for CPU-bound
//	                loopback fleets, where the delta codec's two extra
//	                passes per gradient cost more than the bytes saved)
//	-uplink sign    lossy 1-bit sign quantization, one scale per
//	                (file, shard) row — ~64x fewer gradient bytes
//	-uplink int8    lossy 8-bit linear quantization, min/scale per
//	                (file, shard) row — ~8x fewer gradient bytes
//
// The lossy tiers trade exactness for bandwidth: the PS aggregates the
// dequantized values, so the trajectory is deterministic (and matches
// the in-process engine on the same tier bit for bit) but differs from
// the lossless trajectory. Workers advertise the tiers they support at
// Hello; the server downgrades to the best mutually supported lossless
// tier rather than substituting a different lossy one.
// -no-uplink-delta is a deprecated alias for -uplink raw. -v logs
// per-round participation and wire-volume stats, and the lifecycle
// counters (joins, rejoins, evictions, stale frames retired) print at
// shutdown.
//
// The aggregation plane itself is configurable: -shards N splits the
// parameter vector into N contiguous coordinate ranges that vote and
// aggregate independently as their report frames land, and -pipeline
// piggybacks round t+1's sample assignments on round t's parameter
// broadcast so steady-state rounds reuse one pre-encoded RoundStart
// frame. Both are bit-identical to the single-loop plane:
//
//	byzps ... -shards 4 -pipeline
//
// Live observability (see DESIGN.md "Observability"): -metrics-addr
// serves /metrics (Prometheus text), /statusz (human-readable fleet
// table and recent rounds), /healthz, and /debug/pprof/* on a separate
// diagnostics listener; -trace-out streams one JSON object per round
// (phase timings, wire volume, flagged/evicted worker sets) to a file:
//
//	byzps ... -metrics-addr 127.0.0.1:9090 -trace-out run.jsonl
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"byzshield"
	"byzshield/internal/cluster"
	"byzshield/internal/obs"
	"byzshield/internal/trainer"
	"byzshield/internal/transport"
	"byzshield/internal/wire"
)

// traceRingRounds is how many completed rounds the PS tracer retains
// for /statusz's recent-rounds table.
const traceRingRounds = 256

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7077", "listen address")
		scheme  = flag.String("scheme", "mols", "assignment scheme: "+strings.Join(byzshield.Registry.Schemes(), ", "))
		l       = flag.Int("l", 5, "computational load parameter")
		r       = flag.Int("r", 3, "replication factor")
		k       = flag.Int("k", 15, "cluster size (frc/baseline/random)")
		f       = flag.Int("f", 0, "file count (random scheme only)")
		rounds  = flag.Int("rounds", 100, "training rounds")
		batch   = flag.Int("batch", 250, "batch size")
		trainN  = flag.Int("train", 2000, "training-set size")
		testN   = flag.Int("test", 500, "test-set size")
		dim     = flag.Int("dim", 16, "feature dimension")
		classes = flag.Int("classes", 10, "number of classes")
		hidden  = flag.Int("hidden", 0, "MLP hidden width (0 = softmax)")
		agg     = flag.String("aggregator", "median", "aggregation rule: "+strings.Join(byzshield.Registry.Aggregators(), ", "))
		aggC    = flag.Int("agg-c", 0, "aggregator corruption parameter (krum/multikrum/bulyan)")
		aggG    = flag.Int("agg-groups", 0, "median-of-means group count (default 3)")
		lr      = flag.Float64("lr", 0.05, "base learning rate")
		decay   = flag.Float64("decay", 0.96, "learning-rate decay factor")
		every   = flag.Int("every", 25, "iterations between decays")
		seed    = flag.Int64("seed", 42, "experiment seed")

		roundTimeout = flag.Duration("round-timeout", transport.DefaultRoundTimeout,
			"per-round report-collection deadline (negative disables; stalled workers miss the round)")
		fullEvery = flag.Int("full-every", transport.DefaultFullBroadcastEvery,
			"full parameter-broadcast cadence (1 = full vector every round, N = deltas between every N-th round)")
		uplink = flag.String("uplink", "delta",
			"worker→PS report codec tier: raw, delta (bit-exact XOR compression), sign or int8 (lossy quantization)")
		precision = flag.String("precision", "f64",
			"numeric precision tier: f64 (full protocol) or f32 (reduced-precision kernels and frames; softmax only, no faults/detection/pipeline)")
		noUplinkDelta = flag.Bool("no-uplink-delta", false,
			"deprecated alias for -uplink raw")
		shardCount = flag.Int("shards", 0,
			"aggregation shards: split the parameter vector into N coordinate ranges that vote/aggregate independently (0 or 1 = single loop; bit-identical either way)")
		pipeline = flag.Bool("pipeline", false,
			"pipeline round prep: ship round t+1's sample assignments with round t's broadcast (bit-identical; RoundStart becomes one shared pre-encoded frame)")
		verbose = flag.Bool("v", false,
			"log every round: missing workers, rejoins/evictions/stale frames, up/down wire bytes")
		quorum       = flag.Int("quorum", 0, "minimum surviving replicas per file vote (0 = r/2+1)")
		faultName    = flag.String("fault", "", "worker fault model to inject: "+strings.Join(byzshield.Registry.Faults(), ", "))
		faultWorkers = flag.String("fault-workers", "", "comma-separated worker ids the fault targets")
		faultRound   = flag.Int("fault-round", 0, "crash/delay round parameter")
		faultP       = flag.Float64("fault-p", 0.3, "flaky drop probability")
		faultDelay   = flag.Duration("fault-delay", 2*time.Second, "straggler/delay duration")
		faultSpecs   = flag.String("faults", "",
			`composed per-worker faults: "name@ids[:k=v,...]" clauses joined by ";" (e.g. "flaky@2:p=0.3;straggler@9:delay=2s")`)
		detector = flag.String("detector", "",
			"PS-side Byzantine detector: "+strings.Join(byzshield.Registry.Detectors(), ", ")+" (empty = none)")
		detThreshold = flag.Float64("detector-threshold", 0,
			"detector outlier threshold (0 = detector default)")
		detWindow    = flag.Int("detector-window", 0, "detector feature-window length (0 = default)")
		detMinRounds = flag.Int("detector-min-rounds", 0, "rounds observed before blacklisting (0 = default)")
		detDecay     = flag.Float64("detector-decay", 0, "reputation EMA decay (0 = default)")
		detBlacklist = flag.Float64("detector-blacklist-below", 0, "reputation blacklist floor (0 = default)")
		metricsAddr  = flag.String("metrics-addr", "",
			"diagnostics listen address serving /metrics, /statusz, /healthz and /debug/pprof (empty = disabled)")
		traceOut = flag.String("trace-out", "",
			"stream per-round traces as JSONL to this file (empty = disabled)")
	)
	flag.Parse()

	tier, err := wire.ParseUplinkTier(*uplink)
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzps:", err)
		os.Exit(2)
	}
	if *noUplinkDelta {
		if *uplink != "delta" {
			fmt.Fprintln(os.Stderr, "byzps: -no-uplink-delta (deprecated) conflicts with -uplink; drop the deprecated flag")
			os.Exit(2)
		}
		tier = wire.TierRaw
	}

	workers, err := parseWorkerList(*faultWorkers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzps:", err)
		os.Exit(2)
	}
	composed, err := parseFaultSpecs(*faultSpecs, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzps:", err)
		os.Exit(2)
	}

	spec := transport.Spec{
		Scheme: *scheme, L: *l, R: *r, K: *k, F: *f,
		Aggregator: *agg,
		AggParams:  byzshield.AggregatorParams{C: *aggC, Groups: *aggG},
		TrainN:     *trainN, TestN: *testN, Dim: *dim, Classes: *classes,
		DataSeed: *seed, ClassSep: 2.0, Hidden: *hidden,
		BatchSize: *batch,
		Schedule:  trainer.Schedule{Base: *lr, Decay: *decay, Every: *every},
		Momentum:  0.9, Seed: *seed, Rounds: *rounds,
		Fault: *faultName,
		FaultParams: byzshield.FaultParams{
			Workers: workers, Round: *faultRound, P: *faultP, Delay: *faultDelay, Seed: *seed,
		},
		Faults:   composed,
		Detector: *detector,
		DetectorParams: byzshield.DetectorParams{
			Window: *detWindow, MinRounds: *detMinRounds,
			Decay: *detDecay, Threshold: *detThreshold, BlacklistBelow: *detBlacklist,
		},
	}
	prec, err := wire.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzps:", err)
		os.Exit(2)
	}
	if prec == wire.PrecisionF32 {
		switch {
		case *pipeline:
			fmt.Fprintln(os.Stderr, "byzps: -pipeline is f64-only (the f32 tier is self-contained per round)")
			os.Exit(2)
		case *metricsAddr != "" || *traceOut != "":
			fmt.Fprintln(os.Stderr, "byzps: -metrics-addr/-trace-out are f64-only")
			os.Exit(2)
		}
		runF32(spec, transport.ServerConfig32{
			Spec:               spec,
			Logf:               log.Printf,
			RoundTimeout:       *roundTimeout,
			FullBroadcastEvery: *fullEvery,
			Uplink:             tier,
			Shards:             *shardCount,
			Quorum:             *quorum,
		}, *listen, *verbose)
		return
	}
	srvCfg := transport.ServerConfig{
		Spec:               spec,
		Logf:               log.Printf,
		RoundTimeout:       *roundTimeout,
		FullBroadcastEvery: *fullEvery,
		Uplink:             tier,
		Shards:             *shardCount,
		Pipeline:           *pipeline,
		Quorum:             *quorum,
	}
	// Observability plane: the registry and tracer are created whenever
	// either output (HTTP scrape or JSONL stream) wants them; every
	// hot-path instrument is an atomic store, so enabling them does not
	// perturb the trajectory or the round allocation budget.
	var (
		registry *obs.Registry
		tracer   *obs.Tracer
	)
	if *metricsAddr != "" || *traceOut != "" {
		registry = obs.NewRegistry()
		tracer = obs.NewTracer(traceRingRounds)
		srvCfg.Metrics = registry
		srvCfg.Tracer = tracer
	}
	var traceFlush func() error
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "byzps:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		tracer.SetSink(bw)
		traceFlush = func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
	}
	if *verbose {
		srvCfg.OnRound = func(rs cluster.RoundStats) {
			log.Printf("round %d: missing=%v rejoins=%d evictions=%d stale=%d upB=%d (raw %d) downB=%d",
				rs.Iteration, rs.MissingWorkers, rs.Rejoins, rs.Evictions, rs.StaleFrames,
				rs.Times.ReportBytes, rs.Times.ReportRawBytes, rs.Times.BroadcastBytes)
			if rs.FlaggedWorkers > 0 || rs.Blacklisted > 0 {
				log.Printf("round %d: detection: flagged=%d mean-rep=%.3f blacklisted=%d (new %v)",
					rs.Iteration, rs.FlaggedWorkers, rs.MeanReputation, rs.Blacklisted, rs.BlacklistedWorkers)
			}
		}
	} else if *detector != "" && *detector != "none" {
		// Blacklisting is worth a log line even without -v: the worker's
		// session is permanently revoked.
		srvCfg.OnRound = func(rs cluster.RoundStats) {
			if len(rs.BlacklistedWorkers) > 0 {
				log.Printf("round %d: blacklisted workers %v (mean reputation %.3f)",
					rs.Iteration, rs.BlacklistedWorkers, rs.MeanReputation)
			}
		}
	}
	srv, err := transport.NewServer(*listen, srvCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzps:", err)
		os.Exit(1)
	}
	defer srv.Close()

	if *metricsAddr != "" {
		diag, err := obs.ListenAndServe(*metricsAddr, obs.ServerOptions{
			Registry: registry,
			Fleet:    srv.Fleet(),
			Tracer:   tracer,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "byzps:", err)
			os.Exit(1)
		}
		defer diag.Close()
		log.Printf("diagnostics on http://%s (/metrics /statusz /healthz /debug/pprof)", diag.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("parameter server listening on %s (scheme=%s, aggregator=%s, waiting for workers)",
		srv.Addr(), *scheme, *agg)
	final, err := srv.Serve(ctx)
	// The shutdown summary is a formatted view of the same atomics the
	// /metrics lifecycle counters read live — one source, two views.
	logCounters := func() {
		c := srv.Counters()
		log.Printf("lifecycle: joins=%d rejoins=%d evictions=%d stale-frames=%d blacklist-rejections=%d",
			c.Joins, c.Rejoins, c.Evictions, c.StaleFrames, c.BlacklistRejections)
	}
	closeTrace := func() {
		if traceFlush == nil {
			return
		}
		if err := traceFlush(); err != nil {
			log.Printf("trace flush: %v", err)
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Printf("interrupted; %d evaluations recorded", len(srv.History().Points))
			logCounters()
			closeTrace()
			os.Exit(130)
		}
		logCounters()
		closeTrace()
		fmt.Fprintln(os.Stderr, "byzps:", err)
		os.Exit(1)
	}
	logCounters()
	closeTrace()
	fmt.Printf("final top-1 test accuracy: %.4f\n", final)
}

// runF32 drives the float32-precision server: the same listen/serve
// lifecycle as the f64 path over the reduced-precision engine and
// frames (this is where -precision f32 lands).
func runF32(spec transport.Spec, cfg transport.ServerConfig32, listen string, verbose bool) {
	if verbose {
		cfg.OnRound = func(rs cluster.RoundStats) {
			log.Printf("round %d: missing=%v rejoins=%d evictions=%d stale=%d upB=%d (raw %d) downB=%d",
				rs.Iteration, rs.MissingWorkers, rs.Rejoins, rs.Evictions, rs.StaleFrames,
				rs.Times.ReportBytes, rs.Times.ReportRawBytes, rs.Times.BroadcastBytes)
		}
	}
	srv, err := transport.NewServer32(listen, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzps:", err)
		os.Exit(1)
	}
	defer srv.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("f32 parameter server listening on %s (scheme=%s, aggregator=%s, waiting for workers)",
		srv.Addr(), spec.Scheme, spec.Aggregator)
	final, err := srv.Serve(ctx)
	c := srv.Counters()
	log.Printf("lifecycle: joins=%d rejoins=%d evictions=%d stale-frames=%d",
		c.Joins, c.Rejoins, c.Evictions, c.StaleFrames)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Printf("interrupted; %d evaluations recorded", len(srv.History().Points))
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "byzps:", err)
		os.Exit(1)
	}
	fmt.Printf("final top-1 test accuracy: %.4f\n", final)
}

// parseWorkerList parses a comma-separated id list ("" → nil).
func parseWorkerList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad worker id %q in -fault-workers", p)
		}
		out = append(out, id)
	}
	return out, nil
}

// parseFaultSpecs parses the -faults composition syntax: semicolon-
// separated clauses of the form "name@ids" with optional ":key=value"
// knobs (p, round, delay, seed), e.g.
// "flaky@2:p=0.3;straggler@9:delay=2s;crash@5:round=40".
func parseFaultSpecs(s string, defaultSeed int64) ([]transport.FaultSpec, error) {
	if s == "" {
		return nil, nil
	}
	var out []transport.FaultSpec
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		head, knobs, _ := strings.Cut(clause, ":")
		name, ids, ok := strings.Cut(head, "@")
		if !ok {
			return nil, fmt.Errorf("fault clause %q: want name@workers", clause)
		}
		workers, err := parseWorkerList(ids)
		if err != nil {
			return nil, fmt.Errorf("fault clause %q: %w", clause, err)
		}
		fs := transport.FaultSpec{
			Name:   strings.TrimSpace(name),
			Params: byzshield.FaultParams{Workers: workers, Seed: defaultSeed},
		}
		if knobs != "" {
			for _, kv := range strings.Split(knobs, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("fault clause %q: knob %q is not key=value", clause, kv)
				}
				switch k {
				case "p":
					if fs.Params.P, err = strconv.ParseFloat(v, 64); err != nil {
						return nil, fmt.Errorf("fault clause %q: bad p: %w", clause, err)
					}
				case "round":
					if fs.Params.Round, err = strconv.Atoi(v); err != nil {
						return nil, fmt.Errorf("fault clause %q: bad round: %w", clause, err)
					}
				case "delay":
					if fs.Params.Delay, err = time.ParseDuration(v); err != nil {
						return nil, fmt.Errorf("fault clause %q: bad delay: %w", clause, err)
					}
				case "seed":
					if fs.Params.Seed, err = strconv.ParseInt(v, 10, 64); err != nil {
						return nil, fmt.Errorf("fault clause %q: bad seed: %w", clause, err)
					}
				default:
					return nil, fmt.Errorf("fault clause %q: unknown knob %q", clause, k)
				}
			}
		}
		out = append(out, fs)
	}
	return out, nil
}
