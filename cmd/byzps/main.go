// Command byzps runs the TCP parameter server for real multi-process
// distributed training (the repository's stand-in for the paper's
// MPICH deployment). Start byzps first, then K byzworker processes.
//
// Usage:
//
//	byzps -listen 127.0.0.1:7077 -scheme mols -l 5 -r 3 -rounds 200
//	byzworker -connect 127.0.0.1:7077 -id 0 &
//	... (one byzworker per worker id 0..K-1; some may be -behavior reversed)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"byzshield/internal/aggregate"
	"byzshield/internal/trainer"
	"byzshield/internal/transport"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7077", "listen address")
		scheme  = flag.String("scheme", "mols", "assignment scheme: mols, ramanujan1, ramanujan2, frc, baseline")
		l       = flag.Int("l", 5, "computational load parameter")
		r       = flag.Int("r", 3, "replication factor")
		k       = flag.Int("k", 15, "cluster size (frc/baseline)")
		rounds  = flag.Int("rounds", 100, "training rounds")
		batch   = flag.Int("batch", 250, "batch size")
		trainN  = flag.Int("train", 2000, "training-set size")
		testN   = flag.Int("test", 500, "test-set size")
		dim     = flag.Int("dim", 16, "feature dimension")
		classes = flag.Int("classes", 10, "number of classes")
		hidden  = flag.Int("hidden", 0, "MLP hidden width (0 = softmax)")
		agg     = flag.String("aggregator", "median", "aggregation rule: median, mean, mom, signsgd")
		lr      = flag.Float64("lr", 0.05, "base learning rate")
		decay   = flag.Float64("decay", 0.96, "learning-rate decay factor")
		every   = flag.Int("every", 25, "iterations between decays")
		seed    = flag.Int64("seed", 42, "experiment seed")
	)
	flag.Parse()

	var aggregator aggregate.Aggregator
	switch *agg {
	case "median":
		aggregator = aggregate.Median{}
	case "mean":
		aggregator = aggregate.Mean{}
	case "mom":
		aggregator = aggregate.MedianOfMeans{Groups: 3}
	case "signsgd":
		aggregator = aggregate.SignSGD{}
	default:
		fmt.Fprintf(os.Stderr, "byzps: unknown aggregator %q\n", *agg)
		os.Exit(2)
	}

	spec := transport.Spec{
		Scheme: *scheme, L: *l, R: *r, K: *k,
		TrainN: *trainN, TestN: *testN, Dim: *dim, Classes: *classes,
		DataSeed: *seed, ClassSep: 2.0, Hidden: *hidden,
		BatchSize: *batch,
		Schedule:  trainer.Schedule{Base: *lr, Decay: *decay, Every: *every},
		Momentum:  0.9, Seed: *seed, Rounds: *rounds,
	}
	srv, err := transport.NewServer(*listen, transport.ServerConfig{
		Spec:       spec,
		Aggregator: aggregator,
		Logf:       log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzps:", err)
		os.Exit(1)
	}
	defer srv.Close()
	log.Printf("parameter server listening on %s (scheme=%s, waiting for workers)", srv.Addr(), *scheme)
	final, err := srv.Serve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzps:", err)
		os.Exit(1)
	}
	fmt.Printf("final top-1 test accuracy: %.4f\n", final)
}
