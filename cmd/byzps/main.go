// Command byzps runs the TCP parameter server for real multi-process
// distributed training (the repository's stand-in for the paper's
// MPICH deployment). Start byzps first, then K byzworker processes.
// Scheme and aggregator are resolved by name through the component
// registry; SIGINT/SIGTERM cancel the run cleanly.
//
// Usage:
//
//	byzps -listen 127.0.0.1:7077 -scheme mols -l 5 -r 3 -rounds 200
//	byzworker -connect 127.0.0.1:7077 -id 0 &
//	... (one byzworker per worker id 0..K-1; some may be -behavior reversed)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"byzshield"
	"byzshield/internal/trainer"
	"byzshield/internal/transport"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7077", "listen address")
		scheme  = flag.String("scheme", "mols", "assignment scheme: "+strings.Join(byzshield.Registry.Schemes(), ", "))
		l       = flag.Int("l", 5, "computational load parameter")
		r       = flag.Int("r", 3, "replication factor")
		k       = flag.Int("k", 15, "cluster size (frc/baseline/random)")
		f       = flag.Int("f", 0, "file count (random scheme only)")
		rounds  = flag.Int("rounds", 100, "training rounds")
		batch   = flag.Int("batch", 250, "batch size")
		trainN  = flag.Int("train", 2000, "training-set size")
		testN   = flag.Int("test", 500, "test-set size")
		dim     = flag.Int("dim", 16, "feature dimension")
		classes = flag.Int("classes", 10, "number of classes")
		hidden  = flag.Int("hidden", 0, "MLP hidden width (0 = softmax)")
		agg     = flag.String("aggregator", "median", "aggregation rule: "+strings.Join(byzshield.Registry.Aggregators(), ", "))
		aggC    = flag.Int("agg-c", 0, "aggregator corruption parameter (krum/multikrum/bulyan)")
		aggG    = flag.Int("agg-groups", 0, "median-of-means group count (default 3)")
		lr      = flag.Float64("lr", 0.05, "base learning rate")
		decay   = flag.Float64("decay", 0.96, "learning-rate decay factor")
		every   = flag.Int("every", 25, "iterations between decays")
		seed    = flag.Int64("seed", 42, "experiment seed")
	)
	flag.Parse()

	spec := transport.Spec{
		Scheme: *scheme, L: *l, R: *r, K: *k, F: *f,
		Aggregator: *agg,
		AggParams:  byzshield.AggregatorParams{C: *aggC, Groups: *aggG},
		TrainN:     *trainN, TestN: *testN, Dim: *dim, Classes: *classes,
		DataSeed: *seed, ClassSep: 2.0, Hidden: *hidden,
		BatchSize: *batch,
		Schedule:  trainer.Schedule{Base: *lr, Decay: *decay, Every: *every},
		Momentum:  0.9, Seed: *seed, Rounds: *rounds,
	}
	srv, err := transport.NewServer(*listen, transport.ServerConfig{
		Spec: spec,
		Logf: log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzps:", err)
		os.Exit(1)
	}
	defer srv.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("parameter server listening on %s (scheme=%s, aggregator=%s, waiting for workers)",
		srv.Addr(), *scheme, *agg)
	final, err := srv.Serve(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Printf("interrupted; %d evaluations recorded", len(srv.History().Points))
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "byzps:", err)
		os.Exit(1)
	}
	fmt.Printf("final top-1 test accuracy: %.4f\n", final)
}
