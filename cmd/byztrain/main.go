// Command byztrain runs the deep-learning robustness experiments of
// Sec. 6, regenerating Figures 2–11 of the paper on the synthetic
// CIFAR-10 stand-in (see DESIGN.md for the substitution rationale).
//
// Usage:
//
//	byztrain -figure 2                     # one paper figure
//	byztrain -figure all                   # the whole evaluation suite
//	byztrain -figure 6 -iters 1000 -series # full-length run with curves
//	byztrain -figure 2 -csv > fig2.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"byzshield/internal/experiments"
)

func main() {
	var (
		figure = flag.String("figure", "", "figure id: 2..11 or 'all'")
		iters  = flag.Int("iters", 300, "training iterations per curve")
		eval   = flag.Int("eval", 25, "evaluate accuracy every N iterations")
		trainN = flag.Int("train", 3000, "training-set size")
		testN  = flag.Int("test", 1000, "test-set size")
		dim    = flag.Int("dim", 24, "feature dimension")
		hidden = flag.Int("hidden", 24, "MLP hidden width (0 = softmax regression)")
		sep    = flag.Float64("sep", 0.5, "class separation of the synthetic task")
		batch  = flag.Int("batch", 500, "batch size")
		seed   = flag.Int64("seed", 42, "experiment seed")
		budget = flag.Duration("budget", 10*time.Second, "Byzantine-set search budget")
		csv    = flag.Bool("csv", false, "emit accuracy series as CSV")
		series = flag.Bool("series", false, "print the full accuracy trajectories")
		plot   = flag.Bool("plot", false, "draw ASCII line charts of the accuracy curves")
	)
	flag.Parse()
	if *figure == "" {
		fmt.Fprintln(os.Stderr, "byztrain: specify -figure N (2..11) or -figure all")
		os.Exit(2)
	}

	opts := experiments.DefaultTrainOpts()
	opts.Iterations = *iters
	opts.EvalEvery = *eval
	opts.TrainN = *trainN
	opts.TestN = *testN
	opts.Dim = *dim
	opts.Hidden = *hidden
	opts.ClassSep = *sep
	opts.BatchSize = *batch
	opts.Seed = *seed
	opts.SearchBudget = *budget

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ids := []string{*figure}
	if *figure == "all" {
		ids = []string{"2", "3", "4", "5", "6", "7", "8", "9", "10", "11"}
	}
	for _, id := range ids {
		fig, err := experiments.FigureByID(ctx, id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "byztrain:", err)
			os.Exit(1)
		}
		switch {
		case *csv:
			experiments.RenderFigureCSV(os.Stdout, fig)
		case *plot:
			experiments.RenderFigurePlot(os.Stdout, fig, 72, 20)
		case *series:
			experiments.RenderFigure(os.Stdout, fig)
			experiments.RenderFigureSeries(os.Stdout, fig)
		default:
			experiments.RenderFigure(os.Stdout, fig)
		}
		fmt.Println()
	}
}
