// Command byzworker is the worker-process counterpart of byzps: it
// connects to the parameter server, computes file gradient sums for its
// assigned files every round, and optionally behaves Byzantine.
// SIGINT/SIGTERM cancel the run cleanly.
//
// Usage:
//
//	byzworker -connect 127.0.0.1:7077 -id 0
//	byzworker -connect 127.0.0.1:7077 -id 3 -behavior reversed
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"byzshield/internal/transport"
)

func main() {
	var (
		connect  = flag.String("connect", "127.0.0.1:7077", "parameter server address")
		id       = flag.Int("id", -1, "worker id (0..K-1)")
		behavior = flag.String("behavior", "honest", "honest, reversed, constant, zero")
		value    = flag.Float64("value", -1, "payload value for -behavior constant")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()
	if *id < 0 {
		fmt.Fprintln(os.Stderr, "byzworker: -id is required")
		os.Exit(2)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	final, err := transport.RunWorker(ctx, *connect, transport.WorkerConfig{
		ID:            *id,
		Behavior:      transport.WorkerBehavior(*behavior),
		ConstantValue: *value,
		Logf:          logf,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Printf("worker %d interrupted", *id)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "byzworker:", err)
		os.Exit(1)
	}
	fmt.Printf("worker %d done; final accuracy %.4f\n", *id, final)
}
