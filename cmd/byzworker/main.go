// Command byzworker is the worker-process counterpart of byzps: it
// connects to the parameter server, computes file gradient sums for its
// assigned files every round, and optionally behaves Byzantine.
// SIGINT/SIGTERM cancel the run cleanly.
//
// If the connection to the PS breaks mid-run the worker reconnects
// automatically with its session token (bounded by -reconnects) and is
// re-admitted at the next round boundary with a full parameter
// broadcast. A worker process that was restarted from scratch can
// re-enter the run it was evicted from by passing the session token its
// first join logged:
//
//	byzworker -connect 127.0.0.1:7077 -id 0
//	byzworker -connect 127.0.0.1:7077 -id 3 -behavior reversed
//	byzworker -connect 127.0.0.1:7077 -id 3 -resume-token 0x1f3a...
//
// Coordinated attacks: the omniscient ALIE attack needs the global
// gradient population, which a coalition of worker processes exchanges
// through the byzadv sidecar hub. Start byzadv with the coalition size,
// then point each Byzantine worker at it:
//
//	byzadv -listen 127.0.0.1:7501 -peers 2 &
//	byzworker -connect 127.0.0.1:7077 -id 3 -behavior alie -adv-addr 127.0.0.1:7501
//	byzworker -connect 127.0.0.1:7077 -id 7 -behavior alie -adv-addr 127.0.0.1:7501
//
// -metrics-addr serves the worker-side mirror of the PS diagnostics:
// byzworker_* counters (rounds, report bytes, skips, reconnects), the
// current-round gauge, and /debug/pprof — so a fleet operator can tell
// a computing worker from a wedged one without asking the PS.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"byzshield/internal/obs"
	"byzshield/internal/transport"
	"byzshield/internal/wire"
)

func main() {
	var (
		connect    = flag.String("connect", "127.0.0.1:7077", "parameter server address")
		id         = flag.Int("id", -1, "worker id (0..K-1)")
		behavior   = flag.String("behavior", "honest", "honest, reversed, constant, zero, sign-flip, alie (alie needs -adv-addr)")
		value      = flag.Float64("value", -1, "payload value for -behavior constant")
		advAddr    = flag.String("adv-addr", "", "adversary sidecar hub address (byzadv); required for -behavior alie")
		alieZ      = flag.Float64("alie-z", 0, "ALIE z override (0 derives z from cluster and coalition sizes)")
		reconnects = flag.Int("reconnects", transport.DefaultReconnectAttempts,
			"automatic rejoin attempts after a lost connection (negative disables)")
		resumeToken = flag.String("resume-token", "",
			"session token (hex, from the first join's log line) to rejoin a run after a process restart")
		uplinkTiers = flag.String("uplink-tiers", "",
			"comma-separated report codec tiers to offer the server (raw, delta, sign, int8; empty = all) — restricting the list forces the server to downgrade this connection to a mutually supported lossless tier")
		precision = flag.String("precision", "f64",
			"numeric precision tier: f64 (full protocol) or f32 (pair with a byzps -precision f32 server; honest behavior only)")
		quiet       = flag.Bool("quiet", false, "suppress progress logging")
		metricsAddr = flag.String("metrics-addr", "",
			"diagnostics listen address serving /metrics, /healthz and /debug/pprof (empty = disabled)")
	)
	flag.Parse()
	if *id < 0 {
		fmt.Fprintln(os.Stderr, "byzworker: -id is required")
		os.Exit(2)
	}
	var tiers uint8
	if *uplinkTiers != "" {
		for _, name := range strings.Split(*uplinkTiers, ",") {
			t, err := wire.ParseUplinkTier(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "byzworker:", err)
				os.Exit(2)
			}
			tiers |= t.Mask()
		}
	}
	var token uint64
	if *resumeToken != "" {
		t, err := strconv.ParseUint(trimHexPrefix(*resumeToken), 16, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "byzworker: bad -resume-token:", err)
			os.Exit(2)
		}
		token = t
	}
	prec, err := wire.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzworker:", err)
		os.Exit(2)
	}
	if prec == wire.PrecisionF32 {
		switch {
		case *behavior != "honest":
			fmt.Fprintln(os.Stderr, "byzworker: -behavior is f64-only (the f32 tier has no Byzantine plane)")
			os.Exit(2)
		case *advAddr != "":
			fmt.Fprintln(os.Stderr, "byzworker: -adv-addr is f64-only")
			os.Exit(2)
		case *metricsAddr != "":
			fmt.Fprintln(os.Stderr, "byzworker: -metrics-addr is f64-only")
			os.Exit(2)
		}
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var registry *obs.Registry
	if *metricsAddr != "" {
		registry = obs.NewRegistry()
		diag, err := obs.ListenAndServe(*metricsAddr, obs.ServerOptions{Registry: registry})
		if err != nil {
			fmt.Fprintln(os.Stderr, "byzworker:", err)
			os.Exit(1)
		}
		defer diag.Close()
		logf("worker %d: diagnostics on http://%s (/metrics /healthz /debug/pprof)", *id, diag.Addr())
	}

	if prec == wire.PrecisionF32 {
		final, err := transport.RunWorker32(ctx, *connect, transport.WorkerConfig32{
			ID:                *id,
			ReconnectAttempts: *reconnects,
			ResumeToken:       token,
			Tiers:             tiers,
			Logf:              logf,
		})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				log.Printf("worker %d interrupted", *id)
				os.Exit(130)
			}
			fmt.Fprintln(os.Stderr, "byzworker:", err)
			os.Exit(1)
		}
		fmt.Printf("worker %d done; final accuracy %.4f\n", *id, final)
		return
	}

	final, err := transport.RunWorker(ctx, *connect, transport.WorkerConfig{
		ID:                *id,
		Behavior:          transport.WorkerBehavior(*behavior),
		ConstantValue:     *value,
		ReconnectAttempts: *reconnects,
		ResumeToken:       token,
		Tiers:             tiers,
		AdvAddr:           *advAddr,
		ALIEZ:             *alieZ,
		Metrics:           registry,
		Logf:              logf,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Printf("worker %d interrupted", *id)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "byzworker:", err)
		os.Exit(1)
	}
	fmt.Printf("worker %d done; final accuracy %.4f\n", *id, final)
}

// trimHexPrefix strips an optional 0x/0X prefix.
func trimHexPrefix(s string) string {
	if len(s) > 2 && (s[:2] == "0x" || s[:2] == "0X") {
		return s[2:]
	}
	return s
}
