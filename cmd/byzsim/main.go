// Command byzsim runs the worst-case distortion-fraction simulations of
// Sec. 5.3 of the paper, regenerating Tables 3–6 (or analyzing a custom
// scheme).
//
// Usage:
//
//	byzsim -table 3                              # reproduce a paper table
//	byzsim -table 5 -budget 10m                  # longer exhaustive search
//	byzsim -scheme mols -l 7 -r 3 -qmin 2 -qmax 8
//	byzsim -table 4 -csv                         # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"byzshield/internal/assign"
	"byzshield/internal/experiments"
	"byzshield/internal/latin"
)

func main() {
	var (
		table    = flag.String("table", "", "paper table to reproduce: 3, 4, 5 or 6")
		scheme   = flag.String("scheme", "", "custom scheme: mols, ramanujan1, ramanujan2, frc")
		ablation = flag.Bool("ablation", false, "run the assignment-scheme ablation (MOLS vs Ramanujan vs FRC vs random)")
		show     = flag.Bool("show", false, "print the MOLS family and file allocation for -l/-r (paper Tables 1 & 2)")
		l        = flag.Int("l", 5, "computational load (MOLS degree / Ramanujan parameter)")
		r        = flag.Int("r", 3, "replication factor")
		k        = flag.Int("k", 15, "cluster size (frc only)")
		qmin     = flag.Int("qmin", 1, "minimum number of Byzantines")
		qmax     = flag.Int("qmax", 5, "maximum number of Byzantines")
		budget   = flag.Duration("budget", 60*time.Second, "exhaustive-search budget per q")
		csv      = flag.Bool("csv", false, "emit CSV instead of the aligned table")
	)
	flag.Parse()

	if *ablation {
		rows, err := experiments.AblationSchemes(*qmin, *qmax, *budget)
		if err != nil {
			fatal(err)
		}
		experiments.RenderAblation(os.Stdout, rows)
		return
	}
	if *show {
		if err := showConstruction(*l, *r); err != nil {
			fatal(err)
		}
		return
	}

	var spec experiments.TableSpec
	switch {
	case *table != "":
		s, err := experiments.TableByID(*table)
		if err != nil {
			fatal(err)
		}
		spec = s
	case *scheme != "":
		s, err := customSpec(*scheme, *l, *r, *k, *qmin, *qmax)
		if err != nil {
			fatal(err)
		}
		spec = s
	default:
		fmt.Fprintln(os.Stderr, "byzsim: specify -table N or -scheme NAME (see -help)")
		os.Exit(2)
	}

	rows, err := experiments.RunTable(spec, *budget)
	if err != nil {
		fatal(err)
	}
	if *csv {
		experiments.RenderTableCSV(os.Stdout, rows)
	} else {
		experiments.RenderTable(os.Stdout, spec, rows)
	}
}

// customSpec builds a TableSpec for a user-specified scheme.
func customSpec(scheme string, l, r, k, qmin, qmax int) (experiments.TableSpec, error) {
	var build func() (*assign.Assignment, error)
	baseK, baseR := k, r
	switch scheme {
	case "mols":
		build = func() (*assign.Assignment, error) { return assign.MOLS(l, r) }
		baseK = r * l
	case "ramanujan1":
		build = func() (*assign.Assignment, error) { return assign.Ramanujan1(l, r) }
		baseK = r * l
	case "ramanujan2":
		build = func() (*assign.Assignment, error) { return assign.Ramanujan2(r, l) }
		baseK = r * r
	case "frc":
		build = func() (*assign.Assignment, error) { return assign.FRC(k, r) }
	default:
		return experiments.TableSpec{}, fmt.Errorf("byzsim: unknown scheme %q", scheme)
	}
	// Probe the construction once so parameter errors surface early and
	// the γ column can use the scheme's exact spectral gap 1/r.
	if _, err := build(); err != nil {
		return experiments.TableSpec{}, err
	}
	return experiments.TableSpec{
		ID:      "custom",
		Title:   fmt.Sprintf("Distortion fraction, %s (l=%d, r=%d)", scheme, l, r),
		Scheme:  build,
		QMin:    qmin,
		QMax:    qmax,
		BaseK:   baseK,
		BaseR:   baseR,
		GammaMu: 1 / float64(r),
	}, nil
}

// showConstruction prints the MOLS family (paper Table 1) and the
// resulting worker–file allocation (paper Table 2) for degree l and
// replication r.
func showConstruction(l, r int) error {
	squares, err := latin.MOLS(l, r)
	if err != nil {
		return err
	}
	for i, sq := range squares {
		fmt.Printf("L%d:\n%s\n", i+1, sq)
	}
	a, err := assign.MOLS(l, r)
	if err != nil {
		return err
	}
	fmt.Printf("File allocation for %v:\n", a)
	for u := 0; u < a.K; u++ {
		fmt.Printf("  U%-3d stores %v\n", u, a.WorkerFiles(u))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "byzsim:", err)
	os.Exit(1)
}
