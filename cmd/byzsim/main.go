// Command byzsim runs the worst-case distortion-fraction simulations of
// Sec. 5.3 of the paper, regenerating Tables 3–6 (or analyzing a custom
// scheme resolved by name through the component registry).
//
// Usage:
//
//	byzsim -table 3                              # reproduce a paper table
//	byzsim -table 5 -budget 10m                  # longer exhaustive search
//	byzsim -scheme mols -l 7 -r 3 -qmin 2 -qmax 8
//	byzsim -scheme random -k 15 -f 25 -r 3       # any registry scheme works
//	byzsim -table 4 -csv                         # machine-readable output
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"byzshield"
	"byzshield/internal/assign"
	"byzshield/internal/experiments"
	"byzshield/internal/latin"
)

func main() {
	var (
		table    = flag.String("table", "", "paper table to reproduce: 3, 4, 5 or 6")
		scheme   = flag.String("scheme", "", "custom scheme: "+strings.Join(byzshield.Registry.Schemes(), ", "))
		ablation = flag.Bool("ablation", false, "run the assignment-scheme ablation (MOLS vs Ramanujan vs FRC vs random)")
		faults   = flag.Bool("faults", false, "run the fault-tolerance sweep (scheme × crash/flaky worker faults)")
		detect   = flag.Bool("detect", false, "run the detection arms-race sweep (attack × PS-side detector)")
		iters    = flag.Int("iters", 100, "training rounds per cell for -faults / -detect")
		dist     = flag.String("dist", "", "data distribution for -faults / -detect: "+strings.Join(byzshield.Registry.Distributions(), ", ")+" (default iid)")
		distP    = flag.Float64("distparam", 0, "distribution knob (dirichlet alpha / label-skew shards; 0 = component default)")
		show     = flag.Bool("show", false, "print the MOLS family and file allocation for -l/-r (paper Tables 1 & 2)")
		l        = flag.Int("l", 5, "computational load (MOLS degree / Ramanujan parameter)")
		r        = flag.Int("r", 3, "replication factor")
		k        = flag.Int("k", 15, "cluster size (frc/baseline/random)")
		f        = flag.Int("f", 0, "file count (random scheme)")
		seed     = flag.Int64("seed", 7, "placement seed (random scheme)")
		qmin     = flag.Int("qmin", 1, "minimum number of Byzantines")
		qmax     = flag.Int("qmax", 5, "maximum number of Byzantines")
		budget   = flag.Duration("budget", 60*time.Second, "exhaustive-search budget per q")
		csv      = flag.Bool("csv", false, "emit CSV instead of the aligned table")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *ablation {
		rows, err := experiments.AblationSchemes(ctx, *qmin, *qmax, *budget)
		if err != nil {
			fatal(err)
		}
		experiments.RenderAblation(os.Stdout, rows)
		return
	}
	if *faults {
		opts := experiments.DefaultTrainOpts()
		opts.Iterations = *iters
		opts.Distribution, opts.DistParam = *dist, *distP
		rows, err := experiments.FaultSweep(ctx, opts)
		if err != nil {
			fatal(err)
		}
		experiments.RenderFaultSweep(os.Stdout, rows)
		return
	}
	if *detect {
		opts := experiments.DefaultTrainOpts()
		opts.Iterations = *iters
		opts.Distribution, opts.DistParam = *dist, *distP
		rows, err := experiments.DetectSweep(ctx, opts)
		if err != nil {
			fatal(err)
		}
		experiments.RenderDetectSweep(os.Stdout, rows)
		return
	}
	if *show {
		if err := showConstruction(*l, *r); err != nil {
			fatal(err)
		}
		return
	}

	var spec experiments.TableSpec
	switch {
	case *table != "":
		s, err := experiments.TableByID(*table)
		if err != nil {
			fatal(err)
		}
		spec = s
	case *scheme != "":
		s, err := customSpec(*scheme, byzshield.SchemeParams{
			L: *l, R: *r, K: *k, F: *f, Seed: *seed,
		}, *qmin, *qmax)
		if err != nil {
			fatal(err)
		}
		spec = s
	default:
		fmt.Fprintln(os.Stderr, "byzsim: specify -table N or -scheme NAME (see -help)")
		os.Exit(2)
	}

	rows, err := experiments.RunTable(ctx, spec, *budget)
	if err != nil {
		fatal(err)
	}
	if *csv {
		experiments.RenderTableCSV(os.Stdout, rows)
	} else {
		experiments.RenderTable(os.Stdout, spec, rows)
	}
}

// customSpec builds a TableSpec for any registry scheme. The
// construction is probed once so parameter errors surface early; the γ
// column uses the scheme's actual spectral gap (1/r for the ByzShield
// constructions, 1 for FRC, measured for random placements).
func customSpec(scheme string, params byzshield.SchemeParams, qmin, qmax int) (experiments.TableSpec, error) {
	build := func() (*assign.Assignment, error) {
		return byzshield.Registry.Scheme(scheme, params)
	}
	a, err := build()
	if err != nil {
		return experiments.TableSpec{}, err
	}
	mu1, err := byzshield.SpectralGap(a)
	if err != nil {
		return experiments.TableSpec{}, err
	}
	return experiments.TableSpec{
		ID:      "custom",
		Title:   fmt.Sprintf("Distortion fraction, %s (K=%d, f=%d, l=%d, r=%d)", scheme, a.K, a.F, a.L, a.R),
		Scheme:  build,
		QMin:    qmin,
		QMax:    qmax,
		BaseK:   a.K,
		BaseR:   a.R,
		GammaMu: mu1,
	}, nil
}

// showConstruction prints the MOLS family (paper Table 1) and the
// resulting worker–file allocation (paper Table 2) for degree l and
// replication r.
func showConstruction(l, r int) error {
	squares, err := latin.MOLS(l, r)
	if err != nil {
		return err
	}
	for i, sq := range squares {
		fmt.Printf("L%d:\n%s\n", i+1, sq)
	}
	a, err := byzshield.Registry.Scheme("mols", byzshield.SchemeParams{L: l, R: r})
	if err != nil {
		return err
	}
	fmt.Printf("File allocation for %v:\n", a)
	for u := 0; u < a.K; u++ {
		fmt.Printf("  U%-3d stores %v\n", u, a.WorkerFiles(u))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "byzsim:", err)
	os.Exit(1)
}
