// Command byzfleet runs the fleet-scaling sweep of the aggregation
// plane: for each worker count it drives a loopback fleet through the
// single-loop (pre-shard config), serial, sharded, sharded+pipelined,
// and quantized (pipelined plane on the lossy int8 uplink tier)
// planes over the identical spec, checks every mode's final parameters
// bit-for-bit against the in-process engine — the quantized mode
// against an engine pinned to the same tier and shard count — and
// reports rounds/sec with the speedup over the single-loop baseline.
// -json emits the points as a JSON array (the shape appended to
// BENCH_round.json); -modes isolates one plane for profiling with
// -cpuprofile (e.g. -modes quantized).
//
// -memprofile writes a heap profile after the sweep finishes (a forced
// GC first, so it shows retained memory, not transient garbage). For a
// live server prefer scraping byzps's /debug/pprof/heap instead — it
// snapshots the steady state without ending the run. -trace-out
// streams every round of every sweep point as JSONL RoundTrace lines,
// labeled "mode/K=<count>" per point.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"byzshield/internal/experiments"
	"byzshield/internal/obs"
	"byzshield/internal/wire"
)

// traceRingRounds bounds the tracer ring; the JSONL sink sees every
// round regardless, the ring only serves in-process inspection.
const traceRingRounds = 256

func main() {
	var (
		workers   = flag.String("workers", "15,60,240", "comma-separated fleet sizes")
		rounds    = flag.Int("rounds", 20, "measured rounds per point")
		warmup    = flag.Int("warmup", 2, "warmup rounds excluded from timing")
		reps      = flag.Int("reps", 3, "repetitions per point (best kept)")
		dim       = flag.Int("input-dim", 256, "input feature dimension")
		classes   = flag.Int("classes", 8, "classes")
		shards    = flag.Int("shards", 2, "shard count")
		modes     = flag.String("modes", "", "comma-separated mode filter (default all)")
		precision = flag.String("precision", "f64",
			"numeric precision tier: f64 (single-loop/serial/sharded/pipelined/quantized planes) or f32 (serial-f32/sharded-f32/quantized-f32 over the reduced-precision server)")
		jsonOut  = flag.Bool("json", false, "emit the points as JSON on stdout")
		prof     = flag.String("cpuprofile", "", "write cpu profile")
		memProf  = flag.String("memprofile", "", "write heap profile at sweep end (live servers: prefer byzps /debug/pprof/heap)")
		traceOut = flag.String("trace-out", "", "append per-round JSONL traces for every sweep point to this file")
	)
	flag.Parse()
	prec, err := wire.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if prec == wire.PrecisionF32 && *traceOut != "" {
		fmt.Fprintln(os.Stderr, "byzfleet: -trace-out is f64-only")
		os.Exit(2)
	}
	var counts []int
	for _, s := range strings.Split(*workers, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		counts = append(counts, k)
	}
	var modeList []string
	if *modes != "" {
		for _, m := range strings.Split(*modes, ",") {
			modeList = append(modeList, strings.TrimSpace(m))
		}
	}
	if *prof != "" {
		f, err := os.Create(*prof)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}
	var tracer *obs.Tracer
	var traceFlush func() error
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		tracer = obs.NewTracer(traceRingRounds)
		tracer.SetSink(bw)
		traceFlush = func() error {
			if err := bw.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}
	logf := func(f string, a ...any) { fmt.Printf(f+"\n", a...) }
	if *jsonOut {
		logf = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	}
	points, err := experiments.FleetScaling(context.Background(), experiments.FleetConfig{
		WorkerCounts: counts,
		Rounds:       *rounds,
		Warmup:       *warmup,
		Reps:         *reps,
		InputDim:     *dim,
		Classes:      *classes,
		Shards:       *shards,
		Modes:        modeList,
		Precision:    prec,
		Tracer:       tracer,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if traceFlush != nil {
		if err := traceFlush(); err != nil {
			fmt.Fprintln(os.Stderr, "byzfleet: trace-out:", err)
			os.Exit(1)
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
