// Command byzfleet runs the fleet-scaling sweep of the aggregation
// plane: for each worker count it drives a loopback fleet through the
// single-loop (pre-shard config), serial, sharded, sharded+pipelined,
// and quantized (pipelined plane on the lossy int8 uplink tier)
// planes over the identical spec, checks every mode's final parameters
// bit-for-bit against the in-process engine — the quantized mode
// against an engine pinned to the same tier and shard count — and
// reports rounds/sec with the speedup over the single-loop baseline.
// -json emits the points as a JSON array (the shape appended to
// BENCH_round.json); -modes isolates one plane for profiling with
// -cpuprofile (e.g. -modes quantized).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"byzshield/internal/experiments"
)

func main() {
	var (
		workers = flag.String("workers", "15,60,240", "comma-separated fleet sizes")
		rounds  = flag.Int("rounds", 20, "measured rounds per point")
		warmup  = flag.Int("warmup", 2, "warmup rounds excluded from timing")
		reps    = flag.Int("reps", 3, "repetitions per point (best kept)")
		dim     = flag.Int("input-dim", 256, "input feature dimension")
		classes = flag.Int("classes", 8, "classes")
		shards  = flag.Int("shards", 2, "shard count")
		modes   = flag.String("modes", "", "comma-separated mode filter (default all)")
		jsonOut = flag.Bool("json", false, "emit the points as JSON on stdout")
		prof    = flag.String("cpuprofile", "", "write cpu profile")
	)
	flag.Parse()
	var counts []int
	for _, s := range strings.Split(*workers, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		counts = append(counts, k)
	}
	var modeList []string
	if *modes != "" {
		for _, m := range strings.Split(*modes, ",") {
			modeList = append(modeList, strings.TrimSpace(m))
		}
	}
	if *prof != "" {
		f, err := os.Create(*prof)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}
	logf := func(f string, a ...any) { fmt.Printf(f+"\n", a...) }
	if *jsonOut {
		logf = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	}
	points, err := experiments.FleetScaling(context.Background(), experiments.FleetConfig{
		WorkerCounts: counts,
		Rounds:       *rounds,
		Warmup:       *warmup,
		Reps:         *reps,
		InputDim:     *dim,
		Classes:      *classes,
		Shards:       *shards,
		Modes:        modeList,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
