// Command byzbench measures the per-iteration wall-clock split of the
// training pipeline into computation, communication (real binary
// serialization through the uplink gradient codec and the delta
// parameter broadcast), and aggregation, regenerating Figure 12 of the
// paper for baseline median, ByzShield, and DETOX-MoM under the ALIE
// attack. The upB/upRawB columns report the worker→PS volume as moved
// vs its raw-frame equivalent (the realized uplink compression ratio);
// downB the PS→worker broadcast volume. The rep/blk columns show the
// detection layer's view (mean reputation, blacklist size) when a
// -detector is timed. -uplink selects the report codec tier the
// communication phase times: delta (the bit-exact default), raw, or the
// lossy sign/int8 quantized tiers, whose upRatio shows the realized
// lossy saving.
//
// Usage:
//
//	byzbench                 # default 20 rounds per scheme
//	byzbench -rounds 100 -dim 128
//	byzbench -uplink int8    # time the lossy 8-bit quantized uplink
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"byzshield/internal/experiments"
	"byzshield/internal/wire"
)

func main() {
	var (
		rounds   = flag.Int("rounds", 20, "protocol rounds to time per scheme")
		trainN   = flag.Int("train", 3000, "training-set size")
		dim      = flag.Int("dim", 64, "feature dimension")
		batch    = flag.Int("batch", 500, "batch size")
		seed     = flag.Int64("seed", 42, "experiment seed")
		budget   = flag.Duration("budget", 10*time.Second, "Byzantine-set search budget")
		detector = flag.String("detector", "", "PS-side Byzantine detector to time (none, zscore, cluster)")
		uplink   = flag.String("uplink", "delta", "report codec tier to time: raw, delta, sign, int8")
	)
	flag.Parse()

	tier, err := wire.ParseUplinkTier(*uplink)
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzbench:", err)
		os.Exit(2)
	}

	opts := experiments.DefaultTrainOpts()
	opts.TrainN = *trainN
	opts.TestN = 200
	opts.Dim = *dim
	opts.BatchSize = *batch
	opts.Seed = *seed
	opts.SearchBudget = *budget
	opts.Detector = *detector
	opts.Uplink = tier

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rows, err := experiments.Figure12(ctx, opts, *rounds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzbench:", err)
		os.Exit(1)
	}
	fmt.Printf("Per-iteration time split, ALIE attack, q=3, K=25, %d rounds (Figure 12)\n\n", *rounds)
	experiments.RenderTiming(os.Stdout, rows)
}
