// Command byzbench measures the per-iteration wall-clock split of the
// training pipeline into computation, communication (real binary
// serialization through the uplink gradient codec and the delta
// parameter broadcast), and aggregation, regenerating Figure 12 of the
// paper for baseline median, ByzShield, and DETOX-MoM under the ALIE
// attack. The upB/upRawB columns report the worker→PS volume as moved
// vs its raw-frame equivalent (the realized uplink compression ratio);
// downB the PS→worker broadcast volume. The rep/blk columns show the
// detection layer's view (mean reputation, blacklist size) when a
// -detector is timed. -uplink selects the report codec tier the
// communication phase times: delta (the bit-exact default), raw, or the
// lossy sign/int8 quantized tiers, whose upRatio shows the realized
// lossy saving.
//
// Usage:
//
//	byzbench                 # default 20 rounds per scheme
//	byzbench -rounds 100 -dim 128
//	byzbench -uplink int8    # time the lossy 8-bit quantized uplink
//
// -precision f32 switches byzbench from the Figure 12 split to the
// f64-vs-f32 precision-scaling curve: the identical fault-free round
// timed through both precision engines across a parameter-dimension
// sweep (-dims lists the softmax input dims; the defaults span param
// dim ~330 to 100k+). -json emits the points in the shape appended to
// BENCH_round.json:
//
//	byzbench -precision f32 -json
//	byzbench -precision f32 -dims 41,12500 -sweep-rounds 12
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"byzshield/internal/experiments"
	"byzshield/internal/wire"
)

func main() {
	var (
		rounds    = flag.Int("rounds", 20, "protocol rounds to time per scheme")
		trainN    = flag.Int("train", 3000, "training-set size")
		dim       = flag.Int("dim", 64, "feature dimension")
		batch     = flag.Int("batch", 500, "batch size")
		seed      = flag.Int64("seed", 42, "experiment seed")
		budget    = flag.Duration("budget", 10*time.Second, "Byzantine-set search budget")
		detector  = flag.String("detector", "", "PS-side Byzantine detector to time (none, zscore, cluster)")
		uplink    = flag.String("uplink", "delta", "report codec tier to time: raw, delta, sign, int8")
		precision = flag.String("precision", "f64",
			"f64 = the Figure 12 timing split; f32 = the f64-vs-f32 precision-scaling dim sweep")
		dims = flag.String("dims", "",
			"comma-separated softmax input dims for the -precision f32 sweep (empty = 41,256,2000,12500 → param dims 336..100008)")
		sweepRounds = flag.Int("sweep-rounds", 8, "timed rounds per sweep point (-precision f32)")
		sweepReps   = flag.Int("sweep-reps", 3, "repetitions per sweep point, best kept (-precision f32)")
		jsonOut     = flag.Bool("json", false, "emit -precision f32 sweep points as JSON on stdout")
	)
	flag.Parse()

	tier, err := wire.ParseUplinkTier(*uplink)
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzbench:", err)
		os.Exit(2)
	}
	prec, err := wire.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzbench:", err)
		os.Exit(2)
	}
	if prec == wire.PrecisionF32 {
		runPrecisionSweep(*dims, *sweepRounds, *sweepReps, *seed, *jsonOut)
		return
	}

	opts := experiments.DefaultTrainOpts()
	opts.TrainN = *trainN
	opts.TestN = 200
	opts.Dim = *dim
	opts.BatchSize = *batch
	opts.Seed = *seed
	opts.SearchBudget = *budget
	opts.Detector = *detector
	opts.Uplink = tier

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rows, err := experiments.Figure12(ctx, opts, *rounds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzbench:", err)
		os.Exit(1)
	}
	fmt.Printf("Per-iteration time split, ALIE attack, q=3, K=25, %d rounds (Figure 12)\n\n", *rounds)
	experiments.RenderTiming(os.Stdout, rows)
}

// runPrecisionSweep drives the f64-vs-f32 scaling curve (byzbench
// -precision f32) and prints a table or JSON.
func runPrecisionSweep(dimList string, rounds, reps int, seed int64, jsonOut bool) {
	var inputDims []int
	if dimList != "" {
		for _, s := range strings.Split(dimList, ",") {
			d, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "byzbench: bad -dims:", err)
				os.Exit(2)
			}
			inputDims = append(inputDims, d)
		}
	}
	logf := func(f string, a ...any) { fmt.Printf(f+"\n", a...) }
	if jsonOut {
		logf = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	points, err := experiments.PrecisionScaling(ctx, experiments.PrecisionConfig{
		InputDims: inputDims,
		Rounds:    rounds,
		Reps:      reps,
		Seed:      seed,
		Logf:      logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "byzbench:", err)
		os.Exit(1)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			fmt.Fprintln(os.Stderr, "byzbench:", err)
			os.Exit(1)
		}
	}
}
