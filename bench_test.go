// Benchmark harness: one benchmark per paper table and figure (see
// DESIGN.md §4 for the experiment index) plus the ablation benches of
// DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
//
// Table benches measure the worst-case distortion search that generates
// the table; figure benches measure a scaled-down end-to-end training
// run with the figure's lead configuration (full-size runs live behind
// cmd/byztrain). Reported values are wall-clock per experiment
// regeneration.
package byzshield_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"byzshield"
	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/attack"
	"byzshield/internal/distort"
	"byzshield/internal/experiments"
	"byzshield/internal/vote"
)

// benchOpts are reduced-size training options so each figure bench
// iteration stays ~100ms.
func benchOpts() experiments.TrainOpts {
	opts := experiments.DefaultTrainOpts()
	opts.Iterations = 20
	opts.EvalEvery = 20
	opts.TrainN = 800
	opts.TestN = 200
	opts.Dim = 16
	opts.Hidden = 16
	opts.BatchSize = 200
	opts.SearchBudget = 5 * time.Second
	return opts
}

// benchTable runs the full q-sweep of a distortion table.
func benchTable(b *testing.B, spec experiments.TableSpec, budget time.Duration) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable(context.Background(), spec, budget)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable3(b *testing.B) { benchTable(b, experiments.Table3Spec(), 30*time.Second) }

func BenchmarkTable4(b *testing.B) { benchTable(b, experiments.Table4Spec(), 30*time.Second) }

// BenchmarkTable5 uses a bounded budget: the paper itself reports the
// search becomes intractable near q = 13; within the budget the exact
// prefix is proven and the tail falls back to greedy bounds.
func BenchmarkTable5(b *testing.B) {
	spec := experiments.Table5Spec()
	spec.QMax = 9 // exact within seconds; full sweep via cmd/byzsim
	benchTable(b, spec, 30*time.Second)
}

func BenchmarkTable6(b *testing.B) { benchTable(b, experiments.Table6Spec(), 30*time.Second) }

// benchFigure runs one figure's full curve set at bench scale.
func benchFigure(b *testing.B, run func(context.Context, experiments.TrainOpts) experiments.Figure) {
	b.Helper()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		fig := run(context.Background(), opts)
		if len(fig.Curves) == 0 {
			b.Fatal("no curves")
		}
	}
}

func BenchmarkFigure2(b *testing.B)  { benchFigure(b, experiments.Figure2) }
func BenchmarkFigure3(b *testing.B)  { benchFigure(b, experiments.Figure3) }
func BenchmarkFigure4(b *testing.B)  { benchFigure(b, experiments.Figure4) }
func BenchmarkFigure5(b *testing.B)  { benchFigure(b, experiments.Figure5) }
func BenchmarkFigure6(b *testing.B)  { benchFigure(b, experiments.Figure6) }
func BenchmarkFigure7(b *testing.B)  { benchFigure(b, experiments.Figure7) }
func BenchmarkFigure8(b *testing.B)  { benchFigure(b, experiments.Figure8) }
func BenchmarkFigure9(b *testing.B)  { benchFigure(b, experiments.Figure9) }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, experiments.Figure10) }
func BenchmarkFigure11(b *testing.B) { benchFigure(b, experiments.Figure11) }

func BenchmarkFigure12(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure12(context.Background(), opts, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkAblationAssignment compares the worst-case distortion search
// across assignment schemes at identical (K, r): the design choice at
// the heart of the paper.
func BenchmarkAblationAssignment(b *testing.B) {
	builders := map[string]func() (*assign.Assignment, error){
		"mols":       func() (*assign.Assignment, error) { return assign.MOLS(5, 3) },
		"ramanujan1": func() (*assign.Assignment, error) { return assign.Ramanujan1(5, 3) },
		"frc":        func() (*assign.Assignment, error) { return assign.FRC(15, 3) },
	}
	for name, build := range builders {
		b.Run(name, func(b *testing.B) {
			a, err := build()
			if err != nil {
				b.Fatal(err)
			}
			an := distort.NewAnalyzer(a)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := an.MaxDistorted(context.Background(), 5)
				if !res.Exact {
					b.Fatal("not exact")
				}
			}
		})
	}
}

// BenchmarkAblationVote compares the exact (hash) and tolerance
// (clustering) vote modes on identical replica sets.
func BenchmarkAblationVote(b *testing.B) {
	replicas := make([][]float64, 5)
	base := make([]float64, 2000)
	for i := range base {
		base[i] = float64(i%17) - 8
	}
	for i := range replicas {
		replicas[i] = base
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vote.Majority(replicas); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tolerance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vote.MajorityWithTolerance(replicas, 1e-9); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAggregator compares the post-vote aggregation rules
// on the same 25×2000 winner set.
func BenchmarkAblationAggregator(b *testing.B) {
	winners := make([][]float64, 25)
	for i := range winners {
		w := make([]float64, 2000)
		for j := range w {
			w[j] = float64((i*31+j*7)%23) - 11
		}
		winners[i] = w
	}
	rules := []aggregate.Aggregator{
		aggregate.Mean{},
		aggregate.Median{},
		aggregate.TrimmedMean{Trim: 5},
		aggregate.MedianOfMeans{Groups: 5},
		aggregate.MultiKrum{C: 5},
		aggregate.Bulyan{C: 5},
		aggregate.GeometricMedian{},
		aggregate.SignSGD{},
	}
	for _, rule := range rules {
		b.Run(rule.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rule.Aggregate(winners); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSearch compares the exact branch-and-bound against
// the greedy heuristic for the worst-case Byzantine set.
func BenchmarkAblationSearch(b *testing.B) {
	a, err := assign.MOLS(7, 3)
	if err != nil {
		b.Fatal(err)
	}
	an := distort.NewAnalyzer(a)
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = an.MaxDistorted(context.Background(), 6)
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = an.MaxDistortedGreedy(6)
		}
	})
}

// BenchmarkAblationRedundancy sweeps the replication factor r at fixed
// K-ish scale, measuring a full (short) training run: the robustness /
// compute-overhead trade of Sec. 6.2.
func BenchmarkAblationRedundancy(b *testing.B) {
	for _, r := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			asn, err := byzshield.NewMOLS(5, r)
			if err != nil {
				b.Fatal(err)
			}
			train, test, err := byzshield.SyntheticDataset(800, 200, 16, 10, 5)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mdl, err := byzshield.NewSoftmaxModel(16, 10)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := byzshield.Train(byzshield.TrainConfig{
					Assignment: asn,
					Model:      mdl,
					Train:      train,
					Test:       test,
					BatchSize:  200,
					Q:          2,
					Attack:     attack.Reversed{C: 1},
					Iterations: 20,
					EvalEvery:  20,
					Seed:       5,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
