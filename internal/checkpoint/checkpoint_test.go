package checkpoint

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"byzshield/internal/trainer"
)

func sampleState() *State {
	var h trainer.History
	h.Add(10, 1.5, 0.4)
	h.Add(20, 1.1, 0.6)
	return &State{
		Params:    []float64{1, 2, 3},
		Velocity:  []float64{0.1, 0.2, 0.3},
		Iteration: 20,
		History:   h,
		Meta:      map[string]string{"scheme": "mols", "q": "3"},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleState()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 20 || got.Params[2] != 3 || got.Velocity[0] != 0.1 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if got.History.FinalAccuracy() != 0.6 {
		t.Errorf("history lost: %+v", got.History)
	}
	if got.Meta["scheme"] != "mols" {
		t.Errorf("meta lost: %v", got.Meta)
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.gob")
	if err := Save(path, sampleState()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 20 {
		t.Errorf("loaded iteration %d", got.Iteration)
	}
}

func TestValidate(t *testing.T) {
	if err := (&State{}).Validate(); err == nil {
		t.Error("empty params accepted")
	}
	if err := (&State{Params: []float64{1}, Velocity: []float64{1, 2}}).Validate(); err == nil {
		t.Error("velocity mismatch accepted")
	}
	if err := (&State{Params: []float64{1}, Iteration: -1}).Validate(); err == nil {
		t.Error("negative iteration accepted")
	}
	if err := (&State{Params: []float64{1}}).Validate(); err != nil {
		t.Errorf("valid state rejected: %v", err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(header{Magic: "not-a-checkpoint", Version: Version}); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(header{Magic: Magic, Version: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("future version accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Error("missing file accepted")
	}
}
