// Package checkpoint persists and restores training state, letting long
// robustness experiments survive process restarts — a production
// capability of the training systems the paper builds on (TensorFlow,
// PyTorch) that the protocol engine supports via Snapshot/Restore.
//
// State files are gob-encoded with a magic header and format version so
// that incompatible files fail loudly rather than silently corrupting a
// run.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"byzshield/internal/trainer"
)

// Magic identifies checkpoint files.
const Magic = "byzshield-checkpoint"

// Version is the current format version.
const Version = 1

// State is the complete restartable training state.
type State struct {
	// Params is the flat model parameter vector.
	Params []float64
	// Velocity is the optimizer's momentum buffer (same length).
	Velocity []float64
	// Iteration is the next iteration index to execute.
	Iteration int
	// History holds the evaluations recorded so far.
	History trainer.History
	// Byzantines records the corrupted worker set of the run, so a
	// resume can verify (or reproduce) the adversary placement instead
	// of re-searching it — worst-case search is budget-bounded and may
	// select a different set on different hardware. Nil in files
	// written before this field existed.
	Byzantines []int
	// Meta carries free-form experiment identification (scheme, attack,
	// q, seed, ...) so a restored run can verify it matches its config.
	Meta map[string]string
}

// Validate checks internal consistency.
func (s *State) Validate() error {
	if len(s.Params) == 0 {
		return fmt.Errorf("checkpoint: empty parameter vector")
	}
	if len(s.Velocity) != 0 && len(s.Velocity) != len(s.Params) {
		return fmt.Errorf("checkpoint: velocity length %d != params length %d",
			len(s.Velocity), len(s.Params))
	}
	if s.Iteration < 0 {
		return fmt.Errorf("checkpoint: negative iteration %d", s.Iteration)
	}
	return nil
}

// header is the versioned envelope written before the state.
type header struct {
	Magic   string
	Version int
}

// Write serializes the state to w.
func Write(w io.Writer, s *State) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: Magic, Version: Version}); err != nil {
		return fmt.Errorf("checkpoint: header: %w", err)
	}
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("checkpoint: state: %w", err)
	}
	return nil
}

// Read deserializes a state from r, verifying magic and version.
func Read(r io.Reader) (*State, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("checkpoint: header: %w", err)
	}
	if h.Magic != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", h.Magic)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d (want %d)", h.Version, Version)
	}
	var s State
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: state: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Save writes the state atomically to path (via a temp file + rename).
func Save(path string, s *State) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a state from path.
func Load(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
