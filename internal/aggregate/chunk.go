package aggregate

import (
	"fmt"
	"sort"
	"sync"

	"byzshield/internal/linalg"
)

// ChunkAggregator is implemented by the coordinate-wise rules, which can
// reduce an arbitrary coordinate range into a caller-provided buffer.
// The cluster engine uses it to run the post-vote reduction in parallel
// across a worker pool: because every coordinate is reduced
// independently and identically, sharding [0, d) across goroutines is
// bit-identical to a single serial pass.
//
// AggregateChunk writes the aggregate of coordinates [lo, hi) into
// out[lo:hi], leaving the rest of out untouched. Implementations must be
// safe for concurrent calls on disjoint ranges, must not modify the
// inputs, and must produce bit-identical values to Aggregate over the
// same range.
type ChunkAggregator interface {
	Aggregator
	AggregateChunk(grads [][]float64, out []float64, lo, hi int) error
}

// ChunkAggregator32 is the float32 precision tier's mirror of
// ChunkAggregator: the identical coordinate-wise reduction over float32
// rows. Every chunked rule implements both interfaces from one generic
// kernel body, so the two tiers cannot drift. The same concurrency and
// bit-identity contract applies: sharding [0, d) across calls is
// bit-identical to one serial pass over the float32 values.
type ChunkAggregator32 interface {
	Aggregator
	AggregateChunk32(grads [][]float32, out []float32, lo, hi int) error
}

// chunkScratch is the pooled per-call working memory of the chunked
// rules, so steady-state aggregation performs no per-round allocation.
// One pool exists per element width (see getScratch).
type chunkScratch[T linalg.Float] struct {
	col    []T
	med    []T
	means  []T
	bounds []int
	vd     []valDist[T]
	prefix []T
	sq     []T
}

// valDist pairs a coordinate value with its distance to the coordinate
// median (MeanAroundMedian's sort key).
type valDist[T linalg.Float] struct{ v, dist T }

var (
	scratchPool64 = sync.Pool{New: func() any { return new(chunkScratch[float64]) }}
	scratchPool32 = sync.Pool{New: func() any { return new(chunkScratch[float32]) }}
)

// getScratch returns a scratch with col capacity at least n, drawn from
// the element width's pool.
func getScratch[T linalg.Float](n int) *chunkScratch[T] {
	var s *chunkScratch[T]
	switch p := any(&s).(type) {
	case **chunkScratch[float64]:
		*p = scratchPool64.Get().(*chunkScratch[float64])
	case **chunkScratch[float32]:
		*p = scratchPool32.Get().(*chunkScratch[float32])
	}
	if cap(s.col) < n {
		s.col = make([]T, n)
	}
	return s
}

func putScratch[T linalg.Float](s *chunkScratch[T]) {
	switch p := any(s).(type) {
	case *chunkScratch[float64]:
		scratchPool64.Put(p)
	case *chunkScratch[float32]:
		scratchPool32.Put(p)
	}
}

// checkChunk validates the shared AggregateChunk preconditions.
func checkChunk[T linalg.Float](grads [][]T, out []T, lo, hi int) error {
	if len(grads) == 0 {
		return fmt.Errorf("aggregate: chunk of zero gradients")
	}
	d := len(grads[0])
	if len(out) != d {
		return fmt.Errorf("aggregate: chunk output length %d, want %d", len(out), d)
	}
	if lo < 0 || hi > d || lo > hi {
		return fmt.Errorf("aggregate: chunk range [%d,%d) outside [0,%d)", lo, hi, d)
	}
	for i, g := range grads {
		if len(g) != d {
			return fmt.Errorf("aggregate: gradient %d has dim %d, want %d", i, len(g), d)
		}
	}
	return nil
}

// newOut runs a full-range chunked reduction into a fresh vector — the
// shared body of the coordinate-wise Aggregate implementations.
func newOut(ca ChunkAggregator, grads [][]float64) ([]float64, error) {
	out := make([]float64, len(grads[0]))
	if err := ca.AggregateChunk(grads, out, 0, len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

// gatherCol copies coordinate i of every gradient into s.col in input
// order and returns the column.
func (s *chunkScratch[T]) gatherCol(grads [][]T, i int) []T {
	col := s.col[:len(grads)]
	for j, g := range grads {
		col[j] = g[i]
	}
	return col
}

// --- Generic kernel bodies ------------------------------------------
//
// Each rule's AggregateChunk and AggregateChunk32 call one generic body,
// so the two precision tiers run the same reduction with only the
// element width changed. The per-coordinate order statistics run on
// scratch-reusing quickselect (linalg.SelectKth and friends) instead of
// per-coordinate full sorts: selection is expected O(n) per coordinate
// against O(n log n), and the selected values are exactly the sorted
// order statistics, so results stay bit-identical to the sort-based
// kernels (see BENCH_round.json for the before/after).

func meanChunk[T linalg.Float](grads [][]T, out []T, lo, hi int) {
	inv := 1 / T(len(grads))
	for i := lo; i < hi; i++ {
		var s T
		for _, g := range grads {
			s += g[i]
		}
		out[i] = s * inv
	}
}

func medianChunk[T linalg.Float](grads [][]T, out []T, lo, hi int) {
	s := getScratch[T](len(grads))
	defer putScratch(s)
	for i := lo; i < hi; i++ {
		out[i] = linalg.MedianSelect(s.gatherCol(grads, i))
	}
}

func trimmedMeanChunk[T linalg.Float](grads [][]T, out []T, lo, hi, trim int) {
	s := getScratch[T](len(grads))
	defer putScratch(s)
	for i := lo; i < hi; i++ {
		out[i] = linalg.TrimmedMeanSelect(s.gatherCol(grads, i), trim)
	}
}

// medianOfMeansChunk reduces with the same ceil-sized-prefix group
// distribution as MedianOfMeans.Aggregate; each group mean is
// accumulated in input order, matching linalg.MeanVec bit for bit.
func medianOfMeansChunk[T linalg.Float](grads [][]T, out []T, lo, hi, g int) {
	n := len(grads)
	s := getScratch[T](n)
	defer putScratch(s)
	if cap(s.bounds) < g+1 {
		s.bounds = make([]int, g+1)
	}
	bounds := s.bounds[:g+1]
	bounds[0] = 0
	for k := 0; k < g; k++ {
		size := (n - bounds[k] + (g - k - 1)) / (g - k)
		bounds[k+1] = bounds[k] + size
	}
	if cap(s.means) < g {
		s.means = make([]T, g)
	}
	means := s.means[:g]
	for i := lo; i < hi; i++ {
		for k := 0; k < g; k++ {
			var sum T
			for _, gr := range grads[bounds[k]:bounds[k+1]] {
				sum += gr[i]
			}
			means[k] = sum * (1 / T(bounds[k+1]-bounds[k]))
		}
		out[i] = linalg.MedianSelect(means)
	}
}

func signSGDChunk[T linalg.Float](grads [][]T, out []T, lo, hi int) {
	for i := lo; i < hi; i++ {
		pos, neg := 0, 0
		for _, g := range grads {
			switch {
			case g[i] > 0:
				pos++
			case g[i] < 0:
				neg++
			}
		}
		switch {
		case pos > neg:
			out[i] = 1
		case neg > pos:
			out[i] = -1
		default:
			out[i] = 0
		}
	}
}

// meanAroundMedianChunk computes the coordinate median on a scratch
// copy (selection reorders its input, and the value/distance pairs must
// keep their input order so the distance sort breaks ties exactly as
// before) and averages the near values closest to it.
func meanAroundMedianChunk[T linalg.Float](grads [][]T, out []T, lo, hi, near int) {
	n := len(grads)
	s := getScratch[T](n)
	defer putScratch(s)
	if cap(s.vd) < n {
		s.vd = make([]valDist[T], n)
	}
	if cap(s.med) < n {
		s.med = make([]T, n)
	}
	vd := s.vd[:n]
	for i := lo; i < hi; i++ {
		col := s.gatherCol(grads, i)
		medBuf := s.med[:n]
		copy(medBuf, col)
		med := linalg.MedianSelect(medBuf)
		for j, v := range col {
			diff := v - med
			if diff < 0 {
				diff = -diff
			}
			vd[j] = valDist[T]{v: v, dist: diff}
		}
		sortValDist(vd)
		var sum T
		for _, e := range vd[:near] {
			sum += e.v
		}
		out[i] = sum / T(near)
	}
}

func aurorChunk[T linalg.Float](grads [][]T, out []T, lo, hi int, threshold float64) {
	n := len(grads)
	s := getScratch[T](n)
	defer putScratch(s)
	if cap(s.prefix) < n+1 {
		s.prefix = make([]T, n+1)
		s.sq = make([]T, n+1)
	}
	for i := lo; i < hi; i++ {
		col := s.gatherCol(grads, i)
		linalg.SortAscending(col)
		out[i] = aurorSorted(col, threshold, s.prefix[:n+1], s.sq[:n+1])
	}
}

// AggregateChunk implements ChunkAggregator: the coordinate mean, summed
// in input order exactly as linalg.MeanVec does.
func (Mean) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	meanChunk(grads, out, lo, hi)
	return nil
}

// AggregateChunk32 implements ChunkAggregator32.
func (Mean) AggregateChunk32(grads [][]float32, out []float32, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	meanChunk(grads, out, lo, hi)
	return nil
}

// AggregateChunk implements ChunkAggregator.
func (Median) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	medianChunk(grads, out, lo, hi)
	return nil
}

// AggregateChunk32 implements ChunkAggregator32.
func (Median) AggregateChunk32(grads [][]float32, out []float32, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	medianChunk(grads, out, lo, hi)
	return nil
}

// checkTrim validates the trimmed-mean feasibility for n inputs.
func (t TrimmedMean) checkTrim(n int) error {
	if t.Trim < 0 || n <= 2*t.Trim {
		return fmt.Errorf("aggregate: trimmed mean needs n > 2·trim >= 0, got n=%d trim=%d", n, t.Trim)
	}
	return nil
}

// AggregateChunk implements ChunkAggregator.
func (t TrimmedMean) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	if err := t.checkTrim(len(grads)); err != nil {
		return err
	}
	trimmedMeanChunk(grads, out, lo, hi, t.Trim)
	return nil
}

// AggregateChunk32 implements ChunkAggregator32.
func (t TrimmedMean) AggregateChunk32(grads [][]float32, out []float32, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	if err := t.checkTrim(len(grads)); err != nil {
		return err
	}
	trimmedMeanChunk(grads, out, lo, hi, t.Trim)
	return nil
}

// checkGroups validates the median-of-means group count for n inputs.
func (m MedianOfMeans) checkGroups(n int) error {
	if m.Groups <= 0 || m.Groups > n {
		return fmt.Errorf("aggregate: median-of-means needs 1 <= groups <= n, got groups=%d n=%d", m.Groups, n)
	}
	return nil
}

// AggregateChunk implements ChunkAggregator. Group boundaries follow the
// same ceil-sized-prefix distribution as Aggregate, and each group mean
// is accumulated in input order, matching linalg.MeanVec bit for bit.
func (m MedianOfMeans) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	if err := m.checkGroups(len(grads)); err != nil {
		return err
	}
	medianOfMeansChunk(grads, out, lo, hi, m.Groups)
	return nil
}

// AggregateChunk32 implements ChunkAggregator32.
func (m MedianOfMeans) AggregateChunk32(grads [][]float32, out []float32, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	if err := m.checkGroups(len(grads)); err != nil {
		return err
	}
	medianOfMeansChunk(grads, out, lo, hi, m.Groups)
	return nil
}

// AggregateChunk implements ChunkAggregator.
func (SignSGD) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	signSGDChunk(grads, out, lo, hi)
	return nil
}

// AggregateChunk32 implements ChunkAggregator32.
func (SignSGD) AggregateChunk32(grads [][]float32, out []float32, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	signSGDChunk(grads, out, lo, hi)
	return nil
}

// nearCount resolves the Near parameter against n inputs.
func (m MeanAroundMedian) nearCount(n int) int {
	near := m.Near
	if near <= 0 {
		near = (n + 1) / 2
	}
	if near > n {
		near = n
	}
	return near
}

// AggregateChunk implements ChunkAggregator.
func (m MeanAroundMedian) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	meanAroundMedianChunk(grads, out, lo, hi, m.nearCount(len(grads)))
	return nil
}

// AggregateChunk32 implements ChunkAggregator32.
func (m MeanAroundMedian) AggregateChunk32(grads [][]float32, out []float32, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	meanAroundMedianChunk(grads, out, lo, hi, m.nearCount(len(grads)))
	return nil
}

// AggregateChunk implements ChunkAggregator.
func (a Auror) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	aurorChunk(grads, out, lo, hi, a.Threshold)
	return nil
}

// AggregateChunk32 implements ChunkAggregator32.
func (a Auror) AggregateChunk32(grads [][]float32, out []float32, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	aurorChunk(grads, out, lo, hi, a.Threshold)
	return nil
}

// sortValDist sorts the value/distance pairs by distance ascending with
// the exact comparator the pre-generic kernel used (sort.Slice on
// dist <), so tie order — and therefore the summation order of equal
// distances — is unchanged for float64.
func sortValDist[T linalg.Float](vd []valDist[T]) {
	sort.Slice(vd, func(a, b int) bool { return vd[a].dist < vd[b].dist })
}
