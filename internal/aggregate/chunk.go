package aggregate

import (
	"fmt"
	"sort"
	"sync"

	"byzshield/internal/linalg"
)

// ChunkAggregator is implemented by the coordinate-wise rules, which can
// reduce an arbitrary coordinate range into a caller-provided buffer.
// The cluster engine uses it to run the post-vote reduction in parallel
// across a worker pool: because every coordinate is reduced
// independently and identically, sharding [0, d) across goroutines is
// bit-identical to a single serial pass.
//
// AggregateChunk writes the aggregate of coordinates [lo, hi) into
// out[lo:hi], leaving the rest of out untouched. Implementations must be
// safe for concurrent calls on disjoint ranges, must not modify the
// inputs, and must produce bit-identical values to Aggregate over the
// same range.
type ChunkAggregator interface {
	Aggregator
	AggregateChunk(grads [][]float64, out []float64, lo, hi int) error
}

// chunkScratch is the pooled per-call working memory of the chunked
// rules, so steady-state aggregation performs no per-round allocation.
type chunkScratch struct {
	col    []float64
	means  []float64
	bounds []int
	vd     []valDist
	prefix []float64
	sq     []float64
}

// valDist pairs a coordinate value with its distance to the coordinate
// median (MeanAroundMedian's sort key).
type valDist struct{ v, dist float64 }

var scratchPool = sync.Pool{New: func() any { return new(chunkScratch) }}

// getScratch returns a scratch with col capacity at least n.
func getScratch(n int) *chunkScratch {
	s := scratchPool.Get().(*chunkScratch)
	if cap(s.col) < n {
		s.col = make([]float64, n)
	}
	return s
}

func putScratch(s *chunkScratch) { scratchPool.Put(s) }

// checkChunk validates the shared AggregateChunk preconditions.
func checkChunk(grads [][]float64, out []float64, lo, hi int) error {
	if len(grads) == 0 {
		return fmt.Errorf("aggregate: chunk of zero gradients")
	}
	d := len(grads[0])
	if len(out) != d {
		return fmt.Errorf("aggregate: chunk output length %d, want %d", len(out), d)
	}
	if lo < 0 || hi > d || lo > hi {
		return fmt.Errorf("aggregate: chunk range [%d,%d) outside [0,%d)", lo, hi, d)
	}
	for i, g := range grads {
		if len(g) != d {
			return fmt.Errorf("aggregate: gradient %d has dim %d, want %d", i, len(g), d)
		}
	}
	return nil
}

// newOut runs a full-range chunked reduction into a fresh vector — the
// shared body of the coordinate-wise Aggregate implementations.
func newOut(ca ChunkAggregator, grads [][]float64) ([]float64, error) {
	out := make([]float64, len(grads[0]))
	if err := ca.AggregateChunk(grads, out, 0, len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

// gatherCol copies coordinate i of every gradient into s.col in input
// order and returns the column.
func (s *chunkScratch) gatherCol(grads [][]float64, i int) []float64 {
	col := s.col[:len(grads)]
	for j, g := range grads {
		col[j] = g[i]
	}
	return col
}

// medianSorted sorts xs in place and returns its median (the same order
// statistic linalg.MedianOf computes on a copy).
func medianSorted(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// AggregateChunk implements ChunkAggregator: the coordinate mean, summed
// in input order exactly as linalg.MeanVec does.
func (Mean) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	inv := 1 / float64(len(grads))
	for i := lo; i < hi; i++ {
		var s float64
		for _, g := range grads {
			s += g[i]
		}
		out[i] = s * inv
	}
	return nil
}

// AggregateChunk implements ChunkAggregator.
func (Median) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	s := getScratch(len(grads))
	defer putScratch(s)
	for i := lo; i < hi; i++ {
		out[i] = medianSorted(s.gatherCol(grads, i))
	}
	return nil
}

// AggregateChunk implements ChunkAggregator.
func (t TrimmedMean) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	n := len(grads)
	if t.Trim < 0 || n <= 2*t.Trim {
		return fmt.Errorf("aggregate: trimmed mean needs n > 2·trim >= 0, got n=%d trim=%d", n, t.Trim)
	}
	s := getScratch(n)
	defer putScratch(s)
	for i := lo; i < hi; i++ {
		col := s.gatherCol(grads, i)
		sort.Float64s(col)
		var sum float64
		for _, v := range col[t.Trim : n-t.Trim] {
			sum += v
		}
		out[i] = sum / float64(n-2*t.Trim)
	}
	return nil
}

// AggregateChunk implements ChunkAggregator. Group boundaries follow the
// same ceil-sized-prefix distribution as Aggregate, and each group mean
// is accumulated in input order, matching linalg.MeanVec bit for bit.
func (m MedianOfMeans) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	n := len(grads)
	g := m.Groups
	if g <= 0 || g > n {
		return fmt.Errorf("aggregate: median-of-means needs 1 <= groups <= n, got groups=%d n=%d", g, n)
	}
	s := getScratch(n)
	defer putScratch(s)
	if cap(s.bounds) < g+1 {
		s.bounds = make([]int, g+1)
	}
	bounds := s.bounds[:g+1]
	bounds[0] = 0
	for k := 0; k < g; k++ {
		size := (n - bounds[k] + (g - k - 1)) / (g - k)
		bounds[k+1] = bounds[k] + size
	}
	if cap(s.means) < g {
		s.means = make([]float64, g)
	}
	means := s.means[:g]
	for i := lo; i < hi; i++ {
		for k := 0; k < g; k++ {
			var sum float64
			for _, gr := range grads[bounds[k]:bounds[k+1]] {
				sum += gr[i]
			}
			means[k] = sum * (1 / float64(bounds[k+1]-bounds[k]))
		}
		out[i] = medianSorted(means)
	}
	return nil
}

// AggregateChunk implements ChunkAggregator.
func (SignSGD) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	for i := lo; i < hi; i++ {
		pos, neg := 0, 0
		for _, g := range grads {
			switch {
			case g[i] > 0:
				pos++
			case g[i] < 0:
				neg++
			}
		}
		switch {
		case pos > neg:
			out[i] = 1
		case neg > pos:
			out[i] = -1
		default:
			out[i] = 0
		}
	}
	return nil
}

// AggregateChunk implements ChunkAggregator.
func (m MeanAroundMedian) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	n := len(grads)
	near := m.Near
	if near <= 0 {
		near = (n + 1) / 2
	}
	if near > n {
		near = n
	}
	s := getScratch(n)
	defer putScratch(s)
	if cap(s.vd) < n {
		s.vd = make([]valDist, n)
	}
	vd := s.vd[:n]
	for i := lo; i < hi; i++ {
		col := s.gatherCol(grads, i)
		med := linalg.MedianOf(col)
		for j, v := range col {
			diff := v - med
			if diff < 0 {
				diff = -diff
			}
			vd[j] = valDist{v: v, dist: diff}
		}
		sort.Slice(vd, func(a, b int) bool { return vd[a].dist < vd[b].dist })
		var sum float64
		for _, e := range vd[:near] {
			sum += e.v
		}
		out[i] = sum / float64(near)
	}
	return nil
}

// AggregateChunk implements ChunkAggregator.
func (a Auror) AggregateChunk(grads [][]float64, out []float64, lo, hi int) error {
	if err := checkChunk(grads, out, lo, hi); err != nil {
		return err
	}
	n := len(grads)
	s := getScratch(n)
	defer putScratch(s)
	if cap(s.prefix) < n+1 {
		s.prefix = make([]float64, n+1)
		s.sq = make([]float64, n+1)
	}
	for i := lo; i < hi; i++ {
		col := s.gatherCol(grads, i)
		sort.Float64s(col)
		out[i] = aurorSorted(col, a.Threshold, s.prefix[:n+1], s.sq[:n+1])
	}
	return nil
}
