// Package aggregate implements the gradient aggregation rules evaluated
// in the paper: ByzShield's coordinate-wise median, plus the baselines —
// mean, trimmed mean, median-of-means (Minsker 2015), Krum and
// Multi-Krum (Blanchard et al. 2017 / Damaskinos et al. 2019), Bulyan
// (El Mhamdi et al. 2018), signSGD with majority vote (Bernstein et al.
// 2019), geometric median (Weiszfeld), and Auror (Shen et al. 2016).
//
// Every rule implements Aggregator. Rules that are only valid when the
// number of adversarial inputs is small enough (Multi-Krum needs
// n ≥ 2c+3, Bulyan n ≥ 4c+3) expose the precondition through Feasible,
// mirroring the applicability limits the paper runs into in Sec. 6
// ("Bulyan cannot be paired with DETOX for q ≥ 1 ...").
package aggregate

import (
	"fmt"
	"math"

	"byzshield/internal/linalg"
)

// Aggregator combines a set of gradient vectors into one update vector.
type Aggregator interface {
	// Aggregate reduces the vectors to a single vector. All inputs have
	// equal dimension; implementations must not modify them.
	Aggregate(grads [][]float64) ([]float64, error)
	// Name returns a stable identifier used in experiment reports.
	Name() string
}

// ByzAware is implemented by aggregators whose validity depends on the
// assumed number of corrupted inputs.
type ByzAware interface {
	// Feasible reports whether the rule is applicable with n total
	// inputs of which c may be corrupted.
	Feasible(n, c int) error
}

// Mean is plain averaging — provably non-robust (a single Byzantine
// worker controls the output; Blanchard et al. 2017).
type Mean struct{}

// Name implements Aggregator.
func (Mean) Name() string { return "mean" }

// Aggregate implements Aggregator.
func (m Mean) Aggregate(grads [][]float64) ([]float64, error) {
	if len(grads) == 0 {
		return nil, fmt.Errorf("aggregate: mean of zero gradients")
	}
	return newOut(m, grads)
}

// Median is the coordinate-wise median — ByzShield's default second
// stage (applied to the f majority-vote winners).
type Median struct{}

// Name implements Aggregator.
func (Median) Name() string { return "median" }

// Aggregate implements Aggregator.
func (m Median) Aggregate(grads [][]float64) ([]float64, error) {
	if len(grads) == 0 {
		return nil, fmt.Errorf("aggregate: median of zero gradients")
	}
	return newOut(m, grads)
}

// TrimmedMean removes the Trim largest and Trim smallest values per
// coordinate and averages the rest (mean-around-median family; Yin et
// al. 2018, Xie et al. 2018).
type TrimmedMean struct {
	Trim int
}

// Name implements Aggregator.
func (t TrimmedMean) Name() string { return fmt.Sprintf("trimmed-mean(%d)", t.Trim) }

// Feasible implements ByzAware: need n > 2·Trim and Trim ≥ c.
func (t TrimmedMean) Feasible(n, c int) error {
	if t.Trim < c {
		return fmt.Errorf("aggregate: trimmed mean trims %d < %d possible corruptions", t.Trim, c)
	}
	if n <= 2*t.Trim {
		return fmt.Errorf("aggregate: trimmed mean needs n > 2·trim, got n=%d trim=%d", n, t.Trim)
	}
	return nil
}

// Aggregate implements Aggregator.
func (t TrimmedMean) Aggregate(grads [][]float64) ([]float64, error) {
	n := len(grads)
	if n == 0 {
		return nil, fmt.Errorf("aggregate: trimmed mean of zero gradients")
	}
	if n <= 2*t.Trim {
		return nil, fmt.Errorf("aggregate: trimmed mean needs n > 2·trim, got n=%d trim=%d", n, t.Trim)
	}
	return newOut(t, grads)
}

// MedianOfMeans splits the inputs into Groups contiguous groups,
// averages within each group and takes the coordinate-wise median of
// the group means (Minsker 2015; DETOX's default second stage).
type MedianOfMeans struct {
	Groups int
}

// Name implements Aggregator.
func (m MedianOfMeans) Name() string { return fmt.Sprintf("median-of-means(%d)", m.Groups) }

// Aggregate implements Aggregator.
func (m MedianOfMeans) Aggregate(grads [][]float64) ([]float64, error) {
	n := len(grads)
	if n == 0 {
		return nil, fmt.Errorf("aggregate: median-of-means of zero gradients")
	}
	g := m.Groups
	if g <= 0 || g > n {
		return nil, fmt.Errorf("aggregate: median-of-means needs 1 <= groups <= n, got groups=%d n=%d", g, n)
	}
	return newOut(m, grads)
}

// SignSGD reduces each input to its coordinate-wise sign and outputs the
// majority sign per coordinate (±1, or 0 on ties), as in signSGD with
// majority vote. The trainer applies the learning rate to the sign
// vector directly.
type SignSGD struct{}

// Name implements Aggregator.
func (SignSGD) Name() string { return "signsgd" }

// Aggregate implements Aggregator.
func (s SignSGD) Aggregate(grads [][]float64) ([]float64, error) {
	if len(grads) == 0 {
		return nil, fmt.Errorf("aggregate: signSGD of zero gradients")
	}
	return newOut(s, grads)
}

// GeometricMedian computes the vector minimizing the sum of Euclidean
// distances to the inputs using Weiszfeld's algorithm (Chen et al. 2017
// use the geometric median of means; this is the core primitive).
type GeometricMedian struct {
	// MaxIter bounds the Weiszfeld iterations (default 100).
	MaxIter int
	// Tol is the convergence threshold on the iterate movement
	// (default 1e-10).
	Tol float64
}

// Name implements Aggregator.
func (GeometricMedian) Name() string { return "geometric-median" }

// Aggregate implements Aggregator.
func (g GeometricMedian) Aggregate(grads [][]float64) ([]float64, error) {
	n := len(grads)
	if n == 0 {
		return nil, fmt.Errorf("aggregate: geometric median of zero gradients")
	}
	maxIter := g.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	tol := g.Tol
	if tol == 0 {
		tol = 1e-10
	}
	cur := linalg.MeanVec(grads)
	for iter := 0; iter < maxIter; iter++ {
		var wsum float64
		next := make([]float64, len(cur))
		coincident := false
		for _, p := range grads {
			dist := linalg.Dist2(cur, p)
			if dist < 1e-15 {
				// Iterate sits on a data point; Weiszfeld's update is
				// undefined — accept the point (it is a valid medianoid).
				coincident = true
				break
			}
			w := 1 / dist
			wsum += w
			linalg.AxpyInPlace(next, w, p)
		}
		if coincident {
			break
		}
		linalg.ScaleInPlace(next, 1/wsum)
		if linalg.Dist2(next, cur) < tol {
			cur = next
			break
		}
		cur = next
	}
	return cur, nil
}

// MeanAroundMedian averages, per coordinate, the Near values closest to
// the coordinate median (the "mean-around-median" rule of Xie et al.
// 2018 — distinct from TrimmedMean, which trims by rank from both ends
// rather than by distance to the median).
type MeanAroundMedian struct {
	// Near is the number of closest-to-median values averaged; 0 means
	// ⌈n/2⌉.
	Near int
}

// Name implements Aggregator.
func (m MeanAroundMedian) Name() string { return fmt.Sprintf("mean-around-median(%d)", m.Near) }

// Aggregate implements Aggregator.
func (m MeanAroundMedian) Aggregate(grads [][]float64) ([]float64, error) {
	if len(grads) == 0 {
		return nil, fmt.Errorf("aggregate: mean-around-median of zero gradients")
	}
	return newOut(m, grads)
}

// Auror partitions each coordinate's values into two clusters with 1-D
// 2-means; when the cluster centers are farther apart than Threshold,
// the smaller cluster is discarded and the larger one is averaged
// (Shen et al. 2016).
type Auror struct {
	// Threshold is the minimum center separation that triggers
	// discarding the minority cluster. Zero means always discard.
	Threshold float64
}

// Name implements Aggregator.
func (Auror) Name() string { return "auror" }

// Aggregate implements Aggregator.
func (a Auror) Aggregate(grads [][]float64) ([]float64, error) {
	if len(grads) == 0 {
		return nil, fmt.Errorf("aggregate: auror of zero gradients")
	}
	return newOut(a, grads)
}

// aurorSorted runs 1-D 2-means on the pre-sorted values and returns the
// average of the majority cluster when centers are separated by more
// than threshold, else the average of everything. prefix and prefixSq
// are caller-provided scratch of length n+1. Generic over the element
// width; split costs compare in float64 for both widths (an identity
// conversion on the float64 tier).
func aurorSorted[T linalg.Float](sorted []T, threshold float64, prefix, prefixSq []T) T {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	// Optimal 1-D 2-means is a split point in sorted order: choose the
	// split minimizing within-cluster sum of squares via prefix sums.
	prefix[0], prefixSq[0] = 0, 0
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
		prefixSq[i+1] = prefixSq[i] + v*v
	}
	sse := func(lo, hi int) T { // [lo, hi)
		cnt := T(hi - lo)
		if cnt == 0 {
			return 0
		}
		sum := prefix[hi] - prefix[lo]
		sq := prefixSq[hi] - prefixSq[lo]
		return sq - sum*sum/cnt
	}
	bestSplit, bestCost := 1, math.Inf(1)
	for s := 1; s < n; s++ {
		if c := float64(sse(0, s) + sse(s, n)); c < bestCost {
			bestCost = c
			bestSplit = s
		}
	}
	loMean := (prefix[bestSplit] - prefix[0]) / T(bestSplit)
	hiMean := (prefix[n] - prefix[bestSplit]) / T(n-bestSplit)
	if math.Abs(float64(hiMean-loMean)) > threshold {
		// Discard the smaller cluster.
		if bestSplit >= n-bestSplit {
			return loMean
		}
		return hiMean
	}
	return prefix[n] / T(n)
}
