package aggregate

import (
	"fmt"
	"sort"

	"byzshield/internal/linalg"
)

// Krum selects the single input vector whose sum of squared distances to
// its n−c−2 nearest neighbors is smallest (Blanchard et al. 2017). C is
// the assumed number of corrupted inputs.
type Krum struct {
	C int
}

// Name implements Aggregator.
func (k Krum) Name() string { return fmt.Sprintf("krum(c=%d)", k.C) }

// Feasible implements ByzAware: Krum requires n ≥ 2c + 3.
func (k Krum) Feasible(n, c int) error {
	if k.C < c {
		return fmt.Errorf("aggregate: krum configured for c=%d < %d possible corruptions", k.C, c)
	}
	if n < 2*k.C+3 {
		return fmt.Errorf("aggregate: krum needs n >= 2c+3 = %d, got n=%d", 2*k.C+3, n)
	}
	return nil
}

// Aggregate implements Aggregator.
func (k Krum) Aggregate(grads [][]float64) ([]float64, error) {
	scores, err := krumScores(grads, k.C)
	if err != nil {
		return nil, err
	}
	return linalg.CloneVec(grads[linalg.ArgMin(scores)]), nil
}

// MultiKrum averages the M inputs with the best Krum scores
// (Damaskinos et al. 2019). C is the assumed number of corruptions.
type MultiKrum struct {
	C int
	M int // number of selected gradients; 0 means n − C − 2
}

// Name implements Aggregator.
func (k MultiKrum) Name() string { return fmt.Sprintf("multi-krum(c=%d,m=%d)", k.C, k.M) }

// Feasible implements ByzAware.
func (k MultiKrum) Feasible(n, c int) error {
	return Krum{C: k.C}.Feasible(n, c)
}

// Aggregate implements Aggregator.
func (k MultiKrum) Aggregate(grads [][]float64) ([]float64, error) {
	scores, err := krumScores(grads, k.C)
	if err != nil {
		return nil, err
	}
	n := len(grads)
	m := k.M
	if m == 0 {
		m = n - k.C - 2
	}
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	order := argsort(scores)
	selected := make([][]float64, m)
	for i := 0; i < m; i++ {
		selected[i] = grads[order[i]]
	}
	return linalg.MeanVec(selected), nil
}

// krumScores returns, for each input, the sum of squared distances to
// its n−c−2 nearest neighbors (excluding itself).
func krumScores(grads [][]float64, c int) ([]float64, error) {
	n := len(grads)
	if n == 0 {
		return nil, fmt.Errorf("aggregate: krum of zero gradients")
	}
	if n < 2*c+3 {
		return nil, fmt.Errorf("aggregate: krum needs n >= 2c+3 = %d, got n=%d", 2*c+3, n)
	}
	// Pairwise squared distances.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := linalg.SqDist2(grads[i], grads[j])
			dist[i][j] = d
			dist[j][i] = d
		}
	}
	nn := n - c - 2 // neighbors counted per candidate
	if nn < 1 {
		nn = 1
	}
	scores := make([]float64, n)
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, dist[i][j])
			}
		}
		sort.Float64s(row)
		var s float64
		for _, d := range row[:nn] {
			s += d
		}
		scores[i] = s
	}
	return scores, nil
}

// Bulyan runs iterated Krum selection to build a set of θ = n − 2c
// candidates, then applies a per-coordinate trimmed aggregation: the
// β = θ − 2c values closest to the coordinate median are averaged
// (El Mhamdi et al. 2018).
type Bulyan struct {
	C int
}

// Name implements Aggregator.
func (b Bulyan) Name() string { return fmt.Sprintf("bulyan(c=%d)", b.C) }

// Feasible implements ByzAware: Bulyan requires n ≥ 4c + 3.
func (b Bulyan) Feasible(n, c int) error {
	if b.C < c {
		return fmt.Errorf("aggregate: bulyan configured for c=%d < %d possible corruptions", b.C, c)
	}
	if n < 4*b.C+3 {
		return fmt.Errorf("aggregate: bulyan needs n >= 4c+3 = %d, got n=%d", 4*b.C+3, n)
	}
	return nil
}

// Aggregate implements Aggregator.
func (b Bulyan) Aggregate(grads [][]float64) ([]float64, error) {
	n := len(grads)
	if n < 4*b.C+3 {
		return nil, fmt.Errorf("aggregate: bulyan needs n >= 4c+3 = %d, got n=%d", 4*b.C+3, n)
	}
	theta := n - 2*b.C
	remaining := make([][]float64, n)
	copy(remaining, grads)
	selected := make([][]float64, 0, theta)
	for len(selected) < theta {
		scores, err := krumScores(remaining, b.C)
		if err != nil {
			// Fewer vectors than Krum's requirement remain: take the rest.
			selected = append(selected, remaining...)
			break
		}
		best := linalg.ArgMin(scores)
		selected = append(selected, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	if len(selected) > theta {
		selected = selected[:theta]
	}
	// Trimmed aggregation around the median.
	beta := theta - 2*b.C
	if beta < 1 {
		beta = 1
	}
	d := len(selected[0])
	out := make([]float64, d)
	col := make([]float64, len(selected))
	type valDist struct {
		v, dist float64
	}
	for i := 0; i < d; i++ {
		for j, g := range selected {
			col[j] = g[i]
		}
		med := linalg.MedianOf(col)
		vd := make([]valDist, len(col))
		for j, v := range col {
			diff := v - med
			if diff < 0 {
				diff = -diff
			}
			vd[j] = valDist{v: v, dist: diff}
		}
		sort.Slice(vd, func(a, c int) bool { return vd[a].dist < vd[c].dist })
		var s float64
		for _, e := range vd[:beta] {
			s += e.v
		}
		out[i] = s / float64(beta)
	}
	return out, nil
}

// argsort returns indices ordering xs ascending (stable).
func argsort(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}
