package aggregate

import (
	"math"
	"testing"
	"testing/quick"

	"byzshield/internal/linalg"
)

func vecsAlmostEq(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("dim %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("got %v, want %v (coord %d)", got, want, i)
		}
	}
}

func TestMean(t *testing.T) {
	out, err := Mean{}.Aggregate([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{2, 3}, 1e-12)
	if _, err := (Mean{}).Aggregate(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestMedianIgnoresOutlier(t *testing.T) {
	grads := [][]float64{
		{1, 1}, {1.1, 0.9}, {0.9, 1.1}, {1e9, -1e9}, {1, 1},
	}
	out, err := Median{}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 0.2 || math.Abs(out[1]-1) > 0.2 {
		t.Errorf("median swayed by outlier: %v", out)
	}
}

func TestTrimmedMean(t *testing.T) {
	grads := [][]float64{{0}, {1}, {2}, {3}, {100}}
	out, err := TrimmedMean{Trim: 1}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{2}, 1e-12)
	if _, err := (TrimmedMean{Trim: 3}).Aggregate(grads); err == nil {
		t.Error("over-trim accepted")
	}
	if err := (TrimmedMean{Trim: 1}).Feasible(5, 1); err != nil {
		t.Errorf("Feasible(5,1) with trim 1: %v", err)
	}
	if err := (TrimmedMean{Trim: 1}).Feasible(5, 2); err == nil {
		t.Error("trim < c accepted")
	}
}

func TestMedianOfMeans(t *testing.T) {
	// 6 inputs, 3 groups of 2: group means 0.5, 2.5, 100 → median 2.5.
	grads := [][]float64{{0}, {1}, {2}, {3}, {100}, {100}}
	out, err := MedianOfMeans{Groups: 3}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{2.5}, 1e-12)
	if _, err := (MedianOfMeans{Groups: 0}).Aggregate(grads); err == nil {
		t.Error("groups=0 accepted")
	}
	if _, err := (MedianOfMeans{Groups: 7}).Aggregate(grads); err == nil {
		t.Error("groups > n accepted")
	}
}

func TestMedianOfMeansUnevenGroups(t *testing.T) {
	// 5 inputs into 2 groups: sizes 3 and 2, all values equal → value.
	grads := [][]float64{{4}, {4}, {4}, {4}, {4}}
	out, err := MedianOfMeans{Groups: 2}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{4}, 1e-12)
}

func TestSignSGD(t *testing.T) {
	grads := [][]float64{
		{1, -2, 0},
		{3, -1, 0},
		{-1, -5, 0},
	}
	out, err := SignSGD{}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{1, -1, 0}, 0)
	// tie: one positive, one negative
	out, err = SignSGD{}.Aggregate([][]float64{{1}, {-1}})
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{0}, 0)
}

func TestGeometricMedianRobust(t *testing.T) {
	grads := [][]float64{
		{1, 1}, {1.2, 0.8}, {0.8, 1.2}, {1000, 1000},
	}
	out, err := GeometricMedian{}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if linalg.Dist2(out, []float64{1, 1}) > 1 {
		t.Errorf("geometric median pulled to outlier: %v", out)
	}
}

func TestGeometricMedianCoincidentPoint(t *testing.T) {
	// Mean coincides with a data point: must not NaN.
	grads := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	out, err := GeometricMedian{}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{1, 1}, 1e-9)
}

func TestKrumPicksHonestVector(t *testing.T) {
	honest := [][]float64{{1, 1}, {1.1, 1}, {0.9, 1.05}, {1, 0.95}, {1.05, 1.1}, {0.98, 1.02}}
	byz := [][]float64{{50, -50}}
	grads := append(append([][]float64{}, honest...), byz...)
	k := Krum{C: 1}
	if err := k.Feasible(len(grads), 1); err != nil {
		t.Fatal(err)
	}
	out, err := k.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	// Output must be one of the honest inputs.
	found := false
	for _, h := range honest {
		if linalg.Dist2(out, h) < 1e-12 {
			found = true
		}
	}
	if !found {
		t.Errorf("krum selected non-honest vector %v", out)
	}
}

func TestKrumOutputIsAnInput(t *testing.T) {
	grads := [][]float64{{1}, {2}, {3}, {4}, {5}}
	out, err := Krum{C: 1}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range grads {
		if g[0] == out[0] {
			found = true
		}
	}
	if !found {
		t.Error("krum output is not one of the inputs")
	}
}

func TestKrumFeasibility(t *testing.T) {
	if err := (Krum{C: 1}).Feasible(5, 1); err != nil {
		t.Errorf("Feasible(5,1): %v", err)
	}
	if err := (Krum{C: 1}).Feasible(4, 1); err == nil {
		t.Error("n < 2c+3 accepted")
	}
	if err := (Krum{C: 1}).Feasible(9, 2); err == nil {
		t.Error("c > configured accepted")
	}
	if _, err := (Krum{C: 2}).Aggregate([][]float64{{1}, {2}}); err == nil {
		t.Error("aggregate with too few inputs accepted")
	}
}

func TestMultiKrumAveragesSelection(t *testing.T) {
	honest := [][]float64{{1}, {1.1}, {0.9}, {1.05}, {0.95}, {1}}
	byz := [][]float64{{-100}}
	grads := append(append([][]float64{}, honest...), byz...)
	out, err := MultiKrum{C: 1, M: 3}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 0.2 {
		t.Errorf("multi-krum output %v, want ≈1", out)
	}
}

func TestMultiKrumDefaultM(t *testing.T) {
	grads := [][]float64{{1}, {1}, {1}, {1}, {1}, {1}, {1}}
	out, err := MultiKrum{C: 1}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{1}, 1e-12)
}

func TestBulyanRobustToCByzantines(t *testing.T) {
	// n = 7 = 4c+3 with c = 1.
	honest := [][]float64{{1, 2}, {1.1, 2.1}, {0.9, 1.9}, {1, 2.05}, {1.05, 1.95}, {0.95, 2}}
	byz := [][]float64{{-1000, 1000}}
	grads := append(append([][]float64{}, honest...), byz...)
	b := Bulyan{C: 1}
	if err := b.Feasible(len(grads), 1); err != nil {
		t.Fatal(err)
	}
	out, err := b.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 0.3 || math.Abs(out[1]-2) > 0.3 {
		t.Errorf("bulyan output %v, want ≈(1,2)", out)
	}
}

func TestBulyanFeasibility(t *testing.T) {
	if err := (Bulyan{C: 1}).Feasible(7, 1); err != nil {
		t.Errorf("Feasible(7,1): %v", err)
	}
	if err := (Bulyan{C: 1}).Feasible(6, 1); err == nil {
		t.Error("n < 4c+3 accepted")
	}
	if _, err := (Bulyan{C: 1}).Aggregate([][]float64{{1}, {2}, {3}}); err == nil {
		t.Error("aggregate with too few inputs accepted")
	}
}

func TestAurorDiscardsMinorityCluster(t *testing.T) {
	grads := [][]float64{{0.9}, {1}, {1.1}, {1}, {50}, {51}}
	out, err := Auror{Threshold: 5}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{1}, 0.2)
}

func TestAurorKeepsAllWhenClose(t *testing.T) {
	grads := [][]float64{{1}, {2}, {3}, {4}}
	out, err := Auror{Threshold: 100}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{2.5}, 1e-12)
}

func TestAurorSingleInput(t *testing.T) {
	out, err := Auror{}.Aggregate([][]float64{{7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{7, 8}, 0)
}

func TestAggregatorsDoNotMutateInputs(t *testing.T) {
	aggs := []Aggregator{
		Mean{}, Median{}, TrimmedMean{Trim: 1}, MedianOfMeans{Groups: 2},
		SignSGD{}, GeometricMedian{}, Krum{C: 1}, MultiKrum{C: 1},
		Bulyan{C: 1}, Auror{Threshold: 1},
	}
	for _, agg := range aggs {
		grads := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}, {13, 14}}
		orig := make([][]float64, len(grads))
		for i, g := range grads {
			orig[i] = linalg.CloneVec(g)
		}
		if _, err := agg.Aggregate(grads); err != nil {
			t.Errorf("%s: %v", agg.Name(), err)
			continue
		}
		for i := range grads {
			for j := range grads[i] {
				if grads[i][j] != orig[i][j] {
					t.Errorf("%s mutated input %d", agg.Name(), i)
				}
			}
		}
	}
}

func TestNamesAreStable(t *testing.T) {
	if (Krum{C: 2}).Name() != "krum(c=2)" {
		t.Error("krum name changed")
	}
	if (MedianOfMeans{Groups: 5}).Name() != "median-of-means(5)" {
		t.Error("mom name changed")
	}
}

// Property: for all aggregators the output is within the coordinate-wise
// min/max envelope of the inputs... except SignSGD (maps to signs) and
// Mean-like rules which stay inside the convex hull anyway. We check the
// envelope property for the robust rules on random data.
func TestQuickOutputWithinEnvelope(t *testing.T) {
	robust := []Aggregator{Median{}, TrimmedMean{Trim: 1}, MedianOfMeans{Groups: 3},
		GeometricMedian{}, Krum{C: 1}, MultiKrum{C: 1}, Bulyan{C: 1}}
	prop := func(raw [7][3]float64) bool {
		grads := make([][]float64, 7)
		for i := range grads {
			grads[i] = []float64{clamp(raw[i][0]), clamp(raw[i][1]), clamp(raw[i][2])}
		}
		for _, agg := range robust {
			out, err := agg.Aggregate(grads)
			if err != nil {
				return false
			}
			for c := 0; c < 3; c++ {
				lo, hi := grads[0][c], grads[0][c]
				for _, g := range grads {
					lo = math.Min(lo, g[c])
					hi = math.Max(hi, g[c])
				}
				if out[c] < lo-1e-9 || out[c] > hi+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: permutation invariance for the symmetric rules. Krum is
// excluded: under exact score ties its argmin selection is order
// dependent, which the original paper leaves unspecified.
func TestQuickPermutationInvariance(t *testing.T) {
	aggs := []Aggregator{Median{}, TrimmedMean{Trim: 1}, GeometricMedian{},
		Mean{}, SignSGD{}}
	prop := func(raw [6][2]float64, rot uint8) bool {
		grads := make([][]float64, 6)
		for i := range grads {
			grads[i] = []float64{clamp(raw[i][0]), clamp(raw[i][1])}
		}
		s := int(rot) % 6
		rotated := make([][]float64, 6)
		for i := range grads {
			rotated[i] = grads[(i+s)%6]
		}
		for _, agg := range aggs {
			a, err1 := agg.Aggregate(grads)
			b, err2 := agg.Aggregate(rotated)
			if err1 != nil || err2 != nil {
				return false
			}
			if linalg.Dist2(a, b) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Mod(x, 5)
}

func benchGrads(n, d int) [][]float64 {
	grads := make([][]float64, n)
	for i := range grads {
		grads[i] = make([]float64, d)
		for j := range grads[i] {
			grads[i][j] = float64((i*31+j*17)%13) - 6
		}
	}
	return grads
}

func BenchmarkMedian25x1000(b *testing.B) {
	grads := benchGrads(25, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Median{}).Aggregate(grads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiKrum25x1000(b *testing.B) {
	grads := benchGrads(25, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (MultiKrum{C: 5}).Aggregate(grads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulyan25x1000(b *testing.B) {
	grads := benchGrads(25, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Bulyan{C: 5}).Aggregate(grads); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMeanAroundMedian(t *testing.T) {
	grads := [][]float64{{0}, {1}, {2}, {3}, {100}}
	// near=3: values closest to median 2 are {2, 1, 3} → mean 2.
	out, err := MeanAroundMedian{Near: 3}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{2}, 1e-12)
	// default near = ceil(n/2) = 3: same result.
	out, err = MeanAroundMedian{}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{2}, 1e-12)
	// near > n clamps to n (plain mean).
	out, err = MeanAroundMedian{Near: 99}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	vecsAlmostEq(t, out, []float64{21.2}, 1e-12)
	if _, err := (MeanAroundMedian{}).Aggregate(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestMeanAroundMedianIgnoresOutliers(t *testing.T) {
	grads := [][]float64{{1, -1}, {1.1, -0.9}, {0.9, -1.1}, {1e6, -1e6}, {1.05, -1.05}}
	out, err := MeanAroundMedian{Near: 3}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 0.2 || math.Abs(out[1]+1) > 0.2 {
		t.Errorf("output %v pulled by outlier", out)
	}
}
