// Package advnet is the coordinated-adversary sidecar: a TCP hub that a
// coalition of Byzantine worker processes connects to so omniscient
// attacks (ALIE's µ − z·σ payload) can run cross-process. The hub is
// deliberately outside the training protocol — it models the attackers'
// private channel, which the parameter server never sees.
//
// Per round, the coalition leader (the member with the lowest worker
// id, elected by the hub at admission) publishes one moment frame (the
// per-coordinate mean and standard deviation of the full file-gradient
// population, reconstructed deterministically from the training spec)
// and the hub broadcasts it back to every member — including the
// leader, so all members craft from the identical decoded bytes. The
// frames use the bit-exact codec of internal/wire (MomentFrame inside
// the standard control frame), which is what makes a cross-process
// coalition's payload bit-identical to the in-process omniscient
// attacker's.
package advnet

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"byzshield/internal/wire"
)

// Sidecar message types (frame type byte). The sidecar runs on its own
// connections, so the namespace is independent of the PS transport's.
const (
	msgAdvHello   = 1 // member → hub: u32 worker id
	msgAdvWelcome = 2 // hub → member: members []int, u32 leader id
	msgAdvMoments = 3 // leader → hub: MomentFrame
	msgAdvShare   = 4 // hub → members: MomentFrame (broadcast)
)

// handshakeTimeout bounds each admission-phase read/write; shareTimeout
// bounds how long a member waits for a round's moment share.
const (
	handshakeTimeout = 30 * time.Second
	shareTimeout     = 30 * time.Second
)

// Hub is the coalition rendezvous: it admits exactly the configured
// number of members, elects the leader, and relays every published
// moment frame to the full coalition.
type Hub struct {
	ln        net.Listener
	peers     int
	logf      func(format string, args ...any)
	closeOnce sync.Once
}

// NewHub listens on addr for a coalition of peers members. logf may be
// nil for silence.
func NewHub(addr string, peers int, logf func(format string, args ...any)) (*Hub, error) {
	if peers < 1 {
		return nil, fmt.Errorf("advnet: coalition size %d < 1", peers)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("advnet: listen: %w", err)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Hub{ln: ln, peers: peers, logf: logf}, nil
}

// Addr returns the hub's bound listen address.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Close unblocks Serve and tears the hub down. Idempotent.
func (h *Hub) Close() error {
	h.closeOnce.Do(func() { h.ln.Close() })
	return nil
}

// member is one admitted coalition connection.
type member struct {
	id   int
	conn net.Conn
}

// Serve admits the coalition, elects the leader, and relays moment
// frames until every member disconnects (a clean end of training) or
// ctx is canceled. It returns nil on a clean drain.
func (h *Hub) Serve(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() { h.Close() })
	defer stop()

	members := make([]member, 0, h.peers)
	defer func() {
		for _, m := range members {
			m.conn.Close()
		}
	}()
	seen := make(map[int]bool, h.peers)
	var buf []byte
	for len(members) < h.peers {
		conn, err := h.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("advnet: accept: %w", err)
		}
		conn.SetDeadline(time.Now().Add(handshakeTimeout))
		var typ byte
		var payload []byte
		typ, payload, buf, err = wire.ReadFrame(conn, buf)
		if err != nil || typ != msgAdvHello {
			h.logf("advnet: rejecting connection %s: bad hello (type %d, err %v)", conn.RemoteAddr(), typ, err)
			conn.Close()
			continue
		}
		d := wire.NewDec(payload)
		id := d.Int()
		if err := d.Done(); err != nil || seen[id] {
			h.logf("advnet: rejecting connection %s: worker id %d (err %v)", conn.RemoteAddr(), id, err)
			conn.Close()
			continue
		}
		conn.SetDeadline(time.Time{})
		seen[id] = true
		members = append(members, member{id: id, conn: conn})
		h.logf("advnet: member %d joined (%d/%d)", id, len(members), h.peers)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].id < members[j].id })
	leader := members[0].id
	ids := make([]int, len(members))
	for i, m := range members {
		ids[i] = m.id
	}

	welcome, err := wire.AppendInts(nil, ids)
	if err != nil {
		return fmt.Errorf("advnet: welcome: %w", err)
	}
	welcome = wire.AppendU32(welcome, uint32(leader))
	frame, err := wire.AppendFrame(nil, msgAdvWelcome, welcome)
	if err != nil {
		return fmt.Errorf("advnet: welcome: %w", err)
	}
	for _, m := range members {
		m.conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
		if _, err := m.conn.Write(frame); err != nil {
			return fmt.Errorf("advnet: welcome to member %d: %w", m.id, err)
		}
		m.conn.SetWriteDeadline(time.Time{})
	}
	h.logf("advnet: coalition %v complete, leader %d", ids, leader)

	// Relay: any member's published moments (in practice only the
	// leader's) are rebroadcast to the whole coalition, leader included,
	// so every member crafts from identical bytes. One reader per
	// connection; the relay goroutine owns all writes.
	type inbound struct {
		from    int
		payload []byte
		err     error
	}
	frames := make(chan inbound)
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m member) {
			defer wg.Done()
			var rbuf []byte
			for {
				typ, payload, nbuf, err := wire.ReadFrame(m.conn, rbuf)
				rbuf = nbuf
				if err != nil {
					frames <- inbound{from: m.id, err: err}
					return
				}
				if typ != msgAdvMoments {
					frames <- inbound{from: m.id, err: fmt.Errorf("advnet: member %d sent frame type %d", m.id, typ)}
					return
				}
				cp := append([]byte(nil), payload...)
				frames <- inbound{from: m.id, payload: cp}
			}
		}(m)
	}
	go func() { wg.Wait(); close(frames) }()
	// On any return, the deferred conn closes error the readers out;
	// this drain keeps them from blocking on the channel until then.
	defer func() {
		go func() {
			for range frames {
			}
		}()
	}()

	alive := len(members)
	var out []byte
	for in := range frames {
		if in.err != nil {
			alive--
			h.logf("advnet: member %d left: %v (%d remaining)", in.from, in.err, alive)
			if alive == 0 {
				break
			}
			continue
		}
		out = out[:0]
		out, err = wire.AppendFrame(out, msgAdvShare, in.payload)
		if err != nil {
			return fmt.Errorf("advnet: share: %w", err)
		}
		for _, m := range members {
			m.conn.SetWriteDeadline(time.Now().Add(shareTimeout))
			if _, err := m.conn.Write(out); err != nil {
				h.logf("advnet: share to member %d: %v", m.id, err)
			}
			m.conn.SetWriteDeadline(time.Time{})
		}
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// Client is one coalition member's hub connection.
type Client struct {
	conn     net.Conn
	id       int
	members  []int
	leader   int
	buf      []byte
	enc      []byte
	frameBuf []byte
}

// Dial connects to the hub, announces the worker id, and blocks until
// the hub has admitted the full coalition and elected the leader.
func Dial(ctx context.Context, addr string, workerID int) (*Client, error) {
	if workerID < 0 {
		return nil, fmt.Errorf("advnet: worker id %d < 0", workerID)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("advnet: dial %s: %w", addr, err)
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	hello, err := wire.AppendFrame(nil, msgAdvHello, wire.AppendU32(nil, uint32(workerID)))
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("advnet: hello: %w", err)
	}
	conn.SetDeadline(time.Time{})
	// The welcome arrives only once the whole coalition has joined;
	// waiting for slow peers is the point, so no read deadline here
	// (ctx cancellation still unblocks via the AfterFunc above).
	typ, payload, buf, err := wire.ReadFrame(conn, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("advnet: welcome: %w", err)
	}
	if typ != msgAdvWelcome {
		conn.Close()
		return nil, fmt.Errorf("advnet: expected welcome, got frame type %d", typ)
	}
	dec := wire.NewDec(payload)
	ids := dec.Ints()
	leader := dec.Int()
	if err := dec.Done(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("advnet: welcome: %w", err)
	}
	return &Client{conn: conn, id: workerID, members: ids, leader: leader, buf: buf}, nil
}

// WorkerID returns this member's worker id.
func (c *Client) WorkerID() int { return c.id }

// Leader returns the coalition leader's worker id.
func (c *Client) Leader() int { return c.leader }

// IsLeader reports whether this member reconstructs and publishes the
// round moments.
func (c *Client) IsLeader() bool { return c.id == c.leader }

// Members returns the coalition size.
func (c *Client) Members() int { return len(c.members) }

// MemberIDs returns the coalition's worker ids, ascending. The slice is
// shared: do not modify.
func (c *Client) MemberIDs() []int { return c.members }

// Publish sends a round's moment frame to the hub for broadcast.
func (c *Client) Publish(f *wire.MomentFrame) error {
	payload, err := wire.AppendMomentFrame(c.enc[:0], f)
	if err != nil {
		return err
	}
	c.enc = payload
	frame, err := wire.AppendFrame(c.frameBuf[:0], msgAdvMoments, payload)
	if err != nil {
		return err
	}
	c.frameBuf = frame
	c.conn.SetWriteDeadline(time.Now().Add(shareTimeout))
	defer c.conn.SetWriteDeadline(time.Time{})
	if _, err := c.conn.Write(frame); err != nil {
		return fmt.Errorf("advnet: publish: %w", err)
	}
	return nil
}

// AwaitShare blocks until the hub broadcasts the moment share for
// round, decoding it into f (reusing f's buffers). Shares for earlier
// rounds are discarded; a share for a later round means this member
// missed its round and is an error, as is the share timeout.
func (c *Client) AwaitShare(round int, f *wire.MomentFrame) error {
	for {
		c.conn.SetReadDeadline(time.Now().Add(shareTimeout))
		typ, payload, buf, err := wire.ReadFrame(c.conn, c.buf)
		c.buf = buf
		if err != nil {
			return fmt.Errorf("advnet: await share for round %d: %w", round, err)
		}
		if typ != msgAdvShare {
			return fmt.Errorf("advnet: expected share, got frame type %d", typ)
		}
		if err := wire.DecodeMomentFrame(payload, f); err != nil {
			return fmt.Errorf("advnet: share: %w", err)
		}
		switch {
		case f.Round < round:
			continue // stale share from a round this member sat out
		case f.Round > round:
			return fmt.Errorf("advnet: share for round %d arrived while waiting for round %d", f.Round, round)
		}
		c.conn.SetReadDeadline(time.Time{})
		return nil
	}
}

// Close tears the member's hub connection down.
func (c *Client) Close() error { return c.conn.Close() }
