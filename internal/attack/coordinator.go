// Coordinator seam for omniscient attacks. ALIE needs the gradient
// population's moments, which a single in-process attacker reads off
// the oracle (Context.FileGradients) but a fleet of Byzantine worker
// processes must exchange out of band. A Coordinator abstracts where
// those moments come from: Loopback computes them locally from the
// omniscient context (the in-process path), while the transport layer
// backs the same interface with the advnet sidecar hub so cross-process
// coalitions craft the identical payload. Both sources feed the same
// µ − z·σ arithmetic, so for equal inputs the crafted vectors are
// bit-identical — the property the sidecar loopback test pins.
package attack

import (
	"fmt"

	"byzshield/internal/linalg"
)

// Moments is one round's coalition share: the per-coordinate mean and
// standard deviation of the full file-gradient population, plus the
// coalition size the z-derivation uses.
type Moments struct {
	Round   int
	Members int
	Mu      []float64
	Sigma   []float64
}

// Coordinator supplies the gradient-population moments of a round. The
// returned slices stay valid only until the next call.
type Coordinator interface {
	RoundMoments(ctx *Context) (Moments, error)
}

// Coordinated is implemented by attacks that can run from coordinator-
// supplied moments instead of the omniscient context. The crafted
// vectors must be bit-identical to the uncoordinated path when the
// coordinator reproduces the omniscient moments.
type Coordinated interface {
	Attack
	BeginRoundCoordinated(ctx *Context, s *Scratch, coord Coordinator) (Crafter, error)
}

// Loopback is the in-process Coordinator: it computes the moments
// directly from Context.FileGradients with the same accumulation order
// as ALIE's scratch path, into buffers it owns (one Loopback serves one
// engine; steady state allocates nothing).
type Loopback struct {
	mu, sigma []float64
}

// RoundMoments implements Coordinator.
func (l *Loopback) RoundMoments(ctx *Context) (Moments, error) {
	if len(ctx.FileGradients) == 0 {
		return Moments{}, fmt.Errorf("attack: loopback coordinator needs the omniscient file gradients")
	}
	mu := linalg.MeanVecInto(grow(&l.mu, ctx.Dim), ctx.FileGradients)
	sigma := linalg.StdVecInto(grow(&l.sigma, ctx.Dim), mu, ctx.FileGradients)
	return Moments{Round: ctx.Round, Members: ctx.ExpectedCorrupted, Mu: mu, Sigma: sigma}, nil
}

// BeginWith dispatches like Begin but routes Coordinated attacks
// through the coordinator when one is supplied.
func BeginWith(a Attack, ctx *Context, s *Scratch, coord Coordinator) (Crafter, error) {
	if ca, ok := a.(Coordinated); ok && coord != nil {
		return ca.BeginRoundCoordinated(ctx, s, coord)
	}
	return Begin(a, ctx, s), nil
}

// BeginRoundCoordinated implements Coordinated: µ − z·σ from the
// coordinator's share, with z derived from the coalition size the share
// reports (so a cross-process coalition and the in-process omniscient
// attacker agree on z without further negotiation).
func (a ALIE) BeginRoundCoordinated(ctx *Context, s *Scratch, coord Coordinator) (Crafter, error) {
	m, err := coord.RoundMoments(ctx)
	if err != nil {
		return nil, err
	}
	if len(m.Mu) != len(m.Sigma) {
		return nil, fmt.Errorf("attack: coordinator share has %d mean but %d sigma values", len(m.Mu), len(m.Sigma))
	}
	z := a.ZOverride
	if z == 0 {
		z = ZMax(ctx.Participants, m.Members)
	}
	payload := grow(&s.payload, len(m.Mu))
	for i := range payload {
		payload[i] = m.Mu[i] - z*m.Sigma[i]
	}
	return func(int, []float64) []float64 {
		return payload
	}, nil
}
