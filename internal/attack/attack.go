// Package attack implements the Byzantine attack models evaluated in
// Sec. 6.1 of the paper — ALIE (Baruch et al. 2019), Constant, and
// Reversed gradient — plus auxiliary attacks (random Gaussian, sign
// flip) used for ablations. The omniscient worst-case *placement* of the
// Byzantines (which q workers to corrupt) is computed by
// internal/distort; this package decides what the corrupted workers
// send.
//
// All colluding Byzantines return bit-identical crafted vectors for a
// given file, which is optimal under majority voting: on files where
// they hold at least r' replicas the crafted value wins the vote; on all
// other files their value is discarded regardless.
package attack

import (
	"math/rand"

	"byzshield/internal/linalg"
)

// Context carries the omniscient view of a training round that attacks
// may exploit.
type Context struct {
	// Round is the iteration number.
	Round int
	// Dim is the gradient dimension.
	Dim int
	// FileGradients holds the true (honest) gradient sum of every file,
	// indexed by file id. Attacks must not modify these.
	FileGradients [][]float64
	// CorruptibleFiles lists the files whose majority vote the
	// Byzantine set controls this round.
	CorruptibleFiles []int
	// Participants is the number of operands the post-vote aggregator
	// will see (f for redundancy schemes, K for the baseline).
	Participants int
	// ExpectedCorrupted is how many of those operands the adversary
	// controls (c_max for redundancy schemes, q for the baseline).
	ExpectedCorrupted int
	// FileSize is the average number of samples per file, used to scale
	// constant payloads to gradient-sum magnitude.
	FileSize float64
	// Rng provides per-round deterministic randomness.
	Rng *rand.Rand
}

// Crafter maps a file id and its honest gradient to the adversarial
// vector the Byzantines return for that file.
type Crafter func(file int, honest []float64) []float64

// Attack is a Byzantine payload generator.
type Attack interface {
	// Name identifies the attack in reports.
	Name() string
	// BeginRound inspects the round context and returns the crafter
	// used for every Byzantine-held file this round.
	BeginRound(ctx *Context) Crafter
}

// Scratch holds caller-owned buffers a Stateful attack reuses across
// rounds: moment-estimation vectors, a shared payload, and per-file
// payload buffers. One Scratch serves one engine (sharing it across
// engines would race); with it, the steady-state payload-crafting path
// allocates nothing after the first round.
type Scratch struct {
	mu, sigma, payload []float64
	fileBufs           map[int][]float64
}

// grow resizes *p to n, reusing capacity, and returns it.
func grow(p *[]float64, n int) []float64 {
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return *p
}

// FileBuf returns a persistent per-file buffer of length n. The
// Byzantine file set is static per run, so after the first round every
// file hits its cached buffer.
func (s *Scratch) FileBuf(file, n int) []float64 {
	if s.fileBufs == nil {
		s.fileBufs = make(map[int][]float64)
	}
	b := s.fileBufs[file]
	if cap(b) < n {
		b = make([]float64, n)
	}
	b = b[:n]
	s.fileBufs[file] = b
	return b
}

// Stateful is implemented by attacks whose per-round setup can reuse
// caller-owned scratch instead of allocating. The crafted vectors a
// scratch-backed Crafter returns are views into the Scratch (or the
// honest input) and stay valid only until the next BeginRoundScratch
// call; they must be bit-identical to what BeginRound would have
// produced, which is what TestScratchMatchesBeginRound pins.
type Stateful interface {
	Attack
	BeginRoundScratch(ctx *Context, s *Scratch) Crafter
}

// Begin dispatches to BeginRoundScratch when the attack supports it
// (and s is non-nil), falling back to the allocating BeginRound.
func Begin(a Attack, ctx *Context, s *Scratch) Crafter {
	if sa, ok := a.(Stateful); ok && s != nil {
		return sa.BeginRoundScratch(ctx, s)
	}
	return a.BeginRound(ctx)
}

// Benign is the no-attack control: Byzantine workers behave honestly.
type Benign struct{}

// Name implements Attack.
func (Benign) Name() string { return "benign" }

// BeginRound implements Attack.
func (Benign) BeginRound(*Context) Crafter {
	return func(_ int, honest []float64) []float64 {
		return linalg.CloneVec(honest)
	}
}

// Reversed is the reversed-gradient attack: Byzantines return −C·g
// instead of the true gradient g. The paper calls it the weakest of the
// three evaluated attacks.
type Reversed struct {
	// C is the (positive) magnitude multiplier; 0 means 1.
	C float64
}

// Name implements Attack.
func (r Reversed) Name() string { return "reversed-gradient" }

// BeginRound implements Attack.
func (r Reversed) BeginRound(*Context) Crafter {
	c := r.C
	if c == 0 {
		c = 1
	}
	return func(_ int, honest []float64) []float64 {
		return linalg.ScaleVec(honest, -c)
	}
}

// BeginRoundScratch implements Stateful: −C·g into a per-file buffer.
func (r Reversed) BeginRoundScratch(_ *Context, s *Scratch) Crafter {
	c := r.C
	if c == 0 {
		c = 1
	}
	return func(file int, honest []float64) []float64 {
		out := s.FileBuf(file, len(honest))
		for i, v := range honest {
			out[i] = -c * v
		}
		return out
	}
}

// Constant sends a constant matrix with all elements equal to Value
// (scaled by the file size so the payload has gradient-sum magnitude).
type Constant struct {
	// Value is the per-element constant; 0 means −1 (a fixed wrong
	// direction, following the DETOX evaluation).
	Value float64
	// ScaleByFileSize multiplies the payload by the average samples per
	// file so its norm matches gradient sums rather than means.
	ScaleByFileSize bool
}

// Name implements Attack.
func (c Constant) Name() string { return "constant" }

// BeginRound implements Attack.
func (c Constant) BeginRound(ctx *Context) Crafter {
	v := c.Value
	if v == 0 {
		v = -1
	}
	if c.ScaleByFileSize && ctx.FileSize > 0 {
		v *= ctx.FileSize
	}
	payload := make([]float64, ctx.Dim)
	for i := range payload {
		payload[i] = v
	}
	return func(int, []float64) []float64 {
		return linalg.CloneVec(payload)
	}
}

// BeginRoundScratch implements Stateful: all colluders share one
// scratch payload (bit-identical replicas are exactly the attack's
// optimum under majority voting, so sharing the buffer is safe).
func (c Constant) BeginRoundScratch(ctx *Context, s *Scratch) Crafter {
	v := c.Value
	if v == 0 {
		v = -1
	}
	if c.ScaleByFileSize && ctx.FileSize > 0 {
		v *= ctx.FileSize
	}
	payload := grow(&s.payload, ctx.Dim)
	for i := range payload {
		payload[i] = v
	}
	return func(int, []float64) []float64 {
		return payload
	}
}

// ALIE is "A Little Is Enough" (Baruch et al. 2019): the Byzantines
// estimate the per-coordinate mean µ and standard deviation σ of the
// honest operand population and send µ − z·σ, with z chosen as large as
// possible while remaining inside the range that defenders consider
// plausible. This shifts medians and defeats distance-based defenses
// without large norms — the paper calls it the most sophisticated
// centralized attack in the literature.
type ALIE struct {
	// ZOverride fixes z; when 0, z is derived from the population sizes
	// via the normal quantile as in the original attack.
	ZOverride float64
}

// Name implements Attack.
func (ALIE) Name() string { return "alie" }

// ZMax computes the original attack's z for n total operands of which m
// are Byzantine: s = ⌊n/2+1⌋ − m supporters needed from the honest side,
// z = Φ⁻¹((n−m−s)/(n−m)). The result is clamped to [0.3, 3.5] to keep
// the payload stealthy in degenerate regimes (m ≥ half, tiny n).
func ZMax(n, m int) float64 {
	if n <= m || n <= 0 {
		return 1
	}
	s := n/2 + 1 - m
	num := float64(n - m - s)
	den := float64(n - m)
	p := num / den
	z := 1.0
	if p > 0 && p < 1 {
		z = linalg.NormalQuantile(p)
	} else if p >= 1 {
		z = 3.5
	}
	if z < 0.3 {
		z = 0.3
	}
	if z > 3.5 {
		z = 3.5
	}
	return z
}

// BeginRound implements Attack.
func (a ALIE) BeginRound(ctx *Context) Crafter {
	mu := linalg.MeanVec(ctx.FileGradients)
	sigma := linalg.StdVec(ctx.FileGradients)
	z := a.ZOverride
	if z == 0 {
		z = ZMax(ctx.Participants, ctx.ExpectedCorrupted)
	}
	payload := make([]float64, len(mu))
	for i := range payload {
		payload[i] = mu[i] - z*sigma[i]
	}
	return func(int, []float64) []float64 {
		return linalg.CloneVec(payload)
	}
}

// BeginRoundScratch implements Stateful: the µ − z·σ moment estimation
// runs into the scratch's mean/deviation vectors and the shared
// payload, so the omniscient attack costs no allocation per round.
func (a ALIE) BeginRoundScratch(ctx *Context, s *Scratch) Crafter {
	mu := linalg.MeanVecInto(grow(&s.mu, ctx.Dim), ctx.FileGradients)
	sigma := linalg.StdVecInto(grow(&s.sigma, ctx.Dim), mu, ctx.FileGradients)
	z := a.ZOverride
	if z == 0 {
		z = ZMax(ctx.Participants, ctx.ExpectedCorrupted)
	}
	payload := grow(&s.payload, ctx.Dim)
	for i := range payload {
		payload[i] = mu[i] - z*sigma[i]
	}
	return func(int, []float64) []float64 {
		return payload
	}
}

// RandomGaussian sends N(0, Scale²) noise, refreshed per round but
// deterministic given the context rng. Used in ablations.
type RandomGaussian struct {
	// Scale is the per-coordinate standard deviation; 0 means 1.
	Scale float64
}

// Name implements Attack.
func (RandomGaussian) Name() string { return "random-gaussian" }

// BeginRound implements Attack.
func (g RandomGaussian) BeginRound(ctx *Context) Crafter {
	scale := g.Scale
	if scale == 0 {
		scale = 1
	}
	if ctx.Rng == nil {
		panic("attack: RandomGaussian requires Context.Rng")
	}
	payload := make([]float64, ctx.Dim)
	for i := range payload {
		payload[i] = ctx.Rng.NormFloat64() * scale
	}
	return func(int, []float64) []float64 {
		return linalg.CloneVec(payload)
	}
}

// BeginRoundScratch implements Stateful.
func (g RandomGaussian) BeginRoundScratch(ctx *Context, s *Scratch) Crafter {
	scale := g.Scale
	if scale == 0 {
		scale = 1
	}
	if ctx.Rng == nil {
		panic("attack: RandomGaussian requires Context.Rng")
	}
	payload := grow(&s.payload, ctx.Dim)
	for i := range payload {
		payload[i] = ctx.Rng.NormFloat64() * scale
	}
	return func(int, []float64) []float64 {
		return payload
	}
}

// SignFlip negates each coordinate's sign while preserving magnitude
// ordering: crafted = −|g| per coordinate... i.e. it returns −g like
// Reversed but clamps magnitude to the honest vector's norm; kept as a
// distinct named attack for the signSGD experiments.
type SignFlip struct{}

// Name implements Attack.
func (SignFlip) Name() string { return "sign-flip" }

// BeginRound implements Attack.
func (SignFlip) BeginRound(*Context) Crafter {
	return func(_ int, honest []float64) []float64 {
		out := make([]float64, len(honest))
		for i, v := range honest {
			out[i] = -v
		}
		return out
	}
}

// BeginRoundScratch implements Stateful.
func (SignFlip) BeginRoundScratch(_ *Context, s *Scratch) Crafter {
	return func(file int, honest []float64) []float64 {
		out := s.FileBuf(file, len(honest))
		for i, v := range honest {
			out[i] = -v
		}
		return out
	}
}
