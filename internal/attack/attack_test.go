package attack

import (
	"math"
	"math/rand"
	"testing"

	"byzshield/internal/linalg"
)

func testContext() *Context {
	grads := [][]float64{
		{1, 2}, {1.2, 1.8}, {0.8, 2.2}, {1.1, 2.1}, {0.9, 1.9},
	}
	return &Context{
		Round:             3,
		Dim:               2,
		FileGradients:     grads,
		CorruptibleFiles:  []int{1, 3},
		Participants:      5,
		ExpectedCorrupted: 1,
		FileSize:          30,
		Rng:               rand.New(rand.NewSource(1)),
	}
}

func TestBenignReturnsHonest(t *testing.T) {
	ctx := testContext()
	craft := Benign{}.BeginRound(ctx)
	honest := []float64{3, 4}
	out := craft(0, honest)
	if out[0] != 3 || out[1] != 4 {
		t.Errorf("benign altered gradient: %v", out)
	}
	out[0] = 99
	if honest[0] == 99 {
		t.Error("benign aliased the honest slice")
	}
}

func TestReversed(t *testing.T) {
	ctx := testContext()
	craft := Reversed{C: 2}.BeginRound(ctx)
	out := craft(0, []float64{1, -3})
	if out[0] != -2 || out[1] != 6 {
		t.Errorf("reversed = %v, want [-2 6]", out)
	}
	craftDefault := Reversed{}.BeginRound(ctx)
	out = craftDefault(0, []float64{1, -3})
	if out[0] != -1 || out[1] != 3 {
		t.Errorf("reversed default = %v, want [-1 3]", out)
	}
}

func TestConstant(t *testing.T) {
	ctx := testContext()
	craft := Constant{Value: 5}.BeginRound(ctx)
	out := craft(7, []float64{9, 9})
	if out[0] != 5 || out[1] != 5 {
		t.Errorf("constant = %v", out)
	}
	scaled := Constant{Value: 2, ScaleByFileSize: true}.BeginRound(ctx)
	out = scaled(7, nil)
	if out[0] != 60 {
		t.Errorf("scaled constant = %v, want 60", out)
	}
	def := Constant{}.BeginRound(ctx)
	if def(0, nil)[0] != -1 {
		t.Error("default constant should be -1")
	}
}

func TestALIEPayloadWithinPlausibleRange(t *testing.T) {
	ctx := testContext()
	craft := ALIE{}.BeginRound(ctx)
	out := craft(1, nil)
	mu := linalg.MeanVec(ctx.FileGradients)
	sigma := linalg.StdVec(ctx.FileGradients)
	for i := range out {
		dev := math.Abs(out[i] - mu[i])
		if dev > 3.5*sigma[i]+1e-12 {
			t.Errorf("coord %d deviates %v > 3.5σ=%v", i, dev, 3.5*sigma[i])
		}
		if dev < 0.29*sigma[i] {
			t.Errorf("coord %d deviates %v — attack is a no-op", i, dev)
		}
	}
	// Crafted payload is identical across files (collusion).
	out2 := craft(3, nil)
	for i := range out {
		if out[i] != out2[i] {
			t.Error("ALIE payload differs across files")
		}
	}
}

func TestALIEZOverride(t *testing.T) {
	ctx := testContext()
	craft := ALIE{ZOverride: 2}.BeginRound(ctx)
	out := craft(0, nil)
	mu := linalg.MeanVec(ctx.FileGradients)
	sigma := linalg.StdVec(ctx.FileGradients)
	for i := range out {
		want := mu[i] - 2*sigma[i]
		if math.Abs(out[i]-want) > 1e-12 {
			t.Errorf("coord %d = %v, want %v", i, out[i], want)
		}
	}
}

func TestZMaxProperties(t *testing.T) {
	// Larger Byzantine fraction (still sub-majority) → bigger z.
	z1 := ZMax(25, 3)
	z2 := ZMax(25, 9)
	if z2 < z1 {
		t.Errorf("z should grow with m: z(3)=%v z(9)=%v", z1, z2)
	}
	for _, m := range []int{0, 1, 5, 12, 13, 25, 30} {
		z := ZMax(25, m)
		if z < 0.3 || z > 3.5 {
			t.Errorf("ZMax(25,%d) = %v outside clamp", m, z)
		}
	}
	if z := ZMax(0, 0); z != 1 {
		t.Errorf("degenerate ZMax = %v", z)
	}
}

func TestRandomGaussianDeterministicPerSeed(t *testing.T) {
	ctx1 := testContext()
	out1 := RandomGaussian{Scale: 2}.BeginRound(ctx1)(0, nil)
	ctx2 := testContext()
	out2 := RandomGaussian{Scale: 2}.BeginRound(ctx2)(0, nil)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Error("same seed produced different payloads")
		}
	}
	var norm float64
	for _, v := range out1 {
		norm += v * v
	}
	if norm == 0 {
		t.Error("payload is zero")
	}
}

func TestRandomGaussianRequiresRng(t *testing.T) {
	ctx := testContext()
	ctx.Rng = nil
	defer func() {
		if recover() == nil {
			t.Fatal("nil rng did not panic")
		}
	}()
	RandomGaussian{}.BeginRound(ctx)
}

func TestSignFlip(t *testing.T) {
	craft := SignFlip{}.BeginRound(testContext())
	out := craft(0, []float64{2, -3, 0})
	if out[0] != -2 || out[1] != 3 || out[2] != 0 {
		t.Errorf("sign flip = %v", out)
	}
}

func TestAttackNamesStable(t *testing.T) {
	names := map[string]Attack{
		"benign": Benign{}, "alie": ALIE{}, "constant": Constant{},
		"reversed-gradient": Reversed{}, "random-gaussian": RandomGaussian{},
		"sign-flip": SignFlip{},
	}
	for want, a := range names {
		if a.Name() != want {
			t.Errorf("%T.Name() = %q, want %q", a, a.Name(), want)
		}
	}
}

// TestScratchMatchesBeginRound: for every Stateful attack, the
// scratch-backed crafter must produce payloads bit-identical to the
// allocating BeginRound path across rounds — reusing buffers must
// never change a trajectory.
func TestScratchMatchesBeginRound(t *testing.T) {
	attacks := []Attack{
		Reversed{C: 2},
		Constant{Value: -3, ScaleByFileSize: true},
		ALIE{},
		RandomGaussian{Scale: 0.5},
		SignFlip{},
	}
	for _, a := range attacks {
		sa, ok := a.(Stateful)
		if !ok {
			t.Errorf("%s does not implement Stateful", a.Name())
			continue
		}
		var s Scratch
		for round := 0; round < 3; round++ {
			ctxA := testContext()
			ctxB := testContext()
			ctxA.Round, ctxB.Round = round, round
			// Context rngs are fresh per round with identical seeds, so
			// both paths draw the same stream.
			craftA := a.BeginRound(ctxA)
			craftB := sa.BeginRoundScratch(ctxB, &s)
			for _, file := range ctxA.CorruptibleFiles {
				honest := ctxA.FileGradients[file]
				pa := craftA(file, honest)
				pb := craftB(file, honest)
				if len(pa) != len(pb) {
					t.Fatalf("%s round %d file %d: lengths %d vs %d", a.Name(), round, file, len(pa), len(pb))
				}
				for i := range pa {
					if math.Float64bits(pa[i]) != math.Float64bits(pb[i]) {
						t.Fatalf("%s round %d file %d coord %d: %x vs %x",
							a.Name(), round, file, i, math.Float64bits(pa[i]), math.Float64bits(pb[i]))
					}
				}
			}
		}
	}
}

// TestScratchAllocationFree: after a warm-up round, the scratch-backed
// ALIE round setup and payload crafting allocate nothing.
func TestScratchAllocationFree(t *testing.T) {
	var s Scratch
	ctx := testContext()
	craft := ALIE{}.BeginRoundScratch(ctx, &s)
	craft(1, ctx.FileGradients[1])
	allocs := testing.AllocsPerRun(50, func() {
		craft := ALIE{}.BeginRoundScratch(ctx, &s)
		for _, file := range ctx.CorruptibleFiles {
			craft(file, ctx.FileGradients[file])
		}
	})
	// The closure itself may cost an allocation; the moment estimation
	// and payloads must not.
	if allocs > 1 {
		t.Errorf("scratch-backed ALIE round allocates %.1f times", allocs)
	}
}
