package distort

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"byzshield/internal/assign"
)

func frcAnalyzer(t testing.TB, k, r int) *Analyzer {
	t.Helper()
	a, err := assign.FRC(k, r)
	if err != nil {
		t.Fatal(err)
	}
	return NewAnalyzer(a)
}

func TestFRCExpectedDistortionMatchesMonteCarlo(t *testing.T) {
	// K = 25, r = 5, q = 9 — the regime where the omniscient attack
	// breaks DETOX (ε̂ = 0.6) but random placement rarely does.
	an := frcAnalyzer(t, 25, 5)
	exact, err := FRCExpectedDistortion(25, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	mean, minF, maxF, err := an.ExpectedDistortion(9, 20000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-exact) > 0.01 {
		t.Errorf("Monte Carlo mean %.4f vs exact %.4f", mean, exact)
	}
	if minF > mean || maxF < mean {
		t.Errorf("min %.3f / mean %.3f / max %.3f inconsistent", minF, mean, maxF)
	}
}

// TestRandomVsWorstCaseGap reproduces the paper's central argument
// (Sec. 1.2): DETOX's expected distortion under a random adversary is
// small, but the omniscient worst case is catastrophic.
func TestRandomVsWorstCaseGap(t *testing.T) {
	const k, r, q = 25, 5, 9
	expected, err := FRCExpectedDistortion(k, r, q)
	if err != nil {
		t.Fatal(err)
	}
	an := frcAnalyzer(t, k, r)
	worst := an.MaxDistorted(context.Background(), q)
	if !worst.Exact {
		t.Fatal("worst-case search did not complete")
	}
	// Worst case: 3 groups stolen = 0.6 (Table 4's ε̂_FRC column).
	if math.Abs(worst.Epsilon-0.6) > 1e-9 {
		t.Errorf("worst-case ε̂ = %v, want 0.6", worst.Epsilon)
	}
	// Random adversary: well under half the worst case.
	if expected > worst.Epsilon/2 {
		t.Errorf("expected ε̂ %.4f not far below worst case %.4f — the paper's gap argument fails",
			expected, worst.Epsilon)
	}
}

// TestByzShieldWorstCloseToRandom shows the flip side: ByzShield's
// expander placement leaves the omniscient adversary little advantage
// over a random one at small q.
func TestByzShieldWorstCloseToRandom(t *testing.T) {
	an := molsAnalyzer(t, 5, 3)
	mean, _, maxSampled, err := an.ExpectedDistortion(3, 20000, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	worst := an.MaxDistorted(context.Background(), 3)
	// Worst case 3/25 = 0.12; sampled max must find it (small space),
	// and the mean should be within ~4x of the worst case — no
	// catastrophic packing exists to find.
	if math.Abs(maxSampled-worst.Epsilon) > 1e-9 {
		t.Errorf("sampled max %.4f should reach worst case %.4f on this small space", maxSampled, worst.Epsilon)
	}
	if worst.Epsilon > 4*mean+1e-9 {
		t.Errorf("MOLS worst case %.4f far above mean %.4f — unexpected fragility", worst.Epsilon, mean)
	}
}

func TestFRCExpectedDistortionClosedFormValues(t *testing.T) {
	// r = 3, K = 15, q = 2: a group is stolen iff both byzantines share
	// a group: P = (K/r)·C(3,2)·C(12,1)/C(15,3)... via symmetry:
	// P(group stolen) = [C(2,2)·C(13,1) + 0] terms — compute directly:
	// P(X>=2), X ~ Hyper(15, 2, 3): P(X=2) = C(2,2)C(13,1)/C(15,3) = 13/455.
	got, err := FRCExpectedDistortion(15, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 13.0 / 455
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("E[ε̂] = %v, want %v", got, want)
	}
	// q = 0: zero.
	z, err := FRCExpectedDistortion(15, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if z != 0 {
		t.Errorf("E[ε̂] at q=0 = %v", z)
	}
	// q = K: every group fully byzantine → 1.
	full, err := FRCExpectedDistortion(15, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-1) > 1e-12 {
		t.Errorf("E[ε̂] at q=K = %v, want 1", full)
	}
}

func TestFRCExpectedDistortionErrors(t *testing.T) {
	if _, err := FRCExpectedDistortion(10, 3, 2); err == nil {
		t.Error("r∤K accepted")
	}
	if _, err := FRCExpectedDistortion(15, 3, -1); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := FRCExpectedDistortion(15, 3, 16); err == nil {
		t.Error("q > K accepted")
	}
}

func TestExpectedDistortionErrors(t *testing.T) {
	an := molsAnalyzer(t, 5, 3)
	if _, _, _, err := an.ExpectedDistortion(-1, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative q accepted")
	}
	if _, _, _, err := an.ExpectedDistortion(2, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero samples accepted")
	}
	if _, _, _, err := an.ExpectedDistortion(2, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestLogChoose(t *testing.T) {
	if v := math.Exp(logChoose(5, 2)); math.Abs(v-10) > 1e-9 {
		t.Errorf("C(5,2) = %v", v)
	}
	if !math.IsInf(logChoose(3, 5), -1) || !math.IsInf(logChoose(3, -1), -1) {
		t.Error("invalid combinations should be -Inf")
	}
}
