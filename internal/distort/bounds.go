// Package distort performs the worst-case distortion-fraction analysis
// of Sec. 5 of the paper: exact maximum numbers of corruptible files
// c_max(q) found by exhaustive (branch-and-bound) search over Byzantine
// worker sets, the spectral upper bound γ of Claim 1, the closed-form
// ε̂ expressions for the MOLS/Ramanujan/FRC/baseline schemes, and the
// exact small-q values of Claim 2. These quantities generate Tables 3–6
// and drive the omniscient adversary used in the training experiments.
package distort

import (
	"math"
)

// MajorityThreshold returns r' = ⌊r/2⌋ + 1, the minimum number of
// Byzantine copies needed to flip a majority vote over r replicas. For
// odd r this is the paper's r' = (r+1)/2.
func MajorityThreshold(r int) int { return r/2 + 1 }

// Gamma returns the Claim 1 upper bound on c_max(q):
//
//	γ = (q·l − β) / (r' − 1),
//
// where β is the expansion lower bound of Eq. (5). The paper states it
// for odd r as (q·l − β)/((r−1)/2); we use the r' form which coincides
// for odd r. Returns +Inf when r' == 1 (no redundancy: any Byzantine
// copy distorts its file).
func Gamma(q, l, r, k int, mu1 float64) float64 {
	rp := MajorityThreshold(r)
	if rp <= 1 {
		return math.Inf(1)
	}
	beta := expansionLowerBound(q, l, r, k, mu1)
	return (float64(q*l) - beta) / float64(rp-1)
}

// expansionLowerBound mirrors graph.ExpansionLowerBound; duplicated here
// in scalar form to keep this package free of the graph dependency for
// closed-form-only callers.
func expansionLowerBound(q, l, r, k int, mu1 float64) float64 {
	if q <= 0 {
		return 0
	}
	num := float64(q*l) / float64(r)
	den := mu1 + (1-mu1)*float64(q)/float64(k)
	return num / den
}

// EpsilonMOLSBound returns the Sec. 5.1.1 closed-form upper bound on the
// distortion fraction of the MOLS scheme (also valid for Ramanujan Case 1,
// which has the same spectrum):
//
//	ε̂ ≤ (2q²/(r·l²)) / (1 + (r−1)·q/(r·l)).
//
// Derived from γ/f with µ1 = 1/r, K = r·l, f = l².
func EpsilonMOLSBound(q, l, r int) float64 {
	num := 2 * float64(q*q) / float64(r*l*l)
	den := 1 + float64(r-1)*float64(q)/float64(r*l)
	return num / den
}

// EpsilonRam2Bound returns the Sec. 5.1.2 closed-form bound for the
// Ramanujan Case 2 scheme (K = r², f = r·l, µ1 = 1/r):
//
//	ε̂ ≤ (2q²/r²) / (r + (r−1)·q/r).
func EpsilonRam2Bound(q, l, r int) float64 {
	num := 2 * float64(q*q) / float64(r*r)
	den := float64(r) + float64(r-1)*float64(q)/float64(r)
	return num / den
}

// EpsilonFRC returns the worst-case distortion fraction of the
// FRC/DETOX grouping under an omniscient adversary (Sec. 5.3.1):
//
//	ε̂ = ⌊q/r'⌋ · r / K.
//
// The adversary packs r' Byzantines per clone group, distorting the
// whole group's vote; ⌊q/r'⌋ groups are lost.
func EpsilonFRC(q, r, k int) float64 {
	rp := MajorityThreshold(r)
	groupsLost := q / rp
	if max := k / r; groupsLost > max {
		groupsLost = max
	}
	return float64(groupsLost) * float64(r) / float64(k)
}

// EpsilonBaseline returns the baseline (no redundancy) distortion
// fraction ε̂ = q/K: every Byzantine worker distorts its own gradient.
func EpsilonBaseline(q, k int) float64 {
	return float64(q) / float64(k)
}

// Claim2Exact returns the exact maximum distortion fraction for the
// ByzShield constructions in the small-q regime q ≤ r (Claim 2), as a
// count of distorted files out of f. ok is false outside the regime.
//
//	r = 3:  q<2 → 0,  q=2 → 1,  q=3 → 3.
//	r > 3:  q<r' → 0, r'≤q<r → 1, q=r → 2.
func Claim2Exact(q, r int) (cmax int, ok bool) {
	if q < 0 || q > r {
		return 0, false
	}
	rp := MajorityThreshold(r)
	if r == 3 {
		switch {
		case q < 2:
			return 0, true
		case q == 2:
			return 1, true
		default: // q == 3
			return 3, true
		}
	}
	if r > 3 {
		switch {
		case q < rp:
			return 0, true
		case q < r:
			return 1, true
		default: // q == r
			return 2, true
		}
	}
	// r <= 2 has no meaningful majority redundancy; only q < r' → 0.
	if q < rp {
		return 0, true
	}
	return 0, false
}
