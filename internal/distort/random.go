package distort

import (
	"fmt"
	"math"
	"math/rand"
)

// This file quantifies the gap the paper's Sec. 1.2 / 5.3.1 argument
// rests on: DETOX/DRACO's resilience guarantees assume the q Byzantines
// are chosen *at random*, in which case few clone groups are stolen in
// expectation — but an omniscient adversary packs groups deliberately.
// ExpectedDistortion estimates E[ε̂] under a uniformly random Byzantine
// set (Monte Carlo over the actual assignment); FRCExpectedDistortion
// computes the same quantity for the FRC grouping in closed form via the
// hypergeometric distribution. Comparing either against the worst-case
// search output (MaxDistorted) reproduces the paper's point: the
// expected fraction is small, the adversarial one is not.

// ExpectedDistortion estimates the mean, min, and max distortion
// fraction over `samples` uniformly random Byzantine sets of size q.
// The rng must be non-nil for determinism control.
func (an *Analyzer) ExpectedDistortion(q, samples int, rng *rand.Rand) (mean, minFrac, maxFrac float64, err error) {
	k := an.asn.K
	if q < 0 || q > k {
		return 0, 0, 0, fmt.Errorf("distort: q=%d out of range [0,%d]", q, k)
	}
	if samples < 1 {
		return 0, 0, 0, fmt.Errorf("distort: samples=%d < 1", samples)
	}
	if rng == nil {
		return 0, 0, 0, fmt.Errorf("distort: nil rng")
	}
	f := float64(an.asn.F)
	minFrac = math.Inf(1)
	var sum float64
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	for s := 0; s < samples; s++ {
		rng.Shuffle(k, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		frac := float64(an.DistortedCount(perm[:q])) / f
		sum += frac
		if frac < minFrac {
			minFrac = frac
		}
		if frac > maxFrac {
			maxFrac = frac
		}
	}
	return sum / float64(samples), minFrac, maxFrac, nil
}

// FRCExpectedDistortion returns the exact expected distortion fraction
// of the FRC grouping (K/r groups of r clones) under a uniformly random
// Byzantine set of size q: each group is stolen when at least
// r' = ⌊r/2⌋+1 of its r members are Byzantine, which follows the
// hypergeometric distribution H(K, q, r). By symmetry and linearity,
//
//	E[ε̂] = P(group stolen) = Σ_{i=r'}^{r} C(q,i)·C(K−q, r−i) / C(K,r).
func FRCExpectedDistortion(k, r, q int) (float64, error) {
	if r < 1 || k < 1 || k%r != 0 {
		return 0, fmt.Errorf("distort: FRC needs r | K with r,K >= 1, got K=%d r=%d", k, r)
	}
	if q < 0 || q > k {
		return 0, fmt.Errorf("distort: q=%d out of range [0,%d]", q, k)
	}
	rp := MajorityThreshold(r)
	var p float64
	for i := rp; i <= r && i <= q; i++ {
		if r-i > k-q {
			continue
		}
		p += hypergeomPMF(k, q, r, i)
	}
	return p, nil
}

// hypergeomPMF returns P(X = i) for X ~ Hypergeometric(K, q, r):
// drawing r group members from K workers of which q are Byzantine.
func hypergeomPMF(k, q, r, i int) float64 {
	return math.Exp(logChoose(q, i) + logChoose(k-q, r-i) - logChoose(k, r))
}

// logChoose returns log C(n, k) via log-gamma, with -Inf for invalid
// combinations.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
