package distort

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"byzshield/internal/assign"
)

func molsAnalyzer(t testing.TB, l, r int) *Analyzer {
	t.Helper()
	a, err := assign.MOLS(l, r)
	if err != nil {
		t.Fatal(err)
	}
	return NewAnalyzer(a)
}

func ram2Analyzer(t testing.TB, s, m int) *Analyzer {
	t.Helper()
	a, err := assign.Ramanujan2(s, m)
	if err != nil {
		t.Fatal(err)
	}
	return NewAnalyzer(a)
}

func TestMajorityThreshold(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 7: 4, 9: 5}
	for r, want := range cases {
		if got := MajorityThreshold(r); got != want {
			t.Errorf("MajorityThreshold(%d) = %d, want %d", r, got, want)
		}
	}
}

// TestPaperTable3 reproduces the c_max and ε̂ columns of Table 3:
// MOLS-based assignment with (K, f, l, r) = (15, 25, 5, 3).
func TestPaperTable3(t *testing.T) {
	an := molsAnalyzer(t, 5, 3)
	want := map[int]int{2: 1, 3: 3, 4: 5, 5: 8, 6: 12, 7: 14}
	for q := 2; q <= 7; q++ {
		res := an.MaxDistorted(context.Background(), q)
		if !res.Exact {
			t.Fatalf("q=%d: search not exact", q)
		}
		if res.CMax != want[q] {
			t.Errorf("q=%d: c_max = %d, want %d", q, res.CMax, want[q])
		}
		if got := an.DistortedCount(res.Byzantines); got != res.CMax {
			t.Errorf("q=%d: witness set distorts %d != %d", q, got, res.CMax)
		}
	}
}

// TestPaperTable3Gamma reproduces the γ column of Table 3 from Claim 1
// with µ1 = 1/r.
func TestPaperTable3Gamma(t *testing.T) {
	wantGamma := map[int]float64{2: 2.11, 3: 4.29, 4: 6.96, 5: 10, 6: 13.33, 7: 16.9}
	for q, want := range wantGamma {
		got := Gamma(q, 5, 3, 15, 1.0/3)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("q=%d: γ = %.3f, want %.2f", q, got, want)
		}
	}
}

// TestPaperTable4 reproduces Table 4: Ramanujan Case 2 with
// (m, s) = (5, 5), i.e. (K, f, l, r) = (25, 25, 5, 5).
func TestPaperTable4(t *testing.T) {
	an := ram2Analyzer(t, 5, 5)
	want := map[int]int{3: 1, 4: 1, 5: 2, 6: 4, 7: 5, 8: 7, 9: 9, 10: 12, 11: 14, 12: 17}
	maxQ := 9
	if !testing.Short() {
		maxQ = 12
	}
	for q := 3; q <= maxQ; q++ {
		res := an.MaxDistorted(context.Background(), q)
		if !res.Exact {
			t.Fatalf("q=%d: search not exact", q)
		}
		if res.CMax != want[q] {
			t.Errorf("q=%d: c_max = %d, want %d", q, res.CMax, want[q])
		}
	}
}

// TestPaperTable4Gamma reproduces the γ column of Table 4.
func TestPaperTable4Gamma(t *testing.T) {
	wantGamma := map[int]float64{3: 2.43, 4: 3.9, 5: 5.56, 6: 7.35, 7: 9.25,
		8: 11.23, 9: 13.28, 10: 15.38, 11: 17.54, 12: 19.73}
	for q, want := range wantGamma {
		got := Gamma(q, 5, 5, 25, 1.0/5)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("q=%d: γ = %.3f, want %.2f", q, got, want)
		}
	}
}

// TestPaperTable6 reproduces Table 6: MOLS with
// (K, f, l, r) = (21, 49, 7, 3).
func TestPaperTable6(t *testing.T) {
	an := molsAnalyzer(t, 7, 3)
	want := map[int]int{2: 1, 3: 3, 4: 5, 5: 8, 6: 12, 7: 16, 8: 21, 9: 25, 10: 29}
	maxQ := 7
	if !testing.Short() {
		maxQ = 10
	}
	for q := 2; q <= maxQ; q++ {
		res := an.MaxDistorted(context.Background(), q)
		if !res.Exact {
			t.Fatalf("q=%d: search not exact", q)
		}
		if res.CMax != want[q] {
			t.Errorf("q=%d: c_max = %d, want %d", q, res.CMax, want[q])
		}
	}
}

// TestPaperTable5SmallQ reproduces the tractable prefix of Table 5:
// MOLS with (K, f, l, r) = (35, 49, 7, 5). The paper itself stops at
// q = 13 because the search scales exponentially; we verify the small-q
// entries in unit tests and leave the rest to cmd/byzsim.
func TestPaperTable5SmallQ(t *testing.T) {
	an := molsAnalyzer(t, 7, 5)
	want := map[int]int{3: 1, 4: 1, 5: 2, 6: 4, 7: 5}
	maxQ := 6
	if !testing.Short() {
		maxQ = 7
	}
	for q := 3; q <= maxQ; q++ {
		res := an.MaxDistorted(context.Background(), q)
		if !res.Exact {
			t.Fatalf("q=%d: search not exact", q)
		}
		if res.CMax != want[q] {
			t.Errorf("q=%d: c_max = %d, want %d", q, res.CMax, want[q])
		}
	}
}

// TestClaim2MatchesSearch verifies the Claim 2 closed forms against
// exhaustive search in the q <= r regime for several constructions.
func TestClaim2MatchesSearch(t *testing.T) {
	analyzers := []*Analyzer{
		molsAnalyzer(t, 5, 3),
		molsAnalyzer(t, 7, 3),
		molsAnalyzer(t, 7, 5),
		ram2Analyzer(t, 5, 5),
	}
	for _, an := range analyzers {
		r := an.Assignment().R
		for q := 0; q <= r; q++ {
			want, ok := Claim2Exact(q, r)
			if !ok {
				t.Fatalf("Claim2Exact(%d,%d) not applicable", q, r)
			}
			res := an.MaxDistorted(context.Background(), q)
			if res.CMax != want {
				t.Errorf("%v q=%d: search c_max=%d, Claim 2 says %d", an.Assignment(), q, res.CMax, want)
			}
		}
	}
}

// TestGammaIsUpperBound: γ must dominate the exact c_max everywhere —
// the paper's "γ is a very accurate worst-case approximation" claim.
func TestGammaIsUpperBound(t *testing.T) {
	an := molsAnalyzer(t, 5, 3)
	a := an.Assignment()
	for q := 1; q <= 7; q++ {
		res := an.MaxDistorted(context.Background(), q)
		gamma := Gamma(q, a.L, a.R, a.K, 1/float64(a.R))
		if float64(res.CMax) > gamma+1e-9 {
			t.Errorf("q=%d: c_max %d exceeds γ %.3f", q, res.CMax, gamma)
		}
	}
}

// TestEpsilonClosedForms checks the ε̂ bound formulas against γ/f.
func TestEpsilonClosedForms(t *testing.T) {
	for q := 1; q <= 7; q++ {
		gammaOverF := Gamma(q, 5, 3, 15, 1.0/3) / 25
		closed := EpsilonMOLSBound(q, 5, 3)
		if math.Abs(gammaOverF-closed) > 1e-12 {
			t.Errorf("MOLS q=%d: γ/f=%v, closed form=%v", q, gammaOverF, closed)
		}
	}
	for q := 1; q <= 12; q++ {
		gammaOverF := Gamma(q, 5, 5, 25, 1.0/5) / 25
		closed := EpsilonRam2Bound(q, 5, 5)
		if math.Abs(gammaOverF-closed) > 1e-12 {
			t.Errorf("Ram2 q=%d: γ/f=%v, closed form=%v", q, gammaOverF, closed)
		}
	}
}

// TestEpsilonFRCTableColumns reproduces the ε̂_FRC columns of Tables 3,
// 4 and 6.
func TestEpsilonFRCTableColumns(t *testing.T) {
	table3 := map[int]float64{2: 0.2, 3: 0.2, 4: 0.4, 5: 0.4, 6: 0.6, 7: 0.6}
	for q, want := range table3 {
		if got := EpsilonFRC(q, 3, 15); math.Abs(got-want) > 1e-9 {
			t.Errorf("Table3 FRC q=%d: %v, want %v", q, got, want)
		}
	}
	table4 := map[int]float64{3: 0.2, 4: 0.2, 5: 0.2, 6: 0.4, 7: 0.4, 8: 0.4,
		9: 0.6, 10: 0.6, 11: 0.6, 12: 0.8}
	for q, want := range table4 {
		if got := EpsilonFRC(q, 5, 25); math.Abs(got-want) > 1e-9 {
			t.Errorf("Table4 FRC q=%d: %v, want %v", q, got, want)
		}
	}
	// Table 6: K=21, r=3 → ⌊q/2⌋·3/21.
	table6 := map[int]float64{2: 1.0 / 7, 3: 1.0 / 7, 4: 2.0 / 7, 5: 2.0 / 7, 10: 5.0 / 7}
	for q, want := range table6 {
		if got := EpsilonFRC(q, 3, 21); math.Abs(got-want) > 1e-9 {
			t.Errorf("Table6 FRC q=%d: %v, want %v", q, got, want)
		}
	}
}

func TestEpsilonFRCSaturates(t *testing.T) {
	// With q = K, all groups are lost but the fraction caps at 1.
	if got := EpsilonFRC(15, 3, 15); got != 1 {
		t.Errorf("EpsilonFRC(15,3,15) = %v, want 1", got)
	}
}

func TestEpsilonBaseline(t *testing.T) {
	if EpsilonBaseline(3, 25) != 0.12 {
		t.Errorf("baseline ε̂(3/25) = %v", EpsilonBaseline(3, 25))
	}
	if EpsilonBaseline(5, 25) != 0.2 {
		t.Errorf("baseline ε̂(5/25) = %v", EpsilonBaseline(5, 25))
	}
}

func TestClaim2OutsideRegime(t *testing.T) {
	if _, ok := Claim2Exact(4, 3); ok {
		t.Error("q > r accepted")
	}
	if _, ok := Claim2Exact(-1, 3); ok {
		t.Error("q < 0 accepted")
	}
}

// TestGreedyIsLowerBound: the greedy heuristic never exceeds the exact
// optimum, and matches it on the small instances where the adversary's
// structure is simple.
func TestGreedyIsLowerBound(t *testing.T) {
	an := molsAnalyzer(t, 5, 3)
	for q := 1; q <= 7; q++ {
		greedy := an.MaxDistortedGreedy(q)
		exact := an.MaxDistorted(context.Background(), q)
		if greedy.CMax > exact.CMax {
			t.Errorf("q=%d: greedy %d > exact %d", q, greedy.CMax, exact.CMax)
		}
		if got := an.DistortedCount(greedy.Byzantines); got != greedy.CMax {
			t.Errorf("q=%d: greedy witness inconsistent", q)
		}
	}
}

func TestDistortedFilesConsistent(t *testing.T) {
	an := molsAnalyzer(t, 5, 3)
	res := an.MaxDistorted(context.Background(), 5)
	files := an.DistortedFiles(res.Byzantines)
	if len(files) != res.CMax {
		t.Errorf("DistortedFiles returned %d files, c_max = %d", len(files), res.CMax)
	}
	for _, v := range files {
		byzCopies := 0
		byz := make(map[int]bool)
		for _, u := range res.Byzantines {
			byz[u] = true
		}
		for _, u := range an.Assignment().FileWorkers(v) {
			if byz[u] {
				byzCopies++
			}
		}
		if byzCopies < MajorityThreshold(an.Assignment().R) {
			t.Errorf("file %d reported distorted with only %d Byzantine copies", v, byzCopies)
		}
	}
}

func TestCancelledSearchReturnsIncumbent(t *testing.T) {
	an := molsAnalyzer(t, 7, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel up front: search must return greedy incumbent
	res := an.MaxDistorted(ctx, 6)
	if res.Exact {
		t.Error("cancelled search claimed exactness")
	}
	if res.CMax < 1 {
		t.Error("cancelled search lost the greedy incumbent")
	}
}

func TestMaxDistortedZeroQ(t *testing.T) {
	an := molsAnalyzer(t, 5, 3)
	res := an.MaxDistorted(context.Background(), 0)
	if res.CMax != 0 || !res.Exact {
		t.Errorf("q=0: %+v", res)
	}
}

// Property: distortion is monotone in q — adding Byzantines never
// reduces the number of distortable files.
func TestQuickMonotoneInQ(t *testing.T) {
	an := molsAnalyzer(t, 5, 3)
	results := make([]int, 8)
	for q := 0; q <= 7; q++ {
		results[q] = an.MaxDistorted(context.Background(), q).CMax
	}
	for q := 1; q <= 7; q++ {
		if results[q] < results[q-1] {
			t.Errorf("c_max(%d)=%d < c_max(%d)=%d", q, results[q], q-1, results[q-1])
		}
	}
}

// Property: DistortedCount of a random subset never exceeds c_max(|S|).
func TestQuickSubsetNeverBeatsOptimum(t *testing.T) {
	an := molsAnalyzer(t, 5, 3)
	exact := make(map[int]int)
	for q := 0; q <= 6; q++ {
		exact[q] = an.MaxDistorted(context.Background(), q).CMax
	}
	prop := func(mask uint16) bool {
		var byz []int
		for u := 0; u < 15 && len(byz) < 6; u++ {
			if mask&(1<<u) != 0 {
				byz = append(byz, u)
			}
		}
		return an.DistortedCount(byz) <= exact[len(byz)]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkExhaustiveTable3Q5(b *testing.B) {
	an := molsAnalyzer(b, 5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = an.MaxDistorted(context.Background(), 5)
	}
}

func BenchmarkGreedyQ5(b *testing.B) {
	an := molsAnalyzer(b, 5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = an.MaxDistortedGreedy(5)
	}
}
