package distort

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"byzshield/internal/assign"
)

// Analyzer computes exact worst-case distortion quantities for a
// concrete assignment. It is safe for concurrent use after construction.
type Analyzer struct {
	asn         *assign.Assignment
	workerFiles [][]int32 // workerFiles[u] = files of worker u
	rPrime      int
}

// NewAnalyzer builds an Analyzer for the assignment.
func NewAnalyzer(a *assign.Assignment) *Analyzer {
	wf := make([][]int32, a.K)
	for u := 0; u < a.K; u++ {
		files := a.WorkerFiles(u)
		row := make([]int32, len(files))
		for i, v := range files {
			row[i] = int32(v)
		}
		wf[u] = row
	}
	return &Analyzer{asn: a, workerFiles: wf, rPrime: MajorityThreshold(a.R)}
}

// Assignment returns the analyzed assignment.
func (an *Analyzer) Assignment() *assign.Assignment { return an.asn }

// DistortedCount returns the number of files whose majority vote is
// flipped when exactly the workers in byz are Byzantine: files with at
// least r' Byzantine replicas.
func (an *Analyzer) DistortedCount(byz []int) int {
	counts := make([]int16, an.asn.F)
	distorted := 0
	for _, u := range byz {
		for _, v := range an.workerFiles[u] {
			counts[v]++
			if int(counts[v]) == an.rPrime {
				distorted++
			}
		}
	}
	return distorted
}

// DistortedFiles returns the sorted list of files whose majority is
// flipped by the Byzantine set byz.
func (an *Analyzer) DistortedFiles(byz []int) []int {
	counts := make([]int16, an.asn.F)
	for _, u := range byz {
		for _, v := range an.workerFiles[u] {
			counts[v]++
		}
	}
	var out []int
	for v, c := range counts {
		if int(c) >= an.rPrime {
			out = append(out, v)
		}
	}
	return out
}

// SearchResult reports the outcome of a worst-case search.
type SearchResult struct {
	Q          int     // number of Byzantine workers
	CMax       int     // maximum number of distorted files found
	Epsilon    float64 // CMax / f
	Byzantines []int   // a maximizing Byzantine set (sorted)
	Nodes      int64   // search-tree nodes visited (exhaustive search only)
	Exact      bool    // true when the search proved optimality
}

// MaxDistortedGreedy finds a strong Byzantine set by greedy ascent:
// repeatedly add the worker that maximizes newly distorted files, with
// total coverage progress toward r' as tiebreak. Runs in O(q·K·l). The
// result is a lower bound on c_max(q) — used directly for large
// instances and as the initial incumbent for branch-and-bound.
func (an *Analyzer) MaxDistortedGreedy(q int) SearchResult {
	k := an.asn.K
	if q < 0 || q > k {
		panic(fmt.Sprintf("distort: q=%d out of range [0,%d]", q, k))
	}
	counts := make([]int16, an.asn.F)
	chosen := make([]bool, k)
	var byz []int
	distorted := 0
	for pick := 0; pick < q; pick++ {
		bestU, bestNew, bestProg := -1, -1, -1
		for u := 0; u < k; u++ {
			if chosen[u] {
				continue
			}
			newDist, prog := 0, 0
			for _, v := range an.workerFiles[u] {
				c := int(counts[v])
				if c+1 == an.rPrime {
					newDist++
				}
				if c < an.rPrime {
					prog++
				}
			}
			if newDist > bestNew || (newDist == bestNew && prog > bestProg) {
				bestU, bestNew, bestProg = u, newDist, prog
			}
		}
		chosen[bestU] = true
		byz = append(byz, bestU)
		for _, v := range an.workerFiles[bestU] {
			counts[v]++
			if int(counts[v]) == an.rPrime {
				distorted++
			}
		}
	}
	sort.Ints(byz)
	return SearchResult{
		Q: q, CMax: distorted, Epsilon: float64(distorted) / float64(an.asn.F),
		Byzantines: byz, Exact: false,
	}
}

// MaxDistorted computes the exact c_max(q) — the maximum number of files
// an omniscient adversary controlling q workers can distort — by
// parallel branch-and-bound over all C(K, q) worker subsets. The greedy
// solution seeds the incumbent; an admissible bound based on the
// cheapest remaining file completions prunes the tree. ctx cancels the
// search (the best incumbent found so far is returned with Exact=false).
func (an *Analyzer) MaxDistorted(ctx context.Context, q int) SearchResult {
	k := an.asn.K
	if q < 0 || q > k {
		panic(fmt.Sprintf("distort: q=%d out of range [0,%d]", q, k))
	}
	if q == 0 {
		return SearchResult{Q: 0, CMax: 0, Epsilon: 0, Exact: true}
	}
	// Upper bound on any solution: all files distorted.
	seed := an.MaxDistortedGreedy(q)

	shared := &sharedBest{best: seed.CMax, bestSet: append([]int(nil), seed.Byzantines...)}

	// Parallelize over the first chosen worker. Each task owns an
	// independent DFS state.
	numWorkers := runtime.GOMAXPROCS(0)
	if numWorkers > k {
		numWorkers = k
	}
	tasks := make(chan int, k)
	for first := 0; first <= k-q; first++ {
		tasks <- first
	}
	close(tasks)

	var wg sync.WaitGroup
	var nodes int64
	var nodesMu sync.Mutex

	for w := 0; w < numWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := an.newDFSState(q)
			defer func() {
				nodesMu.Lock()
				nodes += st.nodes
				nodesMu.Unlock()
			}()
			for first := range tasks {
				if ctx.Err() != nil {
					return
				}
				st.push(first)
				an.dfs(ctx, st, first+1, q-1, shared)
				st.pop()
			}
		}()
	}
	wg.Wait()

	best, bestSet := shared.snapshot()
	return SearchResult{
		Q: q, CMax: best, Epsilon: float64(best) / float64(an.asn.F),
		Byzantines: bestSet, Nodes: nodes, Exact: ctx.Err() == nil,
	}
}

// sharedBest is the cross-goroutine incumbent.
type sharedBest struct {
	mu      sync.Mutex
	best    int
	bestSet []int
}

func (s *sharedBest) read() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.best
}

func (s *sharedBest) offer(v int, set []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v > s.best {
		s.best = v
		s.bestSet = append(s.bestSet[:0], set...)
		sort.Ints(s.bestSet)
	}
}

func (s *sharedBest) snapshot() (int, []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.best, append([]int(nil), s.bestSet...)
}

// dfsState is the per-goroutine mutable search state.
type dfsState struct {
	counts    []int16
	distorted int
	chosen    []int
	needHist  []int // scratch: histogram of remaining needs 1..r'
	nodes     int64
}

func (an *Analyzer) newDFSState(q int) *dfsState {
	return &dfsState{
		counts:   make([]int16, an.asn.F),
		chosen:   make([]int, 0, q),
		needHist: make([]int, an.rPrime+1),
	}
}

func (st *dfsState) pushFiles(an *Analyzer, u int) {
	for _, v := range an.workerFiles[u] {
		st.counts[v]++
		if int(st.counts[v]) == an.rPrime {
			st.distorted++
		}
	}
}

func (st *dfsState) popFiles(an *Analyzer, u int) {
	for _, v := range an.workerFiles[u] {
		if int(st.counts[v]) == an.rPrime {
			st.distorted--
		}
		st.counts[v]--
	}
}

// push/pop are bound to an Analyzer via closure-free helpers below; they
// exist on dfsState for the top-level task loop.
func (st *dfsState) push(u int) { st.chosen = append(st.chosen, u) }
func (st *dfsState) pop()       { st.chosen = st.chosen[:len(st.chosen)-1] }

// dfs explores worker choices start..K-1 with rem picks remaining.
// Precondition: st.chosen/st.counts reflect the current partial set
// EXCEPT the top-level first pick, which push() records without updating
// counts — so dfs applies file effects for the last chosen worker here.
func (an *Analyzer) dfs(ctx context.Context, st *dfsState, start, rem int, shared *sharedBest) {
	// Apply the most recent pick's file effects.
	u := st.chosen[len(st.chosen)-1]
	st.pushFiles(an, u)
	defer st.popFiles(an, u)
	st.nodes++

	if rem == 0 {
		if st.distorted > shared.read() {
			shared.offer(st.distorted, st.chosen)
		}
		return
	}
	if st.distorted+an.optimisticExtra(st, rem) <= shared.read() {
		return // prune: even best case cannot beat incumbent
	}
	if st.nodes%4096 == 0 {
		select {
		case <-ctx.Done():
			return
		default:
		}
	}
	k := an.asn.K
	for next := start; next <= k-rem; next++ {
		st.push(next)
		an.dfs(ctx, st, next+1, rem-1, shared)
		st.pop()
	}
}

// optimisticExtra returns an admissible upper bound on how many more
// files can be distorted with rem further picks: rem·l additional file
// placements, each file v needing r'−counts[v] more (and at most rem
// placements can land on one file). Cheapest completions are taken first.
func (an *Analyzer) optimisticExtra(st *dfsState, rem int) int {
	budget := rem * an.asn.L
	rp := an.rPrime
	hist := st.needHist
	for i := range hist {
		hist[i] = 0
	}
	for _, c := range st.counts {
		need := rp - int(c)
		if need >= 1 && need <= rem {
			hist[need]++
		}
	}
	extra := 0
	for need := 1; need <= rp && budget >= need; need++ {
		n := hist[need]
		if n == 0 {
			continue
		}
		can := budget / need
		if can > n {
			can = n
		}
		extra += can
		budget -= can * need
	}
	return extra
}

// WorstCaseByzantines returns a Byzantine set of size q achieving the
// exact maximum distortion (if exhaustive search completes within ctx)
// or the best set found. This is the omniscient adversary's choice used
// by the training experiments ("we chose the q Byzantines such that ε̂
// is maximized", Sec. 6.1).
func (an *Analyzer) WorstCaseByzantines(ctx context.Context, q int) []int {
	res := an.MaxDistorted(ctx, q)
	return res.Byzantines
}
