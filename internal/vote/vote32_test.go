package vote

import (
	"math"
	"testing"
)

func TestMajority32MirrorsF64(t *testing.T) {
	// Every scenario is evaluated at both widths over the same bit
	// patterns; the elections must agree in every Result field.
	cases := [][][]float32{
		{{1, 2, 3}, {1, 2, 3}, {9, 9, 9}},
		{{1, 2}, {3, 4}, {1, 2}, {3, 4}},                    // tie → lowest first index
		{{5, 5}, {5, 5}, {5, 5}},                            // unanimous
		{{0}, {float32(math.Copysign(0, -1))}, {0}},         // ±0 distinct
		{{float32(math.NaN())}, {float32(math.NaN())}, {1}}, // NaN self-equal
	}
	for ci, reps32 := range cases {
		reps64 := make([][]float64, len(reps32))
		for i, r := range reps32 {
			reps64[i] = make([]float64, len(r))
			for j, v := range r {
				reps64[i][j] = float64(v)
			}
		}
		r32, err := Majority32(reps32)
		if err != nil {
			t.Fatal(err)
		}
		r64, err := Majority(reps64)
		if err != nil {
			t.Fatal(err)
		}
		if r32.Count != r64.Count || r32.Unanimous != r64.Unanimous || r32.Tied != r64.Tied {
			t.Errorf("case %d: f32 (%d,%v,%v) vs f64 (%d,%v,%v)", ci,
				r32.Count, r32.Unanimous, r32.Tied, r64.Count, r64.Unanimous, r64.Tied)
		}
		for j := range r32.Winner {
			if float64(r32.Winner[j]) != r64.Winner[j] && !(math.IsNaN(float64(r32.Winner[j])) && math.IsNaN(r64.Winner[j])) {
				t.Errorf("case %d: winners diverge at %d", ci, j)
			}
		}
	}
}

func TestMajority32HashFallback(t *testing.T) {
	// Above smallN replicas the hash path runs; it must elect the same
	// plurality as the direct path does on a truncated copy.
	reps := make([][]float32, smallN+4)
	for i := range reps {
		if i%2 == 0 {
			reps[i] = []float32{1, 2}
		} else {
			reps[i] = []float32{3, 4}
		}
	}
	r, err := Majority32(reps)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count != smallN/2+2 || r.Winner[0] != 1 {
		t.Fatalf("hash path elected count=%d winner=%v", r.Count, r.Winner)
	}
}

func TestMajority32Errors(t *testing.T) {
	if _, err := Majority32(nil); err == nil {
		t.Fatal("want error for no replicas")
	}
	if _, err := Majority32([][]float32{{1}, {1, 2}}); err == nil {
		t.Fatal("want error for dim mismatch")
	}
}
