package vote

import (
	"math"
	"math/rand"
	"testing"
)

// makeReplicaSet builds a replica multiset with a known strict-plurality
// winner: winnerCount copies of one vector plus smaller groups of
// distinct losers. Returns the replicas and the winner vector.
func makeReplicaSet(rng *rand.Rand, dim, winnerCount int, loserCounts []int) ([][]float64, []float64) {
	vec := func(tag float64) []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64() + tag
		}
		return v
	}
	winner := vec(0)
	var replicas [][]float64
	for i := 0; i < winnerCount; i++ {
		replicas = append(replicas, winner)
	}
	for g, c := range loserCounts {
		loser := vec(float64(g+1) * 100)
		for i := 0; i < c; i++ {
			replicas = append(replicas, loser)
		}
	}
	return replicas, winner
}

// TestMajorityWinnerInvariantUnderPermutation: when a strict plurality
// exists, the elected value (and its count and unanimity) must not
// depend on the order replicas arrive in.
func TestMajorityWinnerInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		winnerCount := 2 + rng.Intn(4)
		var losers []int
		for rem := rng.Intn(3); rem > 0; rem-- {
			losers = append(losers, 1+rng.Intn(winnerCount-1))
		}
		replicas, winner := makeReplicaSet(rng, 1+rng.Intn(6), winnerCount, losers)
		for perm := 0; perm < 10; perm++ {
			rng.Shuffle(len(replicas), func(i, j int) {
				replicas[i], replicas[j] = replicas[j], replicas[i]
			})
			res, err := Majority(replicas)
			if err != nil {
				t.Fatal(err)
			}
			if !equalVec(res.Winner, winner) {
				t.Fatalf("trial %d perm %d: wrong winner elected", trial, perm)
			}
			if res.Count != winnerCount {
				t.Fatalf("trial %d: count %d, want %d", trial, res.Count, winnerCount)
			}
			if res.Tied {
				t.Fatalf("trial %d: strict plurality reported as tied", trial)
			}
			if res.Unanimous != (len(losers) == 0) {
				t.Fatalf("trial %d: unanimous = %v with %d loser groups", trial, res.Unanimous, len(losers))
			}
		}
	}
}

// TestMajorityUnanimityDetection: identical replicas are unanimous in
// both exact and tolerance modes, for any replica count.
func TestMajorityUnanimityDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 5, 9, 17, 31} {
		v := make([]float64, 16)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		replicas := make([][]float64, n)
		for i := range replicas {
			replicas[i] = v
		}
		res, err := Majority(replicas)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Unanimous || res.Count != n || res.Tied {
			t.Fatalf("n=%d: exact vote on identical replicas: %+v", n, res)
		}
		tres, err := MajorityWithTolerance(replicas, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if !tres.Unanimous || tres.Count != n || tres.Tied {
			t.Fatalf("n=%d: tolerance vote on identical replicas: %+v", n, tres)
		}
	}
}

// TestMajoritySmallAgreesWithHashPath cross-validates the two Majority
// implementations: padding a replica set past the small-n cutoff with
// singleton losers must elect the same winner value with the same count.
func TestMajoritySmallAgreesWithHashPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		dim := 1 + rng.Intn(5)
		winnerCount := 3 + rng.Intn(3)
		small, winner := makeReplicaSet(rng, dim, winnerCount, []int{1, 2})
		if len(small) > smallN {
			t.Fatal("setup: small set too large")
		}
		resSmall, err := Majority(small)
		if err != nil {
			t.Fatal(err)
		}
		// The same multiset plus distinct singleton losers (count 1 <
		// winnerCount) must not change the winner, and forces the hash
		// fallback path.
		large := append([][]float64(nil), small...)
		for len(large) <= smallN {
			v := make([]float64, dim)
			for i := range v {
				v[i] = rng.NormFloat64() + 1e6
			}
			large = append(large, v)
		}
		resLarge, err := Majority(large)
		if err != nil {
			t.Fatal(err)
		}
		if !equalVec(resSmall.Winner, winner) || !equalVec(resLarge.Winner, winner) {
			t.Fatalf("trial %d: paths disagree on winner", trial)
		}
		if resSmall.Count != winnerCount || resLarge.Count != winnerCount {
			t.Fatalf("trial %d: counts %d/%d, want %d", trial, resSmall.Count, resLarge.Count, winnerCount)
		}
	}
}

// TestToleranceClusteringOnPerturbedReplicas: honest replicas perturbed
// within tol/2 of a base vector must out-vote distant outliers, electing
// an honest replica with the full honest count; exact voting on the same
// set sees every replica as distinct.
func TestToleranceClusteringOnPerturbedReplicas(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const tol = 1e-6
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(8)
		honest := 2 + rng.Intn(3)
		outliers := rng.Intn(honest) // strictly fewer than honest
		base := make([]float64, dim)
		for i := range base {
			base[i] = rng.NormFloat64()
		}
		var replicas [][]float64
		for i := 0; i < honest; i++ {
			r := make([]float64, dim)
			for j := range r {
				r[j] = base[j] + (rng.Float64()-0.5)*tol // within tol/2 of base
			}
			replicas = append(replicas, r)
		}
		for i := 0; i < outliers; i++ {
			r := make([]float64, dim)
			for j := range r {
				r[j] = base[j] + 10*tol*float64(i+2) + rng.Float64()*tol
			}
			replicas = append(replicas, r)
		}
		// Shuffle and track honest membership by pointer.
		honestPtr := make(map[*float64]bool)
		for i := 0; i < honest; i++ {
			honestPtr[&replicas[i][0]] = true
		}
		rng.Shuffle(len(replicas), func(i, j int) {
			replicas[i], replicas[j] = replicas[j], replicas[i]
		})
		res, err := MajorityWithTolerance(replicas, tol)
		if err != nil {
			t.Fatal(err)
		}
		if !honestPtr[&res.Winner[0]] {
			t.Fatalf("trial %d: elected an outlier (honest=%d outliers=%d)", trial, honest, outliers)
		}
		if res.Count != honest {
			t.Fatalf("trial %d: honest cluster counted %d, want %d", trial, res.Count, honest)
		}
		if res.Unanimous != (outliers == 0) {
			t.Fatalf("trial %d: unanimous=%v with %d outliers", trial, res.Unanimous, outliers)
		}
		// Exact voting sees jittered replicas as all-distinct: count 1.
		eres, err := Majority(replicas)
		if err != nil {
			t.Fatal(err)
		}
		if eres.Count != 1 {
			t.Fatalf("trial %d: exact vote count %d on jittered replicas", trial, eres.Count)
		}
	}
}

// TestMajorityNaNReplicas: bit-pattern equality means NaN-poisoned
// replicas still vote deterministically (NaN == NaN by bits), so a
// Byzantine NaN payload cannot crash or bias the election beyond its
// replica count.
func TestMajorityNaNReplicas(t *testing.T) {
	nan := math.NaN()
	honest := []float64{1, 2, 3}
	replicas := [][]float64{{nan, nan, nan}, honest, honest}
	res, err := Majority(replicas)
	if err != nil {
		t.Fatal(err)
	}
	if !equalVec(res.Winner, honest) || res.Count != 2 {
		t.Fatalf("NaN payload beat 2 honest replicas: %+v", res)
	}
}
