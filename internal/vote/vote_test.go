package vote

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMajorityHonestWins(t *testing.T) {
	honest := []float64{1.5, -2.25, 3}
	byz := []float64{9, 9, 9}
	res, err := Majority([][]float64{honest, byz, honest})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 || res.Tied || res.Unanimous {
		t.Errorf("result = %+v", res)
	}
	if &res.Winner[0] == &byz[0] || res.Winner[0] != 1.5 {
		t.Errorf("winner = %v", res.Winner)
	}
}

func TestMajorityByzantineMajorityWins(t *testing.T) {
	// When r' of r replicas collude, they control the vote — this is
	// exactly the distortion event the assignment schemes minimize.
	honest := []float64{1}
	byz := []float64{-1}
	res, err := Majority([][]float64{byz, honest, byz})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner[0] != -1 || res.Count != 2 {
		t.Errorf("result = %+v", res)
	}
}

func TestMajorityUnanimous(t *testing.T) {
	g := []float64{2, 4}
	res, err := Majority([][]float64{g, g, g})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unanimous || res.Count != 3 || res.Tied {
		t.Errorf("result = %+v", res)
	}
}

func TestMajorityTieDeterministic(t *testing.T) {
	a := []float64{1}
	b := []float64{2}
	res, err := Majority([][]float64{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tied {
		t.Error("tie not reported")
	}
	if res.Winner[0] != 1 {
		t.Errorf("tie winner = %v, want first-seen candidate", res.Winner)
	}
	// Order flip: winner follows first appearance.
	res2, err := Majority([][]float64{b, a})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Winner[0] != 2 {
		t.Errorf("tie winner = %v, want first-seen candidate", res2.Winner)
	}
}

func TestMajorityErrors(t *testing.T) {
	if _, err := Majority(nil); err == nil {
		t.Error("empty replicas accepted")
	}
	if _, err := Majority([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged replicas accepted")
	}
}

func TestMajoritySingleReplica(t *testing.T) {
	res, err := Majority([][]float64{{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unanimous || res.Count != 1 || res.Tied {
		t.Errorf("result = %+v", res)
	}
}

func TestMajorityNaNHandling(t *testing.T) {
	// Byzantine workers may return NaNs; identical NaN payloads must
	// count as equal votes rather than splitting.
	nanVec := []float64{math.NaN()}
	honest := []float64{1}
	res, err := Majority([][]float64{nanVec, nanVec, honest})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 || !math.IsNaN(res.Winner[0]) {
		t.Errorf("result = %+v", res)
	}
}

func TestMajorityWithToleranceAbsorbsJitter(t *testing.T) {
	g1 := []float64{1.0, 2.0}
	g2 := []float64{1.0 + 1e-12, 2.0 - 1e-12} // same gradient, float jitter
	byz := []float64{5, 5}
	res, err := MajorityWithTolerance([][]float64{g1, g2, byz}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 {
		t.Errorf("jittered replicas not clustered: %+v", res)
	}
	if res.Winner[0] != 1.0 {
		t.Errorf("winner = %v", res.Winner)
	}
	// Exact mode must NOT cluster them.
	resExact, err := Majority([][]float64{g1, g2, byz})
	if err != nil {
		t.Fatal(err)
	}
	if resExact.Count != 1 {
		t.Errorf("exact mode clustered jitter: %+v", resExact)
	}
}

func TestMajorityWithToleranceErrors(t *testing.T) {
	if _, err := MajorityWithTolerance(nil, 0.1); err == nil {
		t.Error("empty accepted")
	}
	if _, err := MajorityWithTolerance([][]float64{{1}}, -1); err == nil {
		t.Error("negative tol accepted")
	}
	if _, err := MajorityWithTolerance([][]float64{{1}, {1, 2}}, 0.1); err == nil {
		t.Error("ragged accepted")
	}
}

func TestMajorityWithToleranceZeroTolIsExactish(t *testing.T) {
	a := []float64{1}
	b := []float64{2}
	res, err := MajorityWithTolerance([][]float64{a, a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 || res.Winner[0] != 1 {
		t.Errorf("result = %+v", res)
	}
}

// Property: when strictly more than half the replicas are the identical
// honest vector, the honest vector always wins — the invariant that
// makes r' = ⌊r/2⌋+1 the distortion threshold.
func TestQuickHonestMajorityAlwaysWins(t *testing.T) {
	prop := func(rRaw, byzRaw uint8, hv, bv float64) bool {
		r := 3 + 2*(int(rRaw)%4) // r in {3,5,7,9}
		honestCount := r/2 + 1 + int(byzRaw)%(r/2+1)
		if honestCount > r {
			honestCount = r
		}
		if math.IsNaN(hv) || math.IsInf(hv, 0) {
			hv = 1
		}
		if math.IsNaN(bv) || math.IsInf(bv, 0) || bv == hv {
			bv = hv + 1
		}
		honest := []float64{hv}
		replicas := make([][]float64, 0, r)
		for i := 0; i < honestCount; i++ {
			replicas = append(replicas, honest)
		}
		for i := honestCount; i < r; i++ {
			replicas = append(replicas, []float64{bv})
		}
		res, err := Majority(replicas)
		if err != nil {
			return false
		}
		return res.Winner[0] == hv && res.Count == honestCount && !res.Tied
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: Majority and MajorityWithTolerance(0-ish) agree when all
// replicas are exact duplicates from a small candidate set.
func TestQuickExactVsToleranceAgree(t *testing.T) {
	prop := func(pattern uint16) bool {
		candidates := [][]float64{{0}, {1}, {2}}
		var replicas [][]float64
		for i := 0; i < 5; i++ {
			replicas = append(replicas, candidates[int(pattern>>(2*i))%3])
		}
		a, err1 := Majority(replicas)
		b, err2 := MajorityWithTolerance(replicas, 1e-12)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Count == b.Count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMajority5x1000(b *testing.B) {
	replicas := make([][]float64, 5)
	base := make([]float64, 1000)
	for i := range base {
		base[i] = float64(i)
	}
	for i := range replicas {
		replicas[i] = base
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Majority(replicas); err != nil {
			b.Fatal(err)
		}
	}
}
