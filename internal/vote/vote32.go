package vote

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Result32 reports the outcome of a single file's float32 vote, with
// the exact semantics of Result at the narrower width.
type Result32 struct {
	// Winner is the elected gradient (a reference to one of the inputs;
	// callers must copy before mutating).
	Winner []float32
	// Count is the number of votes the winner received.
	Count int
	// Unanimous is true when every replica agreed.
	Unanimous bool
	// Tied is true when no strict plurality existed; Winner is then the
	// candidate with the lowest worker index among the tied maxima.
	Tied bool
}

// Majority32 is the float32 instantiation of Majority: exact bit
// equality over float32 patterns, the same small-n direct path, the
// same hash fallback, and the same lowest-first-index tie-break. The
// reduced-precision tier relies on it exactly as the f64 protocol
// relies on Majority — honest replicas of one file are bit-identical
// at either width.
func Majority32(replicas [][]float32) (Result32, error) {
	n := len(replicas)
	if n == 0 {
		return Result32{}, fmt.Errorf("vote: no replicas")
	}
	d := len(replicas[0])
	for i, r := range replicas {
		if len(r) != d {
			return Result32{}, fmt.Errorf("vote: replica %d has dim %d, want %d", i, len(r), d)
		}
	}
	if n <= smallN {
		return majoritySmall32(replicas), nil
	}
	hashes := make([]uint64, n)
	for i, r := range replicas {
		hashes[i] = hashVec32(r)
	}
	counts := make(map[uint64]int, n)
	first := make(map[uint64]int, n)
	for i, h := range hashes {
		counts[h]++
		if _, seen := first[h]; !seen {
			first[h] = i
		}
	}
	bestHash := hashes[0]
	bestCount := 0
	for h, c := range counts {
		if c > bestCount || (c == bestCount && first[h] < first[bestHash]) {
			bestHash = h
			bestCount = c
		}
	}
	winner := replicas[first[bestHash]]
	exact := 0
	for _, r := range replicas {
		if equalVec32(r, winner) {
			exact++
		}
	}
	tied := false
	for h, c := range counts {
		if h != bestHash && c == bestCount {
			tied = true
		}
	}
	return Result32{
		Winner:    winner,
		Count:     exact,
		Unanimous: exact == n,
		Tied:      tied,
	}, nil
}

// majoritySmall32 mirrors majoritySmall on float32 bit patterns.
func majoritySmall32(replicas [][]float32) Result32 {
	n := len(replicas)
	var canon, counts [smallN]int
	for i := 0; i < n; i++ {
		c := i
		for j := 0; j < i; j++ {
			if canon[j] == j && equalVec32(replicas[j], replicas[i]) {
				c = j
				break
			}
		}
		canon[i] = c
		counts[c]++
	}
	best := 0
	for i := 1; i < n; i++ {
		if canon[i] == i && counts[i] > counts[best] {
			best = i
		}
	}
	tied := false
	for i := 0; i < n; i++ {
		if canon[i] == i && i != best && counts[i] == counts[best] {
			tied = true
		}
	}
	return Result32{
		Winner:    replicas[best],
		Count:     counts[best],
		Unanimous: counts[best] == n,
		Tied:      tied,
	}
}

// hashVec32 hashes the raw IEEE-754 float32 bytes of v with FNV-1a.
func hashVec32(v []float32) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, x := range v {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(x))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// equalVec32 compares by float32 bit patterns (NaN == NaN, +0 ≠ −0).
func equalVec32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}
