// Package vote implements the per-file majority voting stage of the
// training protocol (Eq. 3 of the paper): the PS receives r claimed
// gradients for each file and outputs the value returned by the largest
// number of workers.
//
// Two modes are provided. Exact mode matches the paper's implementation
// note — honest workers return bit-identical gradients for the same
// file, so votes can be counted by hashing the raw float64 bytes
// (using the linear-time Boyer–Moore MJRTY pass first, then a counting
// verification). Tolerance mode handles the "potential precision
// issues" the paper mentions by clustering returned gradients whose
// pairwise L∞ distance is within Tol and voting over clusters.
package vote

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Result reports the outcome of a single file's vote.
type Result struct {
	// Winner is the elected gradient (a reference to one of the inputs;
	// callers must copy before mutating).
	Winner []float64
	// Count is the number of votes the winner received.
	Count int
	// Unanimous is true when every replica agreed.
	Unanimous bool
	// Tied is true when no strict plurality existed; Winner is then the
	// candidate with the lowest worker index among the tied maxima,
	// making the outcome deterministic (the paper avoids ties by using
	// odd r).
	Tied bool
}

// Majority elects the most frequent gradient among the replicas using
// exact byte equality. It is the implementation of Eq. (3): m_i =
// majority{ĝ_i^(j)}. Inputs must be non-empty and of equal dimension.
func Majority(replicas [][]float64) (Result, error) {
	n := len(replicas)
	if n == 0 {
		return Result{}, fmt.Errorf("vote: no replicas")
	}
	d := len(replicas[0])
	for i, r := range replicas {
		if len(r) != d {
			return Result{}, fmt.Errorf("vote: replica %d has dim %d, want %d", i, len(r), d)
		}
	}
	// MJRTY (Boyer–Moore) fast path: find the only possible strict
	// majority candidate in one pass using hashes, verify by counting.
	hashes := make([]uint64, n)
	for i, r := range replicas {
		hashes[i] = hashVec(r)
	}
	// Count all candidates (n is small: r replicas).
	counts := make(map[uint64]int, n)
	first := make(map[uint64]int, n)
	for i, h := range hashes {
		counts[h]++
		if _, seen := first[h]; !seen {
			first[h] = i
		}
	}
	bestHash := hashes[0]
	bestCount := 0
	for h, c := range counts {
		if c > bestCount || (c == bestCount && first[h] < first[bestHash]) {
			bestHash = h
			bestCount = c
		}
	}
	// Verify winner by exact comparison against its first holder —
	// protects against (astronomically unlikely) hash collisions
	// electing a wrong bucket representative.
	winner := replicas[first[bestHash]]
	exact := 0
	for _, r := range replicas {
		if equalVec(r, winner) {
			exact++
		}
	}
	tied := false
	for h, c := range counts {
		if h != bestHash && c == bestCount {
			tied = true
		}
	}
	return Result{
		Winner:    winner,
		Count:     exact,
		Unanimous: exact == n,
		Tied:      tied,
	}, nil
}

// MajorityWithTolerance clusters replicas by L∞ proximity (two replicas
// belong to one cluster when within tol of the cluster's representative)
// and elects the largest cluster, returning its representative. This is
// the paper's suggested handling for floating-point jitter between
// honest replicas.
func MajorityWithTolerance(replicas [][]float64, tol float64) (Result, error) {
	n := len(replicas)
	if n == 0 {
		return Result{}, fmt.Errorf("vote: no replicas")
	}
	if tol < 0 {
		return Result{}, fmt.Errorf("vote: negative tolerance %v", tol)
	}
	d := len(replicas[0])
	for i, r := range replicas {
		if len(r) != d {
			return Result{}, fmt.Errorf("vote: replica %d has dim %d, want %d", i, len(r), d)
		}
	}
	type cluster struct {
		rep   []float64
		count int
		first int
	}
	var clusters []*cluster
	for i, r := range replicas {
		placed := false
		for _, c := range clusters {
			if maxAbsDiff(c.rep, r) <= tol {
				c.count++
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, &cluster{rep: r, count: 1, first: i})
		}
	}
	best := clusters[0]
	for _, c := range clusters[1:] {
		if c.count > best.count || (c.count == best.count && c.first < best.first) {
			best = c
		}
	}
	tied := false
	for _, c := range clusters {
		if c != best && c.count == best.count {
			tied = true
		}
	}
	return Result{
		Winner:    best.rep,
		Count:     best.count,
		Unanimous: best.count == n,
		Tied:      tied,
	}, nil
}

// hashVec hashes the raw IEEE-754 bytes of v with FNV-1a.
func hashVec(v []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// equalVec compares by float bit patterns (so NaN == NaN holds and
// +0/−0 are distinct, matching hash semantics).
func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// maxAbsDiff returns the L∞ distance between a and b.
func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
