// Package vote implements the per-file majority voting stage of the
// training protocol (Eq. 3 of the paper): the PS receives r claimed
// gradients for each file and outputs the value returned by the largest
// number of workers.
//
// Two modes are provided. Exact mode matches the paper's implementation
// note — honest workers return bit-identical gradients for the same
// file, so votes can be counted by hashing the raw float64 bytes
// (using the linear-time Boyer–Moore MJRTY pass first, then a counting
// verification). Tolerance mode handles the "potential precision
// issues" the paper mentions by clustering returned gradients whose
// pairwise L∞ distance is within Tol and voting over clusters.
package vote

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Result reports the outcome of a single file's vote.
type Result struct {
	// Winner is the elected gradient (a reference to one of the inputs;
	// callers must copy before mutating).
	Winner []float64
	// Count is the number of votes the winner received.
	Count int
	// Unanimous is true when every replica agreed.
	Unanimous bool
	// Tied is true when no strict plurality existed; Winner is then the
	// candidate with the lowest worker index among the tied maxima,
	// making the outcome deterministic (the paper avoids ties by using
	// odd r).
	Tied bool
}

// smallN bounds the allocation-free direct-comparison vote path. Real
// replication factors are tiny (r ≤ 5 in the paper), so virtually every
// vote takes it.
const smallN = 16

// Majority elects the most frequent gradient among the replicas using
// exact byte equality. It is the implementation of Eq. (3): m_i =
// majority{ĝ_i^(j)}. Inputs must be non-empty and of equal dimension.
//
// For n ≤ 16 replicas the election runs allocation-free on direct
// pairwise bit comparison; larger replica sets fall back to hashing.
// Both paths elect identically: the candidate with the most votes,
// breaking ties toward the lowest first-holder index.
func Majority(replicas [][]float64) (Result, error) {
	n := len(replicas)
	if n == 0 {
		return Result{}, fmt.Errorf("vote: no replicas")
	}
	d := len(replicas[0])
	for i, r := range replicas {
		if len(r) != d {
			return Result{}, fmt.Errorf("vote: replica %d has dim %d, want %d", i, len(r), d)
		}
	}
	if n <= smallN {
		return majoritySmall(replicas), nil
	}
	// Hash fallback: find the candidate in one pass using hashes,
	// verify by counting.
	hashes := make([]uint64, n)
	for i, r := range replicas {
		hashes[i] = hashVec(r)
	}
	// Count all candidates (n is small: r replicas).
	counts := make(map[uint64]int, n)
	first := make(map[uint64]int, n)
	for i, h := range hashes {
		counts[h]++
		if _, seen := first[h]; !seen {
			first[h] = i
		}
	}
	bestHash := hashes[0]
	bestCount := 0
	for h, c := range counts {
		if c > bestCount || (c == bestCount && first[h] < first[bestHash]) {
			bestHash = h
			bestCount = c
		}
	}
	// Verify winner by exact comparison against its first holder —
	// protects against (astronomically unlikely) hash collisions
	// electing a wrong bucket representative.
	winner := replicas[first[bestHash]]
	exact := 0
	for _, r := range replicas {
		if equalVec(r, winner) {
			exact++
		}
	}
	tied := false
	for h, c := range counts {
		if h != bestHash && c == bestCount {
			tied = true
		}
	}
	return Result{
		Winner:    winner,
		Count:     exact,
		Unanimous: exact == n,
		Tied:      tied,
	}, nil
}

// majoritySmall elects by direct pairwise comparison with stack-only
// state: each replica is mapped to the index of its first bit-identical
// predecessor (its canonical candidate), and the canonical candidate
// with the highest count — lowest first index on ties — wins.
func majoritySmall(replicas [][]float64) Result {
	n := len(replicas)
	var canon, counts [smallN]int
	for i := 0; i < n; i++ {
		c := i
		for j := 0; j < i; j++ {
			if canon[j] == j && equalVec(replicas[j], replicas[i]) {
				c = j
				break
			}
		}
		canon[i] = c
		counts[c]++
	}
	best := 0
	for i := 1; i < n; i++ {
		if canon[i] == i && counts[i] > counts[best] {
			best = i
		}
	}
	tied := false
	for i := 0; i < n; i++ {
		if canon[i] == i && i != best && counts[i] == counts[best] {
			tied = true
		}
	}
	return Result{
		Winner:    replicas[best],
		Count:     counts[best],
		Unanimous: counts[best] == n,
		Tied:      tied,
	}
}

// MajorityWithTolerance clusters replicas by L∞ proximity (two replicas
// belong to one cluster when within tol of the cluster's representative)
// and elects the largest cluster, returning its representative. This is
// the paper's suggested handling for floating-point jitter between
// honest replicas.
func MajorityWithTolerance(replicas [][]float64, tol float64) (Result, error) {
	n := len(replicas)
	if n == 0 {
		return Result{}, fmt.Errorf("vote: no replicas")
	}
	if tol < 0 {
		return Result{}, fmt.Errorf("vote: negative tolerance %v", tol)
	}
	d := len(replicas[0])
	for i, r := range replicas {
		if len(r) != d {
			return Result{}, fmt.Errorf("vote: replica %d has dim %d, want %d", i, len(r), d)
		}
	}
	// Clusters are (representative index, count) pairs; the
	// representative is the first replica that opened the cluster, so
	// the lowest-first-index tie-break is an index comparison. The
	// cluster table lives on the stack for realistic replica counts.
	type tolCluster struct {
		rep   int
		count int
	}
	var stack [smallN]tolCluster
	clusters := stack[:0]
	if n > smallN {
		clusters = make([]tolCluster, 0, n)
	}
	for i, r := range replicas {
		placed := false
		for k := range clusters {
			if maxAbsDiff(replicas[clusters[k].rep], r) <= tol {
				clusters[k].count++
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, tolCluster{rep: i, count: 1})
		}
	}
	best := 0
	for k := 1; k < len(clusters); k++ {
		// Representatives appear in first-index order, so a strictly
		// greater count is the only way to displace an earlier cluster.
		if clusters[k].count > clusters[best].count {
			best = k
		}
	}
	tied := false
	for k := range clusters {
		if k != best && clusters[k].count == clusters[best].count {
			tied = true
		}
	}
	return Result{
		Winner:    replicas[clusters[best].rep],
		Count:     clusters[best].count,
		Unanimous: clusters[best].count == n,
		Tied:      tied,
	}, nil
}

// hashVec hashes the raw IEEE-754 bytes of v with FNV-1a.
func hashVec(v []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// equalVec compares by float bit patterns (so NaN == NaN holds and
// +0/−0 are distinct, matching hash semantics).
func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// maxAbsDiff returns the L∞ distance between a and b.
func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
