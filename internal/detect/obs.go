package detect

import "byzshield/internal/obs"

// scoreBuckets covers the window-score range: robust z-scores are
// winsorized to ZCap = 10, so window means live in [0, 10]; honest
// workers cluster under ~2, attackers pin near the cap.
var scoreBuckets = []float64{0.25, 0.5, 1, 1.5, 2, 3, 4, 6, 8, 10}

// Instruments is the detection layer's preallocated metric state: the
// per-round distribution of window outlier scores across the live
// fleet, and the flag/blacklist event counters. All updates happen
// inside Observe via atomic stores — nothing on the detection hot path
// allocates.
type Instruments struct {
	// Score observes every live worker's window outlier score each
	// round (the scalar the zscore detector thresholds).
	Score *obs.Histogram
	// Flagged counts detector flag events (worker-rounds).
	Flagged *obs.Counter
	// Blacklisted counts permanent blacklist events.
	Blacklisted *obs.Counter
}

// NewInstruments registers the detection families on r.
func NewInstruments(r *obs.Registry) *Instruments {
	return &Instruments{
		Score:       r.Histogram("byzshield_detect_score", "", "per-worker window outlier score distribution per round", scoreBuckets),
		Flagged:     r.Counter("byzshield_detect_flagged_total", "", "detector flag events (worker-rounds)"),
		Blacklisted: r.Counter("byzshield_detect_blacklisted_total", "", "workers permanently blacklisted"),
	}
}

// SetInstruments attaches ins to the state; nil detaches. Observe
// feeds the instruments after each detection pass.
func (s *State) SetInstruments(ins *Instruments) { s.ins = ins }

// observeInstruments publishes one completed detection round.
func (s *State) observeInstruments() {
	ins := s.ins
	if ins == nil {
		return
	}
	for _, u := range s.live {
		ins.Score.Observe(s.WindowScore(u))
	}
	ins.Flagged.Add(int64(len(s.flaggedList)))
	ins.Blacklisted.Add(int64(len(s.newBlack)))
}
