package detect

import "math"

// ZScore flags workers whose window-mean outlier score — the mean of
// max(|NormZ|, |CosZ|) over their history ring — exceeds Threshold.
// Because the per-round z-scores are median/MAD based, a minority of
// colluding Byzantines cannot recenter the statistics around
// themselves; persistent payload crafting (reversed gradients, ALIE's
// µ − z·σ shift, constant matrices) shows up as a sustained score well
// above the honest fleet's.
type ZScore struct {
	// Threshold is the window-score cutoff; 0 means 3.0.
	Threshold float64
}

// Name implements Detector.
func (ZScore) Name() string { return "zscore" }

// RelGate scales the zscore detector's adaptive cutoff: a worker is
// flagged only when its window score exceeds both Threshold and
// RelGate × the live fleet's median window score. Near convergence
// every report is sampling noise around a near-zero gradient, the
// whole fleet's scores drift up together, and a fixed cutoff would
// blacklist the statistical edge of an honest fleet; the relative gate
// keeps the threshold meaningful there, while a crafted payload pins
// its score at ZCap far above any honest pack.
const RelGate = 2.0

// Flag implements Detector.
func (z ZScore) Flag(st *State, live []int, flags []bool) {
	thr := z.Threshold
	if thr == 0 {
		thr = 3.0
	}
	sc := st.featScratch[:0]
	for _, u := range live {
		sc = append(sc, st.WindowScore(u))
	}
	gate := math.Max(thr, RelGate*medianInPlace(sc))
	st.featScratch = sc[:0]
	for _, u := range live {
		if st.WindowScore(u) > gate {
			flags[u] = true
		}
	}
}

// KMeans is the k-means-over-history detector: each live worker becomes
// the 2-D point (window-mean |NormZ|, window-mean |CosZ|), a
// deterministic 2-means partition splits the fleet, and the minority
// cluster is flagged when it is both clearly separated (center distance
// above Threshold) and farther from the origin than the majority —
// i.e. a small, persistently anomalous group, not a random split of an
// honest fleet.
type KMeans struct {
	// Threshold is the minimum center separation; 0 means 2.0.
	Threshold float64
}

// Name implements Detector.
func (KMeans) Name() string { return "cluster" }

// kmeansIters fixes the Lloyd iteration count so every run of the
// detector performs the identical computation.
const kmeansIters = 8

// Flag implements Detector.
func (k KMeans) Flag(st *State, live []int, flags []bool) {
	thr := k.Threshold
	if thr == 0 {
		thr = 2.0
	}
	if len(live) < 4 {
		return // too few points for a meaningful 2-way split
	}
	pts := st.kmPts[:0]
	for _, u := range live {
		nz, cz := st.WindowMeans(u)
		pts = append(pts, [2]float64{nz, cz})
	}
	st.kmPts = pts
	assign := st.kmAssign[:len(pts)]

	// Deterministic init: the extreme points by combined score seed the
	// two centers, so no RNG enters the partition.
	lo, hi := 0, 0
	for i, p := range pts {
		si := p[0] + p[1]
		if si < pts[lo][0]+pts[lo][1] {
			lo = i
		}
		if si > pts[hi][0]+pts[hi][1] {
			hi = i
		}
	}
	if lo == hi {
		return // all points identical: nothing to split
	}
	c0, c1 := pts[lo], pts[hi]
	for it := 0; it < kmeansIters; it++ {
		n0, n1 := 0, 0
		var s0, s1 [2]float64
		for i, p := range pts {
			// Ties assign to cluster 0, keeping the partition stable.
			if dist2(p, c0) <= dist2(p, c1) {
				assign[i] = 0
				s0[0] += p[0]
				s0[1] += p[1]
				n0++
			} else {
				assign[i] = 1
				s1[0] += p[0]
				s1[1] += p[1]
				n1++
			}
		}
		if n0 == 0 || n1 == 0 {
			return // degenerate split: treat as one cluster, flag nobody
		}
		c0 = [2]float64{s0[0] / float64(n0), s0[1] / float64(n0)}
		c1 = [2]float64{s1[0] / float64(n1), s1[1] / float64(n1)}
	}

	n1 := 0
	for _, a := range assign {
		n1 += a
	}
	minority, minC, majC := 1, c1, c0
	minN := n1
	if n0 := len(pts) - n1; n1 > n0 {
		minority, minC, majC = 0, c0, c1
		minN = n0
	}
	// A genuine Byzantine coalition is a strict minority; an even split
	// of the fleet is ambiguous and flags nobody.
	if 2*minN >= len(pts) {
		return
	}
	if math.Sqrt(dist2(minC, majC)) <= thr {
		return
	}
	if minC[0]+minC[1] <= majC[0]+majC[1] {
		return // the small cluster is the calmer one: not an attack
	}
	for i, u := range live {
		if assign[i] == minority {
			flags[u] = true
		}
	}
}

// dist2 returns the squared Euclidean distance of two feature points.
func dist2(a, b [2]float64) float64 {
	dx := a[0] - b[0]
	dy := a[1] - b[1]
	return dx*dx + dy*dy
}
