// Package detect implements the parameter server's Byzantine detection
// and reputation layer: a subsystem that runs between gradient
// collection and aggregation, accumulates per-worker gradient-history
// features (report norm, cosine to the coordinate-wise median report,
// and robust per-round z-scores of both) in fixed ring buffers, and
// feeds them to a pluggable Detector. Flagged workers lose reputation
// through an exponential moving average; a worker whose reputation
// stays below the blacklist floor after enough observed rounds is
// blacklisted permanently — the engine then excludes it from every
// later round and the TCP server refuses its rejoin token with a typed
// rejection.
//
// The layer is deterministic and width-invariant: features derive only
// from the per-worker summed reports (each computed in fixed file
// order), the per-round statistics use medians and median absolute
// deviations (so Byzantine contamination cannot recenter the scale the
// way mean/std statistics would), and every buffer is preallocated for
// the cluster size — steady state allocates nothing. Serial, pooled,
// and TCP-loopback runs therefore observe bit-identical feature
// streams and make identical flagging decisions.
package detect

import (
	"math"
	"sort"
)

// Default policy knobs, applied by Params.withDefaults for zero values.
const (
	DefaultWindow         = 8
	DefaultMinRounds      = 10
	DefaultDecay          = 0.9
	DefaultBlacklistBelow = 0.5
)

// Params is the reputation policy shared by every detector: feature
// window length, the observation count before blacklisting may trigger,
// the reputation EMA decay, a detector-specific outlier threshold, and
// the reputation floor below which a worker is blacklisted.
type Params struct {
	Window         int     // history ring length (default 8)
	MinRounds      int     // rounds observed before blacklisting (default 10)
	Decay          float64 // reputation EMA decay (default 0.9)
	Threshold      float64 // detector outlier threshold (0 = detector default)
	BlacklistBelow float64 // reputation blacklist floor (default 0.5)
}

// withDefaults fills zero values with the documented defaults.
func (p Params) withDefaults() Params {
	if p.Window <= 0 {
		p.Window = DefaultWindow
	}
	if p.MinRounds <= 0 {
		p.MinRounds = DefaultMinRounds
	}
	if p.Decay <= 0 || p.Decay >= 1 {
		p.Decay = DefaultDecay
	}
	if p.BlacklistBelow <= 0 || p.BlacklistBelow >= 1 {
		p.BlacklistBelow = DefaultBlacklistBelow
	}
	return p
}

// Sample is one round's feature vector for one worker: the summed
// report's norm, its cosine to the live fleet's coordinate-wise median
// report, and the robust z-scores of both across the live fleet.
type Sample struct {
	Norm, Cos   float64
	NormZ, CosZ float64
}

// Detector flags suspicious workers from their history windows. live
// lists the worker ids observed this round (ascending); flags is
// indexed by worker id and pre-cleared — a detector only sets entries
// to true. Implementations must be deterministic and must not retain
// the slices.
type Detector interface {
	Name() string
	Flag(st *State, live []int, flags []bool)
}

// None is the detection-free control: nothing is ever flagged, every
// reputation stays 1, nobody is blacklisted.
type None struct{}

// Name implements Detector.
func (None) Name() string { return "none" }

// Flag implements Detector.
func (None) Flag(*State, []int, []bool) {}

// IsNone reports whether d is the detection-free control (or nil), so
// callers can skip the feature pipeline entirely.
func IsNone(d Detector) bool {
	if d == nil {
		return true
	}
	_, ok := d.(None)
	return ok
}

// State is the reputation layer's per-run state for a K-worker cluster
// with gradient dimension dim. All buffers are allocated once; Observe
// and the accessors allocate nothing.
type State struct {
	k, dim int
	p      Params

	reports [][]float64 // k × dim summed reports, views into one backing
	present []bool      // worker reported this round

	median []float64 // coordinate-wise median report of the live fleet
	col    []float64 // per-coordinate scratch column (≤ k values)

	hist    []Sample // k × Window flat ring buffers
	histLen []int
	histPos []int
	rounds  []int // observations per worker

	rep     []float64
	flagged []bool
	black   []bool

	// per-round scratch, indexed parallel to live
	featNorm, featCos []float64
	featNZ, featCZ    []float64
	featScratch       []float64

	live        []int
	flaggedList []int
	newBlack    []int
	blackList   []int

	// 2-means scratch for the cluster detector
	kmPts    [][2]float64
	kmAssign []int

	// ins is the optional observability hook (see obs.go); nil when
	// metrics are off.
	ins *Instruments
}

// NewState allocates the reputation layer for k workers and gradient
// dimension dim, applying the documented defaults to zero Params.
func NewState(k, dim int, p Params) *State {
	p = p.withDefaults()
	s := &State{
		k: k, dim: dim, p: p,
		present:     make([]bool, k),
		median:      make([]float64, dim),
		col:         make([]float64, 0, k),
		hist:        make([]Sample, k*p.Window),
		histLen:     make([]int, k),
		histPos:     make([]int, k),
		rounds:      make([]int, k),
		rep:         make([]float64, k),
		flagged:     make([]bool, k),
		black:       make([]bool, k),
		featNorm:    make([]float64, k),
		featCos:     make([]float64, k),
		featNZ:      make([]float64, k),
		featCZ:      make([]float64, k),
		featScratch: make([]float64, 0, k),
		live:        make([]int, 0, k),
		flaggedList: make([]int, 0, k),
		newBlack:    make([]int, 0, k),
		blackList:   make([]int, 0, k),
		kmPts:       make([][2]float64, 0, k),
		kmAssign:    make([]int, k),
	}
	backing := make([]float64, k*dim)
	s.reports = make([][]float64, k)
	for u := 0; u < k; u++ {
		s.reports[u] = backing[u*dim : (u+1)*dim : (u+1)*dim]
		s.rep[u] = 1
	}
	return s
}

// K returns the cluster size the state was allocated for.
func (s *State) K() int { return s.k }

// Policy returns the normalized reputation policy.
func (s *State) Policy() Params { return s.p }

// BeginRound resets the per-round presence marks. Call once before the
// workers' reports are summed in.
func (s *State) BeginRound() {
	for u := range s.present {
		s.present[u] = false
	}
}

// Report marks worker u present and returns its zeroed report buffer
// for the caller to sum file gradients into. Distinct workers' Report
// calls may run concurrently (each touches only its own row).
func (s *State) Report(u int) []float64 {
	s.present[u] = true
	r := s.reports[u]
	for i := range r {
		r[i] = 0
	}
	return r
}

// Observe runs one detection round: it computes the live fleet's median
// report and per-worker features, pushes them into the history rings,
// asks det to flag outliers, updates reputations, and blacklists
// persistent offenders. Call after every worker's Report is filled.
func (s *State) Observe(det Detector) {
	live := s.live[:0]
	for u := 0; u < s.k; u++ {
		if s.present[u] && !s.black[u] {
			live = append(live, u)
		}
	}
	s.live = live
	s.flaggedList = s.flaggedList[:0]
	s.newBlack = s.newBlack[:0]
	for u := range s.flagged {
		s.flagged[u] = false
	}
	if len(live) == 0 {
		return
	}

	for j := 0; j < s.dim; j++ {
		col := s.col[:0]
		for _, u := range live {
			col = append(col, s.reports[u][j])
		}
		s.col = col
		s.median[j] = medianInPlace(col)
	}

	medNorm := norm(s.median)
	for i, u := range live {
		r := s.reports[u]
		n := norm(r)
		cos := 1.0
		if n > 0 && medNorm > 0 {
			cos = dot(r, s.median) / (n * medNorm)
		}
		s.featNorm[i] = n
		s.featCos[i] = cos
	}
	s.robustZ(s.featNorm[:len(live)], s.featNZ)
	s.robustZ(s.featCos[:len(live)], s.featCZ)

	for i, u := range live {
		s.push(u, Sample{
			Norm: s.featNorm[i], Cos: s.featCos[i],
			NormZ: s.featNZ[i], CosZ: s.featCZ[i],
		})
		s.rounds[u]++
	}

	det.Flag(s, live, s.flagged)

	for _, u := range live {
		target := 1.0
		if s.flagged[u] {
			target = 0
			s.flaggedList = append(s.flaggedList, u)
		}
		s.rep[u] = s.p.Decay*s.rep[u] + (1-s.p.Decay)*target
		if !s.black[u] && s.rounds[u] >= s.p.MinRounds && s.rep[u] < s.p.BlacklistBelow {
			s.black[u] = true
			s.newBlack = append(s.newBlack, u)
			s.blackList = append(s.blackList, u)
		}
	}
	s.observeInstruments()
}

// push appends a sample to worker u's ring.
func (s *State) push(u int, smp Sample) {
	w := s.p.Window
	s.hist[u*w+s.histPos[u]] = smp
	s.histPos[u] = (s.histPos[u] + 1) % w
	if s.histLen[u] < w {
		s.histLen[u]++
	}
}

// WindowLen returns how many samples worker u's ring currently holds.
func (s *State) WindowLen(u int) int { return s.histLen[u] }

// WindowScore returns the mean over worker u's window of
// max(|NormZ|, |CosZ|) — the scalar outlier score the zscore detector
// thresholds.
func (s *State) WindowScore(u int) float64 {
	n := s.histLen[u]
	if n == 0 {
		return 0
	}
	w := s.p.Window
	sum := 0.0
	for i := 0; i < n; i++ {
		smp := s.hist[u*w+i]
		v := math.Abs(smp.NormZ)
		if c := math.Abs(smp.CosZ); c > v {
			v = c
		}
		sum += v
	}
	return sum / float64(n)
}

// WindowMeans returns the window means of |NormZ| and |CosZ| for worker
// u — the 2-D feature point the cluster detector partitions.
func (s *State) WindowMeans(u int) (nz, cz float64) {
	n := s.histLen[u]
	if n == 0 {
		return 0, 0
	}
	w := s.p.Window
	for i := 0; i < n; i++ {
		smp := s.hist[u*w+i]
		nz += math.Abs(smp.NormZ)
		cz += math.Abs(smp.CosZ)
	}
	return nz / float64(n), cz / float64(n)
}

// Blacklisted reports whether worker u has been blacklisted.
func (s *State) Blacklisted(u int) bool { return s.black[u] }

// Reputation returns worker u's current reputation in [0, 1].
func (s *State) Reputation(u int) float64 { return s.rep[u] }

// MeanReputation returns the fleet-wide mean reputation (blacklisted
// workers included — their collapsed scores are the signal).
func (s *State) MeanReputation() float64 {
	sum := 0.0
	for _, r := range s.rep {
		sum += r
	}
	return sum / float64(s.k)
}

// Flagged returns the workers flagged in the last Observe, ascending.
// The slice is reused by the next Observe.
func (s *State) Flagged() []int { return s.flaggedList }

// NewlyBlacklisted returns the workers blacklisted by the last Observe,
// ascending. The slice is reused by the next Observe.
func (s *State) NewlyBlacklisted() []int { return s.newBlack }

// Blacklist returns every blacklisted worker in blacklisting order.
func (s *State) Blacklist() []int { return s.blackList }

// BlacklistCount returns the number of blacklisted workers.
func (s *State) BlacklistCount() int { return len(s.blackList) }

// ZCap winsorizes the per-round robust z-scores before they enter the
// history rings. MAD-based scores are unbounded when the fleet is
// tight — right after a blacklist shrinks the fleet, the MAD collapses
// and an honest worker's ordinary deviation can score in the hundreds —
// and one such spike would otherwise dominate its window mean for
// Window rounds: enough consecutive flags to decay an honest
// reputation below the blacklist floor. Capped at ZCap, a single spike
// contributes at most ZCap/Window ≈ 1.25 to a full window's mean, under
// both default detector thresholds, while a persistent attacker still
// scores ZCap ≫ threshold every round and is flagged on the same
// rounds as before. Thresholds above ZCap are unreachable.
const ZCap = 10

// robustZ writes median/MAD z-scores of vals into out[:len(vals)]: the
// deviation from the median, scaled by 1.4826 × the median absolute
// deviation (the consistency constant that makes the MAD estimate σ
// for Gaussian data), winsorized to [−ZCap, ZCap]. A degenerate scale
// (all values equal) yields zero scores rather than infinities, so
// unanimous fleets never flag.
func (s *State) robustZ(vals, out []float64) {
	sc := s.featScratch[:0]
	sc = append(sc, vals...)
	med := medianInPlace(sc)
	sc = sc[:0]
	for _, v := range vals {
		sc = append(sc, math.Abs(v-med))
	}
	mad := 1.4826 * medianInPlace(sc)
	s.featScratch = sc
	for i, v := range vals {
		if mad < 1e-12 {
			out[i] = 0
		} else {
			out[i] = math.Max(-ZCap, math.Min(ZCap, (v-med)/mad))
		}
	}
}

// medianInPlace sorts vals and returns the median (mean of the two
// middle values for even counts). The caller owns vals as scratch.
func medianInPlace(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return 0.5 * (vals[n/2-1] + vals[n/2])
}

// norm returns the Euclidean norm of v.
func norm(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// dot returns the inner product of a and b.
func dot(a, b []float64) float64 {
	sum := 0.0
	for i, x := range a {
		sum += x * b[i]
	}
	return sum
}
