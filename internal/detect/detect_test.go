package detect

import (
	"math"
	"slices"
	"testing"
)

// jitter is a deterministic hash-based perturbation in [-0.5, 0.5):
// varying per worker, coordinate, and round so the honest fleet spreads
// like noise rather than splitting into structured subgroups a robust
// z-score would flag once the scale tightens.
func jitter(u, j, round int) float64 {
	x := uint64(u)*2654435761 ^ uint64(j)*40503 ^ uint64(round)*9176
	x ^= x >> 13
	x *= 0x2545F4914F6CDD1D
	x ^= x >> 35
	return float64(x%1024)/1024 - 0.5
}

// fill sums a synthetic report for worker u into the state: a shared
// base direction with a small noisy perturbation, so the honest fleet
// is tightly aligned but not degenerate (a zero MAD would zero every
// z-score and mask attackers).
func fill(s *State, u, dim, round int, scale float64) {
	r := s.Report(u)
	for j := 0; j < dim; j++ {
		base := 1.0 + 0.1*float64(j)
		r[j] = scale * (base + 0.05*jitter(u, j, round))
	}
}

// TestDefaultsApplied: zero Params normalize to the documented defaults.
func TestDefaultsApplied(t *testing.T) {
	s := NewState(4, 2, Params{})
	p := s.Policy()
	if p.Window != DefaultWindow || p.MinRounds != DefaultMinRounds ||
		p.Decay != DefaultDecay || p.BlacklistBelow != DefaultBlacklistBelow {
		t.Fatalf("defaults not applied: %+v", p)
	}
	if s.K() != 4 {
		t.Fatalf("K() = %d, want 4", s.K())
	}
}

// TestIsNone: nil and None are the detection-free control; real
// detectors are not.
func TestIsNone(t *testing.T) {
	if !IsNone(nil) || !IsNone(None{}) {
		t.Error("nil and None{} must both be the detection-free control")
	}
	if IsNone(ZScore{}) || IsNone(KMeans{}) {
		t.Error("active detectors misreported as none")
	}
}

// TestUnanimousFleetNeverFlags: when every live worker reports the
// identical gradient, the MAD degenerates and the robust z-scores are
// defined to be zero — neither detector flags anybody and every
// reputation stays exactly 1.
func TestUnanimousFleetNeverFlags(t *testing.T) {
	const k, dim = 8, 4
	for _, det := range []Detector{ZScore{}, KMeans{}} {
		s := NewState(k, dim, Params{})
		for round := 0; round < 12; round++ {
			s.BeginRound()
			for u := 0; u < k; u++ {
				r := s.Report(u)
				for j := range r {
					r[j] = 1.5
				}
			}
			s.Observe(det)
			if len(s.Flagged()) != 0 {
				t.Fatalf("%s: round %d flagged %v on a unanimous fleet", det.Name(), round, s.Flagged())
			}
		}
		if s.BlacklistCount() != 0 {
			t.Errorf("%s: unanimous fleet blacklisted %v", det.Name(), s.Blacklist())
		}
		if got := s.MeanReputation(); got != 1 {
			t.Errorf("%s: mean reputation %v, want exactly 1", det.Name(), got)
		}
	}
}

// TestNoneNeverFlags: the control detector ignores even a wildly
// divergent worker.
func TestNoneNeverFlags(t *testing.T) {
	const k, dim = 6, 3
	s := NewState(k, dim, Params{})
	for round := 0; round < 15; round++ {
		s.BeginRound()
		for u := 0; u < k; u++ {
			scale := 1.0
			if u == 2 {
				scale = -50
			}
			fill(s, u, dim, round, scale)
		}
		s.Observe(None{})
	}
	if len(s.Flagged()) != 0 || s.BlacklistCount() != 0 {
		t.Errorf("None flagged %v / blacklisted %v", s.Flagged(), s.Blacklist())
	}
	if got := s.MeanReputation(); got != 1 {
		t.Errorf("mean reputation %v under None, want 1", got)
	}
}

// TestZScoreBlacklistsPersistentOutlier: a worker whose report is the
// fleet's reversed-and-scaled gradient every round is flagged from the
// first observation, but blacklisting waits for both the MinRounds
// gate and the reputation EMA to sink below the floor — with the
// defaults (Decay 0.9, floor 0.5, MinRounds 10) that is exactly the
// 10th observation. No honest worker loses any reputation.
func TestZScoreBlacklistsPersistentOutlier(t *testing.T) {
	const k, dim, byz = 8, 4, 3
	s := NewState(k, dim, Params{})
	blackAt := -1
	for round := 0; round < 12; round++ {
		s.BeginRound()
		for u := 0; u < k; u++ {
			scale := 1.0
			if u == byz {
				scale = -10
			}
			fill(s, u, dim, round, scale)
		}
		s.Observe(ZScore{})
		if !s.Blacklisted(byz) && !slices.Contains(s.Flagged(), byz) {
			t.Errorf("round %d: persistent outlier not flagged (%v)", round, s.Flagged())
		}
		for _, u := range s.Flagged() {
			if u != byz {
				t.Errorf("round %d: honest worker %d flagged", round, u)
			}
		}
		if nb := s.NewlyBlacklisted(); len(nb) > 0 {
			if blackAt != -1 || len(nb) != 1 || nb[0] != byz {
				t.Fatalf("round %d: unexpected blacklist %v (first at %d)", round, nb, blackAt)
			}
			blackAt = round
		}
	}
	if blackAt != 9 {
		t.Errorf("blacklisted at round %d, want 9 (MinRounds 10, rep 0.9^10 < 0.5)", blackAt)
	}
	if !s.Blacklisted(byz) || s.BlacklistCount() != 1 {
		t.Errorf("blacklist = %v, want exactly [%d]", s.Blacklist(), byz)
	}
	for u := 0; u < k; u++ {
		if u != byz && s.Reputation(u) != 1 {
			t.Errorf("honest worker %d reputation %v, want 1", u, s.Reputation(u))
		}
	}
	if rep := s.Reputation(byz); rep >= 0.5 {
		t.Errorf("outlier reputation %v, want < 0.5", rep)
	}
}

// flagWorkers is a test stub that flags a fixed set of ids whenever
// they are live, isolating the reputation/blacklist state machine from
// any real detector's statistics.
type flagWorkers []int

func (flagWorkers) Name() string { return "stub" }

func (f flagWorkers) Flag(st *State, live []int, flags []bool) {
	for _, u := range f {
		if slices.Contains(live, u) {
			flags[u] = true
		}
	}
}

// TestBlacklistedWorkerLeavesTheFleet: once blacklisted, a worker's
// reports are excluded from the live set — it is never observed, never
// re-flagged, and never blacklisted twice.
func TestBlacklistedWorkerLeavesTheFleet(t *testing.T) {
	const k, dim, byz = 8, 4, 1
	// Decay 0.5 sinks a flagged reputation below the 0.5 floor in two
	// observations; MinRounds 3 gates the eviction to observation 3.
	s := NewState(k, dim, Params{MinRounds: 3, Decay: 0.5})
	for round := 0; round < 10; round++ {
		s.BeginRound()
		for u := 0; u < k; u++ {
			fill(s, u, dim, round, 1.0)
		}
		s.Observe(flagWorkers{byz})
		if want := round >= 2; s.Blacklisted(byz) != want {
			t.Errorf("round %d: Blacklisted(%d) = %v, want %v", round, byz, s.Blacklisted(byz), want)
		}
	}
	if s.BlacklistCount() != 1 {
		t.Fatalf("blacklist %v, want exactly [%d]", s.Blacklist(), byz)
	}
	if slices.Contains(s.Flagged(), byz) {
		t.Error("blacklisted worker still observed and flagged")
	}
	rounds := s.rounds[byz]
	s.BeginRound()
	for u := 0; u < k; u++ {
		fill(s, u, dim, 99, 1.0)
	}
	s.Observe(flagWorkers{byz})
	if s.rounds[byz] != rounds {
		t.Error("blacklisted worker's report entered the observation round")
	}
}

// TestKMeansFlagsPlantedMinority: two colluding workers with sustained
// outlier windows form the minority cluster and are both flagged; the
// honest majority is untouched. With fewer than 4 live points the
// detector abstains entirely.
func TestKMeansFlagsPlantedMinority(t *testing.T) {
	const k, dim = 10, 4
	byz := map[int]bool{2: true, 5: true}
	s := NewState(k, dim, Params{})
	for round := 0; round < 8; round++ {
		s.BeginRound()
		for u := 0; u < k; u++ {
			scale := 1.0
			if byz[u] {
				scale = -8
			}
			fill(s, u, dim, round, scale)
		}
		s.Observe(KMeans{})
	}
	flagged := s.Flagged()
	if len(flagged) != len(byz) {
		t.Fatalf("flagged %v, want the planted coalition {2, 5}", flagged)
	}
	for _, u := range flagged {
		if !byz[u] {
			t.Errorf("honest worker %d flagged by the cluster detector", u)
		}
	}

	// Too few live points: abstain.
	small := NewState(3, dim, Params{})
	small.BeginRound()
	for u := 0; u < 3; u++ {
		scale := 1.0
		if u == 0 {
			scale = -8
		}
		fill(small, u, dim, 0, scale)
	}
	small.Observe(KMeans{})
	if len(small.Flagged()) != 0 {
		t.Errorf("cluster detector flagged %v with only 3 live points", small.Flagged())
	}
}

// TestReportReturnsZeroedRow: Report hands back a cleared buffer even
// after a previous round filled it, and absent workers stay out of the
// live set.
func TestReportReturnsZeroedRow(t *testing.T) {
	const k, dim = 4, 3
	s := NewState(k, dim, Params{})
	s.BeginRound()
	for u := 0; u < k; u++ {
		fill(s, u, dim, 0, 2.0)
	}
	s.Observe(ZScore{})

	s.BeginRound()
	r := s.Report(0)
	for j, v := range r {
		if v != 0 {
			t.Fatalf("Report(0)[%d] = %v, want zeroed scratch", j, v)
		}
	}
	for j := range r {
		r[j] = 1
	}
	s.Report(2)
	s.Observe(ZScore{})
	want := []int{0, 2}
	if !slices.Equal(s.live, want) {
		t.Errorf("live set %v, want %v (absent workers must not be observed)", s.live, want)
	}
	if s.WindowLen(1) != 1 {
		t.Errorf("absent worker 1 window grew to %d, want 1", s.WindowLen(1))
	}
}

// TestWindowScoreTracksRing: the window score is the mean of
// max(|NormZ|, |CosZ|) over the ring and is zero before any
// observation.
func TestWindowScoreTracksRing(t *testing.T) {
	s := NewState(2, 2, Params{Window: 4})
	if s.WindowScore(0) != 0 {
		t.Fatal("window score nonzero before any observation")
	}
	s.push(0, Sample{NormZ: 1, CosZ: -3})
	s.push(0, Sample{NormZ: -2, CosZ: 0})
	want := (3.0 + 2.0) / 2
	if got := s.WindowScore(0); math.Abs(got-want) > 1e-15 {
		t.Errorf("window score %v, want %v", got, want)
	}
	nz, cz := s.WindowMeans(0)
	if math.Abs(nz-1.5) > 1e-15 || math.Abs(cz-1.5) > 1e-15 {
		t.Errorf("window means (%v, %v), want (1.5, 1.5)", nz, cz)
	}
}
