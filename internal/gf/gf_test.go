package gf

import (
	"testing"
	"testing/quick"
)

func TestIsPrimePower(t *testing.T) {
	cases := []struct {
		n       int
		p, k    int
		isPower bool
	}{
		{2, 2, 1, true},
		{3, 3, 1, true},
		{4, 2, 2, true},
		{5, 5, 1, true},
		{6, 0, 0, false},
		{7, 7, 1, true},
		{8, 2, 3, true},
		{9, 3, 2, true},
		{10, 0, 0, false},
		{12, 0, 0, false},
		{16, 2, 4, true},
		{25, 5, 2, true},
		{27, 3, 3, true},
		{49, 7, 2, true},
		{121, 11, 2, true},
		{1, 0, 0, false},
		{0, 0, 0, false},
		{-5, 0, 0, false},
	}
	for _, c := range cases {
		p, k, ok := IsPrimePower(c.n)
		if ok != c.isPower {
			t.Errorf("IsPrimePower(%d) ok = %v, want %v", c.n, ok, c.isPower)
			continue
		}
		if ok && (p != c.p || k != c.k) {
			t.Errorf("IsPrimePower(%d) = (%d,%d), want (%d,%d)", c.n, p, k, c.p, c.k)
		}
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true, 13: true,
		4: false, 6: false, 9: false, 1: false, 0: false, -3: false, 25: false, 29: true}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNewRejectsNonPrimePower(t *testing.T) {
	for _, n := range []int{0, 1, 6, 10, 12, 15, 18, 20} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) succeeded, want error", n)
		}
	}
}

func TestMustNewPanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(6) did not panic")
		}
	}()
	MustNew(6)
}

// fieldAxioms verifies the full set of field axioms by enumeration.
func fieldAxioms(t *testing.T, f *Field) {
	t.Helper()
	n := f.Order()
	for a := 0; a < n; a++ {
		if f.Add(a, 0) != a {
			t.Fatalf("order %d: %d + 0 != %d", n, a, a)
		}
		if f.Mul(a, 1) != a {
			t.Fatalf("order %d: %d * 1 != %d", n, a, a)
		}
		if f.Add(a, f.Neg(a)) != 0 {
			t.Fatalf("order %d: %d + (-%d) != 0", n, a, a)
		}
		if a != 0 {
			if got := f.Mul(a, f.Inv(a)); got != 1 {
				t.Fatalf("order %d: %d * inv(%d) = %d, want 1", n, a, a, got)
			}
		}
		for b := 0; b < n; b++ {
			if f.Add(a, b) != f.Add(b, a) {
				t.Fatalf("order %d: add not commutative at (%d,%d)", n, a, b)
			}
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("order %d: mul not commutative at (%d,%d)", n, a, b)
			}
			if f.Sub(a, b) != f.Add(a, f.Neg(b)) {
				t.Fatalf("order %d: sub mismatch at (%d,%d)", n, a, b)
			}
			for c := 0; c < n; c++ {
				if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
					t.Fatalf("order %d: add not associative", n)
				}
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("order %d: mul not associative", n)
				}
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("order %d: distributivity fails at (%d,%d,%d)", n, a, b, c)
				}
			}
		}
	}
}

func TestFieldAxiomsPrime(t *testing.T) {
	for _, n := range []int{2, 3, 5, 7, 11} {
		fieldAxioms(t, MustNew(n))
	}
}

func TestFieldAxiomsExtension(t *testing.T) {
	for _, n := range []int{4, 8, 9} {
		fieldAxioms(t, MustNew(n))
	}
}

func TestExtensionFieldLargerOrders(t *testing.T) {
	// Spot-check inverses and cancellation in GF(16), GF(25), GF(27).
	for _, n := range []int{16, 25, 27} {
		f := MustNew(n)
		for a := 1; a < n; a++ {
			inv := f.Inv(a)
			if f.Mul(a, inv) != 1 {
				t.Errorf("GF(%d): a*inv(a) != 1 for a=%d", n, a)
			}
		}
		// a*b == a*c with a != 0 implies b == c (cancellation).
		for a := 1; a < n; a++ {
			seen := make(map[int]bool)
			for b := 0; b < n; b++ {
				prod := f.Mul(a, b)
				if seen[prod] {
					t.Fatalf("GF(%d): row %d of multiplication table has duplicates", n, a)
				}
				seen[prod] = true
			}
		}
	}
}

func TestMulNoZeroDivisors(t *testing.T) {
	for _, n := range []int{5, 8, 9, 25} {
		f := MustNew(n)
		for a := 1; a < n; a++ {
			for b := 1; b < n; b++ {
				if f.Mul(a, b) == 0 {
					t.Fatalf("GF(%d): zero divisor %d*%d", n, a, b)
				}
			}
		}
	}
}

func TestPow(t *testing.T) {
	f := MustNew(7)
	if got := f.Pow(3, 0); got != 1 {
		t.Errorf("3^0 = %d, want 1", got)
	}
	if got := f.Pow(3, 6); got != 1 { // Fermat
		t.Errorf("3^6 mod 7 = %d, want 1", got)
	}
	if got := f.Pow(2, 5); got != 32%7 {
		t.Errorf("2^5 mod 7 = %d, want %d", got, 32%7)
	}
	// Lagrange in an extension field: a^(order-1) == 1 for a != 0.
	f9 := MustNew(9)
	for a := 1; a < 9; a++ {
		if f9.Pow(a, 8) != 1 {
			t.Errorf("GF(9): %d^8 != 1", a)
		}
	}
}

func TestPowPanicsOnNegativeExponent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow with negative exponent did not panic")
		}
	}()
	MustNew(5).Pow(2, -1)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	MustNew(5).Inv(0)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with out-of-range element did not panic")
		}
	}()
	MustNew(5).Add(5, 0)
}

func TestElements(t *testing.T) {
	f := MustNew(9)
	elems := f.Elements()
	if len(elems) != 9 {
		t.Fatalf("Elements() length = %d, want 9", len(elems))
	}
	for i, e := range elems {
		if e != i {
			t.Errorf("Elements()[%d] = %d, want %d", i, e, i)
		}
	}
}

func TestAccessors(t *testing.T) {
	f := MustNew(25)
	if f.Order() != 25 || f.Char() != 5 || f.Degree() != 2 {
		t.Errorf("GF(25) accessors = (%d,%d,%d), want (25,5,2)", f.Order(), f.Char(), f.Degree())
	}
	irr := f.Irreducible()
	if len(irr) != 3 || irr[2] != 1 {
		t.Errorf("GF(25) irreducible = %v, want monic degree 2", irr)
	}
	// Mutating the returned slice must not affect the field.
	irr[0] = 99
	if f.Irreducible()[0] == 99 {
		t.Error("Irreducible() returned internal slice")
	}
	if MustNew(7).Irreducible() != nil {
		t.Error("prime field Irreducible() != nil")
	}
}

func TestIrreduciblePolynomialIsIrreducible(t *testing.T) {
	for _, n := range []int{4, 8, 9, 16, 25, 27, 49} {
		f := MustNew(n)
		if !isIrreducible(f.irreducible, f.p) {
			t.Errorf("GF(%d): stored polynomial %v is reducible", n, f.irreducible)
		}
	}
}

func TestPolyHelpers(t *testing.T) {
	p := 5
	a := []int{1, 2, 3} // 3x^2+2x+1
	b := []int{4, 0, 1} // x^2+4
	sum := polyAdd(a, b, p)
	want := []int{0, 2, 4}
	for i := range want {
		if sum[i] != want[i] {
			t.Fatalf("polyAdd = %v, want %v", sum, want)
		}
	}
	prod := polyMul(a, b, p)
	// (3x^2+2x+1)(x^2+4) = 3x^4+2x^3+13x^2+8x+4 -> mod 5: 3x^4+2x^3+3x^2+3x+4
	wantProd := []int{4, 3, 3, 2, 3}
	if len(prod) != len(wantProd) {
		t.Fatalf("polyMul length = %d, want %d", len(prod), len(wantProd))
	}
	for i := range wantProd {
		if prod[i] != wantProd[i] {
			t.Fatalf("polyMul = %v, want %v", prod, wantProd)
		}
	}
	if polyDeg(nil) != -1 || polyDeg([]int{0, 0}) != -1 || polyDeg([]int{1, 0, 2}) != 2 {
		t.Error("polyDeg wrong")
	}
	if polyEval([]int{1, 2, 3}, 2, 5) != (1+4+12)%5 {
		t.Error("polyEval wrong")
	}
}

func TestPolyModReducesDegree(t *testing.T) {
	m := []int{2, 1, 1} // x^2+x+2 over GF(3), irreducible
	if !isIrreducible(m, 3) {
		t.Fatal("test modulus not irreducible")
	}
	a := []int{1, 2, 2, 1} // degree 3
	r := polyMod(a, m, 3)
	if polyDeg(r) >= 2 {
		t.Errorf("polyMod degree = %d, want < 2", polyDeg(r))
	}
}

// Property-based: (a+b) and (a*b) stay in range, and Add/Mul match the
// table-free recomputation through decode/encode for GF(25).
func TestQuickFieldClosure(t *testing.T) {
	f := MustNew(25)
	prop := func(x, y uint8) bool {
		a := int(x) % 25
		b := int(y) % 25
		s := f.Add(a, b)
		m := f.Mul(a, b)
		if s < 0 || s >= 25 || m < 0 || m >= 25 {
			return false
		}
		// a + b - b == a and (a*b)/b == a for b != 0.
		if f.Sub(s, b) != a {
			return false
		}
		if b != 0 && f.Div(m, b) != a {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property-based: Frobenius endomorphism (a+b)^p == a^p + b^p in GF(p^k).
func TestQuickFrobenius(t *testing.T) {
	f := MustNew(27)
	p := f.Char()
	prop := func(x, y uint8) bool {
		a := int(x) % 27
		b := int(y) % 27
		lhs := f.Pow(f.Add(a, b), p)
		rhs := f.Add(f.Pow(a, p), f.Pow(b, p))
		return lhs == rhs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulPrime(b *testing.B) {
	f := MustNew(101)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Mul(i%101, (i+37)%101)
	}
}

func BenchmarkMulExtension(b *testing.B) {
	f := MustNew(49)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Mul(i%49, (i+13)%49)
	}
}
