// Package gf implements arithmetic over finite (Galois) fields GF(p^k).
//
// The MOLS-based task assignment of ByzShield (Sec. 4.1 of the paper)
// constructs l-1 mutually orthogonal Latin squares of degree l via
// L_alpha(i, j) = alpha*i + j evaluated over the finite field F_l, which
// requires l to be a prime power. This package provides the field
// arithmetic for both the prime case GF(p) (fast modular arithmetic) and
// the prime-power case GF(p^k) (polynomial arithmetic modulo an
// irreducible polynomial, with precomputed multiplication and inverse
// tables since the fields used for assignment are small).
//
// Elements are represented as integers in [0, p^k). For extension fields
// the integer n encodes the polynomial whose coefficient of x^i is the
// i-th base-p digit of n. Element 0 is the additive identity and element
// 1 is the multiplicative identity under this encoding.
package gf

import (
	"errors"
	"fmt"
)

// Field is a finite field GF(p^k) with elements encoded as integers in
// [0, Order()). The zero value is not usable; construct fields with New.
type Field struct {
	p     int // characteristic (prime)
	k     int // extension degree
	order int // p^k
	// irreducible holds the coefficients (degree 0..k) of the monic
	// irreducible polynomial used to build the extension; nil when k == 1.
	irreducible []int
	// addTab and mulTab are order*order lookup tables, flattened
	// row-major. For GF(p) they are nil and arithmetic is done modularly.
	addTab []int
	mulTab []int
	invTab []int // multiplicative inverses; invTab[0] unused
	negTab []int // additive inverses
}

// ErrNotPrimePower reports that the requested order is not a prime power.
var ErrNotPrimePower = errors.New("gf: order is not a prime power")

// New constructs GF(order). The order must be a prime power p^k with
// order >= 2; otherwise ErrNotPrimePower is returned.
func New(order int) (*Field, error) {
	if order < 2 {
		return nil, fmt.Errorf("gf: order %d < 2: %w", order, ErrNotPrimePower)
	}
	p, k, ok := factorPrimePower(order)
	if !ok {
		return nil, fmt.Errorf("gf: order %d: %w", order, ErrNotPrimePower)
	}
	f := &Field{p: p, k: k, order: order}
	if k == 1 {
		f.buildPrimeTables()
		return f, nil
	}
	irr, err := findIrreducible(p, k)
	if err != nil {
		return nil, err
	}
	f.irreducible = irr
	f.buildExtensionTables()
	return f, nil
}

// MustNew is like New but panics on error. Intended for constructing
// fields from orders already known to be prime powers (e.g. in tests and
// assignment constructors that validated their parameters).
func MustNew(order int) *Field {
	f, err := New(order)
	if err != nil {
		panic(err)
	}
	return f
}

// IsPrimePower reports whether n is a prime power p^k (k >= 1) and, if
// so, returns the prime and the exponent.
func IsPrimePower(n int) (p, k int, ok bool) {
	return factorPrimePower(n)
}

// IsPrime reports whether n is prime.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// Order returns the number of elements p^k of the field.
func (f *Field) Order() int { return f.order }

// Char returns the characteristic p of the field.
func (f *Field) Char() int { return f.p }

// Degree returns the extension degree k of the field over GF(p).
func (f *Field) Degree() int { return f.k }

// Irreducible returns a copy of the coefficients (constant term first)
// of the irreducible polynomial defining the extension, or nil for a
// prime field.
func (f *Field) Irreducible() []int {
	if f.irreducible == nil {
		return nil
	}
	out := make([]int, len(f.irreducible))
	copy(out, f.irreducible)
	return out
}

// valid panics if a is not a field element.
func (f *Field) valid(a int) {
	if a < 0 || a >= f.order {
		panic(fmt.Sprintf("gf: element %d out of range [0,%d)", a, f.order))
	}
}

// Add returns a + b in the field.
func (f *Field) Add(a, b int) int {
	f.valid(a)
	f.valid(b)
	if f.addTab != nil {
		return f.addTab[a*f.order+b]
	}
	return (a + b) % f.p
}

// Sub returns a - b in the field.
func (f *Field) Sub(a, b int) int {
	f.valid(a)
	f.valid(b)
	return f.Add(a, f.Neg(b))
}

// Neg returns the additive inverse of a.
func (f *Field) Neg(a int) int {
	f.valid(a)
	if f.negTab != nil {
		return f.negTab[a]
	}
	return (f.p - a) % f.p
}

// Mul returns a * b in the field.
func (f *Field) Mul(a, b int) int {
	f.valid(a)
	f.valid(b)
	if f.mulTab != nil {
		return f.mulTab[a*f.order+b]
	}
	return (a * b) % f.p
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func (f *Field) Inv(a int) int {
	f.valid(a)
	if a == 0 {
		panic("gf: inverse of zero")
	}
	if f.invTab != nil {
		return f.invTab[a]
	}
	// Extended Euclid over the prime field.
	return modInverse(a, f.p)
}

// Div returns a / b in the field. It panics if b == 0.
func (f *Field) Div(a, b int) int {
	return f.Mul(a, f.Inv(b))
}

// Pow returns a^e for e >= 0 (a^0 == 1, including 0^0 by convention).
func (f *Field) Pow(a, e int) int {
	f.valid(a)
	if e < 0 {
		panic("gf: negative exponent")
	}
	result := 1
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// Elements returns all field elements in encoding order 0..order-1.
func (f *Field) Elements() []int {
	out := make([]int, f.order)
	for i := range out {
		out[i] = i
	}
	return out
}

// buildPrimeTables precomputes negation and inverse tables for GF(p).
// Addition and multiplication stay modular (no quadratic tables needed).
func (f *Field) buildPrimeTables() {
	f.negTab = make([]int, f.order)
	f.invTab = make([]int, f.order)
	for a := 0; a < f.order; a++ {
		f.negTab[a] = (f.p - a) % f.p
		if a != 0 {
			f.invTab[a] = modInverse(a, f.p)
		}
	}
}

// buildExtensionTables precomputes full operation tables for GF(p^k).
func (f *Field) buildExtensionTables() {
	n := f.order
	f.addTab = make([]int, n*n)
	f.mulTab = make([]int, n*n)
	f.negTab = make([]int, n)
	f.invTab = make([]int, n)
	for a := 0; a < n; a++ {
		pa := f.decode(a)
		f.negTab[a] = f.encode(polyNeg(pa, f.p))
		for b := 0; b < n; b++ {
			pb := f.decode(b)
			f.addTab[a*n+b] = f.encode(polyAdd(pa, pb, f.p))
			prod := polyMulMod(pa, pb, f.irreducible, f.p)
			f.mulTab[a*n+b] = f.encode(prod)
		}
	}
	// Inverses by scanning the multiplication table rows; the field is
	// small so O(n^2) is fine and avoids a polynomial extended Euclid.
	for a := 1; a < n; a++ {
		for b := 1; b < n; b++ {
			if f.mulTab[a*n+b] == 1 {
				f.invTab[a] = b
				break
			}
		}
	}
}

// decode expands element a into base-p coefficients, lowest degree first.
func (f *Field) decode(a int) []int {
	coeffs := make([]int, f.k)
	for i := 0; i < f.k; i++ {
		coeffs[i] = a % f.p
		a /= f.p
	}
	return coeffs
}

// encode packs base-p coefficients back into an integer element.
func (f *Field) encode(coeffs []int) int {
	a := 0
	for i := len(coeffs) - 1; i >= 0; i-- {
		a = a*f.p + coeffs[i]
	}
	return a
}

// factorPrimePower returns (p, k, true) when n == p^k for prime p.
func factorPrimePower(n int) (int, int, bool) {
	if n < 2 {
		return 0, 0, false
	}
	for p := 2; p*p <= n; p++ {
		if n%p != 0 {
			continue
		}
		k := 0
		m := n
		for m%p == 0 {
			m /= p
			k++
		}
		if m == 1 {
			return p, k, true
		}
		return 0, 0, false
	}
	// n itself is prime.
	return n, 1, true
}

// modInverse returns the inverse of a modulo prime p via extended Euclid.
func modInverse(a, p int) int {
	t, newT := 0, 1
	r, newR := p, a%p
	for newR != 0 {
		quot := r / newR
		t, newT = newT, t-quot*newT
		r, newR = newR, r-quot*newR
	}
	if r != 1 {
		panic(fmt.Sprintf("gf: %d not invertible mod %d", a, p))
	}
	if t < 0 {
		t += p
	}
	return t
}
