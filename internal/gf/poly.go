package gf

import "fmt"

// Polynomial helpers over GF(p). Polynomials are coefficient slices with
// the constant term first; trailing zeros are permitted (callers trim
// with polyTrim when a canonical degree is needed).

// polyTrim removes trailing zero coefficients. The zero polynomial is
// returned as an empty slice.
func polyTrim(a []int) []int {
	n := len(a)
	for n > 0 && a[n-1] == 0 {
		n--
	}
	return a[:n]
}

// polyDeg returns the degree of a, with -1 for the zero polynomial.
func polyDeg(a []int) int {
	return len(polyTrim(a)) - 1
}

// polyAdd returns a + b coefficient-wise modulo p.
func polyAdd(a, b []int, p int) []int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		var av, bv int
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		out[i] = (av + bv) % p
	}
	return out
}

// polyNeg returns -a coefficient-wise modulo p.
func polyNeg(a []int, p int) []int {
	out := make([]int, len(a))
	for i, c := range a {
		out[i] = (p - c) % p
	}
	return out
}

// polyMul returns a * b over GF(p) without reduction.
func polyMul(a, b []int, p int) []int {
	a, b = polyTrim(a), polyTrim(b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]int, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] = (out[i+j] + av*bv) % p
		}
	}
	return out
}

// polyMod reduces a modulo the monic polynomial m over GF(p).
func polyMod(a, m []int, p int) []int {
	m = polyTrim(m)
	if len(m) == 0 {
		panic("gf: polynomial modulus is zero")
	}
	if m[len(m)-1] != 1 {
		panic("gf: polynomial modulus must be monic")
	}
	rem := append([]int(nil), a...)
	rem = polyTrim(rem)
	dm := len(m) - 1
	for len(rem)-1 >= dm && len(rem) > 0 {
		lead := rem[len(rem)-1]
		shift := len(rem) - 1 - dm
		// rem -= lead * x^shift * m
		for i, mc := range m {
			idx := shift + i
			rem[idx] = ((rem[idx]-lead*mc)%p + p*p) % p
		}
		rem = polyTrim(rem)
	}
	return rem
}

// polyMulMod returns a*b mod m over GF(p).
func polyMulMod(a, b, m []int, p int) []int {
	return polyMod(polyMul(a, b, p), m, p)
}

// polyEval evaluates polynomial a at point x over GF(p) (Horner).
func polyEval(a []int, x, p int) int {
	v := 0
	for i := len(a) - 1; i >= 0; i-- {
		v = (v*x + a[i]) % p
	}
	return v
}

// findIrreducible searches for a monic irreducible polynomial of degree k
// over GF(p) by enumeration. For the small fields used in assignment
// construction (order at most a few hundred) brute force is instant.
func findIrreducible(p, k int) ([]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("gf: extension degree %d < 2", k)
	}
	// Enumerate the p^k monic candidates x^k + c_{k-1} x^{k-1} + ... + c_0.
	total := 1
	for i := 0; i < k; i++ {
		total *= p
	}
	for n := 0; n < total; n++ {
		cand := make([]int, k+1)
		v := n
		for i := 0; i < k; i++ {
			cand[i] = v % p
			v /= p
		}
		cand[k] = 1
		if isIrreducible(cand, p) {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("gf: no irreducible polynomial of degree %d over GF(%d)", k, p)
}

// isIrreducible tests irreducibility of monic polynomial a over GF(p) by
// trial division with all monic polynomials of degree 1..deg(a)/2.
func isIrreducible(a []int, p int) bool {
	da := polyDeg(a)
	if da < 1 {
		return false
	}
	if da == 1 {
		return true
	}
	// No roots (degree-1 factors).
	for x := 0; x < p; x++ {
		if polyEval(a, x, p) == 0 {
			return false
		}
	}
	// Trial division by higher-degree monic polynomials.
	for d := 2; d <= da/2; d++ {
		count := 1
		for i := 0; i < d; i++ {
			count *= p
		}
		for n := 0; n < count; n++ {
			div := make([]int, d+1)
			v := n
			for i := 0; i < d; i++ {
				div[i] = v % p
				v /= p
			}
			div[d] = 1
			if len(polyMod(a, div, p)) == 0 {
				return false
			}
		}
	}
	return true
}
