package draco

import (
	"math"
	"testing"
	"testing/quick"

	"byzshield/internal/distort"
)

// makeReturns produces worker reports for a scheme: honest workers
// return truth[v]; byzantine workers return the adversarial vector.
func makeReturns(s *Scheme, truth [][]float64, byz map[int]bool, adversarial []float64) []map[int][]float64 {
	a := s.Assignment
	out := make([]map[int][]float64, a.K)
	for u := 0; u < a.K; u++ {
		m := make(map[int][]float64)
		for _, v := range a.WorkerFiles(u) {
			if byz[u] {
				m[v] = adversarial
			} else {
				m[v] = truth[v]
			}
		}
		out[u] = m
	}
	return out
}

func makeTruth(f, d int) [][]float64 {
	truth := make([][]float64, f)
	for v := range truth {
		row := make([]float64, d)
		for i := range row {
			row[i] = float64(v*10 + i)
		}
		truth[v] = row
	}
	return truth
}

func TestFractionalConstruction(t *testing.T) {
	s, err := NewFractional(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Assignment.K != 15 || s.Assignment.F != 5 || s.Assignment.R != 3 {
		t.Errorf("params: %v", s.Assignment)
	}
	if _, err := NewFractional(10, 3); err == nil {
		t.Error("r∤K accepted")
	}
}

func TestCyclicConstruction(t *testing.T) {
	s, err := NewCyclic(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Assignment
	if a.K != 7 || a.F != 7 || a.L != 3 || a.R != 3 {
		t.Errorf("params: %v", a)
	}
	// Worker 5 holds files 5, 6, 0 (cyclic wraparound).
	files := a.WorkerFiles(5)
	want := []int{0, 5, 6}
	for i := range want {
		if files[i] != want[i] {
			t.Fatalf("worker 5 files = %v, want %v", files, want)
		}
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := NewCyclic(5, 6); err == nil {
		t.Error("r > K accepted")
	}
}

func TestFeasibilityBoundary(t *testing.T) {
	s, err := NewCyclic(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Feasible(2); err != nil { // r=5 >= 2·2+1
		t.Errorf("q=2 should be feasible: %v", err)
	}
	if err := s.Feasible(3); err == nil { // r=5 < 2·3+1=7
		t.Error("q=3 should be infeasible")
	}
}

func TestExactRecoveryWithinGuarantee(t *testing.T) {
	// r = 5, q = 2: exact recovery guaranteed for ANY Byzantine pair.
	s, err := NewCyclic(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Feasible(2); err != nil {
		t.Fatal(err)
	}
	truth := makeTruth(s.Assignment.F, 3)
	adversarial := []float64{-999, -999, -999}
	for b1 := 0; b1 < 10; b1++ {
		for b2 := b1 + 1; b2 < 10; b2++ {
			byz := map[int]bool{b1: true, b2: true}
			files, exact, err := s.Decode(makeReturns(s, truth, byz, adversarial), truth)
			if err != nil {
				t.Fatal(err)
			}
			if !exact {
				t.Fatalf("byz={%d,%d}: recovery not exact", b1, b2)
			}
			for v, f := range files {
				if math.Abs(f[0]-truth[v][0]) > 0 {
					t.Fatalf("byz={%d,%d}: file %d decoded wrong", b1, b2, v)
				}
			}
		}
	}
}

func TestRecoveryFailsBeyondGuarantee(t *testing.T) {
	// r = 3, q = 2 > (r−1)/2 = 1: an adversary packing a file's replica
	// set breaks the decode — the fragility the paper highlights.
	s, err := NewCyclic(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Feasible(2); err == nil {
		t.Fatal("q=2 should be infeasible for r=3")
	}
	truth := makeTruth(6, 2)
	adversarial := []float64{-999, -999}
	// Workers 0 and 1 share files 1 and 2 (cyclic): two byzantine
	// replicas beat one honest replica on both files.
	byz := map[int]bool{0: true, 1: true}
	_, exact, err := s.Decode(makeReturns(s, truth, byz, adversarial), truth)
	if err != nil {
		t.Fatal(err)
	}
	if exact {
		t.Error("decode claimed exactness with a corrupted majority")
	}
}

func TestFractionalExactRecovery(t *testing.T) {
	s, err := NewFractional(15, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth := makeTruth(s.Assignment.F, 2)
	adversarial := []float64{1e9, 1e9}
	// q = 2 < r' = 3 in every group: exact.
	byz := map[int]bool{0: true, 5: true}
	_, exact, err := s.Decode(makeReturns(s, truth, byz, adversarial), truth)
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Error("fractional decode not exact within guarantee")
	}
}

func TestAggregateSums(t *testing.T) {
	files := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	out := Aggregate(files)
	if out[0] != 9 || out[1] != 12 {
		t.Errorf("Aggregate = %v", out)
	}
	if Aggregate(nil) != nil {
		t.Error("empty aggregate should be nil")
	}
}

func TestDecodeErrors(t *testing.T) {
	s, _ := NewCyclic(5, 3)
	if _, _, err := s.Decode(make([]map[int][]float64, 3), nil); err == nil {
		t.Error("wrong report count accepted")
	}
	// Missing file in a report.
	reports := make([]map[int][]float64, 5)
	for u := range reports {
		reports[u] = map[int][]float64{}
	}
	if _, _, err := s.Decode(reports, nil); err == nil {
		t.Error("missing files accepted")
	}
}

// TestCyclicDistortionComparesToByzShield reproduces the Sec. 5.3.1
// contrast: at equal (K, r), the cyclic DRACO placement admits a far
// larger worst-case distortion fraction than MOLS once q exceeds the
// exact-recovery bound.
func TestCyclicDistortionComparesToByzShield(t *testing.T) {
	s, err := NewCyclic(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	an := distort.NewAnalyzer(s.Assignment)
	// Adjacent byzantine workers corrupt shared cyclic files: q = 4
	// adjacent workers hold files with ≥ 2 byz replicas.
	greedy := an.MaxDistortedGreedy(4)
	if greedy.CMax < 3 {
		t.Errorf("cyclic placement should lose ≥3 files at q=4, got %d", greedy.CMax)
	}
}

// Property: for any q within the exact-recovery bound and any Byzantine
// set, cyclic DRACO decodes exactly.
func TestQuickExactRecoveryProperty(t *testing.T) {
	s, err := NewCyclic(11, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth := makeTruth(11, 2)
	adversarial := []float64{-7, 13}
	prop := func(a, b uint8) bool {
		b1 := int(a) % 11
		b2 := int(b) % 11
		byz := map[int]bool{b1: true, b2: true}
		_, exact, err := s.Decode(makeReturns(s, truth, byz, adversarial), truth)
		return err == nil && exact
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCyclicDecode(b *testing.B) {
	s, err := NewCyclic(25, 5)
	if err != nil {
		b.Fatal(err)
	}
	truth := makeTruth(25, 500)
	byz := map[int]bool{3: true, 11: true}
	returns := makeReturns(s, truth, byz, make([]float64, 500))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Decode(returns, truth); err != nil {
			b.Fatal(err)
		}
	}
}
