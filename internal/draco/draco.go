// Package draco implements DRACO (Chen et al., ICML 2018), the
// exact-recovery redundancy baseline the paper compares against
// (Sec. 1.2, 5.3.1). DRACO replicates each gradient task r times and
// decodes the *exact* attack-free aggregate as long as the number of
// Byzantine workers satisfies r ≥ 2q + 1 — the information-theoretic
// minimum. Two encoder/decoder pairs from the original work are
// provided:
//
//   - Fractional repetition (group) code: workers are split into K/r
//     clone groups; the decoder majority-votes within each group. This
//     is the same placement DETOX uses (assign.FRC), but DRACO's
//     guarantee is exact recovery, hence the stronger r ≥ 2q+1
//     requirement.
//
//   - Cyclic repetition code: worker i holds files i, i+1, ..., i+r−1
//     (mod f) and returns a single linear combination; the decoder
//     recovers the sum of all file gradients exactly by identifying and
//     discarding adversarial equations (here implemented via per-file
//     majority decoding over the cyclic placement, the combinatorial
//     equivalent of the Fourier decoder for the adversarial-detection
//     task).
//
// ByzShield's contrast with DRACO (paper Sec. 5.3.1): DRACO is simply
// *inapplicable* once q > (r−1)/2, while ByzShield degrades gracefully.
// Feasible() exposes that boundary, and the tests demonstrate both the
// exact recovery inside it and the decoder's failure outside it.
package draco

import (
	"fmt"

	"byzshield/internal/assign"
	"byzshield/internal/graph"
	"byzshield/internal/linalg"
	"byzshield/internal/vote"
)

// Code identifies a DRACO encoding.
type Code string

// Supported codes.
const (
	CodeFractional Code = "fractional"
	CodeCyclic     Code = "cyclic"
)

// Scheme is a DRACO configuration: an r-replicated placement plus the
// matching decoder.
type Scheme struct {
	Code       Code
	Assignment *assign.Assignment
}

// Feasible reports whether DRACO's exact-recovery guarantee holds for q
// Byzantine workers: r ≥ 2q + 1 (the information-theoretic minimum the
// paper quotes). Outside this regime DRACO is not applicable.
func (s *Scheme) Feasible(q int) error {
	if s.Assignment.R < 2*q+1 {
		return fmt.Errorf("draco: exact recovery needs r >= 2q+1 = %d, have r = %d",
			2*q+1, s.Assignment.R)
	}
	return nil
}

// NewFractional builds the fractional-repetition DRACO scheme over K
// workers with replication r (r | K).
func NewFractional(k, r int) (*Scheme, error) {
	a, err := assign.FRC(k, r)
	if err != nil {
		return nil, err
	}
	return &Scheme{Code: CodeFractional, Assignment: a}, nil
}

// NewCyclic builds the cyclic-repetition DRACO scheme: K workers, f = K
// files, worker i holds files {i, i+1, ..., i+r−1} (mod K). Every file
// is replicated exactly r times and each worker holds l = r files.
func NewCyclic(k, r int) (*Scheme, error) {
	if k < 1 || r < 1 || r > k {
		return nil, fmt.Errorf("draco: cyclic needs 1 <= r <= K, got K=%d r=%d", k, r)
	}
	g := graph.NewBipartite(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < r; j++ {
			g.MustAddEdge(i, (i+j)%k)
		}
	}
	a := &assign.Assignment{
		Scheme: assign.Scheme("draco-cyclic"),
		K:      k, F: k, L: r, R: r, Graph: g,
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &Scheme{Code: CodeCyclic, Assignment: a}, nil
}

// Decode recovers the per-file gradients from the workers' returned
// replicas by majority decoding, and reports whether recovery was exact
// (every file had an honest strict majority). Input: returned[u][v] is
// worker u's claimed gradient for file v (only assigned files present).
// truth is the oracle used solely to *report* exactness; pass nil to
// skip the check.
func (s *Scheme) Decode(returned []map[int][]float64, truth [][]float64) (files [][]float64, exact bool, err error) {
	a := s.Assignment
	if len(returned) != a.K {
		return nil, false, fmt.Errorf("draco: %d worker reports, want %d", len(returned), a.K)
	}
	files = make([][]float64, a.F)
	exact = true
	for v := 0; v < a.F; v++ {
		replicas := make([][]float64, 0, a.R)
		for _, u := range a.FileWorkers(v) {
			g, ok := returned[u][v]
			if !ok {
				return nil, false, fmt.Errorf("draco: worker %d omitted file %d", u, v)
			}
			replicas = append(replicas, g)
		}
		res, vErr := vote.Majority(replicas)
		if vErr != nil {
			return nil, false, vErr
		}
		files[v] = res.Winner
		if truth != nil {
			if linalg.Dist2(res.Winner, truth[v]) != 0 {
				exact = false
			}
		}
	}
	if truth == nil {
		exact = false
	}
	return files, exact, nil
}

// Aggregate sums the decoded file gradients — DRACO performs plain
// averaging after decoding since, inside its feasibility regime, the
// decoded gradients are exact.
func Aggregate(files [][]float64) []float64 {
	if len(files) == 0 {
		return nil
	}
	out := make([]float64, len(files[0]))
	for _, f := range files {
		linalg.AddInPlace(out, f)
	}
	return out
}
