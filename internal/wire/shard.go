package wire

// ShardRange returns the contiguous coordinate range [lo, hi) owned by
// shard s of n balanced shards over a dim-dimensional vector. The first
// dim%n shards hold one extra coordinate, so widths differ by at most
// one. Every layer that shards the parameter plane — the cluster
// engine's vote/aggregate shards, the transport server's per-connection
// shard decoders, and the workers' per-shard report encoders — derives
// its ranges from this single function, which is what keeps the three
// views of the split bit-compatible.
func ShardRange(dim, n, s int) (lo, hi int) {
	if n <= 1 {
		return 0, dim
	}
	per, extra := dim/n, dim%n
	lo = s*per + min(s, extra)
	hi = lo + per
	if s < extra {
		hi++
	}
	return lo, hi
}

// ShardCount clamps a requested shard count to the usable range for a
// dim-dimensional vector: at least 1, at most dim (an empty shard would
// own no coordinates).
func ShardCount(requested, dim int) int {
	if requested < 1 {
		return 1
	}
	if requested > dim {
		return dim
	}
	return requested
}
