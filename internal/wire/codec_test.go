package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func TestGradFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(6)
		d := rng.Intn(40)
		files := make([]int, n)
		grads := make([][]float64, n)
		for i := range files {
			files[i] = rng.Intn(1000)
			grads[i] = make([]float64, d)
			for j := range grads[i] {
				grads[i][j] = rng.NormFloat64()
			}
		}
		worker := rng.Intn(100)
		enc, err := AppendGradFrame(nil, worker, files, grads)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != GradFrameSize(n, d) {
			t.Fatalf("encoded %d bytes, GradFrameSize says %d", len(enc), GradFrameSize(n, d))
		}
		var f GradFrame
		consumed, err := DecodeGradFrame(enc, &f)
		if err != nil {
			t.Fatal(err)
		}
		if consumed != len(enc) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(enc))
		}
		if f.Worker != worker {
			t.Fatalf("worker %d, want %d", f.Worker, worker)
		}
		if len(f.Files) != n || len(f.Grads) != n {
			t.Fatalf("decoded %d files / %d grads, want %d", len(f.Files), len(f.Grads), n)
		}
		for i := range files {
			if f.Files[i] != files[i] {
				t.Fatalf("file %d decoded as %d, want %d", i, f.Files[i], files[i])
			}
			for j := range grads[i] {
				if math.Float64bits(f.Grads[i][j]) != math.Float64bits(grads[i][j]) {
					t.Fatalf("grad[%d][%d] = %v, want %v", i, j, f.Grads[i][j], grads[i][j])
				}
			}
		}
	}
}

func TestGradFrameBitExactSpecials(t *testing.T) {
	specials := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, math.MaxFloat64,
	}
	enc, err := AppendGradFrame(nil, 3, []int{9}, [][]float64{specials})
	if err != nil {
		t.Fatal(err)
	}
	var f GradFrame
	if _, err := DecodeGradFrame(enc, &f); err != nil {
		t.Fatal(err)
	}
	for i, want := range specials {
		if math.Float64bits(f.Grads[0][i]) != math.Float64bits(want) {
			t.Errorf("special %d: bits %x, want %x", i,
				math.Float64bits(f.Grads[0][i]), math.Float64bits(want))
		}
	}
}

func TestGradFrameDecodeReusesBuffers(t *testing.T) {
	grads := [][]float64{{1, 2, 3}, {4, 5, 6}}
	enc, err := AppendGradFrame(nil, 0, []int{0, 1}, grads)
	if err != nil {
		t.Fatal(err)
	}
	var f GradFrame
	if _, err := DecodeGradFrame(enc, &f); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeGradFrame(enc, &f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state decode allocates %.1f times per call, want 0", allocs)
	}
}

func TestGradFrameEncodeValidation(t *testing.T) {
	if _, err := AppendGradFrame(nil, 0, []int{1}, nil); err == nil {
		t.Error("mismatched files/grads accepted")
	}
	if _, err := AppendGradFrame(nil, -1, nil, nil); err == nil {
		t.Error("negative worker accepted")
	}
	if _, err := AppendGradFrame(nil, 0, []int{-2}, [][]float64{{1}}); err == nil {
		t.Error("negative file id accepted")
	}
	if _, err := AppendGradFrame(nil, 0, []int{0, 1}, [][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged gradients accepted")
	}
}

func TestGradFrameDecodeRejectsCorruptHeaders(t *testing.T) {
	enc, err := AppendGradFrame(nil, 1, []int{2}, [][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var f GradFrame
	cases := map[string]func([]byte){
		"truncated":        func(b []byte) {}, // handled below by slicing
		"inflated-payload": func(b []byte) { binary.LittleEndian.PutUint32(b, 1<<30) },
		"bad-file-count":   func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 7) },
		"bad-dim":          func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 9) },
	}
	for name, corrupt := range cases {
		b := append([]byte(nil), enc...)
		if name == "truncated" {
			b = b[:len(b)-1]
		}
		corrupt(b)
		if _, err := DecodeGradFrame(b, &f); err == nil {
			t.Errorf("%s: corrupt frame decoded without error", name)
		}
	}
}

// FuzzDecodeGradFrame checks that arbitrary bytes never panic the
// decoder, and that any frame it accepts is canonical: re-encoding the
// decoded frame reproduces exactly the consumed bytes.
func FuzzDecodeGradFrame(f *testing.F) {
	seed, _ := AppendGradFrame(nil, 2, []int{0, 3}, [][]float64{{1.5, -2}, {0, 3.25}})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr GradFrame
		consumed, err := DecodeGradFrame(data, &fr)
		if err != nil {
			return
		}
		re, err := AppendGradFrame(nil, fr.Worker, fr.Files, fr.Grads)
		if err != nil {
			t.Fatalf("decoded frame fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode differs from consumed bytes:\n got %x\nwant %x", re, data[:consumed])
		}
	})
}

// FuzzGradFrameRoundTrip builds structured frames from fuzzed inputs and
// checks bit-exact decode.
func FuzzGradFrameRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint8(3), uint8(5), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint32(0), uint8(0), uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, worker uint32, n, d uint8, raw []byte) {
		files := make([]int, n)
		grads := make([][]float64, n)
		pos := 0
		next := func() byte {
			if len(raw) == 0 {
				return 0
			}
			b := raw[pos%len(raw)]
			pos++
			return b
		}
		for i := range files {
			files[i] = int(next())<<8 | int(next())
			grads[i] = make([]float64, d)
			for j := range grads[i] {
				bits := uint64(next())<<56 | uint64(next())<<40 | uint64(next())<<16 | uint64(next())
				grads[i][j] = math.Float64frombits(bits)
			}
		}
		enc, err := AppendGradFrame(nil, int(worker), files, grads)
		if err != nil {
			t.Fatal(err)
		}
		var fr GradFrame
		consumed, err := DecodeGradFrame(enc, &fr)
		if err != nil {
			t.Fatal(err)
		}
		if consumed != len(enc) || fr.Worker != int(worker) {
			t.Fatalf("consumed=%d/%d worker=%d/%d", consumed, len(enc), fr.Worker, worker)
		}
		for i := range files {
			if fr.Files[i] != files[i] {
				t.Fatalf("file %d: %d != %d", i, fr.Files[i], files[i])
			}
			for j := range grads[i] {
				if math.Float64bits(fr.Grads[i][j]) != math.Float64bits(grads[i][j]) {
					t.Fatalf("grad[%d][%d] bits differ", i, j)
				}
			}
		}
	})
}
