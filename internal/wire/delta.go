// Parameter-broadcast codec (protocol v2). The PS→worker direction
// carries the model parameter vector every round; this codec makes that
// broadcast bandwidth-aware while staying bit-exact:
//
//   - a full frame ships every coordinate as its raw IEEE-754 bit
//     pattern (join/rejoin and periodic refresh), and
//   - a delta frame ships, per coordinate, the XOR of the new and base
//     bit patterns with high-order zero bytes stripped.
//
// Consecutive SGD iterates share sign, exponent, and the top mantissa
// bits of most coordinates, so the XOR against the previous round's
// vector concentrates its nonzero bytes at the low end; unchanged
// coordinates cost half a byte. Byte lengths are nibble-packed (two
// coordinates per byte) ahead of the payload, so the worst case is
// ⌈d/2⌉ + 8d bytes against 8d for a full frame, and typical training
// rounds are far below it. Applying a delta is a pure bit-level XOR, so
// a worker that folds deltas onto a full base reconstructs the PS
// vector bit-for-bit — NaN payloads and signed zeros included — which
// is what keeps the wire path's trajectory identical to the in-process
// engine's.
//
// Frame layout, little-endian:
//
//	u8   mode (1 = full, 2 = delta)
//	u32  coordinate count d
//	full:  d × f64 bit patterns
//	delta: ⌈d/2⌉ nibble-packed byte lengths (low nibble = even index),
//	       then per coordinate its significant low-order XOR bytes
//
// The encoding is canonical: each delta length is minimal (the highest
// included byte is nonzero), and the decoder rejects padded lengths, so
// any accepted frame re-encodes to exactly the consumed bytes.
package wire

import (
	"fmt"
	"math"
)

// Params frame modes.
const (
	// ParamsFull is a self-contained broadcast of the whole vector.
	ParamsFull = 1
	// ParamsDelta is an XOR patch against the receiver's current vector.
	ParamsDelta = 2
)

// paramsHeader is the mode byte plus the coordinate count.
const paramsHeader = 5

// ParamsFullSize returns the encoded size of a full params frame.
func ParamsFullSize(d int) int { return paramsHeader + 8*d }

// AppendParamsFull appends a full-vector frame to dst.
func AppendParamsFull(dst []byte, params []float64) ([]byte, error) {
	if int64(len(params)) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: %d params exceed u32 count", len(params))
	}
	dst = append(dst, ParamsFull)
	dst = AppendU32(dst, uint32(len(params)))
	return AppendF64s(dst, params), nil
}

// AppendParamsDelta appends a delta frame encoding cur against base.
// The receiver must hold exactly base to apply it.
func AppendParamsDelta(dst []byte, base, cur []float64) ([]byte, error) {
	if len(base) != len(cur) {
		return nil, fmt.Errorf("wire: delta base has %d params, cur %d", len(base), len(cur))
	}
	if int64(len(cur)) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: %d params exceed u32 count", len(cur))
	}
	d := len(cur)
	dst = append(dst, ParamsDelta)
	dst = AppendU32(dst, uint32(d))
	nibbleAt := len(dst)
	dst = append(dst, make([]byte, (d+1)/2)...)
	for i := 0; i < d; i++ {
		x := math.Float64bits(base[i]) ^ math.Float64bits(cur[i])
		n := xorLen(x)
		orNibbleLen(dst[nibbleAt:], i, n)
		dst = appendXORBytes(dst, x, n)
	}
	return dst, nil
}

// --- Shared nibble-packed XOR primitives ----------------------------
//
// The params-broadcast codec (this file) and the uplink gradient codec
// (uplink.go) use the identical value encoding: per value, the XOR of
// new and base bit patterns with high-order zero bytes stripped, byte
// lengths nibble-packed two-per-byte ahead of the payload. These
// helpers are the single implementation of that bit layout — a
// canonicality or bounds fix lands in both codecs at once.

// xorLen returns the minimal number of low-order bytes needed to
// represent x (0 for x == 0).
func xorLen(x uint64) int {
	n := 0
	for x != 0 {
		n++
		x >>= 8
	}
	return n
}

// orNibbleLen stores length n in the i-th nibble slot (low nibble =
// even index); the slot must still be zero.
func orNibbleLen(nibbles []byte, i, n int) {
	if i%2 == 0 {
		nibbles[i/2] |= byte(n)
	} else {
		nibbles[i/2] |= byte(n) << 4
	}
}

// nibbleLen reads the i-th nibble-packed length.
func nibbleLen(nibbles []byte, i int) int {
	n := int(nibbles[i/2])
	if i%2 == 0 {
		return n & 0x0f
	}
	return n >> 4
}

// appendXORBytes appends x's n significant low-order bytes.
func appendXORBytes(dst []byte, x uint64, n int) []byte {
	for b := 0; b < n; b++ {
		dst = append(dst, byte(x>>(8*b)))
	}
	return dst
}

// xorFromBytes reassembles a length-n little-endian XOR value from the
// front of payload; bounds and canonicality (nonzero top byte) are the
// caller's to check.
func xorFromBytes(payload []byte, n int) uint64 {
	var x uint64
	for b := 0; b < n; b++ {
		x |= uint64(payload[b]) << (8 * b)
	}
	return x
}

// DecodeParams parses one params frame from the front of src and
// applies it to params in place: a full frame overwrites every
// coordinate, a delta frame XORs each coordinate's bit pattern (the
// caller must hold the exact base vector the delta was encoded
// against). Returns the frame mode and the bytes consumed. The frame's
// coordinate count must match len(params), and delta lengths must be
// canonical (highest included byte nonzero), so arbitrary input either
// fails or round-trips exactly. On error params may have been partially
// updated and must be treated as garbage (receivers recover by
// requesting or awaiting a full frame).
func DecodeParams(src []byte, params []float64) (mode, consumed int, err error) {
	if len(src) < paramsHeader {
		return 0, 0, fmt.Errorf("wire: params frame truncated at %d bytes", len(src))
	}
	mode = int(src[0])
	d64 := uint64(src[1]) | uint64(src[2])<<8 | uint64(src[3])<<16 | uint64(src[4])<<24
	if d64 != uint64(len(params)) {
		return 0, 0, fmt.Errorf("wire: params frame has %d coordinates, want %d", d64, len(params))
	}
	d := len(params)
	body := src[paramsHeader:]
	switch mode {
	case ParamsFull:
		if len(body) < 8*d {
			return 0, 0, fmt.Errorf("wire: full params frame needs %d bytes, have %d", 8*d, len(body))
		}
		DecodeF64s(params, body)
		return ParamsFull, paramsHeader + 8*d, nil
	case ParamsDelta:
		nb := (d + 1) / 2
		if len(body) < nb {
			return 0, 0, fmt.Errorf("wire: delta frame needs %d length bytes, have %d", nb, len(body))
		}
		nibbles, payload := body[:nb], body[nb:]
		off := 0
		for i := 0; i < d; i++ {
			n := nibbleLen(nibbles, i)
			if n > 8 {
				return 0, 0, fmt.Errorf("wire: delta length %d > 8 at coordinate %d", n, i)
			}
			if len(payload)-off < n {
				return 0, 0, fmt.Errorf("wire: delta payload truncated at coordinate %d", i)
			}
			if n > 0 && payload[off+n-1] == 0 {
				return 0, 0, fmt.Errorf("wire: non-canonical delta length at coordinate %d", i)
			}
			x := xorFromBytes(payload[off:], n)
			off += n
			params[i] = math.Float64frombits(math.Float64bits(params[i]) ^ x)
		}
		if d%2 == 1 && nibbles[nb-1]>>4 != 0 {
			return 0, 0, fmt.Errorf("wire: delta frame has a set padding nibble")
		}
		return ParamsDelta, paramsHeader + nb + off, nil
	default:
		return 0, 0, fmt.Errorf("wire: unknown params frame mode %d", mode)
	}
}
