package wire

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// perturb returns base with SGD-step-sized noise on most coordinates
// and a few left exactly unchanged.
func perturb(rng *rand.Rand, base []float64) []float64 {
	cur := make([]float64, len(base))
	for i, v := range base {
		if rng.Intn(5) == 0 {
			cur[i] = v // unchanged coordinate
		} else {
			cur[i] = v + rng.NormFloat64()*1e-3
		}
	}
	return cur
}

func TestParamsFullRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{0, 1, 7, 330} {
		params := make([]float64, d)
		for i := range params {
			params[i] = rng.NormFloat64()
		}
		enc, err := AppendParamsFull(nil, params)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != ParamsFullSize(d) {
			t.Fatalf("d=%d: encoded %d bytes, ParamsFullSize says %d", d, len(enc), ParamsFullSize(d))
		}
		got := make([]float64, d)
		mode, consumed, err := DecodeParams(enc, got)
		if err != nil {
			t.Fatal(err)
		}
		if mode != ParamsFull || consumed != len(enc) {
			t.Fatalf("d=%d: mode %d consumed %d/%d", d, mode, consumed, len(enc))
		}
		for i := range params {
			if math.Float64bits(got[i]) != math.Float64bits(params[i]) {
				t.Fatalf("d=%d: coordinate %d differs", d, i)
			}
		}
	}
}

func TestParamsDeltaRoundTripAndSavings(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, d := range []int{1, 2, 33, 330} {
		base := make([]float64, d)
		for i := range base {
			base[i] = rng.NormFloat64()
		}
		cur := perturb(rng, base)
		enc, err := AppendParamsDelta(nil, base, cur)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]float64(nil), base...)
		mode, consumed, err := DecodeParams(enc, got)
		if err != nil {
			t.Fatal(err)
		}
		if mode != ParamsDelta || consumed != len(enc) {
			t.Fatalf("d=%d: mode %d consumed %d/%d", d, mode, consumed, len(enc))
		}
		for i := range cur {
			if math.Float64bits(got[i]) != math.Float64bits(cur[i]) {
				t.Fatalf("d=%d: coordinate %d: got %v want %v", d, i, got[i], cur[i])
			}
		}
		if d >= 33 && len(enc) >= ParamsFullSize(d) {
			t.Errorf("d=%d: delta frame %d bytes not smaller than full %d", d, len(enc), ParamsFullSize(d))
		}
	}
}

func TestParamsDeltaBitExactSpecials(t *testing.T) {
	base := []float64{0, math.Copysign(0, -1), 1, math.Inf(1), math.NaN(), 2}
	cur := []float64{math.Copysign(0, -1), 0, math.NaN(), 1, math.Inf(-1), 2}
	enc, err := AppendParamsDelta(nil, base, cur)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]float64(nil), base...)
	if _, _, err := DecodeParams(enc, got); err != nil {
		t.Fatal(err)
	}
	for i := range cur {
		if math.Float64bits(got[i]) != math.Float64bits(cur[i]) {
			t.Errorf("coordinate %d: bits %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(cur[i]))
		}
	}
}

func TestDecodeParamsRejectsGarbage(t *testing.T) {
	base := []float64{1, 2, 3}
	cur := []float64{1.001, 2, 3.5}
	delta, err := AppendParamsDelta(nil, base, cur)
	if err != nil {
		t.Fatal(err)
	}
	full, err := AppendParamsFull(nil, cur)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]float64, 3)
	cases := map[string][]byte{
		"empty":           {},
		"bad-mode":        append([]byte{9}, delta[1:]...),
		"wrong-dim":       func() []byte { b := append([]byte(nil), full...); b[1] = 99; return b }(),
		"truncated-full":  full[:len(full)-1],
		"truncated-delta": delta[:len(delta)-1],
	}
	for name, b := range cases {
		copy(scratch, base)
		if _, _, err := DecodeParams(b, scratch); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Non-canonical delta: lengthen a coordinate so its top byte is 0.
	bad, err := AppendParamsDelta(nil, []float64{1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	bad[paramsHeader] = 2 // claim 2 bytes for a zero XOR
	bad = append(bad, 0, 0)
	copy(scratch, base)
	if _, _, err := DecodeParams(bad, scratch[:1]); err == nil {
		t.Error("non-canonical zero-padded delta accepted")
	}
}

// FuzzDecodeParams checks that arbitrary bytes never panic the decoder
// and that any accepted delta frame is canonical: re-encoding the
// decoded state against the original base reproduces the consumed
// bytes.
func FuzzDecodeParams(f *testing.F) {
	seedFull, _ := AppendParamsFull(nil, []float64{1, -2, 0.5})
	seedDelta, _ := AppendParamsDelta(nil, []float64{1, -2, 0.5}, []float64{1.0001, -2, 0.75})
	f.Add(seedFull)
	f.Add(seedDelta)
	f.Add([]byte{ParamsDelta, 3, 0, 0, 0, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		base := []float64{1, -2, 0.5}
		params := append([]float64(nil), base...)
		mode, consumed, err := DecodeParams(data, params)
		if err != nil {
			return
		}
		var re []byte
		if mode == ParamsFull {
			re, err = AppendParamsFull(nil, params)
		} else {
			re, err = AppendParamsDelta(nil, base, params)
		}
		if err != nil {
			t.Fatalf("accepted frame fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode differs from consumed bytes:\n got %x\nwant %x", re, data[:consumed])
		}
	})
}

// FuzzParamsDeltaRoundTrip builds structured base/cur pairs from fuzzed
// bits and checks bit-exact delta application.
func FuzzParamsDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{8, 7, 6, 5})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, rawBase, rawCur []byte) {
		d := len(rawBase) / 8
		if d > 64 {
			d = 64
		}
		base := make([]float64, d)
		cur := make([]float64, d)
		at := func(raw []byte, i int) uint64 {
			var x uint64
			for b := 0; b < 8; b++ {
				if i*8+b < len(raw) {
					x |= uint64(raw[i*8+b]) << (8 * b)
				}
			}
			return x
		}
		for i := 0; i < d; i++ {
			base[i] = math.Float64frombits(at(rawBase, i))
			cur[i] = math.Float64frombits(at(rawCur, i))
		}
		enc, err := AppendParamsDelta(nil, base, cur)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]float64(nil), base...)
		mode, consumed, err := DecodeParams(enc, got)
		if err != nil {
			t.Fatal(err)
		}
		if mode != ParamsDelta || consumed != len(enc) {
			t.Fatalf("mode %d, consumed %d/%d", mode, consumed, len(enc))
		}
		for i := 0; i < d; i++ {
			if math.Float64bits(got[i]) != math.Float64bits(cur[i]) {
				t.Fatalf("coordinate %d differs", i)
			}
		}
	})
}
