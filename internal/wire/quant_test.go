package wire

import (
	"bytes"
	"math"
	"math/rand"
	"slices"
	"testing"
)

// quantizeReport applies the tier's in-place helper to a copy of the
// report — the values the engine pinned to the tier would aggregate.
func quantizeReport(tier UplinkTier, grads [][]float64) [][]float64 {
	out := make([][]float64, len(grads))
	for i, g := range grads {
		out[i] = slices.Clone(g)
		switch tier {
		case TierSign:
			SignQuantizeInPlace(out[i])
		case TierInt8:
			Int8QuantizeInPlace(out[i])
		}
	}
	return out
}

// TestUplinkTierSpellings pins the flag spellings, the parse round
// trip, and the negotiation bitmask bits.
func TestUplinkTierSpellings(t *testing.T) {
	for _, tier := range []UplinkTier{TierRaw, TierDelta, TierSign, TierInt8} {
		got, err := ParseUplinkTier(tier.String())
		if err != nil || got != tier {
			t.Errorf("ParseUplinkTier(%q) = %v, %v", tier.String(), got, err)
		}
		if AllTiersMask&tier.Mask() == 0 {
			t.Errorf("tier %s missing from AllTiersMask", tier)
		}
	}
	if _, err := ParseUplinkTier("gzip"); err == nil {
		t.Error("ParseUplinkTier accepted an unknown tier")
	}
	if TierSign.Lossy() != true || TierInt8.Lossy() != true ||
		TierRaw.Lossy() || TierDelta.Lossy() {
		t.Error("Lossy() wrong for some tier")
	}
}

// TestUplinkQuantRoundTrip streams reports through sign and int8
// encoder/decoder pairs: every decode must equal the in-place helper
// bit-for-bit (the loopback == engine property), hit the documented
// frame size, and beat the raw encoding by the tier's design ratio.
func TestUplinkQuantRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	files := []int{2, 7, 19}
	for _, tier := range []UplinkTier{TierSign, TierInt8} {
		enc := UplinkEncoder{Tier: tier}
		dec := UplinkDecoder{Tier: tier}
		var f GradFrame
		grads := report(rng, 3, 50)
		for round := 0; round < 4; round++ {
			frame, mode, rawSize, err := enc.Encode(nil, 4, files, grads)
			if err != nil {
				t.Fatal(err)
			}
			wantMode, wantSize := UplinkSign, UplinkSignSize(3, 50)
			if tier == TierInt8 {
				wantMode, wantSize = UplinkInt8, UplinkInt8Size(3, 50)
			}
			if mode != wantMode {
				t.Fatalf("%s round %d: mode %d, want %d", tier, round, mode, wantMode)
			}
			if len(frame) != wantSize {
				t.Fatalf("%s round %d: frame %d bytes, want %d", tier, round, len(frame), wantSize)
			}
			if rawSize != UplinkRawSize(3, 50) {
				t.Fatalf("%s round %d: rawSize %d, want %d", tier, round, rawSize, UplinkRawSize(3, 50))
			}
			if 4*len(frame) > rawSize {
				t.Fatalf("%s round %d: frame %d bytes does not cut raw %d by ≥4×", tier, round, len(frame), rawSize)
			}
			if got := decodeOne(t, &dec, frame, &f); got != mode {
				t.Fatalf("%s round %d: decoder saw mode %d", tier, round, got)
			}
			checkReport(t, &f, 4, files, quantizeReport(tier, grads))
			grads = perturbReport(rng, grads)
		}
	}
}

// TestUplinkQuantSpecialValues: signed zeros, infinities, and extreme
// magnitudes dequantize to exactly what the in-place helpers compute,
// and a NaN gradient fails the sign encode instead of emitting a frame
// the decoder would reject.
func TestUplinkQuantSpecialValues(t *testing.T) {
	files := []int{3}
	special := [][]float64{{0, math.Copysign(0, -1), 1e300, -1e-300, math.Inf(1), 2}}
	for _, tier := range []UplinkTier{TierSign, TierInt8} {
		enc := UplinkEncoder{Tier: tier}
		dec := UplinkDecoder{Tier: tier}
		var f GradFrame
		frame, _, _, err := enc.Encode(nil, 2, files, special)
		if err != nil {
			t.Fatalf("%s: %v", tier, err)
		}
		decodeOne(t, &dec, frame, &f)
		checkReport(t, &f, 2, files, quantizeReport(tier, special))
	}
	enc := UplinkEncoder{Tier: TierSign}
	if _, _, _, err := enc.Encode(nil, 2, files, [][]float64{{1, math.NaN()}}); err == nil {
		t.Error("sign encode accepted a NaN gradient")
	}
}

// TestUplinkQuantTierStrict: each decoder accepts exactly its tier's
// modes — a lossless frame on a lossy stream (or vice versa) poisons
// the stream instead of silently changing codecs.
func TestUplinkQuantTierStrict(t *testing.T) {
	files := []int{1}
	grads := [][]float64{{1, -2, 3}}
	frames := map[UplinkTier][]byte{}
	for _, tier := range []UplinkTier{TierRaw, TierSign, TierInt8} {
		enc := UplinkEncoder{Tier: tier}
		frame, _, _, err := enc.Encode(nil, 0, files, grads)
		if err != nil {
			t.Fatal(err)
		}
		frames[tier] = frame
	}
	accepts := map[UplinkTier][]UplinkTier{
		TierRaw:   {TierRaw},
		TierDelta: {TierRaw},
		TierSign:  {TierSign},
		TierInt8:  {TierInt8},
	}
	for decTier, ok := range accepts {
		for _, encTier := range []UplinkTier{TierRaw, TierSign, TierInt8} {
			dec := UplinkDecoder{Tier: decTier}
			var f GradFrame
			_, _, err := dec.Decode(frames[encTier], &f)
			if want := slices.Contains(ok, encTier); (err == nil) != want {
				t.Errorf("tier %s decoder, %s frame: err=%v, want accept=%v", decTier, encTier, err, want)
			}
		}
	}
}

// TestUplinkSignRejects: non-canonical sign frames — negative or NaN
// scales, set padding bits, truncation — are all errors.
func TestUplinkSignRejects(t *testing.T) {
	enc := UplinkEncoder{Tier: TierSign}
	frame, _, _, err := enc.Encode(nil, 1, []int{0}, [][]float64{{1, -2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	scaleAt := uplinkDeltaHeader + 4 // one file id, then the row scale
	cases := map[string][]byte{
		"truncated": frame[:len(frame)-1],
		"neg scale": func() []byte {
			b := slices.Clone(frame)
			b[scaleAt+7] |= 0x80
			return b
		}(),
		"nan scale": func() []byte {
			b := slices.Clone(frame)
			copy(b[scaleAt:], []byte{1, 0, 0, 0, 0, 0, 0xf0, 0x7f})
			return b
		}(),
		"padding bits": func() []byte {
			b := slices.Clone(frame)
			b[len(b)-1] |= 0x80 // d=3, bits 3..7 are padding
			return b
		}(),
	}
	dec := UplinkDecoder{Tier: TierSign}
	var f GradFrame
	for name, bad := range cases {
		if _, _, err := dec.Decode(bad, &f); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, _, err := dec.Decode(frame, &f); err != nil {
		t.Fatalf("rejected frames poisoned the (stateless) decoder: %v", err)
	}
}

// TestUplinkInt8Grid: int8 dequantization lands every value on the
// row's 256-point grid with the extremes mapped exactly, and a
// constant row (scale 0) reproduces the constant.
func TestUplinkInt8Grid(t *testing.T) {
	g := []float64{-3, -1, 0, 0.5, 5}
	q := slices.Clone(g)
	Int8QuantizeInPlace(q)
	if q[0] != -3 {
		t.Errorf("row min %v, want -3 exactly", q[0])
	}
	min, scale := int8Params(g)
	if got := min + scale*255; q[4] != got {
		t.Errorf("row max %v, want %v", q[4], got)
	}
	for i, v := range q {
		steps := math.Round((v - min) / scale)
		if v != min+scale*steps {
			t.Errorf("value %d (%v) off the quantization grid", i, v)
		}
	}
	c := []float64{2.5, 2.5, 2.5}
	Int8QuantizeInPlace(c)
	for _, v := range c {
		if v != 2.5 {
			t.Errorf("constant row quantized to %v", v)
		}
	}
}

// FuzzUplinkQuantRoundTrip builds a report from fuzz bits and checks
// the load-bearing determinism property for both lossy tiers: the
// wire round trip delivers bit-for-bit the values the in-place helper
// computes, so the engine pinned to a tier reproduces the wire path.
func FuzzUplinkQuantRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0x80, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		d := len(raw) / 8
		if d > 32 {
			d = 32
		}
		if d == 0 {
			return
		}
		g := make([]float64, d)
		for i := 0; i < d; i++ {
			var x uint64
			for b := 0; b < 8; b++ {
				x |= uint64(raw[i*8+b]) << (8 * b)
			}
			g[i] = math.Float64frombits(x)
		}
		files := []int{5}
		grads := [][]float64{g}
		for _, tier := range []UplinkTier{TierSign, TierInt8} {
			enc := UplinkEncoder{Tier: tier}
			dec := UplinkDecoder{Tier: tier}
			frame, _, _, err := enc.Encode(nil, 1, files, grads)
			if err != nil {
				// Sign refuses NaN scales; nothing to round-trip.
				continue
			}
			var fr GradFrame
			_, consumed, err := dec.Decode(frame, &fr)
			if err != nil {
				t.Fatalf("%s: decode own frame: %v", tier, err)
			}
			if consumed != len(frame) {
				t.Fatalf("%s: consumed %d of %d", tier, consumed, len(frame))
			}
			want := quantizeReport(tier, grads)
			for i := 0; i < d; i++ {
				if math.Float64bits(fr.Grads[0][i]) != math.Float64bits(want[0][i]) {
					t.Fatalf("%s: value %d: wire %x, engine %x", tier, i,
						math.Float64bits(fr.Grads[0][i]), math.Float64bits(want[0][i]))
				}
			}
		}
	})
}

// FuzzDecodeUplinkSign feeds arbitrary bytes to a sign-tier decoder:
// decoding must never panic, and any accepted frame must be canonical
// — rebuilding it from the decoded values (scale = |value|, bit =
// !signbit) reproduces exactly the consumed bytes.
func FuzzDecodeUplinkSign(f *testing.F) {
	var seedEnc UplinkEncoder
	seedEnc.Tier = TierSign
	seed, _, _, _ := seedEnc.Encode(nil, 1, []int{2, 9}, [][]float64{{1, -2, 0.5}, {3, 0, -0.25}})
	f.Add(seed)
	f.Add([]byte{UplinkSign, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := UplinkDecoder{Tier: TierSign}
		var fr GradFrame
		mode, consumed, err := dec.Decode(data, &fr)
		if err != nil {
			return
		}
		if mode != UplinkSign || consumed > len(data) {
			t.Fatalf("mode %d consumed %d of %d", mode, consumed, len(data))
		}
		n := len(fr.Files)
		d := 0
		if n > 0 {
			d = len(fr.Grads[0])
		}
		re := []byte{UplinkSign}
		re = append32(re, uint32(fr.Worker))
		re = append32(re, uint32(n))
		re = append32(re, uint32(d))
		for _, v := range fr.Files {
			re = append32(re, uint32(v))
		}
		for _, g := range fr.Grads {
			s := 0.0
			if len(g) > 0 {
				s = math.Abs(g[0])
			}
			re = AppendF64(re, s)
		}
		for _, g := range fr.Grads {
			at := len(re)
			re = append(re, make([]byte, signBytesPerRow(d))...)
			for j, v := range g {
				if !math.Signbit(v) {
					re[at+j/8] |= 1 << (j % 8)
				}
			}
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode differs from consumed bytes:\n got %x\nwant %x", re, data[:consumed])
		}
	})
}

// FuzzDecodeUplinkInt8 feeds arbitrary bytes to an int8-tier decoder:
// decoding must never panic, allocation is bounded by the input, and
// an accepted frame dequantizes deterministically (two decodes agree
// bit-for-bit). Int8 frames are not forced byte-canonical — distinct
// (min, scale, q) triples can dequantize to the same row — so unlike
// the sign target there is no re-encode check; determinism is the
// property aggregation needs.
func FuzzDecodeUplinkInt8(f *testing.F) {
	var seedEnc UplinkEncoder
	seedEnc.Tier = TierInt8
	seed, _, _, _ := seedEnc.Encode(nil, 1, []int{2, 9}, [][]float64{{1, -2, 0.5}, {3, 0, -0.25}})
	f.Add(seed)
	f.Add([]byte{UplinkInt8, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := UplinkDecoder{Tier: TierInt8}
		var a, b GradFrame
		mode, consumed, err := dec.Decode(data, &a)
		if err != nil {
			return
		}
		if mode != UplinkInt8 || consumed > len(data) {
			t.Fatalf("mode %d consumed %d of %d", mode, consumed, len(data))
		}
		if _, consumed2, err := dec.Decode(data, &b); err != nil || consumed2 != consumed {
			t.Fatalf("re-decode: consumed %d err %v, first decode consumed %d", consumed2, err, consumed)
		}
		if a.Worker != b.Worker || !slices.Equal(a.Files, b.Files) {
			t.Fatal("re-decode header differs")
		}
		for i := range a.Grads {
			for j := range a.Grads[i] {
				if math.Float64bits(a.Grads[i][j]) != math.Float64bits(b.Grads[i][j]) {
					t.Fatalf("re-decode value (%d,%d) differs", i, j)
				}
			}
		}
	})
}
