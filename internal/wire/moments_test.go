package wire

import (
	"bytes"
	"math"
	"testing"
)

func TestMomentFrameRoundTrip(t *testing.T) {
	in := MomentFrame{
		Round:   7,
		Members: 3,
		Mu:      []float64{1.5, -2.25, 0, math.Inf(1)},
		Sigma:   []float64{0.5, 3, math.NaN(), -0.0},
	}
	enc, err := AppendMomentFrame(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	var out MomentFrame
	if err := DecodeMomentFrame(enc, &out); err != nil {
		t.Fatal(err)
	}
	if out.Round != in.Round || out.Members != in.Members {
		t.Fatalf("header %d/%d, want %d/%d", out.Round, out.Members, in.Round, in.Members)
	}
	for i := range in.Mu {
		if math.Float64bits(out.Mu[i]) != math.Float64bits(in.Mu[i]) {
			t.Fatalf("mu[%d] bits differ", i)
		}
		if math.Float64bits(out.Sigma[i]) != math.Float64bits(in.Sigma[i]) {
			t.Fatalf("sigma[%d] bits differ", i)
		}
	}
	// Buffer reuse must not allocate on a second decode into the same
	// frame value.
	if err := DecodeMomentFrame(enc, &out); err != nil {
		t.Fatal(err)
	}
}

func TestMomentFrameRejectsMalformed(t *testing.T) {
	good, err := AppendMomentFrame(nil, &MomentFrame{Round: 1, Members: 2, Mu: []float64{1, 2}, Sigma: []float64{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-1],
		"trailing":  append(append([]byte{}, good...), 0),
		"huge-dim":  {1, 0, 0, 0, 1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff},
	}
	for name, b := range cases {
		var f MomentFrame
		if err := DecodeMomentFrame(b, &f); err == nil {
			t.Errorf("%s: malformed moment frame decoded without error", name)
		}
	}
	if _, err := AppendMomentFrame(nil, &MomentFrame{Mu: []float64{1}, Sigma: nil}); err == nil {
		t.Error("mismatched mu/sigma lengths encoded without error")
	}
}

// FuzzDecodeMomentFrame checks that arbitrary bytes never panic the
// sidecar moment decoder, and that any payload it accepts is canonical:
// re-encoding the decoded frame reproduces the input bytes exactly.
func FuzzDecodeMomentFrame(f *testing.F) {
	seed, _ := AppendMomentFrame(nil, &MomentFrame{Round: 3, Members: 2, Mu: []float64{1, -2}, Sigma: []float64{0.5, 4}})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr MomentFrame
		if err := DecodeMomentFrame(data, &fr); err != nil {
			return
		}
		re, err := AppendMomentFrame(nil, &fr)
		if err != nil {
			t.Fatalf("decoded frame fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs from input:\n got %x\nwant %x", re, data)
		}
	})
}
