package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, p := range payloads {
		enc, err := AppendFrame(nil, 7, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != FrameHeaderSize+len(p) {
			t.Fatalf("frame size %d, want %d", len(enc), FrameHeaderSize+len(p))
		}
		typ, n, err := ParseFrameHeader(enc)
		if err != nil {
			t.Fatal(err)
		}
		if typ != 7 || n != len(p) {
			t.Fatalf("parsed (type %d, len %d), want (7, %d)", typ, n, len(p))
		}
		gotTyp, payload, _, err := ReadFrame(bytes.NewReader(enc), nil)
		if err != nil {
			t.Fatal(err)
		}
		if gotTyp != 7 || !bytes.Equal(payload, p) {
			t.Fatalf("ReadFrame got (type %d, %x), want (7, %x)", gotTyp, payload, p)
		}
	}
}

func TestFrameHeaderRejectsGarbage(t *testing.T) {
	good, err := AppendFrame(nil, 1, []byte{9})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte){
		"bad-magic":   func(b []byte) { b[0] = 0 },
		"bad-version": func(b []byte) { b[2] = 99 },
		"huge-length": func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 1<<31-1) },
	}
	for name, corrupt := range cases {
		b := append([]byte(nil), good...)
		corrupt(b)
		if _, _, err := ParseFrameHeader(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, _, err := ParseFrameHeader(good[:5]); err == nil {
		t.Error("short header accepted")
	}
	long, err := AppendFrame(nil, 1, []byte{9, 9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadFrame(bytes.NewReader(long[:len(long)-2]), nil); err == nil {
		t.Error("truncated body accepted")
	}
	if _, err := AppendFrame(nil, 0, make([]byte, MaxFramePayload+1)); err == nil {
		t.Error("oversized payload encoded")
	}
}

func TestReadFrameReusesBuffer(t *testing.T) {
	enc, err := AppendFrame(nil, 3, []byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 64)
	_, payload, newBuf, err := ReadFrame(bytes.NewReader(enc), buf)
	if err != nil {
		t.Fatal(err)
	}
	if &newBuf[0] != &buf[:1][0] {
		t.Error("ReadFrame reallocated despite sufficient capacity")
	}
	if !bytes.Equal(payload, []byte{1, 2, 3, 4}) {
		t.Errorf("payload %x", payload)
	}
}

func TestDecPrimitives(t *testing.T) {
	var buf []byte
	buf = AppendU8(buf, 200)
	buf = AppendU32(buf, 1<<30)
	buf = AppendU64(buf, 1<<60)
	buf = AppendI64(buf, -5)
	buf = AppendF64(buf, -0.5)
	buf = AppendString(buf, "mols")
	buf, err := AppendInts(buf, []int{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDec(buf)
	if v := d.U8(); v != 200 {
		t.Errorf("U8 = %d", v)
	}
	if v := d.U32(); v != 1<<30 {
		t.Errorf("U32 = %d", v)
	}
	if v := d.U64(); v != 1<<60 {
		t.Errorf("U64 = %d", v)
	}
	if v := d.I64(); v != -5 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.F64(); v != -0.5 {
		t.Errorf("F64 = %v", v)
	}
	if v := d.String(); v != "mols" {
		t.Errorf("String = %q", v)
	}
	got := d.Ints()
	if len(got) != 3 || got[0] != 3 || got[1] != 1 || got[2] != 2 {
		t.Errorf("Ints = %v", got)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}

	// Sticky error: a truncated read poisons everything after.
	d = NewDec([]byte{1, 2})
	_ = d.U32()
	if d.Err() == nil {
		t.Fatal("truncated U32 accepted")
	}
	if v := d.U64(); v != 0 {
		t.Errorf("poisoned U64 = %d, want 0", v)
	}
	// Hostile Ints count must not allocate unbounded memory.
	d = NewDec(AppendU32(nil, 1<<31))
	if got := d.Ints(); got != nil || d.Err() == nil {
		t.Error("hostile int count accepted")
	}
	// Trailing bytes fail Done.
	d = NewDec([]byte{1, 2, 3})
	_ = d.U8()
	if err := d.Done(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("Done with trailing bytes: %v", err)
	}
}

// FuzzParseFrameHeader checks that arbitrary header bytes never panic
// and that any accepted header re-encodes to the same 8 bytes.
func FuzzParseFrameHeader(f *testing.F) {
	seed, _ := AppendFrame(nil, 4, []byte{1})
	f.Add(seed[:FrameHeaderSize])
	f.Add(make([]byte, FrameHeaderSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, n, err := ParseFrameHeader(data)
		if err != nil {
			return
		}
		re, err := AppendFrame(nil, typ, make([]byte, n))
		if err != nil {
			t.Fatalf("accepted header fails to re-encode: %v", err)
		}
		if !bytes.Equal(re[:FrameHeaderSize], data[:FrameHeaderSize]) {
			t.Fatalf("header re-encode differs: %x vs %x", re[:FrameHeaderSize], data[:FrameHeaderSize])
		}
	})
}

// FuzzReadFrame checks that framed streams assembled from arbitrary
// bytes either fail cleanly or yield the exact payload.
func FuzzReadFrame(f *testing.F) {
	f.Add(byte(1), []byte("payload"))
	f.Add(byte(0), []byte{})
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		enc, err := AppendFrame(nil, typ, payload)
		if err != nil {
			t.Skip()
		}
		gotTyp, got, _, err := ReadFrame(bytes.NewReader(enc), nil)
		if err != nil {
			t.Fatal(err)
		}
		if gotTyp != typ || !bytes.Equal(got, payload) {
			t.Fatalf("round-trip mismatch: type %d/%d, %x vs %x", gotTyp, typ, got, payload)
		}
		// A truncated stream must fail, never hang or panic.
		if len(enc) > 1 {
			if _, _, _, err := ReadFrame(bytes.NewReader(enc[:len(enc)-1]), nil); err == nil {
				t.Fatal("truncated frame accepted")
			}
		}
	})
}
