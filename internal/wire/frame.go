// Control-plane message framing. Every PS↔worker message travels as
// one self-delimiting frame:
//
//	u16  magic  (0xB52D, little-endian)
//	u8   protocol version (currently 4)
//	u8   message type (transport-defined)
//	u32  payload length in bytes
//	…    payload
//
// Because each frame declares its own length, a receiver that is
// interrupted mid-frame (a read deadline firing while a slow worker's
// report is in flight) knows exactly how many bytes remain and can
// resume or discard the frame later instead of abandoning the
// connection — the property the gob Envelope stream of protocol v1
// lacked, which made every eviction permanent.
//
// The frame layer is transport-agnostic: message types are just bytes
// here, and payload encodings are owned by the callers (the transport
// packages encode their message structs with the primitive helpers
// below, in the same canonical little-endian style as the gradient
// frame codec in this package).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrVersionMismatch marks a frame header carrying a protocol version
// other than ProtocolVersion. It surfaces wrapped (errors.Is), so a
// server that fails to parse a peer's first frame can tell an old-
// version peer — which deserves a typed Reject naming the version —
// from a corrupt stream.
var ErrVersionMismatch = errors.New("wire: protocol version mismatch")

const (
	// FrameMagic marks the start of every control frame.
	FrameMagic = 0xB52D
	// ProtocolVersion is the current control-plane protocol version.
	// Hello/Welcome carry it explicitly for negotiation; every frame
	// header repeats it so a version skew fails fast on any message.
	// v7 added the negotiated precision tier: the Hello advertises a
	// supported-precisions bitmask, the Welcome pins the connection's
	// Precision (f64 stays the default), and a full float32 codec set
	// (f32.go: gradient frames, params full/delta, all four uplink
	// tiers) carries the reduced-precision connections. Pre-v7 peers
	// are rejected at the first frame with the typed version Reject.
	// v6 made the uplink codec a negotiated tier: the Hello advertises
	// a supported-tiers bitmask, the Welcome's uplink-delta flag byte
	// became the negotiated UplinkTier, and two lossy quantized frame
	// modes (sign, int8 — quant.go) joined raw and XOR-delta.
	// v5 added the sharded aggregation plane: per-shard gradient
	// report frames (GradientReport.Shard over ShardRange coordinate
	// ranges), the RoundPrep message that pipelines round t+1's file
	// assignments during round t's aggregation, and the Welcome's
	// shard-count/pipeline negotiation fields.
	// v4 extended the Spec payload with the detector configuration,
	// added the typed Reject frame (blacklisted-rejoin refusal), and
	// introduced the sidecar moment frame (moments.go); v3 added the
	// compressed uplink gradient codec (uplink.go) and the Welcome's
	// uplink-delta flag. Older peers are rejected at the first frame
	// (and at Hello/Welcome negotiation) with a typed version Reject.
	ProtocolVersion = 7
	// FrameHeaderSize is the fixed byte size of the frame header.
	FrameHeaderSize = 8
	// MaxFramePayload bounds the declared payload length a receiver will
	// accept, so a hostile header cannot trigger an unbounded allocation.
	MaxFramePayload = 1 << 28 // 256 MiB
)

// AppendFrame appends a complete frame (header + payload) to dst.
func AppendFrame(dst []byte, typ byte, payload []byte) ([]byte, error) {
	if len(payload) > MaxFramePayload {
		return nil, fmt.Errorf("wire: frame payload %d bytes exceeds limit %d", len(payload), MaxFramePayload)
	}
	dst = binary.LittleEndian.AppendUint16(dst, FrameMagic)
	dst = append(dst, ProtocolVersion, typ)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...), nil
}

// BeginFrame appends a frame header with a zero payload length to dst
// and returns the offset EndFrame patches. Together they build a frame
// whose payload is appended in place after the header, instead of
// encoding the payload in a separate buffer and copying it through
// AppendFrame — the difference is one full-payload memmove per send.
func BeginFrame(dst []byte, typ byte) ([]byte, int) {
	dst = binary.LittleEndian.AppendUint16(dst, FrameMagic)
	dst = append(dst, ProtocolVersion, typ)
	at := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	return dst, at
}

// EndFrame patches the payload length of the frame begun at `at` (the
// offset BeginFrame returned): the payload is everything appended to
// dst since. The buffer is returned unchanged on error, so callers can
// keep reusing it.
func EndFrame(dst []byte, at int) ([]byte, error) {
	n := len(dst) - at - 4
	if n > MaxFramePayload {
		return dst, fmt.Errorf("wire: frame payload %d bytes exceeds limit %d", n, MaxFramePayload)
	}
	binary.LittleEndian.PutUint32(dst[at:], uint32(n))
	return dst, nil
}

// ParseFrameHeader validates a frame header and returns the message
// type and declared payload length.
func ParseFrameHeader(hdr []byte) (typ byte, length int, err error) {
	if len(hdr) < FrameHeaderSize {
		return 0, 0, fmt.Errorf("wire: frame header truncated at %d bytes", len(hdr))
	}
	if m := binary.LittleEndian.Uint16(hdr); m != FrameMagic {
		return 0, 0, fmt.Errorf("wire: bad frame magic %#04x", m)
	}
	if v := hdr[2]; v != ProtocolVersion {
		return 0, 0, fmt.Errorf("wire: protocol version %d, want %d: %w", v, ProtocolVersion, ErrVersionMismatch)
	}
	length = int(binary.LittleEndian.Uint32(hdr[4:]))
	if length > MaxFramePayload {
		return 0, 0, fmt.Errorf("wire: frame declares %d payload bytes, limit %d", length, MaxFramePayload)
	}
	return hdr[3], length, nil
}

// ReadFrame reads one complete frame from r. The payload is read into
// buf when it fits (growing it otherwise); the returned slice aliases
// the returned buffer, which callers reuse across calls.
func ReadFrame(r io.Reader, buf []byte) (typ byte, payload, newBuf []byte, err error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	typ, n, err := ParseFrameHeader(hdr[:])
	if err != nil {
		return 0, nil, buf, err
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, fmt.Errorf("wire: frame body: %w", err)
	}
	return typ, buf, buf, nil
}

// --- Primitive payload helpers -------------------------------------
//
// Payload encodings across the protocol use these canonical
// little-endian primitives: fixed-width integers, IEEE-754 bit-pattern
// floats, and length-prefixed strings/slices. A Dec carries a sticky
// error so message decoders read fields linearly and check once.

// AppendU8 appends one byte.
func AppendU8(dst []byte, v uint8) []byte { return append(dst, v) }

// AppendU32 appends v little-endian.
func AppendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }

// AppendU64 appends v little-endian.
func AppendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

// AppendI64 appends v as its two's-complement u64 bit pattern.
func AppendI64(dst []byte, v int64) []byte { return AppendU64(dst, uint64(v)) }

// AppendF64 appends v's IEEE-754 bit pattern (bit-exact round-trip).
func AppendF64(dst []byte, v float64) []byte { return AppendU64(dst, math.Float64bits(v)) }

// AppendF64s appends every value's bit pattern: the destination grows
// once and a fixed-stride loop fills it, instead of paying append's
// length/capacity bookkeeping per element. Parameter broadcasts and
// gradient reports move whole vectors through this path every round,
// so the per-element overhead is the dominant encode cost at scale.
func AppendF64s(dst []byte, src []float64) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, 8*len(src))...)
	buf := dst[off:]
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return dst
}

// DecodeF64s fills dst from the first 8*len(dst) bytes of src, which
// the caller must already have bounds-checked against the frame
// header. The bulk counterpart of Dec.F64 for vector payloads.
func DecodeF64s(dst []float64, src []byte) {
	if len(dst) == 0 {
		return
	}
	src = src[: 8*len(dst) : 8*len(dst)]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// AppendString appends a u32 length prefix followed by the raw bytes.
func AppendString(dst []byte, s string) []byte {
	dst = AppendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendInts appends a u32 count followed by each value as u32.
// Values must fit in u32 and be non-negative.
func AppendInts(dst []byte, vs []int) ([]byte, error) {
	dst = AppendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		if v < 0 || int64(v) > math.MaxUint32 {
			return nil, fmt.Errorf("wire: int %d outside u32 range", v)
		}
		dst = AppendU32(dst, uint32(v))
	}
	return dst, nil
}

// Dec decodes primitive fields from a payload with a sticky error: the
// first failed read poisons the decoder, later reads return zero
// values, and Err reports the first failure (plus trailing garbage if
// the payload was not fully consumed when Done is used).
type Dec struct {
	src []byte
	off int
	err error
}

// NewDec returns a decoder over src.
func NewDec(src []byte) *Dec { return &Dec{src: src} }

// fail records the first error.
func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// take returns the next n bytes, or nil after poisoning the decoder.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.src)-d.off < n {
		d.fail("payload truncated: need %d bytes at offset %d of %d", n, d.off, len(d.src))
		return nil
	}
	b := d.src[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian u32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian u64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a two's-complement i64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads an IEEE-754 bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Int reads a u32 as int.
func (d *Dec) Int() int { return int(d.U32()) }

// String reads a u32-length-prefixed string.
func (d *Dec) String() string {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Ints reads a u32-count-prefixed []int (nil for count 0).
func (d *Dec) Ints() []int {
	n := int(d.U32())
	if d.err != nil || n == 0 {
		return nil
	}
	// The count is validated against the remaining payload before
	// allocating, so a hostile count cannot trigger an oversized make.
	if len(d.src)-d.off < n*4 {
		d.fail("payload declares %d ints with %d bytes left", n, len(d.src)-d.off)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.U32())
	}
	return out
}

// Rest returns every remaining byte (possibly empty).
func (d *Dec) Rest() []byte {
	if d.err != nil {
		return nil
	}
	b := d.src[d.off:]
	d.off = len(d.src)
	return b
}

// Skip advances n bytes without decoding them.
func (d *Dec) Skip(n int) { d.take(n) }

// Offset reports how many bytes have been consumed.
func (d *Dec) Offset() int { return d.off }

// Err returns the first decode failure, or nil.
func (d *Dec) Err() error { return d.err }

// Done returns the first decode failure, or an error if the payload
// has trailing bytes — message payloads must be consumed exactly.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.src) {
		return fmt.Errorf("wire: payload has %d trailing bytes", len(d.src)-d.off)
	}
	return nil
}
