// Moment-frame codec for the adversary coordination sidecar: the
// payload a Byzantine coalition leader publishes each round (the
// gradient population's mean and standard deviation over all f file
// gradients) and the hub rebroadcasts to every member. The layout
// follows the gradient-frame conventions of this package — canonical
// little-endian, IEEE-754 bit patterns, one valid encoding per frame —
// so a decoded share reproduces the leader's moments bit-exactly and a
// coalition member crafts the same ALIE payload the in-process
// omniscient attacker would.
//
// Payload layout (wrapped in a control frame by internal/advnet):
//
//	u32  round
//	u32  coalition member count
//	u32  gradient dimension d
//	d ×  f64 mean
//	d ×  f64 standard deviation
package wire

import "fmt"

// MomentFrame is a decoded coalition moment share. Mu and Sigma are
// reused across DecodeMomentFrame calls when capacities allow.
type MomentFrame struct {
	Round   int
	Members int
	Mu      []float64
	Sigma   []float64
}

// AppendMomentFrame appends the encoded frame payload to dst. Mu and
// Sigma must have equal length.
func AppendMomentFrame(dst []byte, f *MomentFrame) ([]byte, error) {
	if len(f.Mu) != len(f.Sigma) {
		return nil, fmt.Errorf("wire: moment frame with %d mean but %d sigma values", len(f.Mu), len(f.Sigma))
	}
	if f.Round < 0 || f.Members < 0 {
		return nil, fmt.Errorf("wire: moment frame round %d / members %d negative", f.Round, f.Members)
	}
	dst = AppendU32(dst, uint32(f.Round))
	dst = AppendU32(dst, uint32(f.Members))
	dst = AppendU32(dst, uint32(len(f.Mu)))
	for _, v := range f.Mu {
		dst = AppendF64(dst, v)
	}
	for _, v := range f.Sigma {
		dst = AppendF64(dst, v)
	}
	return dst, nil
}

// DecodeMomentFrame parses one moment payload into f. The declared
// dimension is validated against the payload length before any
// allocation, so arbitrary input cannot trigger an oversized make.
func DecodeMomentFrame(src []byte, f *MomentFrame) error {
	d := NewDec(src)
	f.Round = d.Int()
	f.Members = d.Int()
	dim := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if rem := len(src) - d.Offset(); dim < 0 || rem != dim*16 {
		return fmt.Errorf("wire: moment frame declares dim %d with %d value bytes", dim, len(src)-d.Offset())
	}
	if cap(f.Mu) < dim {
		f.Mu = make([]float64, dim)
	}
	if cap(f.Sigma) < dim {
		f.Sigma = make([]float64, dim)
	}
	f.Mu = f.Mu[:dim]
	f.Sigma = f.Sigma[:dim]
	for i := range f.Mu {
		f.Mu[i] = d.F64()
	}
	for i := range f.Sigma {
		f.Sigma[i] = d.F64()
	}
	return d.Done()
}
