// Package wire implements the compact binary gradient-frame codec: the
// wire format for a worker's per-round gradient report, replacing the
// gob round-trip on the hot path. The layout is canonical (one valid
// encoding per frame) and allocation-free on both sides when buffers
// are reused, which is what the cluster engine's MeasureComm mode and
// the TCP GradientReport message use. The codec lives below both
// internal/cluster and internal/transport so that the transport server
// can drive the cluster round core without an import cycle.
//
// Frame layout, all little-endian:
//
//	u32  payload length (bytes after this field)
//	u32  worker id
//	u32  file count n
//	u32  gradient dimension d (0 when n == 0)
//	n ×  u32 file id
//	n ×  d × f64 gradient values (IEEE-754 bit patterns)
//
// Because floats are transported as raw bit patterns, a decode is
// bit-exact: NaN payloads, signed zeros, and subnormals survive the
// round-trip unchanged.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// gradFrameHeader is the fixed part of the payload: worker, n, d.
const gradFrameHeader = 12

// GradFrameSize returns the encoded size in bytes of a frame with n
// files of dimension d, including the length prefix.
func GradFrameSize(n, d int) int {
	return 4 + gradFrameHeader + n*4 + n*d*8
}

// AppendGradFrame appends one encoded frame to dst and returns the
// extended slice. files and grads must have equal length and every
// gradient the same dimension.
func AppendGradFrame(dst []byte, worker int, files []int, grads [][]float64) ([]byte, error) {
	if len(files) != len(grads) {
		return nil, fmt.Errorf("wire: %d files but %d gradients", len(files), len(grads))
	}
	if worker < 0 || int64(worker) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: worker id %d outside u32 range", worker)
	}
	n := len(files)
	d := 0
	if n > 0 {
		d = len(grads[0])
	}
	for i, g := range grads {
		if len(g) != d {
			return nil, fmt.Errorf("wire: gradient %d has dim %d, want %d", i, len(g), d)
		}
	}
	payload := gradFrameHeader + n*4 + n*d*8
	if uint64(payload) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: frame payload %d bytes exceeds u32 length prefix", payload)
	}
	dst = append32(dst, uint32(payload))
	dst = append32(dst, uint32(worker))
	dst = append32(dst, uint32(n))
	dst = append32(dst, uint32(d))
	for _, v := range files {
		if v < 0 || int64(v) > math.MaxUint32 {
			return nil, fmt.Errorf("wire: file id %d outside u32 range", v)
		}
		dst = append32(dst, uint32(v))
	}
	for _, g := range grads {
		dst = AppendF64s(dst, g)
	}
	return dst, nil
}

// GradFrame is a decoded gradient frame. Its slices are reused across
// DecodeGradFrame calls when capacities allow, so a long-lived frame
// decodes rounds without allocating.
type GradFrame struct {
	Worker int
	Files  []int
	Grads  [][]float64
}

// DecodeGradFrame parses one frame from the front of src into f,
// returning the number of bytes consumed. The frame is validated
// structurally: the payload length must match the declared file count
// and dimension exactly, so arbitrary input can never trigger an
// oversized allocation (the declared sizes are bounded by len(src)).
func DecodeGradFrame(src []byte, f *GradFrame) (int, error) {
	if len(src) < 4+gradFrameHeader {
		return 0, fmt.Errorf("wire: frame truncated at %d bytes", len(src))
	}
	payload := int(binary.LittleEndian.Uint32(src))
	if payload < gradFrameHeader || payload > len(src)-4 {
		return 0, fmt.Errorf("wire: frame payload %d bytes, have %d", payload, len(src)-4)
	}
	body := src[4 : 4+payload]
	f.Worker = int(binary.LittleEndian.Uint32(body))
	// Sizes are validated with division in uint64 space, so a hostile
	// header cannot overflow the expected-length arithmetic or trigger
	// an oversized allocation (everything is bounded by len(src)).
	n64 := uint64(binary.LittleEndian.Uint32(body[4:]))
	d64 := uint64(binary.LittleEndian.Uint32(body[8:]))
	rem := uint64(payload) - gradFrameHeader
	if n64 == 0 {
		if d64 != 0 || rem != 0 {
			return 0, fmt.Errorf("wire: empty frame declares dim %d with %d payload bytes", d64, rem)
		}
	} else {
		if n64 > rem/4 {
			return 0, fmt.Errorf("wire: frame declares %d files for %d payload bytes", n64, rem)
		}
		valBytes := rem - n64*4
		if valBytes%(n64*8) != 0 || valBytes/(n64*8) != d64 {
			return 0, fmt.Errorf("wire: frame declares %d×%d values for %d value bytes", n64, d64, valBytes)
		}
	}
	n, d := int(n64), int(d64)
	if cap(f.Files) < n {
		f.Files = make([]int, n)
	}
	f.Files = f.Files[:n]
	for i := range f.Files {
		f.Files[i] = int(binary.LittleEndian.Uint32(body[gradFrameHeader+i*4:]))
	}
	if cap(f.Grads) < n {
		grads := make([][]float64, n)
		copy(grads, f.Grads)
		f.Grads = grads
	}
	f.Grads = f.Grads[:n]
	vals := body[gradFrameHeader+n*4:]
	for i := 0; i < n; i++ {
		if cap(f.Grads[i]) < d {
			f.Grads[i] = make([]float64, d)
		}
		g := f.Grads[i][:d]
		DecodeF64s(g, vals[i*d*8:])
		f.Grads[i] = g
	}
	return 4 + payload, nil
}

// append32 appends v little-endian.
func append32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}
