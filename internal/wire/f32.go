// Float32 codec set (protocol v7). The negotiated precision tier lets
// a run move gradient reports and parameter broadcasts as float32 bit
// patterns — half the bytes and half the kernel bandwidth of the f64
// frames — while keeping every invariant of the f64 codecs: canonical
// encodings, bit-exact round trips, and streaming delta bases that
// stay in lockstep across a connection.
//
// Precision is connection state, not frame state: the Hello advertises
// a supported-precisions bitmask, the Welcome pins one Precision for
// the connection, and from then on every gradient/params frame on that
// connection is interpreted at that width. The frame modes (UplinkRaw,
// UplinkDelta, UplinkSign, UplinkInt8, ParamsFull, ParamsDelta) are
// shared with the f64 codecs — the byte layouts differ only in value
// width (f32 bit patterns, 4-byte XOR payloads, f32 quantization
// scales), so no new mode numbers exist to disagree about.
//
// Layout deltas against the f64 codecs, little-endian throughout:
//
//	gradient frame:  n × d × f32 bit patterns (codec.go, 8→4 bytes)
//	params full:     d × f32 bit patterns (delta.go)
//	params delta:    per-coordinate XOR of u32 bit patterns, nibble
//	                 lengths 0–4 (0–8 for f64)
//	uplink delta:    same u32 XOR change
//	uplink sign:     n × f32 row scale (8→4 bytes per row)
//	uplink int8:     n × (f32 min, f32 scale) (16→8 bytes per row)
//
// The lossy tiers quantize in float32 arithmetic, and the in-place
// helpers (SignQuantizeInPlace32, Int8QuantizeInPlace32) perform the
// identical float operations as an encode→decode round trip — the same
// determinism contract quant.go documents for f64, which is what lets
// the in-process f32 engine reproduce a lossy f32 TCP run bit for bit.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
)

// Precision selects the numeric width of a connection's gradient and
// parameter frames. The zero value is float64, so zero-valued configs
// keep the pre-v7 behavior.
type Precision uint8

const (
	// PrecisionF64 is the full-precision tier (the default).
	PrecisionF64 Precision = 0
	// PrecisionF32 is the reduced-precision tier: every value frame on
	// the connection carries float32 bit patterns.
	PrecisionF32 Precision = 1
)

// Valid reports whether p names a defined precision tier.
func (p Precision) Valid() bool { return p <= PrecisionF32 }

// Mask returns the precision's bit in the Hello supported-precisions
// bitmask.
func (p Precision) Mask() uint8 { return 1 << p }

// String returns the flag spelling of the precision.
func (p Precision) String() string {
	switch p {
	case PrecisionF64:
		return "f64"
	case PrecisionF32:
		return "f32"
	default:
		return fmt.Sprintf("precision(%d)", uint8(p))
	}
}

// ParsePrecision parses the flag spelling of a precision tier.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64":
		return PrecisionF64, nil
	case "f32", "float32":
		return PrecisionF32, nil
	default:
		return 0, fmt.Errorf("wire: unknown precision %q (want f64 or f32)", s)
	}
}

// AllPrecisionsMask is the supported-precisions bitmask of a peer
// implementing both tiers (what the v7 worker advertises in its Hello).
const AllPrecisionsMask = uint8(1<<PrecisionF64 | 1<<PrecisionF32)

// AppendF32s appends every value's IEEE-754 bit pattern — the float32
// counterpart of AppendF64s, with the same grow-once bulk layout.
func AppendF32s(dst []byte, src []float32) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, 4*len(src))...)
	buf := dst[off:]
	for i, v := range src {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	return dst
}

// DecodeF32s fills dst from the first 4*len(dst) bytes of src, which
// the caller must already have bounds-checked against the frame header.
func DecodeF32s(dst []float32, src []byte) {
	if len(dst) == 0 {
		return
	}
	src = src[: 4*len(dst) : 4*len(dst)]
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
	}
}

// --- Gradient frame --------------------------------------------------

// GradFrame32Size returns the encoded size in bytes of an f32 gradient
// frame with n files of dimension d, including the length prefix.
func GradFrame32Size(n, d int) int {
	return 4 + gradFrameHeader + n*4 + n*d*4
}

// AppendGradFrame32 appends one encoded f32 gradient frame to dst —
// the AppendGradFrame layout with 4-byte value words.
func AppendGradFrame32(dst []byte, worker int, files []int, grads [][]float32) ([]byte, error) {
	if len(files) != len(grads) {
		return nil, fmt.Errorf("wire: %d files but %d gradients", len(files), len(grads))
	}
	if worker < 0 || int64(worker) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: worker id %d outside u32 range", worker)
	}
	n := len(files)
	d := 0
	if n > 0 {
		d = len(grads[0])
	}
	for i, g := range grads {
		if len(g) != d {
			return nil, fmt.Errorf("wire: gradient %d has dim %d, want %d", i, len(g), d)
		}
	}
	payload := gradFrameHeader + n*4 + n*d*4
	if uint64(payload) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: frame payload %d bytes exceeds u32 length prefix", payload)
	}
	dst = append32(dst, uint32(payload))
	dst = append32(dst, uint32(worker))
	dst = append32(dst, uint32(n))
	dst = append32(dst, uint32(d))
	for _, v := range files {
		if v < 0 || int64(v) > math.MaxUint32 {
			return nil, fmt.Errorf("wire: file id %d outside u32 range", v)
		}
		dst = append32(dst, uint32(v))
	}
	for _, g := range grads {
		dst = AppendF32s(dst, g)
	}
	return dst, nil
}

// GradFrame32 is a decoded f32 gradient frame under the same
// buffer-reuse contract as GradFrame.
type GradFrame32 struct {
	Worker int
	Files  []int
	Grads  [][]float32
}

// DecodeGradFrame32 parses one f32 gradient frame from the front of
// src into f, returning the bytes consumed. Validation mirrors
// DecodeGradFrame: sizes are checked in uint64 space against the
// actual payload, so hostile headers cannot trigger oversized
// allocations.
func DecodeGradFrame32(src []byte, f *GradFrame32) (int, error) {
	if len(src) < 4+gradFrameHeader {
		return 0, fmt.Errorf("wire: frame truncated at %d bytes", len(src))
	}
	payload := int(binary.LittleEndian.Uint32(src))
	if payload < gradFrameHeader || payload > len(src)-4 {
		return 0, fmt.Errorf("wire: frame payload %d bytes, have %d", payload, len(src)-4)
	}
	body := src[4 : 4+payload]
	f.Worker = int(binary.LittleEndian.Uint32(body))
	n64 := uint64(binary.LittleEndian.Uint32(body[4:]))
	d64 := uint64(binary.LittleEndian.Uint32(body[8:]))
	rem := uint64(payload) - gradFrameHeader
	if n64 == 0 {
		if d64 != 0 || rem != 0 {
			return 0, fmt.Errorf("wire: empty frame declares dim %d with %d payload bytes", d64, rem)
		}
	} else {
		if n64 > rem/4 {
			return 0, fmt.Errorf("wire: frame declares %d files for %d payload bytes", n64, rem)
		}
		valBytes := rem - n64*4
		if valBytes%(n64*4) != 0 || valBytes/(n64*4) != d64 {
			return 0, fmt.Errorf("wire: frame declares %d×%d values for %d value bytes", n64, d64, valBytes)
		}
	}
	n, d := int(n64), int(d64)
	if cap(f.Files) < n {
		f.Files = make([]int, n)
	}
	f.Files = f.Files[:n]
	for i := range f.Files {
		f.Files[i] = int(binary.LittleEndian.Uint32(body[gradFrameHeader+i*4:]))
	}
	if cap(f.Grads) < n {
		grads := make([][]float32, n)
		copy(grads, f.Grads)
		f.Grads = grads
	}
	f.Grads = f.Grads[:n]
	vals := body[gradFrameHeader+n*4:]
	for i := 0; i < n; i++ {
		if cap(f.Grads[i]) < d {
			f.Grads[i] = make([]float32, d)
		}
		g := f.Grads[i][:d]
		DecodeF32s(g, vals[i*d*4:])
		f.Grads[i] = g
	}
	return 4 + payload, nil
}

// --- Parameter broadcast ---------------------------------------------

// ParamsFull32Size returns the encoded size of a full f32 params frame.
func ParamsFull32Size(d int) int { return paramsHeader + 4*d }

// AppendParamsFull32 appends a full f32 vector frame to dst.
func AppendParamsFull32(dst []byte, params []float32) ([]byte, error) {
	if int64(len(params)) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: %d params exceed u32 count", len(params))
	}
	dst = append(dst, ParamsFull)
	dst = AppendU32(dst, uint32(len(params)))
	return AppendF32s(dst, params), nil
}

// AppendParamsDelta32 appends an f32 delta frame encoding cur against
// base: per coordinate the XOR of the u32 bit patterns, nibble-packed
// byte lengths 0–4, high-order zero bytes stripped.
func AppendParamsDelta32(dst []byte, base, cur []float32) ([]byte, error) {
	if len(base) != len(cur) {
		return nil, fmt.Errorf("wire: delta base has %d params, cur %d", len(base), len(cur))
	}
	if int64(len(cur)) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: %d params exceed u32 count", len(cur))
	}
	d := len(cur)
	dst = append(dst, ParamsDelta)
	dst = AppendU32(dst, uint32(d))
	nibbleAt := len(dst)
	dst = append(dst, make([]byte, (d+1)/2)...)
	for i := 0; i < d; i++ {
		x := uint64(math.Float32bits(base[i]) ^ math.Float32bits(cur[i]))
		n := xorLen(x)
		orNibbleLen(dst[nibbleAt:], i, n)
		dst = appendXORBytes(dst, x, n)
	}
	return dst, nil
}

// DecodeParams32 parses one f32 params frame from the front of src and
// applies it to params in place, under the exact contract of
// DecodeParams (canonical lengths, partial updates on error are
// garbage). Delta lengths above 4 are rejected — a u32 XOR has at most
// four significant bytes.
func DecodeParams32(src []byte, params []float32) (mode, consumed int, err error) {
	if len(src) < paramsHeader {
		return 0, 0, fmt.Errorf("wire: params frame truncated at %d bytes", len(src))
	}
	mode = int(src[0])
	d64 := uint64(src[1]) | uint64(src[2])<<8 | uint64(src[3])<<16 | uint64(src[4])<<24
	if d64 != uint64(len(params)) {
		return 0, 0, fmt.Errorf("wire: params frame has %d coordinates, want %d", d64, len(params))
	}
	d := len(params)
	body := src[paramsHeader:]
	switch mode {
	case ParamsFull:
		if len(body) < 4*d {
			return 0, 0, fmt.Errorf("wire: full params frame needs %d bytes, have %d", 4*d, len(body))
		}
		DecodeF32s(params, body)
		return ParamsFull, paramsHeader + 4*d, nil
	case ParamsDelta:
		nb := (d + 1) / 2
		if len(body) < nb {
			return 0, 0, fmt.Errorf("wire: delta frame needs %d length bytes, have %d", nb, len(body))
		}
		nibbles, payload := body[:nb], body[nb:]
		off := 0
		for i := 0; i < d; i++ {
			n := nibbleLen(nibbles, i)
			if n > 4 {
				return 0, 0, fmt.Errorf("wire: f32 delta length %d > 4 at coordinate %d", n, i)
			}
			if len(payload)-off < n {
				return 0, 0, fmt.Errorf("wire: delta payload truncated at coordinate %d", i)
			}
			if n > 0 && payload[off+n-1] == 0 {
				return 0, 0, fmt.Errorf("wire: non-canonical delta length at coordinate %d", i)
			}
			x := xorFromBytes(payload[off:], n)
			off += n
			params[i] = math.Float32frombits(math.Float32bits(params[i]) ^ uint32(x))
		}
		if d%2 == 1 && nibbles[nb-1]>>4 != 0 {
			return 0, 0, fmt.Errorf("wire: delta frame has a set padding nibble")
		}
		return ParamsDelta, paramsHeader + nb + off, nil
	default:
		return 0, 0, fmt.Errorf("wire: unknown params frame mode %d", mode)
	}
}

// --- Uplink codec ----------------------------------------------------

// UplinkRaw32Size returns the encoded size of a raw f32 uplink frame.
func UplinkRaw32Size(n, d int) int { return 1 + GradFrame32Size(n, d) }

// UplinkSign32Size returns the encoded size of an f32 sign uplink
// frame: the sign bits are width-independent, only the row scale
// shrinks to four bytes.
func UplinkSign32Size(n, d int) int {
	return uplinkDeltaHeader + n*4 + n*4 + n*signBytesPerRow(d)
}

// UplinkInt832Size returns the encoded size of an f32 int8 uplink
// frame (per-row min and scale as f32).
func UplinkInt832Size(n, d int) int {
	return uplinkDeltaHeader + n*4 + n*8 + n*d
}

// abs32 clears the sign bit — exact for every float32 including -0 and
// NaN payloads, with no round trip through float64.
func abs32(v float32) float32 {
	return math.Float32frombits(math.Float32bits(v) &^ (1 << 31))
}

// signScale32 returns the f32 sign tier's row scale: the mean absolute
// value accumulated in float32 (0 for an empty row).
// SignQuantizeInPlace32 must perform the identical operations.
func signScale32(g []float32) float32 {
	if len(g) == 0 {
		return 0
	}
	var sum float32
	for _, v := range g {
		sum += abs32(v)
	}
	return sum / float32(len(g))
}

// int8Params32 returns the f32 int8 tier's row (min, scale) with the
// same comparison loop as the f64 tier, in float32.
func int8Params32(g []float32) (min, scale float32) {
	if len(g) == 0 {
		return 0, 0
	}
	min, max := g[0], g[0]
	for _, v := range g[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, (max - min) / 255
}

// int8Quantize32 maps one value onto the row's grid. The offset and
// step are computed in float32 and only the final rounding widens (Go
// has no float32 Round); NaN and -Inf clamp to 0, +Inf to 255.
func int8Quantize32(v, min, scale float32) uint8 {
	if scale == 0 {
		return 0
	}
	t := math.Round(float64((v - min) / scale))
	if !(t > 0) {
		return 0
	}
	if t > 255 {
		return 255
	}
	return uint8(t)
}

// SignQuantizeInPlace32 replaces g with the values an f32 sign-tier
// encode→decode round trip would deliver, using the identical float
// operations.
func SignQuantizeInPlace32(g []float32) {
	s := signScale32(g)
	for j, v := range g {
		if math.Signbit(float64(v)) {
			g[j] = -s
		} else {
			g[j] = s
		}
	}
}

// Int8QuantizeInPlace32 replaces g with the values an f32 int8-tier
// encode→decode round trip would deliver, using the identical float
// operations.
func Int8QuantizeInPlace32(g []float32) {
	min, scale := int8Params32(g)
	for j, v := range g {
		g[j] = min + scale*float32(int8Quantize32(v, min, scale))
	}
}

// appendQuantHeader32 appends the shared quantized-frame prefix (the
// same bytes as the f64 header; only value payloads differ by width).
func appendQuantHeader32(dst []byte, mode byte, worker int, files []int, d int) ([]byte, error) {
	return appendQuantHeader(dst, mode, worker, files, d)
}

// appendUplinkSign32 appends one f32 sign-tier frame.
func appendUplinkSign32(dst []byte, worker int, files []int, grads [][]float32) ([]byte, error) {
	n := len(files)
	d := 0
	if n > 0 {
		d = len(grads[0])
	}
	dst, err := appendQuantHeader32(dst, UplinkSign, worker, files, d)
	if err != nil {
		return nil, err
	}
	for i, g := range grads {
		s := signScale32(g)
		if s != s {
			return nil, fmt.Errorf("wire: sign frame row %d has NaN scale (non-finite gradient)", i)
		}
		dst = append32(dst, math.Float32bits(s))
	}
	bpr := signBytesPerRow(d)
	for _, g := range grads {
		at := len(dst)
		dst = append(dst, make([]byte, bpr)...)
		bits := dst[at:]
		for j, v := range g {
			if !math.Signbit(float64(v)) {
				bits[j/8] |= 1 << (j % 8)
			}
		}
	}
	return dst, nil
}

// appendUplinkInt832 appends one f32 int8-tier frame.
func appendUplinkInt832(dst []byte, worker int, files []int, grads [][]float32) ([]byte, error) {
	n := len(files)
	d := 0
	if n > 0 {
		d = len(grads[0])
	}
	dst, err := appendQuantHeader32(dst, UplinkInt8, worker, files, d)
	if err != nil {
		return nil, err
	}
	for _, g := range grads {
		min, scale := int8Params32(g)
		dst = append32(dst, math.Float32bits(min))
		dst = append32(dst, math.Float32bits(scale))
	}
	for _, g := range grads {
		at := len(dst)
		dst = append(dst, make([]byte, d)...)
		q := dst[at:]
		min, scale := int8Params32(g)
		for j, v := range g {
			q[j] = int8Quantize32(v, min, scale)
		}
	}
	return dst, nil
}

// UplinkEncoder32 is the worker-side streaming state of the f32 uplink
// codec, under the exact contract of UplinkEncoder: one ordered frame
// stream per encoder, Reset on reconnect, tier dispatch per Encode.
type UplinkEncoder32 struct {
	// Tier selects the codec this stream runs (see UplinkEncoder.Tier).
	Tier UplinkTier

	prev      []float32
	prevFiles []int
	scratch   []byte
}

// Reset drops the delta base, as if no frame had been sent yet.
func (e *UplinkEncoder32) Reset() {
	e.prev = e.prev[:0]
	e.prevFiles = e.prevFiles[:0]
}

// Encode appends one f32 uplink frame for the report to dst, choosing
// the smaller of the delta and raw encodings on the lossless default
// tier, and rolls the base forward. Returns the extended buffer, the
// mode chosen, and the raw-frame size (the uncompressed cost).
func (e *UplinkEncoder32) Encode(dst []byte, worker int, files []int, grads [][]float32) (out []byte, mode, rawSize int, err error) {
	if len(files) != len(grads) {
		return nil, 0, 0, fmt.Errorf("wire: %d files but %d gradients", len(files), len(grads))
	}
	n := len(files)
	d := 0
	if n > 0 {
		d = len(grads[0])
	}
	for i, g := range grads {
		if len(g) != d {
			return nil, 0, 0, fmt.Errorf("wire: gradient %d has dim %d, want %d", i, len(g), d)
		}
	}
	rawSize = UplinkRaw32Size(n, d)
	switch e.Tier {
	case TierRaw:
		e.Reset()
		out = append(dst, UplinkRaw)
		out, err = AppendGradFrame32(out, worker, files, grads)
		if err != nil {
			return nil, 0, 0, err
		}
		return out, UplinkRaw, rawSize, nil
	case TierSign:
		e.Reset()
		if out, err = appendUplinkSign32(dst, worker, files, grads); err != nil {
			return nil, 0, 0, err
		}
		return out, UplinkSign, rawSize, nil
	case TierInt8:
		e.Reset()
		if out, err = appendUplinkInt832(dst, worker, files, grads); err != nil {
			return nil, 0, 0, err
		}
		return out, UplinkInt8, rawSize, nil
	}
	useDelta := n > 0 && len(e.prev) == n*d && slices.Equal(e.prevFiles, files)
	if useDelta {
		delta, derr := e.appendDelta(e.scratch[:0], worker, files, grads)
		if derr != nil {
			return nil, 0, 0, derr
		}
		e.scratch = delta
		if len(delta) < rawSize {
			out = append(dst, delta...)
			e.rollBase(files, grads)
			return out, UplinkDelta, rawSize, nil
		}
	}
	out = append(dst, UplinkRaw)
	out, err = AppendGradFrame32(out, worker, files, grads)
	if err != nil {
		return nil, 0, 0, err
	}
	e.rollBase(files, grads)
	return out, UplinkRaw, rawSize, nil
}

// appendDelta builds the f32 delta frame for the report against e.prev.
func (e *UplinkEncoder32) appendDelta(dst []byte, worker int, files []int, grads [][]float32) ([]byte, error) {
	if worker < 0 || int64(worker) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: worker id %d outside u32 range", worker)
	}
	n, d := len(files), len(grads[0])
	dst = append(dst, UplinkDelta)
	dst = append32(dst, uint32(worker))
	dst = append32(dst, uint32(n))
	dst = append32(dst, uint32(d))
	for _, v := range files {
		if v < 0 || int64(v) > math.MaxUint32 {
			return nil, fmt.Errorf("wire: file id %d outside u32 range", v)
		}
		dst = append32(dst, uint32(v))
	}
	nibbleAt := len(dst)
	dst = append(dst, make([]byte, (n*d+1)/2)...)
	idx := 0
	for i, g := range grads {
		base := e.prev[i*d : (i+1)*d]
		for j, v := range g {
			x := uint64(math.Float32bits(base[j]) ^ math.Float32bits(v))
			nb := xorLen(x)
			orNibbleLen(dst[nibbleAt:], idx, nb)
			dst = appendXORBytes(dst, x, nb)
			idx++
		}
	}
	return dst, nil
}

// rollBase records the report as the next frame's delta base.
func (e *UplinkEncoder32) rollBase(files []int, grads [][]float32) {
	n := len(files)
	d := 0
	if n > 0 {
		d = len(grads[0])
	}
	if cap(e.prev) < n*d {
		e.prev = make([]float32, n*d)
	}
	e.prev = e.prev[:n*d]
	for i, g := range grads {
		copy(e.prev[i*d:(i+1)*d], g)
	}
	e.prevFiles = append(e.prevFiles[:0], files...)
}

// UplinkDecoder32 is the PS-side streaming state of the f32 uplink
// codec for one worker connection, under the exact contract of
// UplinkDecoder (ordered loss-free stream, decode-even-if-stale,
// poisoned stream on error).
type UplinkDecoder32 struct {
	// Tier mirrors the connection's negotiated tier and bounds what the
	// decoder accepts (see UplinkDecoder.Tier).
	Tier UplinkTier

	prev       []float32
	prevFiles  []int
	prevWorker int
}

// Reset drops the delta base (a fresh connection's state).
func (dec *UplinkDecoder32) Reset() {
	dec.prev = dec.prev[:0]
	dec.prevFiles = dec.prevFiles[:0]
	dec.prevWorker = 0
}

// Decode parses one f32 uplink frame from the front of src into f and
// rolls the base forward, returning the mode and bytes consumed.
func (dec *UplinkDecoder32) Decode(src []byte, f *GradFrame32) (mode, consumed int, err error) {
	if len(src) < 1 {
		return 0, 0, fmt.Errorf("wire: empty uplink frame")
	}
	mode = int(src[0])
	if !dec.accepts(mode) {
		return 0, 0, fmt.Errorf("wire: uplink frame mode %d outside negotiated tier %s", mode, dec.Tier)
	}
	switch mode {
	case UplinkRaw:
		n, err := DecodeGradFrame32(src[1:], f)
		if err != nil {
			return 0, 0, err
		}
		if dec.Tier == TierRaw {
			dec.Reset()
		} else {
			dec.rollBase(f)
		}
		return UplinkRaw, 1 + n, nil
	case UplinkDelta:
		consumed, err := dec.decodeDelta(src, f)
		if err != nil {
			return 0, 0, err
		}
		return UplinkDelta, consumed, nil
	case UplinkSign:
		consumed, err := decodeUplinkSign32(src, f)
		if err != nil {
			return 0, 0, err
		}
		return UplinkSign, consumed, nil
	case UplinkInt8:
		consumed, err := decodeUplinkInt832(src, f)
		if err != nil {
			return 0, 0, err
		}
		return UplinkInt8, consumed, nil
	default:
		return 0, 0, fmt.Errorf("wire: unknown uplink frame mode %d", mode)
	}
}

// accepts reports whether the decoder's tier takes frames of mode m.
func (dec *UplinkDecoder32) accepts(m int) bool {
	switch dec.Tier {
	case TierRaw:
		return m == UplinkRaw
	case TierDelta:
		return m == UplinkRaw || m == UplinkDelta
	case TierSign:
		return m == UplinkSign
	case TierInt8:
		return m == UplinkInt8
	default:
		return false
	}
}

// decodeDelta parses an f32 delta frame and applies it to the base,
// leaving the reconstructed values in both f.Grads and the base.
func (dec *UplinkDecoder32) decodeDelta(src []byte, f *GradFrame32) (int, error) {
	if len(src) < uplinkDeltaHeader {
		return 0, fmt.Errorf("wire: uplink delta frame truncated at %d bytes", len(src))
	}
	worker := int(binary.LittleEndian.Uint32(src[1:]))
	n64 := uint64(binary.LittleEndian.Uint32(src[5:]))
	d64 := uint64(binary.LittleEndian.Uint32(src[9:]))
	n := len(dec.prevFiles)
	if n == 0 {
		return 0, fmt.Errorf("wire: uplink delta frame with no base report")
	}
	if worker != dec.prevWorker {
		return 0, fmt.Errorf("wire: uplink delta claims worker %d, base is worker %d", worker, dec.prevWorker)
	}
	d := len(dec.prev) / n
	if n64 != uint64(n) || d64 != uint64(d) {
		return 0, fmt.Errorf("wire: uplink delta declares %d×%d values, base is %d×%d", n64, d64, n, d)
	}
	if len(src) < uplinkDeltaHeader+n*4 {
		return 0, fmt.Errorf("wire: uplink delta frame truncated in file list")
	}
	for i := 0; i < n; i++ {
		v := int(binary.LittleEndian.Uint32(src[uplinkDeltaHeader+i*4:]))
		if v != dec.prevFiles[i] {
			return 0, fmt.Errorf("wire: uplink delta file %d is %d, base has %d", i, v, dec.prevFiles[i])
		}
	}
	nb := (n*d + 1) / 2
	body := src[uplinkDeltaHeader+n*4:]
	if len(body) < nb {
		return 0, fmt.Errorf("wire: uplink delta needs %d length bytes, have %d", nb, len(body))
	}
	nibbles, payload := body[:nb], body[nb:]
	off := 0
	for i := 0; i < n*d; i++ {
		ln := nibbleLen(nibbles, i)
		if ln > 4 {
			return 0, fmt.Errorf("wire: f32 uplink delta length %d > 4 at value %d", ln, i)
		}
		if len(payload)-off < ln {
			return 0, fmt.Errorf("wire: uplink delta payload truncated at value %d", i)
		}
		if ln > 0 && payload[off+ln-1] == 0 {
			return 0, fmt.Errorf("wire: non-canonical uplink delta length at value %d", i)
		}
		off += ln
	}
	if (n*d)%2 == 1 && nibbles[nb-1]>>4 != 0 {
		return 0, fmt.Errorf("wire: uplink delta frame has a set padding nibble")
	}
	f.Worker = worker
	if cap(f.Files) < n {
		f.Files = make([]int, n)
	}
	f.Files = f.Files[:n]
	copy(f.Files, dec.prevFiles)
	if cap(f.Grads) < n {
		grads := make([][]float32, n)
		copy(grads, f.Grads)
		f.Grads = grads
	}
	f.Grads = f.Grads[:n]
	off = 0
	for i := 0; i < n; i++ {
		if cap(f.Grads[i]) < d {
			f.Grads[i] = make([]float32, d)
		}
		g := f.Grads[i][:d]
		base := dec.prev[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			ln := nibbleLen(nibbles, i*d+j)
			x := xorFromBytes(payload[off:], ln)
			off += ln
			v := math.Float32frombits(math.Float32bits(base[j]) ^ uint32(x))
			base[j] = v
			g[j] = v
		}
		f.Grads[i] = g
	}
	return uplinkDeltaHeader + n*4 + nb + off, nil
}

// rollBase records a raw frame's contents as the next delta base.
func (dec *UplinkDecoder32) rollBase(f *GradFrame32) {
	dec.prevWorker = f.Worker
	n := len(f.Files)
	d := 0
	if n > 0 {
		d = len(f.Grads[0])
	}
	if cap(dec.prev) < n*d {
		dec.prev = make([]float32, n*d)
	}
	dec.prev = dec.prev[:n*d]
	for i, g := range f.Grads {
		copy(dec.prev[i*d:(i+1)*d], g)
	}
	dec.prevFiles = append(dec.prevFiles[:0], f.Files...)
}

// decodeQuantHeader32 validates the shared quantized-frame prefix into
// an f32 frame (the header bytes are width-independent).
func decodeQuantHeader32(src []byte, f *GradFrame32, scaleBytes int, valueBytes func(d uint64) uint64) (n, d int, body []byte, err error) {
	if len(src) < uplinkDeltaHeader {
		return 0, 0, nil, fmt.Errorf("wire: quantized uplink frame truncated at %d bytes", len(src))
	}
	worker := int(binary.LittleEndian.Uint32(src[1:]))
	n64 := uint64(binary.LittleEndian.Uint32(src[5:]))
	d64 := uint64(binary.LittleEndian.Uint32(src[9:]))
	rem := uint64(len(src) - uplinkDeltaHeader)
	if n64 > 0 && n64 > rem/4 {
		return 0, 0, nil, fmt.Errorf("wire: quantized frame declares %d files for %d bytes", n64, rem)
	}
	if n64 == 0 && d64 != 0 {
		return 0, 0, nil, fmt.Errorf("wire: empty quantized frame declares dim %d", d64)
	}
	perRow := uint64(scaleBytes) + valueBytes(d64)
	if n64 > 0 && (rem-n64*4)/n64 < perRow {
		return 0, 0, nil, fmt.Errorf("wire: quantized frame declares %d×%d values for %d bytes", n64, d64, rem)
	}
	n, d = int(n64), int(d64)
	f.Worker = worker
	if cap(f.Files) < n {
		f.Files = make([]int, n)
	}
	f.Files = f.Files[:n]
	for i := range f.Files {
		f.Files[i] = int(binary.LittleEndian.Uint32(src[uplinkDeltaHeader+i*4:]))
	}
	return n, d, src[uplinkDeltaHeader+n*4:], nil
}

// growGrads32 sizes f.Grads to n rows of d values under the
// buffer-reuse contract.
func growGrads32(f *GradFrame32, n, d int) {
	if cap(f.Grads) < n {
		grads := make([][]float32, n)
		copy(grads, f.Grads)
		f.Grads = grads
	}
	f.Grads = f.Grads[:n]
	for i := 0; i < n; i++ {
		if cap(f.Grads[i]) < d {
			f.Grads[i] = make([]float32, d)
		}
		f.Grads[i] = f.Grads[i][:d]
	}
}

// decodeUplinkSign32 parses one f32 sign frame into f, returning the
// bytes consumed, with the canonicality rules of the f64 decoder.
func decodeUplinkSign32(src []byte, f *GradFrame32) (int, error) {
	bpr := uint64(0)
	n, d, body, err := decodeQuantHeader32(src, f, 4, func(d uint64) uint64 {
		bpr = (d + 7) / 8
		return bpr
	})
	if err != nil {
		return 0, err
	}
	if uint64(len(body)) < uint64(n)*(4+bpr) {
		return 0, fmt.Errorf("wire: sign frame truncated: %d rows need %d bytes, have %d", n, uint64(n)*(4+bpr), len(body))
	}
	growGrads32(f, n, d)
	bits := body[n*4:]
	for i := 0; i < n; i++ {
		sb := binary.LittleEndian.Uint32(body[i*4:])
		s := math.Float32frombits(sb)
		if math.Signbit(float64(s)) || s != s {
			return 0, fmt.Errorf("wire: sign frame row %d has non-canonical scale", i)
		}
		if d == 0 && sb != 0 {
			return 0, fmt.Errorf("wire: sign frame empty row %d has nonzero scale", i)
		}
		row := bits[uint64(i)*bpr:]
		g := f.Grads[i]
		for j := 0; j < d; j++ {
			if row[j/8]&(1<<(j%8)) != 0 {
				g[j] = s
			} else {
				g[j] = -s
			}
		}
		if d%8 != 0 && row[bpr-1]>>(d%8) != 0 {
			return 0, fmt.Errorf("wire: sign frame row %d has set padding bits", i)
		}
	}
	return uplinkDeltaHeader + n*4 + n*4 + n*int(bpr), nil
}

// decodeUplinkInt832 parses one f32 int8 frame into f, returning the
// bytes consumed. Structural validation only, as for the f64 tier.
func decodeUplinkInt832(src []byte, f *GradFrame32) (int, error) {
	n, d, body, err := decodeQuantHeader32(src, f, 8, func(d uint64) uint64 { return d })
	if err != nil {
		return 0, err
	}
	if uint64(len(body)) < uint64(n)*(8+uint64(d)) {
		return 0, fmt.Errorf("wire: int8 frame truncated: %d rows need %d bytes, have %d", n, uint64(n)*(8+uint64(d)), len(body))
	}
	growGrads32(f, n, d)
	vals := body[n*8:]
	for i := 0; i < n; i++ {
		min := math.Float32frombits(binary.LittleEndian.Uint32(body[i*8:]))
		scale := math.Float32frombits(binary.LittleEndian.Uint32(body[i*8+4:]))
		q := vals[i*d:]
		g := f.Grads[i]
		for j := 0; j < d; j++ {
			g[j] = min + scale*float32(q[j])
		}
	}
	return uplinkDeltaHeader + n*4 + n*8 + n*d, nil
}
