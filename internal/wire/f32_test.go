package wire

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// randGrads32 builds n random f32 gradient rows of dimension d.
func randGrads32(rng *rand.Rand, n, d int) [][]float32 {
	g := make([][]float32, n)
	for i := range g {
		g[i] = make([]float32, d)
		for j := range g[i] {
			g[i][j] = float32(rng.NormFloat64())
		}
	}
	return g
}

func TestPrecision(t *testing.T) {
	if PrecisionF64 != 0 {
		t.Fatal("f64 must be the zero value so legacy configs stay full precision")
	}
	for _, p := range []Precision{PrecisionF64, PrecisionF32} {
		if !p.Valid() {
			t.Fatalf("%s not valid", p)
		}
		got, err := ParsePrecision(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePrecision(%q) = %v, %v", p.String(), got, err)
		}
		if AllPrecisionsMask&p.Mask() == 0 {
			t.Fatalf("%s missing from AllPrecisionsMask", p)
		}
	}
	if Precision(2).Valid() {
		t.Fatal("precision 2 must be invalid")
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatal("want error for unknown precision")
	}
}

func TestGradFrame32RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range [][2]int{{0, 0}, {1, 1}, {3, 7}, {5, 33}} {
		n, d := shape[0], shape[1]
		grads := randGrads32(rng, n, d)
		files := make([]int, n)
		for i := range files {
			files[i] = 10 + i
		}
		buf, err := AppendGradFrame32(nil, 42, files, grads)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != GradFrame32Size(n, d) {
			t.Fatalf("n=%d d=%d: encoded %d bytes, GradFrame32Size says %d", n, d, len(buf), GradFrame32Size(n, d))
		}
		var f GradFrame32
		consumed, err := DecodeGradFrame32(buf, &f)
		if err != nil {
			t.Fatal(err)
		}
		if consumed != len(buf) || f.Worker != 42 {
			t.Fatalf("consumed %d worker %d", consumed, f.Worker)
		}
		for i := range grads {
			if f.Files[i] != files[i] {
				t.Fatalf("file %d mismatch", i)
			}
			for j := range grads[i] {
				if math.Float32bits(f.Grads[i][j]) != math.Float32bits(grads[i][j]) {
					t.Fatalf("value %d/%d not bit-identical", i, j)
				}
			}
		}
	}
}

func TestParams32RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := make([]float32, 301)
	cur := make([]float32, 301)
	for i := range base {
		base[i] = float32(rng.NormFloat64())
		cur[i] = base[i]
		if i%3 == 0 {
			cur[i] += float32(rng.NormFloat64()) * 1e-3
		}
	}
	full, err := AppendParamsFull32(nil, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != ParamsFull32Size(len(cur)) {
		t.Fatalf("full frame %d bytes, ParamsFull32Size says %d", len(full), ParamsFull32Size(len(cur)))
	}
	got := make([]float32, len(cur))
	mode, consumed, err := DecodeParams32(full, got)
	if err != nil || mode != ParamsFull || consumed != len(full) {
		t.Fatalf("full decode: mode=%d consumed=%d err=%v", mode, consumed, err)
	}
	for i := range cur {
		if math.Float32bits(got[i]) != math.Float32bits(cur[i]) {
			t.Fatalf("full coordinate %d not bit-identical", i)
		}
	}

	delta, err := AppendParamsDelta32(nil, base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) >= len(full) {
		t.Fatalf("sparse delta (%d bytes) not smaller than full (%d bytes)", len(delta), len(full))
	}
	got2 := append([]float32(nil), base...)
	mode, consumed, err = DecodeParams32(delta, got2)
	if err != nil || mode != ParamsDelta || consumed != len(delta) {
		t.Fatalf("delta decode: mode=%d consumed=%d err=%v", mode, consumed, err)
	}
	for i := range cur {
		if math.Float32bits(got2[i]) != math.Float32bits(cur[i]) {
			t.Fatalf("delta coordinate %d not bit-identical", i)
		}
	}
}

func TestDecodeParams32RejectsF64Lengths(t *testing.T) {
	// A nibble length of 5–8 is legal for the f64 codec but impossible
	// for a u32 XOR; the f32 decoder must reject it.
	cur := []float32{1}
	frame := []byte{ParamsDelta, 1, 0, 0, 0, 0x05, 1, 2, 3, 4, 5}
	if _, _, err := DecodeParams32(frame, cur); err == nil {
		t.Fatal("want error for f32 delta length > 4")
	}
}

// TestUplink32DeltaStream drives the f32 streaming codec over several
// rounds and checks encoder and decoder stay in lockstep bit for bit.
func TestUplink32DeltaStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	enc := &UplinkEncoder32{Tier: TierDelta}
	dec := &UplinkDecoder32{Tier: TierDelta}
	files := []int{4, 9}
	grads := randGrads32(rng, 2, 17)
	sawDelta := false
	for round := 0; round < 6; round++ {
		if round > 0 {
			// Perturb a few coordinates, leaving most unchanged so the
			// delta encoding wins.
			for k := 0; k < 3; k++ {
				grads[rng.Intn(2)][rng.Intn(17)] += float32(rng.NormFloat64()) * 1e-3
			}
		}
		buf, mode, rawSize, err := enc.Encode(nil, 7, files, grads)
		if err != nil {
			t.Fatal(err)
		}
		if rawSize != UplinkRaw32Size(2, 17) {
			t.Fatalf("rawSize %d, want %d", rawSize, UplinkRaw32Size(2, 17))
		}
		if round > 0 && mode == UplinkDelta {
			sawDelta = true
		}
		var f GradFrame32
		gotMode, consumed, err := dec.Decode(buf, &f)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if gotMode != mode || consumed != len(buf) {
			t.Fatalf("round %d: mode %d/%d consumed %d/%d", round, gotMode, mode, consumed, len(buf))
		}
		for i := range grads {
			for j := range grads[i] {
				if math.Float32bits(f.Grads[i][j]) != math.Float32bits(grads[i][j]) {
					t.Fatalf("round %d: value %d/%d not bit-identical", round, i, j)
				}
			}
		}
	}
	if !sawDelta {
		t.Fatal("delta mode never chosen on a sparse stream")
	}
}

// TestUplink32TierGating checks decoders reject modes outside their
// negotiated tier.
func TestUplink32TierGating(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	grads := randGrads32(rng, 1, 5)
	files := []int{0}
	raw := &UplinkEncoder32{Tier: TierRaw}
	buf, _, _, err := raw.Encode(nil, 1, files, grads)
	if err != nil {
		t.Fatal(err)
	}
	for _, tier := range []UplinkTier{TierSign, TierInt8} {
		dec := &UplinkDecoder32{Tier: tier}
		var f GradFrame32
		if _, _, err := dec.Decode(buf, &f); err == nil {
			t.Fatalf("tier %s accepted a raw frame", tier)
		}
	}
	sign := &UplinkEncoder32{Tier: TierSign}
	sbuf, mode, _, err := sign.Encode(nil, 1, files, grads)
	if err != nil || mode != UplinkSign {
		t.Fatalf("sign encode: mode=%d err=%v", mode, err)
	}
	dec := &UplinkDecoder32{Tier: TierDelta}
	var f GradFrame32
	if _, _, err := dec.Decode(sbuf, &f); err == nil {
		t.Fatal("delta tier accepted a sign frame")
	}
}

// TestUplink32QuantMatchesInPlace pins the engine==wire determinism
// contract at f32: decode(encode(g)) must equal the in-place helpers.
func TestUplink32QuantMatchesInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct {
		tier    UplinkTier
		inPlace func([]float32)
	}{
		{TierSign, SignQuantizeInPlace32},
		{TierInt8, Int8QuantizeInPlace32},
	} {
		grads := randGrads32(rng, 3, 19)
		files := []int{1, 2, 3}
		enc := &UplinkEncoder32{Tier: tc.tier}
		buf, _, _, err := enc.Encode(nil, 2, files, grads)
		if err != nil {
			t.Fatal(err)
		}
		dec := &UplinkDecoder32{Tier: tc.tier}
		var f GradFrame32
		if _, _, err := dec.Decode(buf, &f); err != nil {
			t.Fatal(err)
		}
		for i := range grads {
			tc.inPlace(grads[i])
			for j := range grads[i] {
				if math.Float32bits(f.Grads[i][j]) != math.Float32bits(grads[i][j]) {
					t.Fatalf("tier %s: wire row %d[%d]=%v, in-place %v", tc.tier, i, j, f.Grads[i][j], grads[i][j])
				}
			}
		}
	}
}

// TestUplink32SizeHelpers pins the size formulas against real encodes.
func TestUplink32SizeHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, d := 3, 21
	grads := randGrads32(rng, n, d)
	files := []int{5, 6, 7}
	for _, tc := range []struct {
		tier UplinkTier
		want int
	}{
		{TierRaw, UplinkRaw32Size(n, d)},
		{TierSign, UplinkSign32Size(n, d)},
		{TierInt8, UplinkInt832Size(n, d)},
	} {
		enc := &UplinkEncoder32{Tier: tc.tier}
		buf, _, _, err := enc.Encode(nil, 1, files, grads)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != tc.want {
			t.Fatalf("tier %s: encoded %d bytes, size helper says %d", tc.tier, len(buf), tc.want)
		}
	}
}

// TestUplink32SignRejectsNaNScale mirrors the f64 refusal: a gradient
// whose mean abs is NaN must fail at encode time, not poison the wire.
func TestUplink32SignRejectsNaNScale(t *testing.T) {
	enc := &UplinkEncoder32{Tier: TierSign}
	grads := [][]float32{{float32(math.NaN()), 1}}
	if _, _, _, err := enc.Encode(nil, 0, []int{0}, grads); err == nil {
		t.Fatal("want error for NaN sign scale")
	}
}

func FuzzDecodeGradFrame32(f *testing.F) {
	seed, _ := AppendGradFrame32(nil, 1, []int{2, 3}, [][]float32{{1, 2}, {3, 4}})
	f.Add(seed)
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var g GradFrame32
		consumed, err := DecodeGradFrame32(data, &g)
		if err == nil && (consumed < 4+gradFrameHeader || consumed > len(data)) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
	})
}

func FuzzParams32DeltaRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5, 4, 3, 2, 1})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		d := min(len(a), len(b)) / 4
		base := make([]float32, d)
		cur := make([]float32, d)
		for i := 0; i < d; i++ {
			base[i] = math.Float32frombits(uint32(a[i*4]) | uint32(a[i*4+1])<<8 | uint32(a[i*4+2])<<16 | uint32(a[i*4+3])<<24)
			cur[i] = math.Float32frombits(uint32(b[i*4]) | uint32(b[i*4+1])<<8 | uint32(b[i*4+2])<<16 | uint32(b[i*4+3])<<24)
		}
		frame, err := AppendParamsDelta32(nil, base, cur)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]float32(nil), base...)
		if _, _, err := DecodeParams32(frame, got); err != nil {
			t.Fatal(err)
		}
		for i := range cur {
			if math.Float32bits(got[i]) != math.Float32bits(cur[i]) {
				t.Fatalf("coordinate %d not bit-identical", i)
			}
		}
	})
}

func FuzzDecodeParams32(f *testing.F) {
	full, _ := AppendParamsFull32(nil, []float32{1, 2, 3})
	f.Add(full, uint16(3))
	f.Add([]byte{ParamsDelta, 3, 0, 0, 0, 0, 0}, uint16(3))
	f.Fuzz(func(t *testing.T, data []byte, d16 uint16) {
		params := make([]float32, int(d16)%64)
		_, consumed, err := DecodeParams32(data, params)
		if err == nil && consumed > len(data) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
	})
}

func FuzzDecodeUplink32(f *testing.F) {
	enc := &UplinkEncoder32{Tier: TierDelta}
	seed, _, _, _ := enc.Encode(nil, 1, []int{2}, [][]float32{{1, 2, 3}})
	f.Add(seed, uint8(TierDelta))
	f.Add([]byte{UplinkDelta, 0, 0, 0, 0}, uint8(TierDelta))
	f.Fuzz(func(t *testing.T, data []byte, tier uint8) {
		dec := &UplinkDecoder32{Tier: UplinkTier(tier % 4)}
		// Feed a valid raw frame first so delta frames have a base.
		base, _, _, _ := (&UplinkEncoder32{Tier: TierDelta}).Encode(nil, 0, []int{1, 2}, [][]float32{{1, 2}, {3, 4}})
		var g GradFrame32
		dec.Decode(base, &g)
		consumed, _, err := dec.Decode(data, &g)
		_ = consumed
		if err == nil && !bytes.Equal(data[:0], nil) && len(data) == 0 {
			t.Fatal("decoded an empty frame")
		}
	})
}

func FuzzUplinkQuant32RoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(TierSign))
	f.Add([]byte{8, 7, 6, 5, 4, 3, 2, 1}, uint8(TierInt8))
	f.Fuzz(func(t *testing.T, raw []byte, tierByte uint8) {
		tier := TierSign
		if tierByte%2 == 1 {
			tier = TierInt8
		}
		d := len(raw) / 4
		g := make([]float32, d)
		for i := 0; i < d; i++ {
			g[i] = math.Float32frombits(uint32(raw[i*4]) | uint32(raw[i*4+1])<<8 | uint32(raw[i*4+2])<<16 | uint32(raw[i*4+3])<<24)
		}
		want := append([]float32(nil), g...)
		if tier == TierSign {
			SignQuantizeInPlace32(want)
		} else {
			Int8QuantizeInPlace32(want)
		}
		enc := &UplinkEncoder32{Tier: tier}
		buf, _, _, err := enc.Encode(nil, 0, []int{0}, [][]float32{g})
		if err != nil {
			// Non-finite scales are refused; nothing to round-trip.
			return
		}
		dec := &UplinkDecoder32{Tier: tier}
		var fr GradFrame32
		if _, _, err := dec.Decode(buf, &fr); err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Float32bits(fr.Grads[0][j]) != math.Float32bits(want[j]) {
				t.Fatalf("tier %s: wire %v, in-place %v at %d", tier, fr.Grads[0][j], want[j], j)
			}
		}
	})
}
