package wire

import (
	"bytes"
	"math"
	"math/rand"
	"slices"
	"testing"
)

// report builds a deterministic n×d gradient report.
func report(rng *rand.Rand, n, d int) [][]float64 {
	grads := make([][]float64, n)
	for i := range grads {
		g := make([]float64, d)
		for j := range g {
			g[j] = rng.NormFloat64()
		}
		grads[i] = g
	}
	return grads
}

// perturbReport adds SGD-noise-sized jitter, leaving some values
// exactly unchanged (the correlated-consecutive-reports regime).
func perturbReport(rng *rand.Rand, grads [][]float64) [][]float64 {
	out := make([][]float64, len(grads))
	for i, g := range grads {
		out[i] = perturb(rng, g)
	}
	return out
}

// decodeOne decodes a single uplink frame, requiring full consumption.
func decodeOne(t *testing.T, dec *UplinkDecoder, frame []byte, f *GradFrame) int {
	t.Helper()
	mode, consumed, err := dec.Decode(frame, f)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(frame) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(frame))
	}
	return mode
}

// checkReport compares a decoded frame against the expected report
// bit-for-bit.
func checkReport(t *testing.T, f *GradFrame, worker int, files []int, grads [][]float64) {
	t.Helper()
	if f.Worker != worker {
		t.Fatalf("worker %d, want %d", f.Worker, worker)
	}
	if !slices.Equal(f.Files, files) {
		t.Fatalf("files %v, want %v", f.Files, files)
	}
	for i, g := range grads {
		for j, v := range g {
			if math.Float64bits(f.Grads[i][j]) != math.Float64bits(v) {
				t.Fatalf("value (%d,%d): bits %x, want %x", i, j,
					math.Float64bits(f.Grads[i][j]), math.Float64bits(v))
			}
		}
	}
}

// TestUplinkStreamRoundTrip drives several rounds of correlated
// reports through an encoder/decoder pair: the first frame must be raw
// (no base), later frames must pick delta in this regime and save
// bytes, and every decode must be bit-exact.
func TestUplinkStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	files := []int{2, 7, 19}
	grads := report(rng, 3, 50)
	var enc UplinkEncoder
	var dec UplinkDecoder
	var f GradFrame
	sawDelta := false
	for round := 0; round < 6; round++ {
		frame, mode, rawSize, err := enc.Encode(nil, 4, files, grads)
		if err != nil {
			t.Fatal(err)
		}
		if round == 0 && mode != UplinkRaw {
			t.Fatalf("first frame mode %d, want raw", mode)
		}
		if mode == UplinkDelta {
			sawDelta = true
			if len(frame) >= rawSize {
				t.Fatalf("round %d: delta frame %d bytes, raw would be %d", round, len(frame), rawSize)
			}
		}
		if gotMode := decodeOne(t, &dec, frame, &f); gotMode != mode {
			t.Fatalf("round %d: decoder saw mode %d, encoder sent %d", round, gotMode, mode)
		}
		checkReport(t, &f, 4, files, grads)
		grads = perturbReport(rng, grads)
	}
	if !sawDelta {
		t.Error("correlated stream never chose a delta frame")
	}
}

// TestUplinkSelfSelectsRaw: when consecutive reports are fully
// decorrelated (different signs and exponents everywhere), the delta
// encoding is larger than raw and the encoder must fall back.
func TestUplinkSelfSelectsRaw(t *testing.T) {
	files := []int{0}
	a := [][]float64{make([]float64, 16)}
	b := [][]float64{make([]float64, 16)}
	for j := range a[0] {
		a[0][j] = 1e-300
		b[0][j] = -1e300 * float64(j+1)
	}
	var enc UplinkEncoder
	var dec UplinkDecoder
	var f GradFrame
	frame, _, _, err := enc.Encode(nil, 0, files, a)
	if err != nil {
		t.Fatal(err)
	}
	decodeOne(t, &dec, frame, &f)
	frame, mode, rawSize, err := enc.Encode(nil, 0, files, b)
	if err != nil {
		t.Fatal(err)
	}
	if mode != UplinkRaw {
		t.Fatalf("decorrelated report chose mode %d, want raw fallback", mode)
	}
	if len(frame) != rawSize {
		t.Fatalf("raw frame %d bytes, rawSize says %d", len(frame), rawSize)
	}
	decodeOne(t, &dec, frame, &f)
	checkReport(t, &f, 0, files, b)
}

// TestUplinkNoDelta: the raw tier forces raw frames and drops the
// delta base, so switching to the delta tier mid-stream restarts like
// a fresh connection — one raw frame rebuilds the base, then deltas
// resume.
func TestUplinkNoDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	files := []int{1, 2}
	grads := report(rng, 2, 40)
	enc := UplinkEncoder{Tier: TierRaw}
	var dec UplinkDecoder
	var f GradFrame
	for round := 0; round < 3; round++ {
		frame, mode, _, err := enc.Encode(nil, 1, files, grads)
		if err != nil {
			t.Fatal(err)
		}
		if mode != UplinkRaw {
			t.Fatalf("round %d: raw-tier encoder chose mode %d", round, mode)
		}
		decodeOne(t, &dec, frame, &f)
		grads = perturbReport(rng, grads)
	}
	// Switch to the delta tier: no base is held, so the first
	// post-switch frame is raw (rebuilding the base) and the one after
	// it deltas.
	enc.Tier = TierDelta
	for i, want := range []int{UplinkRaw, UplinkDelta} {
		frame, mode, _, err := enc.Encode(nil, 1, files, grads)
		if err != nil {
			t.Fatal(err)
		}
		if mode != want {
			t.Fatalf("post-flip frame %d mode %d, want %d", i, mode, want)
		}
		decodeOne(t, &dec, frame, &f)
		checkReport(t, &f, 1, files, grads)
		grads = perturbReport(rng, grads)
	}
}

// TestUplinkDecoderNoDelta: a raw-tier decoder holds no base — raw
// frames decode without the per-report base copy, and a delta frame
// arriving anyway (a buggy or hostile worker on a raw-only stream) is
// rejected instead of being applied against a stale vector.
func TestUplinkDecoderNoDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	files := []int{1, 2}
	grads := report(rng, 2, 40)
	var enc UplinkEncoder
	dec := UplinkDecoder{Tier: TierRaw}
	var f GradFrame
	raw, mode, _, err := enc.Encode(nil, 1, files, grads)
	if err != nil {
		t.Fatal(err)
	}
	if mode != UplinkRaw {
		t.Fatalf("first frame mode %d, want raw", mode)
	}
	decodeOne(t, &dec, raw, &f)
	checkReport(t, &f, 1, files, grads)
	delta, mode, _, err := enc.Encode(nil, 1, files, perturbReport(rng, grads))
	if err != nil {
		t.Fatal(err)
	}
	if mode != UplinkDelta {
		t.Fatalf("second frame mode %d, want delta", mode)
	}
	if _, _, err := dec.Decode(delta, &f); err == nil {
		t.Error("raw-tier decoder accepted a delta frame")
	}
}

// TestUplinkSpecialValues: NaN payloads, infinities, and signed zeros
// survive the delta round-trip bit-for-bit.
func TestUplinkSpecialValues(t *testing.T) {
	files := []int{3}
	a := [][]float64{{0, math.Copysign(0, -1), 1, math.Inf(1), math.NaN(), 2}}
	b := [][]float64{{math.Copysign(0, -1), 0, math.NaN(), 1, math.Inf(-1), 2}}
	var enc UplinkEncoder
	var dec UplinkDecoder
	var f GradFrame
	for _, grads := range [][][]float64{a, b} {
		frame, _, _, err := enc.Encode(nil, 2, files, grads)
		if err != nil {
			t.Fatal(err)
		}
		decodeOne(t, &dec, frame, &f)
		checkReport(t, &f, 2, files, grads)
	}
}

// TestUplinkDecoderRejects: no-base deltas, base mismatches, unknown
// modes, truncation, and non-canonical lengths are all errors, and a
// failed decode leaves the base untouched.
func TestUplinkDecoderRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	files := []int{1, 4}
	grads := report(rng, 2, 6)
	var enc UplinkEncoder
	raw, _, _, err := enc.Encode(nil, 3, files, grads)
	if err != nil {
		t.Fatal(err)
	}
	next := perturbReport(rng, grads)
	delta, mode, _, err := enc.Encode(nil, 3, files, next)
	if err != nil {
		t.Fatal(err)
	}
	if mode != UplinkDelta {
		t.Fatalf("second frame mode %d, want delta", mode)
	}

	var f GradFrame
	fresh := &UplinkDecoder{}
	if _, _, err := fresh.Decode(delta, &f); err == nil {
		t.Error("delta with no base accepted")
	}

	based := &UplinkDecoder{}
	if _, _, err := based.Decode(raw, &f); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"bad mode":     {9, 0, 0},
		"truncated":    delta[:len(delta)-1],
		"wrong file":   func() []byte { b := slices.Clone(delta); b[uplinkDeltaHeader]++; return b }(),
		"wrong counts": func() []byte { b := slices.Clone(delta); b[5] = 7; return b }(),
	}
	for name, frame := range cases {
		if _, _, err := based.Decode(frame, &f); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The failed decodes must not have moved the base: the true delta
	// still applies and reproduces the second report exactly.
	if _, _, err := based.Decode(delta, &f); err != nil {
		t.Fatalf("base moved by a rejected frame: %v", err)
	}
	checkReport(t, &f, 3, files, next)
}

// FuzzUplinkRoundTrip builds two reports from fuzz bits, streams them
// through an encoder/decoder pair, and requires bit-exact recovery
// regardless of which mode the encoder selected.
func FuzzUplinkRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, []byte{10, 9, 8, 7, 6})
	f.Add([]byte{}, []byte{0xFF})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		d := len(rawA) / 8
		if d > 32 {
			d = 32
		}
		if d == 0 {
			return
		}
		at := func(raw []byte, i int) uint64 {
			var x uint64
			for b := 0; b < 8; b++ {
				if i*8+b < len(raw) {
					x |= uint64(raw[i*8+b]) << (8 * b)
				}
			}
			return x
		}
		files := []int{5}
		a := [][]float64{make([]float64, d)}
		b := [][]float64{make([]float64, d)}
		for i := 0; i < d; i++ {
			a[0][i] = math.Float64frombits(at(rawA, i))
			b[0][i] = math.Float64frombits(at(rawB, i))
		}
		var enc UplinkEncoder
		var dec UplinkDecoder
		var fr GradFrame
		for _, grads := range [][][]float64{a, b} {
			frame, _, _, err := enc.Encode(nil, 1, files, grads)
			if err != nil {
				t.Fatal(err)
			}
			_, consumed, err := dec.Decode(frame, &fr)
			if err != nil {
				t.Fatal(err)
			}
			if consumed != len(frame) {
				t.Fatalf("consumed %d of %d", consumed, len(frame))
			}
			for i := 0; i < d; i++ {
				if math.Float64bits(fr.Grads[0][i]) != math.Float64bits(grads[0][i]) {
					t.Fatalf("value %d differs", i)
				}
			}
		}
	})
}

// FuzzDecodeUplink feeds arbitrary bytes to a decoder holding a known
// base: decoding must never panic, and any accepted frame must be
// canonical — re-encoding the decoded report against the original base
// reproduces exactly the consumed bytes.
func FuzzDecodeUplink(f *testing.F) {
	baseGrads := [][]float64{{1, -2, 0.5}, {3, 0, -0.25}}
	baseFiles := []int{2, 9}
	var seedEnc UplinkEncoder
	seedRaw, _, _, _ := seedEnc.Encode(nil, 1, baseFiles, baseGrads)
	seedDelta, _, _, _ := seedEnc.Encode(nil, 1, baseFiles,
		[][]float64{{1.0001, -2, 0.5}, {3, 0.5, -0.25}})
	f.Add(seedRaw)
	f.Add(seedDelta)
	f.Add([]byte{UplinkDelta, 1, 0, 0, 0, 2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Install the known base in both directions.
		var enc UplinkEncoder
		var dec UplinkDecoder
		frame, _, _, err := enc.Encode(nil, 1, baseFiles, baseGrads)
		if err != nil {
			t.Fatal(err)
		}
		var fr GradFrame
		if _, _, err := dec.Decode(frame, &fr); err != nil {
			t.Fatal(err)
		}
		mode, consumed, err := dec.Decode(data, &fr)
		if err != nil {
			return
		}
		var re []byte
		if mode == UplinkRaw {
			re = append(re, UplinkRaw)
			re, err = AppendGradFrame(re, fr.Worker, fr.Files, fr.Grads)
			if err != nil {
				t.Fatalf("accepted raw frame fails to re-encode: %v", err)
			}
		} else {
			// Rebuild an encoder holding the original base: the accepted
			// delta must re-encode from it byte-for-byte.
			var reEnc UplinkEncoder
			if _, _, _, err := reEnc.Encode(nil, fr.Worker, baseFiles, baseGrads); err != nil {
				t.Fatal(err)
			}
			re, err = reEnc.appendDelta(nil, fr.Worker, fr.Files, fr.Grads)
			if err != nil {
				t.Fatalf("accepted delta frame fails to re-encode: %v", err)
			}
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode differs from consumed bytes:\n got %x\nwant %x", re, data[:consumed])
		}
	})
}
