// Quantized uplink gradient frames (protocol v6). The lossless XOR
// uplink (uplink.go) realizes only ≈2% on real training rounds because
// consecutive gradient reports decorrelate; the two lossy tiers in this
// file cut the dominant worker→PS direction by construction instead:
//
//   - sign: one bit per coordinate plus one f64 scale per row — the
//     1-bit SGD shape. The scale is the row's mean absolute value, so
//     the dequantized row ±scale preserves the row's L1 mass.
//   - int8: one byte per coordinate plus per-row (min, scale) — linear
//     quantization onto the 256-point grid [min, min+255·scale] with
//     scale = (max−min)/255.
//
// Both tiers are stateless: a frame is self-contained, no delta base is
// held on either side, so a reconnect resumes mid-stream with no
// resynchronization (and a kill+rejoin under a lossy tier is
// bit-identical to an uninterrupted run).
//
// Determinism is the load-bearing property, not accuracy: the PS votes
// gradient replicas by bit-equality, so every honest replica of a file
// must dequantize to the identical bit pattern. Encode→decode and the
// in-place helpers (SignQuantizeInPlace, Int8QuantizeInPlace) perform
// the identical sequence of float operations, so the in-process engine
// pinned to a tier reproduces the wire path bit-for-bit — including the
// vote and everything downstream of it. A "row" here is whatever slice
// the caller hands the codec: per-shard report frames quantize each
// file's shard coordinate range independently, and the engine mirrors
// that by quantizing per (file, shard range).
//
// Frame layouts, little-endian (header fields as the delta frame's):
//
//	u8  mode (3 = sign, 4 = int8)
//	u32 worker, u32 n, u32 d, n × u32 file id
//	sign: n × f64 row scale, then n × ⌈d/8⌉ sign bytes (bit j of byte
//	      j/8, LSB first; set = non-negative)
//	int8: n × (f64 row min, f64 row scale), then n × d quantized bytes
//
// A sign frame is canonical: scales must carry a clear sign bit and no
// NaN payload (the encoder refuses NaN scales), padding bits in the
// last sign byte must be zero, and a zero-dimension row's scale must be
// +0 — so an accepted frame re-encodes to exactly the consumed bytes
// from its decoded values (scale = |value|, bit = !signbit). Int8
// frames are validated structurally but not forced byte-canonical:
// distinct (min, scale, q) triples can dequantize to the same float
// row, and aggregation only needs the dequantization to be
// deterministic, which it is.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// UplinkTier selects the uplink gradient codec a connection (or the
// in-process engine's measured-communication mode) runs. The zero
// value is the lossless self-selecting raw/XOR-delta codec that
// protocol v3–v5 always used, so zero-valued configs keep their
// pre-v6 behavior.
type UplinkTier uint8

const (
	// TierDelta is the lossless tier: the encoder self-selects per
	// frame between a raw gradient frame and an XOR patch against the
	// sender's previous report (uplink.go). The default.
	TierDelta UplinkTier = 0
	// TierRaw forces self-contained raw frames and keeps no base.
	TierRaw UplinkTier = 1
	// TierSign is the 1-bit tier: sign bits plus a per-row scale.
	TierSign UplinkTier = 2
	// TierInt8 is the linear-quantized tier: one byte per coordinate
	// plus per-row (min, scale).
	TierInt8 UplinkTier = 3
)

// Lossy reports whether the tier discards information (sign or int8).
func (t UplinkTier) Lossy() bool { return t == TierSign || t == TierInt8 }

// Valid reports whether t names a defined tier.
func (t UplinkTier) Valid() bool { return t <= TierInt8 }

// Mask returns the tier's bit in the Hello supported-tiers bitmask.
func (t UplinkTier) Mask() uint8 { return 1 << t }

// String returns the flag spelling of the tier.
func (t UplinkTier) String() string {
	switch t {
	case TierRaw:
		return "raw"
	case TierDelta:
		return "delta"
	case TierSign:
		return "sign"
	case TierInt8:
		return "int8"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// ParseUplinkTier parses the flag spelling of a tier.
func ParseUplinkTier(s string) (UplinkTier, error) {
	switch s {
	case "raw":
		return TierRaw, nil
	case "delta":
		return TierDelta, nil
	case "sign":
		return TierSign, nil
	case "int8":
		return TierInt8, nil
	default:
		return 0, fmt.Errorf("wire: unknown uplink tier %q (want raw, delta, sign, or int8)", s)
	}
}

// AllTiersMask is the supported-tiers bitmask of a peer implementing
// every tier (what the v6 worker advertises in its Hello).
const AllTiersMask = uint8(1<<TierDelta | 1<<TierRaw | 1<<TierSign | 1<<TierInt8)

// signBytesPerRow returns the packed sign-bit bytes of one d-wide row.
func signBytesPerRow(d int) int { return (d + 7) / 8 }

// UplinkSignSize returns the encoded size of a sign uplink frame with
// n files of dimension d.
func UplinkSignSize(n, d int) int {
	return uplinkDeltaHeader + n*4 + n*8 + n*signBytesPerRow(d)
}

// UplinkInt8Size returns the encoded size of an int8 uplink frame with
// n files of dimension d.
func UplinkInt8Size(n, d int) int {
	return uplinkDeltaHeader + n*4 + n*16 + n*d
}

// signScale returns the sign tier's row scale: the mean absolute
// value (0 for an empty row). SignQuantizeInPlace must perform the
// identical operations.
func signScale(g []float64) float64 {
	if len(g) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range g {
		sum += math.Abs(v)
	}
	return sum / float64(len(g))
}

// int8Params returns the int8 tier's row (min, scale): the row's value
// range mapped onto 255 steps (both 0 for an empty row). A row
// containing NaN propagates it into min/max exactly as the comparison
// loop below does, which Int8QuantizeInPlace mirrors.
func int8Params(g []float64) (min, scale float64) {
	if len(g) == 0 {
		return 0, 0
	}
	min, max := g[0], g[0]
	for _, v := range g[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, (max - min) / 255
}

// int8Quantize maps one value onto the row's grid. NaN and -Inf
// arguments clamp to 0, +Inf to 255, so the conversion to byte is
// always defined behavior.
func int8Quantize(v, min, scale float64) uint8 {
	if scale == 0 {
		return 0
	}
	t := math.Round((v - min) / scale)
	if !(t > 0) {
		return 0
	}
	if t > 255 {
		return 255
	}
	return uint8(t)
}

// SignQuantizeInPlace replaces g with the values a sign-tier
// encode→decode round trip would deliver, using the identical float
// operations, so the in-process engine reproduces the wire path
// bit-for-bit.
func SignQuantizeInPlace(g []float64) {
	s := signScale(g)
	for j, v := range g {
		if math.Signbit(v) {
			g[j] = -s
		} else {
			g[j] = s
		}
	}
}

// Int8QuantizeInPlace replaces g with the values an int8-tier
// encode→decode round trip would deliver, using the identical float
// operations.
func Int8QuantizeInPlace(g []float64) {
	min, scale := int8Params(g)
	for j, v := range g {
		g[j] = min + scale*float64(int8Quantize(v, min, scale))
	}
}

// appendQuantHeader appends the shared quantized-frame prefix: mode,
// worker, n, d, file ids.
func appendQuantHeader(dst []byte, mode byte, worker int, files []int, d int) ([]byte, error) {
	if worker < 0 || int64(worker) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: worker id %d outside u32 range", worker)
	}
	dst = append(dst, mode)
	dst = append32(dst, uint32(worker))
	dst = append32(dst, uint32(len(files)))
	dst = append32(dst, uint32(d))
	for _, v := range files {
		if v < 0 || int64(v) > math.MaxUint32 {
			return nil, fmt.Errorf("wire: file id %d outside u32 range", v)
		}
		dst = append32(dst, uint32(v))
	}
	return dst, nil
}

// appendUplinkSign appends one sign-tier frame. Callers validated the
// files/grads shape (the Encode front door).
func appendUplinkSign(dst []byte, worker int, files []int, grads [][]float64) ([]byte, error) {
	n := len(files)
	d := 0
	if n > 0 {
		d = len(grads[0])
	}
	dst, err := appendQuantHeader(dst, UplinkSign, worker, files, d)
	if err != nil {
		return nil, err
	}
	for i, g := range grads {
		s := signScale(g)
		if s != s {
			return nil, fmt.Errorf("wire: sign frame row %d has NaN scale (non-finite gradient)", i)
		}
		dst = AppendF64(dst, s)
	}
	bpr := signBytesPerRow(d)
	for _, g := range grads {
		at := len(dst)
		dst = append(dst, make([]byte, bpr)...)
		bits := dst[at:]
		for j, v := range g {
			if !math.Signbit(v) {
				bits[j/8] |= 1 << (j % 8)
			}
		}
	}
	return dst, nil
}

// appendUplinkInt8 appends one int8-tier frame.
func appendUplinkInt8(dst []byte, worker int, files []int, grads [][]float64) ([]byte, error) {
	n := len(files)
	d := 0
	if n > 0 {
		d = len(grads[0])
	}
	dst, err := appendQuantHeader(dst, UplinkInt8, worker, files, d)
	if err != nil {
		return nil, err
	}
	for _, g := range grads {
		min, scale := int8Params(g)
		dst = AppendF64(dst, min)
		dst = AppendF64(dst, scale)
	}
	for _, g := range grads {
		at := len(dst)
		dst = append(dst, make([]byte, d)...)
		q := dst[at:]
		min, scale := int8Params(g)
		for j, v := range g {
			q[j] = int8Quantize(v, min, scale)
		}
	}
	return dst, nil
}

// decodeQuantHeader validates the shared quantized-frame prefix
// against the frame's fixed per-row cost and fills f's Worker/Files,
// returning n, d, and the body after the file list. perRow is the
// fixed byte cost of one row beyond its file id (scale fields plus
// value bytes), precomputed in uint64 space so hostile counts cannot
// overflow or trigger oversized allocations — everything is bounded by
// len(src) before n and d are trusted.
func decodeQuantHeader(src []byte, f *GradFrame, scaleBytes int, valueBytes func(d uint64) uint64) (n, d int, body []byte, err error) {
	if len(src) < uplinkDeltaHeader {
		return 0, 0, nil, fmt.Errorf("wire: quantized uplink frame truncated at %d bytes", len(src))
	}
	worker := int(binary.LittleEndian.Uint32(src[1:]))
	n64 := uint64(binary.LittleEndian.Uint32(src[5:]))
	d64 := uint64(binary.LittleEndian.Uint32(src[9:]))
	rem := uint64(len(src) - uplinkDeltaHeader)
	if n64 > 0 && n64 > rem/4 {
		return 0, 0, nil, fmt.Errorf("wire: quantized frame declares %d files for %d bytes", n64, rem)
	}
	if n64 == 0 && d64 != 0 {
		return 0, 0, nil, fmt.Errorf("wire: empty quantized frame declares dim %d", d64)
	}
	perRow := uint64(scaleBytes) + valueBytes(d64)
	if n64 > 0 && (rem-n64*4)/n64 < perRow {
		return 0, 0, nil, fmt.Errorf("wire: quantized frame declares %d×%d values for %d bytes", n64, d64, rem)
	}
	n, d = int(n64), int(d64)
	f.Worker = worker
	if cap(f.Files) < n {
		f.Files = make([]int, n)
	}
	f.Files = f.Files[:n]
	for i := range f.Files {
		f.Files[i] = int(binary.LittleEndian.Uint32(src[uplinkDeltaHeader+i*4:]))
	}
	return n, d, src[uplinkDeltaHeader+n*4:], nil
}

// growGrads sizes f.Grads to n rows of d values under the
// DecodeGradFrame buffer-reuse contract.
func growGrads(f *GradFrame, n, d int) {
	if cap(f.Grads) < n {
		grads := make([][]float64, n)
		copy(grads, f.Grads)
		f.Grads = grads
	}
	f.Grads = f.Grads[:n]
	for i := 0; i < n; i++ {
		if cap(f.Grads[i]) < d {
			f.Grads[i] = make([]float64, d)
		}
		f.Grads[i] = f.Grads[i][:d]
	}
}

// decodeUplinkSign parses one sign frame into f, returning the bytes
// consumed. Scales with a set sign bit or NaN payload, set padding
// bits, and a nonzero empty-row scale are rejected, so any accepted
// frame re-encodes to exactly the consumed bytes.
func decodeUplinkSign(src []byte, f *GradFrame) (int, error) {
	bpr := uint64(0)
	n, d, body, err := decodeQuantHeader(src, f, 8, func(d uint64) uint64 {
		bpr = (d + 7) / 8
		return bpr
	})
	if err != nil {
		return 0, err
	}
	if uint64(len(body)) < uint64(n)*(8+bpr) {
		return 0, fmt.Errorf("wire: sign frame truncated: %d rows need %d bytes, have %d", n, uint64(n)*(8+bpr), len(body))
	}
	growGrads(f, n, d)
	bits := body[n*8:]
	for i := 0; i < n; i++ {
		sb := binary.LittleEndian.Uint64(body[i*8:])
		s := math.Float64frombits(sb)
		if math.Signbit(s) || s != s {
			return 0, fmt.Errorf("wire: sign frame row %d has non-canonical scale", i)
		}
		if d == 0 && sb != 0 {
			return 0, fmt.Errorf("wire: sign frame empty row %d has nonzero scale", i)
		}
		row := bits[uint64(i)*bpr:]
		g := f.Grads[i]
		for j := 0; j < d; j++ {
			if row[j/8]&(1<<(j%8)) != 0 {
				g[j] = s
			} else {
				g[j] = -s
			}
		}
		if d%8 != 0 && row[bpr-1]>>(d%8) != 0 {
			return 0, fmt.Errorf("wire: sign frame row %d has set padding bits", i)
		}
	}
	return uplinkDeltaHeader + n*4 + n*8 + n*int(bpr), nil
}

// decodeUplinkInt8 parses one int8 frame into f, returning the bytes
// consumed. Validation is structural only (see the package comment):
// dequantization of any accepted frame is deterministic, which is the
// property the vote needs.
func decodeUplinkInt8(src []byte, f *GradFrame) (int, error) {
	n, d, body, err := decodeQuantHeader(src, f, 16, func(d uint64) uint64 { return d })
	if err != nil {
		return 0, err
	}
	if uint64(len(body)) < uint64(n)*(16+uint64(d)) {
		return 0, fmt.Errorf("wire: int8 frame truncated: %d rows need %d bytes, have %d", n, uint64(n)*(16+uint64(d)), len(body))
	}
	growGrads(f, n, d)
	vals := body[n*16:]
	for i := 0; i < n; i++ {
		min := math.Float64frombits(binary.LittleEndian.Uint64(body[i*16:]))
		scale := math.Float64frombits(binary.LittleEndian.Uint64(body[i*16+8:]))
		q := vals[i*d:]
		g := f.Grads[i]
		for j := 0; j < d; j++ {
			g[j] = min + scale*float64(q[j])
		}
	}
	return uplinkDeltaHeader + n*4 + n*16 + n*d, nil
}
