// Uplink gradient-report codec (protocol v3). The worker→PS direction
// is the dominant byte mover of a training round: every worker ships
// its per-file gradient sums every round. This codec makes that uplink
// bandwidth-aware with the same bit-exact XOR trick the parameter
// broadcast uses (delta.go), but against a different base: each
// worker's delta base is its *own previous report* on the same
// connection, since that is the only vector both ends of the stream
// are guaranteed to share.
//
// Unlike consecutive parameter iterates, consecutive gradient reports
// decorrelate quickly — each round draws a fresh mini-batch, so only
// sign/exponent/top-mantissa agreement survives, and on some rounds a
// delta frame would be *larger* than the raw one. The encoder therefore
// self-selects per frame: it builds the delta, compares sizes, and
// falls back to a raw frame whenever the delta does not pay. The mode
// byte tells the decoder which arrived, and both modes roll the base
// forward, so encoder and decoder stay in lockstep as long as the
// frame stream is ordered and loss-free (a TCP connection); a new
// connection starts from no base, i.e. a raw first frame.
//
// Since protocol v6 the codec is tiered (UplinkTier): this file owns
// the two lossless tiers — raw and the self-selecting raw/XOR-delta
// default — and quant.go owns the two lossy quantized tiers (sign,
// int8). Encoder and decoder carry the negotiated tier and dispatch on
// it; a decoder only accepts the frame modes its tier emits, so a peer
// that sends outside the negotiated tier poisons its stream instead of
// silently changing codecs.
//
// Frame layout, little-endian:
//
//	u8  mode (1 = raw, 2 = delta, 3 = sign, 4 = int8; see quant.go
//	    for the quantized layouts)
//	raw:   one gradient frame (codec.go: u32 payload length, u32
//	       worker, u32 n, u32 d, n×u32 file ids, n×d×f64 bit patterns)
//	delta: u32 worker, u32 n, u32 d, n×u32 file ids,
//	       ⌈n·d/2⌉ nibble-packed XOR byte lengths (low nibble = even
//	       value index), then per value its significant low-order XOR
//	       bytes against the base value at the same (file, coordinate)
//
// A delta frame is only valid against a base with the identical file
// list and dimension; the decoder rejects anything else, and rejects
// non-canonical lengths (highest included byte zero, set padding
// nibble), so any accepted frame re-encodes to exactly the consumed
// bytes.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
)

// Uplink frame modes.
const (
	// UplinkRaw wraps a self-contained gradient frame.
	UplinkRaw = 1
	// UplinkDelta is an XOR patch against the sender's previous report.
	UplinkDelta = 2
	// UplinkSign is a 1-bit quantized frame (quant.go).
	UplinkSign = 3
	// UplinkInt8 is a linear-quantized frame (quant.go).
	UplinkInt8 = 4
)

// uplinkDeltaHeader is the mode byte plus worker, n, and d.
const uplinkDeltaHeader = 13

// UplinkRawSize returns the encoded size of a raw uplink frame with n
// files of dimension d.
func UplinkRawSize(n, d int) int { return 1 + GradFrameSize(n, d) }

// UplinkEncoder is the worker-side streaming state of the uplink
// codec: the previous report (the delta base) plus encode scratch. One
// encoder serves one ordered frame stream; a reconnect must Reset it
// (the new connection's receiver holds no base).
type UplinkEncoder struct {
	// Tier selects the codec this stream runs (the connection's
	// negotiated tier, announced by the PS in its Welcome). TierRaw
	// emits only self-contained raw frames and drops the delta base
	// rather than rolling it — a raw report is self-contained, so
	// maintaining the base would copy n×d floats per frame for
	// nothing. The lossy tiers (sign, int8) are stateless too: each
	// frame quantizes from scratch. Switching tiers mid-stream is
	// still safe: with no base held, the next delta-eligible Encode
	// falls back to raw exactly like a fresh connection.
	Tier UplinkTier

	prev      []float64 // previous report's values, flat n×d
	prevFiles []int     // previous report's file ids
	scratch   []byte    // delta build buffer
}

// Reset drops the delta base, as if no frame had been sent yet.
func (e *UplinkEncoder) Reset() {
	e.prev = e.prev[:0]
	e.prevFiles = e.prevFiles[:0]
}

// Encode appends one uplink frame for the report (worker, files,
// grads) to dst, choosing the smaller of the delta and raw encodings,
// and rolls the base forward. It returns the extended buffer, the mode
// chosen, and the size a raw frame would have had (the uncompressed
// cost, for accounting the realized ratio). files and grads follow the
// AppendGradFrame contract.
func (e *UplinkEncoder) Encode(dst []byte, worker int, files []int, grads [][]float64) (out []byte, mode, rawSize int, err error) {
	if len(files) != len(grads) {
		return nil, 0, 0, fmt.Errorf("wire: %d files but %d gradients", len(files), len(grads))
	}
	n := len(files)
	d := 0
	if n > 0 {
		d = len(grads[0])
	}
	for i, g := range grads {
		if len(g) != d {
			return nil, 0, 0, fmt.Errorf("wire: gradient %d has dim %d, want %d", i, len(g), d)
		}
	}
	rawSize = UplinkRawSize(n, d)
	switch e.Tier {
	case TierRaw:
		e.Reset()
		out = append(dst, UplinkRaw)
		out, err = AppendGradFrame(out, worker, files, grads)
		if err != nil {
			return nil, 0, 0, err
		}
		return out, UplinkRaw, rawSize, nil
	case TierSign:
		e.Reset()
		if out, err = appendUplinkSign(dst, worker, files, grads); err != nil {
			return nil, 0, 0, err
		}
		return out, UplinkSign, rawSize, nil
	case TierInt8:
		e.Reset()
		if out, err = appendUplinkInt8(dst, worker, files, grads); err != nil {
			return nil, 0, 0, err
		}
		return out, UplinkInt8, rawSize, nil
	}
	useDelta := n > 0 && len(e.prev) == n*d && slices.Equal(e.prevFiles, files)
	if useDelta {
		delta, derr := e.appendDelta(e.scratch[:0], worker, files, grads)
		if derr != nil {
			return nil, 0, 0, derr
		}
		e.scratch = delta
		if len(delta) < rawSize {
			out = append(dst, delta...)
			e.rollBase(files, grads)
			return out, UplinkDelta, rawSize, nil
		}
	}
	out = append(dst, UplinkRaw)
	out, err = AppendGradFrame(out, worker, files, grads)
	if err != nil {
		return nil, 0, 0, err
	}
	e.rollBase(files, grads)
	return out, UplinkRaw, rawSize, nil
}

// appendDelta builds the delta frame for the report against e.prev.
func (e *UplinkEncoder) appendDelta(dst []byte, worker int, files []int, grads [][]float64) ([]byte, error) {
	if worker < 0 || int64(worker) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: worker id %d outside u32 range", worker)
	}
	n, d := len(files), len(grads[0])
	dst = append(dst, UplinkDelta)
	dst = append32(dst, uint32(worker))
	dst = append32(dst, uint32(n))
	dst = append32(dst, uint32(d))
	for _, v := range files {
		if v < 0 || int64(v) > math.MaxUint32 {
			return nil, fmt.Errorf("wire: file id %d outside u32 range", v)
		}
		dst = append32(dst, uint32(v))
	}
	nibbleAt := len(dst)
	dst = append(dst, make([]byte, (n*d+1)/2)...)
	idx := 0
	for i, g := range grads {
		base := e.prev[i*d : (i+1)*d]
		for j, v := range g {
			x := math.Float64bits(base[j]) ^ math.Float64bits(v)
			nb := xorLen(x)
			orNibbleLen(dst[nibbleAt:], idx, nb)
			dst = appendXORBytes(dst, x, nb)
			idx++
		}
	}
	return dst, nil
}

// rollBase records the report as the next frame's delta base.
func (e *UplinkEncoder) rollBase(files []int, grads [][]float64) {
	n := len(files)
	d := 0
	if n > 0 {
		d = len(grads[0])
	}
	if cap(e.prev) < n*d {
		e.prev = make([]float64, n*d)
	}
	e.prev = e.prev[:n*d]
	for i, g := range grads {
		copy(e.prev[i*d:(i+1)*d], g)
	}
	e.prevFiles = append(e.prevFiles[:0], files...)
}

// UplinkDecoder is the PS-side streaming state of the uplink codec for
// one worker connection: the previous accepted report, against which
// delta frames are applied. Decode must see every frame of the stream
// in order — including reports that arrive too late to count for their
// round — or the base diverges from the encoder's; that is exactly why
// the transport's reader pumps decode stale frames before retiring
// them.
type UplinkDecoder struct {
	// Tier mirrors the connection's negotiated tier on the PS side and
	// bounds what the decoder accepts: TierRaw takes raw frames only
	// (and skips the n×d float base copy per report), TierDelta takes
	// raw or delta, and each lossy tier takes exactly its own mode —
	// a worker that sends outside its negotiated tier is a buggy or
	// hostile peer and poisons its stream instead of silently changing
	// codecs.
	Tier UplinkTier

	prev       []float64
	prevFiles  []int
	prevWorker int
}

// Reset drops the delta base (a fresh connection's state).
func (dec *UplinkDecoder) Reset() {
	dec.prev = dec.prev[:0]
	dec.prevFiles = dec.prevFiles[:0]
	dec.prevWorker = 0
}

// Decode parses one uplink frame from the front of src into f (the
// DecodeGradFrame buffer-reuse contract) and rolls the base forward,
// returning the mode and bytes consumed. A delta frame is rejected
// unless its worker/file-list/dimension exactly match the held base;
// lengths must be canonical, so any accepted frame re-encodes to the
// consumed bytes. On error the base is unchanged and the stream must
// be considered poisoned (the caller evicts the connection).
func (dec *UplinkDecoder) Decode(src []byte, f *GradFrame) (mode, consumed int, err error) {
	if len(src) < 1 {
		return 0, 0, fmt.Errorf("wire: empty uplink frame")
	}
	mode = int(src[0])
	if !dec.accepts(mode) {
		return 0, 0, fmt.Errorf("wire: uplink frame mode %d outside negotiated tier %s", mode, dec.Tier)
	}
	switch mode {
	case UplinkRaw:
		n, err := DecodeGradFrame(src[1:], f)
		if err != nil {
			return 0, 0, err
		}
		if dec.Tier == TierRaw {
			dec.Reset()
		} else {
			dec.rollBase(f)
		}
		return UplinkRaw, 1 + n, nil
	case UplinkDelta:
		consumed, err := dec.decodeDelta(src, f)
		if err != nil {
			return 0, 0, err
		}
		return UplinkDelta, consumed, nil
	case UplinkSign:
		consumed, err := decodeUplinkSign(src, f)
		if err != nil {
			return 0, 0, err
		}
		return UplinkSign, consumed, nil
	case UplinkInt8:
		consumed, err := decodeUplinkInt8(src, f)
		if err != nil {
			return 0, 0, err
		}
		return UplinkInt8, consumed, nil
	default:
		return 0, 0, fmt.Errorf("wire: unknown uplink frame mode %d", mode)
	}
}

// accepts reports whether the decoder's tier takes frames of mode m.
func (dec *UplinkDecoder) accepts(m int) bool {
	switch dec.Tier {
	case TierRaw:
		return m == UplinkRaw
	case TierDelta:
		return m == UplinkRaw || m == UplinkDelta
	case TierSign:
		return m == UplinkSign
	case TierInt8:
		return m == UplinkInt8
	default:
		return false
	}
}

// decodeDelta parses a delta frame and applies it to the base,
// leaving the reconstructed values in both f.Grads and the base.
func (dec *UplinkDecoder) decodeDelta(src []byte, f *GradFrame) (int, error) {
	if len(src) < uplinkDeltaHeader {
		return 0, fmt.Errorf("wire: uplink delta frame truncated at %d bytes", len(src))
	}
	worker := int(binary.LittleEndian.Uint32(src[1:]))
	n64 := uint64(binary.LittleEndian.Uint32(src[5:]))
	d64 := uint64(binary.LittleEndian.Uint32(src[9:]))
	// The base bounds every size: a delta is only valid against the
	// exact previous report, so hostile counts cannot trigger oversized
	// allocations — they fail the base match first.
	n := len(dec.prevFiles)
	if n == 0 {
		return 0, fmt.Errorf("wire: uplink delta frame with no base report")
	}
	if worker != dec.prevWorker {
		return 0, fmt.Errorf("wire: uplink delta claims worker %d, base is worker %d", worker, dec.prevWorker)
	}
	d := len(dec.prev) / n
	if n64 != uint64(n) || d64 != uint64(d) {
		return 0, fmt.Errorf("wire: uplink delta declares %d×%d values, base is %d×%d", n64, d64, n, d)
	}
	if len(src) < uplinkDeltaHeader+n*4 {
		return 0, fmt.Errorf("wire: uplink delta frame truncated in file list")
	}
	for i := 0; i < n; i++ {
		v := int(binary.LittleEndian.Uint32(src[uplinkDeltaHeader+i*4:]))
		if v != dec.prevFiles[i] {
			return 0, fmt.Errorf("wire: uplink delta file %d is %d, base has %d", i, v, dec.prevFiles[i])
		}
	}
	nb := (n*d + 1) / 2
	body := src[uplinkDeltaHeader+n*4:]
	if len(body) < nb {
		return 0, fmt.Errorf("wire: uplink delta needs %d length bytes, have %d", nb, len(body))
	}
	nibbles, payload := body[:nb], body[nb:]
	// First pass: validate every length and the total payload size so
	// the base is never partially updated by a malformed frame.
	off := 0
	for i := 0; i < n*d; i++ {
		ln := nibbleLen(nibbles, i)
		if ln > 8 {
			return 0, fmt.Errorf("wire: uplink delta length %d > 8 at value %d", ln, i)
		}
		if len(payload)-off < ln {
			return 0, fmt.Errorf("wire: uplink delta payload truncated at value %d", i)
		}
		if ln > 0 && payload[off+ln-1] == 0 {
			return 0, fmt.Errorf("wire: non-canonical uplink delta length at value %d", i)
		}
		off += ln
	}
	if (n*d)%2 == 1 && nibbles[nb-1]>>4 != 0 {
		return 0, fmt.Errorf("wire: uplink delta frame has a set padding nibble")
	}
	// Second pass: apply. Outputs follow the DecodeGradFrame reuse
	// contract so callers can decode straight into arena buffers.
	f.Worker = worker
	if cap(f.Files) < n {
		f.Files = make([]int, n)
	}
	f.Files = f.Files[:n]
	copy(f.Files, dec.prevFiles)
	if cap(f.Grads) < n {
		grads := make([][]float64, n)
		copy(grads, f.Grads)
		f.Grads = grads
	}
	f.Grads = f.Grads[:n]
	off = 0
	for i := 0; i < n; i++ {
		if cap(f.Grads[i]) < d {
			f.Grads[i] = make([]float64, d)
		}
		g := f.Grads[i][:d]
		base := dec.prev[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			ln := nibbleLen(nibbles, i*d+j)
			x := xorFromBytes(payload[off:], ln)
			off += ln
			v := math.Float64frombits(math.Float64bits(base[j]) ^ x)
			base[j] = v
			g[j] = v
		}
		f.Grads[i] = g
	}
	return uplinkDeltaHeader + n*4 + nb + off, nil
}

// rollBase records a raw frame's contents as the next delta base.
func (dec *UplinkDecoder) rollBase(f *GradFrame) {
	dec.prevWorker = f.Worker
	n := len(f.Files)
	d := 0
	if n > 0 {
		d = len(f.Grads[0])
	}
	if cap(dec.prev) < n*d {
		dec.prev = make([]float64, n*d)
	}
	dec.prev = dec.prev[:n*d]
	for i, g := range f.Grads {
		copy(dec.prev[i*d:(i+1)*d], g)
	}
	dec.prevFiles = append(dec.prevFiles[:0], f.Files...)
}
