package data

import (
	"testing"
	"testing/quick"
)

func TestSyntheticDeterministic(t *testing.T) {
	cfg := SyntheticConfig{Train: 100, Test: 20, Dim: 8, Classes: 10, Seed: 7}
	tr1, te1, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr2, te2, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr1.X {
		for j := range tr1.X[i] {
			if tr1.X[i][j] != tr2.X[i][j] {
				t.Fatal("train not deterministic")
			}
		}
	}
	for i := range te1.X {
		for j := range te1.X[i] {
			if te1.X[i][j] != te2.X[i][j] {
				t.Fatal("test not deterministic")
			}
		}
	}
}

func TestSyntheticShapesAndLabels(t *testing.T) {
	tr, te, err := Synthetic(SyntheticConfig{Train: 95, Test: 31, Dim: 16, Classes: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 95 || te.Len() != 31 || tr.Dim() != 16 {
		t.Fatalf("shapes: train %d test %d dim %d", tr.Len(), te.Len(), tr.Dim())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	if err := te.Validate(); err != nil {
		t.Error(err)
	}
	// All classes present in a 95-sample cycling draw.
	seen := make(map[int]bool)
	for _, y := range tr.Y {
		seen[y] = true
	}
	if len(seen) != 10 {
		t.Errorf("only %d classes present", len(seen))
	}
}

func TestSyntheticSeedsDiffer(t *testing.T) {
	tr1, _, _ := Synthetic(SyntheticConfig{Train: 10, Test: 1, Dim: 4, Classes: 2, Seed: 1})
	tr2, _, _ := Synthetic(SyntheticConfig{Train: 10, Test: 1, Dim: 4, Classes: 2, Seed: 2})
	same := true
	for i := range tr1.X {
		for j := range tr1.X[i] {
			if tr1.X[i][j] != tr2.X[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestSyntheticErrors(t *testing.T) {
	if _, _, err := Synthetic(SyntheticConfig{Train: 0, Test: 1, Dim: 4, Classes: 2}); err == nil {
		t.Error("Train=0 accepted")
	}
	if _, _, err := Synthetic(SyntheticConfig{Train: 1, Test: 1, Dim: 0, Classes: 2}); err == nil {
		t.Error("Dim=0 accepted")
	}
	if _, _, err := Synthetic(SyntheticConfig{Train: 1, Test: 1, Dim: 4, Classes: 1}); err == nil {
		t.Error("Classes=1 accepted")
	}
}

func TestSyntheticImbalanced(t *testing.T) {
	tr, _, err := Synthetic(SyntheticConfig{Train: 550, Test: 1, Dim: 4, Classes: 10, Seed: 3, Imbalanced: true})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for _, y := range tr.Y {
		counts[y]++
	}
	if counts[9] <= counts[0] {
		t.Errorf("imbalanced ramp not increasing: %v", counts)
	}
}

func TestValidateCatchesBadLabels(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1}}, Y: []int{5}, Classes: 2}
	if err := ds.Validate(); err == nil {
		t.Error("bad label accepted")
	}
	ds2 := &Dataset{X: [][]float64{{1}, {2, 3}}, Y: []int{0, 1}, Classes: 2}
	if err := ds2.Validate(); err == nil {
		t.Error("ragged features accepted")
	}
	ds3 := &Dataset{X: [][]float64{{1}}, Y: []int{0, 1}, Classes: 2}
	if err := ds3.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestBatchSamplerCoversEpoch(t *testing.T) {
	s, err := NewBatchSampler(10, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for i := 0; i < 2; i++ { // one epoch = 2 batches
		for _, idx := range s.Next() {
			seen[idx]++
		}
	}
	if len(seen) != 10 {
		t.Errorf("epoch covered %d distinct samples, want 10", len(seen))
	}
	for idx, c := range seen {
		if c != 1 {
			t.Errorf("sample %d drawn %d times in one epoch", idx, c)
		}
	}
}

func TestBatchSamplerDeterministic(t *testing.T) {
	s1, _ := NewBatchSampler(20, 7, 42)
	s2, _ := NewBatchSampler(20, 7, 42)
	for i := 0; i < 5; i++ {
		b1, b2 := s1.Next(), s2.Next()
		for j := range b1 {
			if b1[j] != b2[j] {
				t.Fatal("sampler not deterministic")
			}
		}
	}
}

func TestBatchSamplerErrors(t *testing.T) {
	if _, err := NewBatchSampler(5, 6, 1); err == nil {
		t.Error("batch > n accepted")
	}
	if _, err := NewBatchSampler(5, 0, 1); err == nil {
		t.Error("batch 0 accepted")
	}
}

func TestBatchSamplerBatchSizeAlwaysExact(t *testing.T) {
	// n = 10, batch = 4: epoch boundary falls inside a batch.
	s, _ := NewBatchSampler(10, 4, 9)
	for i := 0; i < 20; i++ {
		if got := len(s.Next()); got != 4 {
			t.Fatalf("batch %d has %d samples", i, got)
		}
	}
}

func TestPartitionFilesEven(t *testing.T) {
	batch := []int{0, 1, 2, 3, 4, 5}
	files, err := PartitionFiles(batch, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("%d files", len(files))
	}
	for i, f := range files {
		if len(f) != 2 {
			t.Errorf("file %d size %d", i, len(f))
		}
	}
	if files[0][0] != 0 || files[2][1] != 5 {
		t.Error("partition order wrong")
	}
}

func TestPartitionFilesUneven(t *testing.T) {
	batch := []int{0, 1, 2, 3, 4, 5, 6}
	files, err := PartitionFiles(batch, 3)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{len(files[0]), len(files[1]), len(files[2])}
	if sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 2 {
		t.Errorf("sizes = %v", sizes)
	}
	total := 0
	for _, f := range files {
		total += len(f)
	}
	if total != 7 {
		t.Errorf("total = %d", total)
	}
}

func TestPartitionFilesErrors(t *testing.T) {
	if _, err := PartitionFiles([]int{1, 2}, 3); err == nil {
		t.Error("f > len accepted")
	}
	if _, err := PartitionFiles([]int{1, 2}, 0); err == nil {
		t.Error("f = 0 accepted")
	}
}

// Property: every partition is a disjoint cover of the batch.
func TestQuickPartitionDisjointCover(t *testing.T) {
	prop := func(nRaw, fRaw uint8) bool {
		n := 1 + int(nRaw)%100
		f := 1 + int(fRaw)%n
		batch := make([]int, n)
		for i := range batch {
			batch[i] = i * 3
		}
		files, err := PartitionFiles(batch, f)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, file := range files {
			for _, idx := range file {
				if seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProbeIndicesDeterministicAndBounded(t *testing.T) {
	for _, n := range []int{1, 10, 256, 1000} {
		idx := ProbeIndices(n)
		if len(idx) != min(256, n) {
			t.Errorf("n=%d: %d probe indices", n, len(idx))
		}
		for _, i := range idx {
			if i < 0 || i >= n {
				t.Fatalf("n=%d: probe index %d out of range", n, i)
			}
		}
		again := ProbeIndices(n)
		for k := range idx {
			if idx[k] != again[k] {
				t.Fatalf("n=%d: probe indices not deterministic", n)
			}
		}
	}
}

func TestPerSampleScale(t *testing.T) {
	if got := PerSampleScale(25, 250); got != 0.1 {
		t.Errorf("PerSampleScale(25, 250) = %v", got)
	}
	if got := PerSampleScale(1, 4); got != 0.25 {
		t.Errorf("PerSampleScale(1, 4) = %v", got)
	}
}
