package data

// Dataset32 is the float32 mirror of Dataset used by the negotiated
// reduced-precision tier: the same samples with features narrowed to
// float32 once at conversion time, so the f32 round path never touches
// float64 sample data. Labels and the class count are shared with the
// source dataset (both are read-only after construction).
type Dataset32 struct {
	X       [][]float32 // n × d features
	Y       []int       // n labels in [0, Classes)
	Classes int
}

// Len returns the number of samples.
func (d *Dataset32) Len() int { return len(d.X) }

// Dim returns the feature dimension (0 for an empty dataset).
func (d *Dataset32) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// To32 returns the float32 view of d. The conversion is deterministic
// (IEEE 754 round-to-nearest-even per feature), so every process that
// narrows the same dataset sees bit-identical float32 features — the
// property the f32 majority vote relies on. The feature matrix is
// freshly allocated; Y and Classes are shared with d.
func (d *Dataset) To32() *Dataset32 {
	if d == nil {
		return nil
	}
	x := make([][]float32, len(d.X))
	flat := make([]float32, len(d.X)*d.Dim())
	for i, row := range d.X {
		dst := flat[i*len(row) : (i+1)*len(row) : (i+1)*len(row)]
		for j, v := range row {
			dst[j] = float32(v)
		}
		x[i] = dst
	}
	return &Dataset32{X: x, Y: d.Y, Classes: d.Classes}
}
