package data

import (
	"reflect"
	"testing"
)

func distTestSet(t *testing.T, n int) *Dataset {
	t.Helper()
	ds, _, err := Synthetic(SyntheticConfig{Train: n, Test: 1, Dim: 4, Classes: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// checkPartition verifies the Split postcondition: the pools are
// non-empty and cover every sample index exactly once.
func checkPartition(t *testing.T, name string, pools [][]int, n int) {
	t.Helper()
	seen := make([]bool, n)
	total := 0
	for p, pool := range pools {
		if len(pool) == 0 {
			t.Fatalf("%s: pool %d empty", name, p)
		}
		for _, i := range pool {
			if i < 0 || i >= n {
				t.Fatalf("%s: index %d out of range", name, i)
			}
			if seen[i] {
				t.Fatalf("%s: index %d assigned twice", name, i)
			}
			seen[i] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("%s: %d of %d samples assigned", name, total, n)
	}
}

// TestDistributorDeterminism pins every distributor to seed-determined
// output: identical seeds reproduce the identical split, different
// seeds move it.
func TestDistributorDeterminism(t *testing.T) {
	ds := distTestSet(t, 500)
	dists := []Distributor{
		IID{Seed: 9},
		Dirichlet{Alpha: 0.3, Seed: 9},
		LabelSkew{Shards: 2, Seed: 9},
	}
	reseeded := []Distributor{
		IID{Seed: 10},
		Dirichlet{Alpha: 0.3, Seed: 10},
		LabelSkew{Shards: 2, Seed: 10},
	}
	for i, d := range dists {
		a, err := d.Split(ds, 25)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		b, err := d.Split(ds, 25)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed split differs", d.Name())
		}
		checkPartition(t, d.Name(), a, ds.Len())
		c, err := reseeded[i].Split(ds, 25)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: different seeds produced identical split", d.Name())
		}
	}
}

// TestDirichletSkew checks that a small concentration parameter
// actually produces label heterogeneity: per-pool label histograms must
// be measurably more concentrated than the IID control.
func TestDirichletSkew(t *testing.T) {
	ds := distTestSet(t, 2000)
	maxShare := func(pools [][]int) float64 {
		// Mean over pools of the dominant label's share.
		var sum float64
		for _, pool := range pools {
			hist := make([]int, ds.Classes)
			for _, i := range pool {
				hist[ds.Y[i]]++
			}
			best := 0
			for _, c := range hist {
				if c > best {
					best = c
				}
			}
			sum += float64(best) / float64(len(pool))
		}
		return sum / float64(len(pools))
	}
	iid, err := IID{Seed: 1}.Split(ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	skew, err := Dirichlet{Alpha: 0.1, Seed: 1}.Split(ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s, i := maxShare(skew), maxShare(iid); s < i+0.15 {
		t.Fatalf("dirichlet(0.1) dominant-label share %.3f not meaningfully above IID %.3f", s, i)
	}
}

// TestLabelSkewLabelCount checks the sharding bound: with whole-class
// shards each pool sees at most Shards distinct labels.
func TestLabelSkewLabelCount(t *testing.T) {
	// 10 classes × 100 samples, 5 pools × 2 shards = 10 shards of
	// exactly one class each.
	ds := distTestSet(t, 1000)
	pools, err := LabelSkew{Shards: 2, Seed: 4}.Split(ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, "label-skew", pools, ds.Len())
	for p, pool := range pools {
		labels := make(map[int]bool)
		for _, i := range pool {
			labels[ds.Y[i]] = true
		}
		if len(labels) > 2 {
			t.Fatalf("pool %d sees %d labels, want <= 2", p, len(labels))
		}
	}
}

// TestPoolSamplerDeterminism pins the pool sampler's stream to its seed
// and checks each draw respects the per-pool share sizes.
func TestPoolSamplerDeterminism(t *testing.T) {
	ds := distTestSet(t, 300)
	pools, err := Dirichlet{Alpha: 0.3, Seed: 2}.Split(ds, 25)
	if err != nil {
		t.Fatal(err)
	}
	inPool := make([]map[int]bool, len(pools))
	for p, pool := range pools {
		inPool[p] = make(map[int]bool, len(pool))
		for _, i := range pool {
			inPool[p][i] = true
		}
	}
	s1, err := NewPoolSampler(pools, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewPoolSampler(pools, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	files := make([][]int, 25)
	for round := 0; round < 10; round++ {
		b1 := s1.Next()
		b2 := s2.Next()
		if !reflect.DeepEqual(b1, b2) {
			t.Fatalf("round %d: same-seed streams diverge", round)
		}
		if len(b1) != 100 {
			t.Fatalf("round %d: batch size %d, want 100", round, len(b1))
		}
		// Partitioning the batch must hand file p pool p's draws.
		files, err = PartitionFilesInto(b1, 25, files)
		if err != nil {
			t.Fatal(err)
		}
		for p, f := range files {
			for _, i := range f {
				if !inPool[p][i] {
					t.Fatalf("round %d: file %d drew sample %d from another pool", round, p, i)
				}
			}
		}
	}
}
