// Package data provides the datasets and batch/file plumbing for the
// training experiments. The paper trains ResNet-18 on CIFAR-10; with no
// Go deep-learning substrate available, we substitute a deterministic
// synthetic 10-class image-like dataset (Gaussian class clusters over
// d-dimensional feature vectors — see DESIGN.md for why this preserves
// the experiments' shape). The batching and file-partition logic
// implements the B_t → {B_t,i} split of the protocol (Sec. 2).
package data

import (
	"fmt"
	"math/rand"
)

// Dataset is a supervised classification dataset with dense features.
type Dataset struct {
	X       [][]float64 // n × d features
	Y       []int       // n labels in [0, Classes)
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature dimension (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks structural consistency.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("data: %d feature rows but %d labels", len(d.X), len(d.Y))
	}
	if d.Classes < 2 {
		return fmt.Errorf("data: %d classes < 2", d.Classes)
	}
	dim := d.Dim()
	for i, x := range d.X {
		if len(x) != dim {
			return fmt.Errorf("data: sample %d has dim %d, want %d", i, len(x), dim)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("data: label %d of sample %d out of range [0,%d)", y, i, d.Classes)
		}
	}
	return nil
}

// SyntheticConfig parameterizes the synthetic classification dataset.
type SyntheticConfig struct {
	Train      int     // number of training samples
	Test       int     // number of test samples
	Dim        int     // feature dimension
	Classes    int     // number of classes (CIFAR-10 uses 10)
	ClassSep   float64 // scale of class-mean separation (default 2.0)
	Noise      float64 // within-class standard deviation (default 1.0)
	Seed       int64   // PRNG seed; identical seeds give identical data
	Imbalanced bool    // when true, class sizes follow a 2:1 ramp
}

// Synthetic generates a deterministic Gaussian-mixture dataset: each
// class c has a mean vector drawn from N(0, ClassSep²·I); samples are
// mean + N(0, Noise²·I). Labels cycle through classes (or ramp when
// Imbalanced) so every class is populated for any Train/Test size.
func Synthetic(cfg SyntheticConfig) (train, test *Dataset, err error) {
	if cfg.Train < 1 || cfg.Test < 0 {
		return nil, nil, fmt.Errorf("data: need Train >= 1, Test >= 0, got %d/%d", cfg.Train, cfg.Test)
	}
	if cfg.Dim < 1 {
		return nil, nil, fmt.Errorf("data: Dim %d < 1", cfg.Dim)
	}
	if cfg.Classes < 2 {
		return nil, nil, fmt.Errorf("data: Classes %d < 2", cfg.Classes)
	}
	sep := cfg.ClassSep
	if sep == 0 {
		sep = 2.0
	}
	noise := cfg.Noise
	if noise == 0 {
		noise = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	means := make([][]float64, cfg.Classes)
	for c := range means {
		m := make([]float64, cfg.Dim)
		for i := range m {
			m[i] = rng.NormFloat64() * sep
		}
		means[c] = m
	}
	gen := func(n int) *Dataset {
		ds := &Dataset{
			X:       make([][]float64, n),
			Y:       make([]int, n),
			Classes: cfg.Classes,
		}
		for i := 0; i < n; i++ {
			c := i % cfg.Classes
			if cfg.Imbalanced {
				// Ramp: class c gets weight (c+1); invert the cumulative
				// distribution over a cycling counter.
				c = rampClass(i, cfg.Classes)
			}
			x := make([]float64, cfg.Dim)
			for j := range x {
				x[j] = means[c][j] + rng.NormFloat64()*noise
			}
			ds.X[i] = x
			ds.Y[i] = c
		}
		return ds
	}
	train = gen(cfg.Train)
	test = gen(cfg.Test)
	return train, test, nil
}

// rampClass maps a running index to a class with probability weight
// proportional to class+1, deterministically.
func rampClass(i, classes int) int {
	total := classes * (classes + 1) / 2
	pos := i % total
	for c := 0; c < classes; c++ {
		pos -= c + 1
		if pos < 0 {
			return c
		}
	}
	return classes - 1
}

// BatchSampler draws random mini-batches of indices without replacement
// within a batch (samples may repeat across batches, as in standard
// mini-batch SGD with reshuffling). The permutation and batch buffers
// are preallocated and reused, so steady-state sampling allocates
// nothing: each Next overwrites the previously returned slice.
type BatchSampler struct {
	n     int
	batch int
	rng   *rand.Rand
	perm  []int
	pos   int
	out   []int
}

// NewBatchSampler creates a sampler over n samples with the given batch
// size and seed.
func NewBatchSampler(n, batch int, seed int64) (*BatchSampler, error) {
	if batch < 1 || batch > n {
		return nil, fmt.Errorf("data: batch size %d out of range [1,%d]", batch, n)
	}
	return &BatchSampler{
		n:     n,
		batch: batch,
		rng:   rand.New(rand.NewSource(seed)),
		perm:  make([]int, n),
		out:   make([]int, 0, batch),
	}, nil
}

// reshuffle refills the permutation buffer in place, consuming the rng
// exactly like rand.Perm so preallocating changes no sample stream.
func (s *BatchSampler) reshuffle() {
	for i := 0; i < s.n; i++ {
		j := s.rng.Intn(i + 1)
		s.perm[i] = s.perm[j]
		s.perm[j] = i
	}
}

// Next returns the indices of the next batch B_t, reshuffling in place
// whenever the previous epoch is exhausted. The returned slice is
// owned by the sampler and overwritten by the following Next; callers
// that need it longer than one round must copy.
func (s *BatchSampler) Next() []int {
	out := s.out[:0]
	for len(out) < s.batch {
		if s.pos == 0 || s.pos >= s.n {
			s.reshuffle()
			s.pos = 0
		}
		take := s.batch - len(out)
		if rem := s.n - s.pos; take > rem {
			take = rem
		}
		out = append(out, s.perm[s.pos:s.pos+take]...)
		s.pos += take
	}
	s.out = out
	return out
}

// PartitionFiles splits batch indices into f disjoint files of
// near-equal size in order, implementing B_t = {B_t,0 ... B_t,f−1}.
// When f does not divide |batch|, leading files get one extra sample.
func PartitionFiles(batch []int, f int) ([][]int, error) {
	return PartitionFilesInto(batch, f, nil)
}

// PartitionFilesInto is PartitionFiles reusing dst's capacity for the
// file table (the per-file slices are always views into batch), so a
// caller that keeps dst across rounds partitions without allocating.
func PartitionFilesInto(batch []int, f int, dst [][]int) ([][]int, error) {
	if f < 1 {
		return nil, fmt.Errorf("data: partition into %d files", f)
	}
	if f > len(batch) {
		return nil, fmt.Errorf("data: %d files for %d samples", f, len(batch))
	}
	if cap(dst) < f {
		dst = make([][]int, f)
	}
	files := dst[:f]
	base := len(batch) / f
	extra := len(batch) % f
	pos := 0
	for i := 0; i < f; i++ {
		size := base
		if i < extra {
			size++
		}
		files[i] = batch[pos : pos+size]
		pos += size
	}
	return files, nil
}

// ProbeIndices returns a fixed, deterministic subset of up to 256
// sample indices from a dataset of n samples, strided across the whole
// set. It is the shared loss-probe used for cheap history reporting by
// both the in-process engine and the TCP parameter server, so the two
// paths evaluate identical losses.
func ProbeIndices(n int) []int {
	size := 256
	if size > n {
		size = n
	}
	idx := make([]int, size)
	stride := n / size
	if stride < 1 {
		stride = 1
	}
	for i := range idx {
		idx[i] = (i * stride) % n
	}
	return idx
}

// PerSampleScale is the factor that normalizes a per-file gradient sum
// (over ~batch/f samples) to per-sample scale for the model update —
// Algorithm 1, line 17. Both round paths apply the same factor so their
// parameter trajectories match bit-for-bit.
func PerSampleScale(files, batch int) float64 {
	return float64(files) / float64(batch)
}
