package data

import (
	"fmt"
	"math"
	"math/rand"
)

// Distributor splits a dataset's sample indices into a fixed number of
// disjoint pools — the data-distribution component of the benchmark
// harness (the byzfl DataDistributor shape): IID round-robin, Dirichlet
// non-IID, or label-skew sharding. The engine assigns pool v to file v,
// so each file's per-round samples are drawn from its own pool and the
// per-file gradients reflect the configured heterogeneity.
//
// Splits are deterministic in the distributor's seed: the same dataset,
// part count, and seed always produce the identical pools, on every
// architecture, so distributed replicas agree on the partition without
// exchanging it.
type Distributor interface {
	// Split partitions the dataset's indices into parts disjoint,
	// non-empty pools covering every sample exactly once.
	Split(ds *Dataset, parts int) ([][]int, error)
	// Name returns a stable identifier used in experiment reports.
	Name() string
}

// checkSplit validates the common Split preconditions.
func checkSplit(ds *Dataset, parts int) error {
	if ds == nil || ds.Len() == 0 {
		return fmt.Errorf("data: split of empty dataset")
	}
	if parts < 1 {
		return fmt.Errorf("data: split into %d parts", parts)
	}
	if parts > ds.Len() {
		return fmt.Errorf("data: %d parts for %d samples", parts, ds.Len())
	}
	return nil
}

// IID shuffles the dataset and deals near-equal contiguous pools — the
// homogeneous control every non-IID run is compared against.
type IID struct {
	Seed int64
}

// Name implements Distributor.
func (IID) Name() string { return "iid" }

// Split implements Distributor.
func (d IID) Split(ds *Dataset, parts int) ([][]int, error) {
	if err := checkSplit(ds, parts); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(d.Seed))
	idx := rng.Perm(ds.Len())
	pools := make([][]int, parts)
	base, extra := len(idx)/parts, len(idx)%parts
	pos := 0
	for p := range pools {
		size := base
		if p < extra {
			size++
		}
		pools[p] = append([]int(nil), idx[pos:pos+size]...)
		pos += size
	}
	return pools, nil
}

// Dirichlet is the standard non-IID benchmark partition: for each
// class, pool proportions are drawn from a symmetric Dirichlet(Alpha)
// and the class's samples split accordingly. Small Alpha concentrates
// each class in few pools (strong heterogeneity); large Alpha
// approaches IID.
type Dirichlet struct {
	// Alpha is the Dirichlet concentration; 0 selects 0.5.
	Alpha float64
	Seed  int64
}

// Name implements Distributor.
func (d Dirichlet) Name() string { return fmt.Sprintf("dirichlet(%g)", d.alpha()) }

func (d Dirichlet) alpha() float64 {
	if d.Alpha == 0 {
		return 0.5
	}
	return d.Alpha
}

// Split implements Distributor.
func (d Dirichlet) Split(ds *Dataset, parts int) ([][]int, error) {
	if err := checkSplit(ds, parts); err != nil {
		return nil, err
	}
	alpha := d.alpha()
	if alpha < 0 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("data: dirichlet alpha %v < 0", alpha)
	}
	rng := rand.New(rand.NewSource(d.Seed))
	byClass := classIndices(ds)
	pools := make([][]int, parts)
	w := make([]float64, parts)
	for _, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		// Symmetric Dirichlet via normalized Gamma(alpha) draws.
		sum := 0.0
		for p := range w {
			w[p] = gammaRand(rng, alpha)
			sum += w[p]
		}
		if sum == 0 {
			// All draws underflowed (tiny alpha): the class collapses
			// into one pool, which is exactly the alpha→0 limit.
			w[rng.Intn(parts)] = 1
			sum = 1
		}
		pos, acc := 0, 0.0
		for p := 0; p < parts; p++ {
			acc += w[p] / sum
			end := int(math.Round(acc * float64(len(idx))))
			if p == parts-1 {
				end = len(idx)
			}
			if end < pos {
				end = pos
			} else if end > len(idx) {
				end = len(idx)
			}
			pools[p] = append(pools[p], idx[pos:end]...)
			pos = end
		}
	}
	fillEmptyPools(pools)
	return pools, nil
}

// LabelSkew is the sharding partition of the FedAvg paper: samples are
// ordered by label, cut into parts·Shards contiguous shards, and each
// pool receives Shards shards at random — every pool sees at most
// Shards distinct labels (for shards smaller than a class).
type LabelSkew struct {
	// Shards is the number of label-shards per pool; 0 selects 2.
	Shards int
	Seed   int64
}

// Name implements Distributor.
func (s LabelSkew) Name() string { return fmt.Sprintf("label-skew(%d)", s.shards()) }

func (s LabelSkew) shards() int {
	if s.Shards == 0 {
		return 2
	}
	return s.Shards
}

// Split implements Distributor.
func (s LabelSkew) Split(ds *Dataset, parts int) ([][]int, error) {
	if err := checkSplit(ds, parts); err != nil {
		return nil, err
	}
	shards := s.shards()
	if shards < 1 {
		return nil, fmt.Errorf("data: label-skew shards %d < 1", shards)
	}
	total := parts * shards
	if total > ds.Len() {
		return nil, fmt.Errorf("data: %d shards (%d parts × %d) for %d samples", total, parts, shards, ds.Len())
	}
	// Label-major order, ascending sample index within a label.
	order := make([]int, 0, ds.Len())
	for _, idx := range classIndices(ds) {
		order = append(order, idx...)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	perm := rng.Perm(total)
	base, extra := len(order)/total, len(order)%total
	bounds := make([]int, total+1)
	for i := 0; i < total; i++ {
		size := base
		if i < extra {
			size++
		}
		bounds[i+1] = bounds[i] + size
	}
	pools := make([][]int, parts)
	for p := 0; p < parts; p++ {
		for _, sh := range perm[p*shards : (p+1)*shards] {
			pools[p] = append(pools[p], order[bounds[sh]:bounds[sh+1]]...)
		}
	}
	fillEmptyPools(pools)
	return pools, nil
}

// classIndices groups the sample indices by label, ascending within
// each class.
func classIndices(ds *Dataset) [][]int {
	byClass := make([][]int, ds.Classes)
	for i, y := range ds.Y {
		byClass[y] = append(byClass[y], i)
	}
	return byClass
}

// fillEmptyPools guarantees the non-empty postcondition by moving one
// sample from the currently largest pool into each empty one —
// deterministic (first-largest wins ties) and vanishing perturbation.
func fillEmptyPools(pools [][]int) {
	for p := range pools {
		if len(pools[p]) > 0 {
			continue
		}
		big := 0
		for q := range pools {
			if len(pools[q]) > len(pools[big]) {
				big = q
			}
		}
		if len(pools[big]) < 2 {
			continue // nothing spare to move
		}
		last := len(pools[big]) - 1
		pools[p] = append(pools[p], pools[big][last])
		pools[big] = pools[big][:last]
	}
}

// gammaRand draws Gamma(alpha, 1) with the Marsaglia–Tsang squeeze
// (boosted below alpha = 1), consuming only the given rng so draws are
// deterministic in the seed.
func gammaRand(rng *rand.Rand, alpha float64) float64 {
	if alpha <= 0 {
		return 0
	}
	if alpha < 1 {
		// Gamma(a) = Gamma(a+1) · U^{1/a}.
		return gammaRand(rng, alpha+1) * math.Pow(rng.Float64(), 1/alpha)
	}
	d := alpha - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// PoolSampler draws each round's batch per pool: pool p contributes the
// p-th PartitionFiles share of the batch, so partitioning the returned
// batch into len(pools) files hands file p exactly pool p's draws.
// Within a pool, draws are without replacement until the pool is
// exhausted, then it reshuffles (per-pool epochs) — the pool-local
// analogue of BatchSampler. Like BatchSampler, the returned slice is
// reused by the following Next.
type PoolSampler struct {
	pools [][]int
	take  []int
	rng   *rand.Rand
	perm  [][]int
	pos   []int
	out   []int
}

// NewPoolSampler creates a sampler drawing batch indices across the
// given pools with the given seed. Every pool must be non-empty, and
// the batch must be at least one sample per pool.
func NewPoolSampler(pools [][]int, batch int, seed int64) (*PoolSampler, error) {
	if len(pools) == 0 {
		return nil, fmt.Errorf("data: pool sampler with no pools")
	}
	if batch < len(pools) {
		return nil, fmt.Errorf("data: batch %d smaller than pool count %d", batch, len(pools))
	}
	s := &PoolSampler{
		pools: make([][]int, len(pools)),
		take:  make([]int, len(pools)),
		rng:   rand.New(rand.NewSource(seed)),
		perm:  make([][]int, len(pools)),
		pos:   make([]int, len(pools)),
		out:   make([]int, 0, batch),
	}
	base, extra := batch/len(pools), batch%len(pools)
	for p, pool := range pools {
		if len(pool) == 0 {
			return nil, fmt.Errorf("data: pool %d is empty", p)
		}
		s.pools[p] = append([]int(nil), pool...)
		s.perm[p] = make([]int, len(pool))
		s.take[p] = base
		if p < extra {
			s.take[p]++
		}
	}
	return s, nil
}

// Next returns the next batch: take[p] indices from each pool p,
// concatenated in pool order. The slice is overwritten by the following
// Next.
func (s *PoolSampler) Next() []int {
	out := s.out[:0]
	for p := range s.pools {
		need := s.take[p]
		pool := s.pools[p]
		for need > 0 {
			if s.pos[p] == 0 || s.pos[p] >= len(pool) {
				s.reshuffle(p)
				s.pos[p] = 0
			}
			takeN := need
			if rem := len(pool) - s.pos[p]; takeN > rem {
				takeN = rem
			}
			for _, j := range s.perm[p][s.pos[p] : s.pos[p]+takeN] {
				out = append(out, pool[j])
			}
			s.pos[p] += takeN
			need -= takeN
		}
	}
	s.out = out
	return out
}

// reshuffle refills pool p's permutation in place, consuming the shared
// rng exactly like rand.Perm.
func (s *PoolSampler) reshuffle(p int) {
	perm := s.perm[p]
	for i := range perm {
		j := s.rng.Intn(i + 1)
		perm[i] = perm[j]
		perm[j] = i
	}
}
