// Tests for the pipelined wire rounds of protocol v3: per-connection
// reader pumps, eager stale-frame retirement, compressed uplink
// gradient frames, lifecycle counters, and deterministic pump teardown.
package transport

import (
	"context"
	"encoding/binary"
	"io"
	"math"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"byzshield/internal/cluster"
	"byzshield/internal/wire"
)

// initManualWorkerShards gives a hand-rolled test worker the shard
// state RunWorker's handshake would build from the Welcome.
func initManualWorkerShards(st *workerState, w Welcome) {
	shards := w.Shards
	if shards == 0 {
		shards = 1
	}
	st.shards = shards
	st.ranges = make([][2]int, shards)
	dim := st.mdl.NumParams()
	for s := range st.ranges {
		st.ranges[s][0], st.ranges[s][1] = wire.ShardRange(dim, shards, s)
	}
	st.encs = make([]wire.UplinkEncoder, shards)
	for s := range st.encs {
		st.encs[s].Tier = w.Uplink
	}
	st.frames = make([][]byte, shards)
	st.reps = make([]GradientReport, shards)
	st.msgs = make([]Message, shards)
}

// runLoopback runs spec over loopback TCP with the given server config
// and returns the final params plus the accumulated round stats.
func runLoopback(t *testing.T, spec Spec, cfg ServerConfig) (*Server, []float64, []cluster.RoundStats) {
	t.Helper()
	var mu sync.Mutex
	var stats []cluster.RoundStats
	userOnRound := cfg.OnRound
	cfg.Spec = spec
	cfg.OnRound = func(rs cluster.RoundStats) {
		mu.Lock()
		stats = append(stats, rs)
		mu.Unlock()
		if userOnRound != nil {
			userOnRound(rs)
		}
	}
	srv, err := NewServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if _, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u}); err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return srv, srv.Params(), stats
}

// TestUplinkDeltaTrajectoryIdentity: compressed uplink (the default)
// must move strictly fewer worker→PS bytes than forced-raw frames on
// the same spec, never more than the raw equivalent on any round, and
// produce the bit-identical parameter trajectory — compression is a
// wire concern, invisible to training.
func TestUplinkDeltaTrajectoryIdentity(t *testing.T) {
	spec := testSpec(12)
	sum := func(stats []cluster.RoundStats) (up, raw int64) {
		for _, rs := range stats {
			if rs.Times.ReportBytes > rs.Times.ReportRawBytes {
				t.Errorf("round %d: moved %d bytes, raw equivalent %d — self-selection must never lose",
					rs.Iteration, rs.Times.ReportBytes, rs.Times.ReportRawBytes)
			}
			up += rs.Times.ReportBytes
			raw += rs.Times.ReportRawBytes
		}
		return up, raw
	}
	_, deltaParams, deltaStats := runLoopback(t, spec, ServerConfig{})
	_, rawParams, rawStats := runLoopback(t, spec, ServerConfig{Uplink: wire.TierRaw})

	deltaUp, deltaRaw := sum(deltaStats)
	rawUp, rawRaw := sum(rawStats)
	if rawUp != rawRaw {
		t.Errorf("forced-raw run moved %d bytes but raw equivalent is %d", rawUp, rawRaw)
	}
	if deltaUp >= rawUp {
		t.Errorf("compressed uplink moved %d bytes, raw %d — no saving", deltaUp, rawUp)
	}
	if deltaRaw != rawUp {
		t.Errorf("raw-equivalent accounting diverged: %d vs %d", deltaRaw, rawUp)
	}
	for i := range rawParams {
		if math.Float64bits(deltaParams[i]) != math.Float64bits(rawParams[i]) {
			t.Fatalf("param %d: uplink compression changed the trajectory", i)
		}
	}
}

// TestStaleReportRetiredEagerly: a report that arrives after its
// round's deadline is retired by the worker's reader pump the moment it
// lands — not lazily at the next round's collection. The test parks the
// serve loop between rounds (OnRound blocks it), releases the late
// report, and watches the stale counter tick while no collection is
// running; the late frame must also keep the uplink delta base in
// lockstep, so the worker's next (delta) report still decodes.
func TestStaleReportRetiredEagerly(t *testing.T) {
	const victim = 3
	spec := testSpec(3)
	sendStale := make(chan struct{})
	staleSent := make(chan struct{})

	srvCfg := ServerConfig{
		RoundTimeout: 500 * time.Millisecond,
	}
	var srv *Server
	srvCfg.OnRound = func(rs cluster.RoundStats) {
		if rs.Iteration != 0 {
			return
		}
		// Round 0 is aggregated and the serve loop is parked here: no
		// collection is running. Release the victim's round-0 report
		// and require the pump to retire it before round 1 starts.
		close(sendStale)
		<-staleSent
		deadline := time.Now().Add(10 * time.Second)
		for srv.Counters().StaleFrames == 0 {
			if time.Now().After(deadline) {
				t.Error("stale report was not retired while the serve loop was parked")
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	var mu sync.Mutex
	var stats []cluster.RoundStats
	userOnRound := srvCfg.OnRound
	srvCfg.Spec = spec
	srvCfg.OnRound = func(rs cluster.RoundStats) {
		mu.Lock()
		stats = append(stats, rs)
		mu.Unlock()
		userOnRound(rs)
	}
	var err error
	srv, err = NewServer("127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	serveDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(context.Background())
		serveDone <- err
	}()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		if u == victim {
			continue
		}
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if _, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u}); err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}

	// The victim participates manually: it withholds its round-0 report
	// until the serve loop is parked between rounds, then sends it
	// (stale), and participates normally afterwards — its round-1
	// report is an XOR delta against the stale round-0 one, proving the
	// pump kept the decoder base moving.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(raw)
	if _, err := conn.Send(Hello{WorkerID: victim, Version: wire.ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	welcome, ok := msg.(Welcome)
	if !ok {
		t.Fatalf("expected Welcome, got %T", msg)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		st := &workerState{cfg: WorkerConfig{ID: victim, Behavior: BehaviorHonest}, lastApplied: -1}
		var err error
		if st.mdl, err = welcome.Spec.BuildModel(); err != nil {
			t.Error(err)
			return
		}
		if st.train, _, err = welcome.Spec.BuildData(); err != nil {
			t.Error(err)
			return
		}
		st.params = make([]float64, st.mdl.NumParams())
		initManualWorkerShards(st, welcome)
		for {
			msg, err := conn.Recv()
			if err != nil {
				t.Errorf("victim recv: %v", err)
				return
			}
			switch m := msg.(type) {
			case RoundStart:
				if err := st.applyParams(&m); err != nil {
					t.Error(err)
					return
				}
				files, samples, err := st.roundWork(&m)
				if err != nil {
					t.Error(err)
					return
				}
				msgs, err := st.computeReport(m.Iteration, files, samples)
				if err != nil {
					t.Error(err)
					return
				}
				if m.Iteration == 0 {
					<-sendStale // wait for the serve loop to park
				}
				if _, err := conn.SendMany(msgs...); err != nil {
					t.Errorf("victim send: %v", err)
					return
				}
				if m.Iteration == 0 {
					close(staleSent)
				}
			case Shutdown:
				conn.Close()
				return
			default:
				t.Errorf("victim got %T", msg)
				return
			}
		}
	}()

	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()

	if len(stats) != spec.Rounds {
		t.Fatalf("recorded %d rounds, want %d", len(stats), spec.Rounds)
	}
	if len(stats[0].MissingWorkers) != 1 || stats[0].MissingWorkers[0] != victim {
		t.Errorf("round 0 missing %v, want [%d]", stats[0].MissingWorkers, victim)
	}
	// The stale frame was retired between rounds 0 and 1, so round 1's
	// delta accounting carries it; no later round discards anything.
	if stats[1].StaleFrames != 1 {
		t.Errorf("round 1 retired %d stale frames, want 1", stats[1].StaleFrames)
	}
	for _, rs := range stats[1:] {
		if len(rs.MissingWorkers) != 0 {
			t.Errorf("round %d: missing %v after the stale round", rs.Iteration, rs.MissingWorkers)
		}
	}
	c := srv.Counters()
	if c.Joins != int64(asn.K) || c.Rejoins != 0 || c.Evictions != 0 || c.StaleFrames != 1 {
		t.Errorf("counters = %+v, want %d joins, 0 rejoins, 0 evictions, 1 stale", c, asn.K)
	}
}

// TestLifecycleCountersOnEviction: a worker whose connection breaks
// mid-run is counted as an eviction — in the cumulative counters and in
// the per-round stats delta — and stays missing afterwards.
func TestLifecycleCountersOnEviction(t *testing.T) {
	const victim = 2
	spec := testSpec(4)
	srvCfg := ServerConfig{RoundTimeout: 10 * time.Second}
	var mu sync.Mutex
	var stats []cluster.RoundStats
	srvCfg.Spec = spec
	srvCfg.OnRound = func(rs cluster.RoundStats) {
		mu.Lock()
		stats = append(stats, rs)
		mu.Unlock()
	}
	srv, err := NewServer("127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	serveDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(context.Background())
		serveDone <- err
	}()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		if u == victim {
			continue
		}
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if _, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u}); err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	// The victim participates in round 0, then drops its connection on
	// round 1's broadcast without reporting — a crash as the server
	// sees it.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(raw)
	if _, err := conn.Send(Hello{WorkerID: victim, Version: wire.ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	welcome, ok := msg.(Welcome)
	if !ok {
		t.Fatalf("expected Welcome, got %T", msg)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		st := &workerState{cfg: WorkerConfig{ID: victim, Behavior: BehaviorHonest}, lastApplied: -1}
		var err error
		if st.mdl, err = welcome.Spec.BuildModel(); err != nil {
			t.Error(err)
			return
		}
		if st.train, _, err = welcome.Spec.BuildData(); err != nil {
			t.Error(err)
			return
		}
		st.params = make([]float64, st.mdl.NumParams())
		initManualWorkerShards(st, welcome)
		for {
			msg, err := conn.Recv()
			if err != nil {
				t.Errorf("victim recv: %v", err)
				return
			}
			m, ok := msg.(RoundStart)
			if !ok {
				t.Errorf("victim got %T", msg)
				return
			}
			if err := st.applyParams(&m); err != nil {
				t.Error(err)
				return
			}
			if m.Iteration == 1 {
				conn.Close()
				return
			}
			files, samples, err := st.roundWork(&m)
			if err != nil {
				t.Error(err)
				return
			}
			msgs, err := st.computeReport(m.Iteration, files, samples)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := conn.SendMany(msgs...); err != nil {
				t.Errorf("victim send: %v", err)
				return
			}
		}
	}()

	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()

	evictions := 0
	for _, rs := range stats {
		evictions += rs.Evictions
	}
	if evictions != 1 {
		t.Errorf("per-round eviction deltas sum to %d, want 1", evictions)
	}
	c := srv.Counters()
	if c.Evictions != 1 {
		t.Errorf("counters report %d evictions, want 1", c.Evictions)
	}
	for _, rs := range stats {
		if rs.Iteration >= 1 && (len(rs.MissingWorkers) != 1 || rs.MissingWorkers[0] != victim) {
			t.Errorf("round %d: missing %v, want [%d]", rs.Iteration, rs.MissingWorkers, victim)
		}
	}
}

// TestServeJoinsAllPumpGoroutines: Serve's teardown must close every
// reader pump deterministically — after a full training run plus Close,
// the process is back to its pre-server goroutine count (no leaked
// pumps, send goroutines, or eval workers).
func TestServeJoinsAllPumpGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	spec := testSpec(5)
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if _, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u}); err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	srv.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("%d goroutines before run, %d after teardown; stacks:\n%s", before, now, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestV2PeerRejected: an old-version peer is refused with a typed
// Reject{RejectVersion} at both negotiation layers — a Hello declaring
// an old version inside a valid frame, and any frame whose header is
// stamped with an old version (how a real v5 peer looks on the wire:
// its very first frame header fails the version check, before any
// payload parses).
func TestV2PeerRejected(t *testing.T) {
	spec := testSpec(3)
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ctx)
		serveDone <- err
	}()

	// A well-framed Hello declaring an old protocol version: the frame
	// parses, so the refusal arrives as a decodable typed Reject.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(raw)
	if _, err := c.Send(Hello{WorkerID: 0, Version: 2}); err != nil {
		t.Fatal(err)
	}
	msg, err := c.Recv()
	if err != nil {
		t.Fatalf("reading the typed reject: %v", err)
	}
	rej, ok := msg.(Reject)
	if !ok {
		t.Fatalf("expected Reject, got %T", msg)
	}
	if rej.Code != RejectVersion {
		t.Errorf("reject code %d, want RejectVersion (%d)", rej.Code, RejectVersion)
	}
	c.Close()

	// A frame stamped with an old version in its header, as a real old
	// peer would send: rejected before the payload is even interpreted.
	// The peer cannot parse the v6 Reject frame it gets back, but the
	// bytes on its socket are deterministic — a framed Reject carrying
	// RejectVersion, then EOF — so the refusal is diagnosable.
	raw, err = net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	hdr := make([]byte, wire.FrameHeaderSize)
	binary.LittleEndian.PutUint16(hdr, wire.FrameMagic)
	hdr[2] = 5 // protocol v5
	hdr[3] = 1 // Hello
	binary.LittleEndian.PutUint32(hdr[4:], 0)
	if _, err := raw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf, err := io.ReadAll(raw)
	if err != nil {
		t.Fatalf("reading the reject bytes: %v", err)
	}
	if len(buf) < wire.FrameHeaderSize+1 {
		t.Fatalf("server wrote %d bytes before closing, want a framed Reject", len(buf))
	}
	if got := binary.LittleEndian.Uint16(buf); got != wire.FrameMagic {
		t.Errorf("reject frame magic %#x, want %#x", got, wire.FrameMagic)
	}
	if buf[2] != wire.ProtocolVersion {
		t.Errorf("reject frame stamped version %d, want %d", buf[2], wire.ProtocolVersion)
	}
	if buf[3] != msgReject {
		t.Errorf("reject frame type %d, want %d (Reject)", buf[3], msgReject)
	}
	if buf[wire.FrameHeaderSize] != RejectVersion {
		t.Errorf("reject code %d, want RejectVersion (%d)", buf[wire.FrameHeaderSize], RejectVersion)
	}

	cancel()
	<-serveDone
}
