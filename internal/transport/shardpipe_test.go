// Tests for the sharded aggregation plane and pipelined rounds of
// protocol v5: per-shard report streams, early shard votes, RoundPrep
// overlap with shared pre-encoded RoundStart frames, and single-count
// lifecycle accounting across the pipelined round boundary.
package transport

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"byzshield/internal/cluster"
	"byzshield/internal/registry"
	"byzshield/internal/wire"
)

// TestShardedPipelinedTrajectoryIdentity: sharding the aggregation
// plane and pipelining consecutive rounds are wire concerns — for the
// same Spec the serial in-process engine, the sharded cluster, the
// pipelined cluster, and the combination must produce bit-identical
// final parameters. The spec includes a per-round straggler whose
// reports always trail the rest of the fleet, so in pipelined mode its
// RoundPrep backlog drains across the round boundary while the next
// round is already collecting.
func TestShardedPipelinedTrajectoryIdentity(t *testing.T) {
	spec := testSpec(10)
	spec.Fault = "straggler"
	spec.FaultParams = registry.FaultParams{Workers: []int{1}, Delay: 20 * time.Millisecond}
	// The engine treats a pure delay as full participation; the wire
	// path must agree as long as the delay stays inside the collection
	// window (asserted per round below).
	base := engineParams(t, spec, 1)
	for _, tc := range []struct {
		name string
		cfg  ServerConfig
	}{
		{"sharded", ServerConfig{Shards: 4}},
		{"pipelined", ServerConfig{Pipeline: true}},
		{"sharded-pipelined", ServerConfig{Shards: 4, Pipeline: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, params, stats := runLoopback(t, spec, tc.cfg)
			for _, rs := range stats {
				if len(rs.MissingWorkers) != 0 {
					t.Errorf("round %d: missing %v — the straggler fell out of the window",
						rs.Iteration, rs.MissingWorkers)
				}
			}
			for i := range base {
				if math.Float64bits(base[i]) != math.Float64bits(params[i]) {
					t.Fatalf("param %d diverged from the serial engine: %v vs %v",
						i, base[i], params[i])
				}
			}
		})
	}
}

// TestShardedRejectsBadConfig: the server validates the shard plane up
// front — counts above 64 never bind, negative counts never bind.
func TestShardedRejectsBadConfig(t *testing.T) {
	spec := testSpec(2)
	if _, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec, Shards: 65}); err == nil {
		t.Error("shard count 65 accepted")
	}
	if _, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec, Shards: -3}); err == nil {
		t.Error("negative shard count accepted")
	}
}

// TestPipelinedRejoinCountersSingleCount: a worker that reports round
// t, drops its connection during the pipelined t/t+1 boundary — where
// the prep writer and its reader pump may both observe the dead
// connection — and rejoins must be counted exactly once everywhere:
// one eviction, one rejoin, and one round's worth of degraded votes.
func TestPipelinedRejoinCountersSingleCount(t *testing.T) {
	const victim = 2
	const dropRound = 2
	spec := testSpec(7)
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	victimFiles := len(asn.WorkerFiles(victim))

	release := make(chan struct{})  // closed after round dropRound+1 completes
	rejoined := make(chan struct{}) // closed once the victim's rejoin handshake is done

	srvCfg := ServerConfig{
		Spec:         spec,
		Shards:       2,
		Pipeline:     true,
		RoundTimeout: 10 * time.Second,
	}
	var mu sync.Mutex
	var stats []cluster.RoundStats
	srvCfg.OnRound = func(rs cluster.RoundStats) {
		mu.Lock()
		stats = append(stats, rs)
		mu.Unlock()
		if rs.Iteration == dropRound+1 {
			// The victim missed this round; release its redial and park
			// the serve loop until the rejoin handshake is pending, so
			// the next round's boundary deterministically admits it.
			close(release)
			<-rejoined
		}
	}
	srv, err := NewServer("127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	serveDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(context.Background())
		serveDone <- err
	}()

	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		if u == victim {
			continue
		}
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if _, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u}); err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}

	// The victim participates manually so the drop lands at a precise
	// point: right after its round-dropRound report, while the server's
	// tail is about to stream round dropRound+1's prep to it.
	handshake := func(resume bool, token uint64) (*Conn, Welcome, error) {
		raw, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			return nil, Welcome{}, err
		}
		conn := NewConn(raw)
		if _, err := conn.Send(Hello{WorkerID: victim, Version: wire.ProtocolVersion, Token: token, Resume: resume}); err != nil {
			conn.Close()
			return nil, Welcome{}, err
		}
		msg, err := conn.Recv()
		if err != nil {
			conn.Close()
			return nil, Welcome{}, err
		}
		w, ok := msg.(Welcome)
		if !ok {
			conn.Close()
			return nil, Welcome{}, err
		}
		return conn, w, nil
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, welcome, err := handshake(false, 0)
		if err != nil {
			t.Errorf("victim handshake: %v", err)
			return
		}
		defer func() { conn.Close() }()
		st := &workerState{cfg: WorkerConfig{ID: victim, Behavior: BehaviorHonest}, lastApplied: -1}
		st.spec = welcome.Spec
		if st.mdl, err = st.spec.BuildModel(); err != nil {
			t.Error(err)
			return
		}
		if st.train, _, err = st.spec.BuildData(); err != nil {
			t.Error(err)
			return
		}
		if st.asn, err = st.spec.BuildAssignment(); err != nil {
			t.Error(err)
			return
		}
		st.params = make([]float64, st.mdl.NumParams())
		st.pipeline = welcome.Pipeline
		st.prepIter = -1
		st.filesStatic = st.asn.WorkerFiles(victim)
		st.token = welcome.Token
		initManualWorkerShards(st, welcome)
		dropped := false
		for {
			msg, err := conn.Recv()
			if err != nil {
				t.Errorf("victim recv: %v", err)
				return
			}
			switch m := msg.(type) {
			case RoundPrep:
				st.prepIter = m.Iteration
				st.prepSamples = m.Samples
			case RoundStart:
				if err := st.applyParams(&m); err != nil {
					t.Error(err)
					return
				}
				files, samples, err := st.roundWork(&m)
				if err != nil {
					t.Error(err)
					return
				}
				msgs, err := st.computeReport(m.Iteration, files, samples)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := conn.SendMany(msgs...); err != nil {
					t.Errorf("victim send: %v", err)
					return
				}
				if m.Iteration == dropRound && !dropped {
					dropped = true
					// Drop inside the pipelined window: the report is
					// on the wire, and this RoundStart already carried
					// the next round's prep for this connection.
					conn.Close()
					<-release
					conn, welcome, err = handshake(true, st.token)
					if err != nil {
						t.Errorf("victim rejoin: %v", err)
						return
					}
					st.token = welcome.Token
					st.lastApplied = -1
					st.prepIter = -1
					for s := range st.encs {
						st.encs[s].Reset()
					}
					close(rejoined)
				}
			case Shutdown:
				return
			default:
				t.Errorf("victim got %T", msg)
				return
			}
		}
	}()

	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()

	evictions, rejoins, degraded, missingRounds := 0, 0, 0, 0
	for _, rs := range stats {
		evictions += rs.Evictions
		rejoins += rs.Rejoins
		degraded += rs.DegradedFiles
		if len(rs.MissingWorkers) > 0 {
			missingRounds++
			if rs.Iteration != dropRound+1 || len(rs.MissingWorkers) != 1 || rs.MissingWorkers[0] != victim {
				t.Errorf("round %d missing %v, want [%d] only at round %d",
					rs.Iteration, rs.MissingWorkers, victim, dropRound+1)
			}
		}
	}
	if missingRounds != 1 {
		t.Errorf("victim missing in %d rounds, want exactly 1", missingRounds)
	}
	if evictions != 1 {
		t.Errorf("per-round eviction deltas sum to %d, want 1 — the pipelined boundary double-counted", evictions)
	}
	if rejoins != 1 {
		t.Errorf("per-round rejoin deltas sum to %d, want 1", rejoins)
	}
	if degraded != victimFiles {
		t.Errorf("degraded votes total %d, want %d (one per victim file, once)", degraded, victimFiles)
	}
	c := srv.Counters()
	if c.Evictions != 1 || c.Rejoins != 1 {
		t.Errorf("counters = %+v, want exactly 1 eviction and 1 rejoin", c)
	}
}
