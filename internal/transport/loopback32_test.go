package transport

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"byzshield/internal/cluster"
	"byzshield/internal/wire"
)

// engineParams32 runs the in-process f32 engine over the experiment
// described by spec and returns the final parameters.
func engineParams32(t *testing.T, spec Spec, parallelism, shards int, tier wire.UplinkTier) []float32 {
	t.Helper()
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := spec.BuildModel32()
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := spec.BuildData()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := spec.BuildAggregator32()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New32(cluster.Config32{
		Assignment: asn, Model: mdl, Train: train, Test: test,
		BatchSize: spec.BatchSize, Aggregator: agg,
		Schedule: spec.Schedule, Momentum: spec.Momentum, Seed: spec.Seed,
		Parallelism: parallelism, Shards: shards, UplinkTier: tier,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	for i := 0; i < spec.Rounds; i++ {
		if _, err := eng.StepOnce(ctx); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	return eng.Params()
}

// wireParams32 runs the same experiment over loopback TCP at f32
// precision and returns the server's final parameters.
func wireParams32(t *testing.T, spec Spec, cfg ServerConfig32) []float32 {
	t.Helper()
	cfg.Spec = spec
	srv, err := NewServer32("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if _, err := RunWorker32(context.Background(), srv.Addr(), WorkerConfig32{ID: u}); err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return srv.Params()
}

// expectBits32 asserts two f32 parameter vectors are bit-identical.
func expectBits32(t *testing.T, got, want []float32, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: param lengths diverge: %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		if gb, wb := math.Float32bits(got[i]), math.Float32bits(want[i]); gb != wb {
			t.Fatalf("%s: param %d diverged (%x vs %x)", label, i, gb, wb)
		}
	}
}

// TestLoopback32BitIdenticalToEngine32: for a fixed seed, the serial
// in-process f32 engine, the pooled+sharded f32 engine, and the f32 TCP
// loopback cluster must produce bit-identical final parameters — at
// reduced precision exactly as at full, the wire is a transparent
// gradient source, not a second implementation of the round. The lossy
// sign tier must likewise match between the wire and the in-process
// engine's quantize round-trip.
func TestLoopback32BitIdenticalToEngine32(t *testing.T) {
	spec := testSpec(8)
	serial := engineParams32(t, spec, 1, 0, 0)
	pooled := engineParams32(t, spec, 4, 3, 0)
	wired := wireParams32(t, spec, ServerConfig32{Shards: 3})
	expectBits32(t, pooled, serial, "pooled+sharded engine")
	expectBits32(t, wired, serial, "wire path")

	signEng := engineParams32(t, spec, 1, 0, wire.TierSign)
	signWire := wireParams32(t, spec, ServerConfig32{Uplink: wire.TierSign})
	expectBits32(t, signWire, signEng, "sign-tier wire path")
}

// TestServer32RejectsF64Worker: pairing a float64 worker with the f32
// server is a configuration error and must fail with the typed
// precision reject, not a codec error mid-run.
func TestServer32RejectsF64Worker(t *testing.T) {
	spec := testSpec(2)
	srv, err := NewServer32("127.0.0.1:0", ServerConfig32{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.Serve(ctx)
	}()
	_, err = RunWorker(ctx, srv.Addr(), WorkerConfig{ID: 0, ReconnectAttempts: -1})
	if err == nil || !strings.Contains(err.Error(), "precision") {
		t.Fatalf("f64 worker against f32 server returned %v, want a precision reject", err)
	}
	cancel()
	<-serveDone
}

// waitRejoinPending32 polls until worker u has a validated rejoin
// connection parked for round-boundary admission.
func waitRejoinPending32(t *testing.T, srv *Server32, u int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		srv.src.mu.Lock()
		pending := srv.src.workers[u].pending != nil
		srv.src.mu.Unlock()
		if pending {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("worker %d rejoin never became pending", u)
}

// TestWorker32RejoinRenegotiation kills a worker between rounds on an
// int8-uplink f32 run and restarts it with its session token but a
// lossless-only tier mask. The server must renegotiate the connection
// down to the delta tier (never substituting another lossy tier),
// re-admit the worker at the next round boundary, and finish the run
// with no missing rounds after the rejoin.
func TestWorker32RejoinRenegotiation(t *testing.T) {
	const victim = 3
	spec := testSpec(8)

	var mu sync.Mutex
	var stats []cluster.RoundStats
	var srv *Server32
	restarted := make(chan error, 1)
	workerCtx, killWorker := context.WithCancel(context.Background())
	defer killWorker()

	cfg := ServerConfig32{
		Spec:         spec,
		Uplink:       wire.TierInt8,
		RoundTimeout: 30 * time.Second,
		OnRound: func(rs cluster.RoundStats) {
			mu.Lock()
			stats = append(stats, rs)
			mu.Unlock()
			if rs.Iteration != 3 {
				return
			}
			// Between rounds 3 and 4: kill the worker process, then
			// restart it with the session token but only the lossless
			// tiers on offer. OnRound blocks the serve loop, so round 4
			// starts only after the rejoin is parked for admission.
			killWorker()
			srv.src.mu.Lock()
			token := srv.src.workers[victim].token
			srv.src.mu.Unlock()
			go func() {
				_, err := RunWorker32(context.Background(), srv.Addr(), WorkerConfig32{
					ID:          victim,
					ResumeToken: token,
					Tiers:       wire.TierRaw.Mask() | wire.TierDelta.Mask(),
				})
				restarted <- err
			}()
			waitRejoinPending32(t, srv, victim)
		},
	}
	var err error
	srv, err = NewServer32("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			ctx := context.Background()
			wcfg := WorkerConfig32{ID: u}
			if u == victim {
				ctx = workerCtx
				wcfg.ReconnectAttempts = -1 // the test restarts it explicitly
			}
			_, err := RunWorker32(ctx, srv.Addr(), wcfg)
			if u == victim {
				if !errors.Is(err, context.Canceled) {
					t.Errorf("killed worker returned %v, want context.Canceled", err)
				}
			} else if err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()
	if err := <-restarted; err != nil {
		t.Errorf("restarted worker: %v", err)
	}

	if len(stats) != spec.Rounds {
		t.Fatalf("recorded %d rounds, want %d", len(stats), spec.Rounds)
	}
	for _, rs := range stats {
		if rs.Iteration >= 5 && len(rs.MissingWorkers) != 0 {
			t.Errorf("round %d: missing %v after the rejoin boundary", rs.Iteration, rs.MissingWorkers)
		}
	}
	srv.src.mu.Lock()
	tier := srv.src.workers[victim].tier
	srv.src.mu.Unlock()
	if tier != wire.TierDelta {
		t.Errorf("rejoined worker renegotiated to tier %s, want %s (best lossless)", tier, wire.TierDelta)
	}
	if c := srv.Counters(); c.Rejoins < 1 {
		t.Errorf("counters recorded %d rejoins, want >= 1", c.Rejoins)
	}
}
