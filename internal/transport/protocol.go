// Package transport implements a real network transport for the
// training protocol: a TCP parameter server and worker clients speaking
// the framed v6 control protocol over net.Conn. This is the repository's
// substitute for the paper's MPICH deployment — cmd/byzps and
// cmd/byzworker run the same synchronous rounds as the in-process engine
// across OS processes (or machines). The server executes every round
// through the shared cluster round core (it installs a network
// GradientSource into cluster.Engine), so the wire path votes,
// aggregates, and steps exactly like the in-process engine and
// reproduces its parameter trajectory bit-for-bit for the same Spec.
//
// Wire protocol v6 (every message one self-delimiting frame, see
// internal/wire: magic, version, type, length header + canonical
// little-endian binary payload):
//
//	worker → PS:  Hello{WorkerID, Version, Token, Resume, Tiers}
//	PS → worker:  Welcome{Version, Token, FullEvery, Uplink, Spec, Shards, Pipeline}
//	PS → worker:  Reject{Code, Reason}
//	PS → worker:  RoundPrep{Iteration, Samples}            (pipelined runs)
//	PS → worker:  RoundStart{Iteration, BaseIteration, ParamsFrame, Files}
//	worker → PS:  GradientReport{WorkerID, Iteration, Shard, Frame}
//	PS → worker:  Shutdown{FinalAccuracy}
//
// v6 makes the uplink codec a negotiated per-connection tier: the
// Hello advertises the tiers the worker implements as a bitmask
// (wire.UplinkTier.Mask), the Welcome's uplink flag byte became the
// negotiated wire.UplinkTier, and two lossy quantized frame modes —
// sign (1 bit + per-row scale) and int8 (byte + per-row min/scale) —
// joined raw and XOR-delta. Negotiation picks the server's configured
// tier when the worker supports it and degrades lossless otherwise
// (delta, then raw); it never substitutes one lossy tier for another,
// because the two quantizations dequantize differently and the vote
// needs every replica bit-identical. A v5 peer fails the frame-header
// version check on its Hello and is refused with a typed
// Reject{RejectVersion} naming both versions.
//
// v5 added the sharded, pipelined aggregation plane: GradientReport
// carries a shard index so a worker's report travels as one frame per
// contiguous coordinate range (wire.ShardRange) and the PS can vote a
// shard as soon as its last frame lands; RoundPrep broadcasts round
// t+1's sample lists while round t's tail still aggregates, after which
// the RoundStart for a prepped round omits the Files map (workers
// derive file ids from the static assignment). The Welcome announces
// both knobs. v4 added the detector configuration to the Spec payload
// (the PS-side detection/reputation layer of internal/detect is part of
// the experiment description, so observers evaluating the same Spec
// agree on it) and the typed Reject frame: a blacklisted worker
// presenting a valid session token is refused with
// Reject{RejectBlacklisted} instead of a silent close, so the worker
// process knows the eviction is permanent and stops reconnecting.
//
// Version negotiation happens in Hello/Welcome: both sides state the
// protocol version they speak (additionally stamped on every frame
// header) and a mismatch rejects the connection before any round state
// is exchanged — a v2 peer fails at its first frame. The Welcome
// carries a per-worker session token; an evicted or crashed worker
// reconnects by re-sending Hello with Resume=true and that token, and
// the server re-admits it at the next round boundary (see server.go).
//
// Both wire directions are bandwidth-aware. RoundStart.ParamsFrame is a
// full parameter vector only on join/rejoin and every FullEvery-th
// round, and a bit-exact XOR delta against the previous round's
// acknowledged vector otherwise (wire.AppendParamsDelta).
// GradientReport.Frame is an uplink frame (wire.UplinkEncoder) in the
// connection's negotiated tier: on the default lossless tier each
// worker XORs its report against its own previous one and ships the
// delta when it is smaller, falling back to a raw frame when gradients
// decorrelated too much to pay — self-selected per frame, bit-exact
// either way; the lossy tiers ship stateless quantized frames (sign,
// int8) that dequantize deterministically on both sides.
//
// Workers reconstruct the dataset and model deterministically from the
// Spec (seeded synthetic data stands in for the shared dataset storage
// of a real cluster), so only indices — not samples — cross the wire,
// exactly as in the paper's setup where every node holds the dataset.
//
// Rounds tolerate partial participation: the server gives every
// accepted connection a dedicated reader pump, and the round collects
// already-parsed reports from the pumps' inbox under a single deadline.
// A slow worker is marked missing for the round and its late report is
// retired by its pump the moment it arrives; the connection survives.
// Workers whose connection actually breaks are evicted and may rejoin.
// An empty GradientReport frame is an explicit skip — alive, but no
// gradients this round. The Spec can name fault models (internal/fault)
// that every worker injects on itself, so crash/straggler/flaky
// scenarios — including per-worker heterogeneous compositions via
// Faults — run against the server's real deadline handling.
package transport

import (
	"context"
	"fmt"
	"net"
	"slices"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/data"
	"byzshield/internal/detect"
	"byzshield/internal/fault"
	"byzshield/internal/model"
	"byzshield/internal/registry"
	"byzshield/internal/trainer"
	"byzshield/internal/wire"
)

// Message type bytes of the v2 framing.
const (
	msgHello byte = iota + 1
	msgWelcome
	msgRoundStart
	msgGradientReport
	msgShutdown
	msgReject
	msgRoundPrep
)

// FaultSpec names one registry fault model with its parameters, so a
// Spec can compose heterogeneous per-worker faults on the wire (each
// model targets its own workers; see fault.Stack).
type FaultSpec struct {
	Name   string
	Params registry.FaultParams
}

// Spec describes the experiment so every process builds identical
// datasets, models, and assignments. Component names resolve through
// internal/registry, so any scheme registered there ("mols",
// "ramanujan1", "ramanujan2", "frc", "baseline", "random") is valid on
// the wire.
type Spec struct {
	// Scheme is the registry name of the assignment scheme.
	Scheme string
	// L and R parameterize the scheme (load and replication; see
	// registry.SchemeParams for the per-scheme field conventions).
	L, R int
	// K is the worker count (derived for mols/ramanujan1/2; explicit for
	// frc/baseline/random).
	K int
	// F is the file count (random scheme only; derived elsewhere).
	F int
	// Aggregator is the registry name of the PS aggregation rule
	// (default "median"); AggParams carries its knobs.
	Aggregator string
	AggParams  registry.AggregatorParams
	// Dataset parameters.
	TrainN, TestN, Dim, Classes int
	DataSeed                    int64
	ClassSep                    float64
	// Hidden is the MLP hidden width; 0 selects softmax regression.
	Hidden int
	// Training parameters.
	BatchSize int
	Schedule  trainer.Schedule
	Momentum  float64
	Seed      int64
	Rounds    int
	// Fault names the registry fault model every worker applies to
	// itself ("" or "none" = fault-free); FaultParams carries its knobs.
	// Fault decisions are deterministic in (round, worker), so the
	// worker processes and any observer evaluating the same Spec agree
	// on the injected schedule without coordination.
	Fault       string
	FaultParams registry.FaultParams
	// Faults composes additional fault models on top of Fault, so
	// different workers can fail in different ways at once (worker 2
	// flaky AND worker 9 straggling). All named models resolve through
	// the registry and stack via fault.Stack.
	Faults []FaultSpec
	// Detector names the registry detector the PS runs between
	// collection and aggregation ("" or "none" = detection off);
	// DetectorParams carries the reputation policy knobs. Part of the
	// Spec so every observer of the run agrees on the detection
	// configuration.
	Detector       string
	DetectorParams registry.DetectorParams
}

// components is the shared catalog every Spec resolves names through;
// custom components registered on it (byzshield.Registry is the same
// object) are therefore valid on the wire.
var components = registry.Default

// BuildAssignment constructs the assignment described by the spec via
// the component registry, guaranteeing that every process (and the
// in-process engine) realizes the identical placement.
func (s *Spec) BuildAssignment() (*assign.Assignment, error) {
	return components.Scheme(s.Scheme, registry.SchemeParams{
		L: s.L, R: s.R, K: s.K, F: s.F, Seed: s.Seed,
	})
}

// BuildAggregator constructs the aggregation rule named by the spec
// (coordinate-wise median when unset).
func (s *Spec) BuildAggregator() (aggregate.Aggregator, error) {
	name := s.Aggregator
	if name == "" {
		name = "median"
	}
	return components.Aggregator(name, s.AggParams)
}

// BuildModel constructs the model described by the spec.
func (s *Spec) BuildModel() (model.Model, error) {
	if s.Hidden > 0 {
		return model.NewMLP(s.Dim, s.Hidden, s.Classes)
	}
	return model.NewSoftmax(s.Dim, s.Classes)
}

// BuildModel32 constructs the float32 model described by the spec. The
// f32 precision tier supports the models that implement model.Model32;
// an MLP spec (Hidden > 0) is rejected rather than silently widened.
func (s *Spec) BuildModel32() (model.Model32, error) {
	m, err := s.BuildModel()
	if err != nil {
		return nil, err
	}
	m32, ok := m.(model.Model32)
	if !ok {
		return nil, fmt.Errorf("transport: model %T has no float32 kernel set (the f32 tier supports softmax and convnet)", m)
	}
	return m32, nil
}

// BuildAggregator32 constructs the aggregation rule named by the spec
// at float32 width. Every registry rule that implements
// aggregate.ChunkAggregator32 qualifies; one that aggregates at f64
// only is rejected by name.
func (s *Spec) BuildAggregator32() (aggregate.ChunkAggregator32, error) {
	agg, err := s.BuildAggregator()
	if err != nil {
		return nil, err
	}
	agg32, ok := agg.(aggregate.ChunkAggregator32)
	if !ok {
		return nil, fmt.Errorf("transport: aggregator %q has no float32 kernel set", s.Aggregator)
	}
	return agg32, nil
}

// BuildData constructs the train/test datasets described by the spec.
func (s *Spec) BuildData() (train, test *data.Dataset, err error) {
	return data.Synthetic(data.SyntheticConfig{
		Train: s.TrainN, Test: s.TestN, Dim: s.Dim, Classes: s.Classes,
		Seed: s.DataSeed, ClassSep: s.ClassSep,
	})
}

// BuildDetector constructs the detection rule named by the spec
// (detect.None when unset).
func (s *Spec) BuildDetector() (detect.Detector, error) {
	name := s.Detector
	if name == "" {
		name = "none"
	}
	return components.Detector(name, s.DetectorParams)
}

// BuildFault constructs the worker fault model named by the spec:
// fault-free when nothing is named, the single Fault model when only it
// is set, and a fault.Stack composing Fault plus every Faults entry
// otherwise.
func (s *Spec) BuildFault() (fault.Fault, error) {
	var stack fault.Stack
	if s.Fault != "" {
		f, err := components.Fault(s.Fault, s.FaultParams)
		if err != nil {
			return nil, err
		}
		stack = append(stack, f)
	}
	for _, fs := range s.Faults {
		f, err := components.Fault(fs.Name, fs.Params)
		if err != nil {
			return nil, err
		}
		stack = append(stack, f)
	}
	switch len(stack) {
	case 0:
		return fault.None{}, nil
	case 1:
		return stack[0], nil
	default:
		return stack, nil
	}
}

// --- Spec payload codec --------------------------------------------

// appendSpec encodes the spec in canonical field order. The legacy
// single Fault field is folded into the Faults list on the wire (first
// entry), so the two representations are indistinguishable to workers —
// both sides resolve participation through the same composed model.
func appendSpec(dst []byte, s *Spec) ([]byte, error) {
	dst = wire.AppendString(dst, s.Scheme)
	for _, v := range []int{s.L, s.R, s.K, s.F} {
		dst = wire.AppendU32(dst, uint32(v))
	}
	dst = wire.AppendString(dst, s.Aggregator)
	for _, v := range []int{s.AggParams.C, s.AggParams.M, s.AggParams.Trim,
		s.AggParams.Groups, s.AggParams.Near} {
		dst = wire.AppendU32(dst, uint32(v))
	}
	dst = wire.AppendF64(dst, s.AggParams.Threshold)
	for _, v := range []int{s.TrainN, s.TestN, s.Dim, s.Classes, s.Hidden, s.BatchSize} {
		dst = wire.AppendU32(dst, uint32(v))
	}
	var err error
	dst = wire.AppendI64(dst, s.DataSeed)
	dst = wire.AppendF64(dst, s.ClassSep)
	dst = wire.AppendF64(dst, s.Schedule.Base)
	dst = wire.AppendF64(dst, s.Schedule.Decay)
	dst = wire.AppendU32(dst, uint32(s.Schedule.Every))
	dst = wire.AppendF64(dst, s.Momentum)
	dst = wire.AppendI64(dst, s.Seed)
	dst = wire.AppendU32(dst, uint32(s.Rounds))
	faults := s.Faults
	if s.Fault != "" {
		faults = append([]FaultSpec{{Name: s.Fault, Params: s.FaultParams}}, faults...)
	}
	dst = wire.AppendU32(dst, uint32(len(faults)))
	for _, fs := range faults {
		if dst, err = appendFaultSpec(dst, &fs); err != nil {
			return nil, err
		}
	}
	dst = wire.AppendString(dst, s.Detector)
	dst = wire.AppendU32(dst, uint32(s.DetectorParams.Window))
	dst = wire.AppendU32(dst, uint32(s.DetectorParams.MinRounds))
	dst = wire.AppendF64(dst, s.DetectorParams.Decay)
	dst = wire.AppendF64(dst, s.DetectorParams.Threshold)
	dst = wire.AppendF64(dst, s.DetectorParams.BlacklistBelow)
	return dst, nil
}

// appendFaultSpec encodes one named fault model.
func appendFaultSpec(dst []byte, fs *FaultSpec) ([]byte, error) {
	dst = wire.AppendString(dst, fs.Name)
	dst, err := wire.AppendInts(dst, fs.Params.Workers)
	if err != nil {
		return nil, err
	}
	dst = wire.AppendU32(dst, uint32(fs.Params.Round))
	dst = wire.AppendF64(dst, fs.Params.P)
	dst = wire.AppendI64(dst, int64(fs.Params.Delay))
	dst = wire.AppendI64(dst, fs.Params.Seed)
	return dst, nil
}

// decodeSpec decodes the spec fields in appendSpec order.
func decodeSpec(d *wire.Dec, s *Spec) {
	s.Scheme = d.String()
	s.L, s.R, s.K, s.F = d.Int(), d.Int(), d.Int(), d.Int()
	s.Aggregator = d.String()
	s.AggParams.C, s.AggParams.M, s.AggParams.Trim = d.Int(), d.Int(), d.Int()
	s.AggParams.Groups, s.AggParams.Near = d.Int(), d.Int()
	s.AggParams.Threshold = d.F64()
	s.TrainN, s.TestN, s.Dim = d.Int(), d.Int(), d.Int()
	s.Classes, s.Hidden, s.BatchSize = d.Int(), d.Int(), d.Int()
	s.DataSeed = d.I64()
	s.ClassSep = d.F64()
	s.Schedule.Base = d.F64()
	s.Schedule.Decay = d.F64()
	s.Schedule.Every = d.Int()
	s.Momentum = d.F64()
	s.Seed = d.I64()
	s.Rounds = d.Int()
	n := d.Int()
	if d.Err() != nil {
		return
	}
	if n > 1<<16 {
		// Poison the decoder via an impossible read rather than trusting
		// a hostile count.
		d.Skip(1 << 30)
		return
	}
	if n > 0 {
		s.Faults = make([]FaultSpec, 0, n)
		for i := 0; i < n; i++ {
			var fs FaultSpec
			fs.Name = d.String()
			fs.Params.Workers = d.Ints()
			fs.Params.Round = d.Int()
			fs.Params.P = d.F64()
			fs.Params.Delay = time.Duration(d.I64())
			fs.Params.Seed = d.I64()
			s.Faults = append(s.Faults, fs)
		}
	}
	s.Detector = d.String()
	s.DetectorParams.Window = d.Int()
	s.DetectorParams.MinRounds = d.Int()
	s.DetectorParams.Decay = d.F64()
	s.DetectorParams.Threshold = d.F64()
	s.DetectorParams.BlacklistBelow = d.F64()
}

// --- Messages -------------------------------------------------------

// Message is a framed protocol message.
type Message interface {
	wireType() byte
	appendPayload(dst []byte) ([]byte, error)
}

// Hello is the worker's first message on every connection. A fresh
// worker sends Resume=false with Token 0; a worker reconnecting after a
// crash or eviction sends Resume=true with the session token its first
// Welcome assigned, which the server validates before re-admitting it.
type Hello struct {
	WorkerID int
	// Version is the protocol version the worker speaks (negotiation:
	// the server rejects mismatches before any round state moves).
	Version int
	Token   uint64
	Resume  bool
	// Tiers is the bitmask of uplink codec tiers the worker implements
	// (wire.UplinkTier.Mask per bit). The server intersects it with its
	// own configuration to pick the connection's tier; a zero mask is
	// treated as raw-only, the tier every peer must implement.
	Tiers uint8
	// Precisions is the bitmask of numeric precision tiers the worker
	// implements (wire.Precision.Mask per bit). A zero mask is treated
	// as f64-only, the pre-v7 behavior. The server picks the
	// connection's precision from this mask — the f64 server selects
	// f64 and refuses f32-only workers, the f32 server requires f32 —
	// and pins it in Welcome.Precision.
	Precisions uint8
}

func (Hello) wireType() byte { return msgHello }

func (m Hello) appendPayload(dst []byte) ([]byte, error) {
	if m.WorkerID < 0 {
		return nil, fmt.Errorf("transport: negative worker id %d", m.WorkerID)
	}
	dst = wire.AppendU32(dst, uint32(m.WorkerID))
	dst = wire.AppendU8(dst, uint8(m.Version))
	dst = wire.AppendU64(dst, m.Token)
	var resume uint8
	if m.Resume {
		resume = 1
	}
	dst = wire.AppendU8(dst, resume)
	dst = wire.AppendU8(dst, m.Tiers)
	return wire.AppendU8(dst, m.Precisions), nil
}

func (m *Hello) decodePayload(src []byte) error {
	d := wire.NewDec(src)
	m.WorkerID = d.Int()
	m.Version = int(d.U8())
	m.Token = d.U64()
	m.Resume = d.U8() != 0
	m.Tiers = d.U8()
	m.Precisions = d.U8()
	return d.Done()
}

// Welcome is the PS's reply to an accepted Hello.
type Welcome struct {
	// Version echoes the negotiated protocol version.
	Version int
	// Token is the worker's session token for rejoin handshakes.
	Token uint64
	// FullEvery is the server's full-broadcast cadence (every N-th
	// round ships the whole vector; deltas in between).
	FullEvery int
	// Uplink is the connection's negotiated uplink codec tier: the
	// worker must encode every gradient report with it and the PS's
	// pump decoders accept no other modes. The lossless tiers (raw,
	// delta) are bit-identical to each other; the lossy tiers quantize
	// deterministically, so every honest replica still votes equal.
	Uplink wire.UplinkTier
	Spec   Spec
	// Shards is the server's aggregation-shard count: with Shards > 1
	// the worker splits each report into one GradientReport frame per
	// shard (coordinate ranges from wire.ShardRange) so the PS can vote
	// a shard as soon as its last frame lands. 0 or 1 = whole-vector
	// reports.
	Shards int
	// Pipeline tells the worker the server runs pipelined rounds: round
	// t+1's RoundPrep (sample lists) arrives while round t's tail still
	// aggregates, and the following RoundStart carries no Files map —
	// the worker derives its file ids from the static assignment and the
	// samples from the prep.
	Pipeline bool
	// Precision is the connection's negotiated numeric width: every
	// params and gradient frame on the connection from here on carries
	// values of this precision (wire.PrecisionF64, the zero value, keeps
	// the pre-v7 float64 frames; wire.PrecisionF32 switches both
	// directions to the float32 codec set of wire/f32.go).
	Precision wire.Precision
}

func (Welcome) wireType() byte { return msgWelcome }

func (m Welcome) appendPayload(dst []byte) ([]byte, error) {
	dst = wire.AppendU8(dst, uint8(m.Version))
	dst = wire.AppendU64(dst, m.Token)
	dst = wire.AppendU32(dst, uint32(m.FullEvery))
	dst = wire.AppendU8(dst, uint8(m.Uplink))
	dst, err := appendSpec(dst, &m.Spec)
	if err != nil {
		return nil, err
	}
	dst = wire.AppendU32(dst, uint32(m.Shards))
	var pipe uint8
	if m.Pipeline {
		pipe = 1
	}
	dst = wire.AppendU8(dst, pipe)
	return wire.AppendU8(dst, uint8(m.Precision)), nil
}

func (m *Welcome) decodePayload(src []byte) error {
	d := wire.NewDec(src)
	m.Version = int(d.U8())
	m.Token = d.U64()
	m.FullEvery = d.Int()
	m.Uplink = wire.UplinkTier(d.U8())
	decodeSpec(d, &m.Spec)
	m.Shards = d.Int()
	m.Pipeline = d.U8() != 0
	m.Precision = wire.Precision(d.U8())
	return d.Done()
}

// RoundStart carries the model parameters and this worker's file
// assignments for one iteration. ParamsFrame is a wire params frame
// (full or delta; wire.DecodeParams applies it); on a delta frame,
// BaseIteration names the round whose parameters the delta patches, and
// the worker must hold exactly that vector. Files maps file id →
// training-sample indices.
//
// A decoded ParamsFrame aliases the connection's receive buffer and is
// valid only until the next Recv on that Conn — receivers apply it
// before reading again (copying the whole vector per round just to own
// it would double the broadcast's memory traffic).
type RoundStart struct {
	Iteration     int
	BaseIteration int
	ParamsFrame   []byte
	Files         map[int][]int
}

func (RoundStart) wireType() byte { return msgRoundStart }

func (m RoundStart) appendPayload(dst []byte) ([]byte, error) {
	dst = wire.AppendU32(dst, uint32(m.Iteration))
	dst = wire.AppendU32(dst, uint32(m.BaseIteration))
	dst = wire.AppendU32(dst, uint32(len(m.ParamsFrame)))
	dst = append(dst, m.ParamsFrame...)
	ids := make([]int, 0, len(m.Files))
	for v := range m.Files {
		ids = append(ids, v)
	}
	slices.Sort(ids) // canonical order
	dst = wire.AppendU32(dst, uint32(len(ids)))
	var err error
	for _, v := range ids {
		if v < 0 {
			return nil, fmt.Errorf("transport: negative file id %d", v)
		}
		dst = wire.AppendU32(dst, uint32(v))
		if dst, err = wire.AppendInts(dst, m.Files[v]); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func (m *RoundStart) decodePayload(src []byte) error {
	d := wire.NewDec(src)
	m.Iteration = d.Int()
	m.BaseIteration = d.Int()
	n := d.Int()
	if d.Err() == nil && n > len(src)-d.Offset() {
		return fmt.Errorf("transport: params frame declares %d bytes, have %d", n, len(src)-d.Offset())
	}
	if d.Err() == nil {
		m.ParamsFrame = src[d.Offset() : d.Offset()+n : d.Offset()+n]
		d.Skip(n)
	}
	nf := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	m.Files = make(map[int][]int, nf)
	for i := 0; i < nf; i++ {
		v := d.Int()
		samples := d.Ints()
		if d.Err() != nil {
			return d.Err()
		}
		m.Files[v] = samples
	}
	return d.Done()
}

// GradientReport returns the worker's per-file gradient sums. The
// gradients travel as one compact binary uplink frame (see
// internal/wire): a raw gradient frame, or a bit-exact XOR delta
// against the worker's previous report when that is smaller — the
// worker's encoder self-selects per frame.
type GradientReport struct {
	WorkerID  int
	Iteration int
	// Shard is the aggregation shard this frame's gradient coordinates
	// belong to (the [lo, hi) range wire.ShardRange(dim, shards, Shard)
	// names). Always 0 on unsharded runs, where the frame carries whole
	// vectors. A sharded worker sends one frame per shard each round,
	// and the PS counts a worker delivered once all of them landed.
	Shard int
	// Frame is the wire-encoded uplink frame (worker, files,
	// gradients); decode with the connection's per-shard
	// wire.UplinkDecoder. Its embedded worker id must match WorkerID.
	// A decoded Frame aliases the connection's receive buffer and is
	// valid only until the next Recv on that Conn — the PS pump runs it
	// through the uplink decoder before reading again.
	// An empty Frame (sent with Shard 0 only) is an explicit skip: the
	// worker is alive but reports no gradients this round (flaky-fault
	// injection), so the PS counts it missing for the round without
	// evicting it — and neither side's delta bases move.
	Frame []byte
}

func (GradientReport) wireType() byte { return msgGradientReport }

func (m GradientReport) appendPayload(dst []byte) ([]byte, error) {
	dst = wire.AppendU32(dst, uint32(m.WorkerID))
	dst = wire.AppendU32(dst, uint32(m.Iteration))
	dst = wire.AppendU32(dst, uint32(m.Shard))
	return append(dst, m.Frame...), nil
}

func (m *GradientReport) decodePayload(src []byte) error {
	d := wire.NewDec(src)
	m.WorkerID = d.Int()
	m.Iteration = d.Int()
	m.Shard = d.Int()
	m.Frame = d.Rest()
	return d.Err()
}

// RoundPrep pipelines round Iteration's sample assignment ahead of its
// RoundStart: the server broadcasts it while the previous round's tail
// (vote, aggregate, step) still runs. Samples[j] is the sample list of
// the receiving worker's j-th assigned file — slot order is the static
// assignment's ascending file order, so no file ids travel and workers
// of the same replication group receive byte-identical frames. The
// matching RoundStart then carries no Files map, only the parameter
// frame the prep could not know yet.
type RoundPrep struct {
	Iteration int
	Samples   [][]int
}

func (RoundPrep) wireType() byte { return msgRoundPrep }

func (m RoundPrep) appendPayload(dst []byte) ([]byte, error) {
	dst = wire.AppendU32(dst, uint32(m.Iteration))
	dst = wire.AppendU32(dst, uint32(len(m.Samples)))
	var err error
	for _, s := range m.Samples {
		if dst, err = wire.AppendInts(dst, s); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func (m *RoundPrep) decodePayload(src []byte) error {
	d := wire.NewDec(src)
	m.Iteration = d.Int()
	n := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if n > 1<<20 {
		return fmt.Errorf("transport: round prep declares %d files", n)
	}
	m.Samples = m.Samples[:0]
	for i := 0; i < n; i++ {
		m.Samples = append(m.Samples, d.Ints())
	}
	return d.Done()
}

// Reject codes.
const (
	// RejectBlacklisted refuses a rejoin because the detection layer
	// blacklisted the worker: the session token is valid but permanently
	// revoked, so the worker must stop reconnecting.
	RejectBlacklisted uint8 = 1
	// RejectVersion refuses a peer speaking another protocol version —
	// detected either on the Hello's frame header (an old peer stamps
	// its own version on every frame) or on the Hello.Version field.
	// Retrying cannot help until the peer is upgraded.
	RejectVersion uint8 = 2
	// RejectPrecision refuses a worker whose Hello precision mask does
	// not include the precision this server runs at — an f32-only
	// worker dialing an f64 run or vice versa. Retrying cannot help
	// until the worker is reconfigured.
	RejectPrecision uint8 = 3
)

// Reject is the PS's typed refusal of a handshake: unlike a silent
// close, it tells the worker process why it cannot enter the run (and
// whether retrying can ever help).
type Reject struct {
	Code   uint8
	Reason string
}

func (Reject) wireType() byte { return msgReject }

func (m Reject) appendPayload(dst []byte) ([]byte, error) {
	dst = wire.AppendU8(dst, m.Code)
	return wire.AppendString(dst, m.Reason), nil
}

func (m *Reject) decodePayload(src []byte) error {
	d := wire.NewDec(src)
	m.Code = d.U8()
	m.Reason = d.String()
	return d.Done()
}

// Shutdown terminates a worker at the end of training.
type Shutdown struct {
	FinalAccuracy float64
}

func (Shutdown) wireType() byte { return msgShutdown }

func (m Shutdown) appendPayload(dst []byte) ([]byte, error) {
	return wire.AppendF64(dst, m.FinalAccuracy), nil
}

func (m *Shutdown) decodePayload(src []byte) error {
	d := wire.NewDec(src)
	m.FinalAccuracy = d.F64()
	return d.Done()
}

// closeOnCancel arranges for closer to be closed when ctx is canceled,
// unblocking any in-flight network I/O. The returned stop function
// releases the watcher (the usual defer).
func closeOnCancel(ctx context.Context, closer interface{ Close() error }) (stop func() bool) {
	return context.AfterFunc(ctx, func() { closer.Close() })
}

// ctxErr prefers the cancellation cause over the I/O error that the
// cancel-teardown provoked.
func ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// Conn is a framed v2 message stream over a network connection.
//
// Reads are resumable: Recv tracks how much of the current frame header
// and body has arrived, so a Recv aborted by a read deadline leaves the
// stream position intact and a later Recv continues the same frame
// where it stopped. This is what lets the server keep a slow worker's
// connection across a missed round instead of evicting it — the v1 gob
// stream had no frame boundaries to come back to.
type Conn struct {
	raw net.Conn
	// Write scratch (header + in-place payload), reused across Sends.
	wbuf []byte
	// Resumable read state for the in-flight frame.
	hdr    [wire.FrameHeaderSize]byte
	hdrN   int
	typ    byte
	body   []byte
	bodyN  int
	inBody bool
}

// NewConn wraps a net.Conn.
func NewConn(raw net.Conn) *Conn { return &Conn{raw: raw} }

// Send transmits one message as a single frame and reports the frame's
// size in bytes (the exact wire cost of the message).
func (c *Conn) Send(msg Message) (int, error) {
	frame, err := appendMessageFrame(c.wbuf[:0], msg)
	c.wbuf = frame
	if err != nil {
		return 0, err
	}
	if _, err := c.raw.Write(frame); err != nil {
		return 0, err
	}
	return len(frame), nil
}

// SendMany transmits several messages in one Write call — one frame
// each, coalesced into a single buffer — and reports the total byte
// count. Sharded workers use this to ship a round's per-shard report
// frames as one socket write, so sharding adds frame headers but no
// extra syscalls or partial-write interleaving hazards.
func (c *Conn) SendMany(msgs ...Message) (int, error) {
	frames := c.wbuf[:0]
	var err error
	for _, msg := range msgs {
		if frames, err = appendMessageFrame(frames, msg); err != nil {
			c.wbuf = frames
			return 0, err
		}
	}
	c.wbuf = frames
	if _, err := c.raw.Write(frames); err != nil {
		return 0, err
	}
	return len(frames), nil
}

// WriteRaw writes a pre-encoded frame (appendMessageFrame) verbatim,
// bypassing the Conn's encode buffers. The caller must own the outbound
// stream at that moment, exactly as for Send; the payoff is that a
// frame shared by many workers — a pipelined RoundStart with no Files
// map, a replication group's RoundPrep — is encoded once and written N
// times instead of encoded N times.
func (c *Conn) WriteRaw(frame []byte) (int, error) {
	if _, err := c.raw.Write(frame); err != nil {
		return 0, err
	}
	return len(frame), nil
}

// WriteRaw2 writes two pre-encoded frames back-to-back in a single
// vectored write (writev on TCP), so piggybacking one frame on another
// costs no extra syscall. An empty second frame degrades to WriteRaw.
func (c *Conn) WriteRaw2(a, b []byte) (int, error) {
	if len(b) == 0 {
		return c.WriteRaw(a)
	}
	bufs := net.Buffers{a, b}
	if _, err := bufs.WriteTo(c.raw); err != nil {
		return 0, err
	}
	return len(a) + len(b), nil
}

// SendWithRaw transmits msg as one frame immediately followed by a
// pre-encoded raw frame, both in a single vectored write. A nil raw
// frame degrades to Send.
func (c *Conn) SendWithRaw(msg Message, raw []byte) (int, error) {
	frame, err := appendMessageFrame(c.wbuf[:0], msg)
	c.wbuf = frame
	if err != nil {
		return 0, err
	}
	return c.WriteRaw2(frame, raw)
}

// appendMessageFrame encodes msg as one complete frame appended to
// dst: the payload is built in place right after the header and the
// length patched afterwards (wire.BeginFrame/EndFrame), so assembling
// a frame costs no payload copy. Also used to pre-encode a frame once
// and write it to many connections with Conn.WriteRaw. The buffer is
// returned even on error so callers keep reusing its capacity.
func appendMessageFrame(dst []byte, msg Message) ([]byte, error) {
	dst, at := wire.BeginFrame(dst, msg.wireType())
	dst, err := msg.appendPayload(dst)
	if err != nil {
		return dst, err
	}
	return wire.EndFrame(dst, at)
}

// Recv receives the next message. Decoded messages own their fields,
// with two documented exceptions — RoundStart.ParamsFrame and
// GradientReport.Frame alias the Conn's receive buffer and must be
// consumed before the next Recv. On a timeout error the partial frame
// remains buffered and the next Recv resumes it; any other error (or a
// malformed frame) is fatal for the stream.
func (c *Conn) Recv() (any, error) {
	if !c.inBody {
		for c.hdrN < len(c.hdr) {
			n, err := c.raw.Read(c.hdr[c.hdrN:])
			c.hdrN += n
			if err != nil {
				return nil, err
			}
		}
		typ, length, err := wire.ParseFrameHeader(c.hdr[:])
		if err != nil {
			return nil, err
		}
		c.typ = typ
		if cap(c.body) < length {
			c.body = make([]byte, length)
		}
		c.body = c.body[:length]
		c.bodyN = 0
		c.inBody = true
	}
	for c.bodyN < len(c.body) {
		n, err := c.raw.Read(c.body[c.bodyN:])
		c.bodyN += n
		if err != nil {
			return nil, err
		}
	}
	c.inBody = false
	c.hdrN = 0
	return decodeMessage(c.typ, c.body)
}

// decodeMessage decodes one frame body into its message value.
func decodeMessage(typ byte, body []byte) (any, error) {
	switch typ {
	case msgHello:
		var m Hello
		if err := m.decodePayload(body); err != nil {
			return nil, err
		}
		return m, nil
	case msgWelcome:
		var m Welcome
		if err := m.decodePayload(body); err != nil {
			return nil, err
		}
		return m, nil
	case msgRoundStart:
		var m RoundStart
		if err := m.decodePayload(body); err != nil {
			return nil, err
		}
		return m, nil
	case msgGradientReport:
		var m GradientReport
		if err := m.decodePayload(body); err != nil {
			return nil, err
		}
		return m, nil
	case msgShutdown:
		var m Shutdown
		if err := m.decodePayload(body); err != nil {
			return nil, err
		}
		return m, nil
	case msgReject:
		var m Reject
		if err := m.decodePayload(body); err != nil {
			return nil, err
		}
		return m, nil
	case msgRoundPrep:
		var m RoundPrep
		if err := m.decodePayload(body); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, fmt.Errorf("transport: unknown message type %d", typ)
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// SetReadDeadline bounds the next Recv calls; the zero time clears the
// deadline. A Recv that trips the deadline keeps the partial frame
// buffered, so the stream stays usable afterwards.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline bounds the next Send calls; the zero time clears the
// deadline. Unlike reads, a Send that trips the deadline may have
// written a partial frame and poisons the outbound stream — callers
// must close the connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }
