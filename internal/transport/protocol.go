// Package transport implements a real network transport for the
// training protocol: a TCP parameter server and worker clients speaking
// a gob-encoded message protocol over net.Conn. This is the repository's
// substitute for the paper's MPICH deployment — cmd/byzps and
// cmd/byzworker run the same synchronous rounds as the in-process engine
// across OS processes (or machines). The server executes every round
// through the shared cluster round core (it installs a network
// GradientSource into cluster.Engine), so the wire path votes,
// aggregates, and steps exactly like the in-process engine and
// reproduces its parameter trajectory bit-for-bit for the same Spec.
//
// Wire protocol (all messages gob-encoded on a persistent connection):
//
//	worker → PS:  Hello{WorkerID}
//	PS → worker:  Welcome{Spec}            (experiment description)
//	PS → worker:  RoundStart{Iteration, Params, Files}
//	worker → PS:  GradientReport{WorkerID, Iteration, Frame}
//	PS → worker:  Shutdown{FinalAccuracy}
//
// Workers reconstruct the dataset and model deterministically from the
// Spec (seeded synthetic data stands in for the shared dataset storage
// of a real cluster), so only indices — not samples — cross the wire,
// exactly as in the paper's setup where every node holds the dataset.
//
// Rounds tolerate partial participation: each worker's report is
// collected under a per-round deadline; workers that crash, stall past
// it, or misbehave are evicted and the round core's quorum rule votes
// the surviving replicas (see DESIGN.md §8). An empty GradientReport
// frame is an explicit skip — alive, but no gradients this round. The
// Spec can name a fault model (internal/fault) that every worker
// injects on itself, so crash/straggler/flaky scenarios run against the
// server's real deadline handling.
package transport

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/data"
	"byzshield/internal/fault"
	"byzshield/internal/model"
	"byzshield/internal/registry"
	"byzshield/internal/trainer"
)

// Spec describes the experiment so every process builds identical
// datasets, models, and assignments. Component names resolve through
// internal/registry, so any scheme registered there ("mols",
// "ramanujan1", "ramanujan2", "frc", "baseline", "random") is valid on
// the wire.
type Spec struct {
	// Scheme is the registry name of the assignment scheme.
	Scheme string
	// L and R parameterize the scheme (load and replication; see
	// registry.SchemeParams for the per-scheme field conventions).
	L, R int
	// K is the worker count (derived for mols/ramanujan1/2; explicit for
	// frc/baseline/random).
	K int
	// F is the file count (random scheme only; derived elsewhere).
	F int
	// Aggregator is the registry name of the PS aggregation rule
	// (default "median"); AggParams carries its knobs.
	Aggregator string
	AggParams  registry.AggregatorParams
	// Dataset parameters.
	TrainN, TestN, Dim, Classes int
	DataSeed                    int64
	ClassSep                    float64
	// Hidden is the MLP hidden width; 0 selects softmax regression.
	Hidden int
	// Training parameters.
	BatchSize int
	Schedule  trainer.Schedule
	Momentum  float64
	Seed      int64
	Rounds    int
	// Fault names the registry fault model every worker applies to
	// itself ("" or "none" = fault-free); FaultParams carries its knobs.
	// Fault decisions are deterministic in (round, worker), so the
	// worker processes and any observer evaluating the same Spec agree
	// on the injected schedule without coordination.
	Fault       string
	FaultParams registry.FaultParams
}

// components is the shared catalog every Spec resolves names through;
// custom components registered on it (byzshield.Registry is the same
// object) are therefore valid on the wire.
var components = registry.Default

// BuildAssignment constructs the assignment described by the spec via
// the component registry, guaranteeing that every process (and the
// in-process engine) realizes the identical placement.
func (s *Spec) BuildAssignment() (*assign.Assignment, error) {
	return components.Scheme(s.Scheme, registry.SchemeParams{
		L: s.L, R: s.R, K: s.K, F: s.F, Seed: s.Seed,
	})
}

// BuildAggregator constructs the aggregation rule named by the spec
// (coordinate-wise median when unset).
func (s *Spec) BuildAggregator() (aggregate.Aggregator, error) {
	name := s.Aggregator
	if name == "" {
		name = "median"
	}
	return components.Aggregator(name, s.AggParams)
}

// BuildModel constructs the model described by the spec.
func (s *Spec) BuildModel() (model.Model, error) {
	if s.Hidden > 0 {
		return model.NewMLP(s.Dim, s.Hidden, s.Classes)
	}
	return model.NewSoftmax(s.Dim, s.Classes)
}

// BuildData constructs the train/test datasets described by the spec.
func (s *Spec) BuildData() (train, test *data.Dataset, err error) {
	return data.Synthetic(data.SyntheticConfig{
		Train: s.TrainN, Test: s.TestN, Dim: s.Dim, Classes: s.Classes,
		Seed: s.DataSeed, ClassSep: s.ClassSep,
	})
}

// BuildFault constructs the worker fault model named by the spec
// (fault-free when unset).
func (s *Spec) BuildFault() (fault.Fault, error) {
	if s.Fault == "" {
		return fault.None{}, nil
	}
	return components.Fault(s.Fault, s.FaultParams)
}

// Hello is the worker's first message.
type Hello struct {
	WorkerID int
}

// Welcome is the PS's reply to Hello.
type Welcome struct {
	Spec Spec
}

// RoundStart carries the model and this worker's file assignments for
// one iteration. Files maps file id → training-sample indices.
type RoundStart struct {
	Iteration int
	Params    []float64
	Files     map[int][]int
}

// GradientReport returns the worker's per-file gradient sums. The
// gradients travel as one compact binary gradient frame (see
// internal/wire) instead of gob-encoded nested slices: fixed 8-byte
// float encoding and no per-message type reflection make the worker→PS
// hot path smaller and substantially faster to serialize.
type GradientReport struct {
	WorkerID  int
	Iteration int
	// Frame is the wire-encoded (worker, files, gradients) frame;
	// decode with wire.DecodeGradFrame. Its embedded worker id must
	// match WorkerID. An empty Frame is an explicit skip: the worker is
	// alive but reports no gradients this round (flaky-fault injection),
	// so the PS counts it missing for the round without evicting it.
	Frame []byte
}

// Shutdown terminates a worker at the end of training.
type Shutdown struct {
	FinalAccuracy float64
}

// Envelope wraps every message with a type tag; gob needs concrete types
// registered on both sides.
type Envelope struct {
	Kind string
	Msg  any
}

func init() {
	gob.Register(Hello{})
	gob.Register(Welcome{})
	gob.Register(RoundStart{})
	gob.Register(GradientReport{})
	gob.Register(Shutdown{})
}

// closeOnCancel arranges for closer to be closed when ctx is canceled,
// unblocking any in-flight network I/O. The returned stop function
// releases the watcher (the usual defer).
func closeOnCancel(ctx context.Context, closer interface{ Close() error }) (stop func() bool) {
	return context.AfterFunc(ctx, func() { closer.Close() })
}

// ctxErr prefers the cancellation cause over the I/O error that the
// cancel-teardown provoked.
func ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// Conn is a gob message stream over a network connection.
type Conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewConn wraps a net.Conn.
func NewConn(raw net.Conn) *Conn {
	return &Conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

// Send transmits one message.
func (c *Conn) Send(msg any) error {
	return c.enc.Encode(Envelope{Kind: fmt.Sprintf("%T", msg), Msg: msg})
}

// Recv receives the next message.
func (c *Conn) Recv() (any, error) {
	var env Envelope
	if err := c.dec.Decode(&env); err != nil {
		return nil, err
	}
	return env.Msg, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// SetReadDeadline bounds the next Recv calls; the zero time clears the
// deadline. A Recv that trips the deadline leaves the gob stream in an
// undefined partial state, so callers must close the connection after a
// timeout rather than retry.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }
