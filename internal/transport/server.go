package transport

import (
	"context"
	"fmt"
	"log"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/cluster"
	"byzshield/internal/trainer"
	"byzshield/internal/wire"
)

// DefaultRoundTimeout is the per-round worker report deadline applied
// when ServerConfig.RoundTimeout is zero. A worker that has not
// delivered its gradient report this long after the round broadcast is
// evicted and the round proceeds over the survivors.
const DefaultRoundTimeout = 30 * time.Second

// helloTimeout bounds how long an accepted connection may take to send
// its Hello before the accept loop rejects it and moves on; without it
// a half-open connection could stall worker admission forever.
const helloTimeout = 30 * time.Second

// ServerConfig configures the TCP parameter server.
type ServerConfig struct {
	Spec Spec
	// Aggregator overrides the rule named by Spec.Aggregator; leave nil
	// to resolve it from the registry.
	Aggregator aggregate.Aggregator
	// Logf receives progress lines; nil disables logging.
	Logf func(format string, args ...any)
	// EvalEvery controls accuracy evaluation cadence (default: every
	// 10 rounds).
	EvalEvery int
	// RoundTimeout is each worker's per-round report deadline: 0
	// selects DefaultRoundTimeout, negative disables deadlines (the
	// server then waits indefinitely, as the pre-fault-tolerant server
	// did). A worker past its deadline is evicted from the run; the
	// round continues over the surviving replicas under the quorum
	// rule.
	RoundTimeout time.Duration
	// Quorum is the minimum surviving replicas a file needs to be voted
	// (0 → majority of the nominal replication, R/2+1); see
	// cluster.Config.Quorum.
	Quorum int
	// Parallelism is the width of the PS-side engine pool used for vote
	// sharding and chunked aggregation (0 → GOMAXPROCS, 1 → serial).
	Parallelism int
	// OnRound, when non-nil, receives every completed round's
	// statistics — including missing workers and degraded/dropped file
	// counts on partial-participation rounds.
	OnRound func(cluster.RoundStats)
}

// Server is the TCP parameter server: it accepts K workers and drives
// the synchronous rounds of Algorithm 1 over the network. The per-round
// protocol itself — majority vote with quorum, robust aggregation,
// momentum step — executes in the shared cluster round core; the server
// merely installs a network GradientSource, so the wire path inherits
// the gradient arena, the parallel vote sharding, and the chunked
// aggregation of the in-process engine and reproduces its parameter
// trajectory bit-for-bit for the same Spec.
type Server struct {
	cfg        ServerConfig
	listener   net.Listener
	assignment *assign.Assignment
	eng        *cluster.Engine
	src        *wireSource
	history    trainer.History

	mu      sync.Mutex
	conns   []*Conn
	serving bool
}

// NewServer validates the config and binds the listener on addr
// (e.g. "127.0.0.1:0" to pick a free port).
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Aggregator == nil {
		agg, err := cfg.Spec.BuildAggregator()
		if err != nil {
			return nil, err
		}
		cfg.Aggregator = agg
	}
	if cfg.Spec.Rounds < 1 {
		return nil, fmt.Errorf("transport: rounds %d < 1", cfg.Spec.Rounds)
	}
	if _, err := cfg.Spec.BuildFault(); err != nil {
		return nil, err
	}
	asn, err := cfg.Spec.BuildAssignment()
	if err != nil {
		return nil, err
	}
	cfg.Spec.K = asn.K
	mdl, err := cfg.Spec.BuildModel()
	if err != nil {
		return nil, err
	}
	train, test, err := cfg.Spec.BuildData()
	if err != nil {
		return nil, err
	}
	if cfg.EvalEvery < 1 {
		cfg.EvalEvery = 10
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = DefaultRoundTimeout
	}
	src := newWireSource(asn, cfg.RoundTimeout, cfg.Logf)
	eng, err := cluster.New(cluster.Config{
		Assignment:  asn,
		Model:       mdl,
		Train:       train,
		Test:        test,
		BatchSize:   cfg.Spec.BatchSize,
		Aggregator:  cfg.Aggregator,
		Schedule:    cfg.Spec.Schedule,
		Momentum:    cfg.Spec.Momentum,
		Seed:        cfg.Spec.Seed,
		Quorum:      cfg.Quorum,
		Parallelism: cfg.Parallelism,
		Source:      src,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		eng.Close()
		return nil, err
	}
	return &Server{
		cfg:        cfg,
		listener:   ln,
		assignment: asn,
		eng:        eng,
		src:        src,
	}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close releases the listener and, when no Serve is in flight, the
// engine's worker-pool goroutines. Close is safe to call concurrently
// with a running Serve (matching the pre-fault-tolerant contract): the
// engine must not be torn down under a mid-flight round, so in that
// case Serve's own exit path releases it.
func (s *Server) Close() error {
	err := s.listener.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.serving {
		s.eng.Close()
	}
	return err
}

// History returns the recorded evaluation series.
func (s *Server) History() *trainer.History { return &s.history }

// Params returns a copy of the current model parameter vector — the
// wire-path counterpart of cluster.Engine.Params, used to verify
// trajectory identity between the two paths.
func (s *Server) Params() []float64 { return s.eng.Params() }

// track registers a worker connection for cancellation teardown.
func (s *Server) track(c *Conn) {
	s.mu.Lock()
	s.conns = append(s.conns, c)
	s.mu.Unlock()
}

// teardown closes the listener and every tracked connection, unblocking
// any in-flight Accept/Send/Recv.
func (s *Server) teardown() {
	s.listener.Close()
	s.mu.Lock()
	conns := append([]*Conn(nil), s.conns...)
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Serve accepts the K workers, runs the configured number of rounds
// through the shared round core, and shuts the workers down, returning
// the final test accuracy. Workers that crash, stall past the round
// deadline, or send malformed reports mid-run are evicted and the
// remaining rounds execute over the survivors (files below the replica
// quorum drop out of aggregation); training only fails when no file
// meets quorum. Canceling ctx aborts the accept loop and any in-flight
// round promptly (by closing the listener and worker connections) and
// returns ctx.Err(); the evaluation history recorded up to that point
// remains available via History.
func (s *Server) Serve(ctx context.Context) (float64, error) {
	s.mu.Lock()
	s.serving = true
	s.mu.Unlock()
	defer func() {
		// Rounds are done (or aborted): the engine pool is idle, so it
		// is safe to release here; Engine.Close is idempotent and its
		// read-only accessors (Params, Evaluate) keep working after.
		s.mu.Lock()
		s.serving = false
		s.mu.Unlock()
		s.eng.Close()
	}()
	stop := context.AfterFunc(ctx, s.teardown)
	defer stop()

	k := s.assignment.K
	for joined := 0; joined < k; {
		raw, err := s.listener.Accept()
		if err != nil {
			return 0, fmt.Errorf("transport: accept: %w", ctxErr(ctx, err))
		}
		conn := NewConn(raw)
		s.track(conn)
		// A bad handshake rejects this connection only: the listener
		// keeps accepting, so one malformed or duplicate Hello cannot
		// tear down the whole cluster.
		conn.SetReadDeadline(time.Now().Add(helloTimeout))
		msg, err := conn.Recv()
		conn.SetReadDeadline(time.Time{})
		if err != nil {
			s.cfg.Logf("rejecting %s: hello: %v", conn.RemoteAddr(), ctxErr(ctx, err))
			conn.Close()
			continue
		}
		hello, ok := msg.(Hello)
		if !ok {
			s.cfg.Logf("rejecting %s: expected Hello, got %T", conn.RemoteAddr(), msg)
			conn.Close()
			continue
		}
		if hello.WorkerID < 0 || hello.WorkerID >= k {
			s.cfg.Logf("rejecting %s: worker id %d out of range [0,%d)", conn.RemoteAddr(), hello.WorkerID, k)
			conn.Close()
			continue
		}
		if s.src.conns[hello.WorkerID] != nil {
			s.cfg.Logf("rejecting %s: worker %d already connected", conn.RemoteAddr(), hello.WorkerID)
			conn.Close()
			continue
		}
		if err := conn.Send(Welcome{Spec: s.cfg.Spec}); err != nil {
			s.cfg.Logf("rejecting %s: welcome: %v", conn.RemoteAddr(), ctxErr(ctx, err))
			conn.Close()
			continue
		}
		s.src.conns[hello.WorkerID] = conn
		joined++
		s.cfg.Logf("worker %d joined from %s (%d/%d)", hello.WorkerID, conn.RemoteAddr(), joined, k)
	}
	defer func() {
		for _, c := range s.src.conns {
			if c != nil {
				c.Close()
			}
		}
	}()

	for t := 0; t < s.cfg.Spec.Rounds; t++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		stats, err := s.eng.StepOnce(ctx)
		if err != nil {
			return 0, fmt.Errorf("transport: round %d: %w", t, ctxErr(ctx, err))
		}
		if len(stats.MissingWorkers) > 0 {
			s.cfg.Logf("round %d: missing workers %v (%d degraded, %d dropped files)",
				t, stats.MissingWorkers, stats.DegradedFiles, stats.DroppedFiles)
		}
		if s.cfg.OnRound != nil {
			s.cfg.OnRound(stats)
		}
		if (t+1)%s.cfg.EvalEvery == 0 || t == s.cfg.Spec.Rounds-1 {
			acc := s.eng.Evaluate()
			loss := s.eng.EvalLoss()
			s.history.Add(t+1, loss, acc)
			s.cfg.Logf("round %d: loss=%.4f acc=%.4f", t+1, loss, acc)
		}
	}
	final := s.eng.Evaluate()
	for _, c := range s.src.conns {
		if c == nil {
			continue
		}
		if err := c.Send(Shutdown{FinalAccuracy: final}); err != nil {
			log.Printf("transport: shutdown send: %v", err)
		}
	}
	return final, nil
}

// wireSource is the network GradientSource: it broadcasts RoundStart to
// the surviving workers, collects their gradient reports in parallel
// under the per-round deadline, decodes each binary gradient frame
// directly into the engine's arena buffers, and marks crashed, stalled,
// skipping, or misbehaving workers missing so the round core's quorum
// rule decides the fate of their files.
type wireSource struct {
	timeout time.Duration
	logf    func(format string, args ...any)
	// conns[u] is worker u's connection; nil before it joins and after
	// it is evicted. Eviction is permanent: the synchronous gob stream
	// cannot be resynchronized after a timeout fires mid-message.
	conns []*Conn
	// files[u] is worker u's assigned file list in slot order.
	files [][]int
	// frames[u] is worker u's decode scratch; its Grads are repointed at
	// the engine's slot buffers each round so decoding fills the arena
	// in place.
	frames []wire.GradFrame
}

// newWireSource prepares the per-worker connection and scratch tables.
func newWireSource(asn *assign.Assignment, timeout time.Duration, logf func(string, ...any)) *wireSource {
	ws := &wireSource{
		timeout: timeout,
		logf:    logf,
		conns:   make([]*Conn, asn.K),
		files:   make([][]int, asn.K),
		frames:  make([]wire.GradFrame, asn.K),
	}
	for u := 0; u < asn.K; u++ {
		ws.files[u] = asn.WorkerFiles(u)
	}
	return ws
}

// Collect implements cluster.GradientSource over TCP. Every surviving
// worker is served by its own goroutine (Round methods are safe for
// concurrent use across distinct workers), so one slow worker costs the
// round at most the deadline, not a serial sum of stalls.
func (ws *wireSource) Collect(ctx context.Context, rd *cluster.Round) (cluster.CollectStats, error) {
	t := rd.Iteration()
	start := time.Now()
	var commBytes atomic.Int64
	var wg sync.WaitGroup
	for u := range ws.conns {
		if ws.conns[u] == nil {
			rd.MarkMissing(u)
			continue
		}
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if !ws.collectWorker(t, u, rd, &commBytes) {
				rd.MarkMissing(u)
			}
		}(u)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return cluster.CollectStats{}, err
	}
	return cluster.CollectStats{
		Communication: time.Since(start),
		CommBytes:     commBytes.Load(),
	}, nil
}

// collectWorker runs one worker's round trip: RoundStart out, gradient
// report in, frame decoded into the arena. It reports whether the
// worker delivered; false marks the worker missing for this round (and
// evicts it permanently unless it skipped explicitly).
func (ws *wireSource) collectWorker(t, u int, rd *cluster.Round, commBytes *atomic.Int64) bool {
	conn := ws.conns[u]
	assigned := make(map[int][]int, len(ws.files[u]))
	for _, v := range ws.files[u] {
		assigned[v] = rd.FileSamples(v)
	}
	if err := conn.Send(RoundStart{Iteration: t, Params: rd.Params(), Files: assigned}); err != nil {
		ws.evict(t, u, fmt.Errorf("send: %w", err))
		return false
	}
	if ws.timeout > 0 {
		conn.SetReadDeadline(time.Now().Add(ws.timeout))
		defer conn.SetReadDeadline(time.Time{})
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			ws.evict(t, u, err)
			return false
		}
		rep, ok := msg.(GradientReport)
		if !ok {
			ws.evict(t, u, fmt.Errorf("expected GradientReport, got %T", msg))
			return false
		}
		if rep.Iteration < t {
			// A stale report from a round whose deadline already passed;
			// discard and keep reading for the current round.
			continue
		}
		if rep.Iteration > t || rep.WorkerID != u {
			ws.evict(t, u, fmt.Errorf("report (worker %d, round %d), want (%d, %d)", rep.WorkerID, rep.Iteration, u, t))
			return false
		}
		if len(rep.Frame) == 0 {
			// Explicit skip: alive, no gradients this round.
			ws.logf("worker %d skipped round %d", u, t)
			return false
		}
		return ws.deliver(t, u, rep.Frame, rd, commBytes)
	}
}

// deliver decodes the report frame straight into the engine's slot
// buffers and hands them to the round. Any structural mismatch —
// truncated frame, wrong worker id, wrong file set — evicts the worker:
// its buffers may now hold partial data, but marking it missing keeps
// them out of every vote.
func (ws *wireSource) deliver(t, u int, frameBytes []byte, rd *cluster.Round, commBytes *atomic.Int64) bool {
	wf := ws.files[u]
	f := &ws.frames[u]
	if cap(f.Grads) < len(wf) {
		f.Grads = make([][]float64, len(wf))
	}
	f.Grads = f.Grads[:len(wf)]
	for j := range wf {
		f.Grads[j] = rd.Buffer(u, j)
	}
	consumed, err := wire.DecodeGradFrame(frameBytes, f)
	switch {
	case err != nil:
		ws.evict(t, u, err)
		return false
	case consumed != len(frameBytes):
		ws.evict(t, u, fmt.Errorf("frame has %d trailing bytes", len(frameBytes)-consumed))
		return false
	case f.Worker != u:
		ws.evict(t, u, fmt.Errorf("frame claims worker %d", f.Worker))
		return false
	case !slices.Equal(f.Files, wf):
		ws.evict(t, u, fmt.Errorf("frame files %v, want %v", f.Files, wf))
		return false
	}
	for j := range wf {
		if err := rd.Deliver(u, j, f.Grads[j]); err != nil {
			ws.evict(t, u, err)
			return false
		}
	}
	commBytes.Add(int64(len(frameBytes)))
	return true
}

// evict permanently removes a worker from the run: its connection is
// closed and its slot cleared, so every later round marks it missing
// up front. Safe for concurrent calls on distinct workers.
func (ws *wireSource) evict(t, u int, err error) {
	ws.logf("round %d: evicting worker %d: %v", t, u, err)
	ws.conns[u].Close()
	ws.conns[u] = nil
}
