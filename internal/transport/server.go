package transport

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/cluster"
	"byzshield/internal/trainer"
	"byzshield/internal/wire"
)

// DefaultRoundTimeout is the per-round worker report deadline applied
// when ServerConfig.RoundTimeout is zero. A worker that has not
// delivered its gradient report this long after the round broadcast is
// marked missing and the round proceeds over the survivors.
const DefaultRoundTimeout = 30 * time.Second

// DefaultFullBroadcastEvery is the full-parameter-broadcast cadence
// applied when ServerConfig.FullBroadcastEvery is zero: every 16th
// round ships the whole vector, the rounds between ship bit-exact XOR
// deltas.
const DefaultFullBroadcastEvery = 16

// helloTimeout bounds how long an accepted connection may take to send
// its Hello before the handshake rejects it and moves on; without it a
// half-open connection could stall worker admission forever.
const helloTimeout = 30 * time.Second

// shutdownDrainTimeout bounds how long the server drains a worker's
// stale reports after sending Shutdown. Closing a socket with unread
// data resets it, which would destroy the buffered Shutdown before a
// lagging worker reads it; draining until the worker closes its end
// hands every straggler its final accuracy.
const shutdownDrainTimeout = 10 * time.Second

// ServerConfig configures the TCP parameter server.
type ServerConfig struct {
	Spec Spec
	// Aggregator overrides the rule named by Spec.Aggregator; leave nil
	// to resolve it from the registry.
	Aggregator aggregate.Aggregator
	// Logf receives progress lines; nil disables logging.
	Logf func(format string, args ...any)
	// EvalEvery controls accuracy evaluation cadence (default: every
	// 10 rounds). Evaluation runs on a parameter snapshot in a
	// background goroutine, so workers never idle behind it.
	EvalEvery int
	// RoundTimeout is each worker's per-round report deadline: 0
	// selects DefaultRoundTimeout, negative disables deadlines (the
	// server then waits indefinitely). A worker past its deadline is
	// marked missing for the round but keeps its connection — frames
	// are self-delimiting, so its late report is discarded and it
	// participates again next round. Only a broken connection or a
	// malformed message evicts a worker, and an evicted worker may
	// rejoin with its session token.
	RoundTimeout time.Duration
	// FullBroadcastEvery is the cadence of full parameter broadcasts: 1
	// ships the whole vector every round (no deltas), N > 1 ships it on
	// every N-th round plus to every joining/rejoining or unacknowledged
	// worker, with bit-exact XOR deltas in between. 0 selects
	// DefaultFullBroadcastEvery.
	FullBroadcastEvery int
	// Quorum is the minimum surviving replicas a file needs to be voted
	// (0 → majority of the nominal replication, R/2+1); see
	// cluster.Config.Quorum.
	Quorum int
	// Parallelism is the width of the PS-side engine pool used for vote
	// sharding and chunked aggregation (0 → GOMAXPROCS, 1 → serial).
	Parallelism int
	// OnRound, when non-nil, receives every completed round's
	// statistics — including missing workers and degraded/dropped file
	// counts on partial-participation rounds. It runs on the serve loop
	// between rounds: the next round starts only after it returns.
	OnRound func(cluster.RoundStats)
}

// Server is the TCP parameter server: it accepts K workers and drives
// the synchronous rounds of Algorithm 1 over the network. The per-round
// protocol itself — majority vote with quorum, robust aggregation,
// momentum step — executes in the shared cluster round core; the server
// merely installs a network GradientSource, so the wire path inherits
// the gradient arena, the parallel vote sharding, and the chunked
// aggregation of the in-process engine and reproduces its parameter
// trajectory bit-for-bit for the same Spec.
//
// The accept loop runs for the whole Serve call: workers that crash or
// are evicted mid-run can reconnect (Hello with Resume and their
// session token) and are re-admitted at the next round boundary, where
// they receive a full parameter broadcast and resume contributing their
// file gradients.
type Server struct {
	cfg        ServerConfig
	listener   net.Listener
	assignment *assign.Assignment
	eng        *cluster.Engine
	src        *wireSource

	histMu  sync.Mutex
	history trainer.History

	mu      sync.Mutex
	conns   []*Conn
	serving bool
}

// NewServer validates the config and binds the listener on addr
// (e.g. "127.0.0.1:0" to pick a free port).
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Aggregator == nil {
		agg, err := cfg.Spec.BuildAggregator()
		if err != nil {
			return nil, err
		}
		cfg.Aggregator = agg
	}
	if cfg.Spec.Rounds < 1 {
		return nil, fmt.Errorf("transport: rounds %d < 1", cfg.Spec.Rounds)
	}
	if _, err := cfg.Spec.BuildFault(); err != nil {
		return nil, err
	}
	asn, err := cfg.Spec.BuildAssignment()
	if err != nil {
		return nil, err
	}
	cfg.Spec.K = asn.K
	mdl, err := cfg.Spec.BuildModel()
	if err != nil {
		return nil, err
	}
	train, test, err := cfg.Spec.BuildData()
	if err != nil {
		return nil, err
	}
	if cfg.EvalEvery < 1 {
		cfg.EvalEvery = 10
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = DefaultRoundTimeout
	}
	if cfg.FullBroadcastEvery == 0 {
		cfg.FullBroadcastEvery = DefaultFullBroadcastEvery
	}
	if cfg.FullBroadcastEvery < 1 {
		return nil, fmt.Errorf("transport: full-broadcast cadence %d < 1", cfg.FullBroadcastEvery)
	}
	src := newWireSource(asn, cfg.RoundTimeout, cfg.FullBroadcastEvery, cfg.Logf)
	eng, err := cluster.New(cluster.Config{
		Assignment:  asn,
		Model:       mdl,
		Train:       train,
		Test:        test,
		BatchSize:   cfg.Spec.BatchSize,
		Aggregator:  cfg.Aggregator,
		Schedule:    cfg.Spec.Schedule,
		Momentum:    cfg.Spec.Momentum,
		Seed:        cfg.Spec.Seed,
		Quorum:      cfg.Quorum,
		Parallelism: cfg.Parallelism,
		Source:      src,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		eng.Close()
		return nil, err
	}
	return &Server{
		cfg:        cfg,
		listener:   ln,
		assignment: asn,
		eng:        eng,
		src:        src,
	}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close releases the listener and, when no Serve is in flight, the
// engine's worker-pool goroutines. Close is safe to call concurrently
// with a running Serve: the engine must not be torn down under a
// mid-flight round, so in that case Serve's own exit path releases it.
func (s *Server) Close() error {
	err := s.listener.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.serving {
		s.eng.Close()
	}
	return err
}

// History returns the recorded evaluation series. Valid once Serve has
// returned (evaluation runs on a background goroutine during a run).
func (s *Server) History() *trainer.History {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	return &s.history
}

// Params returns a copy of the current model parameter vector — the
// wire-path counterpart of cluster.Engine.Params, used to verify
// trajectory identity between the two paths.
func (s *Server) Params() []float64 { return s.eng.Params() }

// track registers a connection for cancellation teardown.
func (s *Server) track(c *Conn) {
	s.mu.Lock()
	s.conns = append(s.conns, c)
	s.mu.Unlock()
}

// teardown closes the listener and every tracked connection, unblocking
// any in-flight Accept/Send/Recv.
func (s *Server) teardown() {
	s.listener.Close()
	s.mu.Lock()
	conns := append([]*Conn(nil), s.conns...)
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// newToken draws a fresh random session token.
func newToken() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// acceptLoop accepts connections for the whole run, handshaking each on
// its own goroutine: initial joins before round 1, rejoins any time
// after. It exits when the listener closes (teardown or end of Serve).
func (s *Server) acceptLoop(ctx context.Context, done chan<- error) {
	for {
		raw, err := s.listener.Accept()
		if err != nil {
			done <- ctxErr(ctx, err)
			return
		}
		conn := NewConn(raw)
		s.track(conn)
		go s.handshake(ctx, conn)
	}
}

// handshake runs one connection's Hello/Welcome exchange. A bad
// handshake rejects this connection only: the listener keeps accepting,
// so one malformed, duplicate, or stale-token Hello cannot tear down
// the cluster.
func (s *Server) handshake(ctx context.Context, conn *Conn) {
	reject := func(format string, args ...any) {
		s.cfg.Logf("rejecting %s: %s", conn.RemoteAddr(), fmt.Sprintf(format, args...))
		conn.Close()
	}
	conn.SetReadDeadline(time.Now().Add(helloTimeout))
	msg, err := conn.Recv()
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		reject("hello: %v", ctxErr(ctx, err))
		return
	}
	hello, ok := msg.(Hello)
	if !ok {
		reject("expected Hello, got %T", msg)
		return
	}
	if hello.Version != wire.ProtocolVersion {
		reject("protocol version %d, want %d", hello.Version, wire.ProtocolVersion)
		return
	}
	k := s.assignment.K
	if hello.WorkerID < 0 || hello.WorkerID >= k {
		reject("worker id %d out of range [0,%d)", hello.WorkerID, k)
		return
	}
	token, err := newToken()
	if err != nil {
		reject("token: %v", err)
		return
	}
	ws := s.src
	ws.mu.Lock()
	w := &ws.workers[hello.WorkerID]
	switch {
	case !w.joined:
		// First join: reserve the slot (blocks duplicate Hellos) but do
		// NOT publish the connection yet — it becomes visible to the
		// join barrier and the round loop only after the Welcome is
		// fully on the wire, so a RoundStart can never race the
		// handshake's own Send on this Conn.
		w.joined = true
		w.token = token
		ws.mu.Unlock()
	case hello.Resume && hello.Token == w.token:
		ws.mu.Unlock()
	case hello.Resume:
		ws.mu.Unlock()
		reject("worker %d rejoin with bad token", hello.WorkerID)
		return
	default:
		ws.mu.Unlock()
		reject("worker %d already connected", hello.WorkerID)
		return
	}
	if _, err := conn.Send(Welcome{
		Version:   wire.ProtocolVersion,
		Token:     token,
		FullEvery: s.cfg.FullBroadcastEvery,
		Spec:      s.cfg.Spec,
	}); err != nil {
		if !hello.Resume {
			// Release the reserved slot so the worker id can join again.
			ws.mu.Lock()
			w := &ws.workers[hello.WorkerID]
			w.joined = false
			w.token = 0
			ws.mu.Unlock()
		}
		reject("welcome: %v", ctxErr(ctx, err))
		return
	}
	// The Welcome is on the wire: publish the connection. A rejoin is
	// parked for round-boundary admission (closing any stale live or
	// previously parked connection — a valid token proves the old
	// stream is dead or hijacked); a first join goes live immediately
	// (rounds wait for the full fleet behind the join barrier).
	ws.mu.Lock()
	w = &ws.workers[hello.WorkerID]
	w.token = token
	var stale []*Conn
	if hello.Resume {
		stale = append(stale, w.conn, w.pending)
		w.conn = nil
		w.pending = conn
	} else {
		w.conn = conn
		w.lastAck = -1
		ws.joinedCount++
	}
	joined := ws.joinedCount
	ws.mu.Unlock()
	for _, c := range stale {
		if c != nil {
			c.Close()
		}
	}
	if hello.Resume {
		s.cfg.Logf("worker %d reconnected from %s (re-admission at next round)", hello.WorkerID, conn.RemoteAddr())
	} else {
		s.cfg.Logf("worker %d joined from %s (%d/%d)", hello.WorkerID, conn.RemoteAddr(), joined, k)
		select {
		case ws.joinedCh <- struct{}{}:
		default:
		}
	}
}

// evalJob is one background evaluation request: the round it belongs to
// and a snapshot of the parameters after that round.
type evalJob struct {
	round  int
	params []float64
}

// Serve accepts the K workers, runs the configured number of rounds
// through the shared round core, and shuts the workers down, returning
// the final test accuracy. Workers that stall past the round deadline
// are marked missing for the round but stay connected; workers whose
// connection breaks are evicted and may rejoin at a later round
// boundary with their session token. Files below the replica quorum
// drop out of aggregation; training only fails when no file meets
// quorum. Accuracy/loss evaluation runs on parameter snapshots in a
// background goroutine, so workers never wait on it between rounds.
// Canceling ctx aborts the accept loop and any in-flight round promptly
// (by closing the listener and worker connections) and returns
// ctx.Err(); the evaluation history recorded up to that point remains
// available via History.
func (s *Server) Serve(ctx context.Context) (float64, error) {
	s.mu.Lock()
	s.serving = true
	s.mu.Unlock()
	defer func() {
		// Rounds are done (or aborted): the engine pool is idle, so it
		// is safe to release here; Engine.Close is idempotent and its
		// read-only accessors (Params, Evaluate) keep working after.
		s.mu.Lock()
		s.serving = false
		s.mu.Unlock()
		s.eng.Close()
	}()
	stop := context.AfterFunc(ctx, s.teardown)
	defer stop()

	acceptDone := make(chan error, 1)
	go s.acceptLoop(ctx, acceptDone)
	defer s.listener.Close() // stop accepting once Serve unwinds

	// Join barrier: wait until all K workers have completed a first
	// handshake. joinedCh is pulsed per join; re-check the count.
	k := s.assignment.K
	for {
		if s.src.joinedWorkers() >= k {
			break
		}
		select {
		case <-s.src.joinedCh:
		case err := <-acceptDone:
			return 0, fmt.Errorf("transport: accept: %w", ctxErr(ctx, err))
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	defer s.src.closeAll()

	// Background evaluation: snapshots stream through evalCh in round
	// order; the goroutine appends to the history, so the serve loop
	// never blocks on model evaluation.
	evalCh := make(chan evalJob, 4)
	evalDone := make(chan struct{})
	go func() {
		defer close(evalDone)
		for job := range evalCh {
			loss := s.eng.EvalLossParams(job.params)
			acc := s.eng.EvaluateParams(job.params)
			s.histMu.Lock()
			s.history.Add(job.round, loss, acc)
			s.histMu.Unlock()
			s.cfg.Logf("round %d: loss=%.4f acc=%.4f", job.round, loss, acc)
		}
	}()
	drainEval := func() {
		close(evalCh)
		<-evalDone
	}

	for t := 0; t < s.cfg.Spec.Rounds; t++ {
		if err := ctx.Err(); err != nil {
			drainEval()
			return 0, err
		}
		stats, err := s.eng.StepOnce(ctx)
		if err != nil {
			drainEval()
			return 0, fmt.Errorf("transport: round %d: %w", t, ctxErr(ctx, err))
		}
		if len(stats.MissingWorkers) > 0 {
			s.cfg.Logf("round %d: missing workers %v (%d degraded, %d dropped files)",
				t, stats.MissingWorkers, stats.DegradedFiles, stats.DroppedFiles)
		}
		if stats.AggregatorDegraded {
			s.cfg.Logf("round %d: aggregator below feasibility floor, degraded to median", t)
		}
		if s.cfg.OnRound != nil {
			s.cfg.OnRound(stats)
		}
		if (t+1)%s.cfg.EvalEvery == 0 || t == s.cfg.Spec.Rounds-1 {
			evalCh <- evalJob{round: t + 1, params: s.eng.Params()}
		}
	}
	drainEval()
	final := s.eng.Evaluate()
	var drain sync.WaitGroup
	for _, c := range s.src.liveConns() {
		c.SetWriteDeadline(time.Now().Add(helloTimeout))
		if _, err := c.Send(Shutdown{FinalAccuracy: final}); err != nil {
			s.cfg.Logf("shutdown send: %v", err)
			continue
		}
		drain.Add(1)
		go func(c *Conn) {
			defer drain.Done()
			c.SetReadDeadline(time.Now().Add(shutdownDrainTimeout))
			for {
				if _, err := c.Recv(); err != nil {
					return // EOF: the worker read the Shutdown and hung up
				}
			}
		}(c)
	}
	drain.Wait()
	return final, nil
}

// workerEntry is one worker's connection-lifecycle state, guarded by
// wireSource.mu.
type workerEntry struct {
	// conn is the live connection (nil before the first join and while
	// the worker is down).
	conn *Conn
	// pending is a validated rejoin connection awaiting admission at
	// the next round boundary.
	pending *Conn
	// token is the session token rejoins must present.
	token uint64
	// joined records that the worker completed a first handshake.
	joined bool
	// lastAck is the last iteration for which the worker returned a
	// valid report (implying it received and applied that round's
	// parameter broadcast); -1 after (re)join forces a full broadcast.
	lastAck int
}

// wireSource is the network GradientSource: it broadcasts RoundStart
// (full parameters or XOR deltas, by acknowledgement state) to the
// connected workers, collects their gradient reports in parallel under
// the per-round deadline, decodes each binary gradient frame directly
// into the engine's arena buffers, and marks absent or misbehaving
// workers missing so the round core's quorum rule decides the fate of
// their files.
type wireSource struct {
	timeout   time.Duration
	fullEvery int
	logf      func(format string, args ...any)

	mu          sync.Mutex
	workers     []workerEntry
	joinedCount int
	joinedCh    chan struct{}

	// files[u] is worker u's assigned file list in slot order.
	files [][]int
	// frames[u] is worker u's decode scratch; its Grads are repointed at
	// the engine's slot buffers each round so decoding fills the arena
	// in place.
	frames []wire.GradFrame
	// prevParams is the parameter vector broadcast last round (the
	// delta base); prevIter the iteration it belongs to (-1 = none).
	prevParams []float64
	prevIter   int
	// fullFrame/deltaFrame are the per-round broadcast encode buffers,
	// shared read-only by every worker goroutine of the round.
	fullFrame, deltaFrame []byte
}

// newWireSource prepares the per-worker state tables.
func newWireSource(asn *assign.Assignment, timeout time.Duration, fullEvery int, logf func(string, ...any)) *wireSource {
	ws := &wireSource{
		timeout:   timeout,
		fullEvery: fullEvery,
		logf:      logf,
		workers:   make([]workerEntry, asn.K),
		joinedCh:  make(chan struct{}, 1),
		files:     make([][]int, asn.K),
		frames:    make([]wire.GradFrame, asn.K),
		prevIter:  -1,
	}
	for u := 0; u < asn.K; u++ {
		ws.files[u] = asn.WorkerFiles(u)
	}
	return ws
}

// joinedWorkers reports how many workers have completed a first join.
func (ws *wireSource) joinedWorkers() int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.joinedCount
}

// liveConns returns the currently connected workers' connections,
// admitting any still-pending rejoins first so a worker that came back
// after the last round still hears the shutdown.
func (ws *wireSource) liveConns() []*Conn {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	var out []*Conn
	for u := range ws.workers {
		w := &ws.workers[u]
		if w.pending != nil {
			if w.conn != nil {
				w.conn.Close()
			}
			w.conn, w.pending = w.pending, nil
		}
		if w.conn != nil {
			out = append(out, w.conn)
		}
	}
	return out
}

// closeAll closes every worker connection (live and pending).
func (ws *wireSource) closeAll() {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for u := range ws.workers {
		w := &ws.workers[u]
		if w.conn != nil {
			w.conn.Close()
			w.conn = nil
		}
		if w.pending != nil {
			w.pending.Close()
			w.pending = nil
		}
	}
}

// admitPending moves validated rejoin connections into the live slots —
// the "next round boundary" of the rejoin handshake. Re-admitted
// workers have lastAck reset so this round sends them the full vector.
func (ws *wireSource) admitPending(t int) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for u := range ws.workers {
		w := &ws.workers[u]
		if w.pending == nil {
			continue
		}
		if w.conn != nil {
			w.conn.Close()
		}
		w.conn, w.pending = w.pending, nil
		w.lastAck = -1
		ws.logf("round %d: worker %d re-admitted", t, u)
	}
}

// Collect implements cluster.GradientSource over TCP. Every connected
// worker is served by its own goroutine (Round methods are safe for
// concurrent use across distinct workers), so one slow worker costs the
// round at most the deadline, not a serial sum of stalls.
func (ws *wireSource) Collect(ctx context.Context, rd *cluster.Round) (cluster.CollectStats, error) {
	t := rd.Iteration()
	ws.admitPending(t)
	if err := ws.prepareBroadcast(t, rd.Params()); err != nil {
		return cluster.CollectStats{}, err
	}
	start := time.Now()
	var commBytes, bcastBytes atomic.Int64
	var wg sync.WaitGroup
	for u := range ws.workers {
		ws.mu.Lock()
		conn := ws.workers[u].conn
		lastAck := ws.workers[u].lastAck
		ws.mu.Unlock()
		if conn == nil {
			rd.MarkMissing(u)
			continue
		}
		wg.Add(1)
		go func(u int, conn *Conn, lastAck int) {
			defer wg.Done()
			if !ws.collectWorker(t, u, conn, lastAck, rd, &commBytes, &bcastBytes) {
				rd.MarkMissing(u)
			}
		}(u, conn, lastAck)
	}
	wg.Wait()
	// Roll the delta base forward: next round's deltas patch this
	// round's vector.
	if ws.prevParams == nil {
		ws.prevParams = make([]float64, len(rd.Params()))
	}
	copy(ws.prevParams, rd.Params())
	ws.prevIter = t
	if err := ctx.Err(); err != nil {
		return cluster.CollectStats{}, err
	}
	return cluster.CollectStats{
		Communication:  time.Since(start),
		CommBytes:      commBytes.Load(),
		BroadcastBytes: bcastBytes.Load(),
	}, nil
}

// prepareBroadcast encodes this round's shared params frames: the full
// frame (always needed for unacknowledged or refresh rounds) and the
// delta frame against the previous round's vector when any worker can
// use it. Both buffers are read-only for the round.
func (ws *wireSource) prepareBroadcast(t int, params []float64) error {
	var err error
	ws.fullFrame, err = wire.AppendParamsFull(ws.fullFrame[:0], params)
	if err != nil {
		return fmt.Errorf("transport: broadcast: %w", err)
	}
	ws.deltaFrame = ws.deltaFrame[:0]
	if !ws.refreshRound(t) && ws.prevIter == t-1 {
		ws.deltaFrame, err = wire.AppendParamsDelta(ws.deltaFrame[:0], ws.prevParams, params)
		if err != nil {
			return fmt.Errorf("transport: broadcast: %w", err)
		}
	}
	return nil
}

// refreshRound reports whether round t is a full-broadcast refresh.
func (ws *wireSource) refreshRound(t int) bool {
	return t == 0 || ws.fullEvery <= 1 || t%ws.fullEvery == 0
}

// collectWorker runs one worker's round trip: RoundStart out (full or
// delta parameters by acknowledgement state), gradient report in, frame
// decoded into the arena. It reports whether the worker delivered;
// false marks the worker missing for this round. A deadline timeout
// leaves the connection open (the resumable framed stream discards the
// late report next round); a send/receive failure or malformed message
// evicts the worker.
func (ws *wireSource) collectWorker(t, u int, conn *Conn, lastAck int, rd *cluster.Round, commBytes, bcastBytes *atomic.Int64) bool {
	assigned := make(map[int][]int, len(ws.files[u]))
	for _, v := range ws.files[u] {
		assigned[v] = rd.FileSamples(v)
	}
	rs := RoundStart{Iteration: t, Files: assigned}
	if len(ws.deltaFrame) > 0 && lastAck == t-1 {
		rs.ParamsFrame = ws.deltaFrame
		rs.BaseIteration = t - 1
	} else {
		rs.ParamsFrame = ws.fullFrame
	}
	if ws.timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(ws.timeout))
	}
	n, err := conn.Send(rs)
	if ws.timeout > 0 {
		conn.SetWriteDeadline(time.Time{})
	}
	if err != nil {
		// A failed or partial send poisons the outbound stream — unlike
		// reads it cannot be resumed, so the worker is evicted.
		ws.evict(t, u, conn, fmt.Errorf("send: %w", err))
		return false
	}
	bcastBytes.Add(int64(n))
	if ws.timeout > 0 {
		conn.SetReadDeadline(time.Now().Add(ws.timeout))
		defer conn.SetReadDeadline(time.Time{})
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				// Missed the deadline: missing this round, but the framed
				// stream survives — any partial report stays buffered and
				// is discarded as stale next round.
				ws.logf("round %d: worker %d missed the deadline", t, u)
				return false
			}
			ws.evict(t, u, conn, err)
			return false
		}
		rep, ok := msg.(GradientReport)
		if !ok {
			ws.evict(t, u, conn, fmt.Errorf("expected GradientReport, got %T", msg))
			return false
		}
		if rep.Iteration < t {
			// A stale report from a round whose deadline already passed;
			// discard and keep reading for the current round.
			continue
		}
		if rep.Iteration > t || rep.WorkerID != u {
			ws.evict(t, u, conn, fmt.Errorf("report (worker %d, round %d), want (%d, %d)", rep.WorkerID, rep.Iteration, u, t))
			return false
		}
		if len(rep.Frame) == 0 {
			// Explicit skip: alive, no gradients this round — but the
			// round's parameters were received and applied, so the skip
			// still acknowledges the broadcast.
			ws.logf("worker %d skipped round %d", u, t)
			ws.ack(u, t)
			return false
		}
		return ws.deliver(t, u, conn, rep.Frame, rd, commBytes)
	}
}

// ack records that worker u applied round t's parameter broadcast.
func (ws *wireSource) ack(u, t int) {
	ws.mu.Lock()
	ws.workers[u].lastAck = t
	ws.mu.Unlock()
}

// deliver decodes the report frame straight into the engine's slot
// buffers and hands them to the round. Any structural mismatch —
// truncated frame, wrong worker id, wrong file set — evicts the worker:
// its buffers may now hold partial data, but marking it missing keeps
// them out of every vote.
func (ws *wireSource) deliver(t, u int, conn *Conn, frameBytes []byte, rd *cluster.Round, commBytes *atomic.Int64) bool {
	wf := ws.files[u]
	f := &ws.frames[u]
	if cap(f.Grads) < len(wf) {
		f.Grads = make([][]float64, len(wf))
	}
	f.Grads = f.Grads[:len(wf)]
	for j := range wf {
		f.Grads[j] = rd.Buffer(u, j)
	}
	consumed, err := wire.DecodeGradFrame(frameBytes, f)
	switch {
	case err != nil:
		ws.evict(t, u, conn, err)
		return false
	case consumed != len(frameBytes):
		ws.evict(t, u, conn, fmt.Errorf("frame has %d trailing bytes", len(frameBytes)-consumed))
		return false
	case f.Worker != u:
		ws.evict(t, u, conn, fmt.Errorf("frame claims worker %d", f.Worker))
		return false
	case !slices.Equal(f.Files, wf):
		ws.evict(t, u, conn, fmt.Errorf("frame files %v, want %v", f.Files, wf))
		return false
	}
	for j := range wf {
		if err := rd.Deliver(u, j, f.Grads[j]); err != nil {
			ws.evict(t, u, conn, err)
			return false
		}
	}
	commBytes.Add(int64(len(frameBytes)))
	ws.ack(u, t)
	return true
}

// evict removes a worker whose stream broke or misbehaved: its
// connection is closed and its slot cleared, so later rounds mark it
// missing up front — until it rejoins with its session token, at which
// point it is re-admitted at a round boundary. Safe for concurrent
// calls on distinct workers.
func (ws *wireSource) evict(t, u int, conn *Conn, err error) {
	ws.logf("round %d: evicting worker %d: %v", t, u, err)
	conn.Close()
	ws.mu.Lock()
	if ws.workers[u].conn == conn {
		ws.workers[u].conn = nil
	}
	ws.mu.Unlock()
}
