package transport

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/data"
	"byzshield/internal/model"
	"byzshield/internal/trainer"
	"byzshield/internal/vote"
)

// ServerConfig configures the TCP parameter server.
type ServerConfig struct {
	Spec Spec
	// Aggregator overrides the rule named by Spec.Aggregator; leave nil
	// to resolve it from the registry.
	Aggregator aggregate.Aggregator
	// Logf receives progress lines; nil disables logging.
	Logf func(format string, args ...any)
	// EvalEvery controls accuracy evaluation cadence (default: every
	// 10 rounds).
	EvalEvery int
}

// Server is the TCP parameter server: it accepts K workers, drives the
// synchronous rounds of Algorithm 1 over the network, and maintains the
// global model.
type Server struct {
	cfg        ServerConfig
	listener   net.Listener
	assignment *assign.Assignment
	mdl        model.Model
	train      *data.Dataset
	test       *data.Dataset
	params     []float64
	opt        *trainer.SGD
	sampler    *data.BatchSampler
	history    trainer.History

	mu    sync.Mutex
	conns []*Conn
}

// NewServer validates the config and binds the listener on addr
// (e.g. "127.0.0.1:0" to pick a free port).
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Aggregator == nil {
		agg, err := cfg.Spec.BuildAggregator()
		if err != nil {
			return nil, err
		}
		cfg.Aggregator = agg
	}
	if cfg.Spec.Rounds < 1 {
		return nil, fmt.Errorf("transport: rounds %d < 1", cfg.Spec.Rounds)
	}
	asn, err := cfg.Spec.BuildAssignment()
	if err != nil {
		return nil, err
	}
	cfg.Spec.K = asn.K
	mdl, err := cfg.Spec.BuildModel()
	if err != nil {
		return nil, err
	}
	train, test, err := cfg.Spec.BuildData()
	if err != nil {
		return nil, err
	}
	if cfg.Spec.BatchSize < asn.F {
		return nil, fmt.Errorf("transport: batch %d < files %d", cfg.Spec.BatchSize, asn.F)
	}
	sampler, err := data.NewBatchSampler(train.Len(), cfg.Spec.BatchSize, cfg.Spec.Seed)
	if err != nil {
		return nil, err
	}
	opt, err := trainer.NewSGD(cfg.Spec.Schedule, cfg.Spec.Momentum, mdl.NumParams())
	if err != nil {
		return nil, err
	}
	if cfg.EvalEvery < 1 {
		cfg.EvalEvery = 10
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:        cfg,
		listener:   ln,
		assignment: asn,
		mdl:        mdl,
		train:      train,
		test:       test,
		params:     model.InitParams(mdl, cfg.Spec.Seed),
		opt:        opt,
		sampler:    sampler,
	}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close releases the listener.
func (s *Server) Close() error { return s.listener.Close() }

// History returns the recorded evaluation series.
func (s *Server) History() *trainer.History { return &s.history }

// track registers a worker connection for cancellation teardown.
func (s *Server) track(c *Conn) {
	s.mu.Lock()
	s.conns = append(s.conns, c)
	s.mu.Unlock()
}

// teardown closes the listener and every tracked connection, unblocking
// any in-flight Accept/Send/Recv.
func (s *Server) teardown() {
	s.listener.Close()
	s.mu.Lock()
	conns := append([]*Conn(nil), s.conns...)
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Serve accepts the K workers, runs the configured number of rounds, and
// shuts the workers down, returning the final test accuracy. Canceling
// ctx aborts the accept loop and any in-flight round promptly (by
// closing the listener and worker connections) and returns ctx.Err();
// the evaluation history recorded up to that point remains available via
// History.
func (s *Server) Serve(ctx context.Context) (float64, error) {
	stop := context.AfterFunc(ctx, s.teardown)
	defer stop()

	k := s.assignment.K
	conns := make([]*Conn, k)
	for accepted := 0; accepted < k; accepted++ {
		raw, err := s.listener.Accept()
		if err != nil {
			return 0, fmt.Errorf("transport: accept: %w", ctxErr(ctx, err))
		}
		conn := NewConn(raw)
		s.track(conn)
		msg, err := conn.Recv()
		if err != nil {
			return 0, fmt.Errorf("transport: hello: %w", ctxErr(ctx, err))
		}
		hello, ok := msg.(Hello)
		if !ok {
			return 0, fmt.Errorf("transport: expected Hello, got %T", msg)
		}
		if hello.WorkerID < 0 || hello.WorkerID >= k {
			return 0, fmt.Errorf("transport: worker id %d out of range [0,%d)", hello.WorkerID, k)
		}
		if conns[hello.WorkerID] != nil {
			return 0, fmt.Errorf("transport: worker %d connected twice", hello.WorkerID)
		}
		if err := conn.Send(Welcome{Spec: s.cfg.Spec}); err != nil {
			return 0, fmt.Errorf("transport: welcome: %w", ctxErr(ctx, err))
		}
		conns[hello.WorkerID] = conn
		s.cfg.Logf("worker %d joined from %s (%d/%d)", hello.WorkerID, conn.RemoteAddr(), accepted+1, k)
	}
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()

	for t := 0; t < s.cfg.Spec.Rounds; t++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if err := s.runRound(t, conns); err != nil {
			return 0, fmt.Errorf("transport: round %d: %w", t, ctxErr(ctx, err))
		}
		if (t+1)%s.cfg.EvalEvery == 0 || t == s.cfg.Spec.Rounds-1 {
			acc := model.Accuracy(s.mdl, s.params, s.test)
			loss := s.mdl.Loss(s.params, s.train, probe(s.train.Len()))
			s.history.Add(t+1, loss, acc)
			s.cfg.Logf("round %d: loss=%.4f acc=%.4f", t+1, loss, acc)
		}
	}
	final := model.Accuracy(s.mdl, s.params, s.test)
	for _, c := range conns {
		if err := c.Send(Shutdown{FinalAccuracy: final}); err != nil {
			log.Printf("transport: shutdown send: %v", err)
		}
	}
	return final, nil
}

// runRound drives one synchronous protocol round over the network.
func (s *Server) runRound(t int, conns []*Conn) error {
	asn := s.assignment
	batch := s.sampler.Next()
	files, err := data.PartitionFiles(batch, asn.F)
	if err != nil {
		return err
	}

	// Broadcast RoundStart with each worker's file contents.
	var sendErr error
	var wg sync.WaitGroup
	var mu sync.Mutex
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			assigned := make(map[int][]int, asn.L)
			for _, v := range asn.WorkerFiles(u) {
				assigned[v] = files[v]
			}
			err := conns[u].Send(RoundStart{
				Iteration: t,
				Params:    s.params,
				Files:     assigned,
			})
			if err != nil {
				mu.Lock()
				if sendErr == nil {
					sendErr = err
				}
				mu.Unlock()
			}
		}(u)
	}
	wg.Wait()
	if sendErr != nil {
		return sendErr
	}

	// Collect reports.
	reports := make([]*GradientReport, asn.K)
	var recvErr error
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			msg, err := conns[u].Recv()
			if err != nil {
				mu.Lock()
				if recvErr == nil {
					recvErr = fmt.Errorf("worker %d: %w", u, err)
				}
				mu.Unlock()
				return
			}
			rep, ok := msg.(GradientReport)
			if !ok {
				mu.Lock()
				if recvErr == nil {
					recvErr = fmt.Errorf("worker %d: expected GradientReport, got %T", u, msg)
				}
				mu.Unlock()
				return
			}
			reports[u] = &rep
		}(u)
	}
	wg.Wait()
	if recvErr != nil {
		return recvErr
	}

	// Decode the binary gradient frames and index by (worker, file).
	grads := make([]map[int][]float64, asn.K)
	for u, rep := range reports {
		if rep.Iteration != t {
			return fmt.Errorf("worker %d reported iteration %d, want %d", u, rep.Iteration, t)
		}
		var frame GradFrame
		consumed, err := DecodeGradFrame(rep.Frame, &frame)
		if err != nil {
			return fmt.Errorf("worker %d frame: %w", u, err)
		}
		if consumed != len(rep.Frame) {
			return fmt.Errorf("worker %d frame has %d trailing bytes", u, len(rep.Frame)-consumed)
		}
		if frame.Worker != rep.WorkerID {
			return fmt.Errorf("worker %d frame claims worker %d", rep.WorkerID, frame.Worker)
		}
		m := make(map[int][]float64, len(frame.Files))
		for i, v := range frame.Files {
			m[v] = frame.Grads[i]
		}
		grads[u] = m
	}

	// Vote and aggregate exactly as the in-process engine does.
	winners := make([][]float64, asn.F)
	for v := 0; v < asn.F; v++ {
		replicas := make([][]float64, 0, asn.R)
		for _, u := range asn.FileWorkers(v) {
			g, ok := grads[u][v]
			if !ok {
				return fmt.Errorf("worker %d omitted file %d", u, v)
			}
			replicas = append(replicas, g)
		}
		if asn.R == 1 {
			winners[v] = replicas[0]
			continue
		}
		res, err := vote.Majority(replicas)
		if err != nil {
			return err
		}
		winners[v] = res.Winner
	}
	update, err := s.cfg.Aggregator.Aggregate(winners)
	if err != nil {
		return err
	}
	scale := float64(asn.F) / float64(s.cfg.Spec.BatchSize)
	for i := range update {
		update[i] *= scale
	}
	s.opt.Step(s.params, update, t)
	return nil
}

// probe returns deterministic sample indices for loss evaluation.
func probe(n int) []int {
	size := 256
	if size > n {
		size = n
	}
	idx := make([]int, size)
	stride := n / size
	if stride < 1 {
		stride = 1
	}
	for i := range idx {
		idx[i] = (i * stride) % n
	}
	return idx
}
