package transport

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/cluster"
	"byzshield/internal/obs"
	"byzshield/internal/trainer"
	"byzshield/internal/wire"
)

// DefaultRoundTimeout is the per-round collection deadline applied
// when ServerConfig.RoundTimeout is zero. A worker whose report has
// not arrived this long after the round broadcast is marked missing
// and the round proceeds over the survivors.
const DefaultRoundTimeout = 30 * time.Second

// DefaultFullBroadcastEvery is the full-parameter-broadcast cadence
// applied when ServerConfig.FullBroadcastEvery is zero: every 16th
// round ships the whole vector, the rounds between ship bit-exact XOR
// deltas.
const DefaultFullBroadcastEvery = 16

// helloTimeout bounds how long an accepted connection may take to send
// its Hello before the handshake rejects it and moves on; without it a
// half-open connection could stall worker admission forever.
const helloTimeout = 30 * time.Second

// shutdownDrainTimeout bounds how long the reader pumps keep draining
// a worker's connection after Shutdown is sent. Closing a socket with
// unread data resets it, which would destroy the buffered Shutdown
// before a lagging worker reads it; pumping until the worker closes
// its end hands every straggler its final accuracy, and the deadline
// guarantees the pump goroutines join even if a worker never hangs up.
const shutdownDrainTimeout = 10 * time.Second

// ServerConfig configures the TCP parameter server.
type ServerConfig struct {
	Spec Spec
	// Aggregator overrides the rule named by Spec.Aggregator; leave nil
	// to resolve it from the registry.
	Aggregator aggregate.Aggregator
	// Logf receives progress lines; nil disables logging.
	Logf func(format string, args ...any)
	// EvalEvery controls accuracy evaluation cadence (default: every
	// 10 rounds). Evaluation runs on a parameter snapshot in a
	// background goroutine, so workers never idle behind it.
	EvalEvery int
	// RoundTimeout is the round's report-collection deadline: 0 selects
	// DefaultRoundTimeout, negative disables the deadline (the server
	// then waits indefinitely). A worker past the deadline is marked
	// missing for the round but keeps its connection — its reader pump
	// retires the late report the moment it arrives and the worker
	// participates again next round. Only a broken connection or a
	// malformed message evicts a worker, and an evicted worker may
	// rejoin with its session token.
	RoundTimeout time.Duration
	// FullBroadcastEvery is the cadence of full parameter broadcasts: 1
	// ships the whole vector every round (no deltas), N > 1 ships it on
	// every N-th round plus to every joining/rejoining or unacknowledged
	// worker, with bit-exact XOR deltas in between. 0 selects
	// DefaultFullBroadcastEvery.
	FullBroadcastEvery int
	// Uplink selects the worker→PS gradient codec tier the server asks
	// its workers to use: TierDelta (the zero value) lets each worker's
	// encoder self-select raw or XOR-delta per frame, TierRaw forces
	// self-contained raw frames — both lossless and bit-identical to the
	// in-process engine — and the lossy TierSign / TierInt8 ship 1-bit /
	// 8-bit linear-quantized gradients (see internal/wire). The tier is
	// negotiated per connection: a worker whose Hello does not offer the
	// configured tier is downgraded to the best lossless tier it speaks
	// (delta, then raw) — one lossy tier is never substituted for
	// another.
	Uplink wire.UplinkTier
	// Quorum is the minimum surviving replicas a file needs to be voted
	// (0 → majority of the nominal replication, R/2+1); see
	// cluster.Config.Quorum.
	Quorum int
	// Parallelism is the width of the PS-side engine pool used for vote
	// sharding and chunked aggregation (0 → GOMAXPROCS, 1 → serial).
	Parallelism int
	// Shards splits the aggregation plane into N contiguous coordinate
	// ranges (wire.ShardRange): each worker ships one report frame per
	// shard, and the PS votes a shard the moment the last live worker's
	// frame for it lands — while other shards still collect. 0 or 1
	// keeps whole-vector reports. Counts above the model dimension clamp
	// to it; counts above 64 are rejected (the per-frame overhead
	// dominates long before that). The parameter trajectory is
	// bit-identical to the unsharded plane (see internal/cluster).
	Shards int
	// Pipeline overlaps consecutive rounds: while round t's tail (vote,
	// aggregate, step) still runs, the server draws round t+1's batch
	// and broadcasts its sample lists as RoundPrep frames, so round
	// t+1's RoundStart carries no Files map and is one shared
	// pre-encoded frame written to every prepped worker. Bit-identical
	// to serial rounds (the batch stream is consumed in the same order).
	Pipeline bool
	// OnRound, when non-nil, receives every completed round's
	// statistics — including missing workers, degraded/dropped file
	// counts, and connection-lifecycle counters. It runs on the serve
	// loop between rounds: the next round starts only after it returns.
	OnRound func(cluster.RoundStats)
	// Metrics, when non-nil, receives the server's metric families at
	// construction: the engine and detection instruments (via
	// cluster.Config.Metrics) plus the transport's own — live lifecycle
	// counters bridged from the same atomics Counters reads, pump inbox
	// depth, and the current round. Every hot-path update is an atomic
	// store into preallocated state; the registry is only walked at
	// scrape time.
	Metrics *obs.Registry
	// Tracer, when non-nil, records one RoundTrace per round (via
	// cluster.Config.Tracer) and has the background evaluation span
	// attached after the fact.
	Tracer *obs.Tracer
}

// Counters are the server's cumulative connection-lifecycle totals,
// exported for fleet monitoring (byzps prints them at shutdown).
type Counters struct {
	// Joins counts first-time worker admissions.
	Joins int64
	// Rejoins counts re-admissions of returning workers at round
	// boundaries.
	Rejoins int64
	// Evictions counts live connections torn down mid-run (broken
	// streams, protocol violations) — shutdown teardown excluded.
	Evictions int64
	// StaleFrames counts gradient reports that arrived too late for
	// their round and were retired by the reader pumps without entering
	// any vote.
	StaleFrames int64
	// BlacklistRejections counts rejoin attempts refused with a typed
	// Reject because the detection layer blacklisted the worker.
	BlacklistRejections int64
}

// Server is the TCP parameter server: it accepts K workers and drives
// the synchronous rounds of Algorithm 1 over the network. The per-round
// protocol itself — majority vote with quorum, robust aggregation,
// momentum step — executes in the shared cluster round core; the server
// merely installs a network GradientSource, so the wire path inherits
// the gradient arena, the parallel vote sharding, and the chunked
// aggregation of the in-process engine and reproduces its parameter
// trajectory bit-for-bit for the same Spec.
//
// Every accepted worker connection is served by a dedicated reader
// pump: a goroutine that decodes frames as they arrive and feeds
// already-parsed reports into the collection inbox, so the round loop
// never blocks on a socket and a late report is retired the moment it
// lands instead of clogging the next round's collection window.
//
// The accept loop runs for the whole Serve call: workers that crash or
// are evicted mid-run can reconnect (Hello with Resume and their
// session token) and are re-admitted at the next round boundary, where
// they receive a full parameter broadcast and resume contributing their
// file gradients.
type Server struct {
	cfg        ServerConfig
	listener   net.Listener
	assignment *assign.Assignment
	eng        *cluster.Engine
	src        *wireSource
	fleet      *obs.FleetTable

	histMu  sync.Mutex
	history trainer.History

	mu      sync.Mutex
	conns   []*Conn
	serving bool
}

// NewServer validates the config and binds the listener on addr
// (e.g. "127.0.0.1:0" to pick a free port).
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Aggregator == nil {
		agg, err := cfg.Spec.BuildAggregator()
		if err != nil {
			return nil, err
		}
		cfg.Aggregator = agg
	}
	if cfg.Spec.Rounds < 1 {
		return nil, fmt.Errorf("transport: rounds %d < 1", cfg.Spec.Rounds)
	}
	if _, err := cfg.Spec.BuildFault(); err != nil {
		return nil, err
	}
	asn, err := cfg.Spec.BuildAssignment()
	if err != nil {
		return nil, err
	}
	cfg.Spec.K = asn.K
	mdl, err := cfg.Spec.BuildModel()
	if err != nil {
		return nil, err
	}
	train, test, err := cfg.Spec.BuildData()
	if err != nil {
		return nil, err
	}
	if cfg.EvalEvery < 1 {
		cfg.EvalEvery = 10
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = DefaultRoundTimeout
	}
	if cfg.FullBroadcastEvery == 0 {
		cfg.FullBroadcastEvery = DefaultFullBroadcastEvery
	}
	if cfg.FullBroadcastEvery < 1 {
		return nil, fmt.Errorf("transport: full-broadcast cadence %d < 1", cfg.FullBroadcastEvery)
	}
	det, err := cfg.Spec.BuildDetector()
	if err != nil {
		return nil, err
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("transport: shard count %d < 0", cfg.Shards)
	}
	if cfg.Shards > 64 {
		return nil, fmt.Errorf("transport: shard count %d > 64", cfg.Shards)
	}
	if !cfg.Uplink.Valid() {
		return nil, fmt.Errorf("transport: unknown uplink tier %d", cfg.Uplink)
	}
	shards := wire.ShardCount(cfg.Shards, mdl.NumParams())
	src := newWireSource(asn, cfg.RoundTimeout, cfg.FullBroadcastEvery, shards, cfg.Pipeline, cfg.Spec.Rounds, cfg.Logf)
	src.uplink = cfg.Uplink
	eng, err := cluster.New(cluster.Config{
		Assignment:   asn,
		Model:        mdl,
		Train:        train,
		Test:         test,
		BatchSize:    cfg.Spec.BatchSize,
		Aggregator:   cfg.Aggregator,
		Schedule:     cfg.Spec.Schedule,
		Momentum:     cfg.Spec.Momentum,
		Seed:         cfg.Spec.Seed,
		Quorum:       cfg.Quorum,
		Parallelism:  cfg.Parallelism,
		Shards:       shards,
		PrepareAhead: cfg.Pipeline,
		Detector:     det,
		Detection:    cfg.Spec.DetectorParams.Policy(),
		Source:       src,
		Metrics:      cfg.Metrics,
		Tracer:       cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	// Bind the engine's stable gradient buffers to the source: the
	// reader pumps decode current-round reports straight into them.
	src.bind(eng, mdl.NumParams())
	// The fleet table exists unconditionally (it backs /statusz and the
	// per-worker /metrics series, and its updates are single atomic
	// stores); the registry families are only added when metrics are on.
	fleet := obs.NewFleetTable(asn.K)
	fleet.TierName = func(code int32) string { return wire.UplinkTier(code).String() }
	src.fleet = fleet
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		eng.Close()
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		listener:   ln,
		assignment: asn,
		eng:        eng,
		src:        src,
		fleet:      fleet,
	}
	if cfg.Metrics != nil {
		s.registerInstruments(cfg.Metrics)
	}
	return s, nil
}

// Fleet returns the server's per-worker status table — the backing
// store of /statusz and the worker-labeled /metrics series.
func (s *Server) Fleet() *obs.FleetTable { return s.fleet }

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close releases the listener and, when no Serve is in flight, the
// engine's worker-pool goroutines. Close is safe to call concurrently
// with a running Serve: the engine must not be torn down under a
// mid-flight round, so in that case Serve's own exit path releases it.
func (s *Server) Close() error {
	err := s.listener.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.serving {
		s.eng.Close()
	}
	return err
}

// History returns the recorded evaluation series. Valid once Serve has
// returned (evaluation runs on a background goroutine during a run).
func (s *Server) History() *trainer.History {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	return &s.history
}

// Params returns a copy of the current model parameter vector — the
// wire-path counterpart of cluster.Engine.Params, used to verify
// trajectory identity between the two paths.
func (s *Server) Params() []float64 { return s.eng.Params() }

// Counters returns the cumulative connection-lifecycle totals.
func (s *Server) Counters() Counters {
	return Counters{
		Joins:               s.src.joins.Load(),
		Rejoins:             s.src.rejoins.Load(),
		Evictions:           s.src.evictions.Load(),
		StaleFrames:         s.src.staleFrames.Load(),
		BlacklistRejections: s.src.blacklistRejections.Load(),
	}
}

// track registers a connection for cancellation teardown.
func (s *Server) track(c *Conn) {
	s.mu.Lock()
	s.conns = append(s.conns, c)
	s.mu.Unlock()
}

// teardown closes the listener and every tracked connection, unblocking
// any in-flight Accept/Send/Recv. It marks the source closing first so
// the pump exits the teardown provokes are not miscounted as
// evictions — cancellation is a deliberate shutdown.
func (s *Server) teardown() {
	s.src.markClosing()
	s.listener.Close()
	s.mu.Lock()
	conns := append([]*Conn(nil), s.conns...)
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// newToken draws a fresh random session token.
func newToken() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// acceptLoop accepts connections for the whole run, handshaking each on
// its own goroutine: initial joins before round 1, rejoins any time
// after. It exits when the listener closes (teardown or end of Serve).
func (s *Server) acceptLoop(ctx context.Context, done chan<- error) {
	for {
		raw, err := s.listener.Accept()
		if err != nil {
			done <- ctxErr(ctx, err)
			return
		}
		conn := NewConn(raw)
		s.track(conn)
		go s.handshake(ctx, conn)
	}
}

// handshake runs one connection's Hello/Welcome exchange. A bad
// handshake rejects this connection only: the listener keeps accepting,
// so one malformed, duplicate, or stale-token Hello cannot tear down
// the cluster.
func (s *Server) handshake(ctx context.Context, conn *Conn) {
	reject := func(format string, args ...any) {
		s.cfg.Logf("rejecting %s: %s", conn.RemoteAddr(), fmt.Sprintf(format, args...))
		conn.Close()
	}
	conn.SetReadDeadline(time.Now().Add(helloTimeout))
	msg, err := conn.Recv()
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		if errors.Is(err, wire.ErrVersionMismatch) {
			// The peer speaks another protocol version — its very first
			// frame header says so, before any payload parses. Tell it
			// with a typed Reject instead of a silent close (an old peer
			// may not parse the v6 Reject frame, but the bytes on its
			// socket are deterministic and diagnosable either way).
			s.rejectVersion(conn, fmt.Sprintf("%v", err))
			return
		}
		reject("hello: %v", ctxErr(ctx, err))
		return
	}
	hello, ok := msg.(Hello)
	if !ok {
		reject("expected Hello, got %T", msg)
		return
	}
	if hello.Version != wire.ProtocolVersion {
		s.rejectVersion(conn, fmt.Sprintf("protocol version %d, want %d", hello.Version, wire.ProtocolVersion))
		return
	}
	if !precisionOffered(hello.Precisions, wire.PrecisionF64) {
		// This server aggregates at float64; a worker that only speaks
		// the f32 codec set cannot parse its frames.
		s.rejectPrecision(conn, hello.WorkerID, wire.PrecisionF64, hello.Precisions)
		return
	}
	tier := negotiateTier(s.src.uplink, hello.Tiers)
	k := s.assignment.K
	if hello.WorkerID < 0 || hello.WorkerID >= k {
		reject("worker id %d out of range [0,%d)", hello.WorkerID, k)
		return
	}
	token, err := newToken()
	if err != nil {
		reject("token: %v", err)
		return
	}
	ws := s.src
	ws.mu.Lock()
	w := &ws.workers[hello.WorkerID]
	switch {
	case w.blacklisted:
		// Blacklist beats token validation: even a valid session token is
		// permanently revoked, and the worker is told so with a typed
		// Reject instead of a silent close.
		ws.mu.Unlock()
		s.rejectBlacklisted(conn, hello.WorkerID)
		return
	case !w.joined:
		// First join: reserve the slot (blocks duplicate Hellos) but do
		// NOT publish the connection yet — it becomes visible to the
		// join barrier and the round loop only after the Welcome is
		// fully on the wire, so a RoundStart can never race the
		// handshake's own Send on this Conn.
		w.joined = true
		w.token = token
		ws.mu.Unlock()
	case hello.Resume && hello.Token == w.token:
		ws.mu.Unlock()
	case hello.Resume:
		ws.mu.Unlock()
		reject("worker %d rejoin with bad token", hello.WorkerID)
		return
	default:
		ws.mu.Unlock()
		reject("worker %d already connected", hello.WorkerID)
		return
	}
	if _, err := conn.Send(Welcome{
		Version:   wire.ProtocolVersion,
		Token:     token,
		FullEvery: s.cfg.FullBroadcastEvery,
		Uplink:    tier,
		Spec:      s.cfg.Spec,
		Shards:    ws.shards,
		Pipeline:  ws.pipeline,
		Precision: wire.PrecisionF64,
	}); err != nil {
		if !hello.Resume {
			// Release the reserved slot so the worker id can join again.
			ws.mu.Lock()
			w := &ws.workers[hello.WorkerID]
			w.joined = false
			w.token = 0
			ws.mu.Unlock()
		}
		reject("welcome: %v", ctxErr(ctx, err))
		return
	}
	// The Welcome is on the wire: publish the connection. A rejoin is
	// parked for round-boundary admission (closing any stale live or
	// previously parked connection — a valid token proves the old
	// stream is dead or hijacked); a first join goes live immediately
	// (rounds wait for the full fleet behind the join barrier) with its
	// reader pump started.
	ws.mu.Lock()
	if ws.closing {
		ws.mu.Unlock()
		reject("server shutting down")
		return
	}
	w = &ws.workers[hello.WorkerID]
	if w.blacklisted {
		// Blacklisted while the Welcome was in flight.
		ws.mu.Unlock()
		s.rejectBlacklisted(conn, hello.WorkerID)
		return
	}
	w.token = token
	w.tier = tier
	var stale []*Conn
	if hello.Resume {
		stale = append(stale, w.conn, w.pending)
		w.conn = nil
		w.pending = conn
	} else {
		w.conn = conn
		w.lastAck = -1
		ws.joinedCount++
		ws.joins.Add(1)
		ws.startPump(hello.WorkerID, conn)
	}
	joined := ws.joinedCount
	ws.mu.Unlock()
	for _, c := range stale {
		if c != nil {
			c.Close()
		}
	}
	if tier != s.src.uplink {
		s.cfg.Logf("worker %d: uplink tier %s unsupported by peer, downgraded to %s", hello.WorkerID, s.src.uplink, tier)
	}
	s.fleet.SetTier(hello.WorkerID, int32(tier))
	s.fleet.Touch(hello.WorkerID, time.Now())
	if hello.Resume {
		// State flips to live at admitPending — the round boundary where
		// the rejoin actually takes effect.
		s.cfg.Logf("worker %d reconnected from %s (re-admission at next round)", hello.WorkerID, conn.RemoteAddr())
	} else {
		s.fleet.SetState(hello.WorkerID, obs.WorkerLive)
		s.cfg.Logf("worker %d joined from %s (%d/%d)", hello.WorkerID, conn.RemoteAddr(), joined, k)
		select {
		case ws.joinedCh <- struct{}{}:
		default:
		}
	}
}

// negotiateTier picks a connection's uplink codec tier: the server's
// configured tier when the worker's Hello offers it, otherwise the best
// lossless tier the worker speaks — delta, then raw. One lossy tier is
// never substituted for another (a worker built for int8 frames must
// not silently receive sign frames, whose loss profile it was not
// validated against). An empty mask is read as the lossless pair: any
// peer that reached negotiation speaks raw and delta — those predate
// the tier handshake — while a lossy tier requires an explicit opt-in
// bit.
func negotiateTier(want wire.UplinkTier, mask uint8) wire.UplinkTier {
	if mask == 0 {
		mask = wire.TierRaw.Mask() | wire.TierDelta.Mask()
	}
	if mask&want.Mask() != 0 {
		return want
	}
	if mask&wire.TierDelta.Mask() != 0 {
		return wire.TierDelta
	}
	return wire.TierRaw
}

// rejectVersion refuses a handshake whose peer announced (or framed)
// another protocol version, with a typed Reject so a diagnosable record
// of the mismatch reaches the peer's socket before the close.
func (s *Server) rejectVersion(conn *Conn, reason string) {
	s.cfg.Logf("rejecting %s: %s", conn.RemoteAddr(), reason)
	conn.SetWriteDeadline(time.Now().Add(helloTimeout))
	if _, err := conn.Send(Reject{Code: RejectVersion, Reason: reason}); err != nil {
		s.cfg.Logf("reject send to %s: %v", conn.RemoteAddr(), err)
	}
	conn.Close()
}

// precisionOffered reports whether a Hello precision mask includes p. A
// zero mask is read as f64-only — the pre-v7 default every peer speaks
// unless its Hello explicitly narrows the set.
func precisionOffered(mask uint8, p wire.Precision) bool {
	if mask == 0 {
		mask = wire.PrecisionF64.Mask()
	}
	return mask&p.Mask() != 0
}

// rejectPrecision refuses a worker whose precision mask excludes the
// width this server runs at, with a typed Reject so the worker learns
// the mismatch is a configuration error rather than a transient fault.
func (s *Server) rejectPrecision(conn *Conn, u int, want wire.Precision, mask uint8) {
	reason := fmt.Sprintf("worker %d offers precision mask %#x, server runs %s", u, mask, want)
	s.cfg.Logf("rejecting %s: %s", conn.RemoteAddr(), reason)
	conn.SetWriteDeadline(time.Now().Add(helloTimeout))
	if _, err := conn.Send(Reject{Code: RejectPrecision, Reason: reason}); err != nil {
		s.cfg.Logf("reject send to %s: %v", conn.RemoteAddr(), err)
	}
	conn.Close()
}

// rejectBlacklisted refuses a blacklisted worker's handshake with a
// typed Reject frame and counts the refusal.
func (s *Server) rejectBlacklisted(conn *Conn, u int) {
	s.src.blacklistRejections.Add(1)
	s.cfg.Logf("rejecting %s: worker %d is blacklisted", conn.RemoteAddr(), u)
	conn.SetWriteDeadline(time.Now().Add(helloTimeout))
	if _, err := conn.Send(Reject{
		Code:   RejectBlacklisted,
		Reason: fmt.Sprintf("worker %d blacklisted by the detection layer", u),
	}); err != nil {
		s.cfg.Logf("reject send to %s: %v", conn.RemoteAddr(), err)
	}
	conn.Close()
}

// evalJob is one background evaluation request: the round it belongs to
// and a snapshot of the parameters after that round.
type evalJob struct {
	round  int
	params []float64
}

// Serve accepts the K workers, runs the configured number of rounds
// through the shared round core, and shuts the workers down, returning
// the final test accuracy. Workers whose report misses the round
// deadline are marked missing for the round but stay connected (their
// pump retires the late report on arrival); workers whose connection
// breaks are evicted and may rejoin at a later round boundary with
// their session token. Files below the replica quorum drop out of
// aggregation; training only fails when no file meets quorum.
// Accuracy/loss evaluation runs on parameter snapshots in a background
// goroutine, so workers never wait on it between rounds. Canceling ctx
// aborts the accept loop and any in-flight round promptly (by closing
// the listener and worker connections) and returns ctx.Err(); the
// evaluation history recorded up to that point remains available via
// History. On every exit path the reader pumps are joined before Serve
// returns — no goroutine outlives the call.
func (s *Server) Serve(ctx context.Context) (float64, error) {
	s.mu.Lock()
	s.serving = true
	s.mu.Unlock()
	defer func() {
		// Rounds are done (or aborted): the engine pool is idle, so it
		// is safe to release here; Engine.Close is idempotent and its
		// read-only accessors (Params, Evaluate) keep working after.
		s.mu.Lock()
		s.serving = false
		s.mu.Unlock()
		s.eng.Close()
	}()
	stop := context.AfterFunc(ctx, s.teardown)
	defer stop()

	acceptDone := make(chan error, 1)
	go s.acceptLoop(ctx, acceptDone)
	defer s.listener.Close() // stop accepting once Serve unwinds

	// Deterministic teardown: whatever path Serve exits on, close every
	// worker connection and join every reader pump before returning.
	defer s.src.shutdown()

	// Join barrier: wait until all K workers have completed a first
	// handshake. joinedCh is pulsed per join; re-check the count.
	k := s.assignment.K
	for {
		if s.src.joinedWorkers() >= k {
			break
		}
		select {
		case <-s.src.joinedCh:
		case err := <-acceptDone:
			return 0, fmt.Errorf("transport: accept: %w", ctxErr(ctx, err))
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}

	// Background evaluation: snapshots stream through evalCh in round
	// order; the goroutine appends to the history, so the serve loop
	// never blocks on model evaluation.
	evalCh := make(chan evalJob, 4)
	evalDone := make(chan struct{})
	go func() {
		defer close(evalDone)
		for job := range evalCh {
			evalStart := time.Now()
			loss := s.eng.EvalLossParams(job.params)
			acc := s.eng.EvaluateParams(job.params)
			evalDur := time.Since(evalStart)
			s.eng.ObservePhase(obs.PhaseEval, evalDur)
			if s.cfg.Tracer != nil {
				// Traces carry the 0-based iteration; eval jobs the
				// 1-based display round.
				s.cfg.Tracer.AttachEval(job.round-1, evalDur, loss, acc)
			}
			s.histMu.Lock()
			s.history.Add(job.round, loss, acc)
			s.histMu.Unlock()
			s.cfg.Logf("round %d: loss=%.4f acc=%.4f", job.round, loss, acc)
		}
	}()
	drainEval := func() {
		close(evalCh)
		<-evalDone
	}

	for t := 0; t < s.cfg.Spec.Rounds; t++ {
		if err := ctx.Err(); err != nil {
			drainEval()
			return 0, err
		}
		stats, err := s.eng.StepOnce(ctx)
		if err != nil {
			drainEval()
			return 0, fmt.Errorf("transport: round %d: %w", t, ctxErr(ctx, err))
		}
		if len(stats.MissingWorkers) > 0 {
			s.cfg.Logf("round %d: missing workers %v (%d degraded, %d dropped files)",
				t, stats.MissingWorkers, stats.DegradedFiles, stats.DroppedFiles)
		}
		if stats.AggregatorDegraded {
			s.cfg.Logf("round %d: aggregator below feasibility floor, degraded to median", t)
		}
		// Detection verdicts: tear down newly blacklisted workers'
		// connections and revoke their rejoin tokens before the next
		// round broadcasts.
		for _, u := range stats.BlacklistedWorkers {
			s.src.blacklist(u)
		}
		// Publish the round's reputation scores to the fleet table (K
		// atomic stores; the engine accessor is lock-free).
		for u := 0; u < k; u++ {
			s.fleet.SetReputation(u, s.eng.Reputation(u))
		}
		if s.cfg.OnRound != nil {
			s.cfg.OnRound(stats)
		}
		if (t+1)%s.cfg.EvalEvery == 0 || t == s.cfg.Spec.Rounds-1 {
			evalCh <- evalJob{round: t + 1, params: s.eng.Params()}
		}
	}
	drainEval()
	final := s.eng.Evaluate()
	for _, c := range s.src.shutdownConns() {
		c.SetWriteDeadline(time.Now().Add(helloTimeout))
		if _, err := c.Send(Shutdown{FinalAccuracy: final}); err != nil {
			s.cfg.Logf("shutdown send: %v", err)
			c.Close()
			continue
		}
		// The pump keeps draining until the worker reads the Shutdown
		// and hangs up (EOF); the deadline bounds the drain so the pump
		// join below is deterministic.
		c.SetReadDeadline(time.Now().Add(shutdownDrainTimeout))
	}
	// Join the pumps without force-closing connections: closing a socket
	// with unread data resets it, which would destroy the buffered
	// Shutdown before a lagging worker reads it. The deferred
	// src.shutdown() then finds every pump gone and every connection
	// already closed by its own pump exit.
	s.src.drain()
	return final, nil
}

// workerEntry is one worker's connection-lifecycle state, guarded by
// wireSource.mu.
type workerEntry struct {
	// conn is the live connection (nil before the first join and while
	// the worker is down).
	conn *Conn
	// pending is a validated rejoin connection awaiting admission at
	// the next round boundary.
	pending *Conn
	// token is the session token rejoins must present.
	token uint64
	// joined records that the worker completed a first handshake.
	joined bool
	// blacklisted records that the detection layer evicted the worker
	// permanently: its token stays on file but every handshake is
	// refused with Reject{RejectBlacklisted}.
	blacklisted bool
	// tier is the uplink codec tier the worker's most recent accepted
	// handshake negotiated; the connection's pump adopts it for its
	// frame decoders at startPump time. Rejoins renegotiate — a
	// restarted worker process may offer a different tier set — and the
	// fresh encoder/decoder pair starts with no codec state either way.
	tier wire.UplinkTier
	// lastAck is the last iteration for which the worker returned a
	// valid report (implying it received and applied that round's
	// parameter broadcast); -1 after (re)join forces a full broadcast.
	lastAck int
}

// pumpItemKind tags inbox entries.
type pumpItemKind int

const (
	// pumpReport: a validated current-round gradient report, already
	// decoded into the engine's arena buffers.
	pumpReport pumpItemKind = iota
	// pumpSkip: an explicit empty report — alive, no gradients.
	pumpSkip
	// pumpDeath: the pump exited (connection broke or misbehaved).
	pumpDeath
)

// pumpItem is one parsed event flowing from a reader pump to the
// collection loop.
type pumpItem struct {
	kind pumpItemKind
	u    int
	conn *Conn
	iter int
	// shard is the aggregation shard the report frame covers
	// (pumpReport only; always 0 on unsharded runs).
	shard int
	// wireBytes/rawBytes are the report's actual frame size and its
	// raw-equivalent size (pumpReport only).
	wireBytes, rawBytes int
	err                 error
}

// pump is one connection's dedicated reader: it blocks on the socket,
// decodes every frame the moment it arrives, and forwards validated
// current-round reports to the collection inbox. Stale reports —
// duplicates, or reports that missed their round's deadline — are
// retired here, eagerly, after being run through the uplink decoder so
// the delta base stays in lockstep with the worker's encoder. The pump
// is the only reader of its connection, so it owns the per-connection
// uplink decoder state, and it never sets read deadlines: the round
// loop's single collection timer is the only clock on the hot path.
type pump struct {
	ws   *wireSource
	u    int
	conn *Conn
	// decs holds one uplink decoder per aggregation shard: a sharded
	// worker runs one independent delta stream per shard (each with its
	// own base), mirroring the per-shard encoders on the worker side.
	decs []wire.UplinkDecoder
	// frame is the decode target; its Grads are pointed at the engine's
	// arena buffers for deliverable reports and at private scratch for
	// stale ones (the arena slot may be under read by a vote).
	frame      wire.GradFrame
	staleGrads [][]float64
	// deliveredIter/deliveredMask bound the inbox: at most one report
	// frame enters it per (connection, round, shard), which keeps a
	// duplicate frame from being decoded into an arena buffer the
	// engine is reading. The mask bit s marks shard s delivered for
	// deliveredIter (a skip sets every bit — one frame stands for the
	// whole worker).
	deliveredIter int
	deliveredMask uint64
}

// run pumps frames until the connection dies or misbehaves.
func (p *pump) run() {
	defer p.ws.pumps.Done()
	for {
		msg, err := p.conn.Recv()
		if err != nil {
			p.ws.evict(p.u, p.conn, err)
			p.notifyDeath(err)
			return
		}
		rep, ok := msg.(GradientReport)
		if !ok {
			err := fmt.Errorf("expected GradientReport, got %T", msg)
			p.ws.evict(p.u, p.conn, err)
			p.notifyDeath(err)
			return
		}
		if err := p.handle(rep); err != nil {
			p.ws.evict(p.u, p.conn, err)
			p.notifyDeath(err)
			return
		}
	}
}

// handle processes one gradient report frame in stream order.
func (p *pump) handle(rep GradientReport) error {
	ws := p.ws
	if rep.WorkerID != p.u {
		return fmt.Errorf("report claims worker %d", rep.WorkerID)
	}
	if rep.Shard < 0 || rep.Shard >= ws.shards {
		return fmt.Errorf("report shard %d outside [0,%d)", rep.Shard, ws.shards)
	}
	if len(rep.Frame) == 0 && rep.Shard != 0 {
		return fmt.Errorf("skip frame carries shard %d", rep.Shard)
	}
	it := rep.Iteration
	cur := int(ws.curRound.Load())
	if it > cur || it < 0 {
		return fmt.Errorf("report for future round %d (current %d)", it, cur)
	}
	if it > p.deliveredIter {
		p.deliveredIter = it
		p.deliveredMask = 0
	}
	retire := int(ws.retireBelow.Load())
	if it < retire || it < p.deliveredIter || p.deliveredMask&(1<<rep.Shard) != 0 {
		// Too late for its round (or a duplicate shard frame): retire
		// it now — but still run it through the decoder into private
		// scratch, so the uplink delta base advances exactly as the
		// worker's encoder did when it sent the frame.
		ws.staleFrames.Add(1)
		if len(rep.Frame) == 0 {
			return nil
		}
		return p.decode(rep.Frame, p.scratchBufs(rep.Shard), rep.Shard)
	}
	p.deliveredMask |= 1 << rep.Shard
	if len(rep.Frame) == 0 {
		// Explicit whole-worker skip: the one empty frame stands for
		// every shard of the round.
		p.deliveredMask = ^uint64(0)
		p.push(pumpItem{kind: pumpSkip, u: p.u, conn: p.conn, iter: it})
		return nil
	}
	// Arena decodes for one worker are serialized, and liveness is
	// re-checked under that lock: after a rejoin displaces this
	// connection, the new pump owns the worker's arena slots, and a
	// superseded pump that already passed the round checks must not
	// race it — its report decodes into scratch (keeping its decoder
	// consistent until the conn's teardown kills it) and is retired.
	wf := ws.files[p.u]
	ws.arenaMu[p.u].Lock()
	live := ws.liveConn(p.u) == p.conn
	bufs := p.scratchBufs(rep.Shard)
	if live {
		bufs = p.arenaBufs(rep.Shard)
	}
	err := p.decode(rep.Frame, bufs, rep.Shard)
	ws.arenaMu[p.u].Unlock()
	if err != nil {
		return err
	}
	if !live {
		ws.staleFrames.Add(1)
		return nil
	}
	lo, hi := ws.shardRanges[rep.Shard][0], ws.shardRanges[rep.Shard][1]
	p.push(pumpItem{
		kind: pumpReport, u: p.u, conn: p.conn, iter: it, shard: rep.Shard,
		wireBytes: len(rep.Frame),
		rawBytes:  wire.UplinkRawSize(len(wf), hi-lo),
	})
	return nil
}

// decode runs one report frame through the connection's per-shard
// uplink decoder into the given target buffers and validates its
// structure against the worker's static file assignment and the
// shard's coordinate width.
func (p *pump) decode(frameBytes []byte, bufs [][]float64, shard int) error {
	ws := p.ws
	wf := ws.files[p.u]
	want := ws.shardRanges[shard][1] - ws.shardRanges[shard][0]
	p.frame.Grads = bufs
	_, consumed, err := p.decs[shard].Decode(frameBytes, &p.frame)
	switch {
	case err != nil:
		return err
	case consumed != len(frameBytes):
		return fmt.Errorf("frame has %d trailing bytes", len(frameBytes)-consumed)
	case p.frame.Worker != p.u:
		return fmt.Errorf("frame claims worker %d", p.frame.Worker)
	case !slices.Equal(p.frame.Files, wf):
		return fmt.Errorf("frame files %v, want %v", p.frame.Files, wf)
	}
	for j := range wf {
		if len(p.frame.Grads[j]) != want {
			return fmt.Errorf("frame gradient %d has dim %d, want %d", j, len(p.frame.Grads[j]), want)
		}
	}
	return nil
}

// arenaBufs points the decode at the shard's coordinate range of the
// engine's stable slot buffers for this worker — delivering a report
// frame is decoding it in place. Distinct shards write disjoint ranges
// of the same rows, so a shard that already landed can be under read
// by an early vote while later shards still decode.
func (p *pump) arenaBufs(shard int) [][]float64 {
	ws := p.ws
	wf := ws.files[p.u]
	lo, hi := ws.shardRanges[shard][0], ws.shardRanges[shard][1]
	if cap(p.frame.Grads) < len(wf) {
		p.frame.Grads = make([][]float64, len(wf))
	}
	bufs := p.frame.Grads[:len(wf)]
	for j := range wf {
		// The full slice expression caps the target at the shard
		// boundary: a hostile frame declaring a wider dimension makes
		// the decoder allocate instead of scribbling into a neighboring
		// shard's coordinates, and the width check above then evicts.
		bufs[j] = ws.eng.GradBuffer(p.u, j)[lo:hi:hi]
	}
	return bufs
}

// scratchBufs are the pump-private decode targets for stale frames:
// the arena slot may be under concurrent read by the round that just
// missed this worker, so late frames must not touch it.
func (p *pump) scratchBufs(shard int) [][]float64 {
	ws := p.ws
	wf := ws.files[p.u]
	if p.staleGrads == nil {
		p.staleGrads = make([][]float64, len(wf))
		for j := range p.staleGrads {
			p.staleGrads[j] = make([]float64, ws.dim)
		}
	}
	lo, hi := ws.shardRanges[shard][0], ws.shardRanges[shard][1]
	if cap(p.frame.Grads) < len(wf) {
		p.frame.Grads = make([][]float64, len(wf))
	}
	bufs := p.frame.Grads[:len(wf)]
	for j := range wf {
		bufs[j] = p.staleGrads[j][lo:hi:hi]
	}
	return bufs
}

// push forwards an item to the collection inbox, giving up when the
// source shuts down (the only state in which the inbox can stay full).
func (p *pump) push(item pumpItem) {
	select {
	case p.ws.inbox <- item:
	case <-p.ws.stopCh:
	}
}

// notifyDeath posts a death notice so an in-flight collection stops
// waiting for this worker immediately instead of running out the
// deadline.
func (p *pump) notifyDeath(err error) {
	p.push(pumpItem{kind: pumpDeath, u: p.u, conn: p.conn, err: err})
}

// wireSource is the network GradientSource: it broadcasts RoundStart
// (full parameters or XOR deltas, by acknowledgement state) to the
// connected workers, then collects their gradient reports from the
// reader pumps' inbox under a single round deadline. Reports are
// already parsed and decoded into the engine's arena buffers when they
// reach the collection loop; absent or misbehaving workers are marked
// missing so the round core's quorum rule decides the fate of their
// files.
type wireSource struct {
	timeout   time.Duration
	fullEvery int
	logf      func(format string, args ...any)

	eng *cluster.Engine
	dim int

	// fleet is the per-worker status table (set by NewServer, never
	// nil): handshake/eviction/blacklist flip the state rows, the
	// collection loop stamps report arrivals. All updates are single
	// atomic stores.
	fleet *obs.FleetTable

	// shards is the aggregation-plane shard count (1 = whole-vector);
	// shardRanges[s] the [lo, hi) coordinate range of shard s. pipeline
	// enables the RoundPrep overlap; rounds bounds it (no prep past the
	// final round).
	shards      int
	shardRanges [][2]int
	pipeline    bool
	rounds      int
	// uplink is the server's configured codec tier
	// (ServerConfig.Uplink); each connection negotiates its own against
	// the worker's Hello mask, recorded in its workerEntry and copied
	// into the pump's frame decoders at startPump time.
	uplink wire.UplinkTier

	mu          sync.Mutex
	workers     []workerEntry
	joinedCount int
	joinedCh    chan struct{}
	// closing marks shutdown: no new pumps may start, and pump exits
	// stop counting as evictions. Guarded by mu (set exactly once).
	closing bool

	// inbox is the bounded fan-in of every reader pump. Capacity covers
	// the worst case of one report per worker per round (the pumps'
	// delivered guard), leftovers of one previous round, and a death
	// notice per worker, so pumps block only when the collector is
	// about to drain.
	inbox  chan pumpItem
	stopCh chan struct{}
	// pumps joins every reader goroutine at shutdown. Adds happen under
	// mu with closing false; shutdown flips closing under mu before
	// waiting, so Wait cannot race a late Add.
	pumps sync.WaitGroup

	// curRound is the iteration being collected; retireBelow the bound
	// under which the pumps retire reports as stale. During collection
	// retireBelow == curRound; the moment collection closes it advances
	// to curRound+1, so a report landing mid-aggregation is retired on
	// arrival rather than discovered next round.
	curRound    atomic.Int64
	retireBelow atomic.Int64

	// Cumulative lifecycle counters (see Counters).
	joins, rejoins, evictions, staleFrames atomic.Int64
	blacklistRejections                    atomic.Int64
	// lastEvictions/lastStaleFrames are the totals at the end of the
	// previous collection, so each round reports the delta — including
	// events that landed between rounds.
	lastEvictions, lastStaleFrames int64

	// files[u] is worker u's assigned file list in slot order.
	files [][]int
	// arenaMu[u] serializes decodes into worker u's arena buffers: an
	// old pump superseded by a rejoin must never write them
	// concurrently with (or after) the replacement connection's pump.
	arenaMu []sync.Mutex
	// Per-round collection scratch: the connection each worker was
	// served by this round, its broadcast-ack state, and whether it has
	// been accounted for.
	roundConns []*Conn
	roundAcks  []int
	done       []bool
	// Sharded collection scratch: gotShards[u] is the round's delivered
	// shard mask per worker, shardLeft[s] the number of live workers
	// whose shard-s frame is still outstanding — reaching zero triggers
	// the early shard vote while other shards still collect.
	gotShards []uint64
	shardLeft []int
	// prevParams is the parameter vector broadcast last round (the
	// delta base); prevIter the iteration it belongs to (-1 = none).
	prevParams []float64
	prevIter   int
	// fullFrame/deltaFrame are the per-round broadcast encode buffers,
	// shared read-only by every send goroutine of the round.
	fullFrame, deltaFrame []byte
	// rsFullFrame/rsDeltaFrame are the round's shared pre-encoded
	// RoundStart frames for prepped workers (pipelined rounds carry no
	// Files map, so the bytes are identical across workers and are
	// written verbatim per connection).
	rsFullFrame, rsDeltaFrame []byte

	// Pipelined prep state. PrepareNext encodes round t+1's sample
	// lists once per replication group (prepGroups clusters workers
	// with identical file lists; groupOf maps a worker to its group)
	// into prepFrames and records the round in prepReady; Collect then
	// piggybacks each group's frame on the same vectored write as round
	// t's RoundStart. prepIter[u]/prepConn[u] record the round worker u
	// was last successfully prepped for and on which connection — the
	// slim-RoundStart fast path fires only when both match the round
	// being broadcast (written by the round's send goroutines, read by
	// the next Collect after the sends.Wait barrier).
	prepReady   int
	prepIter    []int
	prepConn    []*Conn
	prepGroups  [][]int
	groupOf     []int
	prepFrames  [][]byte
	prepSamples [][]int

	// collectTimer is the reused collection deadline timer; it is
	// stopped and drained before every Reset so a tick left over from
	// an earlier round — fired after that round's deadline path stopped
	// selecting, or still pending when the round completed early — can
	// never end a later round's collection prematurely.
	collectTimer *time.Timer
}

// newWireSource prepares the per-worker state tables. shards must
// already be clamped to [1, dim] (wire.ShardCount).
func newWireSource(asn *assign.Assignment, timeout time.Duration, fullEvery, shards int, pipeline bool, rounds int, logf func(string, ...any)) *wireSource {
	ws := &wireSource{
		timeout:   timeout,
		fullEvery: fullEvery,
		logf:      logf,
		shards:    shards,
		pipeline:  pipeline,
		rounds:    rounds,
		workers:   make([]workerEntry, asn.K),
		joinedCh:  make(chan struct{}, 1),
		// The inbox covers the worst case of one report frame per shard
		// per worker per round, leftovers of one previous round, and a
		// death notice per worker, so pumps block only when the
		// collector is about to drain.
		inbox:      make(chan pumpItem, (2+2*shards)*asn.K+8),
		stopCh:     make(chan struct{}),
		files:      make([][]int, asn.K),
		arenaMu:    make([]sync.Mutex, asn.K),
		roundConns: make([]*Conn, asn.K),
		roundAcks:  make([]int, asn.K),
		done:       make([]bool, asn.K),
		gotShards:  make([]uint64, asn.K),
		shardLeft:  make([]int, shards),
		prevIter:   -1,
	}
	ws.curRound.Store(-1)
	ws.retireBelow.Store(-1)
	for u := 0; u < asn.K; u++ {
		ws.files[u] = asn.WorkerFiles(u)
	}
	if pipeline {
		ws.prepReady = -1
		ws.prepIter = make([]int, asn.K)
		ws.prepConn = make([]*Conn, asn.K)
		ws.groupOf = make([]int, asn.K)
		for u := range ws.prepIter {
			ws.prepIter[u] = -1
		}
		// Workers with identical file lists (a replication group) share
		// one encoded RoundPrep frame per round.
		for u := 0; u < asn.K; u++ {
			g := -1
			for gi, members := range ws.prepGroups {
				if slices.Equal(ws.files[members[0]], ws.files[u]) {
					g = gi
					break
				}
			}
			if g < 0 {
				g = len(ws.prepGroups)
				ws.prepGroups = append(ws.prepGroups, []int{u})
			} else {
				ws.prepGroups[g] = append(ws.prepGroups[g], u)
			}
			ws.groupOf[u] = g
		}
		ws.prepFrames = make([][]byte, len(ws.prepGroups))
	}
	return ws
}

// bind attaches the engine whose arena the pumps decode into and
// derives the shard coordinate ranges from the model dimension.
func (ws *wireSource) bind(eng *cluster.Engine, dim int) {
	ws.eng = eng
	ws.dim = dim
	ws.shardRanges = make([][2]int, ws.shards)
	for s := range ws.shardRanges {
		lo, hi := wire.ShardRange(dim, ws.shards, s)
		ws.shardRanges[s] = [2]int{lo, hi}
	}
}

// startPump launches worker u's reader goroutine for conn. Callers
// must hold ws.mu (which is what orders the pumps.Add against
// shutdown's closing check).
func (ws *wireSource) startPump(u int, conn *Conn) {
	if ws.closing {
		return
	}
	ws.pumps.Add(1)
	p := &pump{ws: ws, u: u, conn: conn, deliveredIter: -1, decs: make([]wire.UplinkDecoder, ws.shards)}
	for s := range p.decs {
		p.decs[s].Tier = ws.workers[u].tier
	}
	go p.run()
}

// liveConn returns worker u's current live connection (nil when down).
func (ws *wireSource) liveConn(u int) *Conn {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.workers[u].conn
}

// joinedWorkers reports how many workers have completed a first join.
func (ws *wireSource) joinedWorkers() int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.joinedCount
}

// shutdownConns returns the currently connected workers' connections
// for the final Shutdown message, admitting any still-pending rejoins
// first (with pumps, so their streams drain) — a worker that came back
// after the last round still hears the shutdown. It also flips the
// source into closing mode before returning, so workers hanging up
// after reading the Shutdown are not miscounted as evictions (the flip
// must precede the Shutdown sends, or a fast worker's EOF races it).
func (ws *wireSource) shutdownConns() []*Conn {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	var out []*Conn
	for u := range ws.workers {
		w := &ws.workers[u]
		if w.pending != nil {
			if w.conn != nil {
				w.conn.Close()
			}
			w.conn, w.pending = w.pending, nil
			ws.startPump(u, w.conn)
		}
		if w.conn != nil {
			out = append(out, w.conn)
		}
	}
	ws.markClosingLocked()
	return out
}

// markClosing flips the source into closing mode exactly once: no new
// pumps start, pump exits stop counting as evictions, and blocked
// inbox pushes release.
func (ws *wireSource) markClosing() {
	ws.mu.Lock()
	ws.markClosingLocked()
	ws.mu.Unlock()
}

// markClosingLocked is markClosing with ws.mu already held.
func (ws *wireSource) markClosingLocked() {
	if !ws.closing {
		ws.closing = true
		close(ws.stopCh)
	}
}

// drain marks shutdown and joins the pumps without force-closing
// connections — each exits on its worker's EOF or its read deadline,
// so workers get to read the final Shutdown.
func (ws *wireSource) drain() {
	ws.markClosing()
	ws.pumps.Wait()
}

// shutdown closes every worker connection and joins every reader pump.
// It runs on every Serve exit path, making teardown deterministic: no
// pump goroutine outlives Serve.
func (ws *wireSource) shutdown() {
	ws.mu.Lock()
	ws.markClosingLocked()
	for u := range ws.workers {
		w := &ws.workers[u]
		if w.conn != nil {
			w.conn.Close()
			w.conn = nil
		}
		if w.pending != nil {
			w.pending.Close()
			w.pending = nil
		}
	}
	ws.mu.Unlock()
	ws.pumps.Wait()
}

// admitPending moves validated rejoin connections into the live slots —
// the "next round boundary" of the rejoin handshake — and starts their
// reader pumps. Re-admitted workers have lastAck reset so this round
// sends them the full vector. Returns how many workers were admitted.
func (ws *wireSource) admitPending(t int) int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	admitted := 0
	for u := range ws.workers {
		w := &ws.workers[u]
		if w.pending == nil {
			continue
		}
		if w.blacklisted {
			w.pending.Close()
			w.pending = nil
			continue
		}
		if w.conn != nil {
			w.conn.Close()
		}
		w.conn, w.pending = w.pending, nil
		w.lastAck = -1
		ws.startPump(u, w.conn)
		ws.rejoins.Add(1)
		ws.fleet.SetState(u, obs.WorkerLive)
		ws.fleet.IncRejoins(u)
		ws.fleet.Touch(u, time.Now())
		admitted++
		ws.logf("round %d: worker %d re-admitted", t, u)
	}
	return admitted
}

// Collect implements cluster.GradientSource over TCP: broadcast
// RoundStart to every live worker (parallel sends), then drain the
// pumps' inbox under one deadline timer until every live worker is
// accounted for — delivered, explicitly skipping, or dead. The pumps
// have already decoded deliverable reports into the engine's arena, so
// this loop only attributes results; it never touches a socket.
func (ws *wireSource) Collect(ctx context.Context, rd *cluster.Round) (cluster.CollectStats, error) {
	t := rd.Iteration()
	rejoins := ws.admitPending(t)
	// Open the round for the pumps: reports for t are deliverable,
	// anything older is retired on arrival.
	ws.curRound.Store(int64(t))
	ws.retireBelow.Store(int64(t))
	if err := ws.prepareBroadcast(t, rd.Params()); err != nil {
		return cluster.CollectStats{}, err
	}
	start := time.Now()

	// Snapshot the fleet for the round.
	ws.mu.Lock()
	outstanding := 0
	for u := range ws.workers {
		w := &ws.workers[u]
		ws.roundConns[u] = w.conn
		ws.roundAcks[u] = w.lastAck
		ws.done[u] = false
		ws.gotShards[u] = 0
		if w.conn == nil {
			rd.MarkMissing(u)
		} else {
			outstanding++
		}
	}
	ws.mu.Unlock()
	for s := range ws.shardLeft {
		ws.shardLeft[s] = outstanding
	}

	// Parallel broadcast: one send goroutine per live worker, so one
	// slow socket costs the round a write deadline, not a serial sum.
	// A prepped worker (round t's RoundPrep reached this connection on
	// the previous broadcast) gets the shared pre-encoded frame with no
	// Files map; when round t+1's prep is staged, its group frame rides
	// the same vectored write as this round's RoundStart.
	prepNext := ws.pipeline && ws.prepReady == t+1
	bcastStart := time.Now()
	var bcastBytes atomic.Int64
	var sends sync.WaitGroup
	for u := range ws.roundConns {
		conn := ws.roundConns[u]
		if conn == nil {
			continue
		}
		prepped := ws.pipeline && ws.prepIter[u] == t && ws.prepConn[u] == conn
		var prepFrame []byte
		if prepNext {
			prepFrame = ws.prepFrames[ws.groupOf[u]]
		}
		sends.Add(1)
		go func(u int, conn *Conn, lastAck int, prepped bool, prepFrame []byte) {
			defer sends.Done()
			n, err := ws.sendRoundStart(t, u, conn, lastAck, rd, prepped, prepFrame)
			if err != nil {
				// A failed or partial send poisons the outbound stream —
				// unlike reads it cannot be resumed, so the worker is
				// evicted (its pump notices the closed conn and posts
				// the death notice).
				ws.evict(u, conn, fmt.Errorf("send: %w", err))
				return
			}
			if prepFrame != nil {
				// Written before sends.Done, read by the next Collect
				// after sends.Wait — the barrier orders it.
				ws.prepIter[u] = t + 1
				ws.prepConn[u] = conn
			}
			bcastBytes.Add(int64(n))
		}(u, conn, ws.roundAcks[u], prepped, prepFrame)
	}
	sends.Wait()
	bcastDur := time.Since(bcastStart)

	// Collection: a single select over the inbox and one deadline
	// timer. No per-worker socket reads, no per-worker deadlines.
	// retireShards removes a worker's undelivered shard frames from the
	// per-shard outstanding counts when it leaves the round (skip,
	// death, eviction); a shard whose count reaches zero is voted right
	// here, on the collecting goroutine, while the others still collect.
	var reportBytes, rawBytes int64
	// fullMask has one bit per shard (explicit all-ones at 64 shards
	// rather than leaning on shift-wrap semantics).
	fullMask := uint64(1)<<ws.shards - 1
	if ws.shards == 64 {
		fullMask = ^uint64(0)
	}
	retireShards := func(u int) {
		for s := range ws.shardLeft {
			if ws.gotShards[u]&(1<<s) == 0 {
				ws.shardLeft[s]--
				if ws.shardLeft[s] == 0 {
					rd.VoteShardEarly(s)
				}
			}
		}
	}
	handleItem := func(item pumpItem) {
		u := item.u
		if ws.roundConns[u] != item.conn || ws.done[u] {
			// A previous connection's leftovers, or events for a
			// worker already accounted this round.
			if item.kind != pumpDeath {
				ws.staleFrames.Add(1)
			}
			return
		}
		switch item.kind {
		case pumpReport:
			if item.iter != t {
				ws.staleFrames.Add(1)
				return
			}
			ws.gotShards[u] |= 1 << item.shard
			reportBytes += int64(item.wireBytes)
			rawBytes += int64(item.rawBytes)
			ws.shardLeft[item.shard]--
			if ws.shardLeft[item.shard] == 0 {
				rd.VoteShardEarly(item.shard)
			}
			if ws.gotShards[u] != fullMask {
				// More shard frames outstanding: the worker is not yet
				// accounted for this round.
				return
			}
			for j := range ws.files[u] {
				if err := rd.Deliver(u, j, ws.eng.GradBuffer(u, j)); err != nil {
					ws.evict(u, item.conn, err)
					rd.MarkMissing(u)
					ws.done[u] = true
					outstanding--
					return
				}
			}
			ws.ack(u, t)
			ws.fleet.ObserveRound(u, t)
			ws.fleet.Touch(u, time.Now())
		case pumpSkip:
			if item.iter != t {
				ws.staleFrames.Add(1)
				return
			}
			// Explicit skip: alive, no gradients this round — but the
			// round's parameters were received and applied, so the
			// skip still acknowledges the broadcast.
			ws.logf("worker %d skipped round %d", u, t)
			ws.ack(u, t)
			ws.fleet.Touch(u, time.Now())
			rd.MarkMissing(u)
			retireShards(u)
		case pumpDeath:
			rd.MarkMissing(u)
			retireShards(u)
		}
		ws.done[u] = true
		outstanding--
	}
	var timerC <-chan time.Time
	if ws.timeout > 0 {
		if ws.collectTimer == nil {
			ws.collectTimer = time.NewTimer(ws.timeout)
		} else {
			// Reuse hygiene: the previous round may have left the timer
			// running (collection finished early) or its tick pending
			// (it fired after the deadline path stopped selecting).
			// Stop and drain before Reset so a stale tick cannot end
			// this round's collection prematurely.
			if !ws.collectTimer.Stop() {
				select {
				case <-ws.collectTimer.C:
				default:
				}
			}
			ws.collectTimer.Reset(ws.timeout)
		}
		timerC = ws.collectTimer.C
	}
	for outstanding > 0 {
		select {
		case item := <-ws.inbox:
			handleItem(item)
		case <-timerC:
			// Deadline. A report that beat the deadline but lost the
			// select race is already parsed and queued — drain the
			// inbox non-blocking before marking anyone missing, so an
			// on-time report is never discarded by scheduling jitter.
			drained := false
			for !drained && outstanding > 0 {
				select {
				case item := <-ws.inbox:
					handleItem(item)
				default:
					drained = true
				}
			}
			for u := range ws.roundConns {
				if ws.roundConns[u] != nil && !ws.done[u] {
					ws.logf("round %d: worker %d missed the deadline", t, u)
					rd.MarkMissing(u)
				}
			}
			outstanding = 0
		case <-ctx.Done():
			return cluster.CollectStats{}, ctx.Err()
		}
	}
	// Close the round: from here every report for t is stale and the
	// pumps retire it the moment it arrives — draining overlaps with
	// aggregation instead of eating the next collection window.
	ws.retireBelow.Store(int64(t + 1))

	// Roll the delta base forward: next round's deltas patch this
	// round's vector.
	if ws.prevParams == nil {
		ws.prevParams = make([]float64, len(rd.Params()))
	}
	copy(ws.prevParams, rd.Params())
	ws.prevIter = t
	if err := ctx.Err(); err != nil {
		return cluster.CollectStats{}, err
	}
	ev, st := ws.evictions.Load(), ws.staleFrames.Load()
	stats := cluster.CollectStats{
		Communication:  time.Since(start),
		Broadcast:      bcastDur,
		ReportBytes:    reportBytes,
		ReportRawBytes: rawBytes,
		BroadcastBytes: bcastBytes.Load(),
		Rejoins:        rejoins,
		Evictions:      int(ev - ws.lastEvictions),
		StaleFrames:    int(st - ws.lastStaleFrames),
	}
	ws.lastEvictions, ws.lastStaleFrames = ev, st
	return stats, nil
}

// prepareBroadcast encodes this round's shared params frames: the full
// frame (always needed for unacknowledged or refresh rounds) and the
// delta frame against the previous round's vector when any worker can
// use it. Both buffers are read-only for the round.
func (ws *wireSource) prepareBroadcast(t int, params []float64) error {
	var err error
	ws.fullFrame, err = wire.AppendParamsFull(ws.fullFrame[:0], params)
	if err != nil {
		return fmt.Errorf("transport: broadcast: %w", err)
	}
	ws.deltaFrame = ws.deltaFrame[:0]
	if !ws.refreshRound(t) && ws.prevIter == t-1 {
		ws.deltaFrame, err = wire.AppendParamsDelta(ws.deltaFrame[:0], ws.prevParams, params)
		if err != nil {
			return fmt.Errorf("transport: broadcast: %w", err)
		}
	}
	if ws.pipeline {
		// Shared RoundStart frames for prepped workers: without a Files
		// map the message is identical across the fleet, so each
		// variant is encoded once and written verbatim per connection —
		// two encodes per round instead of K.
		if ws.rsFullFrame, err = appendMessageFrame(ws.rsFullFrame[:0],
			RoundStart{Iteration: t, ParamsFrame: ws.fullFrame}); err != nil {
			return fmt.Errorf("transport: broadcast: %w", err)
		}
		ws.rsDeltaFrame = ws.rsDeltaFrame[:0]
		if len(ws.deltaFrame) > 0 {
			if ws.rsDeltaFrame, err = appendMessageFrame(ws.rsDeltaFrame[:0],
				RoundStart{Iteration: t, BaseIteration: t - 1, ParamsFrame: ws.deltaFrame}); err != nil {
				return fmt.Errorf("transport: broadcast: %w", err)
			}
		}
	}
	return nil
}

// refreshRound reports whether round t is a full-broadcast refresh.
func (ws *wireSource) refreshRound(t int) bool {
	return t == 0 || ws.fullEvery <= 1 || t%ws.fullEvery == 0
}

// sendRoundStart sends one worker's RoundStart (full or delta
// parameters by acknowledgement state) and returns the bytes written.
// A prepped worker — round t's RoundPrep reached this connection — gets
// the shared pre-encoded frame with no Files map; an unprepped one
// (fresh join, rejoin, or a lost prep) falls back to the self-contained
// per-worker encode. A non-nil prepFrame (round t+1's sample lists for
// this worker's replication group) rides the same vectored write.
func (ws *wireSource) sendRoundStart(t, u int, conn *Conn, lastAck int, rd *cluster.Round, prepped bool, prepFrame []byte) (int, error) {
	if ws.timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(ws.timeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	if prepped {
		frame := ws.rsFullFrame
		if len(ws.rsDeltaFrame) > 0 && lastAck == t-1 {
			frame = ws.rsDeltaFrame
		}
		return conn.WriteRaw2(frame, prepFrame)
	}
	assigned := make(map[int][]int, len(ws.files[u]))
	for _, v := range ws.files[u] {
		assigned[v] = rd.FileSamples(v)
	}
	rs := RoundStart{Iteration: t, Files: assigned}
	if len(ws.deltaFrame) > 0 && lastAck == t-1 {
		rs.ParamsFrame = ws.deltaFrame
		rs.BaseIteration = t - 1
	} else {
		rs.ParamsFrame = ws.fullFrame
	}
	return conn.SendWithRaw(rs, prepFrame)
}

// PrepareNext implements cluster.RoundPreparer: the engine calls it
// with round iter's freshly drawn file→sample partition just before
// round iter-1's collection opens. Nothing is sent from here — the
// sample lists are encoded once per replication group (identical file
// lists, so every member receives byte-identical bytes; no file ids
// travel, samples ride in static slot order) and stashed. Collect then
// piggybacks each group's frame on the same vectored write as round
// iter-1's RoundStart, so pipelining the prep costs no extra syscalls,
// send goroutines, or barriers. A failed combined write evicts exactly
// like a failed RoundStart send; the worker rejoins unprepped.
func (ws *wireSource) PrepareNext(iter int, files [][]int) {
	ws.prepReady = -1
	if !ws.pipeline || iter >= ws.rounds {
		return
	}
	for g, members := range ws.prepGroups {
		samples := ws.prepSamples[:0]
		for _, v := range ws.files[members[0]] {
			samples = append(samples, files[v])
		}
		ws.prepSamples = samples
		frame, err := appendMessageFrame(ws.prepFrames[g][:0],
			RoundPrep{Iteration: iter, Samples: samples})
		ws.prepFrames[g] = frame
		if err != nil {
			ws.logf("round %d: prep encode: %v", iter, err)
			return
		}
	}
	ws.prepReady = iter
}

// ack records that worker u applied round t's parameter broadcast.
func (ws *wireSource) ack(u, t int) {
	ws.mu.Lock()
	ws.workers[u].lastAck = t
	ws.mu.Unlock()
}

// blacklist evicts worker u permanently on the detection layer's
// verdict: any live or pending connection is closed and every later
// handshake — even with the valid session token — is refused with a
// typed Reject. The closed connection's pump exit is not double-counted
// as an eviction (the slot is already cleared).
func (ws *wireSource) blacklist(u int) {
	ws.mu.Lock()
	w := &ws.workers[u]
	w.blacklisted = true
	conn, pending := w.conn, w.pending
	w.conn, w.pending = nil, nil
	ws.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if pending != nil {
		pending.Close()
	}
	ws.fleet.SetState(u, obs.WorkerBlacklisted)
	ws.logf("worker %d blacklisted: connection closed, rejoin token revoked", u)
}

// evict tears down a connection whose stream broke or misbehaved: it
// is closed, and if it was still the worker's live connection the slot
// is cleared and the eviction counted, so later rounds mark the worker
// missing up front — until it rejoins with its session token. During
// shutdown the same path runs silently (pump exits are expected).
// Safe for concurrent calls on distinct or identical workers.
func (ws *wireSource) evict(u int, conn *Conn, err error) {
	conn.Close()
	ws.mu.Lock()
	live := ws.workers[u].conn == conn
	if live {
		ws.workers[u].conn = nil
	}
	closing := ws.closing
	ws.mu.Unlock()
	if live && !closing {
		ws.evictions.Add(1)
		if ws.fleet.State(u) != obs.WorkerBlacklisted {
			ws.fleet.SetState(u, obs.WorkerDown)
		}
		ws.logf("round %d: evicting worker %d: %v", ws.curRound.Load(), u, err)
	}
}
