package transport

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"byzshield/internal/cluster"
	"byzshield/internal/obs"
)

// scrapeMetrics GETs /metrics from a diagnostics listener and parses
// the Prometheus text into a series→value map (the full series text
// including any label fragment is the key).
func scrapeMetrics(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape read: %v", err)
	}
	vals := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("scrape parse %q: %v", line, err)
		}
		vals[line[:i]] = v
	}
	return vals
}

// TestObsScrapeConsistentWithRoundStats runs a loopback cluster with
// the metrics registry, tracer, and diagnostics listener attached,
// kills and resumes one worker mid-run (an eviction followed by a
// token rejoin), scrapes /metrics while rounds are still executing, and
// then checks that the final scrape agrees exactly with the summed
// OnRound RoundStats — the live counters and the engine's per-round
// stats are two views of the same events, never two bookkeepings.
func TestObsScrapeConsistentWithRoundStats(t *testing.T) {
	const victim = 4
	spec := testSpec(8)
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	registry := obs.NewRegistry()
	tracer := obs.NewTracer(16)

	var mu sync.Mutex
	var stats []cluster.RoundStats
	var srv *Server
	var diag *obs.Diag
	restarted := make(chan error, 1)
	workerCtx, killWorker := context.WithCancel(context.Background())
	defer killWorker()

	srvCfg := ServerConfig{
		Spec:         spec,
		RoundTimeout: 30 * time.Second,
		Metrics:      registry,
		Tracer:       tracer,
		OnRound: func(rs cluster.RoundStats) {
			mu.Lock()
			stats = append(stats, rs)
			mu.Unlock()
			if rs.Iteration == 2 {
				// Mid-run scrape: OnRound blocks the serve loop, so the
				// live counters must already cover this round.
				vals := scrapeMetrics(t, diag.Addr())
				if got := vals["byzshield_rounds_total"]; got != float64(rs.Iteration+1) {
					t.Errorf("mid-run scrape: rounds_total=%v after round %d", got, rs.Iteration)
				}
				if got := vals["byzshield_live_workers"]; got != float64(asn.K) {
					t.Errorf("mid-run scrape: live_workers=%v, want %d", got, asn.K)
				}
			}
			if rs.Iteration != 3 {
				return
			}
			// Between rounds 3 and 4: kill the victim (the pump sees the
			// broken stream and evicts it) and restart it with its
			// session token; OnRound blocks the serve loop until the
			// rejoin is parked for round-boundary admission.
			killWorker()
			token := workerToken(srv, victim)
			go func() {
				_, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{
					ID:          victim,
					ResumeToken: token,
				})
				restarted <- err
			}()
			waitRejoinPending(t, srv, victim)
		},
	}
	srv, err = NewServer("127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	diag, err = obs.ListenAndServe("127.0.0.1:0", obs.ServerOptions{
		Registry: registry, Fleet: srv.Fleet(), Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer diag.Close()

	// Worker 0 carries the worker-side mirror registry so the test also
	// pins the byzworker_* instruments; the others run bare. (One
	// registry per worker process — families register once.)
	workerReg := obs.NewRegistry()
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			ctx := context.Background()
			cfg := WorkerConfig{ID: u}
			if u == 0 {
				cfg.Metrics = workerReg
			}
			if u == victim {
				ctx = workerCtx
				cfg.ReconnectAttempts = -1 // the test restarts it explicitly
			}
			_, err := RunWorker(ctx, srv.Addr(), cfg)
			if u != victim && err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()
	if err := <-restarted; err != nil {
		t.Errorf("restarted worker: %v", err)
	}

	if len(stats) != spec.Rounds {
		t.Fatalf("recorded %d rounds, want %d", len(stats), spec.Rounds)
	}
	var report, raw, bcast int64
	var rejoins, evictions, stale, degraded, droppedF, distorted int
	for _, rs := range stats {
		report += rs.Times.ReportBytes
		raw += rs.Times.ReportRawBytes
		bcast += rs.Times.BroadcastBytes
		rejoins += rs.Rejoins
		evictions += rs.Evictions
		stale += rs.StaleFrames
		degraded += rs.DegradedFiles
		droppedF += rs.DroppedFiles
		distorted += rs.DistortedFiles
	}
	if rejoins < 1 || evictions < 1 {
		t.Fatalf("run saw %d rejoins / %d evictions — the kill+resume exercised nothing", rejoins, evictions)
	}

	vals := scrapeMetrics(t, diag.Addr())
	for _, check := range []struct {
		series string
		want   float64
	}{
		{"byzshield_rounds_total", float64(spec.Rounds)},
		{"byzshield_report_bytes_total", float64(report)},
		{"byzshield_report_raw_bytes_total", float64(raw)},
		{"byzshield_broadcast_bytes_total", float64(bcast)},
		{"byzshield_rejoins_total", float64(rejoins)},
		{"byzshield_evictions_total", float64(evictions)},
		{"byzshield_stale_frames_total", float64(stale)},
		{"byzshield_files_degraded_total", float64(degraded)},
		{"byzshield_files_dropped_total", float64(droppedF)},
		{"byzshield_files_distorted_total", float64(distorted)},
	} {
		if got, ok := vals[check.series]; !ok {
			t.Errorf("final scrape missing %s", check.series)
		} else if got != check.want {
			t.Errorf("%s = %v, scraped totals must equal summed RoundStats %v", check.series, got, check.want)
		}
	}
	if got := vals[`byzshield_worker_rejoins_total{worker="`+strconv.Itoa(victim)+`"}`]; got != 1 {
		t.Errorf("fleet table rejoins for victim = %v, want 1", got)
	}
	if tracer.Total() != spec.Rounds {
		t.Errorf("tracer recorded %d rounds, want %d", tracer.Total(), spec.Rounds)
	}

	// The worker-side mirror saw every round and moved real bytes.
	var wb strings.Builder
	if err := workerReg.WritePrometheus(&wb); err != nil {
		t.Fatal(err)
	}
	wvals := make(map[string]float64)
	for _, line := range strings.Split(wb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
				wvals[line[:i]] = v
			}
		}
	}
	if got := wvals["byzworker_rounds_total"]; got != float64(spec.Rounds) {
		t.Errorf("byzworker_rounds_total = %v, want %v", got, spec.Rounds)
	}
	if got := wvals["byzworker_report_bytes_total"]; got <= 0 {
		t.Errorf("byzworker_report_bytes_total = %v, want > 0", got)
	}

	// /statusz renders one row per worker, including the rejoin count.
	resp, err := http.Get("http://" + diag.Addr() + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz status %d", resp.StatusCode)
	}
	// The fleet table is one row per worker: "<id> <state> <tier> ...".
	rows := 0
	for _, line := range strings.Split(string(page), "\n") {
		f := strings.Fields(line)
		if len(f) >= 3 {
			if id, err := strconv.Atoi(f[0]); err == nil && id == rows && (f[1] == "live" || f[1] == "down" || f[1] == "blacklisted" || f[1] == "unseen") {
				rows++
			}
		}
	}
	if rows != asn.K {
		t.Errorf("/statusz has %d worker rows, want %d:\n%s", rows, asn.K, page)
	}
	if !strings.Contains(string(page), "live") {
		t.Errorf("/statusz shows no live workers:\n%s", page)
	}
}

// TestObsConcurrentScrape hammers /metrics, /statusz and /healthz from
// a background goroutine while loopback rounds execute — the scrape
// path reads nothing but atomics and the tracer's guarded ring, so
// under -race this pins the absence of scrape-vs-round data races.
func TestObsConcurrentScrape(t *testing.T) {
	spec := testSpec(6)
	registry := obs.NewRegistry()
	tracer := obs.NewTracer(16)
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Spec:    spec,
		Metrics: registry,
		Tracer:  tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	diag, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerOptions{
		Registry: registry, Fleet: srv.Fleet(), Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer diag.Close()

	stop := make(chan struct{})
	scraped := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				scraped <- n
				return
			default:
			}
			for _, path := range []string{"/metrics", "/statusz", "/healthz"} {
				resp, err := http.Get("http://" + diag.Addr() + path)
				if err != nil {
					t.Errorf("scrape %s: %v", path, err)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape %s: status %d", path, resp.StatusCode)
				}
			}
			n++
		}
	}()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if _, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u}); err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()
	close(stop)
	if n := <-scraped; n == 0 {
		t.Error("scraper never completed a pass — the test raced nothing")
	}
}
