// Loopback wire-path benchmarks: steady-state round latency and wire
// volume of the pipelined TCP rounds (reader pumps + compressed uplink
// frames), and a straggler-injected variant showing round latency
// tracking the collection deadline rather than the slow worker's drain.
//
// Run with:
//
//	go test ./internal/transport -bench BenchmarkLoopback -run '^$'
//
// round_ns is the mean wall-clock per protocol round (measured from
// serve start to the last completed round, excluding the shutdown
// drain); upB/upRawB are the measured worker→PS bytes as moved vs the
// raw-frame equivalent, downB the PS→worker broadcast bytes.
package transport

import (
	"context"
	"sync"
	"testing"
	"time"

	"byzshield/internal/cluster"
	"byzshield/internal/obs"
	"byzshield/internal/registry"
	"byzshield/internal/wire"
)

// benchLoopback runs b.N protocol rounds over loopback TCP and reports
// round latency and per-round wire volume.
func benchLoopback(b *testing.B, spec Spec, cfg ServerConfig) {
	b.Helper()
	spec.Rounds = b.N
	cfg.Spec = spec
	var mu sync.Mutex
	var up, upRaw, down int64
	var roundsDone time.Duration
	var start time.Time
	cfg.OnRound = func(rs cluster.RoundStats) {
		mu.Lock()
		up += rs.Times.ReportBytes
		upRaw += rs.Times.ReportRawBytes
		down += rs.Times.BroadcastBytes
		roundsDone = time.Since(start)
		mu.Unlock()
	}
	srv, err := NewServer("127.0.0.1:0", cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	asn, err := spec.BuildAssignment()
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if _, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u}); err != nil {
				b.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	b.ResetTimer()
	start = time.Now()
	if _, err := srv.Serve(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	wg.Wait()
	n := int64(b.N)
	b.ReportMetric(float64(roundsDone.Nanoseconds())/float64(n), "round_ns")
	b.ReportMetric(float64(up/n), "upB/round")
	b.ReportMetric(float64(upRaw/n), "upRawB/round")
	b.ReportMetric(float64(down/n), "downB/round")
}

// BenchmarkLoopbackRound is the steady-state pipelined wire round on
// the shared test spec: all workers honest, compressed uplink enabled
// (self-selecting), delta broadcasts at the default cadence.
func BenchmarkLoopbackRound(b *testing.B) {
	benchLoopback(b, testSpec(1), ServerConfig{})
}

// BenchmarkLoopbackRoundMetrics is BenchmarkLoopbackRound with the
// full observability plane attached — metrics registry, round tracer,
// fleet table updates. The round_ns gap against the bare variant is
// the total cost of live observability; CI's bench-smoke job fails if
// it exceeds 5%, pinning the "metrics are atomics on the hot path, not
// allocations or locks" design.
func BenchmarkLoopbackRoundMetrics(b *testing.B) {
	benchLoopback(b, testSpec(1), ServerConfig{
		Metrics: obs.NewRegistry(),
		Tracer:  obs.NewTracer(256),
	})
}

// BenchmarkLoopbackRoundRawUplink is the same round with uplink
// compression disabled — the upB gap against BenchmarkLoopbackRound is
// the realized uplink saving on the real wire.
func BenchmarkLoopbackRoundRawUplink(b *testing.B) {
	benchLoopback(b, testSpec(1), ServerConfig{Uplink: wire.TierRaw})
}

// BenchmarkLoopbackRoundQuantizedUplink is the same round on the lossy
// int8 uplink tier: every report frame ships 8-bit linear-quantized
// gradients (~1/8 the raw bytes plus per-row parameters), and the PS
// dequantizes into the arena on decode. The upB gap against the raw
// variant is the realized lossy saving; round_ns shows the quantize /
// dequantize passes costing less than the bytes they remove.
func BenchmarkLoopbackRoundQuantizedUplink(b *testing.B) {
	benchLoopback(b, testSpec(1), ServerConfig{Uplink: wire.TierInt8})
}

// BenchmarkLoopbackRoundSignUplink is the 1-bit sign tier — ~1/64 the
// raw gradient bytes plus one scale per (file, shard) row.
func BenchmarkLoopbackRoundSignUplink(b *testing.B) {
	benchLoopback(b, testSpec(1), ServerConfig{Uplink: wire.TierSign})
}

// BenchmarkLoopbackRoundStraggler injects a worker whose every report
// is slower than the collection deadline. With per-connection reader
// pumps the straggler's backlog drains off the hot path, so round_ns
// must track the deadline (~25 ms here), not the straggler's 60 ms
// report cadence — the round no longer serializes behind the slowest
// worker's socket.
func BenchmarkLoopbackRoundStraggler(b *testing.B) {
	spec := testSpec(1)
	spec.Fault = "straggler"
	spec.FaultParams = registry.FaultParams{Workers: []int{3}, Delay: 60 * time.Millisecond}
	benchLoopback(b, spec, ServerConfig{RoundTimeout: 25 * time.Millisecond})
}
