package transport

import (
	"context"
	"errors"
	"math"
	"slices"
	"sync"
	"testing"
	"time"

	"byzshield/internal/advnet"
	"byzshield/internal/attack"
	"byzshield/internal/cluster"
)

// TestDetectorLoopbackBitIdentical: an active detector observes the
// collected gradients but must not perturb the arithmetic of a clean
// run — serial engine, pooled engine, and TCP loopback with the zscore
// detector enabled all produce bit-identical final parameters, and none
// of them blacklists an honest worker.
func TestDetectorLoopbackBitIdentical(t *testing.T) {
	spec := testSpec(12)
	spec.Detector = "zscore"
	serial := engineParams(t, spec, 1)
	pooled := engineParams(t, spec, 4)
	wired := wireParams(t, spec)
	if len(serial) != len(pooled) || len(serial) != len(wired) {
		t.Fatalf("param lengths diverge: %d / %d / %d", len(serial), len(pooled), len(wired))
	}
	for i := range serial {
		sb := math.Float64bits(serial[i])
		if pb := math.Float64bits(pooled[i]); pb != sb {
			t.Fatalf("param %d: pooled engine diverged under zscore detector (%x vs %x)", i, pb, sb)
		}
		if wb := math.Float64bits(wired[i]); wb != sb {
			t.Fatalf("param %d: wire path diverged under zscore detector (%x vs %x)", i, wb, sb)
		}
	}
}

// attackEngineParams runs the in-process engine with the given attack
// and Byzantine set and returns the final parameters.
func attackEngineParams(t *testing.T, spec Spec, atk attack.Attack, byz []int) []float64 {
	t.Helper()
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := spec.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := spec.BuildData()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := spec.BuildAggregator()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{
		Assignment: asn, Model: mdl, Train: train, Test: test,
		BatchSize: spec.BatchSize, Aggregator: agg,
		Schedule: spec.Schedule, Momentum: spec.Momentum, Seed: spec.Seed,
		Attack: atk, Byzantines: byz,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < spec.Rounds; i++ {
		if _, err := eng.RunRound(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	return eng.Params()
}

// TestSidecarALIEBitIdenticalToEngine: the cross-process ALIE coalition
// — Byzantine workers coordinating through the byzadv moment hub — must
// reproduce the in-process omniscient ALIE attack bit-for-bit. The
// coalition leader reconstructs the honest per-file gradients from the
// shared Spec, publishes the fleet moments through the hub, and every
// member crafts the identical μ − z·σ payload the in-process oracle
// hands its Byzantines.
func TestSidecarALIEBitIdenticalToEngine(t *testing.T) {
	byz := []int{1, 7}
	spec := testSpec(8)
	want := attackEngineParams(t, spec, attack.ALIE{}, byz)

	hub, err := advnet.NewHub("127.0.0.1:0", len(byz), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hubDone := make(chan error, 1)
	go func() { hubDone <- hub.Serve(context.Background()) }()

	srv, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		cfg := WorkerConfig{ID: u}
		if slices.Contains(byz, u) {
			cfg.Behavior = BehaviorALIE
			cfg.AdvAddr = hub.Addr()
		}
		wg.Add(1)
		go func(cfg WorkerConfig) {
			defer wg.Done()
			if _, err := RunWorker(context.Background(), srv.Addr(), cfg); err != nil {
				t.Errorf("worker %d: %v", cfg.ID, err)
			}
		}(cfg)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()
	if err := <-hubDone; err != nil {
		t.Fatalf("hub: %v", err)
	}

	got := srv.Params()
	if len(got) != len(want) {
		t.Fatalf("param lengths diverge: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("param %d: sidecar ALIE diverged from in-process ALIE (%x vs %x)",
				i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestBlacklistedWorkerRejoinRejected: a persistently Byzantine worker
// under the default zscore reputation policy is blacklisted mid-run,
// its connection is torn down, and its automatic token rejoin is
// refused with the typed blacklist Reject — surfacing as ErrBlacklisted
// at the worker and a BlacklistRejections counter tick at the server —
// while the honest majority trains to completion over the surviving
// replicas.
func TestBlacklistedWorkerRejoinRejected(t *testing.T) {
	const victim = 6
	spec := testSpec(14)
	spec.Detector = "zscore"

	var mu sync.Mutex
	var stats []cluster.RoundStats
	var srv *Server
	srvCfg := ServerConfig{
		Spec:         spec,
		RoundTimeout: 30 * time.Second,
		OnRound: func(rs cluster.RoundStats) {
			mu.Lock()
			stats = append(stats, rs)
			mu.Unlock()
			if !slices.Contains(rs.BlacklistedWorkers, victim) {
				return
			}
			// The victim's connection was just torn down; its automatic
			// token rejoin (100ms backoff) must hit the still-live
			// listener and be refused. OnRound blocks the serve loop, so
			// waiting here makes the refusal deterministic.
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				if srv.Counters().BlacklistRejections > 0 {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			t.Error("blacklisted worker's rejoin was never refused while the server was live")
		},
	}
	var err error
	srv, err = NewServer("127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, asn.K)
	for u := 0; u < asn.K; u++ {
		cfg := WorkerConfig{ID: u}
		if u == victim {
			cfg.Behavior = BehaviorReversed
		}
		wg.Add(1)
		go func(cfg WorkerConfig) {
			defer wg.Done()
			_, errs[cfg.ID] = RunWorker(context.Background(), srv.Addr(), cfg)
		}(cfg)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatalf("Serve aborted despite quorum surviving the blacklist: %v", err)
	}
	wg.Wait()

	if !errors.Is(errs[victim], ErrBlacklisted) {
		t.Errorf("blacklisted worker returned %v, want ErrBlacklisted", errs[victim])
	}
	for u, e := range errs {
		if u != victim && e != nil {
			t.Errorf("honest worker %d: %v", u, e)
		}
	}
	if n := srv.Counters().BlacklistRejections; n == 0 {
		t.Error("rejoin after blacklist was never refused with the typed Reject")
	}
	evictedAt := -1
	for _, rs := range stats {
		if slices.Contains(rs.BlacklistedWorkers, victim) {
			evictedAt = rs.Iteration
		}
		for _, u := range rs.BlacklistedWorkers {
			if u != victim {
				t.Errorf("round %d: honest worker %d blacklisted", rs.Iteration, u)
			}
		}
	}
	if evictedAt < 0 {
		t.Fatal("victim never blacklisted — detection layer exercised nothing")
	}
	for _, rs := range stats {
		if rs.Iteration > evictedAt && !slices.Contains(rs.MissingWorkers, victim) {
			t.Errorf("round %d: blacklisted worker %d not pre-marked missing (%v)",
				rs.Iteration, victim, rs.MissingWorkers)
		}
	}
}
