package transport

import (
	"context"
	"errors"
	"math"
	"net"
	"slices"
	"sync"
	"testing"
	"time"

	"byzshield/internal/cluster"
	"byzshield/internal/registry"
	"byzshield/internal/wire"
)

// engineParams runs the in-process engine over the experiment described
// by spec at the given pool width and returns the final parameters.
func engineParams(t *testing.T, spec Spec, parallelism int) []float64 {
	t.Helper()
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := spec.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := spec.BuildData()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := spec.BuildAggregator()
	if err != nil {
		t.Fatal(err)
	}
	det, err := spec.BuildDetector()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{
		Assignment: asn, Model: mdl, Train: train, Test: test,
		BatchSize: spec.BatchSize, Aggregator: agg,
		Schedule: spec.Schedule, Momentum: spec.Momentum, Seed: spec.Seed,
		Parallelism: parallelism,
		Detector:    det, Detection: spec.DetectorParams.Policy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < spec.Rounds; i++ {
		if _, err := eng.RunRound(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	return eng.Params()
}

// wireParams runs the same experiment over loopback TCP and returns the
// server's final parameters.
func wireParams(t *testing.T, spec Spec) []float64 {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if _, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u}); err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return srv.Params()
}

// TestLoopbackBitIdenticalToEngine: for a fixed seed with no faults,
// the serial in-process engine, the pooled in-process engine, and the
// TCP loopback cluster all execute the shared round core and must
// produce bit-identical final parameters — the wire is a transparent
// gradient source, not a second implementation of the protocol.
func TestLoopbackBitIdenticalToEngine(t *testing.T) {
	spec := testSpec(8)
	serial := engineParams(t, spec, 1)
	pooled := engineParams(t, spec, 4)
	wired := wireParams(t, spec)
	if len(serial) != len(pooled) || len(serial) != len(wired) {
		t.Fatalf("param lengths diverge: %d / %d / %d", len(serial), len(pooled), len(wired))
	}
	for i := range serial {
		sb := math.Float64bits(serial[i])
		if pb := math.Float64bits(pooled[i]); pb != sb {
			t.Fatalf("param %d: pooled engine diverged (%x vs %x)", i, pb, sb)
		}
		if wb := math.Float64bits(wired[i]); wb != sb {
			t.Fatalf("param %d: wire path diverged (%x vs %x)", i, wb, sb)
		}
	}
}

// waitRejoinPending polls until worker u has a validated rejoin
// connection parked for round-boundary admission.
func waitRejoinPending(t *testing.T, srv *Server, u int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		srv.src.mu.Lock()
		pending := srv.src.workers[u].pending != nil
		srv.src.mu.Unlock()
		if pending {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("worker %d rejoin never became pending", u)
}

// workerToken reads worker u's current session token.
func workerToken(srv *Server, u int) uint64 {
	srv.src.mu.Lock()
	defer srv.src.mu.Unlock()
	return srv.src.workers[u].token
}

// TestWorkerRejoinBitIdenticalTrajectory kills worker 4 between rounds,
// restarts it with its session token, and blocks the serve loop (via
// OnRound) until the rejoin is parked — so the replacement lands before
// the next round's deadline. The worker must participate again at the
// very next round boundary, no round may see a missing worker, and the
// final parameters must be bit-identical to an uninterrupted run: a
// fast enough rejoin is invisible to the trajectory.
func TestWorkerRejoinBitIdenticalTrajectory(t *testing.T) {
	const victim = 4
	spec := testSpec(8)
	baseline := wireParams(t, spec)

	var mu sync.Mutex
	var stats []cluster.RoundStats
	var srv *Server
	restarted := make(chan error, 1)
	workerCtx, killWorker := context.WithCancel(context.Background())
	defer killWorker()

	srvCfg := ServerConfig{
		Spec:         spec,
		RoundTimeout: 30 * time.Second,
		OnRound: func(rs cluster.RoundStats) {
			mu.Lock()
			stats = append(stats, rs)
			mu.Unlock()
			if rs.Iteration != 3 {
				return
			}
			// Between rounds 3 and 4: kill the worker process, then
			// restart it with the session token. OnRound blocks the
			// serve loop, so round 4 starts only after the rejoin is
			// parked for admission.
			killWorker()
			token := workerToken(srv, victim)
			go func() {
				_, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{
					ID:          victim,
					ResumeToken: token,
				})
				restarted <- err
			}()
			waitRejoinPending(t, srv, victim)
		},
	}
	var err error
	srv, err = NewServer("127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			ctx := context.Background()
			cfg := WorkerConfig{ID: u}
			if u == victim {
				ctx = workerCtx
				cfg.ReconnectAttempts = -1 // the test restarts it explicitly
			}
			_, err := RunWorker(ctx, srv.Addr(), cfg)
			if u == victim {
				if !errors.Is(err, context.Canceled) {
					t.Errorf("killed worker returned %v, want context.Canceled", err)
				}
			} else if err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()
	if err := <-restarted; err != nil {
		t.Errorf("restarted worker: %v", err)
	}

	if len(stats) != spec.Rounds {
		t.Fatalf("recorded %d rounds, want %d", len(stats), spec.Rounds)
	}
	for _, rs := range stats {
		if len(rs.MissingWorkers) != 0 {
			t.Errorf("round %d: missing %v — rejoin before the deadline must be invisible", rs.Iteration, rs.MissingWorkers)
		}
	}
	got := srv.Params()
	for i := range baseline {
		if math.Float64bits(got[i]) != math.Float64bits(baseline[i]) {
			t.Fatalf("param %d: rejoin run diverged from uninterrupted run (%x vs %x)",
				i, math.Float64bits(got[i]), math.Float64bits(baseline[i]))
		}
	}
}

// TestEvictedWorkerRejoinsAfterMissedRounds: a worker whose connection
// breaks mid-round is evicted and its rounds degrade; restarting it
// with the session token re-admits it at the next round boundary and
// MissingWorkers shrinks back to empty for the remaining rounds.
func TestEvictedWorkerRejoinsAfterMissedRounds(t *testing.T) {
	const victim = 2
	spec := testSpec(10)

	var mu sync.Mutex
	var stats []cluster.RoundStats
	var srv *Server
	restarted := make(chan error, 1)
	srvCfg := ServerConfig{
		Spec:         spec,
		RoundTimeout: 10 * time.Second,
		OnRound: func(rs cluster.RoundStats) {
			mu.Lock()
			stats = append(stats, rs)
			mu.Unlock()
			// After the first degraded round, restart the victim with
			// its token and hold the serve loop until it is parked.
			if rs.Iteration == 4 {
				token := workerToken(srv, victim)
				go func() {
					_, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{
						ID:          victim,
						ResumeToken: token,
					})
					restarted <- err
				}()
				waitRejoinPending(t, srv, victim)
			}
		},
	}
	var err error
	srv, err = NewServer("127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		if u == victim {
			continue
		}
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if _, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u}); err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	// Serve runs in the background: it owns the accept loop, so the
	// victim's manual handshake below needs it live.
	serveDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(context.Background())
		serveDone <- err
	}()

	// The victim joins manually, participates through round 3, then
	// drops its connection mid-round 4 without reporting — a real crash
	// as the server sees it (EOF ⇒ eviction).
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	victimConn := NewConn(raw)
	if _, err := victimConn.Send(Hello{WorkerID: victim, Version: wire.ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	msg, err := victimConn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	welcome, ok := msg.(Welcome)
	if !ok {
		t.Fatalf("expected Welcome, got %T", msg)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		st := &workerState{cfg: WorkerConfig{ID: victim, Behavior: BehaviorHonest}, lastApplied: -1}
		var err error
		if st.mdl, err = welcome.Spec.BuildModel(); err != nil {
			t.Error(err)
			return
		}
		if st.train, _, err = welcome.Spec.BuildData(); err != nil {
			t.Error(err)
			return
		}
		st.params = make([]float64, st.mdl.NumParams())
		initManualWorkerShards(st, welcome)
		for {
			msg, err := victimConn.Recv()
			if err != nil {
				t.Errorf("victim recv: %v", err)
				return
			}
			m, ok := msg.(RoundStart)
			if !ok {
				t.Errorf("victim got %T", msg)
				return
			}
			if err := st.applyParams(&m); err != nil {
				t.Error(err)
				return
			}
			if m.Iteration == 4 {
				victimConn.Close() // crash mid-round, report never sent
				return
			}
			files, samples, err := st.roundWork(&m)
			if err != nil {
				t.Error(err)
				return
			}
			msgs, err := st.computeReport(m.Iteration, files, samples)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := victimConn.SendMany(msgs...); err != nil {
				t.Errorf("victim send: %v", err)
				return
			}
		}
	}()

	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()
	if err := <-restarted; err != nil {
		t.Errorf("restarted worker: %v", err)
	}

	sawMissing := false
	for _, rs := range stats {
		switch {
		case rs.Iteration < 4:
			if len(rs.MissingWorkers) != 0 {
				t.Errorf("round %d: missing %v before the crash", rs.Iteration, rs.MissingWorkers)
			}
		case rs.Iteration == 4:
			if len(rs.MissingWorkers) != 1 || rs.MissingWorkers[0] != victim {
				t.Errorf("crash round missing %v, want [%d]", rs.MissingWorkers, victim)
			}
			sawMissing = true
		default:
			// Re-admitted at the round-5 boundary: participation is whole
			// again by the next round after the crash.
			if len(rs.MissingWorkers) != 0 {
				t.Errorf("round %d: missing %v after rejoin", rs.Iteration, rs.MissingWorkers)
			}
		}
	}
	if !sawMissing {
		t.Error("the crash round never degraded — test exercised nothing")
	}
}

// TestWireDeltaBroadcastReducesBytes: on the same spec, the default
// delta broadcast policy must move strictly fewer PS→worker bytes than
// FullBroadcastEvery=1 (full vector every round) while producing the
// identical parameter trajectory.
func TestWireDeltaBroadcastReducesBytes(t *testing.T) {
	spec := testSpec(8)
	run := func(fullEvery int) (int64, []float64) {
		t.Helper()
		var total int64
		srv, err := NewServer("127.0.0.1:0", ServerConfig{
			Spec:               spec,
			FullBroadcastEvery: fullEvery,
			OnRound: func(rs cluster.RoundStats) {
				if rs.Times.BroadcastBytes <= 0 {
					t.Errorf("round %d: no broadcast bytes measured", rs.Iteration)
				}
				total += rs.Times.BroadcastBytes
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		asn, err := spec.BuildAssignment()
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for u := 0; u < asn.K; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				if _, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u}); err != nil {
					t.Errorf("worker %d: %v", u, err)
				}
			}(u)
		}
		if _, err := srv.Serve(context.Background()); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		return total, srv.Params()
	}
	fullBytes, fullParams := run(1)
	deltaBytes, deltaParams := run(DefaultFullBroadcastEvery)
	if deltaBytes >= fullBytes {
		t.Errorf("delta broadcasts moved %d bytes, always-full %d — no saving", deltaBytes, fullBytes)
	}
	for i := range fullParams {
		if math.Float64bits(fullParams[i]) != math.Float64bits(deltaParams[i]) {
			t.Fatalf("param %d: broadcast policy changed the trajectory", i)
		}
	}
}

// TestCrashedWorkerDoesNotAbortTCPTraining: a worker that crashes
// mid-run (injected via the Spec's fault model) is evicted; the
// remaining rounds vote degraded over the surviving replicas and
// training completes with per-round participation stats instead of
// erroring out.
func TestCrashedWorkerDoesNotAbortTCPTraining(t *testing.T) {
	spec := testSpec(12)
	spec.Fault = "crash"
	spec.FaultParams = registry.FaultParams{Workers: []int{2}, Round: 4}

	var mu sync.Mutex
	var stats []cluster.RoundStats
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Spec:         spec,
		RoundTimeout: 10 * time.Second,
		OnRound: func(rs cluster.RoundStats) {
			mu.Lock()
			stats = append(stats, rs)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, asn.K)
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			_, errs[u] = RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u})
		}(u)
	}
	final, err := srv.Serve(context.Background())
	if err != nil {
		t.Fatalf("Serve aborted despite quorum being met: %v", err)
	}
	wg.Wait()

	if !errors.Is(errs[2], ErrInjectedCrash) {
		t.Errorf("worker 2 returned %v, want ErrInjectedCrash", errs[2])
	}
	for u, e := range errs {
		if u != 2 && e != nil {
			t.Errorf("worker %d: %v", u, e)
		}
	}
	if len(stats) != spec.Rounds {
		t.Fatalf("recorded %d round stats, want %d", len(stats), spec.Rounds)
	}
	for _, rs := range stats[:4] {
		if len(rs.MissingWorkers) != 0 {
			t.Errorf("round %d: missing %v before the crash", rs.Iteration, rs.MissingWorkers)
		}
	}
	for _, rs := range stats[4:] {
		if len(rs.MissingWorkers) != 1 || rs.MissingWorkers[0] != 2 {
			t.Errorf("round %d: missing %v, want [2]", rs.Iteration, rs.MissingWorkers)
		}
		// Worker 2 holds l = 5 files; with r = 3 each keeps 2 survivors,
		// which meets the default quorum of 2 → degraded, not dropped.
		if rs.DegradedFiles != 5 || rs.DroppedFiles != 0 {
			t.Errorf("round %d: degraded %d dropped %d, want 5/0", rs.Iteration, rs.DegradedFiles, rs.DroppedFiles)
		}
	}
	if final < 0.5 {
		t.Errorf("degraded training accuracy %.3f < 0.5", final)
	}
}

// TestFlakySkipsDoNotEvict: a flaky worker that skips rounds with an
// explicit empty report is counted missing for those rounds but keeps
// its connection and participates again later.
func TestFlakySkipsDoNotEvict(t *testing.T) {
	spec := testSpec(12)
	spec.Fault = "flaky"
	spec.FaultParams = registry.FaultParams{Workers: []int{1}, P: 0.5, Seed: 9}

	var mu sync.Mutex
	var stats []cluster.RoundStats
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Spec: spec,
		OnRound: func(rs cluster.RoundStats) {
			mu.Lock()
			stats = append(stats, rs)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, asn.K)
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			_, errs[u] = RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u})
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for u, e := range errs {
		if e != nil {
			t.Errorf("worker %d: %v (flaky skips must not kill workers)", u, e)
		}
	}
	skipped, full := 0, 0
	for _, rs := range stats {
		if len(rs.MissingWorkers) > 0 {
			skipped++
		} else {
			full++
		}
	}
	if skipped == 0 || full == 0 {
		t.Errorf("flaky worker: %d skipped rounds, %d full rounds; want both > 0", skipped, full)
	}
}

// TestHeterogeneousWireFaults: Spec.Faults composes distinct fault
// models for distinct workers in one run — worker 1 is flaky while
// worker 3 fail-stops mid-run — and every worker process derives the
// same composed schedule from the Spec alone.
func TestHeterogeneousWireFaults(t *testing.T) {
	spec := testSpec(12)
	spec.Faults = []FaultSpec{
		{Name: "flaky", Params: registry.FaultParams{Workers: []int{1}, P: 0.5, Seed: 9}},
		{Name: "crash", Params: registry.FaultParams{Workers: []int{3}, Round: 6}},
	}

	var mu sync.Mutex
	var stats []cluster.RoundStats
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Spec:         spec,
		RoundTimeout: 10 * time.Second,
		OnRound: func(rs cluster.RoundStats) {
			mu.Lock()
			stats = append(stats, rs)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, asn.K)
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			_, errs[u] = RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u})
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()

	if !errors.Is(errs[3], ErrInjectedCrash) {
		t.Errorf("crashing worker 3 returned %v, want ErrInjectedCrash", errs[3])
	}
	for u, e := range errs {
		if u != 3 && e != nil {
			t.Errorf("worker %d: %v", u, e)
		}
	}
	flakyMissed := 0
	for _, rs := range stats {
		if rs.Iteration >= 6 && !slices.Contains(rs.MissingWorkers, 3) {
			t.Errorf("round %d: crashed worker 3 not missing (%v)", rs.Iteration, rs.MissingWorkers)
		}
		if slices.Contains(rs.MissingWorkers, 1) {
			flakyMissed++
		}
	}
	if flakyMissed == 0 || flakyMissed == len(stats) {
		t.Errorf("flaky worker 1 missed %d/%d rounds; want strictly between", flakyMissed, len(stats))
	}
}

// TestStragglerPastDeadlineMissesRoundsButSurvives: a worker whose
// every report is slower than the round deadline is marked missing each
// round, but — because frames are self-delimiting and reads resume —
// its connection survives: the server discards its stale reports at the
// next round boundary and the worker still receives the final Shutdown
// instead of being torn down. (Under protocol v1's gob stream the first
// missed deadline evicted it permanently.)
func TestStragglerPastDeadlineMissesRoundsButSurvives(t *testing.T) {
	spec := testSpec(3)
	spec.Fault = "straggler"
	spec.FaultParams = registry.FaultParams{Workers: []int{3}, Delay: 700 * time.Millisecond}

	var mu sync.Mutex
	var stats []cluster.RoundStats
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Spec:         spec,
		RoundTimeout: 200 * time.Millisecond,
		OnRound: func(rs cluster.RoundStats) {
			mu.Lock()
			stats = append(stats, rs)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, asn.K)
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			_, errs[u] = RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u})
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatalf("Serve aborted: %v", err)
	}
	wg.Wait()
	for u, e := range errs {
		if e != nil {
			t.Errorf("worker %d: %v (stragglers must stay connected)", u, e)
		}
	}
	for _, rs := range stats {
		if len(rs.MissingWorkers) != 1 || rs.MissingWorkers[0] != 3 {
			t.Errorf("round %d: missing %v, want [3]", rs.Iteration, rs.MissingWorkers)
		}
	}
}
