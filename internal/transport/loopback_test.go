package transport

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"byzshield/internal/cluster"
	"byzshield/internal/registry"
)

// engineParams runs the in-process engine over the experiment described
// by spec at the given pool width and returns the final parameters.
func engineParams(t *testing.T, spec Spec, parallelism int) []float64 {
	t.Helper()
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := spec.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := spec.BuildData()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := spec.BuildAggregator()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{
		Assignment: asn, Model: mdl, Train: train, Test: test,
		BatchSize: spec.BatchSize, Aggregator: agg,
		Schedule: spec.Schedule, Momentum: spec.Momentum, Seed: spec.Seed,
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < spec.Rounds; i++ {
		if _, err := eng.RunRound(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	return eng.Params()
}

// wireParams runs the same experiment over loopback TCP and returns the
// server's final parameters.
func wireParams(t *testing.T, spec Spec) []float64 {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if _, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u}); err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return srv.Params()
}

// TestLoopbackBitIdenticalToEngine: for a fixed seed with no faults,
// the serial in-process engine, the pooled in-process engine, and the
// TCP loopback cluster all execute the shared round core and must
// produce bit-identical final parameters — the wire is a transparent
// gradient source, not a second implementation of the protocol.
func TestLoopbackBitIdenticalToEngine(t *testing.T) {
	spec := testSpec(8)
	serial := engineParams(t, spec, 1)
	pooled := engineParams(t, spec, 4)
	wired := wireParams(t, spec)
	if len(serial) != len(pooled) || len(serial) != len(wired) {
		t.Fatalf("param lengths diverge: %d / %d / %d", len(serial), len(pooled), len(wired))
	}
	for i := range serial {
		sb := math.Float64bits(serial[i])
		if pb := math.Float64bits(pooled[i]); pb != sb {
			t.Fatalf("param %d: pooled engine diverged (%x vs %x)", i, pb, sb)
		}
		if wb := math.Float64bits(wired[i]); wb != sb {
			t.Fatalf("param %d: wire path diverged (%x vs %x)", i, wb, sb)
		}
	}
}

// TestCrashedWorkerDoesNotAbortTCPTraining: a worker that crashes
// mid-run (injected via the Spec's fault model) is evicted; the
// remaining rounds vote degraded over the surviving replicas and
// training completes with per-round participation stats instead of
// erroring out.
func TestCrashedWorkerDoesNotAbortTCPTraining(t *testing.T) {
	spec := testSpec(12)
	spec.Fault = "crash"
	spec.FaultParams = registry.FaultParams{Workers: []int{2}, Round: 4}

	var mu sync.Mutex
	var stats []cluster.RoundStats
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Spec:         spec,
		RoundTimeout: 10 * time.Second,
		OnRound: func(rs cluster.RoundStats) {
			mu.Lock()
			stats = append(stats, rs)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, asn.K)
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			_, errs[u] = RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u})
		}(u)
	}
	final, err := srv.Serve(context.Background())
	if err != nil {
		t.Fatalf("Serve aborted despite quorum being met: %v", err)
	}
	wg.Wait()

	if !errors.Is(errs[2], ErrInjectedCrash) {
		t.Errorf("worker 2 returned %v, want ErrInjectedCrash", errs[2])
	}
	for u, e := range errs {
		if u != 2 && e != nil {
			t.Errorf("worker %d: %v", u, e)
		}
	}
	if len(stats) != spec.Rounds {
		t.Fatalf("recorded %d round stats, want %d", len(stats), spec.Rounds)
	}
	for _, rs := range stats[:4] {
		if len(rs.MissingWorkers) != 0 {
			t.Errorf("round %d: missing %v before the crash", rs.Iteration, rs.MissingWorkers)
		}
	}
	for _, rs := range stats[4:] {
		if len(rs.MissingWorkers) != 1 || rs.MissingWorkers[0] != 2 {
			t.Errorf("round %d: missing %v, want [2]", rs.Iteration, rs.MissingWorkers)
		}
		// Worker 2 holds l = 5 files; with r = 3 each keeps 2 survivors,
		// which meets the default quorum of 2 → degraded, not dropped.
		if rs.DegradedFiles != 5 || rs.DroppedFiles != 0 {
			t.Errorf("round %d: degraded %d dropped %d, want 5/0", rs.Iteration, rs.DegradedFiles, rs.DroppedFiles)
		}
	}
	if final < 0.5 {
		t.Errorf("degraded training accuracy %.3f < 0.5", final)
	}
}

// TestFlakySkipsDoNotEvict: a flaky worker that skips rounds with an
// explicit empty report is counted missing for those rounds but keeps
// its connection and participates again later.
func TestFlakySkipsDoNotEvict(t *testing.T) {
	spec := testSpec(12)
	spec.Fault = "flaky"
	spec.FaultParams = registry.FaultParams{Workers: []int{1}, P: 0.5, Seed: 9}

	var mu sync.Mutex
	var stats []cluster.RoundStats
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Spec: spec,
		OnRound: func(rs cluster.RoundStats) {
			mu.Lock()
			stats = append(stats, rs)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, asn.K)
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			_, errs[u] = RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u})
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for u, e := range errs {
		if e != nil {
			t.Errorf("worker %d: %v (flaky skips must not kill workers)", u, e)
		}
	}
	skipped, full := 0, 0
	for _, rs := range stats {
		if len(rs.MissingWorkers) > 0 {
			skipped++
		} else {
			full++
		}
	}
	if skipped == 0 || full == 0 {
		t.Errorf("flaky worker: %d skipped rounds, %d full rounds; want both > 0", skipped, full)
	}
}

// TestStragglerPastDeadlineIsEvicted: a worker whose every report is
// slower than the round deadline is evicted on the first round; the
// cluster trains on without it.
func TestStragglerPastDeadlineIsEvicted(t *testing.T) {
	spec := testSpec(6)
	spec.Fault = "straggler"
	spec.FaultParams = registry.FaultParams{Workers: []int{3}, Delay: 2 * time.Second}

	var mu sync.Mutex
	var stats []cluster.RoundStats
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Spec:         spec,
		RoundTimeout: 250 * time.Millisecond,
		OnRound: func(rs cluster.RoundStats) {
			mu.Lock()
			stats = append(stats, rs)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, asn.K)
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			_, errs[u] = RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u})
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatalf("Serve aborted: %v", err)
	}
	wg.Wait()
	if errs[3] == nil {
		t.Error("straggler worker 3 finished cleanly despite eviction")
	}
	for u, e := range errs {
		if u != 3 && e != nil {
			t.Errorf("worker %d: %v", u, e)
		}
	}
	for _, rs := range stats {
		if len(rs.MissingWorkers) != 1 || rs.MissingWorkers[0] != 3 {
			t.Errorf("round %d: missing %v, want [3]", rs.Iteration, rs.MissingWorkers)
		}
	}
}
