package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"byzshield/internal/aggregate"
	byzregistry "byzshield/internal/registry"
	"byzshield/internal/trainer"
	"byzshield/internal/wire"
)

func testSpec(rounds int) Spec {
	return Spec{
		Scheme: "mols", L: 5, R: 3,
		TrainN: 400, TestN: 100, Dim: 8, Classes: 4, DataSeed: 21, ClassSep: 3,
		BatchSize: 50,
		Schedule:  trainer.Schedule{Base: 0.05, Decay: 0.96, Every: 20},
		Momentum:  0.9, Seed: 2, Rounds: rounds,
	}
}

// runCluster starts a PS and K worker goroutines over loopback TCP and
// returns the final accuracy.
func runCluster(t *testing.T, spec Spec, byz map[int]WorkerBehavior, agg aggregate.Aggregator) float64 {
	t.Helper()
	ctx := context.Background()
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec, Aggregator: agg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, asn.K)
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			behavior := BehaviorHonest
			if b, ok := byz[u]; ok {
				behavior = b
			}
			_, errs[u] = RunWorker(ctx, srv.Addr(), WorkerConfig{ID: u, Behavior: behavior})
		}(u)
	}
	final, err := srv.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for u, e := range errs {
		if e != nil {
			t.Fatalf("worker %d: %v", u, e)
		}
	}
	return final
}

func TestTCPClusterHonestTraining(t *testing.T) {
	final := runCluster(t, testSpec(30), nil, aggregate.Median{})
	if final < 0.6 {
		t.Errorf("honest TCP training accuracy %.3f < 0.6", final)
	}
}

func TestTCPClusterToleratesByzantines(t *testing.T) {
	// Two Byzantines sending reversed gradients: below r' on every
	// shared file except one (MOLS q=2 → c_max=1 of 25), median absorbs.
	byz := map[int]WorkerBehavior{0: BehaviorReversed, 5: BehaviorReversed}
	final := runCluster(t, testSpec(30), byz, aggregate.Median{})
	if final < 0.6 {
		t.Errorf("TCP training with 2 Byzantines reached %.3f", final)
	}
}

func TestTCPClusterConstantAttack(t *testing.T) {
	byz := map[int]WorkerBehavior{3: BehaviorConstant, 9: BehaviorZero}
	final := runCluster(t, testSpec(20), byz, aggregate.Median{})
	if final < 0.5 {
		t.Errorf("TCP training with constant/zero Byzantines reached %.3f", final)
	}
}

func TestBuildAssignmentSchemes(t *testing.T) {
	cases := []Spec{
		{Scheme: "mols", L: 5, R: 3},
		{Scheme: "ramanujan1", L: 5, R: 3},
		{Scheme: "ramanujan2", L: 5, R: 5},
		{Scheme: "frc", K: 15, R: 3},
		{Scheme: "baseline", K: 10},
		{Scheme: "random", K: 15, F: 25, R: 3, Seed: 7},
	}
	for _, spec := range cases {
		a, err := spec.BuildAssignment()
		if err != nil {
			t.Errorf("%s: %v", spec.Scheme, err)
			continue
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Scheme, err)
		}
	}
	bad := Spec{Scheme: "nope"}
	if _, err := bad.BuildAssignment(); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestServerRejectsBadConfig(t *testing.T) {
	spec := testSpec(10)
	spec.Rounds = 0
	if _, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec, Aggregator: aggregate.Median{}}); err == nil {
		t.Error("0 rounds accepted")
	}
	spec = testSpec(5)
	spec.BatchSize = 10 // < f = 25
	if _, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec, Aggregator: aggregate.Median{}}); err == nil {
		t.Error("batch < files accepted")
	}
	spec = testSpec(5)
	spec.Aggregator = "nope"
	if _, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec}); err == nil {
		t.Error("unknown aggregator name accepted")
	}
}

// TestServerResolvesAggregatorFromSpec: a nil ServerConfig.Aggregator
// resolves the registry name carried by the Spec.
func TestServerResolvesAggregatorFromSpec(t *testing.T) {
	spec := testSpec(5)
	spec.Aggregator = "median-of-means"
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.cfg.Aggregator.Name(); got != "median-of-means(3)" {
		t.Errorf("aggregator = %q", got)
	}
}

// TestServeCancellation: canceling the server context mid-training must
// return promptly with context.Canceled, and workers unblock too.
func TestServeCancellation(t *testing.T) {
	spec := testSpec(100000) // far more rounds than can run in the test
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec, Aggregator: aggregate.Median{}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	workerErrs := make([]error, asn.K)
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			_, workerErrs[u] = RunWorker(ctx, srv.Addr(), WorkerConfig{ID: u})
		}(u)
	}

	serveDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ctx)
		serveDone <- err
	}()

	// Let a few rounds complete, then cancel.
	time.Sleep(200 * time.Millisecond)
	cancel()

	select {
	case err := <-serveDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Serve returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
	wg.Wait()
	for u, e := range workerErrs {
		if e == nil {
			t.Errorf("worker %d finished cleanly despite cancellation", u)
		}
	}
}

func TestConnSendRecvRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	done := make(chan error, 1)
	go func() {
		_, err := ca.Send(Hello{WorkerID: 7, Version: wire.ProtocolVersion, Token: 99, Resume: true})
		done <- err
	}()
	msg, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	hello, ok := msg.(Hello)
	if !ok || hello.WorkerID != 7 || hello.Version != wire.ProtocolVersion || hello.Token != 99 || !hello.Resume {
		t.Fatalf("got %#v", msg)
	}
}

// TestConnRecvResumesAfterDeadline: a read deadline that fires while a
// frame is partially delivered must not poison the stream — the next
// Recv picks the frame up where the timeout left it. This is the
// property that lets the server keep slow workers connected.
func TestConnRecvResumesAfterDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	cb := NewConn(b)

	full, err := Hello{WorkerID: 3, Version: wire.ProtocolVersion}.appendPayload(nil)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.AppendFrame(nil, msgHello, full)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver the first half, then nothing until after the deadline.
	firstHalf, secondHalf := frame[:len(frame)/2], frame[len(frame)/2:]
	go a.Write(firstHalf)
	cb.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := cb.Recv(); err == nil {
		t.Fatal("Recv returned a message from half a frame")
	}
	// Second half arrives; the resumed Recv completes the same frame.
	go a.Write(secondHalf)
	cb.SetReadDeadline(time.Now().Add(2 * time.Second))
	msg, err := cb.Recv()
	if err != nil {
		t.Fatalf("resumed Recv: %v", err)
	}
	hello, ok := msg.(Hello)
	if !ok || hello.WorkerID != 3 {
		t.Fatalf("resumed Recv got %#v", msg)
	}
}

// TestSpecWireRoundTrip: the hand-rolled Spec payload codec preserves
// every field workers depend on, including composed per-worker faults
// (the legacy single Fault folds into the Faults list).
func TestSpecWireRoundTrip(t *testing.T) {
	spec := testSpec(7)
	spec.Aggregator = "bulyan"
	spec.AggParams = byzregistry.AggregatorParams{C: 2, Groups: 5, Threshold: 0.25}
	spec.Hidden = 12
	spec.Fault = "flaky"
	spec.FaultParams = byzregistry.FaultParams{Workers: []int{1, 4}, P: 0.3, Seed: 8}
	spec.Faults = []FaultSpec{
		{Name: "straggler", Params: byzregistry.FaultParams{Workers: []int{9}, Delay: 2 * time.Second}},
	}
	enc, err := appendSpec(nil, &spec)
	if err != nil {
		t.Fatal(err)
	}
	var got Spec
	d := wire.NewDec(enc)
	decodeSpec(d, &got)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	// The single Fault folds into Faults on the wire; compare the
	// composed models and the remaining fields.
	wantFault, err := spec.BuildFault()
	if err != nil {
		t.Fatal(err)
	}
	gotFault, err := got.BuildFault()
	if err != nil {
		t.Fatal(err)
	}
	if wantFault.Name() != gotFault.Name() {
		t.Errorf("fault %q, want %q", gotFault.Name(), wantFault.Name())
	}
	got.Faults, spec.Faults = nil, nil
	got.Fault, spec.Fault = "", ""
	got.FaultParams, spec.FaultParams = byzregistry.FaultParams{}, byzregistry.FaultParams{}
	if !reflect.DeepEqual(got, spec) {
		t.Errorf("spec round-trip mismatch:\n got %+v\nwant %+v", got, spec)
	}
}

// TestServerSurvivesBadHellos: duplicate, out-of-range, and malformed
// Hello connections are rejected individually — the rejected connection
// is closed, the server keeps accepting, and the full worker fleet
// still joins and trains to completion afterwards.
func TestServerSurvivesBadHellos(t *testing.T) {
	spec := testSpec(3)
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec, Aggregator: aggregate.Median{}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	serveDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(context.Background())
		serveDone <- err
	}()

	dial := func(id int) *Conn {
		raw, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c := NewConn(raw)
		if _, err := c.Send(Hello{WorkerID: id, Version: wire.ProtocolVersion}); err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Legit worker 0 joins.
	c1 := dial(0)
	defer c1.Close()
	if _, err := c1.Recv(); err != nil { // Welcome
		t.Fatal(err)
	}
	// A duplicate of worker 0, an out-of-range id, a wrong protocol
	// version, a bogus rejoin token, and a non-Hello first message must
	// each be rejected (their conn closed) without tearing the server
	// down.
	for name, mk := range map[string]func() *Conn{
		"duplicate id": func() *Conn { return dial(0) },
		"id oob":       func() *Conn { return dial(9999) },
		"bad version": func() *Conn {
			raw, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			c := NewConn(raw)
			if _, err := c.Send(Hello{WorkerID: 1, Version: 99}); err != nil {
				t.Fatal(err)
			}
			return c
		},
		"bad rejoin token": func() *Conn {
			raw, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			c := NewConn(raw)
			if _, err := c.Send(Hello{WorkerID: 0, Version: wire.ProtocolVersion, Token: 12345, Resume: true}); err != nil {
				t.Fatal(err)
			}
			return c
		},
		"not a hello": func() *Conn {
			raw, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			c := NewConn(raw)
			if _, err := c.Send(Shutdown{}); err != nil {
				t.Fatal(err)
			}
			return c
		},
	} {
		c := mk()
		msg, err := c.Recv()
		if name == "bad version" {
			// Version mismatches get a typed Reject before the close, so
			// old peers have diagnosable bytes on their socket.
			if rej, ok := msg.(Reject); err != nil || !ok || rej.Code != RejectVersion {
				t.Errorf("%s: got (%T, %v), want Reject{RejectVersion}", name, msg, err)
			}
			if _, err := c.Recv(); err == nil {
				t.Errorf("%s: connection left open after the reject", name)
			}
		} else if err == nil {
			t.Errorf("%s: connection was not rejected", name)
		}
		c.Close()
	}

	// The remaining workers join normally and training completes.
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 1; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if _, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{ID: u}); err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	// Worker 0 participates over its already-established connection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := driveWorker(t, c1, 0, spec); err != nil {
			t.Errorf("worker 0: %v", err)
		}
	}()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Serve did not complete")
	}
	wg.Wait()
}

// driveWorker participates in training over an already-handshaken
// connection (used when the test dialed Hello manually), applying full
// and delta parameter broadcasts exactly like RunWorker.
func driveWorker(t *testing.T, c *Conn, id int, spec Spec) error {
	t.Helper()
	st := &workerState{cfg: WorkerConfig{ID: id, Behavior: BehaviorHonest}, lastApplied: -1}
	var err error
	if st.mdl, err = spec.BuildModel(); err != nil {
		return err
	}
	if st.train, _, err = spec.BuildData(); err != nil {
		return err
	}
	st.params = make([]float64, st.mdl.NumParams())
	// Unsharded raw-frame uplink: raw frames decode under any server
	// delta policy.
	initManualWorkerShards(st, Welcome{})
	for {
		msg, err := c.Recv()
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case RoundStart:
			if err := st.applyParams(&m); err != nil {
				return err
			}
			files, samples, err := st.roundWork(&m)
			if err != nil {
				return err
			}
			msgs, err := st.computeReport(m.Iteration, files, samples)
			if err != nil {
				return err
			}
			if _, err := c.SendMany(msgs...); err != nil {
				return err
			}
		case Shutdown:
			return nil
		default:
			return fmt.Errorf("unexpected message %T", msg)
		}
	}
}

func TestSpecBuilders(t *testing.T) {
	spec := testSpec(1)
	m, err := spec.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	if m.InputDim() != 8 || m.Classes() != 4 {
		t.Error("softmax spec wrong")
	}
	spec.Hidden = 16
	m2, err := spec.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumParams() <= m.NumParams() {
		t.Error("MLP should have more params")
	}
	tr, te, err := spec.BuildData()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 400 || te.Len() != 100 {
		t.Error("data sizes wrong")
	}
}
