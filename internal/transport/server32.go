package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"byzshield/internal/assign"
	"byzshield/internal/cluster"
	"byzshield/internal/trainer"
	"byzshield/internal/wire"
)

// ServerConfig32 configures a float32-precision parameter server: the
// protocol v7 endpoint whose every params broadcast and gradient report
// carries float32 values (the f32 codec set of internal/wire). The f32
// tier is deliberately narrower than the f64 server — no fault
// injection, detection, adversary coordination, report sharding, or
// pipelining — because its purpose is the performance envelope: the
// same synchronous ByzShield round at half the wire traffic and the f32
// kernel throughput, bit-identical to the in-process cluster.Engine32.
type ServerConfig32 struct {
	// Spec describes the experiment; workers rebuild their state from
	// the Welcome's copy. The f32 tier supports the softmax model only
	// (Hidden must be 0) and no fault/detector components.
	Spec Spec
	// Quorum is the per-file survivor floor (0 = R/2 + 1).
	Quorum int
	// Parallelism is the engine pool width (0 = GOMAXPROCS).
	Parallelism int
	// Shards splits aggregation and the optimizer step into coordinate
	// ranges on the engine; bit-identical at any count. Reports stay
	// whole-vector on the wire (the f32 tier does not shard frames).
	Shards int
	// RoundTimeout bounds one round's collection (0 = default).
	RoundTimeout time.Duration
	// FullBroadcastEvery is the full-params cadence; deltas in between.
	FullBroadcastEvery int
	// EvalEvery is the evaluation cadence in rounds (0 = 10).
	EvalEvery int
	// Uplink is the preferred gradient report tier; each connection
	// negotiates down to the best tier its worker offers.
	Uplink wire.UplinkTier
	// OnRound, when non-nil, observes every completed round from the
	// serve loop. It blocks the next round, which is what the rejoin
	// tests use to pin re-admission to a chosen boundary.
	OnRound func(cluster.RoundStats)
	// Logf receives progress lines; nil disables logging.
	Logf func(format string, args ...any)
}

// Server32 is the float32 parameter server. It mirrors Server's
// connection lifecycle — accept loop, Hello/Welcome handshake with
// typed rejects, token-validated rejoins admitted at round boundaries,
// reader pumps feeding a deadline-bounded collection loop — over the
// reduced-precision engine and frame codecs.
type Server32 struct {
	cfg        ServerConfig32
	listener   net.Listener
	assignment *assign.Assignment
	eng        *cluster.Engine32
	src        *wireSource32

	mu      sync.Mutex
	conns   []*Conn
	serving bool

	histMu  sync.Mutex
	history trainer.History
}

// NewServer32 validates the configuration, builds the f32 engine, and
// binds the listen address.
func NewServer32(addr string, cfg ServerConfig32) (*Server32, error) {
	if cfg.Spec.Rounds < 1 {
		return nil, fmt.Errorf("transport: rounds %d < 1", cfg.Spec.Rounds)
	}
	if cfg.Spec.Fault != "" || len(cfg.Spec.Faults) > 0 {
		return nil, fmt.Errorf("transport: the f32 precision tier has no fault-injection plane")
	}
	if cfg.Spec.Detector != "" && cfg.Spec.Detector != "none" {
		return nil, fmt.Errorf("transport: the f32 precision tier has no detection plane")
	}
	asn, err := cfg.Spec.BuildAssignment()
	if err != nil {
		return nil, err
	}
	cfg.Spec.K = asn.K
	mdl, err := cfg.Spec.BuildModel32()
	if err != nil {
		return nil, err
	}
	agg, err := cfg.Spec.BuildAggregator32()
	if err != nil {
		return nil, err
	}
	train, test, err := cfg.Spec.BuildData()
	if err != nil {
		return nil, err
	}
	if cfg.EvalEvery < 1 {
		cfg.EvalEvery = 10
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = DefaultRoundTimeout
	}
	if cfg.FullBroadcastEvery == 0 {
		cfg.FullBroadcastEvery = DefaultFullBroadcastEvery
	}
	if cfg.FullBroadcastEvery < 1 {
		return nil, fmt.Errorf("transport: full-broadcast cadence %d < 1", cfg.FullBroadcastEvery)
	}
	if !cfg.Uplink.Valid() {
		return nil, fmt.Errorf("transport: unknown uplink tier %d", cfg.Uplink)
	}
	src := newWireSource32(asn, cfg.RoundTimeout, cfg.FullBroadcastEvery, cfg.Logf)
	src.uplink = cfg.Uplink
	eng, err := cluster.New32(cluster.Config32{
		Assignment:  asn,
		Model:       mdl,
		Train:       train,
		Test:        test,
		BatchSize:   cfg.Spec.BatchSize,
		Aggregator:  agg,
		Schedule:    cfg.Spec.Schedule,
		Momentum:    cfg.Spec.Momentum,
		Seed:        cfg.Spec.Seed,
		Quorum:      cfg.Quorum,
		Parallelism: cfg.Parallelism,
		Shards:      cfg.Shards,
		Source:      src,
	})
	if err != nil {
		return nil, err
	}
	src.bind(eng, mdl.NumParams())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		eng.Close()
		return nil, err
	}
	return &Server32{
		cfg:        cfg,
		listener:   ln,
		assignment: asn,
		eng:        eng,
		src:        src,
	}, nil
}

// Addr returns the bound listen address.
func (s *Server32) Addr() string { return s.listener.Addr().String() }

// Close releases the listener and, when no Serve is in flight, the
// engine's pool goroutines (Serve's exit path releases them otherwise).
func (s *Server32) Close() error {
	err := s.listener.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.serving {
		s.eng.Close()
	}
	return err
}

// Params returns a copy of the current float32 parameter vector — used
// to verify trajectory identity against the in-process engine.
func (s *Server32) Params() []float32 { return s.eng.Params() }

// History returns the recorded evaluation series (valid once Serve has
// returned).
func (s *Server32) History() *trainer.History {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	return &s.history
}

// Counters returns the cumulative connection-lifecycle totals.
func (s *Server32) Counters() Counters {
	return Counters{
		Joins:       s.src.joins.Load(),
		Rejoins:     s.src.rejoins.Load(),
		Evictions:   s.src.evictions.Load(),
		StaleFrames: s.src.staleFrames.Load(),
	}
}

// track registers a connection for cancellation teardown.
func (s *Server32) track(c *Conn) {
	s.mu.Lock()
	s.conns = append(s.conns, c)
	s.mu.Unlock()
}

// teardown closes the listener and every tracked connection.
func (s *Server32) teardown() {
	s.src.markClosing()
	s.listener.Close()
	s.mu.Lock()
	conns := append([]*Conn(nil), s.conns...)
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// acceptLoop accepts connections for the whole run, handshaking each on
// its own goroutine.
func (s *Server32) acceptLoop(ctx context.Context, done chan<- error) {
	for {
		raw, err := s.listener.Accept()
		if err != nil {
			select {
			case done <- err:
			default:
			}
			return
		}
		conn := NewConn(raw)
		s.track(conn)
		go s.handshake(ctx, conn)
	}
}

// sendReject refuses a handshake with a typed Reject before closing.
func (s *Server32) sendReject(conn *Conn, code uint8, reason string) {
	s.cfg.Logf("rejecting %s: %s", conn.RemoteAddr(), reason)
	conn.SetWriteDeadline(time.Now().Add(helloTimeout))
	if _, err := conn.Send(Reject{Code: code, Reason: reason}); err != nil {
		s.cfg.Logf("reject send to %s: %v", conn.RemoteAddr(), err)
	}
	conn.Close()
}

// handshake runs one connection's Hello/Welcome exchange under the same
// discipline as Server.handshake: a bad handshake rejects this
// connection only. The f32 server requires the f32 bit in the Hello's
// precision mask — a pre-v7 peer is caught by the frame-header version
// check before the mask is even read.
func (s *Server32) handshake(ctx context.Context, conn *Conn) {
	reject := func(format string, args ...any) {
		s.cfg.Logf("rejecting %s: %s", conn.RemoteAddr(), fmt.Sprintf(format, args...))
		conn.Close()
	}
	conn.SetReadDeadline(time.Now().Add(helloTimeout))
	msg, err := conn.Recv()
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		if errors.Is(err, wire.ErrVersionMismatch) {
			s.sendReject(conn, RejectVersion, fmt.Sprintf("%v", err))
			return
		}
		reject("hello: %v", ctxErr(ctx, err))
		return
	}
	hello, ok := msg.(Hello)
	if !ok {
		reject("expected Hello, got %T", msg)
		return
	}
	if hello.Version != wire.ProtocolVersion {
		s.sendReject(conn, RejectVersion,
			fmt.Sprintf("protocol version %d, want %d", hello.Version, wire.ProtocolVersion))
		return
	}
	if !precisionOffered(hello.Precisions, wire.PrecisionF32) {
		s.sendReject(conn, RejectPrecision,
			fmt.Sprintf("worker %d offers precision mask %#x, server runs %s",
				hello.WorkerID, hello.Precisions, wire.PrecisionF32))
		return
	}
	tier := negotiateTier(s.src.uplink, hello.Tiers)
	k := s.assignment.K
	if hello.WorkerID < 0 || hello.WorkerID >= k {
		reject("worker id %d out of range [0,%d)", hello.WorkerID, k)
		return
	}
	token, err := newToken()
	if err != nil {
		reject("token: %v", err)
		return
	}
	ws := s.src
	ws.mu.Lock()
	w := &ws.workers[hello.WorkerID]
	switch {
	case !w.joined:
		// First join: reserve the slot, publish after the Welcome is on
		// the wire (see Server.handshake).
		w.joined = true
		w.token = token
		ws.mu.Unlock()
	case hello.Resume && hello.Token == w.token:
		ws.mu.Unlock()
	case hello.Resume:
		ws.mu.Unlock()
		reject("worker %d rejoin with bad token", hello.WorkerID)
		return
	default:
		ws.mu.Unlock()
		reject("worker %d already connected", hello.WorkerID)
		return
	}
	if _, err := conn.Send(Welcome{
		Version:   wire.ProtocolVersion,
		Token:     token,
		FullEvery: s.cfg.FullBroadcastEvery,
		Uplink:    tier,
		Spec:      s.cfg.Spec,
		Shards:    1,
		Precision: wire.PrecisionF32,
	}); err != nil {
		if !hello.Resume {
			ws.mu.Lock()
			w := &ws.workers[hello.WorkerID]
			w.joined = false
			w.token = 0
			ws.mu.Unlock()
		}
		reject("welcome: %v", ctxErr(ctx, err))
		return
	}
	ws.mu.Lock()
	if ws.closing {
		ws.mu.Unlock()
		reject("server shutting down")
		return
	}
	w = &ws.workers[hello.WorkerID]
	w.token = token
	w.tier = tier
	var stale []*Conn
	if hello.Resume {
		// Rejoins park for round-boundary admission; the valid token
		// proves the old stream is dead.
		stale = append(stale, w.conn, w.pending)
		w.conn = nil
		w.pending = conn
	} else {
		w.conn = conn
		w.lastAck = -1
		ws.joinedCount++
		ws.joins.Add(1)
		ws.startPump(hello.WorkerID, conn)
	}
	joined := ws.joinedCount
	ws.mu.Unlock()
	for _, c := range stale {
		if c != nil {
			c.Close()
		}
	}
	if tier != s.src.uplink {
		s.cfg.Logf("worker %d: uplink tier %s unsupported by peer, downgraded to %s",
			hello.WorkerID, s.src.uplink, tier)
	}
	if hello.Resume {
		s.cfg.Logf("worker %d reconnected from %s (re-admission at next round)",
			hello.WorkerID, conn.RemoteAddr())
	} else {
		s.cfg.Logf("worker %d joined from %s (%d/%d)", hello.WorkerID, conn.RemoteAddr(), joined, k)
		select {
		case ws.joinedCh <- struct{}{}:
		default:
		}
	}
}

// Serve runs the full f32 training session: join barrier, Rounds
// protocol rounds, final evaluation, Shutdown broadcast. It mirrors
// Server.Serve without the detection, pipeline, and background-eval
// planes.
func (s *Server32) Serve(ctx context.Context) (float64, error) {
	s.mu.Lock()
	s.serving = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.serving = false
		s.mu.Unlock()
		s.eng.Close()
	}()
	stop := context.AfterFunc(ctx, s.teardown)
	defer stop()

	acceptDone := make(chan error, 1)
	go s.acceptLoop(ctx, acceptDone)
	defer s.listener.Close()
	defer s.src.shutdown()

	k := s.assignment.K
	for {
		if s.src.joinedWorkers() >= k {
			break
		}
		select {
		case <-s.src.joinedCh:
		case err := <-acceptDone:
			return 0, fmt.Errorf("transport: accept: %w", ctxErr(ctx, err))
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}

	for t := 0; t < s.cfg.Spec.Rounds; t++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		stats, err := s.eng.StepOnce(ctx)
		if err != nil {
			return 0, fmt.Errorf("transport: round %d: %w", t, ctxErr(ctx, err))
		}
		if len(stats.MissingWorkers) > 0 {
			s.cfg.Logf("round %d: missing workers %v (%d degraded, %d dropped files)",
				t, stats.MissingWorkers, stats.DegradedFiles, stats.DroppedFiles)
		}
		if s.cfg.OnRound != nil {
			s.cfg.OnRound(stats)
		}
		if (t+1)%s.cfg.EvalEvery == 0 || t == s.cfg.Spec.Rounds-1 {
			loss, acc := s.eng.EvalLoss(), s.eng.Evaluate()
			s.histMu.Lock()
			s.history.Add(t+1, loss, acc)
			s.histMu.Unlock()
			s.cfg.Logf("round %d: loss=%.4f acc=%.4f", t+1, loss, acc)
		}
	}
	final := s.eng.Evaluate()
	for _, c := range s.src.shutdownConns() {
		c.SetWriteDeadline(time.Now().Add(helloTimeout))
		if _, err := c.Send(Shutdown{FinalAccuracy: final}); err != nil {
			s.cfg.Logf("shutdown send: %v", err)
			c.Close()
			continue
		}
		c.SetReadDeadline(time.Now().Add(shutdownDrainTimeout))
	}
	s.src.drain()
	return final, nil
}

// workerEntry32 is one worker's connection-lifecycle state, guarded by
// wireSource32.mu (the f32 mirror of workerEntry, with no blacklist —
// the tier has no detection plane).
type workerEntry32 struct {
	conn    *Conn
	pending *Conn
	token   uint64
	joined  bool
	tier    wire.UplinkTier
	lastAck int
}

// wireSource32 is the f32 network GradientSource32: RoundStart
// broadcasts (full float32 params or XOR deltas by acknowledgement
// state), reader pumps decoding report frames straight into the
// engine's slot buffers, a single deadline-bounded collection loop.
type wireSource32 struct {
	timeout   time.Duration
	fullEvery int
	logf      func(format string, args ...any)
	uplink    wire.UplinkTier

	eng   *cluster.Engine32
	dim   int
	files [][]int

	mu          sync.Mutex
	workers     []workerEntry32
	joinedCount int
	closing     bool

	joinedCh chan struct{}
	inbox    chan pumpItem
	stopCh   chan struct{}
	pumps    sync.WaitGroup
	// arenaMu serializes decodes into one worker's engine buffers
	// across a rejoin displacing the previous connection's pump.
	arenaMu []sync.Mutex

	curRound    atomic.Int64
	retireBelow atomic.Int64

	joins, rejoins, evictions, staleFrames atomic.Int64
	lastEvictions, lastStaleFrames         int64

	// Round-loop scratch (only the collecting goroutine touches it).
	roundConns   []*Conn
	roundAcks    []int
	done         []bool
	collectTimer *time.Timer

	// Broadcast state: the previous round's vector is the delta base.
	prevParams []float32
	prevIter   int
	fullFrame  []byte
	deltaFrame []byte
}

func newWireSource32(asn *assign.Assignment, timeout time.Duration, fullEvery int, logf func(string, ...any)) *wireSource32 {
	ws := &wireSource32{
		timeout:    timeout,
		fullEvery:  fullEvery,
		logf:       logf,
		workers:    make([]workerEntry32, asn.K),
		joinedCh:   make(chan struct{}, 1),
		inbox:      make(chan pumpItem, 4*asn.K+8),
		stopCh:     make(chan struct{}),
		files:      make([][]int, asn.K),
		arenaMu:    make([]sync.Mutex, asn.K),
		roundConns: make([]*Conn, asn.K),
		roundAcks:  make([]int, asn.K),
		done:       make([]bool, asn.K),
		prevIter:   -1,
	}
	ws.curRound.Store(-1)
	ws.retireBelow.Store(-1)
	for u := 0; u < asn.K; u++ {
		ws.files[u] = asn.WorkerFiles(u)
	}
	return ws
}

// bind attaches the engine whose buffers the pumps decode into.
func (ws *wireSource32) bind(eng *cluster.Engine32, dim int) {
	ws.eng = eng
	ws.dim = dim
}

// startPump launches worker u's reader goroutine for conn; callers must
// hold ws.mu.
func (ws *wireSource32) startPump(u int, conn *Conn) {
	if ws.closing {
		return
	}
	ws.pumps.Add(1)
	p := &pump32{ws: ws, u: u, conn: conn, deliveredIter: -1}
	p.dec.Tier = ws.workers[u].tier
	go p.run()
}

// liveConn returns worker u's current live connection (nil when down).
func (ws *wireSource32) liveConn(u int) *Conn {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.workers[u].conn
}

// joinedWorkers reports how many workers have completed a first join.
func (ws *wireSource32) joinedWorkers() int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.joinedCount
}

// shutdownConns returns the connected workers' connections for the
// final Shutdown, admitting pending rejoins first and flipping the
// source into closing mode (see wireSource.shutdownConns).
func (ws *wireSource32) shutdownConns() []*Conn {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	var out []*Conn
	for u := range ws.workers {
		w := &ws.workers[u]
		if w.pending != nil {
			if w.conn != nil {
				w.conn.Close()
			}
			w.conn, w.pending = w.pending, nil
			ws.startPump(u, w.conn)
		}
		if w.conn != nil {
			out = append(out, w.conn)
		}
	}
	ws.markClosingLocked()
	return out
}

// markClosing flips the source into closing mode exactly once.
func (ws *wireSource32) markClosing() {
	ws.mu.Lock()
	ws.markClosingLocked()
	ws.mu.Unlock()
}

func (ws *wireSource32) markClosingLocked() {
	if !ws.closing {
		ws.closing = true
		close(ws.stopCh)
	}
}

// drain marks shutdown and joins the pumps without force-closing
// connections, so workers get to read the final Shutdown.
func (ws *wireSource32) drain() {
	ws.markClosing()
	ws.pumps.Wait()
}

// shutdown closes every worker connection and joins every reader pump.
func (ws *wireSource32) shutdown() {
	ws.mu.Lock()
	ws.markClosingLocked()
	for u := range ws.workers {
		w := &ws.workers[u]
		if w.conn != nil {
			w.conn.Close()
			w.conn = nil
		}
		if w.pending != nil {
			w.pending.Close()
			w.pending = nil
		}
	}
	ws.mu.Unlock()
	ws.pumps.Wait()
}

// admitPending moves validated rejoin connections into the live slots
// at the round boundary and starts their reader pumps. The fresh
// connection's negotiated tier is already in the entry — a rejoin may
// renegotiate — and its decoder starts with no codec state, matching
// the worker's reset encoder.
func (ws *wireSource32) admitPending(t int) int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	admitted := 0
	for u := range ws.workers {
		w := &ws.workers[u]
		if w.pending == nil {
			continue
		}
		if w.conn != nil {
			w.conn.Close()
		}
		w.conn, w.pending = w.pending, nil
		w.lastAck = -1
		ws.startPump(u, w.conn)
		ws.rejoins.Add(1)
		admitted++
		ws.logf("round %d: worker %d re-admitted", t, u)
	}
	return admitted
}

// ack records that worker u returned a valid report for round t.
func (ws *wireSource32) ack(u, t int) {
	ws.mu.Lock()
	ws.workers[u].lastAck = t
	ws.mu.Unlock()
}

// evict tears down a broken or misbehaving connection (see
// wireSource.evict).
func (ws *wireSource32) evict(u int, conn *Conn, err error) {
	conn.Close()
	ws.mu.Lock()
	live := ws.workers[u].conn == conn
	if live {
		ws.workers[u].conn = nil
	}
	closing := ws.closing
	ws.mu.Unlock()
	if live && !closing {
		ws.evictions.Add(1)
		ws.logf("round %d: evicting worker %d: %v", ws.curRound.Load(), u, err)
	}
}

// refreshRound reports whether round t is a full-broadcast refresh.
func (ws *wireSource32) refreshRound(t int) bool {
	return t == 0 || ws.fullEvery <= 1 || t%ws.fullEvery == 0
}

// prepareBroadcast encodes this round's shared f32 params frames: the
// full frame, and the XOR delta against the previous round's vector
// when any worker can use it.
func (ws *wireSource32) prepareBroadcast(t int, params []float32) error {
	var err error
	ws.fullFrame, err = wire.AppendParamsFull32(ws.fullFrame[:0], params)
	if err != nil {
		return fmt.Errorf("transport: broadcast: %w", err)
	}
	ws.deltaFrame = ws.deltaFrame[:0]
	if !ws.refreshRound(t) && ws.prevIter == t-1 {
		ws.deltaFrame, err = wire.AppendParamsDelta32(ws.deltaFrame[:0], ws.prevParams, params)
		if err != nil {
			return fmt.Errorf("transport: broadcast: %w", err)
		}
	}
	return nil
}

// sendRoundStart sends one worker's RoundStart (full or delta f32
// parameters by acknowledgement state) and returns the bytes written.
func (ws *wireSource32) sendRoundStart(t, u int, conn *Conn, lastAck int, rd *cluster.Round32) (int, error) {
	if ws.timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(ws.timeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	assigned := make(map[int][]int, len(ws.files[u]))
	for _, v := range ws.files[u] {
		assigned[v] = rd.FileSamples(v)
	}
	rs := RoundStart{Iteration: t, Files: assigned}
	if len(ws.deltaFrame) > 0 && lastAck == t-1 {
		rs.ParamsFrame = ws.deltaFrame
		rs.BaseIteration = t - 1
	} else {
		rs.ParamsFrame = ws.fullFrame
	}
	return conn.Send(rs)
}

// Collect implements cluster.GradientSource32 over TCP under the exact
// structure of wireSource.Collect, minus the shard and pipeline planes:
// admit rejoins, broadcast in parallel, then drain the pumps' inbox
// under one deadline timer until every live worker is accounted for.
func (ws *wireSource32) Collect(ctx context.Context, rd *cluster.Round32) (cluster.CollectStats, error) {
	t := rd.Iteration()
	rejoins := ws.admitPending(t)
	ws.curRound.Store(int64(t))
	ws.retireBelow.Store(int64(t))
	if err := ws.prepareBroadcast(t, rd.Params()); err != nil {
		return cluster.CollectStats{}, err
	}
	start := time.Now()

	ws.mu.Lock()
	outstanding := 0
	for u := range ws.workers {
		w := &ws.workers[u]
		ws.roundConns[u] = w.conn
		ws.roundAcks[u] = w.lastAck
		ws.done[u] = false
		if w.conn == nil {
			rd.MarkMissing(u)
		} else {
			outstanding++
		}
	}
	ws.mu.Unlock()

	bcastStart := time.Now()
	var bcastBytes atomic.Int64
	var sends sync.WaitGroup
	for u := range ws.roundConns {
		conn := ws.roundConns[u]
		if conn == nil {
			continue
		}
		sends.Add(1)
		go func(u int, conn *Conn, lastAck int) {
			defer sends.Done()
			n, err := ws.sendRoundStart(t, u, conn, lastAck, rd)
			if err != nil {
				ws.evict(u, conn, fmt.Errorf("send: %w", err))
				return
			}
			bcastBytes.Add(int64(n))
		}(u, conn, ws.roundAcks[u])
	}
	sends.Wait()
	bcastDur := time.Since(bcastStart)

	var reportBytes, rawBytes int64
	handleItem := func(item pumpItem) {
		u := item.u
		if ws.roundConns[u] != item.conn || ws.done[u] {
			if item.kind != pumpDeath {
				ws.staleFrames.Add(1)
			}
			return
		}
		switch item.kind {
		case pumpReport:
			if item.iter != t {
				ws.staleFrames.Add(1)
				return
			}
			reportBytes += int64(item.wireBytes)
			rawBytes += int64(item.rawBytes)
			for j := range ws.files[u] {
				if err := rd.Deliver(u, j, ws.eng.GradBuffer32(u, j)); err != nil {
					ws.evict(u, item.conn, err)
					rd.MarkMissing(u)
					ws.done[u] = true
					outstanding--
					return
				}
			}
			ws.ack(u, t)
		case pumpSkip:
			if item.iter != t {
				ws.staleFrames.Add(1)
				return
			}
			ws.logf("worker %d skipped round %d", u, t)
			ws.ack(u, t)
			rd.MarkMissing(u)
		case pumpDeath:
			rd.MarkMissing(u)
		}
		ws.done[u] = true
		outstanding--
	}
	var timerC <-chan time.Time
	if ws.timeout > 0 {
		if ws.collectTimer == nil {
			ws.collectTimer = time.NewTimer(ws.timeout)
		} else {
			if !ws.collectTimer.Stop() {
				select {
				case <-ws.collectTimer.C:
				default:
				}
			}
			ws.collectTimer.Reset(ws.timeout)
		}
		timerC = ws.collectTimer.C
	}
	for outstanding > 0 {
		select {
		case item := <-ws.inbox:
			handleItem(item)
		case <-timerC:
			drained := false
			for !drained && outstanding > 0 {
				select {
				case item := <-ws.inbox:
					handleItem(item)
				default:
					drained = true
				}
			}
			for u := range ws.roundConns {
				if ws.roundConns[u] != nil && !ws.done[u] {
					ws.logf("round %d: worker %d missed the deadline", t, u)
					rd.MarkMissing(u)
				}
			}
			outstanding = 0
		case <-ctx.Done():
			return cluster.CollectStats{}, ctx.Err()
		}
	}
	ws.retireBelow.Store(int64(t + 1))

	if ws.prevParams == nil {
		ws.prevParams = make([]float32, len(rd.Params()))
	}
	copy(ws.prevParams, rd.Params())
	ws.prevIter = t
	if err := ctx.Err(); err != nil {
		return cluster.CollectStats{}, err
	}
	ev, st := ws.evictions.Load(), ws.staleFrames.Load()
	stats := cluster.CollectStats{
		Communication:  time.Since(start),
		Broadcast:      bcastDur,
		ReportBytes:    reportBytes,
		ReportRawBytes: rawBytes,
		BroadcastBytes: bcastBytes.Load(),
		Rejoins:        rejoins,
		Evictions:      int(ev - ws.lastEvictions),
		StaleFrames:    int(st - ws.lastStaleFrames),
	}
	ws.lastEvictions, ws.lastStaleFrames = ev, st
	return stats, nil
}

// pump32 is one f32 connection's dedicated reader under the contract of
// pump: it decodes every frame the moment it arrives — stale ones into
// private scratch so the delta base stays in lockstep with the worker's
// encoder — and forwards validated current-round reports to the inbox.
type pump32 struct {
	ws   *wireSource32
	u    int
	conn *Conn
	dec  wire.UplinkDecoder32
	// frame is the decode target; its Grads are pointed at the engine's
	// slot buffers for deliverable reports and at private scratch for
	// stale ones.
	frame      wire.GradFrame32
	staleGrads [][]float32
	// deliveredIter/delivered bound the inbox to one report per
	// (connection, round).
	deliveredIter int
	delivered     bool
}

// run pumps frames until the connection dies or misbehaves.
func (p *pump32) run() {
	defer p.ws.pumps.Done()
	for {
		msg, err := p.conn.Recv()
		if err != nil {
			p.ws.evict(p.u, p.conn, err)
			p.notifyDeath(err)
			return
		}
		rep, ok := msg.(GradientReport)
		if !ok {
			err := fmt.Errorf("expected GradientReport, got %T", msg)
			p.ws.evict(p.u, p.conn, err)
			p.notifyDeath(err)
			return
		}
		if err := p.handle(rep); err != nil {
			p.ws.evict(p.u, p.conn, err)
			p.notifyDeath(err)
			return
		}
	}
}

// handle processes one gradient report frame in stream order.
func (p *pump32) handle(rep GradientReport) error {
	ws := p.ws
	if rep.WorkerID != p.u {
		return fmt.Errorf("report claims worker %d", rep.WorkerID)
	}
	if rep.Shard != 0 {
		return fmt.Errorf("report shard %d on an unsharded f32 connection", rep.Shard)
	}
	it := rep.Iteration
	cur := int(ws.curRound.Load())
	if it > cur || it < 0 {
		return fmt.Errorf("report for future round %d (current %d)", it, cur)
	}
	if it > p.deliveredIter {
		p.deliveredIter = it
		p.delivered = false
	}
	retire := int(ws.retireBelow.Load())
	if it < retire || it < p.deliveredIter || p.delivered {
		// Too late for its round or a duplicate: retire it now, but
		// still run it through the decoder so the uplink delta base
		// advances exactly as the worker's encoder did.
		ws.staleFrames.Add(1)
		if len(rep.Frame) == 0 {
			return nil
		}
		return p.decode(rep.Frame, p.scratchBufs())
	}
	p.delivered = true
	if len(rep.Frame) == 0 {
		p.push(pumpItem{kind: pumpSkip, u: p.u, conn: p.conn, iter: it})
		return nil
	}
	// Liveness re-checked under the arena lock: after a rejoin
	// displaces this connection, the new pump owns the worker's slot
	// buffers (see pump.handle).
	wf := ws.files[p.u]
	ws.arenaMu[p.u].Lock()
	live := ws.liveConn(p.u) == p.conn
	bufs := p.scratchBufs()
	if live {
		bufs = p.arenaBufs()
	}
	err := p.decode(rep.Frame, bufs)
	ws.arenaMu[p.u].Unlock()
	if err != nil {
		return err
	}
	if !live {
		ws.staleFrames.Add(1)
		return nil
	}
	p.push(pumpItem{
		kind: pumpReport, u: p.u, conn: p.conn, iter: it,
		wireBytes: len(rep.Frame),
		rawBytes:  wire.UplinkRaw32Size(len(wf), ws.dim),
	})
	return nil
}

// decode runs one report frame through the connection's uplink decoder
// into the given target buffers and validates its structure against the
// worker's static file assignment and the model dimension.
func (p *pump32) decode(frameBytes []byte, bufs [][]float32) error {
	ws := p.ws
	wf := ws.files[p.u]
	p.frame.Grads = bufs
	_, consumed, err := p.dec.Decode(frameBytes, &p.frame)
	switch {
	case err != nil:
		return err
	case consumed != len(frameBytes):
		return fmt.Errorf("frame has %d trailing bytes", len(frameBytes)-consumed)
	case p.frame.Worker != p.u:
		return fmt.Errorf("frame claims worker %d", p.frame.Worker)
	case !slices.Equal(p.frame.Files, wf):
		return fmt.Errorf("frame files %v, want %v", p.frame.Files, wf)
	}
	for j := range wf {
		if len(p.frame.Grads[j]) != ws.dim {
			return fmt.Errorf("frame gradient %d has dim %d, want %d", j, len(p.frame.Grads[j]), ws.dim)
		}
	}
	return nil
}

// arenaBufs points the decode at the engine's stable slot buffers for
// this worker — delivering a report frame is decoding it in place. The
// buffers are capacity-capped at the model dimension, so a hostile
// frame declaring a wider one makes the decoder allocate instead of
// scribbling past them (the width check then evicts).
func (p *pump32) arenaBufs() [][]float32 {
	ws := p.ws
	wf := ws.files[p.u]
	if cap(p.frame.Grads) < len(wf) {
		p.frame.Grads = make([][]float32, len(wf))
	}
	bufs := p.frame.Grads[:len(wf)]
	for j := range wf {
		bufs[j] = ws.eng.GradBuffer32(p.u, j)
	}
	return bufs
}

// scratchBufs are the pump-private decode targets for stale frames.
func (p *pump32) scratchBufs() [][]float32 {
	ws := p.ws
	wf := ws.files[p.u]
	if p.staleGrads == nil {
		p.staleGrads = make([][]float32, len(wf))
		for j := range p.staleGrads {
			p.staleGrads[j] = make([]float32, ws.dim)
		}
	}
	if cap(p.frame.Grads) < len(wf) {
		p.frame.Grads = make([][]float32, len(wf))
	}
	bufs := p.frame.Grads[:len(wf)]
	for j := range wf {
		bufs[j] = p.staleGrads[j][:ws.dim:ws.dim]
	}
	return bufs
}

// push forwards an item to the collection inbox, giving up when the
// source shuts down.
func (p *pump32) push(item pumpItem) {
	select {
	case p.ws.inbox <- item:
	case <-p.ws.stopCh:
	}
}

// notifyDeath posts a death notice so an in-flight collection stops
// waiting for this worker immediately.
func (p *pump32) notifyDeath(err error) {
	p.push(pumpItem{kind: pumpDeath, u: p.u, conn: p.conn, err: err})
}
