package transport

import "byzshield/internal/obs"

// registerInstruments adds the transport's metric families to r. The
// lifecycle counters are CounterFuncs over the very atomics
// Server.Counters reads, so /metrics, /statusz, and the shutdown
// summary can never disagree — there is one source of truth and three
// views of it. Nothing here touches the round hot path: every function
// is evaluated only when a scrape walks the registry.
func (s *Server) registerInstruments(r *obs.Registry) {
	src := s.src
	r.CounterFunc("byzshield_joins_total", "", "first-time worker admissions",
		func() float64 { return float64(src.joins.Load()) })
	r.CounterFunc("byzshield_rejoins_total", "", "re-admissions of returning workers at round boundaries",
		func() float64 { return float64(src.rejoins.Load()) })
	r.CounterFunc("byzshield_evictions_total", "", "live connections torn down mid-run (shutdown excluded)",
		func() float64 { return float64(src.evictions.Load()) })
	r.CounterFunc("byzshield_stale_frames_total", "", "gradient reports retired as too late or duplicate",
		func() float64 { return float64(src.staleFrames.Load()) })
	r.CounterFunc("byzshield_blacklist_rejections_total", "", "rejoin attempts refused because the worker is blacklisted",
		func() float64 { return float64(src.blacklistRejections.Load()) })
	r.GaugeFunc("byzshield_inbox_depth", "", "reader-pump inbox occupancy (reports parsed but not yet attributed)",
		func() float64 { return float64(len(src.inbox)) })
	r.GaugeFunc("byzshield_inbox_capacity", "", "reader-pump inbox capacity",
		func() float64 { return float64(cap(src.inbox)) })
	r.GaugeFunc("byzshield_current_round", "", "iteration currently being collected (-1 before the first round)",
		func() float64 { return float64(src.curRound.Load()) })
	fleet := s.fleet
	r.GaugeFunc("byzshield_live_workers", "", "workers with a live pumping connection",
		func() float64 {
			live := 0
			for u := 0; u < fleet.Size(); u++ {
				if fleet.State(u) == obs.WorkerLive {
					live++
				}
			}
			return float64(live)
		})
}

// workerInstruments is the worker-side mirror of the PS registry: a
// worker process exposes its own participation counters on its
// -metrics-addr, so a fleet operator can tell a worker that is
// computing from one that is wedged without asking the PS.
type workerInstruments struct {
	rounds      *obs.Counter
	skips       *obs.Counter
	reportBytes *obs.Counter
	reconnects  *obs.Counter
	rejections  *obs.Counter
	round       *obs.Gauge
	tier        *obs.Gauge
	computeSec  *obs.Histogram
}

// workerPhaseBuckets spans 50µs–~6.5s like the PS phase histograms.
var workerPhaseBuckets = obs.ExpBuckets(50e-6, 2.4, 14)

// newWorkerInstruments registers the worker families on r.
func newWorkerInstruments(r *obs.Registry) *workerInstruments {
	return &workerInstruments{
		rounds:      r.Counter("byzworker_rounds_total", "", "rounds the worker reported gradients for"),
		skips:       r.Counter("byzworker_skips_total", "", "rounds the worker sent an explicit empty report"),
		reportBytes: r.Counter("byzworker_report_bytes_total", "", "serialized gradient report bytes sent"),
		reconnects:  r.Counter("byzworker_reconnects_total", "", "reconnect attempts after a broken PS connection"),
		rejections:  r.Counter("byzworker_rejections_total", "", "typed Reject frames received from the PS"),
		round:       r.Gauge("byzworker_current_round", "", "iteration of the last RoundStart received"),
		tier:        r.Gauge("byzworker_uplink_tier", "", "negotiated uplink codec tier code"),
		computeSec:  r.Histogram("byzworker_compute_seconds", "", "wall-clock time of local gradient computation per round", workerPhaseBuckets),
	}
}

// All workerInstruments methods are nil-safe: a worker without
// -metrics-addr carries a nil pointer and every call is a no-op.

// reportSent counts one sent gradient report and its frame bytes.
func (wi *workerInstruments) reportSent(msgs []Message) {
	if wi == nil {
		return
	}
	wi.rounds.Inc()
	var n int64
	for _, m := range msgs {
		if rep, ok := m.(GradientReport); ok {
			n += int64(len(rep.Frame))
		}
	}
	wi.reportBytes.Add(n)
}

// skipSent counts one explicit empty report.
func (wi *workerInstruments) skipSent() {
	if wi != nil {
		wi.skips.Inc()
	}
}

// reconnecting counts one reconnect attempt.
func (wi *workerInstruments) reconnecting() {
	if wi != nil {
		wi.reconnects.Inc()
	}
}

// rejected counts one typed Reject from the PS.
func (wi *workerInstruments) rejected() {
	if wi != nil {
		wi.rejections.Inc()
	}
}

// roundStarted publishes the RoundStart iteration.
func (wi *workerInstruments) roundStarted(iter int) {
	if wi != nil {
		wi.round.Set(float64(iter))
	}
}

// tierNegotiated publishes the Welcome's uplink tier code.
func (wi *workerInstruments) tierNegotiated(code int32) {
	if wi != nil {
		wi.tier.Set(float64(code))
	}
}

// computeObserved records one round's local gradient-computation span.
func (wi *workerInstruments) computeObserved(sec float64) {
	if wi != nil {
		wi.computeSec.Observe(sec)
	}
}
