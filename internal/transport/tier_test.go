// Tests for the negotiated uplink codec tier of protocol v6: per-tier
// loopback trajectories pinned against the in-process engine, the
// Hello/Welcome tier negotiation (including the server-forced
// downgrade when a peer does not offer the configured tier), and
// rejoin renegotiation with fresh encoder state on a lossy tier.
package transport

import (
	"context"
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"byzshield/internal/cluster"
	"byzshield/internal/wire"
)

// engineParamsTier is engineParams with the engine pinned to an uplink
// tier and shard count — the reference for lossy wire runs, whose
// quantization granularity is the aggregation shard range.
func engineParamsTier(t *testing.T, spec Spec, shards int, tier wire.UplinkTier) []float64 {
	t.Helper()
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := spec.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := spec.BuildData()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := spec.BuildAggregator()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{
		Assignment: asn, Model: mdl, Train: train, Test: test,
		BatchSize: spec.BatchSize, Aggregator: agg,
		Schedule: spec.Schedule, Momentum: spec.Momentum, Seed: spec.Seed,
		Shards: shards, UplinkTier: tier,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < spec.Rounds; i++ {
		if _, err := eng.RunRound(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	out := make([]float64, len(eng.Params()))
	copy(out, eng.Params())
	return out
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestUplinkTierLoopbackMatchesEngine pins every tier's wire trajectory
// to the in-process engine, unsharded and sharded: the lossless tiers
// against the plain engine (codec choice cannot move a bit), the lossy
// tiers against an engine running the same tier and shard count (the
// engine applies the codec's exact quantize→dequantize operations per
// shard range). The lossy runs must also move fewer uplink bytes than
// their raw equivalent and land off the lossless bits.
func TestUplinkTierLoopbackMatchesEngine(t *testing.T) {
	spec := testSpec(6)
	lossless := engineParamsTier(t, spec, 0, wire.TierDelta)
	for _, shards := range []int{0, 2} {
		for _, tier := range []wire.UplinkTier{wire.TierRaw, wire.TierDelta, wire.TierSign, wire.TierInt8} {
			_, params, stats := runLoopback(t, spec, ServerConfig{Uplink: tier, Shards: shards})
			ref := lossless
			if tier.Lossy() {
				ref = engineParamsTier(t, spec, shards, tier)
			}
			if !sameBits(params, ref) {
				t.Errorf("tier %s shards %d: wire trajectory diverged from the engine", tier, shards)
			}
			var up, raw int64
			for _, rs := range stats {
				up += rs.Times.ReportBytes
				raw += rs.Times.ReportRawBytes
			}
			if tier.Lossy() {
				// The ≥4x acceptance gate is benchmarked on the quickstart
				// config, whose rows are wide; this spec's 18–36-value rows
				// pay proportionally more per-row scale/header overhead, so
				// the structural check here is 3x.
				if up*3 > raw {
					t.Errorf("tier %s shards %d: moved %d uplink bytes, raw equivalent %d — want ≥3x reduction",
						tier, shards, up, raw)
				}
				if sameBits(params, lossless) {
					t.Errorf("tier %s shards %d: landed on the lossless bits — quantization never ran", tier, shards)
				}
			}
		}
	}
}

// TestUplinkTierNegotiation drives the Hello/Welcome negotiation
// directly: the server's configured tier when offered, the best
// lossless tier the peer speaks otherwise (never a substitute lossy
// tier), and the legacy lossless pair for an empty mask.
func TestUplinkTierNegotiation(t *testing.T) {
	spec := testSpec(1)
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec, Uplink: wire.TierInt8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ctx)
		serveDone <- err
	}()

	cases := []struct {
		name  string
		tiers uint8
		want  wire.UplinkTier
	}{
		{"configured tier offered", wire.AllTiersMask, wire.TierInt8},
		{"lossless downgrade to delta", wire.TierRaw.Mask() | wire.TierDelta.Mask(), wire.TierDelta},
		{"lossless downgrade to raw", wire.TierRaw.Mask(), wire.TierRaw},
		{"lossy never substituted", wire.TierSign.Mask() | wire.TierDelta.Mask(), wire.TierDelta},
		{"empty mask is the legacy lossless pair", 0, wire.TierDelta},
	}
	for id, tc := range cases {
		raw, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c := NewConn(raw)
		if _, err := c.Send(Hello{WorkerID: id, Version: wire.ProtocolVersion, Tiers: tc.tiers}); err != nil {
			t.Fatal(err)
		}
		msg, err := c.Recv()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		w, ok := msg.(Welcome)
		if !ok {
			t.Fatalf("%s: expected Welcome, got %T", tc.name, msg)
		}
		if w.Uplink != tc.want {
			t.Errorf("%s: negotiated %s, want %s", tc.name, w.Uplink, tc.want)
		}
		c.Close()
	}
	cancel()
	<-serveDone
}

// TestUplinkTierDowngradedFleet runs a full training fleet whose
// workers refuse the lossy tiers against a server configured for int8:
// every connection is downgraded to delta, the run completes, and the
// trajectory lands on the lossless engine's bits — a forced downgrade
// is a codec change, not a semantic one.
func TestUplinkTierDowngradedFleet(t *testing.T) {
	spec := testSpec(6)
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Spec: spec, Uplink: wire.TierInt8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			cfg := WorkerConfig{ID: u, Tiers: wire.TierRaw.Mask() | wire.TierDelta.Mask()}
			if _, err := RunWorker(context.Background(), srv.Addr(), cfg); err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !sameBits(srv.Params(), engineParamsTier(t, spec, 0, wire.TierDelta)) {
		t.Error("downgraded fleet diverged from the lossless engine")
	}
}

// TestUplinkTierRejoinFreshEncoderState kills a worker mid-run on the
// int8 tier and restarts it with its session token: the rejoin
// renegotiates the tier and starts from fresh encoder state, and
// because the lossy codecs are stateless per frame the interrupted
// trajectory must stay bit-identical to an uninterrupted run — and to
// the tier-pinned engine.
func TestUplinkTierRejoinFreshEncoderState(t *testing.T) {
	const victim = 4
	spec := testSpec(8)
	ref := engineParamsTier(t, spec, 0, wire.TierInt8)

	var srv *Server
	restarted := make(chan error, 1)
	workerCtx, killWorker := context.WithCancel(context.Background())
	defer killWorker()

	srvCfg := ServerConfig{
		Spec:         spec,
		Uplink:       wire.TierInt8,
		RoundTimeout: 30 * time.Second,
		OnRound: func(rs cluster.RoundStats) {
			if len(rs.MissingWorkers) != 0 {
				t.Errorf("round %d: missing %v — rejoin before the deadline must be invisible", rs.Iteration, rs.MissingWorkers)
			}
			if rs.Iteration != 3 {
				return
			}
			killWorker()
			token := workerToken(srv, victim)
			go func() {
				_, err := RunWorker(context.Background(), srv.Addr(), WorkerConfig{
					ID:          victim,
					ResumeToken: token,
				})
				restarted <- err
			}()
			waitRejoinPending(t, srv, victim)
		},
	}
	var err error
	srv, err = NewServer("127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	asn, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < asn.K; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			ctx := context.Background()
			cfg := WorkerConfig{ID: u}
			if u == victim {
				ctx = workerCtx
				cfg.ReconnectAttempts = -1 // the test restarts it explicitly
			}
			_, err := RunWorker(ctx, srv.Addr(), cfg)
			if u == victim {
				if !errors.Is(err, context.Canceled) {
					t.Errorf("killed worker returned %v, want context.Canceled", err)
				}
			} else if err != nil {
				t.Errorf("worker %d: %v", u, err)
			}
		}(u)
	}
	if _, err := srv.Serve(context.Background()); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()
	if err := <-restarted; err != nil {
		t.Errorf("restarted worker: %v", err)
	}
	if !sameBits(srv.Params(), ref) {
		t.Error("int8 trajectory with a mid-run rejoin diverged from the uninterrupted engine reference")
	}
}
