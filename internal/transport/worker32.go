package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"slices"
	"time"

	"byzshield/internal/data"
	"byzshield/internal/model"
	"byzshield/internal/wire"
)

// WorkerConfig32 configures a float32-precision worker process: the
// peer of Server32. It is deliberately narrower than WorkerConfig — no
// Byzantine behaviors, fault injection, or adversary sidecar — because
// the f32 tier is the performance envelope, not the attack surface.
type WorkerConfig32 struct {
	// ID is this worker's 0-based id.
	ID int
	// ReconnectAttempts bounds automatic reconnects after a broken
	// connection (0 = default; negative disables reconnecting).
	ReconnectAttempts int
	// ResumeToken, when nonzero, resumes a previous session after a
	// process restart.
	ResumeToken uint64
	// Tiers is the bitmask of uplink codec tiers this worker offers in
	// its Hello (0 = all tiers).
	Tiers uint8
	// Logf receives progress lines; nil disables logging.
	Logf func(format string, args ...any)
}

// workerState32 is the state that survives reconnects within one
// RunWorker32 call: the deterministic local rebuild of the experiment
// (model, dataset, parameter vector) plus the per-connection codec
// state that each fresh handshake resets.
type workerState32 struct {
	cfg         WorkerConfig32
	spec        Spec
	mdl         model.Model32
	train32     *data.Dataset32
	token       uint64
	params      []float32
	lastApplied int

	files       []int
	sampleLists [][]int
	grads       [][]float32
	enc         wire.UplinkEncoder32
	frame       []byte
}

// RunWorker32 connects to the f32 PS at addr and participates in
// training until Shutdown, returning the final accuracy reported by the
// PS. It holds the same reconnect contract as RunWorker: a broken
// connection retries with the session token under exponential backoff,
// protocol-fatal errors return unwrapped, and canceling ctx aborts any
// blocked dial or I/O promptly.
func RunWorker32(ctx context.Context, addr string, cfg WorkerConfig32) (float64, error) {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	attempts := cfg.ReconnectAttempts
	if attempts == 0 {
		attempts = DefaultReconnectAttempts
	}
	st := &workerState32{cfg: cfg, token: cfg.ResumeToken, lastApplied: -1}
	failures := 0
	// One reused backoff timer for the whole reconnect loop (see
	// RunWorker).
	var backoff *time.Timer
	defer func() {
		if backoff != nil {
			backoff.Stop()
		}
	}()
	for {
		final, err := runWorkerConn32(ctx, addr, st)
		var re retryableErr
		switch {
		case err == nil:
			return final, nil
		case !errors.As(err, &re):
			return 0, err
		case ctx.Err() != nil:
			return 0, ctx.Err()
		case attempts >= 0 && failures >= attempts:
			return 0, fmt.Errorf("transport: worker %d: gave up after %d reconnect attempts: %w",
				cfg.ID, failures, re.err)
		}
		failures++
		delay := defaultReconnectDelay << min(failures-1, 5)
		cfg.Logf("worker %d: connection lost (%v); reconnecting in %v (attempt %d)",
			cfg.ID, re.err, delay, failures)
		if backoff == nil {
			backoff = time.NewTimer(delay)
		} else {
			if !backoff.Stop() {
				select {
				case <-backoff.C:
				default:
				}
			}
			backoff.Reset(delay)
		}
		select {
		case <-backoff.C:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// runWorkerConn32 runs one connection's lifetime: dial, Hello/Welcome
// with the f32 precision bit, then rounds until Shutdown or a
// connection failure.
func runWorkerConn32(ctx context.Context, addr string, st *workerState32) (float64, error) {
	cfg := st.cfg
	var dialer net.Dialer
	raw, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return 0, retryable(fmt.Errorf("transport: dial %s: %w", addr, ctxErr(ctx, err)))
	}
	conn := NewConn(raw)
	defer conn.Close()
	stop := closeOnCancel(ctx, conn)
	defer stop()

	resume := st.token != 0
	tiers := cfg.Tiers
	if tiers == 0 {
		tiers = wire.AllTiersMask
	}
	if _, err := conn.Send(Hello{
		WorkerID: cfg.ID,
		Version:  wire.ProtocolVersion,
		Token:    st.token,
		Resume:   resume,
		Tiers:    tiers,
		// This worker computes at float32 only: offering just the f32
		// bit makes an accidental f64 pairing a typed reject instead of
		// a codec mismatch mid-run.
		Precisions: wire.PrecisionF32.Mask(),
	}); err != nil {
		return 0, retryable(ctxErr(ctx, err))
	}
	msg, err := conn.Recv()
	if err != nil {
		return 0, retryable(ctxErr(ctx, err))
	}
	if rej, ok := msg.(Reject); ok {
		return 0, fmt.Errorf("transport: worker %d rejected: %s", cfg.ID, rej.Reason)
	}
	welcome, ok := msg.(Welcome)
	if !ok {
		return 0, fmt.Errorf("transport: expected Welcome, got %T", msg)
	}
	if welcome.Version != wire.ProtocolVersion {
		return 0, fmt.Errorf("transport: server speaks protocol %d, want %d", welcome.Version, wire.ProtocolVersion)
	}
	if !welcome.Uplink.Valid() {
		return 0, fmt.Errorf("transport: server negotiated unknown uplink tier %d", welcome.Uplink)
	}
	if tiers&welcome.Uplink.Mask() == 0 {
		return 0, fmt.Errorf("transport: server negotiated uplink tier %s outside the offered mask %#x",
			welcome.Uplink, tiers)
	}
	if welcome.Precision != wire.PrecisionF32 {
		return 0, fmt.Errorf("transport: server negotiated precision %s outside the offered f32-only mask",
			welcome.Precision)
	}
	if welcome.Shards > 1 {
		return 0, fmt.Errorf("transport: server announced %d report shards; the f32 tier is unsharded", welcome.Shards)
	}
	if welcome.Pipeline {
		return 0, fmt.Errorf("transport: server announced pipelining; the f32 tier is self-contained per round")
	}
	st.token = welcome.Token
	if st.mdl == nil {
		// First successful handshake: build the deterministic local
		// state from the Spec. Rejoins keep it (same Spec, same run).
		st.spec = welcome.Spec
		if st.mdl, err = st.spec.BuildModel32(); err != nil {
			return 0, err
		}
		train, _, err := st.spec.BuildData()
		if err != nil {
			return 0, err
		}
		st.train32 = train.To32()
		st.params = make([]float32, st.mdl.NumParams())
	}
	// A fresh connection means a fresh uplink stream: the server's
	// decoder holds no codec state, so the encoder must not either, and
	// the tier is per connection — a rejoin may renegotiate.
	st.enc.Reset()
	st.enc.Tier = welcome.Uplink
	// No acknowledged vector on a (re)connect: the server sends a full
	// broadcast first.
	st.lastApplied = -1
	if resume {
		cfg.Logf("worker %d: rejoined at f32 (%s; session token %#x)", cfg.ID, st.spec.Scheme, st.token)
	} else {
		cfg.Logf("worker %d: joined at f32 (%s, %d rounds; session token %#x)",
			cfg.ID, st.spec.Scheme, st.spec.Rounds, st.token)
	}

	for {
		msg, err := conn.Recv()
		if err != nil {
			return 0, retryable(fmt.Errorf("transport: worker %d recv: %w", cfg.ID, ctxErr(ctx, err)))
		}
		switch m := msg.(type) {
		case RoundStart:
			files, samples, err := st.roundWork32(&m)
			if err != nil {
				return 0, err
			}
			if err := st.applyParams32(&m); err != nil {
				// A delta against a base this worker does not hold means
				// the broadcast state diverged; reconnecting fetches a
				// full vector.
				return 0, retryable(err)
			}
			frame, err := st.computeReport32(files, samples)
			if err != nil {
				return 0, err
			}
			rep := GradientReport{WorkerID: cfg.ID, Iteration: m.Iteration, Frame: frame}
			if _, err := conn.Send(rep); err != nil {
				return 0, retryable(ctxErr(ctx, err))
			}
		case Shutdown:
			cfg.Logf("worker %d: shutdown, final accuracy %.4f", cfg.ID, m.FinalAccuracy)
			return m.FinalAccuracy, nil
		case Reject:
			return 0, fmt.Errorf("transport: worker %d rejected: %s", cfg.ID, m.Reason)
		default:
			return 0, fmt.Errorf("transport: worker %d: unexpected message %T", cfg.ID, msg)
		}
	}
}

// applyParams32 patches the worker's f32 parameter vector with the
// round's broadcast frame under the exact discipline of
// workerState.applyParams: delta-base validation before any bits move.
func (st *workerState32) applyParams32(m *RoundStart) error {
	if len(m.ParamsFrame) == 0 {
		return fmt.Errorf("transport: round %d carried no parameter frame", m.Iteration)
	}
	if int(m.ParamsFrame[0]) == wire.ParamsDelta && m.BaseIteration != st.lastApplied {
		return fmt.Errorf("transport: round %d delta against iteration %d, but worker holds %d",
			m.Iteration, m.BaseIteration, st.lastApplied)
	}
	_, consumed, err := wire.DecodeParams32(m.ParamsFrame, st.params)
	if err != nil {
		return fmt.Errorf("transport: round %d params: %w", m.Iteration, err)
	}
	if consumed != len(m.ParamsFrame) {
		return fmt.Errorf("transport: round %d params frame has %d trailing bytes",
			m.Iteration, len(m.ParamsFrame)-consumed)
	}
	st.lastApplied = m.Iteration
	return nil
}

// roundWork32 resolves a RoundStart into the worker's file list (static
// slot order) and per-file sample lists. Every f32 round is
// self-contained: the Files map is required.
func (st *workerState32) roundWork32(m *RoundStart) (files []int, samples [][]int, err error) {
	if len(m.Files) == 0 {
		return nil, nil, fmt.Errorf("transport: worker %d: round %d carried no files", st.cfg.ID, m.Iteration)
	}
	files = st.files[:0]
	for v := range m.Files {
		files = append(files, v)
	}
	slices.Sort(files)
	st.files = files
	if cap(st.sampleLists) < len(files) {
		st.sampleLists = make([][]int, len(files))
	}
	samples = st.sampleLists[:len(files)]
	st.sampleLists = samples
	for i, v := range files {
		samples[i] = m.Files[v]
	}
	return files, samples, nil
}

// computeReport32 produces the worker's honest f32 file gradients for
// one round and encodes them through the connection's uplink codec. The
// returned frame aliases the state's scratch and is valid until the
// next call.
func (st *workerState32) computeReport32(files []int, samples [][]int) ([]byte, error) {
	dim := st.mdl.NumParams()
	if cap(st.grads) < len(files) {
		st.grads = make([][]float32, len(files))
	}
	st.grads = st.grads[:len(files)]
	for j := range st.grads {
		if cap(st.grads[j]) < dim {
			st.grads[j] = make([]float32, dim)
		}
		g := st.grads[j][:dim]
		clear(g)
		st.mdl.SumGradient32(st.params, st.train32, samples[j], g)
		st.grads[j] = g
	}
	frame, _, _, err := st.enc.Encode(st.frame[:0], st.cfg.ID, files, st.grads)
	if err != nil {
		return nil, fmt.Errorf("transport: worker %d report: %w", st.cfg.ID, err)
	}
	st.frame = frame
	return frame, nil
}
