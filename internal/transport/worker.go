package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"slices"
	"time"

	"byzshield/internal/advnet"
	"byzshield/internal/assign"
	"byzshield/internal/attack"
	"byzshield/internal/data"
	"byzshield/internal/fault"
	"byzshield/internal/linalg"
	"byzshield/internal/model"
	"byzshield/internal/obs"
	"byzshield/internal/wire"
)

// ErrInjectedCrash is returned by RunWorker when the Spec's fault model
// schedules this worker to crash: the process stops participating and
// the parameter server continues over the survivors (or re-admits the
// worker if it is restarted with the session token).
var ErrInjectedCrash = errors.New("transport: worker crashed by fault injection")

// ErrBlacklisted is returned by RunWorker when the parameter server
// refuses the handshake with Reject{RejectBlacklisted}: the detection
// layer revoked this worker's session permanently, so reconnecting can
// never help.
var ErrBlacklisted = errors.New("transport: worker blacklisted by the parameter server")

// DefaultReconnectAttempts is the number of automatic reconnect
// attempts a worker makes after losing its connection mid-run, when
// WorkerConfig.ReconnectAttempts is zero.
const DefaultReconnectAttempts = 5

// defaultReconnectDelay is the base backoff between reconnect attempts
// (doubled per consecutive failure).
const defaultReconnectDelay = 100 * time.Millisecond

// WorkerBehavior selects how a worker process responds to gradient
// requests. Attacks that require only local knowledge run standalone;
// the omniscient ALIE attack needs the global gradient population and
// therefore requires the adversary sidecar (WorkerConfig.AdvAddr): the
// coalition leader reconstructs the population moments deterministically
// from the Spec and shares them through the hub, reproducing the
// in-process omniscient attacker bit-for-bit (see DESIGN.md).
type WorkerBehavior string

// Worker behaviors.
const (
	BehaviorHonest   WorkerBehavior = "honest"
	BehaviorReversed WorkerBehavior = "reversed"  // send −g
	BehaviorConstant WorkerBehavior = "constant"  // send a constant vector
	BehaviorZero     WorkerBehavior = "zero"      // send zeros (crash-like)
	BehaviorSignFlip WorkerBehavior = "sign-flip" // send −g (the registry sign-flip attack)
	BehaviorALIE     WorkerBehavior = "alie"      // coordinated µ − z·σ via the sidecar
)

// WorkerConfig configures a worker process.
type WorkerConfig struct {
	ID       int
	Behavior WorkerBehavior
	// ConstantValue is the payload value for BehaviorConstant (default −1).
	ConstantValue float64
	// ReconnectAttempts bounds the automatic rejoin attempts after the
	// connection to the PS breaks mid-run: 0 selects
	// DefaultReconnectAttempts, negative disables reconnecting (any
	// connection loss is fatal, matching protocol v1). Each successful
	// rejoin resets the budget.
	ReconnectAttempts int
	// ResumeToken, when nonzero, makes the very first Hello a rejoin
	// attempt with this session token — how a restarted worker process
	// re-enters a run it was evicted from (byzworker -resume-token).
	ResumeToken uint64
	// Tiers is the bitmask of uplink codec tiers this worker offers in
	// its Hello (OR of wire.UplinkTier.Mask values); 0 offers every tier
	// (wire.AllTiersMask). Restricting the mask makes the server
	// downgrade this connection to the best lossless tier it offers —
	// how a fleet keeps a lossy run interoperable with workers that
	// cannot (or should not) quantize.
	Tiers uint8
	// AdvAddr is the adversary sidecar hub (cmd/byzadv) this Byzantine
	// worker coordinates through; required for BehaviorALIE. The worker
	// joins the coalition before its first PS handshake.
	AdvAddr string
	// ALIEZ overrides ALIE's z factor (0 derives z from the cluster and
	// coalition sizes via attack.ZMax, matching the in-process attack).
	ALIEZ float64
	// Metrics, when non-nil, receives the worker-side metric families
	// (byzworker_* counters: rounds, report bytes, skips, reconnects,
	// rejections, plus the current-round and tier gauges and the local
	// compute-time histogram) — the mirror of the PS registry a fleet
	// operator scrapes per worker process (byzworker -metrics-addr).
	Metrics *obs.Registry
	// Shared, when non-nil, supplies the heavyweight Spec-derived state
	// (dataset, model, fault plan, assignment) from a pool shared by
	// every worker in the process — what lets a loopback fleet run
	// thousands of workers without K copies of the training set. It must
	// be built (NewSharedWorkerState) from the same Spec the server
	// serves; the models' gradient scratch is sync.Pool-backed, so
	// concurrent SumGradient calls across workers are safe.
	Shared *SharedWorkerState
	// Logf receives progress lines; nil disables logging.
	Logf func(format string, args ...any)
}

// SharedWorkerState is the read-only (or concurrency-safe) per-Spec
// state many in-process workers can share; see WorkerConfig.Shared.
type SharedWorkerState struct {
	mdl   model.Model
	train *data.Dataset
	flt   fault.Fault
	asn   *assign.Assignment
}

// NewSharedWorkerState builds the shareable worker state for spec.
func NewSharedWorkerState(spec Spec) (*SharedWorkerState, error) {
	s := &SharedWorkerState{}
	var err error
	if s.mdl, err = spec.BuildModel(); err != nil {
		return nil, err
	}
	if s.train, _, err = spec.BuildData(); err != nil {
		return nil, err
	}
	if s.flt, err = spec.BuildFault(); err != nil {
		return nil, err
	}
	if s.asn, err = spec.BuildAssignment(); err != nil {
		return nil, err
	}
	return s, nil
}

// workerState is the durable cross-connection state of one worker
// process: everything a rejoin must not lose.
type workerState struct {
	cfg   WorkerConfig
	spec  Spec
	mdl   model.Model
	train *data.Dataset
	flt   fault.Fault
	// token is the session token the last Welcome assigned.
	token uint64
	// params is the worker's copy of the model vector, patched in place
	// by delta broadcasts; lastApplied is the iteration whose broadcast
	// it reflects (-1 before any).
	params      []float64
	lastApplied int
	// shards/ranges mirror the Welcome's shard plane: the worker ships
	// one report frame per shard, each covering its contiguous
	// coordinate range of every assigned file's gradient. encs holds one
	// uplink encoder per shard — each shard is its own delta stream —
	// and frames/reps/msgs are the per-shard send scratch. Every
	// (re)connect Resets the encoders: the PS's decoders for a fresh
	// connection hold no delta base, so the first report of a connection
	// ships raw.
	shards int
	ranges [][2]int
	encs   []wire.UplinkEncoder
	frames [][]byte
	reps   []GradientReport
	msgs   []Message
	// pipeline mirrors Welcome.Pipeline. prepIter is the iteration of
	// the last RoundPrep received on this connection (-1 before any);
	// prepSamples are its per-slot sample lists, valid for the matching
	// RoundStart. filesStatic is this worker's assignment in static slot
	// order — prep rounds carry no file ids, only samples in this order.
	pipeline    bool
	prepIter    int
	prepSamples [][]int
	filesStatic []int
	// files/grads/shardGrads/sampleLists are the per-round report
	// scratch, reused across rounds; shardGrads holds per-shard subslice
	// headers over grads' full-dimension rows.
	files       []int
	grads       [][]float64
	shardGrads  [][]float64
	sampleLists [][]int
	// adv is the sidecar coalition connection (nil outside coalitions);
	// the fields below are the leader's deterministic reconstruction of
	// the batch stream — its own sampler fast-forwarded to the current
	// round — plus the moment and payload scratch every member shares.
	adv         *advnet.Client
	asn         *assign.Assignment
	sampler     *data.BatchSampler
	sampledIter int
	fileParts   [][]int
	trueGrads   [][]float64
	muBuf       []float64
	sigmaBuf    []float64
	moments     wire.MomentFrame
	atkCtx      attack.Context
	atkScr      attack.Scratch
	// ins is the worker-side metric state (nil with metrics disabled;
	// every method is nil-safe).
	ins *workerInstruments
}

// RunWorker connects to the PS at addr and participates in training
// until Shutdown, returning the final accuracy reported by the PS. If
// the connection breaks mid-run the worker automatically reconnects
// with its session token (bounded by ReconnectAttempts) and resumes at
// the next round boundary; an injected crash fault is terminal and
// returns ErrInjectedCrash. Canceling ctx aborts the dial or any
// blocked send/receive promptly (by closing the connection) and returns
// ctx.Err().
func RunWorker(ctx context.Context, addr string, cfg WorkerConfig) (float64, error) {
	if cfg.Behavior == "" {
		cfg.Behavior = BehaviorHonest
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	attempts := cfg.ReconnectAttempts
	if attempts == 0 {
		attempts = DefaultReconnectAttempts
	}
	st := &workerState{cfg: cfg, token: cfg.ResumeToken, lastApplied: -1, sampledIter: -1}
	if cfg.Metrics != nil {
		st.ins = newWorkerInstruments(cfg.Metrics)
	}
	if cfg.Behavior == BehaviorALIE && cfg.AdvAddr == "" {
		return 0, fmt.Errorf("transport: worker %d: behavior %q requires the adversary sidecar (AdvAddr)", cfg.ID, cfg.Behavior)
	}
	if cfg.AdvAddr != "" {
		adv, err := advnet.Dial(ctx, cfg.AdvAddr, cfg.ID)
		if err != nil {
			return 0, err
		}
		defer adv.Close()
		st.adv = adv
		cfg.Logf("worker %d: adversary coalition %v, leader %d", cfg.ID, adv.MemberIDs(), adv.Leader())
	}
	failures := 0
	// One reused backoff timer for the whole reconnect loop: a bare
	// time.After here would leak a live timer per attempt whenever ctx
	// wins the select.
	var backoff *time.Timer
	defer func() {
		if backoff != nil {
			backoff.Stop()
		}
	}()
	for {
		final, err := runWorkerConn(ctx, addr, st)
		var re retryableErr
		switch {
		case err == nil:
			return final, nil
		case !errors.As(err, &re):
			return 0, err
		case ctx.Err() != nil:
			return 0, ctx.Err()
		case attempts >= 0 && failures >= attempts:
			return 0, fmt.Errorf("transport: worker %d: gave up after %d reconnect attempts: %w",
				cfg.ID, failures, re.err)
		}
		failures++
		st.ins.reconnecting()
		delay := defaultReconnectDelay << min(failures-1, 5)
		cfg.Logf("worker %d: connection lost (%v); reconnecting in %v (attempt %d)",
			cfg.ID, re.err, delay, failures)
		if backoff == nil {
			backoff = time.NewTimer(delay)
		} else {
			// Reset is only safe on a stopped or drained timer; the
			// ctx-cancel path below returns without draining, so stop
			// and drain defensively before rearming.
			if !backoff.Stop() {
				select {
				case <-backoff.C:
				default:
				}
			}
			backoff.Reset(delay)
		}
		select {
		case <-backoff.C:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// retryableErr wraps connection-level failures that a reconnect can
// recover from (everything protocol-fatal — bad version, injected
// crash, unexpected messages — is returned unwrapped).
type retryableErr struct{ err error }

func (e retryableErr) Error() string { return e.err.Error() }
func (e retryableErr) Unwrap() error { return e.err }

// retryable marks err as recoverable by reconnecting.
func retryable(err error) error { return retryableErr{err: err} }

// runWorkerConn runs one connection's lifetime: dial, Hello/Welcome
// (resuming with the session token when st already has one), then
// rounds until Shutdown or a connection failure. On a successful
// session (Shutdown received) it returns the final accuracy.
func runWorkerConn(ctx context.Context, addr string, st *workerState) (float64, error) {
	cfg := st.cfg
	var dialer net.Dialer
	raw, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return 0, retryable(fmt.Errorf("transport: dial %s: %w", addr, ctxErr(ctx, err)))
	}
	conn := NewConn(raw)
	defer conn.Close()
	stop := closeOnCancel(ctx, conn)
	defer stop()

	resume := st.token != 0
	tiers := cfg.Tiers
	if tiers == 0 {
		tiers = wire.AllTiersMask
	}
	if _, err := conn.Send(Hello{
		WorkerID: cfg.ID,
		Version:  wire.ProtocolVersion,
		Token:    st.token,
		Resume:   resume,
		Tiers:    tiers,
		// This worker computes at float64 only; the f32 tier has its own
		// worker type (Worker32).
		Precisions: wire.PrecisionF64.Mask(),
	}); err != nil {
		return 0, retryable(ctxErr(ctx, err))
	}
	msg, err := conn.Recv()
	if err != nil {
		return 0, retryable(ctxErr(ctx, err))
	}
	if rej, ok := msg.(Reject); ok {
		st.ins.rejected()
		if rej.Code == RejectBlacklisted {
			return 0, fmt.Errorf("transport: worker %d: %s: %w", cfg.ID, rej.Reason, ErrBlacklisted)
		}
		return 0, fmt.Errorf("transport: worker %d rejected: %s", cfg.ID, rej.Reason)
	}
	welcome, ok := msg.(Welcome)
	if !ok {
		return 0, fmt.Errorf("transport: expected Welcome, got %T", msg)
	}
	if welcome.Version != wire.ProtocolVersion {
		return 0, fmt.Errorf("transport: server speaks protocol %d, want %d", welcome.Version, wire.ProtocolVersion)
	}
	if !welcome.Uplink.Valid() {
		return 0, fmt.Errorf("transport: server negotiated unknown uplink tier %d", welcome.Uplink)
	}
	if tiers&welcome.Uplink.Mask() == 0 {
		return 0, fmt.Errorf("transport: server negotiated uplink tier %s outside the offered mask %#x",
			welcome.Uplink, tiers)
	}
	if welcome.Precision != wire.PrecisionF64 {
		return 0, fmt.Errorf("transport: server negotiated precision %s outside the offered f64-only mask",
			welcome.Precision)
	}
	st.token = welcome.Token
	st.ins.tierNegotiated(int32(welcome.Uplink))
	shards := welcome.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 1 || shards > 64 {
		return 0, fmt.Errorf("transport: server announced %d shards, want 1..64", shards)
	}
	if st.shards != 0 && shards != st.shards {
		return 0, fmt.Errorf("transport: server changed shard count %d → %d across rejoin", st.shards, shards)
	}
	if st.mdl == nil {
		// First successful handshake: build the deterministic local
		// state from the Spec — or adopt the process-shared copy.
		// Rejoins keep it (same Spec, same run).
		st.spec = welcome.Spec
		if sh := cfg.Shared; sh != nil {
			st.mdl, st.train, st.flt, st.asn = sh.mdl, sh.train, sh.flt, sh.asn
		} else {
			if st.mdl, err = st.spec.BuildModel(); err != nil {
				return 0, err
			}
			if st.train, _, err = st.spec.BuildData(); err != nil {
				return 0, err
			}
			if st.flt, err = st.spec.BuildFault(); err != nil {
				return 0, err
			}
		}
		st.params = make([]float64, st.mdl.NumParams())
	}
	if st.shards == 0 {
		st.shards = shards
		st.ranges = make([][2]int, shards)
		dim := st.mdl.NumParams()
		for s := range st.ranges {
			st.ranges[s][0], st.ranges[s][1] = wire.ShardRange(dim, shards, s)
		}
		st.encs = make([]wire.UplinkEncoder, shards)
		st.frames = make([][]byte, shards)
		st.reps = make([]GradientReport, shards)
		st.msgs = make([]Message, shards)
	}
	// A fresh connection means fresh uplink streams: the server's
	// decoders hold no codec state, so the encoders must not either. The
	// tier is per connection — a rejoin may renegotiate (the lossy tiers
	// are stateless, and the delta tier's first frame after a reset
	// ships raw), so adopting the new Welcome's tier is always safe.
	for s := range st.encs {
		st.encs[s].Reset()
		st.encs[s].Tier = welcome.Uplink
	}
	st.pipeline = welcome.Pipeline
	// Any prep received on a previous connection died with it: the
	// server forgets prep state on eviction and serves this connection
	// the self-contained Files path until its next prep lands.
	st.prepIter = -1
	if st.pipeline && st.asn == nil {
		if st.asn, err = st.spec.BuildAssignment(); err != nil {
			return 0, err
		}
	}
	if st.pipeline && st.filesStatic == nil {
		st.filesStatic = st.asn.WorkerFiles(cfg.ID)
	}
	// A (re)connected worker holds no acknowledged vector: the server
	// sends a full broadcast first, so stale params are never patched.
	st.lastApplied = -1
	// The session token is logged on every (re)join — the server
	// rotates it per handshake, so a restarted process must present the
	// latest one (byzworker -resume-token).
	if resume {
		cfg.Logf("worker %d: rejoined (%s; session token %#x)", cfg.ID, st.spec.Scheme, st.token)
	} else {
		cfg.Logf("worker %d: joined (%s, %d rounds; session token %#x)",
			cfg.ID, st.spec.Scheme, st.spec.Rounds, st.token)
	}

	// One reused fault-delay timer for the connection's lifetime: a bare
	// time.After per delayed round would leak a live timer whenever ctx
	// wins the select.
	var delayTimer *time.Timer
	defer func() {
		if delayTimer != nil {
			delayTimer.Stop()
		}
	}()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return 0, retryable(fmt.Errorf("transport: worker %d recv: %w", cfg.ID, ctxErr(ctx, err)))
		}
		switch m := msg.(type) {
		case RoundPrep:
			// The next round's sample lists, streamed while the current
			// round's tail still runs on the PS. Decoded slices are
			// fresh per Recv, so retaining them is safe.
			st.prepIter = m.Iteration
			st.prepSamples = m.Samples
		case RoundStart:
			st.ins.roundStarted(m.Iteration)
			files, samples, err := st.roundWork(&m)
			if err != nil {
				return 0, err
			}
			if err := st.applyParams(&m); err != nil {
				// A delta against a base this worker does not hold means
				// the broadcast state diverged; reconnecting fetches a
				// full vector.
				return 0, retryable(err)
			}
			// Self-injected faults: the Spec's fault model decides per
			// round whether this worker crashes, delays, or skips —
			// exercised against the server's real deadline and quorum
			// handling, not simulated on the PS side.
			d := st.flt.Plan(m.Iteration, cfg.ID)
			if d.Crash {
				cfg.Logf("worker %d: injected crash at round %d", cfg.ID, m.Iteration)
				return 0, fmt.Errorf("worker %d round %d: %w", cfg.ID, m.Iteration, ErrInjectedCrash)
			}
			if d.Delay > 0 {
				if delayTimer == nil {
					delayTimer = time.NewTimer(d.Delay)
				} else {
					if !delayTimer.Stop() {
						select {
						case <-delayTimer.C:
						default:
						}
					}
					delayTimer.Reset(d.Delay)
				}
				select {
				case <-delayTimer.C:
				case <-ctx.Done():
					return 0, ctx.Err()
				}
			}
			if d.Skip {
				cfg.Logf("worker %d: injected skip at round %d", cfg.ID, m.Iteration)
				// A single empty frame stands for every shard of the
				// round; no encoder rolls its delta base, on either side.
				if _, err := conn.Send(GradientReport{WorkerID: cfg.ID, Iteration: m.Iteration}); err != nil {
					return 0, retryable(ctxErr(ctx, err))
				}
				st.ins.skipSent()
				continue
			}
			computeStart := time.Now()
			msgs, err := st.computeReport(m.Iteration, files, samples)
			if err != nil {
				return 0, err
			}
			st.ins.computeObserved(time.Since(computeStart).Seconds())
			if _, err := conn.SendMany(msgs...); err != nil {
				return 0, retryable(ctxErr(ctx, err))
			}
			st.ins.reportSent(msgs)
		case Shutdown:
			cfg.Logf("worker %d: shutdown, final accuracy %.4f", cfg.ID, m.FinalAccuracy)
			return m.FinalAccuracy, nil
		case Reject:
			if m.Code == RejectBlacklisted {
				return 0, fmt.Errorf("transport: worker %d: %s: %w", cfg.ID, m.Reason, ErrBlacklisted)
			}
			return 0, fmt.Errorf("transport: worker %d rejected: %s", cfg.ID, m.Reason)
		default:
			return 0, fmt.Errorf("transport: worker %d: unexpected message %T", cfg.ID, msg)
		}
	}
}

// applyParams patches the worker's parameter vector with the round's
// broadcast frame: a full frame overwrites it, a delta frame XORs onto
// the base iteration it names — which must be exactly what this worker
// holds.
func (st *workerState) applyParams(m *RoundStart) error {
	if len(m.ParamsFrame) == 0 {
		return fmt.Errorf("transport: round %d carried no parameter frame", m.Iteration)
	}
	// Validate the delta base before any bits are patched: a delta
	// against a vector this worker does not hold must not touch params.
	if int(m.ParamsFrame[0]) == wire.ParamsDelta && m.BaseIteration != st.lastApplied {
		return fmt.Errorf("transport: round %d delta against iteration %d, but worker holds %d",
			m.Iteration, m.BaseIteration, st.lastApplied)
	}
	_, consumed, err := wire.DecodeParams(m.ParamsFrame, st.params)
	if err != nil {
		return fmt.Errorf("transport: round %d params: %w", m.Iteration, err)
	}
	if consumed != len(m.ParamsFrame) {
		return fmt.Errorf("transport: round %d params frame has %d trailing bytes",
			m.Iteration, len(m.ParamsFrame)-consumed)
	}
	st.lastApplied = m.Iteration
	return nil
}

// roundWork resolves a RoundStart into the worker's file list (static
// slot order) and per-file sample lists. A self-contained round carries
// the Files map; a prep round carries neither file ids nor samples and
// must be preceded by its RoundPrep on this same connection — if that
// prep was lost the error is retryable, because the server serves a
// reconnected worker the self-contained path.
func (st *workerState) roundWork(m *RoundStart) (files []int, samples [][]int, err error) {
	if len(m.Files) > 0 {
		files = st.files[:0]
		for v := range m.Files {
			files = append(files, v)
		}
		slices.Sort(files)
		st.files = files
		if cap(st.sampleLists) < len(files) {
			st.sampleLists = make([][]int, len(files))
		}
		samples = st.sampleLists[:len(files)]
		st.sampleLists = samples
		for i, v := range files {
			samples[i] = m.Files[v]
		}
		return files, samples, nil
	}
	if !st.pipeline {
		return nil, nil, fmt.Errorf("transport: worker %d: round %d carried no files outside pipeline mode",
			st.cfg.ID, m.Iteration)
	}
	if st.prepIter != m.Iteration {
		return nil, nil, retryable(fmt.Errorf("transport: worker %d: round %d started without its prep (have %d)",
			st.cfg.ID, m.Iteration, st.prepIter))
	}
	if len(st.prepSamples) != len(st.filesStatic) {
		return nil, nil, fmt.Errorf("transport: worker %d: round %d prep carried %d sample lists, want %d",
			st.cfg.ID, m.Iteration, len(st.prepSamples), len(st.filesStatic))
	}
	return st.filesStatic, st.prepSamples, nil
}

// computeReport produces the worker's (honest or Byzantine) gradients
// for one round, sliced into one report per shard, each encoded through
// its shard's uplink codec (raw or XOR-delta against the previous
// report, whichever is smaller). The returned messages alias the
// state's scratch and are valid until the next computeReport call.
func (st *workerState) computeReport(iter int, files []int, samples [][]int) ([]Message, error) {
	cfg := st.cfg
	dim := st.mdl.NumParams()
	if cap(st.grads) < len(files) {
		st.grads = make([][]float64, len(files))
	}
	grads := st.grads[:len(files)]
	st.grads = grads
	// The ALIE payload is one vector per round shared by every file, so
	// it is crafted once — through the sidecar coalition — before the
	// per-file loop.
	var alie []float64
	if cfg.Behavior == BehaviorALIE {
		var err error
		if alie, err = st.aliePayload(iter); err != nil {
			return nil, err
		}
	}
	for i := range files {
		if cap(grads[i]) < dim {
			grads[i] = make([]float64, dim)
		}
		g := grads[i][:dim]
		grads[i] = g
		clear(g)
		switch cfg.Behavior {
		case BehaviorHonest:
			st.mdl.SumGradient(st.params, st.train, samples[i], g)
		case BehaviorReversed, BehaviorSignFlip:
			st.mdl.SumGradient(st.params, st.train, samples[i], g)
			for i := range g {
				g[i] = -g[i]
			}
		case BehaviorConstant:
			val := cfg.ConstantValue
			if val == 0 {
				val = -1
			}
			for i := range g {
				g[i] = val
			}
		case BehaviorZero:
			// zeros (crash-like)
		case BehaviorALIE:
			copy(g, alie)
		default:
			return nil, fmt.Errorf("transport: unknown behavior %q", cfg.Behavior)
		}
	}
	if cap(st.shardGrads) < len(files) {
		st.shardGrads = make([][]float64, len(files))
	}
	sg := st.shardGrads[:len(files)]
	st.shardGrads = sg
	for s := 0; s < st.shards; s++ {
		lo, hi := st.ranges[s][0], st.ranges[s][1]
		for i := range grads {
			sg[i] = grads[i][lo:hi]
		}
		frame, _, _, err := st.encs[s].Encode(st.frames[s][:0], cfg.ID, files, sg)
		if err != nil {
			return nil, err
		}
		st.frames[s] = frame
		st.reps[s] = GradientReport{WorkerID: cfg.ID, Iteration: iter, Shard: s, Frame: frame}
		st.msgs[s] = st.reps[s]
	}
	return st.msgs, nil
}

// aliePayload crafts the round's ALIE vector through the sidecar
// coalition. The z factor matches the in-process attack: ZMax over the
// cluster size (Spec.K, which the server pins to the assignment's K
// before Welcome) and the coalition size the share reports.
func (st *workerState) aliePayload(round int) ([]float64, error) {
	st.atkCtx = attack.Context{
		Round:             round,
		Dim:               st.mdl.NumParams(),
		Participants:      st.spec.K,
		ExpectedCorrupted: st.adv.Members(),
	}
	craft, err := attack.BeginWith(attack.ALIE{ZOverride: st.cfg.ALIEZ}, &st.atkCtx, &st.atkScr, advCoordinator{st})
	if err != nil {
		return nil, fmt.Errorf("transport: worker %d round %d: %w", st.cfg.ID, round, err)
	}
	return craft(0, nil), nil
}

// advCoordinator backs attack.Coordinator with the coalition hub: the
// leader reconstructs the round's gradient-population moments and
// publishes them; every member — leader included — then crafts from the
// hub's broadcast, so the whole coalition (and, by the bit-exact codec,
// the in-process omniscient attacker) agrees on the payload
// bit-for-bit.
type advCoordinator struct{ st *workerState }

// RoundMoments implements attack.Coordinator.
func (c advCoordinator) RoundMoments(ctx *attack.Context) (attack.Moments, error) {
	st := c.st
	if st.adv.IsLeader() {
		mu, sigma, err := st.reconstructMoments(ctx.Round)
		if err != nil {
			return attack.Moments{}, err
		}
		st.moments = wire.MomentFrame{Round: ctx.Round, Members: st.adv.Members(), Mu: mu, Sigma: sigma}
		if err := st.adv.Publish(&st.moments); err != nil {
			return attack.Moments{}, err
		}
	}
	// Decoding the share back into st.moments reuses its buffers; for
	// the leader those hold the just-published values, which the decoded
	// bits reproduce exactly.
	if err := st.adv.AwaitShare(ctx.Round, &st.moments); err != nil {
		return attack.Moments{}, err
	}
	return attack.Moments{
		Round:   st.moments.Round,
		Members: st.moments.Members,
		Mu:      st.moments.Mu,
		Sigma:   st.moments.Sigma,
	}, nil
}

// reconstructMoments is the coalition leader's omniscient
// reconstruction: everything the in-process attack oracle reads off the
// engine — the round's batch, its file partition, and every file's true
// gradient — is a deterministic function of the Spec, so the leader
// replays it locally (its own batch sampler fast-forwarded to round)
// and takes the population moments with the same accumulation order as
// attack.Loopback. st.params must already reflect the round's
// broadcast, which the computeReport call order guarantees.
func (st *workerState) reconstructMoments(round int) (mu, sigma []float64, err error) {
	if st.sampler == nil {
		// st.asn may already exist — shared state or the pipeline path
		// builds it at handshake time.
		if st.asn == nil {
			if st.asn, err = st.spec.BuildAssignment(); err != nil {
				return nil, nil, err
			}
		}
		if st.sampler, err = data.NewBatchSampler(st.train.Len(), st.spec.BatchSize, st.spec.Seed); err != nil {
			return nil, nil, err
		}
		dim := st.mdl.NumParams()
		flat := make([]float64, st.asn.F*dim)
		st.trueGrads = make([][]float64, st.asn.F)
		for v := range st.trueGrads {
			st.trueGrads[v] = flat[v*dim : (v+1)*dim]
		}
		st.muBuf = make([]float64, dim)
		st.sigmaBuf = make([]float64, dim)
	}
	if round <= st.sampledIter {
		return nil, nil, fmt.Errorf("transport: worker %d: moments for round %d requested after round %d",
			st.cfg.ID, round, st.sampledIter)
	}
	// The sampler's stream is positional: skipped rounds (missed while
	// disconnected) still consume their batches so round r always sees
	// the engine's batch r.
	var batch []int
	for st.sampledIter < round {
		batch = st.sampler.Next()
		st.sampledIter++
	}
	if st.fileParts, err = data.PartitionFilesInto(batch, st.asn.F, st.fileParts); err != nil {
		return nil, nil, err
	}
	for v, g := range st.trueGrads {
		clear(g)
		st.mdl.SumGradient(st.params, st.train, st.fileParts[v], g)
	}
	mu = linalg.MeanVecInto(st.muBuf, st.trueGrads)
	sigma = linalg.StdVecInto(st.sigmaBuf, mu, st.trueGrads)
	return mu, sigma, nil
}
