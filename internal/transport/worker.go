package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"slices"
	"time"

	"byzshield/internal/data"
	"byzshield/internal/model"
	"byzshield/internal/wire"
)

// ErrInjectedCrash is returned by RunWorker when the Spec's fault model
// schedules this worker to crash: the process stops participating and
// the parameter server continues over the survivors.
var ErrInjectedCrash = errors.New("transport: worker crashed by fault injection")

// WorkerBehavior selects how a worker process responds to gradient
// requests. In distributed mode the attacks that require only local
// knowledge are available (the omniscient ALIE attack needs the global
// gradient population and therefore only runs in the in-process engine;
// see DESIGN.md).
type WorkerBehavior string

// Worker behaviors.
const (
	BehaviorHonest   WorkerBehavior = "honest"
	BehaviorReversed WorkerBehavior = "reversed" // send −g
	BehaviorConstant WorkerBehavior = "constant" // send a constant vector
	BehaviorZero     WorkerBehavior = "zero"     // send zeros (crash-like)
)

// WorkerConfig configures a worker process.
type WorkerConfig struct {
	ID       int
	Behavior WorkerBehavior
	// ConstantValue is the payload value for BehaviorConstant (default −1).
	ConstantValue float64
	// Logf receives progress lines; nil disables logging.
	Logf func(format string, args ...any)
}

// RunWorker connects to the PS at addr and participates in training
// until Shutdown, returning the final accuracy reported by the PS.
// Canceling ctx aborts the dial or any blocked send/receive promptly
// (by closing the connection) and returns ctx.Err().
func RunWorker(ctx context.Context, addr string, cfg WorkerConfig) (float64, error) {
	if cfg.Behavior == "" {
		cfg.Behavior = BehaviorHonest
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	var dialer net.Dialer
	raw, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	conn := NewConn(raw)
	defer conn.Close()
	stop := closeOnCancel(ctx, conn)
	defer stop()

	if err := conn.Send(Hello{WorkerID: cfg.ID}); err != nil {
		return 0, ctxErr(ctx, err)
	}
	msg, err := conn.Recv()
	if err != nil {
		return 0, ctxErr(ctx, err)
	}
	welcome, ok := msg.(Welcome)
	if !ok {
		return 0, fmt.Errorf("transport: expected Welcome, got %T", msg)
	}
	spec := welcome.Spec
	mdl, err := spec.BuildModel()
	if err != nil {
		return 0, err
	}
	train, _, err := spec.BuildData()
	if err != nil {
		return 0, err
	}
	flt, err := spec.BuildFault()
	if err != nil {
		return 0, err
	}
	cfg.Logf("worker %d: joined (%s, %d rounds)", cfg.ID, spec.Scheme, spec.Rounds)

	for {
		msg, err := conn.Recv()
		if err != nil {
			return 0, fmt.Errorf("transport: worker %d recv: %w", cfg.ID, ctxErr(ctx, err))
		}
		switch m := msg.(type) {
		case RoundStart:
			// Self-injected faults: the Spec's fault model decides per
			// round whether this worker crashes, delays, or skips —
			// exercised against the server's real deadline and quorum
			// handling, not simulated on the PS side.
			d := flt.Plan(m.Iteration, cfg.ID)
			if d.Crash {
				cfg.Logf("worker %d: injected crash at round %d", cfg.ID, m.Iteration)
				return 0, fmt.Errorf("worker %d round %d: %w", cfg.ID, m.Iteration, ErrInjectedCrash)
			}
			if d.Delay > 0 {
				select {
				case <-time.After(d.Delay):
				case <-ctx.Done():
					return 0, ctx.Err()
				}
			}
			if d.Skip {
				cfg.Logf("worker %d: injected skip at round %d", cfg.ID, m.Iteration)
				if err := conn.Send(GradientReport{WorkerID: cfg.ID, Iteration: m.Iteration}); err != nil {
					return 0, ctxErr(ctx, err)
				}
				continue
			}
			rep, err := computeReport(cfg, mdl, train, &m)
			if err != nil {
				return 0, err
			}
			if err := conn.Send(*rep); err != nil {
				return 0, ctxErr(ctx, err)
			}
		case Shutdown:
			cfg.Logf("worker %d: shutdown, final accuracy %.4f", cfg.ID, m.FinalAccuracy)
			return m.FinalAccuracy, nil
		default:
			return 0, fmt.Errorf("transport: worker %d: unexpected message %T", cfg.ID, msg)
		}
	}
}

// computeReport produces the worker's (honest or Byzantine) gradients
// for one round, encoded as a binary gradient frame.
func computeReport(cfg WorkerConfig, mdl model.Model, train *data.Dataset, rs *RoundStart) (*GradientReport, error) {
	rep := &GradientReport{WorkerID: cfg.ID, Iteration: rs.Iteration}
	// Deterministic file order.
	files := make([]int, 0, len(rs.Files))
	for v := range rs.Files {
		files = append(files, v)
	}
	slices.Sort(files)
	dim := mdl.NumParams()
	grads := make([][]float64, 0, len(files))
	for _, v := range files {
		g := make([]float64, dim)
		switch cfg.Behavior {
		case BehaviorHonest:
			mdl.SumGradient(rs.Params, train, rs.Files[v], g)
		case BehaviorReversed:
			mdl.SumGradient(rs.Params, train, rs.Files[v], g)
			for i := range g {
				g[i] = -g[i]
			}
		case BehaviorConstant:
			val := cfg.ConstantValue
			if val == 0 {
				val = -1
			}
			for i := range g {
				g[i] = val
			}
		case BehaviorZero:
			// zeros (crash-like)
		default:
			return nil, fmt.Errorf("transport: unknown behavior %q", cfg.Behavior)
		}
		grads = append(grads, g)
	}
	frame, err := wire.AppendGradFrame(nil, cfg.ID, files, grads)
	if err != nil {
		return nil, err
	}
	rep.Frame = frame
	return rep, nil
}
