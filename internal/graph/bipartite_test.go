package graph

import (
	"math"
	"testing"
	"testing/quick"

	"byzshield/internal/linalg"
)

// completeBipartite builds K_{m,n}.
func completeBipartite(m, n int) *Bipartite {
	g := NewBipartite(m, n)
	for u := 0; u < m; u++ {
		for v := 0; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

func TestAddEdgeAndQueries(t *testing.T) {
	g := NewBipartite(3, 4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(2, 1)
	if g.Edges() != 3 {
		t.Errorf("Edges = %d, want 3", g.Edges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 1) {
		t.Error("HasEdge wrong")
	}
	nl := g.NeighborsOfLeft(0)
	if len(nl) != 2 || nl[0] != 1 || nl[1] != 3 {
		t.Errorf("NeighborsOfLeft(0) = %v", nl)
	}
	nr := g.NeighborsOfRight(1)
	if len(nr) != 2 || nr[0] != 0 || nr[1] != 2 {
		t.Errorf("NeighborsOfRight(1) = %v", nr)
	}
	if g.LeftDegree(0) != 2 || g.RightDegree(3) != 1 || g.RightDegree(0) != 0 {
		t.Error("degrees wrong")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewBipartite(2, 2)
	if err := g.AddEdge(2, 0); err == nil {
		t.Error("out-of-range left accepted")
	}
	if err := g.AddEdge(0, -1); err == nil {
		t.Error("out-of-range right accepted")
	}
	g.MustAddEdge(0, 0)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestNeighborsReturnCopies(t *testing.T) {
	g := NewBipartite(2, 2)
	g.MustAddEdge(0, 0)
	n := g.NeighborsOfLeft(0)
	n[0] = 99
	if g.NeighborsOfLeft(0)[0] == 99 {
		t.Error("NeighborsOfLeft returned internal slice")
	}
}

func TestNeighborhoodOfLeftSet(t *testing.T) {
	g := NewBipartite(3, 5)
	g.MustAddEdge(0, 0)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 4)
	ns := g.NeighborhoodOfLeftSet([]int{0, 1})
	want := []int{0, 1, 2}
	if len(ns) != len(want) {
		t.Fatalf("N(S) = %v, want %v", ns, want)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("N(S) = %v, want %v", ns, want)
		}
	}
	if got := g.VolumeOfLeftSet([]int{0, 1}); got != 4 {
		t.Errorf("vol(S) = %d, want 4", got)
	}
}

func TestBiregular(t *testing.T) {
	g := completeBipartite(3, 4)
	dL, dR, ok := g.Biregular()
	if !ok || dL != 4 || dR != 3 {
		t.Errorf("Biregular K_{3,4} = (%d,%d,%v)", dL, dR, ok)
	}
	g2 := NewBipartite(2, 2)
	g2.MustAddEdge(0, 0)
	if _, _, ok := g2.Biregular(); ok {
		t.Error("irregular graph reported biregular")
	}
	if _, _, ok := NewBipartite(0, 3).Biregular(); ok {
		t.Error("empty side reported biregular")
	}
}

func TestBiAdjacency(t *testing.T) {
	g := NewBipartite(2, 3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 0)
	h := g.BiAdjacency()
	want := linalg.NewMatrixFromRows([][]float64{{0, 0, 1}, {1, 0, 0}})
	if !h.Equal(want, 0) {
		t.Errorf("BiAdjacency =\n%v", h)
	}
}

func TestNormalizedBiAdjacency(t *testing.T) {
	g := completeBipartite(2, 2)
	a, err := g.NormalizedBiAdjacency()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt(4)
	if math.Abs(a.At(0, 0)-want) > 1e-12 {
		t.Errorf("normalized entry = %v, want %v", a.At(0, 0), want)
	}
	g2 := NewBipartite(2, 2)
	g2.MustAddEdge(0, 0)
	if _, err := g2.NormalizedBiAdjacency(); err == nil {
		t.Error("non-biregular accepted")
	}
}

func TestSpectrumCompleteBipartite(t *testing.T) {
	// For K_{m,n}, A·Aᵀ = (1/m) J_m ... with dL=n, dR=m:
	// A = H/sqrt(nm), AAᵀ = (n/(nm)) J_m = J_m/m, spectrum {1, 0^(m-1)}.
	g := completeBipartite(4, 6)
	spec, err := ComputeSpectrum(g, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spec.Eigenvalues[0]-1) > 1e-9 {
		t.Errorf("top eigenvalue = %v, want 1", spec.Eigenvalues[0])
	}
	for _, v := range spec.Eigenvalues[1:] {
		if math.Abs(v) > 1e-9 {
			t.Errorf("non-top eigenvalue = %v, want 0", v)
		}
	}
	err = spec.MatchesExpected([]linalg.EigenvalueMultiplicity{
		{Value: 1, Multiplicity: 1},
		{Value: 0, Multiplicity: 3},
	}, 1e-6)
	if err != nil {
		t.Errorf("MatchesExpected: %v", err)
	}
}

func TestMatchesExpectedMismatch(t *testing.T) {
	g := completeBipartite(3, 3)
	spec, err := ComputeSpectrum(g, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.MatchesExpected([]linalg.EigenvalueMultiplicity{{Value: 1, Multiplicity: 3}}, 1e-6); err == nil {
		t.Error("wrong expectation accepted")
	}
	if err := spec.MatchesExpected([]linalg.EigenvalueMultiplicity{
		{Value: 0.5, Multiplicity: 1}, {Value: 0, Multiplicity: 2},
	}, 1e-6); err == nil {
		t.Error("wrong value accepted")
	}
	if err := spec.MatchesExpected([]linalg.EigenvalueMultiplicity{
		{Value: 1, Multiplicity: 2}, {Value: 0, Multiplicity: 1},
	}, 1e-6); err == nil {
		t.Error("wrong multiplicity accepted")
	}
}

func TestMu1(t *testing.T) {
	g := completeBipartite(3, 3)
	spec, err := ComputeSpectrum(g, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spec.Mu1()) > 1e-9 {
		t.Errorf("µ1 of complete bipartite = %v, want 0", spec.Mu1())
	}
}

func TestExpansionLowerBound(t *testing.T) {
	// Paper's running example: MOLS with l=5, r=3, K=15, µ1=1/3, q=2:
	// β = (2*5/3)/(1/3 + (2/3)(2/15)) = (10/3)/(1/3+4/45) = (10/3)/(19/45).
	beta := ExpansionLowerBound(2, 5, 3, 15, 1.0/3)
	want := (10.0 / 3) / (19.0 / 45)
	if math.Abs(beta-want) > 1e-12 {
		t.Errorf("β = %v, want %v", beta, want)
	}
	if ExpansionLowerBound(0, 5, 3, 15, 1.0/3) != 0 {
		t.Error("β(q=0) should be 0")
	}
}

func TestCheckExpansionBoundHolds(t *testing.T) {
	// On the complete bipartite graph every left set sees all right
	// nodes, so the bound must hold trivially.
	g := completeBipartite(4, 4)
	obs, bound, err := CheckExpansionBound(g, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if float64(obs) < bound-1e-9 {
		t.Errorf("expansion bound violated: observed %d < bound %v", obs, bound)
	}
}

// Property: for random bipartite graphs built from a double cover
// pattern, every neighborhood size is within [max single degree, sum of
// degrees] and the bi-adjacency row/col sums equal degrees.
func TestQuickDegreeConsistency(t *testing.T) {
	prop := func(seed uint8) bool {
		m, n := 4+int(seed)%3, 5+int(seed)%4
		g := NewBipartite(m, n)
		// deterministic pseudo-pattern
		for u := 0; u < m; u++ {
			for v := 0; v < n; v++ {
				if (u*7+v*3+int(seed))%3 == 0 {
					g.MustAddEdge(u, v)
				}
			}
		}
		h := g.BiAdjacency()
		rs := h.RowSums()
		cs := h.ColSums()
		for u := 0; u < m; u++ {
			if int(rs[u]) != g.LeftDegree(u) {
				return false
			}
		}
		for v := 0; v < n; v++ {
			if int(cs[v]) != g.RightDegree(v) {
				return false
			}
		}
		total := 0
		for u := 0; u < m; u++ {
			total += g.LeftDegree(u)
		}
		return total == g.Edges()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkComputeSpectrum15(b *testing.B) {
	g := completeBipartite(15, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeSpectrum(g, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMu1FastMatchesJacobi(t *testing.T) {
	// K_{4,6}: µ1 = 0.
	g := completeBipartite(4, 6)
	fast, err := Mu1Fast(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast) > 1e-8 {
		t.Errorf("Mu1Fast of complete bipartite = %v, want 0", fast)
	}
	// A union of two disjoint complete bipartite halves has µ1 = 1.
	g2 := NewBipartite(4, 4)
	for u := 0; u < 2; u++ {
		for v := 0; v < 2; v++ {
			g2.MustAddEdge(u, v)
			g2.MustAddEdge(u+2, v+2)
		}
	}
	fast2, err := Mu1Fast(g2)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ComputeSpectrum(g2, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast2-spec.Mu1()) > 1e-6 {
		t.Errorf("Mu1Fast %v vs Jacobi %v", fast2, spec.Mu1())
	}
	if _, err := Mu1Fast(NewBipartite(2, 2)); err == nil {
		t.Error("non-biregular accepted")
	}
}
