// Package graph implements the bipartite worker–file graphs at the heart
// of ByzShield's analysis (Sec. 3 of the paper): bi-adjacency matrices,
// neighborhoods N(S), biregularity checks, the normalized product A·Aᵀ
// with A = H/√(dL·dR), its spectrum, the second eigenvalue µ1, and the
// expansion lower bound β of Eq. (5) derived from Lemma 1 (Tanner-graph
// expansion, Zhu & Chugg 2007).
package graph

import (
	"fmt"
	"math"
	"sort"

	"byzshield/internal/linalg"
)

// Bipartite is a bipartite graph G = (U ∪ F, E) between Left nodes
// (workers) and Right nodes (files). Adjacency is stored both ways for
// O(degree) neighborhood queries.
type Bipartite struct {
	left, right int
	adjL        [][]int // adjL[u] = sorted files assigned to worker u
	adjR        [][]int // adjR[v] = sorted workers holding file v
	edges       int
}

// NewBipartite creates an empty bipartite graph with the given part sizes.
func NewBipartite(left, right int) *Bipartite {
	if left < 0 || right < 0 {
		panic(fmt.Sprintf("graph: negative part sizes %d,%d", left, right))
	}
	return &Bipartite{
		left:  left,
		right: right,
		adjL:  make([][]int, left),
		adjR:  make([][]int, right),
	}
}

// Left returns the number of left (worker) nodes.
func (g *Bipartite) Left() int { return g.left }

// Right returns the number of right (file) nodes.
func (g *Bipartite) Right() int { return g.right }

// Edges returns the number of edges.
func (g *Bipartite) Edges() int { return g.edges }

// AddEdge connects left node u to right node v. Duplicate edges are
// rejected with an error (assignments are simple graphs).
func (g *Bipartite) AddEdge(u, v int) error {
	if u < 0 || u >= g.left {
		return fmt.Errorf("graph: left node %d out of range [0,%d)", u, g.left)
	}
	if v < 0 || v >= g.right {
		return fmt.Errorf("graph: right node %d out of range [0,%d)", v, g.right)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.adjL[u] = insertSorted(g.adjL[u], v)
	g.adjR[v] = insertSorted(g.adjR[v], u)
	g.edges++
	return nil
}

// MustAddEdge is AddEdge that panics on error, for construction code
// whose indices are correct by construction.
func (g *Bipartite) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether (u, v) is an edge.
func (g *Bipartite) HasEdge(u, v int) bool {
	if u < 0 || u >= g.left || v < 0 || v >= g.right {
		return false
	}
	adj := g.adjL[u]
	i := sort.SearchInts(adj, v)
	return i < len(adj) && adj[i] == v
}

// NeighborsOfLeft returns a copy of the files assigned to worker u,
// sorted ascending. This is N(U_u) in the paper's notation.
func (g *Bipartite) NeighborsOfLeft(u int) []int {
	out := make([]int, len(g.adjL[u]))
	copy(out, g.adjL[u])
	return out
}

// NeighborsOfRight returns a copy of the workers holding file v, sorted
// ascending. This is N(B_v) in the paper's notation.
func (g *Bipartite) NeighborsOfRight(v int) []int {
	out := make([]int, len(g.adjR[v]))
	copy(out, g.adjR[v])
	return out
}

// LeftDegree returns the degree of left node u.
func (g *Bipartite) LeftDegree(u int) int { return len(g.adjL[u]) }

// RightDegree returns the degree of right node v.
func (g *Bipartite) RightDegree(v int) int { return len(g.adjR[v]) }

// NeighborhoodOfLeftSet returns N(S) for a set S of left nodes: the set
// of right nodes adjacent to at least one member, sorted ascending.
func (g *Bipartite) NeighborhoodOfLeftSet(S []int) []int {
	seen := make(map[int]bool)
	for _, u := range S {
		for _, v := range g.adjL[u] {
			seen[v] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Biregular reports whether all left degrees equal dL ≥ 1 and all right
// degrees equal dR ≥ 1, returning those common degrees. Graphs with an
// empty side or isolated vertices are not considered biregular.
func (g *Bipartite) Biregular() (dL, dR int, ok bool) {
	if g.left == 0 || g.right == 0 || g.edges == 0 {
		return 0, 0, false
	}
	dL = len(g.adjL[0])
	for _, adj := range g.adjL {
		if len(adj) != dL {
			return 0, 0, false
		}
	}
	dR = len(g.adjR[0])
	for _, adj := range g.adjR {
		if len(adj) != dR {
			return 0, 0, false
		}
	}
	return dL, dR, true
}

// BiAdjacency returns the 0/1 bi-adjacency matrix H (Eq. 4): rows are
// left nodes, columns right nodes.
func (g *Bipartite) BiAdjacency() *linalg.Matrix {
	h := linalg.NewMatrix(g.left, g.right)
	for u, adj := range g.adjL {
		for _, v := range adj {
			h.Set(u, v, 1)
		}
	}
	return h
}

// NormalizedBiAdjacency returns A = H / √(dL·dR) for a biregular graph.
func (g *Bipartite) NormalizedBiAdjacency() (*linalg.Matrix, error) {
	dL, dR, ok := g.Biregular()
	if !ok {
		return nil, fmt.Errorf("graph: not biregular")
	}
	h := g.BiAdjacency()
	h.Scale(1 / math.Sqrt(float64(dL*dR)))
	return h, nil
}

// insertSorted inserts v into sorted slice xs keeping order.
func insertSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}
