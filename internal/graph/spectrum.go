package graph

import (
	"fmt"
	"math"

	"byzshield/internal/linalg"
)

// Spectrum holds the eigenvalues of the normalized co-assignment matrix
// A·Aᵀ of a biregular bipartite graph, sorted decreasing, together with
// the grouped (value, multiplicity) view used to compare against the
// exact spectra of Lemma 2.
type Spectrum struct {
	Eigenvalues []float64
	Groups      []linalg.EigenvalueMultiplicity
}

// Mu1 returns the second-largest eigenvalue µ1 of A·Aᵀ, the quantity
// that controls the expansion bound of Lemma 1. It panics if the
// spectrum has fewer than two eigenvalues.
func (s *Spectrum) Mu1() float64 {
	if len(s.Eigenvalues) < 2 {
		panic("graph: spectrum has fewer than two eigenvalues")
	}
	return s.Eigenvalues[1]
}

// ComputeSpectrum computes the eigenvalues of A·Aᵀ where A is the
// normalized bi-adjacency matrix of g. Groups are formed with the given
// tolerance (1e-6 is appropriate for the exact rational spectra of the
// paper's constructions).
func ComputeSpectrum(g *Bipartite, tol float64) (*Spectrum, error) {
	a, err := g.NormalizedBiAdjacency()
	if err != nil {
		return nil, err
	}
	vals, err := linalg.SymmetricEigen(a.Gram())
	if err != nil {
		return nil, err
	}
	return &Spectrum{
		Eigenvalues: vals,
		Groups:      linalg.GroupEigenvalues(vals, tol),
	}, nil
}

// MatchesExpected reports whether the grouped spectrum equals the
// expected (value, multiplicity) list up to tol on values. The expected
// list must be sorted by decreasing value, as GroupEigenvalues produces.
func (s *Spectrum) MatchesExpected(expected []linalg.EigenvalueMultiplicity, tol float64) error {
	if len(s.Groups) != len(expected) {
		return fmt.Errorf("graph: %d eigenvalue groups, want %d (groups: %+v)", len(s.Groups), len(expected), s.Groups)
	}
	for i, e := range expected {
		g := s.Groups[i]
		if math.Abs(g.Value-e.Value) > tol {
			return fmt.Errorf("graph: group %d value %.8f, want %.8f", i, g.Value, e.Value)
		}
		if g.Multiplicity != e.Multiplicity {
			return fmt.Errorf("graph: group %d multiplicity %d, want %d", i, g.Multiplicity, e.Multiplicity)
		}
	}
	return nil
}

// Mu1Fast estimates µ1 without the full O(K³) Jacobi solve: for a
// biregular graph the dominant eigenpair of A·Aᵀ is exactly (1, uniform
// vector), so the second eigenvalue is obtained by deflated power
// iteration in O(K²·iters). Suitable for cluster sizes where computing
// the complete spectrum is wasteful.
func Mu1Fast(g *Bipartite) (float64, error) {
	a, err := g.NormalizedBiAdjacency()
	if err != nil {
		return 0, err
	}
	gram := a.Gram()
	uniform := make([]float64, gram.Rows)
	for i := range uniform {
		uniform[i] = 1
	}
	return linalg.SecondEigenvaluePSD(gram, 1, uniform, 0, 0)
}

// ExpansionLowerBound returns β from Eq. (5) of the paper: given a set
// of q left nodes each of degree l in a graph with K left nodes, r-regular
// right side and second eigenvalue µ1, the number of distinct right
// neighbors is at least
//
//	β = (q·l/r) / (µ1 + (1−µ1)·q/K).
//
// It follows from Lemma 1 with vol(S) = q·l and |E| = K·l.
func ExpansionLowerBound(q, l, r, K int, mu1 float64) float64 {
	if q <= 0 {
		return 0
	}
	num := float64(q*l) / float64(r)
	den := mu1 + (1-mu1)*float64(q)/float64(K)
	return num / den
}

// VolumeOfLeftSet returns vol(S) = sum of degrees of the left nodes in S.
func (g *Bipartite) VolumeOfLeftSet(S []int) int {
	vol := 0
	for _, u := range S {
		vol += len(g.adjL[u])
	}
	return vol
}

// CheckExpansionBound verifies Lemma 1 empirically for a specific left
// set S: |N(S)| must be at least the β bound computed from the graph's
// actual spectrum. Returns the observed |N(S)| and the bound.
func CheckExpansionBound(g *Bipartite, S []int) (observed int, bound float64, err error) {
	dL, dR, ok := g.Biregular()
	if !ok {
		return 0, 0, fmt.Errorf("graph: expansion bound requires biregular graph")
	}
	spec, err := ComputeSpectrum(g, 1e-6)
	if err != nil {
		return 0, 0, err
	}
	observed = len(g.NeighborhoodOfLeftSet(S))
	bound = ExpansionLowerBound(len(S), dL, dR, g.Left(), spec.Mu1())
	return observed, bound, nil
}
