package fault

import (
	"math"
	"testing"
	"time"
)

func TestNonePlansNothing(t *testing.T) {
	var f None
	for round := 0; round < 5; round++ {
		for u := 0; u < 10; u++ {
			if d := f.Plan(round, u); d != (Decision{}) {
				t.Fatalf("None.Plan(%d,%d) = %+v", round, u, d)
			}
		}
	}
}

func TestCrashIsPermanentFromAtRound(t *testing.T) {
	f := Crash{Workers: []int{2, 5}, AtRound: 3}
	for round := 0; round < 8; round++ {
		for u := 0; u < 6; u++ {
			d := f.Plan(round, u)
			wantCrash := (u == 2 || u == 5) && round >= 3
			if d.Crash != wantCrash {
				t.Errorf("round %d worker %d: crash = %v, want %v", round, u, d.Crash, wantCrash)
			}
			if d.Skip || d.Delay != 0 {
				t.Errorf("round %d worker %d: unexpected skip/delay %+v", round, u, d)
			}
		}
	}
}

func TestStragglerDelaysEveryRound(t *testing.T) {
	f := Straggler{Workers: []int{1}, Delay: 40 * time.Millisecond}
	for round := 0; round < 4; round++ {
		if d := f.Plan(round, 1); d.Delay != 40*time.Millisecond || d.Crash || d.Skip {
			t.Errorf("round %d: %+v", round, d)
		}
		if d := f.Plan(round, 0); d != (Decision{}) {
			t.Errorf("round %d honest worker: %+v", round, d)
		}
	}
}

func TestDelayIsOneShot(t *testing.T) {
	f := Delay{Workers: []int{4}, Round: 2, Delay: time.Second}
	for round := 0; round < 5; round++ {
		d := f.Plan(round, 4)
		if (round == 2) != (d.Delay == time.Second) {
			t.Errorf("round %d: delay %v", round, d.Delay)
		}
	}
}

func TestFlakyDeterministicAndCalibrated(t *testing.T) {
	f := Flaky{Workers: []int{0}, P: 0.3, Seed: 7}
	g := Flaky{Workers: []int{0}, P: 0.3, Seed: 7}
	drops := 0
	const rounds = 20000
	for round := 0; round < rounds; round++ {
		d1, d2 := f.Plan(round, 0), g.Plan(round, 0)
		if d1 != d2 {
			t.Fatalf("round %d: nondeterministic flaky decision", round)
		}
		if d1.Skip {
			drops++
		}
	}
	rate := float64(drops) / rounds
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("flaky drop rate %.3f, want ≈0.30", rate)
	}
	// Untargeted workers never drop.
	for round := 0; round < 100; round++ {
		if d := f.Plan(round, 1); d != (Decision{}) {
			t.Fatalf("untargeted worker dropped: %+v", d)
		}
	}
}

// TestStackComposesPerWorker: a stack of targeted models yields a
// heterogeneous fleet — each worker fails only its own way, decisions
// merge (Crash/Skip OR-ed, Delay max), and the composition stays
// deterministic.
func TestStackComposesPerWorker(t *testing.T) {
	s := Stack{
		Flaky{Workers: []int{2}, P: 1, Seed: 3},
		Straggler{Workers: []int{9}, Delay: 50 * time.Millisecond},
		Crash{Workers: []int{4}, AtRound: 1},
	}
	for round := 0; round < 4; round++ {
		if d := s.Plan(round, 2); !d.Skip || d.Crash || d.Delay != 0 {
			t.Errorf("round %d worker 2: %+v, want pure skip", round, d)
		}
		if d := s.Plan(round, 9); d.Delay != 50*time.Millisecond || d.Skip || d.Crash {
			t.Errorf("round %d worker 9: %+v, want pure delay", round, d)
		}
		if d := s.Plan(round, 4); d.Crash != (round >= 1) {
			t.Errorf("round %d worker 4: crash = %v", round, d.Crash)
		}
		if d := s.Plan(round, 0); d != (Decision{}) {
			t.Errorf("round %d untargeted worker: %+v", round, d)
		}
	}
	// Overlapping targets merge: both models hit worker 7.
	m := Stack{
		Straggler{Workers: []int{7}, Delay: 10 * time.Millisecond},
		Straggler{Workers: []int{7}, Delay: 30 * time.Millisecond},
		Flaky{Workers: []int{7}, P: 1, Seed: 1},
	}
	if d := m.Plan(0, 7); d.Delay != 30*time.Millisecond || !d.Skip {
		t.Errorf("merged decision %+v, want max delay + skip", d)
	}
	if Stack(nil).Name() != "none" || (Stack{}).Plan(0, 0) != (Decision{}) {
		t.Error("empty stack is not fault-free")
	}
}

func TestNamesAreStable(t *testing.T) {
	cases := []struct {
		f    Fault
		want string
	}{
		{None{}, "none"},
		{Crash{Workers: []int{5, 2}, AtRound: 1}, "crash@1[2 5]"},
		{Straggler{Workers: []int{3}, Delay: time.Second}, "straggler/1s[3]"},
		{Delay{Workers: []int{0}, Round: 4, Delay: time.Millisecond}, "delay@4/1ms[0]"},
		{Flaky{Workers: []int{1, 0}, P: 0.25}, "flaky/0.25[0 1]"},
		{Stack{Flaky{Workers: []int{2}, P: 0.5}, Crash{Workers: []int{4}}},
			"stack(flaky/0.50[2]+crash@0[4])"},
	}
	for _, c := range cases {
		if got := c.f.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}
