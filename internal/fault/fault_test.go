package fault

import (
	"math"
	"testing"
	"time"
)

func TestNonePlansNothing(t *testing.T) {
	var f None
	for round := 0; round < 5; round++ {
		for u := 0; u < 10; u++ {
			if d := f.Plan(round, u); d != (Decision{}) {
				t.Fatalf("None.Plan(%d,%d) = %+v", round, u, d)
			}
		}
	}
}

func TestCrashIsPermanentFromAtRound(t *testing.T) {
	f := Crash{Workers: []int{2, 5}, AtRound: 3}
	for round := 0; round < 8; round++ {
		for u := 0; u < 6; u++ {
			d := f.Plan(round, u)
			wantCrash := (u == 2 || u == 5) && round >= 3
			if d.Crash != wantCrash {
				t.Errorf("round %d worker %d: crash = %v, want %v", round, u, d.Crash, wantCrash)
			}
			if d.Skip || d.Delay != 0 {
				t.Errorf("round %d worker %d: unexpected skip/delay %+v", round, u, d)
			}
		}
	}
}

func TestStragglerDelaysEveryRound(t *testing.T) {
	f := Straggler{Workers: []int{1}, Delay: 40 * time.Millisecond}
	for round := 0; round < 4; round++ {
		if d := f.Plan(round, 1); d.Delay != 40*time.Millisecond || d.Crash || d.Skip {
			t.Errorf("round %d: %+v", round, d)
		}
		if d := f.Plan(round, 0); d != (Decision{}) {
			t.Errorf("round %d honest worker: %+v", round, d)
		}
	}
}

func TestDelayIsOneShot(t *testing.T) {
	f := Delay{Workers: []int{4}, Round: 2, Delay: time.Second}
	for round := 0; round < 5; round++ {
		d := f.Plan(round, 4)
		if (round == 2) != (d.Delay == time.Second) {
			t.Errorf("round %d: delay %v", round, d.Delay)
		}
	}
}

func TestFlakyDeterministicAndCalibrated(t *testing.T) {
	f := Flaky{Workers: []int{0}, P: 0.3, Seed: 7}
	g := Flaky{Workers: []int{0}, P: 0.3, Seed: 7}
	drops := 0
	const rounds = 20000
	for round := 0; round < rounds; round++ {
		d1, d2 := f.Plan(round, 0), g.Plan(round, 0)
		if d1 != d2 {
			t.Fatalf("round %d: nondeterministic flaky decision", round)
		}
		if d1.Skip {
			drops++
		}
	}
	rate := float64(drops) / rounds
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("flaky drop rate %.3f, want ≈0.30", rate)
	}
	// Untargeted workers never drop.
	for round := 0; round < 100; round++ {
		if d := f.Plan(round, 1); d != (Decision{}) {
			t.Fatalf("untargeted worker dropped: %+v", d)
		}
	}
}

func TestNamesAreStable(t *testing.T) {
	cases := []struct {
		f    Fault
		want string
	}{
		{None{}, "none"},
		{Crash{Workers: []int{5, 2}, AtRound: 1}, "crash@1[2 5]"},
		{Straggler{Workers: []int{3}, Delay: time.Second}, "straggler/1s[3]"},
		{Delay{Workers: []int{0}, Round: 4, Delay: time.Millisecond}, "delay@4/1ms[0]"},
		{Flaky{Workers: []int{1, 0}, P: 0.25}, "flaky/0.25[0 1]"},
	}
	for _, c := range cases {
		if got := c.f.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}
