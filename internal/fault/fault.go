// Package fault implements registry-named worker fault models for
// partial-participation rounds: crash (permanent stop), straggler
// (every-round delay), delay (one-shot delay), and flaky (random
// per-round report drops), plus Stack, which composes several models
// into one heterogeneous fleet scenario (different workers failing in
// different ways). Faults are orthogonal to Byzantine attacks —
// an attack corrupts what a worker sends, a fault decides whether and
// when it sends at all — so scenarios compose with the existing
// attack × aggregator matrix.
//
// A Fault is a pure, deterministic function of (round, worker): the
// in-process engine and a fleet of TCP worker processes evaluating the
// same fault from the same Spec reach identical participation decisions
// without coordination. The flaky model derives its drops from a
// counter-based hash of (seed, round, worker), not from shared RNG
// state, for the same reason.
package fault

import (
	"fmt"
	"slices"
	"strings"
	"time"
)

// Decision is a fault model's verdict for one (round, worker) pair.
type Decision struct {
	// Skip reports no gradients this round; the worker stays alive and
	// participates again in later rounds.
	Skip bool
	// Crash ends the worker's participation permanently: this round and
	// every later one. On the wire the worker process terminates; in
	// process the worker is excluded from the compute phase.
	Crash bool
	// Delay postpones the worker's report by this duration before it is
	// sent. Only the wire transport realizes delays physically (they
	// interact with the server's per-round deadline); the in-process
	// engine treats a pure delay as normal participation.
	Delay time.Duration
}

// Fault decides each worker's participation per round.
type Fault interface {
	// Name identifies the fault model in reports and logs.
	Name() string
	// Plan returns worker's behavior in round (both 0-based). Plan must
	// be deterministic and safe for concurrent use.
	Plan(round, worker int) Decision
}

// None is the fault-free control: every worker participates fully.
type None struct{}

// Name implements Fault.
func (None) Name() string { return "none" }

// Plan implements Fault.
func (None) Plan(int, int) Decision { return Decision{} }

// Crash permanently stops the listed workers from round AtRound on —
// the fail-stop model of the crash-fault literature.
type Crash struct {
	Workers []int
	// AtRound is the first round the workers are dead (0 = from the
	// start).
	AtRound int
}

// Name implements Fault.
func (c Crash) Name() string {
	return fmt.Sprintf("crash@%d%v", c.AtRound, sorted(c.Workers))
}

// Plan implements Fault.
func (c Crash) Plan(round, worker int) Decision {
	if round >= c.AtRound && slices.Contains(c.Workers, worker) {
		return Decision{Crash: true}
	}
	return Decision{}
}

// Straggler delays the listed workers' reports by Delay every round.
// Against a server deadline shorter than Delay this degenerates to a
// crash; against a longer one it just slows the synchronous rounds.
type Straggler struct {
	Workers []int
	Delay   time.Duration
}

// Name implements Fault.
func (s Straggler) Name() string {
	return fmt.Sprintf("straggler/%v%v", s.Delay, sorted(s.Workers))
}

// Plan implements Fault.
func (s Straggler) Plan(round, worker int) Decision {
	if slices.Contains(s.Workers, worker) {
		return Decision{Delay: s.Delay}
	}
	return Decision{}
}

// Delay postpones the listed workers' reports by Delay in round Round
// only — a transient hiccup that a deadline-tolerant server should
// absorb without evicting anyone.
type Delay struct {
	Workers []int
	Round   int
	Delay   time.Duration
}

// Name implements Fault.
func (d Delay) Name() string {
	return fmt.Sprintf("delay@%d/%v%v", d.Round, d.Delay, sorted(d.Workers))
}

// Plan implements Fault.
func (d Delay) Plan(round, worker int) Decision {
	if round == d.Round && slices.Contains(d.Workers, worker) {
		return Decision{Delay: d.Delay}
	}
	return Decision{}
}

// Flaky makes the listed workers skip each round independently with
// probability P. Drops are derived from a counter-based hash of
// (Seed, round, worker), so every process evaluating the same Flaky
// value agrees on exactly which rounds are dropped.
type Flaky struct {
	Workers []int
	P       float64
	Seed    int64
}

// Name implements Fault.
func (f Flaky) Name() string {
	return fmt.Sprintf("flaky/%.2f%v", f.P, sorted(f.Workers))
}

// Plan implements Fault.
func (f Flaky) Plan(round, worker int) Decision {
	if slices.Contains(f.Workers, worker) && hash01(f.Seed, round, worker) < f.P {
		return Decision{Skip: true}
	}
	return Decision{}
}

// Stack composes several fault models into one heterogeneous fleet
// scenario (e.g. worker 2 flaky AND worker 9 straggling): every model
// is evaluated for each (round, worker) pair and the decisions merge —
// Crash and Skip are OR-ed, Delay takes the maximum (concurrent causes
// overlap rather than queue). Because each member is deterministic in
// (round, worker), so is the stack, and every process evaluating the
// same stack agrees on the schedule without coordination. An empty
// stack is fault-free.
type Stack []Fault

// Name implements Fault.
func (s Stack) Name() string {
	if len(s) == 0 {
		return "none"
	}
	names := make([]string, len(s))
	for i, f := range s {
		names[i] = f.Name()
	}
	return "stack(" + strings.Join(names, "+") + ")"
}

// Plan implements Fault.
func (s Stack) Plan(round, worker int) Decision {
	var out Decision
	for _, f := range s {
		d := f.Plan(round, worker)
		out.Skip = out.Skip || d.Skip
		out.Crash = out.Crash || d.Crash
		if d.Delay > out.Delay {
			out.Delay = d.Delay
		}
	}
	return out
}

// sorted returns a sorted copy for stable Name strings.
func sorted(ws []int) []int {
	out := slices.Clone(ws)
	slices.Sort(out)
	return out
}

// hash01 maps (seed, round, worker) to a uniform value in [0, 1) with a
// SplitMix64-style finalizer over the combined counter.
func hash01(seed int64, round, worker int) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(round)*0xBF58476D1CE4E5B9 + uint64(worker)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
