// Package registry is the named-component catalog of the system: it
// maps string names to constructors for the six pluggable component
// kinds — assignment schemes, aggregation rules, Byzantine attacks,
// worker fault models, PS-side Byzantine detectors, and data
// distributions — so that config files, wire specs
// (internal/transport.Spec), CLI flags, and experiment definitions all
// resolve components through one table instead of hand-rolled switch
// statements.
//
// A Registry is safe for concurrent use. NewBuiltin returns a registry
// pre-populated with every construction implemented in the repository;
// New returns an empty one for callers that want a restricted or
// extended catalog. Names are case-sensitive; each component may be
// registered under aliases (e.g. "reversed" / "reversed-gradient" /
// "revgrad") that resolve to the same constructor, while the listing
// methods report only canonical names.
package registry

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/attack"
	"byzshield/internal/data"
	"byzshield/internal/detect"
	"byzshield/internal/fault"
)

// SchemeParams carries the numeric knobs of the assignment scheme
// constructors. Each scheme documents which fields it reads:
//
//	mols        L (prime-power load), R (replication)     → MOLS(L, R)
//	ramanujan1  L (prime s), R (m < s)                    → Ramanujan1(L, R)
//	ramanujan2  R (prime s), L (m ≥ s, s | m)             → Ramanujan2(R, L)
//	frc         K (workers), R (group size)               → FRC(K, R)
//	baseline    K (workers)                               → Baseline(K)
//	random      K, F (files), R, Seed                     → Random(K, F, R, seed)
//
// The ramanujan2 (s, m) = (R, L) convention matches the rest of the
// repository: L is always the per-worker load and R the replication of
// the realized assignment.
type SchemeParams struct {
	L, R, K, F int
	Seed       int64
}

// AggregatorParams carries the knobs of the aggregation rules. Fields
// irrelevant to a rule are ignored:
//
//	trimmed-mean       Trim
//	median-of-means    Groups (default 3)
//	krum               C
//	multikrum          C, M
//	bulyan             C
//	mean-around-median Near
//	auror              Threshold
type AggregatorParams struct {
	C, M      int
	Trim      int
	Groups    int
	Near      int
	Threshold float64
}

// AttackParams carries the knobs of the attack generators. Fields
// irrelevant to an attack are ignored:
//
//	constant         Value (0 → −1), scaled by file size
//	reversed         C (0 → 1)
//	alie             Z (0 → closed-form z_max)
//	random-gaussian  Scale (0 → 1)
type AttackParams struct {
	Value float64
	C     float64
	Z     float64
	Scale float64
}

// FaultParams carries the knobs of the worker fault models. Fields
// irrelevant to a model are ignored:
//
//	crash      Workers, Round (first dead round)
//	straggler  Workers, Delay (per-round)
//	delay      Workers, Round, Delay (one-shot)
//	flaky      Workers, P (drop probability), Seed
type FaultParams struct {
	Workers []int
	Round   int
	P       float64
	Delay   time.Duration
	Seed    int64
}

// DetectorParams carries the knobs of the PS-side Byzantine detectors
// and the reputation policy they share. Zero values take the defaults
// documented in internal/detect:
//
//	zscore   Threshold (window-score cutoff, 0 → 3.0)
//	cluster  Threshold (2-means center separation, 0 → 2.0)
//	(all)    Window, MinRounds, Decay, BlacklistBelow (policy knobs)
type DetectorParams struct {
	Window         int
	MinRounds      int
	Decay          float64
	Threshold      float64
	BlacklistBelow float64
}

// DistributionParams carries the knobs of the data-distribution
// components. Fields irrelevant to a distribution are ignored:
//
//	dirichlet   Alpha (concentration, 0 → 0.5), Seed
//	label-skew  Shards (label-shards per pool, 0 → 2), Seed
//	iid         Seed
type DistributionParams struct {
	Alpha  float64
	Shards int
	Seed   int64
}

// Policy converts the wire/CLI params to the detect-layer policy.
func (p DetectorParams) Policy() detect.Params {
	return detect.Params{
		Window: p.Window, MinRounds: p.MinRounds,
		Decay: p.Decay, Threshold: p.Threshold, BlacklistBelow: p.BlacklistBelow,
	}
}

// SchemeCtor builds an assignment from params.
type SchemeCtor func(SchemeParams) (*assign.Assignment, error)

// AggregatorCtor builds an aggregation rule from params.
type AggregatorCtor func(AggregatorParams) (aggregate.Aggregator, error)

// AttackCtor builds an attack from params.
type AttackCtor func(AttackParams) (attack.Attack, error)

// FaultCtor builds a fault model from params.
type FaultCtor func(FaultParams) (fault.Fault, error)

// DetectorCtor builds a Byzantine detector from params.
type DetectorCtor func(DetectorParams) (detect.Detector, error)

// DistributionCtor builds a data distribution from params.
type DistributionCtor func(DistributionParams) (data.Distributor, error)

// entry is one registered constructor with its canonical name.
type entry[C any] struct {
	canonical string
	ctor      C
}

// Registry maps component names to constructors.
type Registry struct {
	mu            sync.RWMutex
	schemes       map[string]entry[SchemeCtor]
	aggregators   map[string]entry[AggregatorCtor]
	attacks       map[string]entry[AttackCtor]
	faults        map[string]entry[FaultCtor]
	detectors     map[string]entry[DetectorCtor]
	distributions map[string]entry[DistributionCtor]
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		schemes:       make(map[string]entry[SchemeCtor]),
		aggregators:   make(map[string]entry[AggregatorCtor]),
		attacks:       make(map[string]entry[AttackCtor]),
		faults:        make(map[string]entry[FaultCtor]),
		detectors:     make(map[string]entry[DetectorCtor]),
		distributions: make(map[string]entry[DistributionCtor]),
	}
}

// register adds a constructor under its canonical name plus aliases.
func register[C any](m map[string]entry[C], ctor C, canonical string, aliases ...string) error {
	names := append([]string{canonical}, aliases...)
	for _, n := range names {
		if n == "" {
			return fmt.Errorf("registry: empty component name")
		}
		if _, dup := m[n]; dup {
			return fmt.Errorf("registry: %q already registered", n)
		}
	}
	for _, n := range names {
		m[n] = entry[C]{canonical: canonical, ctor: ctor}
	}
	return nil
}

// lookup resolves a name (canonical or alias).
func lookup[C any](m map[string]entry[C], kind, name string) (C, error) {
	e, ok := m[name]
	if !ok {
		var zero C
		return zero, fmt.Errorf("registry: unknown %s %q (have %s)", kind, name,
			strings.Join(canonicalNames(m), ", "))
	}
	return e.ctor, nil
}

// canonicalNames returns the sorted canonical names of a component map.
func canonicalNames[C any](m map[string]entry[C]) []string {
	seen := make(map[string]bool, len(m))
	var out []string
	for _, e := range m {
		if !seen[e.canonical] {
			seen[e.canonical] = true
			out = append(out, e.canonical)
		}
	}
	sort.Strings(out)
	return out
}

// RegisterScheme adds an assignment-scheme constructor. It fails on
// duplicate names so accidental shadowing of a builtin is loud.
func (r *Registry) RegisterScheme(ctor SchemeCtor, canonical string, aliases ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return register(r.schemes, ctor, canonical, aliases...)
}

// RegisterAggregator adds an aggregation-rule constructor.
func (r *Registry) RegisterAggregator(ctor AggregatorCtor, canonical string, aliases ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return register(r.aggregators, ctor, canonical, aliases...)
}

// RegisterAttack adds an attack constructor.
func (r *Registry) RegisterAttack(ctor AttackCtor, canonical string, aliases ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return register(r.attacks, ctor, canonical, aliases...)
}

// RegisterFault adds a fault-model constructor.
func (r *Registry) RegisterFault(ctor FaultCtor, canonical string, aliases ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return register(r.faults, ctor, canonical, aliases...)
}

// RegisterDetector adds a Byzantine-detector constructor.
func (r *Registry) RegisterDetector(ctor DetectorCtor, canonical string, aliases ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return register(r.detectors, ctor, canonical, aliases...)
}

// Scheme builds the named assignment scheme. Params may be omitted for
// schemes whose constructor needs none.
func (r *Registry) Scheme(name string, params ...SchemeParams) (*assign.Assignment, error) {
	r.mu.RLock()
	ctor, err := lookup(r.schemes, "scheme", name)
	r.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return ctor(first(params))
}

// Aggregator builds the named aggregation rule.
func (r *Registry) Aggregator(name string, params ...AggregatorParams) (aggregate.Aggregator, error) {
	r.mu.RLock()
	ctor, err := lookup(r.aggregators, "aggregator", name)
	r.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return ctor(first(params))
}

// Attack builds the named attack.
func (r *Registry) Attack(name string, params ...AttackParams) (attack.Attack, error) {
	r.mu.RLock()
	ctor, err := lookup(r.attacks, "attack", name)
	r.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return ctor(first(params))
}

// Fault builds the named fault model.
func (r *Registry) Fault(name string, params ...FaultParams) (fault.Fault, error) {
	r.mu.RLock()
	ctor, err := lookup(r.faults, "fault", name)
	r.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return ctor(first(params))
}

// RegisterDistribution adds a data-distribution constructor.
func (r *Registry) RegisterDistribution(ctor DistributionCtor, canonical string, aliases ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return register(r.distributions, ctor, canonical, aliases...)
}

// Detector builds the named Byzantine detector.
func (r *Registry) Detector(name string, params ...DetectorParams) (detect.Detector, error) {
	r.mu.RLock()
	ctor, err := lookup(r.detectors, "detector", name)
	r.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return ctor(first(params))
}

// Distribution builds the named data distribution.
func (r *Registry) Distribution(name string, params ...DistributionParams) (data.Distributor, error) {
	r.mu.RLock()
	ctor, err := lookup(r.distributions, "distribution", name)
	r.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return ctor(first(params))
}

// Schemes lists the canonical scheme names, sorted.
func (r *Registry) Schemes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return canonicalNames(r.schemes)
}

// Aggregators lists the canonical aggregator names, sorted.
func (r *Registry) Aggregators() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return canonicalNames(r.aggregators)
}

// Attacks lists the canonical attack names, sorted.
func (r *Registry) Attacks() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return canonicalNames(r.attacks)
}

// Faults lists the canonical fault-model names, sorted.
func (r *Registry) Faults() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return canonicalNames(r.faults)
}

// Detectors lists the canonical detector names, sorted.
func (r *Registry) Detectors() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return canonicalNames(r.detectors)
}

// Distributions lists the canonical data-distribution names, sorted.
func (r *Registry) Distributions() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return canonicalNames(r.distributions)
}

// first returns the only params value, or the zero value when omitted.
func first[P any](ps []P) P {
	if len(ps) > 0 {
		return ps[0]
	}
	var zero P
	return zero
}

// NewBuiltin returns a registry pre-populated with every scheme,
// aggregator, attack, fault model, and detector implemented in the
// repository.
func NewBuiltin() *Registry {
	r := New()
	mustRegisterBuiltins(r)
	return r
}

// Default is the shared process-wide catalog. The public
// byzshield.Registry aliases it, and the transport and experiments
// layers resolve names through it, so components registered on any of
// those handles are visible to all of them (a custom scheme registered
// by an application is valid on the wire Spec).
var Default = NewBuiltin()

// mustRegisterBuiltins installs the full catalog; registration can only
// fail on name collisions, which is a programming error here.
func mustRegisterBuiltins(r *Registry) {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}

	// Assignment schemes.
	must(r.RegisterScheme(func(p SchemeParams) (*assign.Assignment, error) {
		return assign.MOLS(p.L, p.R)
	}, "mols"))
	must(r.RegisterScheme(func(p SchemeParams) (*assign.Assignment, error) {
		return assign.Ramanujan1(p.L, p.R)
	}, "ramanujan1", "ram1"))
	must(r.RegisterScheme(func(p SchemeParams) (*assign.Assignment, error) {
		return assign.Ramanujan2(p.R, p.L) // (s, m) = (R, L)
	}, "ramanujan2", "ram2"))
	must(r.RegisterScheme(func(p SchemeParams) (*assign.Assignment, error) {
		return assign.FRC(p.K, p.R)
	}, "frc"))
	must(r.RegisterScheme(func(p SchemeParams) (*assign.Assignment, error) {
		return assign.Baseline(p.K)
	}, "baseline"))
	must(r.RegisterScheme(func(p SchemeParams) (*assign.Assignment, error) {
		return assign.Random(p.K, p.F, p.R, rand.New(rand.NewSource(p.Seed)))
	}, "random"))

	// Aggregation rules.
	must(r.RegisterAggregator(func(AggregatorParams) (aggregate.Aggregator, error) {
		return aggregate.Median{}, nil
	}, "median"))
	must(r.RegisterAggregator(func(AggregatorParams) (aggregate.Aggregator, error) {
		return aggregate.Mean{}, nil
	}, "mean"))
	must(r.RegisterAggregator(func(p AggregatorParams) (aggregate.Aggregator, error) {
		return aggregate.TrimmedMean{Trim: p.Trim}, nil
	}, "trimmed-mean"))
	must(r.RegisterAggregator(func(p AggregatorParams) (aggregate.Aggregator, error) {
		g := p.Groups
		if g == 0 {
			g = 3
		}
		return aggregate.MedianOfMeans{Groups: g}, nil
	}, "median-of-means", "mom"))
	must(r.RegisterAggregator(func(p AggregatorParams) (aggregate.Aggregator, error) {
		return aggregate.Krum{C: p.C}, nil
	}, "krum"))
	must(r.RegisterAggregator(func(p AggregatorParams) (aggregate.Aggregator, error) {
		return aggregate.MultiKrum{C: p.C, M: p.M}, nil
	}, "multikrum", "multi-krum"))
	must(r.RegisterAggregator(func(p AggregatorParams) (aggregate.Aggregator, error) {
		return aggregate.Bulyan{C: p.C}, nil
	}, "bulyan"))
	must(r.RegisterAggregator(func(AggregatorParams) (aggregate.Aggregator, error) {
		return aggregate.SignSGD{}, nil
	}, "signsgd"))
	must(r.RegisterAggregator(func(AggregatorParams) (aggregate.Aggregator, error) {
		return aggregate.GeometricMedian{}, nil
	}, "geometric-median"))
	must(r.RegisterAggregator(func(p AggregatorParams) (aggregate.Aggregator, error) {
		return aggregate.MeanAroundMedian{Near: p.Near}, nil
	}, "mean-around-median"))
	must(r.RegisterAggregator(func(p AggregatorParams) (aggregate.Aggregator, error) {
		return aggregate.Auror{Threshold: p.Threshold}, nil
	}, "auror"))

	// Attacks.
	must(r.RegisterAttack(func(AttackParams) (attack.Attack, error) {
		return attack.Benign{}, nil
	}, "benign", "none"))
	must(r.RegisterAttack(func(p AttackParams) (attack.Attack, error) {
		return attack.ALIE{ZOverride: p.Z}, nil
	}, "alie"))
	must(r.RegisterAttack(func(p AttackParams) (attack.Attack, error) {
		return attack.Constant{Value: p.Value, ScaleByFileSize: true}, nil
	}, "constant"))
	must(r.RegisterAttack(func(p AttackParams) (attack.Attack, error) {
		return attack.Reversed{C: p.C}, nil
	}, "reversed", "reversed-gradient", "revgrad"))
	must(r.RegisterAttack(func(p AttackParams) (attack.Attack, error) {
		return attack.RandomGaussian{Scale: p.Scale}, nil
	}, "random-gaussian"))
	must(r.RegisterAttack(func(AttackParams) (attack.Attack, error) {
		return attack.SignFlip{}, nil
	}, "sign-flip"))

	// Fault models.
	must(r.RegisterFault(func(FaultParams) (fault.Fault, error) {
		return fault.None{}, nil
	}, "none", "no-fault"))
	must(r.RegisterFault(func(p FaultParams) (fault.Fault, error) {
		return fault.Crash{Workers: p.Workers, AtRound: p.Round}, nil
	}, "crash"))
	must(r.RegisterFault(func(p FaultParams) (fault.Fault, error) {
		if p.Delay <= 0 {
			return nil, fmt.Errorf("registry: straggler fault needs Delay > 0 (got %v)", p.Delay)
		}
		return fault.Straggler{Workers: p.Workers, Delay: p.Delay}, nil
	}, "straggler"))
	must(r.RegisterFault(func(p FaultParams) (fault.Fault, error) {
		if p.Delay <= 0 {
			return nil, fmt.Errorf("registry: delay fault needs Delay > 0 (got %v)", p.Delay)
		}
		return fault.Delay{Workers: p.Workers, Round: p.Round, Delay: p.Delay}, nil
	}, "delay"))
	must(r.RegisterFault(func(p FaultParams) (fault.Fault, error) {
		if p.P < 0 || p.P > 1 {
			return nil, fmt.Errorf("registry: flaky fault probability %v outside [0,1]", p.P)
		}
		return fault.Flaky{Workers: p.Workers, P: p.P, Seed: p.Seed}, nil
	}, "flaky"))

	// Data distributions.
	must(r.RegisterDistribution(func(p DistributionParams) (data.Distributor, error) {
		return data.IID{Seed: p.Seed}, nil
	}, "iid"))
	must(r.RegisterDistribution(func(p DistributionParams) (data.Distributor, error) {
		if p.Alpha < 0 {
			return nil, fmt.Errorf("registry: dirichlet alpha %v < 0", p.Alpha)
		}
		return data.Dirichlet{Alpha: p.Alpha, Seed: p.Seed}, nil
	}, "dirichlet", "dirichlet-niid"))
	must(r.RegisterDistribution(func(p DistributionParams) (data.Distributor, error) {
		if p.Shards < 0 {
			return nil, fmt.Errorf("registry: label-skew shards %d < 0", p.Shards)
		}
		return data.LabelSkew{Shards: p.Shards, Seed: p.Seed}, nil
	}, "label-skew", "labelskew", "shard"))

	// Byzantine detectors.
	must(r.RegisterDetector(func(DetectorParams) (detect.Detector, error) {
		return detect.None{}, nil
	}, "none", "no-detector"))
	must(r.RegisterDetector(func(p DetectorParams) (detect.Detector, error) {
		return detect.ZScore{Threshold: p.Threshold}, nil
	}, "zscore", "z-score"))
	must(r.RegisterDetector(func(p DetectorParams) (detect.Detector, error) {
		return detect.KMeans{Threshold: p.Threshold}, nil
	}, "cluster", "kmeans"))
}
