package registry_test

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"byzshield/internal/aggregate"
	"byzshield/internal/assign"
	"byzshield/internal/attack"
	"byzshield/internal/registry"
	"byzshield/internal/transport"
)

// validParams returns per-scheme parameters every builtin scheme can
// construct with.
func validParams() map[string]registry.SchemeParams {
	return map[string]registry.SchemeParams{
		"mols":       {L: 5, R: 3},
		"ramanujan1": {L: 5, R: 3},
		"ramanujan2": {L: 5, R: 5},
		"frc":        {K: 15, R: 3},
		"baseline":   {K: 15},
		"random":     {K: 15, F: 25, R: 3, Seed: 7},
	}
}

// TestEveryRegisteredNameConstructs: the full catalog round-trip — every
// canonical scheme/aggregator/attack name must construct successfully.
func TestEveryRegisteredNameConstructs(t *testing.T) {
	r := registry.NewBuiltin()
	params := validParams()
	if len(r.Schemes()) != len(params) {
		t.Fatalf("schemes = %v, params table covers %d", r.Schemes(), len(params))
	}
	for _, name := range r.Schemes() {
		p, ok := params[name]
		if !ok {
			t.Errorf("no test params for scheme %q", name)
			continue
		}
		a, err := r.Scheme(name, p)
		if err != nil {
			t.Errorf("Scheme(%q): %v", name, err)
			continue
		}
		if err := a.Validate(); err != nil {
			t.Errorf("Scheme(%q): invalid assignment: %v", name, err)
		}
	}
	// Aggregator knobs chosen so Krum-family feasibility holds trivially
	// at construction time (construction never errors; Aggregate may).
	for _, name := range r.Aggregators() {
		agg, err := r.Aggregator(name, registry.AggregatorParams{C: 1, Trim: 1, Groups: 3, Near: 2, Threshold: 1})
		if err != nil {
			t.Errorf("Aggregator(%q): %v", name, err)
			continue
		}
		if agg.Name() == "" {
			t.Errorf("Aggregator(%q): empty Name()", name)
		}
	}
	for _, name := range r.Attacks() {
		atk, err := r.Attack(name, registry.AttackParams{C: 1, Z: 1, Scale: 1, Value: -1})
		if err != nil {
			t.Errorf("Attack(%q): %v", name, err)
			continue
		}
		if atk.Name() == "" {
			t.Errorf("Attack(%q): empty Name()", name)
		}
	}
}

// TestRegistryMatchesDirectConstructors: registry-built components must
// be identical values to the direct-constructor path.
func TestRegistryMatchesDirectConstructors(t *testing.T) {
	r := registry.NewBuiltin()

	direct := map[string]func() (*assign.Assignment, error){
		"mols":       func() (*assign.Assignment, error) { return assign.MOLS(5, 3) },
		"ramanujan1": func() (*assign.Assignment, error) { return assign.Ramanujan1(5, 3) },
		"ramanujan2": func() (*assign.Assignment, error) { return assign.Ramanujan2(5, 5) },
		"frc":        func() (*assign.Assignment, error) { return assign.FRC(15, 3) },
		"baseline":   func() (*assign.Assignment, error) { return assign.Baseline(15) },
		"random": func() (*assign.Assignment, error) {
			return assign.Random(15, 25, 3, rand.New(rand.NewSource(7)))
		},
	}
	params := validParams()
	for name, build := range direct {
		want, err := build()
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Scheme(name, params[name])
		if err != nil {
			t.Fatalf("Scheme(%q): %v", name, err)
		}
		assertSameAssignment(t, name, got, want)
	}

	if agg, _ := r.Aggregator("median"); agg != (aggregate.Median{}) {
		t.Errorf("median = %#v", agg)
	}
	if agg, _ := r.Aggregator("multikrum", registry.AggregatorParams{C: 3, M: 2}); agg != (aggregate.MultiKrum{C: 3, M: 2}) {
		t.Errorf("multikrum = %#v", agg)
	}
	if atk, _ := r.Attack("alie"); atk != (attack.ALIE{}) {
		t.Errorf("alie = %#v", atk)
	}
	if atk, _ := r.Attack("reversed", registry.AttackParams{C: 10}); atk != (attack.Reversed{C: 10}) {
		t.Errorf("reversed = %#v", atk)
	}
	if atk, _ := r.Attack("constant"); atk != (attack.Constant{ScaleByFileSize: true}) {
		t.Errorf("constant = %#v", atk)
	}
}

// TestSpecReproducesAssignmentBitForBit: a transport.Spec carrying only
// registry names and numeric params must realize the exact worker–file
// placement of the in-process direct constructors — the property that
// lets TCP workers and the PS agree on the assignment without shipping
// the graph over the wire.
func TestSpecReproducesAssignmentBitForBit(t *testing.T) {
	cases := []struct {
		spec   transport.Spec
		direct func() (*assign.Assignment, error)
	}{
		{transport.Spec{Scheme: "mols", L: 5, R: 3},
			func() (*assign.Assignment, error) { return assign.MOLS(5, 3) }},
		{transport.Spec{Scheme: "ramanujan1", L: 5, R: 3},
			func() (*assign.Assignment, error) { return assign.Ramanujan1(5, 3) }},
		{transport.Spec{Scheme: "ramanujan2", L: 5, R: 5},
			func() (*assign.Assignment, error) { return assign.Ramanujan2(5, 5) }},
		{transport.Spec{Scheme: "frc", K: 15, R: 3},
			func() (*assign.Assignment, error) { return assign.FRC(15, 3) }},
		{transport.Spec{Scheme: "baseline", K: 25},
			func() (*assign.Assignment, error) { return assign.Baseline(25) }},
		{transport.Spec{Scheme: "random", K: 15, F: 25, R: 3, Seed: 7},
			func() (*assign.Assignment, error) { return assign.Random(15, 25, 3, rand.New(rand.NewSource(7))) }},
	}
	for _, c := range cases {
		want, err := c.direct()
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.spec.BuildAssignment()
		if err != nil {
			t.Fatalf("%s: %v", c.spec.Scheme, err)
		}
		assertSameAssignment(t, c.spec.Scheme, got, want)
	}
}

// assertSameAssignment compares two assignments structurally: scalar
// parameters plus the complete worker→file adjacency.
func assertSameAssignment(t *testing.T, name string, got, want *assign.Assignment) {
	t.Helper()
	if got.Scheme != want.Scheme || got.K != want.K || got.F != want.F ||
		got.L != want.L || got.R != want.R {
		t.Errorf("%s: params (%v %d %d %d %d) != (%v %d %d %d %d)", name,
			got.Scheme, got.K, got.F, got.L, got.R,
			want.Scheme, want.K, want.F, want.L, want.R)
		return
	}
	for u := 0; u < want.K; u++ {
		if !reflect.DeepEqual(got.WorkerFiles(u), want.WorkerFiles(u)) {
			t.Errorf("%s: worker %d files %v != %v", name, u, got.WorkerFiles(u), want.WorkerFiles(u))
		}
	}
	for v := 0; v < want.F; v++ {
		if !reflect.DeepEqual(got.FileWorkers(v), want.FileWorkers(v)) {
			t.Errorf("%s: file %d workers %v != %v", name, v, got.FileWorkers(v), want.FileWorkers(v))
		}
	}
}

// TestAliasesResolve: alias names resolve to the same constructor as
// their canonical name.
func TestAliasesResolve(t *testing.T) {
	r := registry.NewBuiltin()
	a1, err := r.Scheme("ram2", registry.SchemeParams{L: 5, R: 5})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Scheme("ramanujan2", registry.SchemeParams{L: 5, R: 5})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAssignment(t, "ram2", a1, a2)
	if agg, err := r.Aggregator("mom"); err != nil || agg != (aggregate.MedianOfMeans{Groups: 3}) {
		t.Errorf("mom alias: %v %#v", err, agg)
	}
	if atk, err := r.Attack("revgrad"); err != nil || atk != (attack.Reversed{}) {
		t.Errorf("revgrad alias: %v %#v", err, atk)
	}
	if atk, err := r.Attack("none"); err != nil || atk != (attack.Benign{}) {
		t.Errorf("none alias: %v %#v", err, atk)
	}
}

// TestUnknownAndDuplicateNames: lookups fail loudly with the catalog in
// the message; duplicate registration is rejected.
func TestUnknownAndDuplicateNames(t *testing.T) {
	r := registry.NewBuiltin()
	if _, err := r.Scheme("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := r.Aggregator("nope"); err == nil {
		t.Error("unknown aggregator accepted")
	}
	if _, err := r.Attack("nope"); err == nil {
		t.Error("unknown attack accepted")
	}
	err := r.RegisterScheme(func(registry.SchemeParams) (*assign.Assignment, error) {
		return assign.Baseline(3)
	}, "mols")
	if err == nil {
		t.Error("duplicate scheme registration accepted")
	}
	// A fresh name extends the catalog.
	if err := r.RegisterScheme(func(p registry.SchemeParams) (*assign.Assignment, error) {
		return assign.Baseline(p.K)
	}, "custom-baseline"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Scheme("custom-baseline", registry.SchemeParams{K: 5}); err != nil {
		t.Error(err)
	}
}

// TestDefaultCatalogVisibleOnTheWire: a scheme registered on the shared
// Default catalog resolves through transport.Spec, the property the
// Spec documentation promises.
func TestDefaultCatalogVisibleOnTheWire(t *testing.T) {
	err := registry.Default.RegisterScheme(func(p registry.SchemeParams) (*assign.Assignment, error) {
		return assign.Baseline(p.K)
	}, "test-wire-scheme")
	if err != nil {
		t.Fatal(err)
	}
	spec := transport.Spec{Scheme: "test-wire-scheme", K: 7}
	a, err := spec.BuildAssignment()
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 7 {
		t.Errorf("K = %d", a.K)
	}
}

// TestFaultCatalog: every registered fault model constructs by name,
// unknown names fail, and parameter validation is enforced.
func TestFaultCatalog(t *testing.T) {
	r := registry.NewBuiltin()
	want := []string{"crash", "delay", "flaky", "none", "straggler"}
	if got := r.Faults(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Faults() = %v, want %v", got, want)
	}
	params := registry.FaultParams{Workers: []int{1, 2}, Round: 5, P: 0.3, Delay: time.Second, Seed: 9}
	for _, name := range want {
		f, err := r.Fault(name, params)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		// Decisions must be deterministic.
		if d1, d2 := f.Plan(3, 1), f.Plan(3, 1); d1 != d2 {
			t.Errorf("%s: nondeterministic Plan", name)
		}
	}
	if _, err := r.Fault("nope"); err == nil {
		t.Error("unknown fault accepted")
	}
	if _, err := r.Fault("straggler"); err == nil {
		t.Error("straggler without Delay accepted")
	}
	if _, err := r.Fault("flaky", registry.FaultParams{P: 1.5}); err == nil {
		t.Error("flaky with P > 1 accepted")
	}
	if _, err := r.Fault("none", registry.FaultParams{}); err != nil {
		t.Errorf("none: %v", err)
	}
	// The alias resolves to the same model.
	if _, err := r.Fault("no-fault"); err != nil {
		t.Errorf("no-fault alias: %v", err)
	}
}
