package assign

import (
	"math"
	"testing"

	"byzshield/internal/graph"
	"byzshield/internal/linalg"
)

// lemma2Spectrum returns the exact Lemma 2 spectrum for the MOLS /
// Ramanujan Case 1 constructions: {(1,1), (1/r, r(l−1)), (0, r−1)}.
func lemma2Spectrum(l, r int) []linalg.EigenvalueMultiplicity {
	return []linalg.EigenvalueMultiplicity{
		{Value: 1, Multiplicity: 1},
		{Value: 1 / float64(r), Multiplicity: r * (l - 1)},
		{Value: 0, Multiplicity: r - 1},
	}
}

// lemma2SpectrumRam2 returns the Case 2 spectrum:
// {(1,1), (1/r, r(r−1)), (0, r−1)}.
func lemma2SpectrumRam2(r int) []linalg.EigenvalueMultiplicity {
	return []linalg.EigenvalueMultiplicity{
		{Value: 1, Multiplicity: 1},
		{Value: 1 / float64(r), Multiplicity: r * (r - 1)},
		{Value: 0, Multiplicity: r - 1},
	}
}

func spectrumOf(t *testing.T, a *Assignment) *graph.Spectrum {
	t.Helper()
	spec, err := graph.ComputeSpectrum(a.Graph, 1e-6)
	if err != nil {
		t.Fatalf("spectrum of %v: %v", a, err)
	}
	return spec
}

// TestLemma2MOLS verifies the paper's Lemma 2 for the MOLS scheme across
// several (l, r) parameterizations, including the prime-power case.
func TestLemma2MOLS(t *testing.T) {
	for _, p := range [][2]int{{5, 3}, {7, 3}, {7, 5}, {9, 4}, {11, 3}} {
		l, r := p[0], p[1]
		a, err := MOLS(l, r)
		if err != nil {
			t.Fatalf("MOLS(%d,%d): %v", l, r, err)
		}
		spec := spectrumOf(t, a)
		if err := spec.MatchesExpected(lemma2Spectrum(l, r), 1e-6); err != nil {
			t.Errorf("MOLS(%d,%d): %v", l, r, err)
		}
		if math.Abs(spec.Mu1()-1/float64(r)) > 1e-6 {
			t.Errorf("MOLS(%d,%d): µ1 = %v, want 1/%d", l, r, spec.Mu1(), r)
		}
	}
}

// TestLemma2Ramanujan1 verifies that Case 1 has exactly the same
// spectrum as MOLS with (l, r) = (s, m) — the paper's "interestingly,
// (AAᵀ)_Ram.1 has exactly the same spectrum" observation.
func TestLemma2Ramanujan1(t *testing.T) {
	for _, p := range [][2]int{{5, 3}, {7, 3}, {7, 5}, {11, 4}} {
		s, m := p[0], p[1]
		a, err := Ramanujan1(s, m)
		if err != nil {
			t.Fatalf("Ramanujan1(%d,%d): %v", s, m, err)
		}
		spec := spectrumOf(t, a)
		if err := spec.MatchesExpected(lemma2Spectrum(s, m), 1e-6); err != nil {
			t.Errorf("Ramanujan1(%d,%d): %v", s, m, err)
		}
	}
}

// TestLemma2Ramanujan2 verifies the Case 2 spectrum for the paper's
// K = 25 cluster (m = s = 5) and one strict multiple.
func TestLemma2Ramanujan2(t *testing.T) {
	for _, p := range [][2]int{{5, 5}, {3, 6}, {5, 10}} {
		s, m := p[0], p[1]
		a, err := Ramanujan2(s, m)
		if err != nil {
			t.Fatalf("Ramanujan2(%d,%d): %v", s, m, err)
		}
		spec := spectrumOf(t, a)
		if err := spec.MatchesExpected(lemma2SpectrumRam2(s), 1e-6); err != nil {
			t.Errorf("Ramanujan2(%d,%d): %v", s, m, err)
		}
	}
}

// TestFRCSpectrumWorse shows why FRC is fragile: its µ1 equals 1 (the
// graph is disconnected into K/r clone groups), i.e. no expansion, while
// the ByzShield constructions achieve µ1 = 1/r.
func TestFRCSpectrumWorse(t *testing.T) {
	a, err := FRC(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := spectrumOf(t, a)
	if math.Abs(spec.Mu1()-1) > 1e-9 {
		t.Errorf("FRC µ1 = %v, want 1 (disconnected clone groups)", spec.Mu1())
	}
	mols, err := MOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	molsSpec := spectrumOf(t, mols)
	if molsSpec.Mu1() >= spec.Mu1() {
		t.Errorf("MOLS µ1 %v should beat FRC µ1 %v", molsSpec.Mu1(), spec.Mu1())
	}
}

// TestExpansionBoundHoldsOnActualSets verifies Lemma 1/Eq. 5 empirically:
// for every q-subset sampled deterministically, |N(S)| >= β.
func TestExpansionBoundHoldsOnActualSets(t *testing.T) {
	a, err := MOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := spectrumOf(t, a)
	mu1 := spec.Mu1()
	for q := 1; q <= 7; q++ {
		// deterministic stride sampling of q-subsets
		for start := 0; start < a.K; start += 3 {
			S := make([]int, 0, q)
			for i := 0; i < q; i++ {
				S = append(S, (start+i*2)%a.K)
			}
			S = dedupe(S)
			if len(S) != q {
				continue
			}
			observed := len(a.Graph.NeighborhoodOfLeftSet(S))
			bound := graph.ExpansionLowerBound(q, a.L, a.R, a.K, mu1)
			if float64(observed) < bound-1e-9 {
				t.Errorf("q=%d S=%v: |N(S)|=%d < β=%v", q, S, observed, bound)
			}
		}
	}
}

func dedupe(xs []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// TestMu1FastOnConstructions cross-checks the deflated power-iteration
// µ1 against the exact 1/r for all three ByzShield constructions.
func TestMu1FastOnConstructions(t *testing.T) {
	builds := []func() (*Assignment, error){
		func() (*Assignment, error) { return MOLS(7, 5) },
		func() (*Assignment, error) { return Ramanujan1(7, 3) },
		func() (*Assignment, error) { return Ramanujan2(5, 5) },
	}
	for _, build := range builds {
		a, err := build()
		if err != nil {
			t.Fatal(err)
		}
		mu1, err := graph.Mu1Fast(a.Graph)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / float64(a.R)
		if math.Abs(mu1-want) > 1e-6 {
			t.Errorf("%v: Mu1Fast = %v, want %v", a, mu1, want)
		}
	}
}
