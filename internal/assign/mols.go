package assign

import (
	"fmt"

	"byzshield/internal/gf"
	"byzshield/internal/graph"
	"byzshield/internal/latin"
)

// MOLS builds the Latin-square assignment of Algorithm 2: the batch is
// split into f = l² files laid out on an l×l grid (file index i·l+j at
// cell (i, j)); r MOLS L_1..L_r of degree l are constructed; worker
// U_{k·l+s} receives the l files at the cells where L_{k+1} holds
// symbol s. Requires prime-power l and 2 <= r <= l−1 (the paper uses
// odd r for untied votes; oddness is enforced by the vote layer).
func MOLS(l, r int) (*Assignment, error) {
	if _, _, ok := gf.IsPrimePower(l); !ok {
		return nil, fmt.Errorf("assign: MOLS degree l=%d is not a prime power", l)
	}
	if r < 2 || r > l-1 {
		return nil, fmt.Errorf("assign: MOLS needs 2 <= r <= l-1, got r=%d l=%d", r, l)
	}
	squares, err := latin.MOLS(l, r)
	if err != nil {
		return nil, err
	}
	k := r * l
	f := l * l
	g := graph.NewBipartite(k, f)
	for sq := 0; sq < r; sq++ {
		for sym := 0; sym < l; sym++ {
			worker := sq*l + sym
			for _, cell := range squares[sq].SymbolCells(sym) {
				file := cell[0]*l + cell[1]
				g.MustAddEdge(worker, file)
			}
		}
	}
	a := &Assignment{Scheme: SchemeMOLS, K: k, F: f, L: l, R: r, Graph: g}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}
