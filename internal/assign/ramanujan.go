package assign

import (
	"fmt"

	"byzshield/internal/gf"
	"byzshield/internal/graph"
)

// ramanujanBlockEdge reports whether block-matrix entry (row, col) of the
// array-code matrix B is one. B is the s² × m·s block matrix whose (a,b)
// block (a = 0..s−1 row blocks, b = 0..m−1 column blocks) is P^{a·b},
// where P is the s×s cyclic shift with P[i][j] = 1 iff j ≡ i−1 (mod s).
// So B[(a,i),(b,j)] = P^{ab}[i][j] = 1 iff j ≡ i − a·b (mod s).
func ramanujanBlockEdge(s, row, col int) bool {
	a, i := row/s, row%s
	b, j := col/s, col%s
	return j == ((i-a*b)%s+s)%s
}

// Ramanujan1 builds the Case 1 (m < s) assignment of Sec. 4.2: the
// bi-adjacency is H = Bᵀ, giving K = m·s workers, f = s² files,
// computational load l = s, replication r = m. Requires prime s and
// 2 <= m < s. The resulting graph is a Ramanujan bigraph whose
// normalized spectrum matches the MOLS scheme (Lemma 2).
func Ramanujan1(s, m int) (*Assignment, error) {
	if !gf.IsPrime(s) {
		return nil, fmt.Errorf("assign: Ramanujan needs prime s, got %d", s)
	}
	if m < 2 || m >= s {
		return nil, fmt.Errorf("assign: Ramanujan Case 1 needs 2 <= m < s, got m=%d s=%d", m, s)
	}
	k := m * s
	f := s * s
	g := graph.NewBipartite(k, f)
	// H = Bᵀ: worker u is B's column u; file v is B's row v.
	for u := 0; u < k; u++ {
		for v := 0; v < f; v++ {
			if ramanujanBlockEdge(s, v, u) {
				g.MustAddEdge(u, v)
			}
		}
	}
	a := &Assignment{Scheme: SchemeRamanujan1, K: k, F: f, L: s, R: m, Graph: g}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Ramanujan2 builds the Case 2 (m >= s) assignment: H = B, giving
// K = s² workers, f = m·s files, load l = m, replication r = s.
// Lemma 2 additionally requires s | m for the stated spectrum; we
// enforce it (the paper's K = 25 cluster uses m = s = 5).
func Ramanujan2(s, m int) (*Assignment, error) {
	if !gf.IsPrime(s) {
		return nil, fmt.Errorf("assign: Ramanujan needs prime s, got %d", s)
	}
	if m < s {
		return nil, fmt.Errorf("assign: Ramanujan Case 2 needs m >= s, got m=%d s=%d", m, s)
	}
	if m%s != 0 {
		return nil, fmt.Errorf("assign: Ramanujan Case 2 needs s | m for the Lemma 2 spectrum, got m=%d s=%d", m, s)
	}
	k := s * s
	f := m * s
	g := graph.NewBipartite(k, f)
	// H = B: worker u is B's row u; file v is B's column v.
	for u := 0; u < k; u++ {
		for v := 0; v < f; v++ {
			if ramanujanBlockEdge(s, u, v) {
				g.MustAddEdge(u, v)
			}
		}
	}
	a := &Assignment{Scheme: SchemeRamanujan2, K: k, F: f, L: m, R: s, Graph: g}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}
