// Package assign implements ByzShield's redundant task-assignment
// schemes (Sec. 4 of the paper) plus the baselines it is compared
// against. Every scheme produces an Assignment: a biregular bipartite
// graph between K workers and f files where each worker holds l files
// and each file is replicated on r workers.
//
// Schemes:
//
//   - MOLS (Sec. 4.1, Algorithm 2): K = r·l workers, f = l² files, built
//     from r mutually orthogonal Latin squares of prime-power degree l.
//   - Ramanujan Case 1 (Sec. 4.2, m < s): K = m·s workers, f = s² files,
//     H = Bᵀ of the array-code block matrix; (l, r) = (s, m).
//   - Ramanujan Case 2 (Sec. 4.2, m ≥ s): K = s² workers, f = m·s files,
//     H = B; (l, r) = (m, s).
//   - FRC (DETOX/DRACO grouping, Sec. 5.3.1): K/r groups of r clones.
//   - Baseline: f = K, r = 1, no redundancy.
//   - Random: r distinct workers drawn per file (used for ablations).
package assign

import (
	"fmt"
	"math/rand"
	"sort"

	"byzshield/internal/graph"
)

// Scheme identifies an assignment construction.
type Scheme string

// Scheme names.
const (
	SchemeMOLS       Scheme = "mols"
	SchemeRamanujan1 Scheme = "ramanujan1"
	SchemeRamanujan2 Scheme = "ramanujan2"
	SchemeFRC        Scheme = "frc"
	SchemeBaseline   Scheme = "baseline"
	SchemeRandom     Scheme = "random"
)

// Assignment is a concrete worker–file placement: the bipartite graph G
// of the paper together with its parameters.
type Assignment struct {
	Scheme Scheme
	K      int // number of workers
	F      int // number of files
	L      int // computational load: files per worker
	R      int // replication factor: workers per file
	Graph  *graph.Bipartite
}

// WorkerFiles returns the files assigned to worker u (N(U_u)).
func (a *Assignment) WorkerFiles(u int) []int { return a.Graph.NeighborsOfLeft(u) }

// FileWorkers returns the workers holding file v (N(B_v)).
func (a *Assignment) FileWorkers(v int) []int { return a.Graph.NeighborsOfRight(v) }

// Validate checks the structural invariants shared by all schemes:
// consistent K/F with the graph, biregularity with degrees (l, r), and
// the edge-count identity K·l == f·r.
func (a *Assignment) Validate() error {
	if a.Graph.Left() != a.K {
		return fmt.Errorf("assign: graph has %d left nodes, want K=%d", a.Graph.Left(), a.K)
	}
	if a.Graph.Right() != a.F {
		return fmt.Errorf("assign: graph has %d right nodes, want f=%d", a.Graph.Right(), a.F)
	}
	dL, dR, ok := a.Graph.Biregular()
	if !ok {
		return fmt.Errorf("assign: graph is not biregular")
	}
	if dL != a.L {
		return fmt.Errorf("assign: left degree %d, want l=%d", dL, a.L)
	}
	if dR != a.R {
		return fmt.Errorf("assign: right degree %d, want r=%d", dR, a.R)
	}
	if a.K*a.L != a.F*a.R {
		return fmt.Errorf("assign: K·l=%d != f·r=%d", a.K*a.L, a.F*a.R)
	}
	return nil
}

// ReplicaGroups partitions workers into the r parallel classes used by
// the MOLS and Ramanujan constructions: class k contains workers
// k·l .. k·l+l−1 and holds exactly one replica of every file. For FRC it
// returns the K/r groups of clones instead. For schemes without that
// structure it returns nil.
func (a *Assignment) ReplicaGroups() [][]int {
	switch a.Scheme {
	case SchemeMOLS, SchemeRamanujan1:
		groups := make([][]int, a.R)
		for k := 0; k < a.R; k++ {
			cls := make([]int, a.L)
			for s := 0; s < a.L; s++ {
				cls[s] = k*a.L + s
			}
			groups[k] = cls
		}
		return groups
	case SchemeFRC:
		n := a.K / a.R
		groups := make([][]int, n)
		for gi := 0; gi < n; gi++ {
			grp := make([]int, a.R)
			for j := 0; j < a.R; j++ {
				grp[j] = gi*a.R + j
			}
			groups[gi] = grp
		}
		return groups
	default:
		return nil
	}
}

// SharedFiles returns the files assigned to both workers u and w.
func (a *Assignment) SharedFiles(u, w int) []int {
	fu := a.Graph.NeighborsOfLeft(u)
	fw := a.Graph.NeighborsOfLeft(w)
	set := make(map[int]bool, len(fu))
	for _, v := range fu {
		set[v] = true
	}
	var out []int
	for _, v := range fw {
		if set[v] {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// String summarizes the assignment parameters.
func (a *Assignment) String() string {
	return fmt.Sprintf("%s(K=%d, f=%d, l=%d, r=%d)", a.Scheme, a.K, a.F, a.L, a.R)
}

// Baseline builds the no-redundancy assignment: K workers, f = K files,
// worker i holds exactly file i. This models the conventional setup
// whose distortion fraction is ε̂ = q/K (Sec. 5.3).
func Baseline(k int) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("assign: baseline needs K >= 1, got %d", k)
	}
	g := graph.NewBipartite(k, k)
	for i := 0; i < k; i++ {
		g.MustAddEdge(i, i)
	}
	a := &Assignment{Scheme: SchemeBaseline, K: k, F: k, L: 1, R: 1, Graph: g}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// FRC builds the Fractional Repetition Code grouping used by DRACO and
// DETOX: K workers split into K/r groups; all r workers of group i are
// clones responsible for the single file i. Requires r | K and odd r for
// untied majority votes (the vote layer enforces oddness; here we only
// require divisibility).
func FRC(k, r int) (*Assignment, error) {
	if r < 1 || k < 1 {
		return nil, fmt.Errorf("assign: FRC needs K,r >= 1, got K=%d r=%d", k, r)
	}
	if k%r != 0 {
		return nil, fmt.Errorf("assign: FRC needs r | K, got K=%d r=%d", k, r)
	}
	f := k / r
	g := graph.NewBipartite(k, f)
	for i := 0; i < f; i++ {
		for j := 0; j < r; j++ {
			g.MustAddEdge(i*r+j, i)
		}
	}
	a := &Assignment{Scheme: SchemeFRC, K: k, F: f, L: 1, R: r, Graph: g}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Random builds an r-replicated assignment by placing each file on r
// distinct workers chosen uniformly (without the expander structure).
// It retries until the realized graph is biregular with left degree
// f*r/K, which requires K | f·r; used as an ablation contrast for the
// structured schemes. The rng must be non-nil.
func Random(k, f, r int, rng *rand.Rand) (*Assignment, error) {
	if rng == nil {
		return nil, fmt.Errorf("assign: Random requires a rand source")
	}
	if r < 1 || r > k {
		return nil, fmt.Errorf("assign: Random needs 1 <= r <= K, got r=%d K=%d", r, k)
	}
	if (f*r)%k != 0 {
		return nil, fmt.Errorf("assign: Random needs K | f·r for biregularity, got K=%d f=%d r=%d", k, f, r)
	}
	l := f * r / k
	const maxAttempts = 10000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, ok := tryRandomBiregular(k, f, r, l, rng)
		if !ok {
			continue
		}
		a := &Assignment{Scheme: SchemeRandom, K: k, F: f, L: l, R: r, Graph: g}
		if err := a.Validate(); err != nil {
			continue
		}
		return a, nil
	}
	return nil, fmt.Errorf("assign: Random failed to build biregular graph for K=%d f=%d r=%d", k, f, r)
}

// tryRandomBiregular attempts one randomized construction: files are
// processed in order, each drawing r distinct workers with remaining
// capacity, preferring the least-loaded to keep the left side balanced.
func tryRandomBiregular(k, f, r, l int, rng *rand.Rand) (*graph.Bipartite, bool) {
	g := graph.NewBipartite(k, f)
	load := make([]int, k)
	for v := 0; v < f; v++ {
		// Candidates sorted by load with random tiebreak.
		cand := make([]int, k)
		for i := range cand {
			cand[i] = i
		}
		rng.Shuffle(k, func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		sort.SliceStable(cand, func(i, j int) bool { return load[cand[i]] < load[cand[j]] })
		placed := 0
		for _, u := range cand {
			if load[u] >= l {
				continue
			}
			g.MustAddEdge(u, v)
			load[u]++
			placed++
			if placed == r {
				break
			}
		}
		if placed < r {
			return nil, false
		}
	}
	return g, true
}
