package assign

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBaseline(t *testing.T) {
	a, err := Baseline(10)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 10 || a.F != 10 || a.L != 1 || a.R != 1 {
		t.Errorf("Baseline params: %v", a)
	}
	for i := 0; i < 10; i++ {
		fs := a.WorkerFiles(i)
		if len(fs) != 1 || fs[0] != i {
			t.Errorf("worker %d files = %v, want [%d]", i, fs, i)
		}
	}
	if _, err := Baseline(0); err == nil {
		t.Error("Baseline(0) accepted")
	}
}

func TestFRC(t *testing.T) {
	a, err := FRC(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 15 || a.F != 5 || a.L != 1 || a.R != 3 {
		t.Errorf("FRC params: %v", a)
	}
	// Group i = workers {3i, 3i+1, 3i+2}, all clones of file i.
	for i := 0; i < 5; i++ {
		ws := a.FileWorkers(i)
		if len(ws) != 3 {
			t.Fatalf("file %d workers = %v", i, ws)
		}
		for j, w := range ws {
			if w != i*3+j {
				t.Errorf("file %d workers = %v", i, ws)
			}
		}
	}
	groups := a.ReplicaGroups()
	if len(groups) != 5 || len(groups[0]) != 3 || groups[4][2] != 14 {
		t.Errorf("ReplicaGroups = %v", groups)
	}
	if _, err := FRC(10, 3); err == nil {
		t.Error("FRC with r∤K accepted")
	}
}

func TestMOLSExample1Table2(t *testing.T) {
	// Paper Example 1 / Table 2: l=5, r=3 → K=15 workers, 25 files.
	a, err := MOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 15 || a.F != 25 || a.L != 5 || a.R != 3 {
		t.Fatalf("MOLS(5,3) params: %v", a)
	}
	want := [][]int{
		{0, 9, 13, 17, 21}, // U0
		{1, 5, 14, 18, 22}, // U1
		{2, 6, 10, 19, 23}, // U2
		{3, 7, 11, 15, 24}, // U3
		{4, 8, 12, 16, 20}, // U4
		{0, 8, 11, 19, 22}, // U5
		{1, 9, 12, 15, 23}, // U6
		{2, 5, 13, 16, 24}, // U7
		{3, 6, 14, 17, 20}, // U8
		{4, 7, 10, 18, 21}, // U9
		{0, 7, 14, 16, 23}, // U10
		{1, 8, 10, 17, 24}, // U11
		{2, 9, 11, 18, 20}, // U12
		{3, 5, 12, 19, 21}, // U13
		{4, 6, 13, 15, 22}, // U14
	}
	for u, wantFiles := range want {
		got := a.WorkerFiles(u)
		if len(got) != len(wantFiles) {
			t.Fatalf("U%d files = %v, want %v", u, got, wantFiles)
		}
		for i := range wantFiles {
			if got[i] != wantFiles[i] {
				t.Fatalf("U%d files = %v, want %v", u, got, wantFiles)
			}
		}
	}
}

// TestMOLSIntersections verifies the structural law from Sec. 4.1.2:
// workers from the same Latin square share no files; workers from
// different squares share exactly one.
func TestMOLSIntersections(t *testing.T) {
	for _, params := range [][2]int{{5, 3}, {7, 3}, {7, 5}, {8, 3}, {9, 4}, {11, 3}} {
		l, r := params[0], params[1]
		a, err := MOLS(l, r)
		if err != nil {
			t.Fatalf("MOLS(%d,%d): %v", l, r, err)
		}
		for u := 0; u < a.K; u++ {
			for w := u + 1; w < a.K; w++ {
				shared := len(a.SharedFiles(u, w))
				sameSquare := u/l == w/l
				if sameSquare && shared != 0 {
					t.Errorf("MOLS(%d,%d): same-square workers %d,%d share %d files", l, r, u, w, shared)
				}
				if !sameSquare && shared != 1 {
					t.Errorf("MOLS(%d,%d): cross-square workers %d,%d share %d files, want 1", l, r, u, w, shared)
				}
			}
		}
	}
}

func TestMOLSReplicaGroupsCoverAllFiles(t *testing.T) {
	a, err := MOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	groups := a.ReplicaGroups()
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	for gi, grp := range groups {
		seen := make(map[int]bool)
		for _, u := range grp {
			for _, v := range a.WorkerFiles(u) {
				if seen[v] {
					t.Errorf("group %d holds file %d twice", gi, v)
				}
				seen[v] = true
			}
		}
		if len(seen) != a.F {
			t.Errorf("group %d covers %d files, want %d", gi, len(seen), a.F)
		}
	}
}

func TestMOLSRejectsBadParams(t *testing.T) {
	cases := [][2]int{{6, 3}, {5, 1}, {5, 5}, {5, 6}, {10, 2}}
	for _, c := range cases {
		if _, err := MOLS(c[0], c[1]); err == nil {
			t.Errorf("MOLS(%d,%d) accepted", c[0], c[1])
		}
	}
}

func TestMOLSPrimePowerDegree(t *testing.T) {
	// l = 9 = 3² exercises the extension-field path end to end.
	a, err := MOLS(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 36 || a.F != 81 || a.L != 9 || a.R != 4 {
		t.Errorf("MOLS(9,4) params: %v", a)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRamanujan1Params(t *testing.T) {
	a, err := Ramanujan1(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 15 || a.F != 25 || a.L != 5 || a.R != 3 {
		t.Errorf("Ramanujan1(5,3) params: %v", a)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRamanujan2Params(t *testing.T) {
	// The paper's K=25 cluster: (m, s) = (5, 5).
	a, err := Ramanujan2(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 25 || a.F != 25 || a.L != 5 || a.R != 5 {
		t.Errorf("Ramanujan2(5,5) params: %v", a)
	}
	// m = 10, s = 5: K = 25 workers, f = 50 files, l = 10, r = 5.
	a2, err := Ramanujan2(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a2.K != 25 || a2.F != 50 || a2.L != 10 || a2.R != 5 {
		t.Errorf("Ramanujan2(5,10) params: %v", a2)
	}
}

func TestRamanujanRejectsBadParams(t *testing.T) {
	if _, err := Ramanujan1(6, 3); err == nil {
		t.Error("composite s accepted")
	}
	if _, err := Ramanujan1(5, 5); err == nil {
		t.Error("m >= s accepted for Case 1")
	}
	if _, err := Ramanujan1(5, 1); err == nil {
		t.Error("m < 2 accepted for Case 1")
	}
	if _, err := Ramanujan2(5, 3); err == nil {
		t.Error("m < s accepted for Case 2")
	}
	if _, err := Ramanujan2(5, 7); err == nil {
		t.Error("s∤m accepted for Case 2")
	}
}

func TestRamanujanBlockStructure(t *testing.T) {
	// Block (a,b) of B must be the permutation P^{ab}: row i has its one
	// at column (i − a·b) mod s.
	s := 5
	for a := 0; a < s; a++ {
		for b := 0; b < 3; b++ {
			for i := 0; i < s; i++ {
				count := 0
				for j := 0; j < s; j++ {
					if ramanujanBlockEdge(s, a*s+i, b*s+j) {
						count++
						want := ((i-a*b)%s + s) % s
						if j != want {
							t.Fatalf("block (%d,%d) row %d: one at %d, want %d", a, b, i, j, want)
						}
					}
				}
				if count != 1 {
					t.Fatalf("block (%d,%d) row %d has %d ones", a, b, i, count)
				}
			}
		}
	}
}

func TestRandomAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a, err := Random(15, 25, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 15 || a.F != 25 || a.L != 5 || a.R != 3 {
		t.Errorf("Random params: %v", a)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := Random(15, 25, 3, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := Random(10, 25, 3, rng); err == nil {
		t.Error("non-divisible parameters accepted")
	}
}

func TestValidateCatchesCorruptassignment(t *testing.T) {
	a, err := MOLS(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	a.L = 4
	if err := a.Validate(); err == nil {
		t.Error("Validate accepted wrong l")
	}
	a.L = 5
	a.K = 14
	if err := a.Validate(); err == nil {
		t.Error("Validate accepted wrong K")
	}
}

func TestSharedFilesSymmetric(t *testing.T) {
	a, err := MOLS(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < a.K; u += 3 {
		for w := u + 1; w < a.K; w += 4 {
			ab := a.SharedFiles(u, w)
			ba := a.SharedFiles(w, u)
			if len(ab) != len(ba) {
				t.Fatalf("SharedFiles not symmetric for (%d,%d)", u, w)
			}
			for i := range ab {
				if ab[i] != ba[i] {
					t.Fatalf("SharedFiles not symmetric for (%d,%d)", u, w)
				}
			}
		}
	}
}

// Property: every valid MOLS assignment satisfies the edge identity and
// per-file replication invariants for random (l, r) choices.
func TestQuickMOLSInvariants(t *testing.T) {
	degrees := []int{5, 7, 8, 9, 11}
	prop := func(dIdx, rRaw uint8) bool {
		l := degrees[int(dIdx)%len(degrees)]
		r := 2 + int(rRaw)%(l-2) // r in [2, l-1]
		a, err := MOLS(l, r)
		if err != nil {
			return false
		}
		if a.Validate() != nil {
			return false
		}
		for v := 0; v < a.F; v++ {
			if len(a.FileWorkers(v)) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Ramanujan Case 1 workers in the same parallel class share no
// files; different classes share exactly one (same law as MOLS, since
// the constructions have identical spectra).
func TestQuickRamanujan1Intersections(t *testing.T) {
	a, err := Ramanujan1(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(x, y uint8) bool {
		u := int(x) % a.K
		w := int(y) % a.K
		if u == w {
			return true
		}
		shared := len(a.SharedFiles(u, w))
		if u/a.L == w/a.L {
			return shared == 0
		}
		return shared == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMOLSBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := MOLS(7, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRamanujan2Build(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Ramanujan2(5, 5); err != nil {
			b.Fatal(err)
		}
	}
}
