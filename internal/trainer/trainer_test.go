package trainer

import (
	"math"
	"testing"
)

func TestScheduleAt(t *testing.T) {
	s := Schedule{Base: 0.1, Decay: 0.5, Every: 10}
	if s.At(0) != 0.1 || s.At(9) != 0.1 {
		t.Error("rate before first decay wrong")
	}
	if s.At(10) != 0.05 || s.At(19) != 0.05 {
		t.Error("rate after first decay wrong")
	}
	if math.Abs(s.At(20)-0.025) > 1e-15 {
		t.Error("rate after second decay wrong")
	}
}

func TestScheduleNoDecay(t *testing.T) {
	s := Schedule{Base: 0.2}
	if s.At(0) != 0.2 || s.At(1000) != 0.2 {
		t.Error("flat schedule not flat")
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{Base: 0.1, Decay: 0.9, Every: 5}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Schedule{Base: 0}).Validate(); err == nil {
		t.Error("zero base accepted")
	}
	if err := (Schedule{Base: 0.1, Decay: 1.5, Every: 5}).Validate(); err == nil {
		t.Error("decay > 1 accepted")
	}
	if err := (Schedule{Base: 0.1, Decay: -1, Every: 5}).Validate(); err == nil {
		t.Error("negative decay accepted")
	}
}

func TestScheduleString(t *testing.T) {
	s := Schedule{Base: 0.025, Decay: 0.96, Every: 15}
	if s.String() != "(0.025, 0.96, 15)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSGDStepNoMomentum(t *testing.T) {
	o, err := NewSGD(Schedule{Base: 0.1}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := []float64{1, 1}
	o.Step(params, []float64{1, -2}, 0)
	if math.Abs(params[0]-0.9) > 1e-15 || math.Abs(params[1]-1.2) > 1e-15 {
		t.Errorf("params = %v", params)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	o, err := NewSGD(Schedule{Base: 0.1}, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	params := []float64{0}
	o.Step(params, []float64{1}, 0) // v=1, p=-0.1
	o.Step(params, []float64{1}, 1) // v=1.9, p=-0.29
	if math.Abs(params[0]-(-0.29)) > 1e-12 {
		t.Errorf("params = %v, want -0.29", params)
	}
	o.Reset()
	o.Step(params, []float64{0}, 2)
	if math.Abs(params[0]-(-0.29)) > 1e-12 {
		t.Error("Reset did not zero velocity")
	}
}

func TestSGDErrors(t *testing.T) {
	if _, err := NewSGD(Schedule{Base: 0.1}, -0.1, 2); err == nil {
		t.Error("negative momentum accepted")
	}
	if _, err := NewSGD(Schedule{Base: 0.1}, 1, 2); err == nil {
		t.Error("momentum 1 accepted")
	}
	if _, err := NewSGD(Schedule{Base: 0.1}, 0, 0); err == nil {
		t.Error("dim 0 accepted")
	}
	o, _ := NewSGD(Schedule{Base: 0.1}, 0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch did not panic")
		}
	}()
	o.Step([]float64{1}, []float64{1}, 0)
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = ||w - target||² with gradient 2(w - target).
	target := []float64{3, -2, 1}
	o, _ := NewSGD(Schedule{Base: 0.1, Decay: 0.99, Every: 50}, 0.5, 3)
	params := []float64{0, 0, 0}
	grad := make([]float64, 3)
	for t2 := 0; t2 < 500; t2++ {
		for i := range grad {
			grad[i] = 2 * (params[i] - target[i])
		}
		o.Step(params, grad, t2)
	}
	for i := range target {
		if math.Abs(params[i]-target[i]) > 1e-3 {
			t.Errorf("coord %d = %v, want %v", i, params[i], target[i])
		}
	}
}

func TestHistory(t *testing.T) {
	var h History
	if h.FinalAccuracy() != 0 || h.BestAccuracy() != 0 || h.MeanAccuracy() != 0 {
		t.Error("empty history not zero")
	}
	h.Add(0, 2.3, 0.1)
	h.Add(100, 1.1, 0.6)
	h.Add(200, 0.9, 0.5)
	if h.FinalAccuracy() != 0.5 {
		t.Errorf("final = %v", h.FinalAccuracy())
	}
	if h.BestAccuracy() != 0.6 {
		t.Errorf("best = %v", h.BestAccuracy())
	}
	if math.Abs(h.MeanAccuracy()-0.4) > 1e-15 {
		t.Errorf("mean = %v", h.MeanAccuracy())
	}
	if len(h.Points) != 3 || h.Points[1].Iteration != 100 {
		t.Error("points wrong")
	}
}
