package trainer

import "fmt"

// SGD32 is the float32 instantiation of SGD for the reduced-precision
// tier: the velocity buffer is float32 and every arithmetic operation
// runs at float32 width, with the learning rate narrowed once per
// iteration from the shared Schedule. Like SGD, the update is
// coordinate-wise, so any partition of [0, dim) into StepChunk calls is
// bit-identical to a full Step.
type SGD32 struct {
	Schedule Schedule
	Momentum float32
	velocity []float32
}

// NewSGD32 constructs the float32 optimizer for a d-dimensional
// parameter vector.
func NewSGD32(schedule Schedule, momentum float64, dim int) (*SGD32, error) {
	if err := schedule.Validate(); err != nil {
		return nil, err
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("trainer: momentum %v outside [0,1)", momentum)
	}
	if dim < 1 {
		return nil, fmt.Errorf("trainer: dim %d < 1", dim)
	}
	return &SGD32{Schedule: schedule, Momentum: float32(momentum), velocity: make([]float32, dim)}, nil
}

// Step applies one update in place using the gradient estimate grad at
// iteration t.
func (o *SGD32) Step(params, grad []float32, t int) {
	if len(params) != len(o.velocity) || len(grad) != len(o.velocity) {
		panic(fmt.Sprintf("trainer: dim mismatch params=%d grad=%d velocity=%d",
			len(params), len(grad), len(o.velocity)))
	}
	o.StepChunk(params, grad, t, 0, len(params))
}

// StepChunk applies the iteration-t update to the coordinate range
// [lo, hi) only, under the contract of SGD.StepChunk.
func (o *SGD32) StepChunk(params, grad []float32, t, lo, hi int) {
	if len(params) != len(o.velocity) || len(grad) != len(o.velocity) {
		panic(fmt.Sprintf("trainer: dim mismatch params=%d grad=%d velocity=%d",
			len(params), len(grad), len(o.velocity)))
	}
	if lo < 0 || hi > len(params) || lo > hi {
		panic(fmt.Sprintf("trainer: chunk [%d,%d) outside [0,%d)", lo, hi, len(params)))
	}
	lr := float32(o.Schedule.At(t))
	for i := lo; i < hi; i++ {
		o.velocity[i] = o.Momentum*o.velocity[i] + grad[i]
		params[i] -= lr * o.velocity[i]
	}
}

// Reset zeroes the momentum buffer.
func (o *SGD32) Reset() {
	clear(o.velocity)
}

// Velocity returns a copy of the momentum buffer (for checkpointing).
func (o *SGD32) Velocity() []float32 {
	out := make([]float32, len(o.velocity))
	copy(out, o.velocity)
	return out
}

// SetVelocity restores the momentum buffer from a checkpoint.
func (o *SGD32) SetVelocity(v []float32) error {
	if len(v) != len(o.velocity) {
		return fmt.Errorf("trainer: velocity length %d, want %d", len(v), len(o.velocity))
	}
	copy(o.velocity, v)
	return nil
}
