// Package trainer provides the optimizer-side machinery of the training
// protocol: the (x, y, z) step-decay learning-rate schedules of the
// paper's Table 7, SGD with momentum, and the metric series recorded
// during a run.
package trainer

import (
	"fmt"
	"math"
)

// Schedule is the paper's (x, y, z) learning-rate schedule notation:
// start at rate x and multiply by y every z iterations.
type Schedule struct {
	Base  float64 // x: initial rate
	Decay float64 // y: multiplicative decay factor
	Every int     // z: iterations between decays (0 disables decay)
}

// At returns the learning rate at iteration t (0-based).
func (s Schedule) At(t int) float64 {
	if s.Every <= 0 || s.Decay == 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Decay, float64(t/s.Every))
}

// Validate checks the schedule parameters.
func (s Schedule) Validate() error {
	if s.Base <= 0 {
		return fmt.Errorf("trainer: base rate %v <= 0", s.Base)
	}
	if s.Every > 0 && (s.Decay <= 0 || s.Decay > 1) {
		return fmt.Errorf("trainer: decay %v outside (0,1]", s.Decay)
	}
	return nil
}

// String renders the schedule in the paper's notation.
func (s Schedule) String() string {
	return fmt.Sprintf("(%g, %g, %d)", s.Base, s.Decay, s.Every)
}

// SGD is stochastic gradient descent with classical momentum:
// v ← µ·v + g;  w ← w − η_t·v.
type SGD struct {
	Schedule Schedule
	Momentum float64
	velocity []float64
}

// NewSGD constructs the optimizer for a d-dimensional parameter vector.
func NewSGD(schedule Schedule, momentum float64, dim int) (*SGD, error) {
	if err := schedule.Validate(); err != nil {
		return nil, err
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("trainer: momentum %v outside [0,1)", momentum)
	}
	if dim < 1 {
		return nil, fmt.Errorf("trainer: dim %d < 1", dim)
	}
	return &SGD{Schedule: schedule, Momentum: momentum, velocity: make([]float64, dim)}, nil
}

// Step applies one update in place using the gradient estimate grad at
// iteration t.
func (o *SGD) Step(params, grad []float64, t int) {
	if len(params) != len(o.velocity) || len(grad) != len(o.velocity) {
		panic(fmt.Sprintf("trainer: dim mismatch params=%d grad=%d velocity=%d",
			len(params), len(grad), len(o.velocity)))
	}
	o.StepChunk(params, grad, t, 0, len(params))
}

// StepChunk applies the iteration-t update to the coordinate range
// [lo, hi) only. Momentum SGD is coordinate-wise, so a full Step and
// any partition of [0, dim) into StepChunk calls perform the identical
// floating-point operations per coordinate — the sharded aggregation
// plane steps each shard's range independently and stays bit-identical
// to the serial optimizer. Chunks must not overlap within an iteration.
func (o *SGD) StepChunk(params, grad []float64, t, lo, hi int) {
	if len(params) != len(o.velocity) || len(grad) != len(o.velocity) {
		panic(fmt.Sprintf("trainer: dim mismatch params=%d grad=%d velocity=%d",
			len(params), len(grad), len(o.velocity)))
	}
	if lo < 0 || hi > len(params) || lo > hi {
		panic(fmt.Sprintf("trainer: chunk [%d,%d) outside [0,%d)", lo, hi, len(params)))
	}
	lr := o.Schedule.At(t)
	for i := lo; i < hi; i++ {
		o.velocity[i] = o.Momentum*o.velocity[i] + grad[i]
		params[i] -= lr * o.velocity[i]
	}
}

// Reset zeroes the momentum buffer.
func (o *SGD) Reset() {
	for i := range o.velocity {
		o.velocity[i] = 0
	}
}

// Velocity returns a copy of the momentum buffer (for checkpointing).
func (o *SGD) Velocity() []float64 {
	out := make([]float64, len(o.velocity))
	copy(out, o.velocity)
	return out
}

// SetVelocity restores the momentum buffer from a checkpoint. The
// length must match the optimizer's dimension.
func (o *SGD) SetVelocity(v []float64) error {
	if len(v) != len(o.velocity) {
		return fmt.Errorf("trainer: velocity length %d, want %d", len(v), len(o.velocity))
	}
	copy(o.velocity, v)
	return nil
}

// Point is one recorded evaluation during training.
type Point struct {
	Iteration int
	Loss      float64
	Accuracy  float64
}

// History is the recorded metric series of a training run.
type History struct {
	Points []Point
}

// Add appends an evaluation point.
func (h *History) Add(iter int, loss, acc float64) {
	h.Points = append(h.Points, Point{Iteration: iter, Loss: loss, Accuracy: acc})
}

// FinalAccuracy returns the accuracy of the last evaluation (0 when
// empty).
func (h *History) FinalAccuracy() float64 {
	if len(h.Points) == 0 {
		return 0
	}
	return h.Points[len(h.Points)-1].Accuracy
}

// BestAccuracy returns the maximum recorded accuracy.
func (h *History) BestAccuracy() float64 {
	best := 0.0
	for _, p := range h.Points {
		if p.Accuracy > best {
			best = p.Accuracy
		}
	}
	return best
}

// MeanAccuracy returns the average recorded accuracy — used for the
// paper's "average advantage" comparisons.
func (h *History) MeanAccuracy() float64 {
	if len(h.Points) == 0 {
		return 0
	}
	var s float64
	for _, p := range h.Points {
		s += p.Accuracy
	}
	return s / float64(len(h.Points))
}
