package trainer

import (
	"math"
	"testing"
)

func TestSGD32StepChunkMatchesStep(t *testing.T) {
	// Coordinate-wise update: any chunk partition must be bit-identical
	// to a full step — the property the sharded f32 plane relies on.
	sched := Schedule{Base: 0.1, Decay: 0.5, Every: 3}
	a, err := NewSGD32(sched, 0.9, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSGD32(sched, 0.9, 10)
	pa := make([]float32, 10)
	pb := make([]float32, 10)
	g := make([]float32, 10)
	for i := range pa {
		pa[i] = float32(i) * 0.25
		pb[i] = pa[i]
		g[i] = float32(10-i) * 0.125
	}
	for it := 0; it < 8; it++ {
		a.Step(pa, g, it)
		b.StepChunk(pb, g, it, 0, 4)
		b.StepChunk(pb, g, it, 4, 9)
		b.StepChunk(pb, g, it, 9, 10)
		for i := range pa {
			if math.Float32bits(pa[i]) != math.Float32bits(pb[i]) {
				t.Fatalf("iter %d: chunked step diverged at %d", it, i)
			}
		}
	}
}

func TestSGD32VelocityRoundTrip(t *testing.T) {
	o, _ := NewSGD32(Schedule{Base: 0.1}, 0.5, 4)
	p := []float32{1, 2, 3, 4}
	o.Step(p, []float32{1, 1, 1, 1}, 0)
	v := o.Velocity()
	o2, _ := NewSGD32(Schedule{Base: 0.1}, 0.5, 4)
	if err := o2.SetVelocity(v); err != nil {
		t.Fatal(err)
	}
	p2 := append([]float32(nil), p...)
	o.Step(p, []float32{2, 2, 2, 2}, 1)
	o2.Step(p2, []float32{2, 2, 2, 2}, 1)
	for i := range p {
		if math.Float32bits(p[i]) != math.Float32bits(p2[i]) {
			t.Fatal("restored velocity diverged")
		}
	}
	if err := o2.SetVelocity(make([]float32, 3)); err == nil {
		t.Fatal("want error for wrong velocity length")
	}
	o2.Reset()
	for _, v := range o2.Velocity() {
		if v != 0 {
			t.Fatal("Reset left velocity nonzero")
		}
	}
}

func TestNewSGD32Validates(t *testing.T) {
	if _, err := NewSGD32(Schedule{Base: -1}, 0.5, 4); err == nil {
		t.Fatal("want error for bad schedule")
	}
	if _, err := NewSGD32(Schedule{Base: 0.1}, 1.0, 4); err == nil {
		t.Fatal("want error for momentum 1")
	}
	if _, err := NewSGD32(Schedule{Base: 0.1}, 0.5, 0); err == nil {
		t.Fatal("want error for dim 0")
	}
}
