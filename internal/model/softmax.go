package model

import (
	"fmt"
	"sync"

	"byzshield/internal/data"
	"byzshield/internal/linalg"
)

// Softmax is multinomial logistic regression: logits = W·x + b with
// cross-entropy loss. The flat parameter layout is
// [W row-major (classes × dim) | b (classes)].
//
// The forward/backward core is generic over the precision tier
// (float64 and float32 instantiations share one code path), so the
// model implements both Model and Model32. Per-call probability
// scratch is pooled per width, so concurrent SumGradient / Loss /
// Predict calls from the engine's worker pool allocate nothing in
// steady state.
type Softmax struct {
	dim       int
	classes   int
	scratch   sync.Pool // *[]float64 of length classes
	scratch32 sync.Pool // *[]float32 of length classes
}

// getProbs returns a pooled float64 probability buffer.
func (s *Softmax) getProbs() *[]float64 {
	if p, _ := s.scratch.Get().(*[]float64); p != nil {
		return p
	}
	buf := make([]float64, s.classes)
	return &buf
}

// getProbs32 returns a pooled float32 probability buffer.
func (s *Softmax) getProbs32() *[]float32 {
	if p, _ := s.scratch32.Get().(*[]float32); p != nil {
		return p
	}
	buf := make([]float32, s.classes)
	return &buf
}

// NewSoftmax constructs a softmax regression model.
func NewSoftmax(dim, classes int) (*Softmax, error) {
	if dim < 1 || classes < 2 {
		return nil, fmt.Errorf("model: softmax needs dim >= 1 and classes >= 2, got %d/%d", dim, classes)
	}
	return &Softmax{dim: dim, classes: classes}, nil
}

// Name implements Model.
func (s *Softmax) Name() string { return fmt.Sprintf("softmax(%dx%d)", s.classes, s.dim) }

// NumParams implements Model.
func (s *Softmax) NumParams() int { return s.classes*s.dim + s.classes }

// InputDim implements Model.
func (s *Softmax) InputDim() int { return s.dim }

// Classes implements Model.
func (s *Softmax) Classes() int { return s.classes }

// softmaxLogitsT computes W·x + b into out (length classes).
func softmaxLogitsT[T linalg.Float](dim, classes int, params, x, out []T) {
	for c := 0; c < classes; c++ {
		row := params[c*dim : (c+1)*dim]
		var v T
		for j, xv := range x {
			v += row[j] * xv
		}
		out[c] = v + params[classes*dim+c]
	}
}

// softmaxLossT is the width-generic mean cross-entropy loss.
func softmaxLossT[T linalg.Float](dim, classes int, params []T, x [][]T, y, idx []int, probs []T) float64 {
	var total float64
	for _, i := range idx {
		softmaxLogitsT(dim, classes, params, x[i], probs)
		softmaxT(probs)
		total += nllClamp(probs[y[i]])
	}
	return total / float64(len(idx))
}

// softmaxGradT is the width-generic summed gradient:
// ∂L/∂W[c] = (p_c − 1{c=y})·x, ∂L/∂b[c] = p_c − 1{c=y}, over samples.
func softmaxGradT[T linalg.Float](dim, classes int, params []T, x [][]T, y, idx []int, out, probs []T) {
	for _, i := range idx {
		xi := x[i]
		softmaxLogitsT(dim, classes, params, xi, probs)
		softmaxT(probs)
		for c := 0; c < classes; c++ {
			diff := probs[c]
			if c == y[i] {
				diff -= 1
			}
			row := out[c*dim : (c+1)*dim]
			for j, xv := range xi {
				row[j] += diff * xv
			}
			out[classes*dim+c] += diff
		}
	}
}

// Loss implements Model.
func (s *Softmax) Loss(params []float64, ds *data.Dataset, idx []int) float64 {
	checkShapes(s, params, ds)
	if len(idx) == 0 {
		return 0
	}
	pp := s.getProbs()
	defer s.scratch.Put(pp)
	return softmaxLossT(s.dim, s.classes, params, ds.X, ds.Y, idx, *pp)
}

// SumGradient implements Model: ∂L/∂W[c] = (p_c − 1{c=y})·x,
// ∂L/∂b[c] = p_c − 1{c=y}, summed over samples.
func (s *Softmax) SumGradient(params []float64, ds *data.Dataset, idx []int, out []float64) {
	checkShapes(s, params, ds)
	checkGradLen(s, len(out))
	pp := s.getProbs()
	defer s.scratch.Put(pp)
	softmaxGradT(s.dim, s.classes, params, ds.X, ds.Y, idx, out, *pp)
}

// Predict implements Model.
func (s *Softmax) Predict(params []float64, x []float64) int {
	pp := s.getProbs()
	defer s.scratch.Put(pp)
	logits := *pp
	softmaxLogitsT(s.dim, s.classes, params, x, logits)
	return argmaxT(logits)
}

// Loss32 implements Model32.
func (s *Softmax) Loss32(params []float32, ds *data.Dataset32, idx []int) float64 {
	checkShapes32(s, params, ds)
	if len(idx) == 0 {
		return 0
	}
	pp := s.getProbs32()
	defer s.scratch32.Put(pp)
	return softmaxLossT(s.dim, s.classes, params, ds.X, ds.Y, idx, *pp)
}

// SumGradient32 implements Model32.
func (s *Softmax) SumGradient32(params []float32, ds *data.Dataset32, idx []int, out []float32) {
	checkShapes32(s, params, ds)
	checkGradLen(s, len(out))
	pp := s.getProbs32()
	defer s.scratch32.Put(pp)
	softmaxGradT(s.dim, s.classes, params, ds.X, ds.Y, idx, out, *pp)
}

// Predict32 implements Model32.
func (s *Softmax) Predict32(params []float32, x []float32) int {
	pp := s.getProbs32()
	defer s.scratch32.Put(pp)
	logits := *pp
	softmaxLogitsT(s.dim, s.classes, params, x, logits)
	return argmaxT(logits)
}
