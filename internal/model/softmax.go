package model

import (
	"fmt"
	"sync"

	"byzshield/internal/data"
)

// Softmax is multinomial logistic regression: logits = W·x + b with
// cross-entropy loss. The flat parameter layout is
// [W row-major (classes × dim) | b (classes)].
//
// Per-call probability scratch is pooled, so concurrent SumGradient /
// Loss / Predict calls from the engine's worker pool allocate nothing in
// steady state.
type Softmax struct {
	dim     int
	classes int
	scratch sync.Pool // *[]float64 of length classes
}

// getProbs returns a pooled probability buffer.
func (s *Softmax) getProbs() *[]float64 {
	if p, _ := s.scratch.Get().(*[]float64); p != nil {
		return p
	}
	buf := make([]float64, s.classes)
	return &buf
}

// NewSoftmax constructs a softmax regression model.
func NewSoftmax(dim, classes int) (*Softmax, error) {
	if dim < 1 || classes < 2 {
		return nil, fmt.Errorf("model: softmax needs dim >= 1 and classes >= 2, got %d/%d", dim, classes)
	}
	return &Softmax{dim: dim, classes: classes}, nil
}

// Name implements Model.
func (s *Softmax) Name() string { return fmt.Sprintf("softmax(%dx%d)", s.classes, s.dim) }

// NumParams implements Model.
func (s *Softmax) NumParams() int { return s.classes*s.dim + s.classes }

// InputDim implements Model.
func (s *Softmax) InputDim() int { return s.dim }

// Classes implements Model.
func (s *Softmax) Classes() int { return s.classes }

// logits computes W·x + b into out (length classes).
func (s *Softmax) logits(params, x, out []float64) {
	for c := 0; c < s.classes; c++ {
		row := params[c*s.dim : (c+1)*s.dim]
		var v float64
		for j, xv := range x {
			v += row[j] * xv
		}
		out[c] = v + params[s.classes*s.dim+c]
	}
}

// Loss implements Model.
func (s *Softmax) Loss(params []float64, ds *data.Dataset, idx []int) float64 {
	checkShapes(s, params, ds)
	if len(idx) == 0 {
		return 0
	}
	pp := s.getProbs()
	defer s.scratch.Put(pp)
	probs := *pp
	var total float64
	for _, i := range idx {
		s.logits(params, ds.X[i], probs)
		softmaxInPlace(probs)
		p := probs[ds.Y[i]]
		if p < 1e-300 {
			p = 1e-300
		}
		total += -ln(p)
	}
	return total / float64(len(idx))
}

// SumGradient implements Model: ∂L/∂W[c] = (p_c − 1{c=y})·x,
// ∂L/∂b[c] = p_c − 1{c=y}, summed over samples.
func (s *Softmax) SumGradient(params []float64, ds *data.Dataset, idx []int, out []float64) {
	checkShapes(s, params, ds)
	if len(out) != s.NumParams() {
		panic(fmt.Sprintf("model: gradient buffer %d, want %d", len(out), s.NumParams()))
	}
	pp := s.getProbs()
	defer s.scratch.Put(pp)
	probs := *pp
	for _, i := range idx {
		x := ds.X[i]
		s.logits(params, x, probs)
		softmaxInPlace(probs)
		for c := 0; c < s.classes; c++ {
			diff := probs[c]
			if c == ds.Y[i] {
				diff -= 1
			}
			row := out[c*s.dim : (c+1)*s.dim]
			for j, xv := range x {
				row[j] += diff * xv
			}
			out[s.classes*s.dim+c] += diff
		}
	}
}

// Predict implements Model.
func (s *Softmax) Predict(params []float64, x []float64) int {
	pp := s.getProbs()
	defer s.scratch.Put(pp)
	logits := *pp
	s.logits(params, x, logits)
	best := 0
	for c := 1; c < s.classes; c++ {
		if logits[c] > logits[best] {
			best = c
		}
	}
	return best
}
