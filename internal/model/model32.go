package model

import (
	"fmt"
	"math"

	"byzshield/internal/data"
	"byzshield/internal/linalg"
)

// Model32 is a Model that can additionally run its forward/backward
// pass entirely in float32 — the compute side of the negotiated
// reduced-precision tier. The f32 methods mirror the f64 ones
// one-for-one over float32 parameter vectors and a Dataset32 view;
// like the f64 path they iterate samples in caller-given order with no
// parallelism, so two honest workers computing the same file produce
// bit-identical float32 gradients.
//
// Softmax and ConvNet implement Model32; the MLP stays f64-only (the
// precision tier targets the convolutional workload).
type Model32 interface {
	Model
	// Loss32 returns the mean cross-entropy loss over ds[idx], computed
	// from the float32 forward pass (accumulated in float64 so the
	// scalar is stable at large batch sizes).
	Loss32(params []float32, ds *data.Dataset32, idx []int) float64
	// SumGradient32 adds the SUM of per-sample loss gradients over
	// ds[idx] into out, which must have length NumParams().
	SumGradient32(params []float32, ds *data.Dataset32, idx []int, out []float32)
	// Predict32 returns the argmax class for features x.
	Predict32(params []float32, x []float32) int
}

// InitParams32 returns the float32 initialization for m: the f64
// InitParams vector narrowed element-wise, so an f32 run starts from
// the rounded image of the exact same deterministic draw an f64 run
// with the same seed starts from.
func InitParams32(m Model, seed int64) []float32 {
	p64 := InitParams(m, seed)
	p32 := make([]float32, len(p64))
	for i, v := range p64 {
		p32[i] = float32(v)
	}
	return p32
}

// Accuracy32 returns the top-1 accuracy of m with float32 params over
// the float32 dataset view.
func Accuracy32(m Model32, params []float32, ds *data.Dataset32) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range ds.X {
		if m.Predict32(params, x) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// softmaxT converts logits to probabilities with the max-shift trick
// for numerical stability; the exponential runs through float64 in
// both instantiations (for T = float64 the conversions are identity,
// so the f64 path is unchanged op for op).
func softmaxT[T linalg.Float](logits []T) {
	maxV := logits[0]
	for _, v := range logits[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum T
	for i, v := range logits {
		e := T(math.Exp(float64(v - maxV)))
		logits[i] = e
		sum += e
	}
	for i := range logits {
		logits[i] /= sum
	}
}

// nllClamp accumulates one sample's negative log-likelihood: the
// probability is widened to float64 and clamped away from zero before
// the log, matching the f64 loss exactly when T = float64.
func nllClamp[T linalg.Float](p T) float64 {
	pf := float64(p)
	if pf < 1e-300 {
		pf = 1e-300
	}
	return -ln(pf)
}

// argmaxT returns the index of the largest value (ties to the lowest
// index, matching the f64 Predict loops).
func argmaxT[T linalg.Float](vals []T) int {
	best := 0
	for c := 1; c < len(vals); c++ {
		if vals[c] > vals[best] {
			best = c
		}
	}
	return best
}

// checkShapes32 panics on dimension violations shared by the f32
// model paths.
func checkShapes32(m Model, params []float32, ds *data.Dataset32) {
	if len(params) != m.NumParams() {
		panic(fmt.Sprintf("model: %d params, want %d", len(params), m.NumParams()))
	}
	if ds.Dim() != m.InputDim() {
		panic(fmt.Sprintf("model: dataset dim %d, want %d", ds.Dim(), m.InputDim()))
	}
	if ds.Classes != m.Classes() {
		panic(fmt.Sprintf("model: dataset classes %d, want %d", ds.Classes, m.Classes()))
	}
}

// checkGradLen panics when the gradient buffer length is wrong.
func checkGradLen(m Model, n int) {
	if n != m.NumParams() {
		panic(fmt.Sprintf("model: gradient buffer %d, want %d", n, m.NumParams()))
	}
}
